package guava

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Example_observedRun runs a small study through the production path
// with an Observer attached, then reads the run back from the report
// and the trace: per-step statuses, the span count (one workflow span,
// one per step, one per attempt), and the rows the engine moved.
func Example_observedRun() {
	form := &Form{Name: "Visit", KeyColumn: "ID", Controls: []*Control{
		{Name: "Smoker", Kind: CheckBox, Question: "Smoker?"},
	}}
	if err := form.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	sys := New("demo")
	contrib, err := sys.RegisterContributor("clinic", form, NewStack(Naive{}), NewDB("clinic"))
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, smoker := range []bool{true, false, true} {
		e, err := NewEntryFor(contrib, int64(i+1))
		if err != nil {
			fmt.Println(err)
			return
		}
		if err := e.Set("Smoker", Bool(smoker)); err != nil {
			fmt.Println(err)
			return
		}
		if err := e.Submit(contrib.Sink()); err != nil {
			fmt.Println(err)
			return
		}
	}
	target := Target{Entity: "Visit", Attribute: "Smoking", Domain: "YN",
		Kind: KindString, Elements: []string{"Y", "N"}}
	_, err = sys.DefineStudy("smokers").
		Column("Smoking_YN", "Smoking", "YN", KindString).
		For("clinic").
		EntityFor("Visit", "All", "every visit", "Visit <- Visit").
		Classify("Smoking_YN", "YesNo", "", target, "Y <- Smoker = TRUE\nN <- TRUE").
		Done().
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	observer := NewObserver()
	rows, report, err := sys.RunStudy(context.Background(), "smokers",
		RunPolicy{}, 1, WithObserver(observer))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range report.Steps {
		fmt.Printf("%s %s\n", s.Status, s.ID)
	}
	fmt.Printf("spans: %d\n", observer.Tracer.Len())
	fmt.Printf("rows moved: %d\n", observer.Metrics.Counter("etl.rows.out").Value())
	fmt.Printf("output rows: %d\n", rows.Len())
	// Output:
	// ok extract/clinic
	// ok select/clinic
	// ok classify/clinic
	// ok load/union
	// spans: 9
	// rows moved: 12
	// output rows: 3
}

// TestStudyDocRoundTrip: a study serializes to JSON and reloads into a fresh
// system producing identical output — the "document, inspect, reuse"
// contract.
func TestStudyDocRoundTrip(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	st, err := sys.DefineStudy("persisted").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("Surgical", "surgery cases only", "Procedure <- Procedure AND Surgery = TRUE").
		Classify("Smoking_D3", "Habits (Cancer)", "cancer thresholds", habitsTarget, `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`).
		Clean("Drop implausible", "data entry errors", "DISCARD <- PacksPerDay > 20").
		Condition("RenalFailure = FALSE").
		Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	st.Annotate("jlogan", "created for the audit", time.Date(2006, 5, 3, 9, 0, 0, 0, time.UTC))
	original, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}

	data, err := st.Doc().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"persisted"`, `"Habits (Cancer)"`, `"DISCARD <-`, `"RenalFailure = FALSE"`, `"jlogan"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}

	doc, err := ParseStudyDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	// Load into a *fresh* system over the same contributors.
	sys2 := registerAll(t, cs)
	st2, err := sys2.LoadStudy(doc)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := st2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded.EqualUnordered(original) {
		t.Error("reloaded study output differs from original")
	}
	if st2.Log.Len() != 1 {
		t.Error("annotations lost in round trip")
	}
	if len(st2.Columns()) != 1 || st2.Columns()[0].As != "Smoking_D3" {
		t.Errorf("columns = %+v", st2.Columns())
	}
}

func TestParseStudyDocErrors(t *testing.T) {
	if _, err := ParseStudyDoc([]byte("not json")); err == nil {
		t.Error("garbage must fail")
	}
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	// Unknown kind.
	doc := &StudyDoc{Name: "x", Columns: []ColumnDoc{{As: "A", Kind: "WAT"}}}
	if _, err := sys.LoadStudy(doc); err == nil {
		t.Error("unknown kind must fail")
	}
	// Unknown contributor.
	doc2 := &StudyDoc{
		Name:    "y",
		Columns: []ColumnDoc{{As: "A", Attribute: "a", Domain: "d", Kind: "TEXT"}},
		Contributors: []ContributorDoc{{
			Name:   "Ghost",
			Entity: ClassifierDoc{Name: "e", Entity: "Procedure", Rules: "Procedure <- Procedure"},
		}},
	}
	if _, err := sys.LoadStudy(doc2); err == nil {
		t.Error("unknown contributor must fail")
	}
}
