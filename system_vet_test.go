package guava

import (
	"strings"
	"testing"
)

const habitsRules = `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`

// TestBuildVettedClean: a well-formed study builds through BuildVetted,
// returning the study plus a report free of errors and warnings (open
// numeric tails are informational).
func TestBuildVettedClean(t *testing.T) {
	sys := registerAll(t, buildContribs(t))
	st, rep, err := sys.DefineStudy("vetted").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "Habits (Cancer)", "", habitsTarget, habitsRules).
		Done().
		BuildVetted()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("BuildVetted returned no study")
	}
	if n := rep.Count(VetError) + rep.Count(VetWarning); n != 0 {
		t.Errorf("clean study has %d errors+warnings:\n%s", n, rep.Text())
	}
	// Study.Vet on the built study agrees with the build-time report.
	again := st.Vet()
	if again.Text() != rep.Text() {
		t.Errorf("Study.Vet diverges from BuildVetted report:\n%s\nvs\n%s", again.Text(), rep.Text())
	}
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildVettedRefusesErrors: a classifier emitting a value outside its
// target domain (GV104) must stop BuildVetted — no study is returned, and
// the report names the defect.
func TestBuildVettedRefusesErrors(t *testing.T) {
	sys := registerAll(t, buildContribs(t))
	st, rep, err := sys.DefineStudy("broken").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "Bad Habits", "", habitsTarget,
			"'Extreme' <- PacksPerDay > 5\nNone <- TRUE").
		Done().
		BuildVetted()
	if err == nil {
		t.Fatal("BuildVetted accepted a study with a GV104 error")
	}
	if st != nil {
		t.Error("BuildVetted returned a study alongside the error")
	}
	if rep == nil || !rep.HasErrors() {
		t.Fatalf("report = %+v, want error-severity findings", rep)
	}
	found := false
	for _, d := range rep.Diags {
		if d.Code == "GV104" {
			found = true
		}
	}
	if !found {
		t.Errorf("report lacks GV104:\n%s", rep.Text())
	}
	if !strings.Contains(err.Error(), "failed vetting") {
		t.Errorf("error %q does not mention vetting", err)
	}

	// VetStudy never sees the refused study; the plain Build path is
	// untouched by vetting and still works.
	if _, err := sys.DefineStudy("unvetted").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "Bad Habits", "", habitsTarget,
			"'Extreme' <- PacksPerDay > 5\nNone <- TRUE").
		Done().
		Build(); err != nil {
		t.Fatalf("unvetted Build must not be gated: %v", err)
	}
}

// TestVetStudyByName: System.VetStudy resolves a registered study and vets
// it; unknown names error.
func TestVetStudyByName(t *testing.T) {
	sys := registerAll(t, buildContribs(t))
	if _, _, err := sys.DefineStudy("named").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "Habits (Cancer)", "", habitsTarget, habitsRules).
		Done().
		BuildVetted(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.VetStudy("named")
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasErrors() {
		t.Errorf("named study vets with errors:\n%s", rep.Text())
	}
	if _, err := sys.VetStudy("no-such-study"); err == nil {
		t.Error("VetStudy on unknown name did not error")
	}
}
