// Package guava is a reproduction of "Context-Sensitive Clinical Data
// Integration" (Terwilliger, Delcambre, Logan — EDBT 2006 Workshops): the
// GUAVA (GUI As View Apparatus) and MultiClass components that let domain
// experts — not database programmers — express per-study data extraction,
// integration, and classification over heterogeneous clinical sources, and
// have those specifications compiled into ordinary ETL workflows.
//
// The package is the public facade over the subsystems in internal/:
//
//   - relstore: the relational engine every database in the system runs on
//   - ui: the reporting-tool form model (controls, enablement, defaults)
//   - gtree: g-trees derived automatically from forms (Hypothesis #1)
//   - patterns: the Table 1 database design patterns, as bidirectional
//     stacks between a form's naive schema and its physical layout
//   - gquery: queries against g-trees, rewritten through pattern stacks
//   - classifier: the Figure 5 classifier language (parse, bind, evaluate,
//     and emit as XQuery / Datalog / SQL)
//   - study: study schemas with multi-domain attributes (Figure 4, Table 2)
//   - etl: the ETL component framework and the study → three-stage-workflow
//     compiler of Figure 6 (Hypothesis #3)
//   - materialize: the Section 4.2 materialization strategies (Figure 7)
//   - versioning: classifier propagation across reporting-tool versions
//   - workload: the synthetic CORI-like endoscopy data generator
//   - baseline: hand-written expert ETL and the classical fully-integrated
//     warehouse, for comparison (Hypothesis #2)
//
// A typical session registers contributors (a form + a pattern stack + a
// populated database), defines a study by picking classifiers per
// contributor, and runs it:
//
//	sys := guava.New("CORI outcomes")
//	c, _ := sys.RegisterContributor("CORI", form, stack, db)
//	st, _ := sys.DefineStudy("study2").
//		Column("Smoking_D3", "Smoking", "D3", guava.KindString).
//		For("CORI").
//		Entity("All", "", "Procedure <- Procedure").
//		Classify("Smoking_D3", "Habits (Cancer)", "…", target, rules).
//		Done().
//		Build()
//	rows, _ := st.Run()
package guava

import (
	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gquery"
	"guava/internal/gtree"
	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/study"
	"guava/internal/ui"
	"guava/internal/vet"
)

// Re-exported value kinds.
const (
	KindNull   = relstore.KindNull
	KindInt    = relstore.KindInt
	KindFloat  = relstore.KindFloat
	KindString = relstore.KindString
	KindBool   = relstore.KindBool
)

// Aliases exposing the subsystem types a user of the facade composes with.
type (
	// Value is a typed database cell.
	Value = relstore.Value
	// Rows is a materialized relation (query or study result).
	Rows = relstore.Rows
	// DB is one database instance.
	DB = relstore.DB

	// Form is a reporting-tool screen definition.
	Form = ui.Form
	// Control is one element of a form.
	Control = ui.Control
	// Option is a selectable answer of a control.
	Option = ui.Option
	// Entry is one in-progress filling of a form.
	Entry = ui.Entry
	// Enablement guards when a control becomes answerable.
	Enablement = ui.Enablement

	// GTree is a g-tree derived from a form.
	GTree = gtree.Tree
	// GNode is one g-tree node.
	GNode = gtree.Node

	// Stack is a pattern stack (Table 1 compositions).
	Stack = patterns.Stack
	// FormInfo is a form's naive-schema summary.
	FormInfo = patterns.FormInfo

	// Classifier is a MultiClass classifier.
	Classifier = classifier.Classifier
	// Target identifies the study-schema domain a classifier maps into.
	Target = classifier.Target

	// StudySchema is a study schema (has-a entity tree).
	StudySchema = study.Schema
	// Domain is one representation of a study-schema attribute.
	Domain = study.Domain

	// Query is a query against a g-tree.
	Query = gquery.Query
	// AggregateQuery is a grouped-aggregate query against a g-tree.
	AggregateQuery = gquery.AggregateQuery

	// Workflow is an executable ETL workflow.
	Workflow = etl.Workflow
	// RunPolicy configures retry, timeouts, and partial-failure handling
	// for resilient study execution.
	RunPolicy = etl.RunPolicy
	// RunReport is the structured outcome of a resilient execution:
	// per-step attempts, durations, errors, and the degraded contributors.
	RunReport = etl.RunReport
	// StepResult records one workflow step's fate in a RunReport.
	StepResult = etl.StepResult
	// Checkpointer durably stores completed-step snapshots so a crashed
	// study run resumes from the last durable step (set it on
	// RunPolicy.Checkpoint).
	Checkpointer = etl.Checkpointer
	// FSCheckpointer is the filesystem-backed Checkpointer.
	FSCheckpointer = etl.FSCheckpointer
	// MemCheckpointer is the in-memory Checkpointer (tests, single
	// process).
	MemCheckpointer = etl.MemCheckpointer
	// QuarantineEntry is one dead-lettered row with its provenance.
	QuarantineEntry = etl.QuarantineEntry
	// RefreshStats summarizes one warehouse refresh (rows added, updated,
	// unchanged); its Changed method is the cache-invalidation signal.
	RefreshStats = etl.RefreshStats

	// Observer bundles a Tracer and a metrics Registry; attach one to a
	// run with WithObserver to collect spans and metrics.
	Observer = obs.Observer
	// Span is one timed operation in a trace.
	Span = obs.Span
	// Tracer collects the spans of one or more observed runs.
	Tracer = obs.Tracer
	// Registry is a metrics registry (counters, gauges, histograms).
	Registry = obs.Registry

	// VetReport is a static-vetting report (see Study.Vet and VETTING.md).
	VetReport = vet.Report
	// VetDiagnostic is one finding of the static vetter.
	VetDiagnostic = vet.Diagnostic
	// VetSeverity ranks vet findings (info, warning, error).
	VetSeverity = vet.Severity
)

// Vet severities re-exported for filtering reports.
const (
	VetInfo    = vet.SevInfo
	VetWarning = vet.SevWarning
	VetError   = vet.SevError
)

// Checkpoint-store constructors re-exported from etl.
var (
	// NewFSCheckpointer creates a filesystem checkpoint store rooted at a
	// directory (one subdirectory per workflow fingerprint).
	NewFSCheckpointer = etl.NewFSCheckpointer
	// NewMemCheckpointer creates an in-memory checkpoint store.
	NewMemCheckpointer = etl.NewMemCheckpointer
	// QuarantineSchema is the schema of RunReport.Quarantine's dead-letter
	// relation.
	QuarantineSchema = etl.QuarantineSchema
)

// ErrCorruptCheckpoint wraps checkpoint checksum/truncation detections; the
// engine treats them as misses and re-runs the step.
var ErrCorruptCheckpoint = etl.ErrCorruptCheckpoint

// ErrQuarantineBudget is the error a step fails with once the run's
// RunPolicy.MaxQuarantinedRows budget is spent.
var ErrQuarantineBudget = etl.ErrQuarantineBudget

// Observability constructors and exporters re-exported from obs.
var (
	// NewObserver creates an empty observer (fresh tracer + registry).
	NewObserver = obs.NewObserver
	// RenderTrace formats spans as a human-readable flame-style tree.
	RenderTrace = obs.RenderTree
	// WriteSpans writes spans as JSON lines.
	WriteSpans = obs.WriteSpans
	// WriteMetrics writes a registry snapshot as JSON lines.
	WriteMetrics = obs.WriteMetrics
)

// Convenience constructors re-exported from relstore.
var (
	// Null returns the NULL value.
	Null = relstore.Null
	// Int returns an integer value.
	Int = relstore.Int
	// Float returns a floating-point value.
	Float = relstore.Float
	// Str returns a string value.
	Str = relstore.Str
	// Bool returns a boolean value.
	Bool = relstore.Bool
	// NewDB creates an empty database.
	NewDB = relstore.NewDB
)

// Re-exported control kinds for form construction.
const (
	GroupBox  = ui.GroupBox
	TextBox   = ui.TextBox
	CheckBox  = ui.CheckBox
	RadioList = ui.RadioList
	DropDown  = ui.DropDown
)

// Re-exported enablement conditions.
const (
	Always       = ui.Always
	WhenAnswered = ui.WhenAnswered
	WhenEquals   = ui.WhenEquals
)

// NewEntry starts filling a form instance with the given key.
var NewEntry = ui.NewEntry

// DeriveGTree derives a g-tree from a form (Hypothesis #1).
var DeriveGTree = gtree.Derive

// NewStack builds a pattern stack over a layout.
var NewStack = patterns.NewStack

// Layouts and transforms re-exported for stack construction.
type (
	// Naive is the identity layout.
	Naive = patterns.Naive
	// Merge shares one physical table among forms.
	Merge = patterns.Merge
	// Split distributes a form over several tables.
	Split = patterns.Split
	// Generic is the EAV layout.
	Generic = patterns.Generic
	// Partitioned shards a base layout by key.
	Partitioned = patterns.Partitioned
	// Audit adds the never-delete deprecation column.
	Audit = patterns.Audit
	// Rename maps control names to physical column names.
	Rename = patterns.Rename
	// Encode stores booleans as coded strings.
	Encode = patterns.Encode
	// Sentinel stores NULL as out-of-domain sentinel values.
	Sentinel = patterns.Sentinel
	// Lookup stores categorical answers as dimension-table codes.
	Lookup = patterns.Lookup
	// Delimited packs several answers into one delimited column.
	Delimited = patterns.Delimited
)
