// Multisource: the Figure 1 architecture through the public facade. Three
// heterogeneous contributors (different wording, units, encodings, physical
// layouts) register with one System; a study picks a per-contributor
// classifier for the same study-schema domain; the generated ETL plan, the
// per-contributor SQL and XQuery translations, and the unioned study table
// are all printed for inspection.
//
//	go run ./examples/multisource [-seed 42] [-n 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"guava"
	"guava/internal/relstore"
	"guava/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 120, "records per contributor")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		log.Fatal(err)
	}
	sys := guava.New("CORI warehouse")
	for _, c := range contribs {
		if _, err := sys.RegisterContributor(c.Name, c.Form, c.Stack, c.DB); err != nil {
			log.Fatal(err)
		}
	}

	target := guava.Target{
		Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
		Kind: guava.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
	}
	st, err := sys.DefineStudy("habits-overview").
		Column("Smoking_D3", "Smoking", "D3", guava.KindString).
		For("CORI").
		Entity("All CORI procedures", "every report", "Procedure <- Procedure").
		Classify("Smoking_D3", "Habits (Cancer)", "packs/day thresholds from the cancer study", target, `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`).
		Done().
		For("EndoSoft").
		EntityFor("Procedure", "All exams", "every exam", "Procedure <- Exam").
		Classify("Smoking_D3", "Habits (Cancer, cigarettes)", "same thresholds, this vendor records cigarettes (20/pack)", target, `
None     <- CigsPerDay = 0
Light    <- 0 < CigsPerDay < 40
Moderate <- 40 <= CigsPerDay < 100
Heavy    <- CigsPerDay >= 100
`).
		Done().
		For("MedRecord").
		EntityFor("Procedure", "All records", "every record", "Procedure <- Record").
		Classify("Smoking_D3", "Habits (Cancer, coded)", "same thresholds over this vendor's coded fields", target, `
None     <- PacksDaily = 0
Light    <- 0 < PacksDaily < 2
Moderate <- 2 <= PacksDaily < 5
Heavy    <- PacksDaily >= 5
`).
		Done().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	st.Annotate("analyst", "habits overview across all vendors", time.Now())

	fmt.Println("=== generated ETL workflow (Figure 6 shape) ===")
	fmt.Println(st.Plan())

	fmt.Println("=== per-contributor SQL translation ===")
	sqls, err := st.SQL()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range sys.ContributorNames() {
		fmt.Printf("-- %s\n%s\n\n", name, sqls[name])
	}

	fmt.Println("=== XQuery translation (CORI) ===")
	xq, err := st.XQuery("CORI")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xq)
	fmt.Println()

	rows, err := st.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== study output: %d rows from %d contributors ===\n", rows.Len(), len(contribs))
	hist, err := relstore.GroupBy(rows, []string{"Contributor", "Smoking_D3"}, relstore.Aggregate{Kind: relstore.AggCount, As: "N"})
	if err != nil {
		log.Fatal(err)
	}
	sorted, err := relstore.SortBy(hist, "Contributor", "Smoking_D3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sorted.Format())
}
