// Study 2 of the paper: "of all procedures on ex-smokers, how many had a
// complication of hypoxia?" — run twice, under two readings of "ex-smoker"
// ("a previous smoker may mean someone who has quit in the last year, or in
// the last ten years, or at any time at all"). MultiClass's point is that
// the definition is an explicit, documented, reusable classifier choice,
// not something buried in an ETL script.
//
// The example also shows the failure of the classical once-integrated
// warehouse: having collapsed smoking to a boolean during integration, it
// cannot express the cohort at all.
//
//	go run ./examples/study2 [-seed 42] [-n 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"guava"
	"guava/internal/baseline"
	"guava/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 300, "records per contributor")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Study 2 under two classifier definitions of 'ex-smoker':")
	for _, recent := range []bool{false, true} {
		res, err := guava.Study2(contribs, recent)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print("  " + res.Render())
		var within int64
		if recent {
			within = 1
		}
		truth := guava.Study2TruthCounts(contribs, within)
		if res.ExSmokers != truth.ExSmokers || res.WithHypoxia != truth.WithHypoxia {
			fmt.Printf("  MISMATCH vs ground truth: %+v\n", truth)
		}
	}

	fmt.Println("\nClassical one-shot integration for comparison:")
	integrated, err := baseline.IntegrateOnce(contribs)
	if err != nil {
		log.Fatal(err)
	}
	truth := baseline.Study2Truth(contribs, 0)
	m := baseline.Score(baseline.Study2FromIntegrated(integrated), truth)
	fmt.Printf("  the integrated warehouse collapsed smoking to a boolean at load time;\n")
	fmt.Printf("  its best ex-smoker proxy scores precision %.3f, recall %.3f (TP=%d FP=%d FN=%d)\n",
		m.Precision(), m.Recall(), m.TruePositives, m.FalsePositives, m.FalseNegatives)
	fmt.Println("  — the classification decision the paper warns about, made once and irreversibly.")
}
