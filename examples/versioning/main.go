// Versioning: the paper's Section 6 extension in action. The CORI tool
// ships v2: PacksPerDay is renamed, Smoking gains an option, and a new
// control appears. Classifiers whose inputs are untouched propagate
// automatically; the rest are flagged for review with replacement
// suggestions.
//
//	go run ./examples/versioning
package main

import (
	"fmt"
	"log"

	"guava"
	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/versioning"
	"guava/internal/workload"
)

func main() {
	// Tool v1 and its g-tree.
	v1 := workload.CORIProcedureForm()
	if err := v1.Validate(); err != nil {
		log.Fatal(err)
	}
	oldTree, err := gtree.Derive("CORI", 1, v1)
	if err != nil {
		log.Fatal(err)
	}

	// Tool v2: rename PacksPerDay, extend Smoking's options, add a control.
	v2 := workload.CORIProcedureForm()
	v2.Walk(func(c *guava.Control) {
		switch c.Name {
		case "PacksPerDay":
			c.Name = "PacksDaily"
		case "Smoking":
			c.Options = append(c.Options, guava.Option{Display: "Occasional", Stored: guava.Str("Occasional")})
		}
	})
	v2.Controls = append(v2.Controls, &guava.Control{
		Name: "BiopsyTaken", Kind: guava.CheckBox, Question: "Biopsy taken?",
	})
	if err := v2.Validate(); err != nil {
		log.Fatal(err)
	}
	newTree, err := gtree.Derive("CORI", 2, v2)
	if err != nil {
		log.Fatal(err)
	}

	// What changed between versions?
	diff := gtree.Compare(oldTree, newTree)
	fmt.Println("=== g-tree diff v1 -> v2 ===")
	fmt.Printf("added:   %v\nremoved: %v\n", diff.Added, diff.Removed)
	for node, changes := range diff.Changed {
		for _, c := range changes {
			fmt.Printf("changed: %s: %s\n", node, c)
		}
	}
	fmt.Println()

	// The studies' classifiers from the v1 era.
	target := guava.Target{
		Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
		Kind: guava.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
	}
	habits, err := classifier.Parse("Habits (Cancer)", "cancer-study thresholds", target, `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`)
	if err != nil {
		log.Fatal(err)
	}
	status, err := classifier.Parse("Status", "direct status readout", guava.Target{
		Entity: "Procedure", Attribute: "Smoking", Domain: "D2",
		Kind: guava.KindString, Elements: []string{"None", "Current", "Previous"},
	}, `
None     <- Smoking = 'Never'
Current  <- Smoking = 'Current'
Previous <- Smoking = 'Quit'
`)
	if err != nil {
		log.Fatal(err)
	}
	hypoxia, err := classifier.Parse("Any hypoxia", "either desaturation flag", guava.Target{
		Entity: "Procedure", Attribute: "Hypoxia", Domain: "D1", Kind: guava.KindBool,
	}, "TRUE <- TransientHypoxia = TRUE OR ProlongedHypoxia = TRUE\nFALSE <- TRUE")
	if err != nil {
		log.Fatal(err)
	}

	decisions, err := versioning.Propagate([]*classifier.Classifier{habits, status, hypoxia}, oldTree, newTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== classifier propagation to tool v2 ===")
	fmt.Print(versioning.Render(decisions))
}
