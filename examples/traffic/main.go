// Traffic: the paper's Section 6 asks "whether GUAVA or MultiClass is able
// to provide benefits in other domains, such as traffic data and financial
// applications". Nothing in the architecture is clinical: this example runs
// the full pipeline over a traffic-citation reporting tool — a form with
// enablement (court date only for contested citations), a Merge-layout
// database shared with a warnings form, and a study classifying violation
// severity two different ways for two different consumers (an insurer and a
// safety researcher).
//
// The study runs through the observed production path: an Observer
// streams per-step progress as spans end, and the full span tree is
// printed afterwards — the live-progress usage OBSERVABILITY.md
// documents.
//
//	go run ./examples/traffic
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"guava"
	"guava/internal/patterns"
)

func citationForm() *guava.Form {
	return &guava.Form{
		Name: "Citation", KeyColumn: "EventID",
		Controls: []*guava.Control{
			{Name: "Violation", Kind: guava.DropDown, Question: "Violation observed", Required: true,
				Options: []guava.Option{
					{Display: "Speeding", Stored: guava.Str("Speeding")},
					{Display: "Red light", Stored: guava.Str("Red light")},
					{Display: "Illegal parking", Stored: guava.Str("Illegal parking")},
				}},
			{Name: "MphOver", Kind: guava.TextBox, Question: "MPH over the limit", DataType: guava.KindInt,
				Enabled: guava.Enablement{Cond: guava.WhenEquals, Control: "Violation", Value: guava.Str("Speeding")}},
			{Name: "SchoolZone", Kind: guava.CheckBox, Question: "In a school zone?"},
			{Name: "Contested", Kind: guava.CheckBox, Question: "Driver contests?"},
			{Name: "CourtWeeks", Kind: guava.TextBox, Question: "Weeks until court date", DataType: guava.KindInt,
				Enabled: guava.Enablement{Cond: guava.WhenEquals, Control: "Contested", Value: guava.Bool(true)}},
		},
	}
}

func warningForm() *guava.Form {
	return &guava.Form{
		Name: "Warning", KeyColumn: "EventID",
		Controls: []*guava.Control{
			{Name: "Violation", Kind: guava.DropDown, Question: "Violation observed", Required: true,
				Options: []guava.Option{
					{Display: "Speeding", Stored: guava.Str("Speeding")},
					{Display: "Broken light", Stored: guava.Str("Broken light")},
				}},
			{Name: "VerbalOnly", Kind: guava.CheckBox, Question: "Verbal warning only?"},
		},
	}
}

func main() {
	// The precinct's tool stores citations and warnings in ONE shared table
	// (the Merge pattern), discriminated by form name.
	cit, warn := citationForm(), warningForm()
	if err := cit.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := warn.Validate(); err != nil {
		log.Fatal(err)
	}
	citInfo, err := patterns.FromUIForm(cit)
	if err != nil {
		log.Fatal(err)
	}
	warnInfo, err := patterns.FromUIForm(warn)
	if err != nil {
		log.Fatal(err)
	}
	stack, err := patterns.NewMergeStack("TrafficEvents", "EventKind",
		[]patterns.Transform{&guava.Audit{}}, citInfo, warnInfo)
	if err != nil {
		log.Fatal(err)
	}

	sys := guava.New("precinct-7 warehouse")
	db := guava.NewDB("precinct7")
	contrib, err := sys.RegisterContributor("precinct7", cit, stack, db)
	if err != nil {
		log.Fatal(err)
	}

	// Officers file citations through the UI.
	type citation struct {
		violation  string
		mphOver    int64
		schoolZone bool
		contested  bool
	}
	data := []citation{
		{"Speeding", 9, false, false},
		{"Speeding", 24, false, true},
		{"Speeding", 31, true, true},
		{"Red light", 0, true, false},
		{"Illegal parking", 0, false, false},
		{"Speeding", 14, true, false},
	}
	for i, c := range data {
		e, err := guava.NewEntryFor(contrib, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		must := func(name string, v guava.Value) {
			if err := e.Set(name, v); err != nil {
				log.Fatal(err)
			}
		}
		must("Violation", guava.Str(c.violation))
		if c.violation == "Speeding" {
			must("MphOver", guava.Int(c.mphOver))
		}
		must("SchoolZone", guava.Bool(c.schoolZone))
		must("Contested", guava.Bool(c.contested))
		if c.contested {
			must("CourtWeeks", guava.Int(6))
		}
		if err := e.Submit(contrib.Sink()); err != nil {
			log.Fatal(err)
		}
	}

	// Two consumers classify "severity" differently over the same g-tree —
	// MultiClass's multiple-domains story, outside medicine.
	insurer := guava.Target{Entity: "Citation", Attribute: "Severity", Domain: "Insurer",
		Kind: guava.KindString, Elements: []string{"Minor", "Major"}}
	safety := guava.Target{Entity: "Citation", Attribute: "Severity", Domain: "Safety",
		Kind: guava.KindString, Elements: []string{"Low", "Elevated", "Dangerous"}}

	_, err = sys.DefineStudy("severity").
		Column("Severity_Insurer", "Severity", "Insurer", guava.KindString).
		Column("Severity_Safety", "Severity", "Safety", guava.KindString).
		For("precinct7").
		EntityFor("Citation", "All citations", "every citation", "Citation <- Citation").
		Classify("Severity_Insurer", "Premium impact", "anything 15+ over or red light is Major", insurer, `
Major <- MphOver >= 15 OR Violation = 'Red light'
Minor <- TRUE
`).
		Classify("Severity_Safety", "Pedestrian risk", "school zones escalate everything", safety, `
Dangerous <- SchoolZone = TRUE AND (MphOver >= 10 OR Violation = 'Red light')
Elevated  <- MphOver >= 20 OR SchoolZone = TRUE
Low       <- TRUE
`).
		Done().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// Run the study observed: OnEnd streams each finishing step live,
	// and the collected spans render as a tree at the end.
	observer := guava.NewObserver()
	observer.Tracer.OnEnd(func(sp *guava.Span) {
		if strings.HasPrefix(sp.Name(), "step ") {
			fmt.Printf("  [live] %-28s %s\n", sp.Name(), sp.Duration())
		}
	})
	fmt.Println("running severity study (observed):")
	rows, report, err := sys.RunStudy(context.Background(), "severity",
		guava.RunPolicy{}, 1, guava.WithObserver(observer))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace:")
	fmt.Print(guava.RenderTrace(observer.Tracer.Spans()))
	if report.Trace != nil {
		fmt.Printf("(root span %q covered the whole run: %s)\n",
			report.Trace.Name(), report.Trace.Duration())
	}
	fmt.Println("\ntraffic severity study (same citations, two domains):")
	fmt.Print(rows.Format())
	fmt.Println("\nphysical storage is one shared Merge table + audit column;")
	fmt.Println("the g-tree view hid all of it, exactly as with the clinical tools.")
}
