// Quickstart: the smallest complete GUAVA/MultiClass session.
//
// A clinic's reporting tool has one form; its database uses the Audit
// pattern (rows are never deleted). We register it as a contributor — the
// g-tree is derived automatically from the form — enter two reports through
// the UI, define a one-column study with a classifier, and run it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"guava"
)

func main() {
	// 1. The reporting tool's form, as its developer would declare it.
	form := &guava.Form{
		Name: "Visit", KeyColumn: "VisitID",
		Controls: []*guava.Control{
			{Name: "Smoking", Kind: guava.RadioList, Question: "Does the patient smoke?",
				Options: []guava.Option{
					{Display: "No", Stored: guava.Str("No")},
					{Display: "Yes", Stored: guava.Str("Yes")},
				}},
			{Name: "PacksPerDay", Kind: guava.TextBox, Question: "Packs per day",
				DataType: guava.KindFloat,
				Enabled:  guava.Enablement{Cond: guava.WhenEquals, Control: "Smoking", Value: guava.Str("Yes")}},
		},
	}

	// 2. Register the contributor: g-tree derived, pattern stack installed.
	sys := guava.New("quickstart warehouse")
	db := guava.NewDB("clinic")
	stack := guava.NewStack(guava.Naive{}, &guava.Audit{})
	contrib, err := sys.RegisterContributor("clinic", form, stack, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived g-tree:")
	fmt.Println(contrib.Tree.Render())

	// 3. Clinicians enter data through the UI (enablement enforced: the
	// packs question only opens once Smoking = Yes).
	enter := func(id int64, smoking string, packs float64) {
		e, err := guava.NewEntryFor(contrib, id)
		if err != nil {
			log.Fatal(err)
		}
		if err := e.Set("Smoking", guava.Str(smoking)); err != nil {
			log.Fatal(err)
		}
		if smoking == "Yes" {
			if err := e.Set("PacksPerDay", guava.Float(packs)); err != nil {
				log.Fatal(err)
			}
		}
		if err := e.Submit(contrib.Sink()); err != nil {
			log.Fatal(err)
		}
	}
	enter(1, "Yes", 2.5)
	enter(2, "No", 0)
	enter(3, "Yes", 0.5)

	// 4. Define and run a study: one output column, one classifier.
	target := guava.Target{
		Entity: "Visit", Attribute: "Smoking", Domain: "D3",
		Kind: guava.KindString, Elements: []string{"None", "Light", "Heavy"},
	}
	st, err := sys.DefineStudy("smoking-overview").
		Column("Smoking_D3", "Smoking", "D3", guava.KindString).
		For("clinic").
		EntityFor("Visit", "All visits", "every visit counts", "Visit <- Visit").
		Classify("Smoking_D3", "Habits", "halved cancer-study thresholds", target, `
None  <- Smoking = 'No'
Light <- 0 < PacksPerDay AND PacksPerDay < 2
Heavy <- PacksPerDay >= 2
`).
		Done().
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("generated ETL workflow:")
	fmt.Println(st.Plan())

	rows, err := st.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("study output:")
	fmt.Print(rows.Format())
}
