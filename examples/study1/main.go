// Study 1 of the paper, end to end: "of all patients undergoing upper GI
// endoscopy, how many (what proportion) had the indication of
// Asthma-specific ENT/Pulmonary Reflux symptoms? Of these, include only
// those with no history of renal failure and with cardiopulmonary and
// abdominal examinations within normal limits. How many of these suffered
// the complication of transient hypoxia? Of these, how many required each
// of the following interventions: surgery, IV fluids, or oxygen
// administration?"
//
// The funnel runs over three simulated vendor tools that word everything
// differently ("Upper GI Endoscopy" / "EGD" / procedure code 10) and store
// everything differently (Lookup+Audit, Split+Delimited+Sentinel, EAV). The
// per-stage conditions are written in each vendor's own vocabulary against
// its g-tree; the pattern stacks translate them onto the physical tables.
//
//	go run ./examples/study1 [-seed 42] [-n 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"guava"
	"guava/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 300, "records per contributor")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range contribs {
		fmt.Printf("contributor %-10s pattern stack: %s\n", c.Name, c.Stack.Describe())
	}
	fmt.Println()

	res, err := guava.Study1(contribs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	if res.AsthmaIndication > 0 {
		fmt.Printf("  proportion with asthma/reflux indication: %.1f%%\n",
			100*float64(res.AsthmaIndication)/float64(res.UpperGI))
	}

	truth := guava.Study1Truth(contribs)
	if *res == *truth {
		fmt.Println("\nevery funnel stage matches ground truth (precision = recall = 1.0)")
	} else {
		fmt.Printf("\nMISMATCH vs ground truth: %+v\n", truth)
	}
}
