package guava

// The root benchmark harness regenerates the performance-shaped experiments
// of EXPERIMENTS.md. The paper itself reports no measured tables (it is a
// concept paper), so each bench corresponds to a design artifact whose cost
// the paper discusses:
//
//	BenchmarkPattern/*        — T1: per-pattern write/read cost
//	BenchmarkClassifierEval   — F5: classifier evaluation throughput
//	BenchmarkStudyCompile     — F6: study → ETL compilation
//	BenchmarkStudyRun/*       — F6/A3: end-to-end workflow execution scaling
//	BenchmarkMaterialize/*    — F7/A1: materialization strategies vs the
//	                            classifier/domain ratio
//	BenchmarkGeneratedVsHand  — A2: generated workflow vs expert hand ETL
//	BenchmarkGTreeQuery/*     — pattern-stack depth ablation (A3)
//	BenchmarkDeriveGTree      — H1: g-tree derivation cost
//	BenchmarkStudy1Funnel     — ST1 end to end

import (
	"context"
	"fmt"
	"testing"

	"guava/internal/baseline"
	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gquery"
	"guava/internal/gtree"
	"guava/internal/materialize"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// benchForm builds the standard pattern-bench form info and rows.
func benchForm(b *testing.B, n int) (patterns.FormInfo, []relstore.Row) {
	b.Helper()
	schema := relstore.MustSchema(
		relstore.Column{Name: "ID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Smoking", Type: relstore.KindString},
		relstore.Column{Name: "Packs", Type: relstore.KindFloat},
		relstore.Column{Name: "Hypoxia", Type: relstore.KindBool},
		relstore.Column{Name: "Alcohol", Type: relstore.KindString},
	)
	form := patterns.FormInfo{Name: "P", KeyColumn: "ID", Schema: schema}
	rows := make([]relstore.Row, n)
	statuses := []string{"Never", "Current", "Quit"}
	for i := range rows {
		rows[i] = relstore.Row{
			relstore.Int(int64(i + 1)),
			relstore.Str(statuses[i%3]),
			relstore.Float(float64(i%10) / 2),
			relstore.Bool(i%7 == 0),
			relstore.Str(workload.AlcoholLevels[i%4]),
		}
	}
	return form, rows
}

func benchStacks() map[string]*patterns.Stack {
	return map[string]*patterns.Stack{
		"naive":    patterns.NewStack(patterns.Naive{}),
		"split":    patterns.NewStack(&patterns.Split{}),
		"generic":  patterns.NewStack(patterns.Generic{}),
		"audit":    patterns.NewStack(patterns.Naive{}, &patterns.Audit{}),
		"lookup":   patterns.NewStack(patterns.Naive{}, &patterns.Lookup{Columns: []string{"Smoking", "Alcohol"}}),
		"sentinel": patterns.NewStack(patterns.Naive{}, &patterns.Sentinel{}),
		"deep": patterns.NewStack(patterns.Generic{},
			&patterns.Audit{},
			&patterns.Rename{Physical: map[string]string{"Smoking": "f1"}},
			&patterns.Encode{},
		),
	}
}

// BenchmarkPattern measures write+read round trips per pattern stack (T1).
func BenchmarkPattern(b *testing.B) {
	const n = 500
	form, rows := benchForm(b, n)
	for name, stack := range benchStacks() {
		b.Run(name+"/write", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := relstore.NewDB("bench")
				if err := stack.Install(db, form); err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if err := stack.WriteRow(db, form, r); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/read", func(b *testing.B) {
			db := relstore.NewDB("bench")
			if err := stack.Install(db, form); err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				if err := stack.WriteRow(db, form, r); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stack.Read(db, form); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassifierEval measures direct rule evaluation throughput (F5).
func BenchmarkClassifierEval(b *testing.B) {
	form, rows := benchForm(b, 2000)
	tree := benchTree(b)
	cl, err := classifier.Parse("Habits", "", classifier.Target{
		Entity: "P", Attribute: "Smoking", Domain: "D3", Kind: relstore.KindString,
		Elements: []string{"None", "Light", "Moderate", "Heavy"},
	}, `
None     <- Packs = 0
Light    <- 0 < Packs < 2
Moderate <- 2 <= Packs < 5
Heavy    <- Packs >= 5
`)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := cl.Bind(tree)
	if err != nil {
		b.Fatal(err)
	}
	rel := &relstore.Rows{Schema: form.Schema, Data: rows}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bound.ClassifyColumn(rel); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTree derives a g-tree matching benchForm's columns.
func benchTree(b *testing.B) *gtree.Tree {
	b.Helper()
	f := benchUIForm()
	tree, err := gtree.Derive("bench", 1, f)
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

func benchUIForm() *Form {
	f := &Form{Name: "P", KeyColumn: "ID", Controls: []*Control{
		{Name: "Smoking", Kind: RadioList, Question: "smoking?", Options: []Option{
			{Display: "Never", Stored: Str("Never")},
			{Display: "Current", Stored: Str("Current")},
			{Display: "Quit", Stored: Str("Quit")},
		}},
		{Name: "Packs", Kind: TextBox, Question: "packs?", DataType: KindFloat},
		{Name: "Hypoxia", Kind: CheckBox, Question: "hypoxia?"},
		{Name: "Alcohol", Kind: DropDown, Question: "alcohol?", Options: []Option{
			{Display: "None", Stored: Str("None")},
			{Display: "Light", Stored: Str("Light")},
			{Display: "Moderate", Stored: Str("Moderate")},
			{Display: "Heavy", Stored: Str("Heavy")},
		}},
	}}
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return f
}

// BenchmarkDeriveGTree measures automatic g-tree derivation (H1).
func BenchmarkDeriveGTree(b *testing.B) {
	f := workload.CORIProcedureForm()
	if err := f.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gtree.Derive("CORI", 1, f); err != nil {
			b.Fatal(err)
		}
	}
}

// benchContribs caches workload contributors per size.
var benchContribCache = map[int][]*workload.Contributor{}

func benchContribs(b *testing.B, n int) []*workload.Contributor {
	b.Helper()
	if cs, ok := benchContribCache[n]; ok {
		return cs
	}
	cs, err := workload.BuildAll(99, n)
	if err != nil {
		b.Fatal(err)
	}
	benchContribCache[n] = cs
	return cs
}

// BenchmarkStudyCompile measures study → ETL workflow compilation (F6).
func BenchmarkStudyCompile(b *testing.B) {
	cs := benchContribs(b, 50)
	spec, err := baseline.ReferenceSpec(cs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := etl.Compile(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyRun measures end-to-end workflow execution as the
// per-contributor record count grows (F6 / A3 scaling).
func BenchmarkStudyRun(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			cs := benchContribs(b, n)
			spec, err := baseline.ReferenceSpec(cs)
			if err != nil {
				b.Fatal(err)
			}
			compiled, err := etl.Compile(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compiled.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelWorkflow compares serial and parallel execution of the
// same compiled study: the per-contributor chains are independent until the
// final union (A5).
func BenchmarkParallelWorkflow(b *testing.B) {
	cs := benchContribs(b, 400)
	spec, err := baseline.ReferenceSpec(cs)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.RunParallel(context.Background(), 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGeneratedVsHand compares the generated workflow with the
// hand-written expert ETL over the same data (A2). Same output, measured
// overhead factor.
func BenchmarkGeneratedVsHand(b *testing.B) {
	cs := benchContribs(b, 200)
	spec, err := baseline.ReferenceSpec(cs)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("generated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hand", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.HandETL(cs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaterialize sweeps the classifier/domain ratio (F7 / A1): as the
// number of classifiers per attribute grows, full materialization's
// footprint grows linearly while prepare/access trade off across strategies.
func BenchmarkMaterialize(b *testing.B) {
	cs := benchContribs(b, 200)
	cori := cs[0]
	rows, err := cori.Stack.Read(cori.DB, cori.Info)
	if err != nil {
		b.Fatal(err)
	}
	mkCatalog := func(perAttr int) *materialize.Catalog {
		cat := &materialize.Catalog{Base: rows, Binds: map[string]*classifier.Bound{}, AttributeOf: map[string]string{}}
		for i := 0; i < perAttr; i++ {
			// Each variant uses slightly different thresholds: same inputs,
			// different classification — the multi-classifier reality of
			// MultiClass.
			name := fmt.Sprintf("Smoking_v%02d", i)
			src := fmt.Sprintf(`
None  <- PacksPerDay = 0
Light <- 0 < PacksPerDay < %d
Heavy <- PacksPerDay >= %d
`, i+1, i+1)
			cl, err := classifier.Parse(name, "", classifier.Target{
				Entity: "Procedure", Attribute: "Smoking", Domain: name,
				Kind: relstore.KindString, Elements: []string{"None", "Light", "Heavy"},
			}, src)
			if err != nil {
				b.Fatal(err)
			}
			bound, err := cl.Bind(cori.Tree)
			if err != nil {
				b.Fatal(err)
			}
			cat.Binds[name] = bound
			cat.AttributeOf[name] = "Smoking"
		}
		return cat
	}
	for _, ratio := range []int{2, 8, 24} {
		cat := mkCatalog(ratio)
		cols := cat.Columns()
		strategies := []materialize.Strategy{
			&materialize.Full{},
			&materialize.OnDemand{},
			&materialize.Hot{HotColumns: cols[:1]},
			&materialize.Algebraic{},
		}
		for _, s := range strategies {
			s := s
			b.Run(fmt.Sprintf("ratio=%d/%s/prepare", ratio, s.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := s.Prepare(cat); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(s.StoredCells()), "cells")
			})
			b.Run(fmt.Sprintf("ratio=%d/%s/access", ratio, s.Name()), func(b *testing.B) {
				if err := s.Prepare(cat); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Column(cols[i%len(cols)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGTreeQuery ablates pattern-stack depth: the same logical query
// through progressively deeper stacks (A3).
func BenchmarkGTreeQuery(b *testing.B) {
	const n = 500
	form, rows := benchForm(b, n)
	tree := benchTree(b)
	depths := map[string]*patterns.Stack{
		"depth0": patterns.NewStack(patterns.Naive{}),
		"depth1": patterns.NewStack(patterns.Naive{}, &patterns.Audit{}),
		"depth2": patterns.NewStack(patterns.Naive{}, &patterns.Audit{}, &patterns.Encode{}),
		"depth3": patterns.NewStack(patterns.Naive{}, &patterns.Audit{}, &patterns.Encode{}, &patterns.Sentinel{}),
		"depth4": patterns.NewStack(patterns.Naive{}, &patterns.Audit{}, &patterns.Encode{}, &patterns.Sentinel{}, &patterns.Rename{Physical: map[string]string{"Smoking": "f1"}}),
	}
	for name, stack := range depths {
		b.Run(name, func(b *testing.B) {
			db := relstore.NewDB("bench")
			if err := stack.Install(db, form); err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				if err := stack.WriteRow(db, form, r); err != nil {
					b.Fatal(err)
				}
			}
			q := &gquery.Query{Tree: tree, Select: []string{"ID", "Packs"}, Where: "Smoking = 'Current'"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Run(context.Background(), db, stack, form); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPushdown ablates predicate pushdown: the same selective query
// with the predicate translated to the physical scan vs. filtering the fully
// reconstructed view (A4).
func BenchmarkPushdown(b *testing.B) {
	const n = 2000
	form, rows := benchForm(b, n)
	stack := patterns.NewStack(patterns.Naive{}, &patterns.Audit{}, &patterns.Lookup{Columns: []string{"Smoking", "Alcohol"}})
	db := relstore.NewDB("bench")
	if err := stack.Install(db, form); err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			b.Fatal(err)
		}
	}
	// Selective predicate: one of ten packs buckets.
	pred := relstore.And(
		relstore.Eq("Smoking", relstore.Str("Current")),
		relstore.Cmp(relstore.CmpGe, relstore.Col("Packs"), relstore.Lit(relstore.Float(4))),
	)
	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := stack.QueryWithInfo(db, form, pred, []string{"ID"})
			if err != nil {
				b.Fatal(err)
			}
			if !res.PushedDown {
				b.Fatal("expected pushdown")
			}
		}
	})
	b.Run("fallback", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stack.QueryNoPushdown(db, form, pred, []string{"ID"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStudy1Funnel measures the ST1 funnel end to end.
func BenchmarkStudy1Funnel(b *testing.B) {
	cs := benchContribs(b, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Study1(cs); err != nil {
			b.Fatal(err)
		}
	}
}
