// Command guavavet statically vets GUAVA/MultiClass study artifacts before
// anything runs: classifier bundles (.clf), g-tree and study-schema XML
// (.xml), and study manifests (.study). It loads every file (directories
// expand to their artifact files), cross-checks the whole set — classifier
// satisfiability, shadowing, and domain gaps; context-disabled guards;
// enablement cycles and dead answer options; study wiring against the study
// schema — and prints the diagnostics.
//
// Usage:
//
//	guavavet [-format text|json|sarif] path...
//
// Exit status is 0 when no error-severity diagnostics were found (warnings
// and infos alone do not fail the run), 1 when at least one error was, and
// 2 on usage errors. See VETTING.md for the diagnostic catalog.
package main

import (
	"flag"
	"fmt"
	"os"

	"guava/internal/vet"
)

func main() {
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: guavavet [-format text|json|sarif] path...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	rep := vet.LoadPaths(flag.Args()).Vet()
	rep.Publish(nil)

	switch *format {
	case "text":
		fmt.Print(rep.Text())
	case "json":
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "guavavet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", out)
	case "sarif":
		out, err := rep.SARIF()
		if err != nil {
			fmt.Fprintf(os.Stderr, "guavavet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", out)
	default:
		fmt.Fprintf(os.Stderr, "guavavet: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}
