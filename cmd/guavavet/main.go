// Command guavavet statically vets GUAVA/MultiClass study artifacts before
// anything runs: classifier bundles (.clf), g-tree and study-schema XML
// (.xml), study manifests (.study), and free-text extraction specs
// (.extract). It loads every file (directories expand to their artifact
// files), cross-checks the whole set — classifier satisfiability, shadowing,
// and domain gaps; context-disabled guards; enablement cycles and dead
// answer options; extraction specs against their target g-trees (GV30x);
// study wiring against the study schema — and, when the set forms a complete
// study manifest that vets clean, compiles the study and runs the plan-level
// dataflow analyzer (internal/plancheck, GV21x codes) over the operator
// trees.
//
// Usage:
//
//	guavavet [-format text|json|sarif] path...
//
// Exit status is the stable contract CI scripts key on: 0 when no
// error-severity diagnostics were found (warnings and infos alone never flip
// the exit status, in any format), 1 when at least one error was, and 2 on
// usage errors. See VETTING.md for the diagnostic catalog.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"guava/internal/plancheck"
)

// run is the whole program, factored for testing: it parses args, vets, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("guavavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text, json, or sarif")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: guavavet [-format text|json|sarif] path...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	rep := plancheck.VetPaths(fs.Args(), plancheck.Options{})
	rep.Publish(nil)

	switch *format {
	case "text":
		fmt.Fprint(stdout, rep.Text())
	case "json":
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "guavavet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	case "sarif":
		out, err := rep.SARIF()
		if err != nil {
			fmt.Fprintf(stderr, "guavavet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	default:
		fmt.Fprintf(stderr, "guavavet: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if rep.HasErrors() {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
