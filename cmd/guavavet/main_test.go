package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func corpus(elem ...string) string {
	return filepath.Join(append([]string{"..", "..", "internal", "vet", "testdata"}, elem...)...)
}

// TestExitCodeContract pins the documented exit-status contract: 0 when only
// warnings/infos (or nothing) were found, 1 on any error, 2 on usage errors —
// regardless of output format.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{corpus("corpus", "clean_study")}, 0},
		{"warning-only", []string{corpus("corpus", "GV103_bad")}, 0},
		{"info-only", []string{corpus("corpus", "GV307_bad")}, 0},
		{"error", []string{corpus("corpus", "GV001_bad")}, 1},
		{"plan-error", []string{corpus("plancorpus", "GV212_bad")}, 1},
		{"clean-extract", []string{corpus("corpus", "clean_extract")}, 0},
		{"malformed-extract", []string{corpus("corpus", "GV308_bad")}, 1},
		{"overlapping-extract", []string{corpus("corpus", "GV311_bad")}, 1},
		{"layout-misuse", []string{corpus("corpus", "GV313_bad")}, 1},
		{"warning-only-json", []string{"-format", "json", corpus("corpus", "GV103_bad")}, 0},
		{"warning-only-sarif", []string{"-format", "sarif", corpus("corpus", "GV103_bad")}, 0},
		{"error-sarif", []string{"-format", "sarif", corpus("corpus", "GV001_bad")}, 1},
		{"no-args", nil, 2},
		{"bad-format", []string{"-format", "yaml", corpus("corpus", "clean_study")}, 2},
		{"bad-flag", []string{"-nope"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestSARIFWarningLevelStaysWarning guards the level mapping end to end: a
// warning-severity diagnostic must render as SARIF level "warning" (never
// "error") and must leave the exit status at 0.
func TestSARIFWarningLevelStaysWarning(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-format", "sarif", corpus("corpus", "GV103_bad")}, &stdout, &stderr); got != 0 {
		t.Fatalf("warning-only run exited %d, want 0\nstderr:\n%s", got, stderr.String())
	}
	var log struct {
		Runs []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("unexpected SARIF shape:\n%s", stdout.String())
	}
	for _, res := range log.Runs[0].Results {
		if res.RuleID == "GV103" && res.Level != "warning" {
			t.Errorf("GV103 rendered at level %q, want \"warning\"", res.Level)
		}
	}
}

// TestPlanDiagnosticsSurface proves the CLI runs the plan analyzer: a bundle
// whose artifacts vet clean but whose compiled plan is contradictory must
// report GV21x codes through the ordinary text output.
func TestPlanDiagnosticsSurface(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{corpus("plancorpus", "GV212_bad")}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	for _, code := range []string{"GV211", "GV212"} {
		if !strings.Contains(stdout.String(), code) {
			t.Errorf("output missing %s:\n%s", code, stdout.String())
		}
	}
}
