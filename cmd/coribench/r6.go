package main

import (
	"context"
	"fmt"
	"time"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// expR6: incremental refresh scaling. The periodic-inclusion cost of a full
// recompute grows with the warehouse — every contributor record is
// re-extracted and re-classified on every tick — while the delta path's
// cost tracks the number of changed entities, which a steady trickle of
// contributor edits keeps constant. The harness replays the same tick at
// warehouse scales 100x apart: each tick applies a fixed-size random
// mutation batch and refreshes, once through RefreshDelta (journal scan,
// keyed re-extract, group-wise patch) and once through the full plan.
// Flatness is the ratio of delta tick latency at the largest scale to the
// smallest; -max-flat turns a too-steep ratio into an error, and
// -min-delta-speedup gates the delta-vs-full advantage at the largest
// scale — the CI regression gates for the incremental path.
func expR6(seed int64, batch int, maxFlat, minDeltaSpeedup float64) {
	scales := []int{20, 200, 2000}
	fmt.Printf("== R6: incremental refresh vs warehouse scale (%d mutations/tick, scales %v) ==\n", batch, scales)

	type result struct {
		n           int
		rows        int
		delta, full time.Duration
	}
	const reps = 6
	var results []result
	for _, n := range scales {
		contribs, err := workload.BuildAll(seed, n)
		if err != nil {
			fail(err)
		}
		spec, err := baseline.ReferenceSpec(contribs)
		if err != nil {
			fail(err)
		}
		compiled, err := etl.Compile(spec)
		if err != nil {
			fail(err)
		}
		warehouse := relstore.NewDB("warehouse")
		if _, err := compiled.Refresh(warehouse); err != nil {
			fail(err)
		}
		cursors := etl.NewDeltaCursors()
		if err := compiled.SeedDeltaCursors(cursors); err != nil {
			fail(err)
		}

		// One untimed warm-up tick absorbs the first-call setup cost (the
		// delta path builds the warehouse EntityKey/Contributor indexes on
		// its first run) so the timed reps measure the steady state.
		muts := workload.RandomBatch(contribs, seed+int64(n*100+99), batch)
		if err := workload.Apply(contribs, muts); err != nil {
			fail(err)
		}
		if _, err := compiled.RefreshDelta(context.Background(), warehouse, etl.DeltaOptions{Cursors: cursors}); err != nil {
			fail(err)
		}

		// Delta ticks: every rep is a real refresh — fresh mutations land in
		// the journals, then only those entities are recomputed and patched.
		// The mutations themselves are applied outside the timed region:
		// contributors pay that cost identically under either strategy.
		var deltaSum time.Duration
		for tick := 0; tick < reps; tick++ {
			muts := workload.RandomBatch(contribs, seed+int64(n*100+tick), batch)
			if err := workload.Apply(contribs, muts); err != nil {
				fail(err)
			}
			t0 := time.Now()
			if _, err := compiled.RefreshDelta(context.Background(), warehouse, etl.DeltaOptions{Cursors: cursors}); err != nil {
				fail(err)
			}
			deltaSum += time.Since(t0)
		}
		deltaDur := deltaSum / reps

		// Full ticks over the same (now stable) state: the whole plan re-runs
		// and the merge finds everything unchanged — the steady-state cost of
		// periodic inclusion without journals.
		fullDur, err := timeIt(reps, func() error {
			_, err := compiled.RefreshContext(context.Background(), warehouse, etl.RunPolicy{})
			return err
		})
		if err != nil {
			fail(err)
		}

		table, err := warehouse.Table(compiled.Output.Table)
		if err != nil {
			fail(err)
		}
		results = append(results, result{n: n, rows: table.Len(), delta: deltaDur, full: fullDur})
	}

	fmt.Printf("%-12s %12s %14s %14s %10s\n", "records", "study rows", "delta tick", "full tick", "speedup")
	for _, r := range results {
		fmt.Printf("%-12d %12d %14s %14s %9.1fx\n", r.n, r.rows, r.delta, r.full, float64(r.full)/float64(r.delta))
	}
	first, last := results[0], results[len(results)-1]
	flat := float64(last.delta) / float64(first.delta)
	growth := float64(last.rows) / float64(first.rows)
	fmt.Printf("delta tick latency grew %.2fx while the warehouse grew %.0fx\n", flat, growth)
	if maxFlat > 0 && flat > maxFlat {
		fail(fmt.Errorf("R6: delta latency grew %.2fx across the scales, above the %.2fx flatness gate", flat, maxFlat))
	}
	speedup := float64(last.full) / float64(last.delta)
	if minDeltaSpeedup > 0 && speedup < minDeltaSpeedup {
		fail(fmt.Errorf("R6: delta speedup %.1fx at the largest scale below the %.1fx gate", speedup, minDeltaSpeedup))
	}
	fmt.Println()
}
