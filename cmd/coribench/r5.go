package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"time"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/serve"
	"guava/internal/workload"
)

// expR5: serving-path latency. The baseline is what an analyst pays today
// for every repeated extract — compile the study and run it from the
// contributor databases, per request. The serving path compiles once,
// refreshes the warehouse once, and answers from the predicate-pushdown +
// result-cache read path; the load generator replays the same traffic mix
// cold (cache filling) and warm (cache proven).
func expR5(seed int64, n, clients, nreqs int, minSpeedup float64) {
	fmt.Printf("== R5: serving extracts under %d clients (%d records x 3 contributors, %d requests/pass) ==\n",
		clients, n, nreqs)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}

	// Baseline: compile-and-run-per-request.
	const baseReps = 11
	baseLats := make([]time.Duration, 0, baseReps)
	for i := 0; i < baseReps; i++ {
		t0 := time.Now()
		compiled, err := etl.Compile(spec)
		if err != nil {
			fail(err)
		}
		if _, err := compiled.Run(); err != nil {
			fail(err)
		}
		baseLats = append(baseLats, time.Since(t0))
	}
	sort.Slice(baseLats, func(i, j int) bool { return baseLats[i] < baseLats[j] })
	baseP50 := baseLats[len(baseLats)/2]

	// Serving path: studyd's server over the same study, driven over HTTP.
	srv := serve.NewServer(serve.Config{
		MaxInFlight: clients * 2,
		Observer:    &obs.Observer{Metrics: obs.NewRegistry()},
	})
	if err := srv.AddStudy(context.Background(), spec); err != nil {
		fail(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	do := func(r workload.ExtractRequest) (bool, error) {
		resp, err := client.Get(ts.URL + "/studies/" + r.Study + "/extract?" + url.Values(r.Params).Encode())
		if err != nil {
			return false, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Guava-Cache") == "hit", nil
	}

	reqs := workload.ExtractRequests(spec.Name, nreqs, seed)
	cold := workload.Drive(reqs, clients, do)
	warm := workload.Drive(reqs, clients, do)

	fmt.Printf("%-36s %10s %10s %8s %8s %12s\n", "path", "p50", "p99", "hit%", "errors", "req/s")
	fmt.Printf("%-36s %10s %10s %8s %8s %12s\n", "compile-and-run-per-request", baseP50,
		baseLats[len(baseLats)-1], "-", "-", "-")
	for _, pass := range []struct {
		name  string
		stats *workload.LoadStats
	}{{"studyd cold (cache filling)", cold}, {"studyd warm (cache proven)", warm}} {
		fmt.Printf("%-36s %10s %10s %7.1f%% %8d %12.0f\n", pass.name,
			pass.stats.P50(), pass.stats.P99(), pass.stats.HitRatio()*100, pass.stats.Errors,
			pass.stats.Throughput())
	}
	if cold.Errors > 0 || warm.Errors > 0 {
		fail(fmt.Errorf("R5: load run saw errors (cold %d, warm %d)", cold.Errors, warm.Errors))
	}
	if warm.HitRatio() <= cold.HitRatio() {
		fail(fmt.Errorf("R5: warm pass hit ratio %.2f did not improve on cold %.2f",
			warm.HitRatio(), cold.HitRatio()))
	}

	speedup := float64(baseP50) / float64(warm.P50())
	fmt.Printf("warm-cache extract p50 speedup vs compile-and-run-per-request: %.1fx\n", speedup)
	if minSpeedup > 0 && speedup < minSpeedup {
		fail(fmt.Errorf("R5: warm-cache speedup %.1fx below the %.1fx gate", speedup, minSpeedup))
	}
	fmt.Println()
}
