package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strconv"
	"time"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/obs"
	"guava/internal/serve"
	"guava/internal/workload"
)

// expR9: robustness under storage faults and offered load. An in-process
// studyd serves from a crash-consistent warehouse whose filesystem runs a
// fault schedule (torn renames, short writes, dropped fsyncs, ...), while a
// churn goroutine keeps mutating contributors and forcing refreshes. The
// open-loop driver offers Poisson arrivals at -rps for -load-duration and
// verifies the robustness contract end to end: zero hard errors, zero
// stale reads (generation stamps never go backwards), shed load bounded to
// the 429/503 path with Retry-After honored, and p99 under -max-p99 while
// goodput stays above -min-rps.
func expR9(seed int64, n int, rps float64, dur time.Duration, faultSpec string, minRPS float64, maxP99 time.Duration) {
	fmt.Printf("== R9: fault-schedule load (rps=%.0f, duration=%s, faults=%q, %d records x 3 contributors) ==\n",
		rps, dur, faultSpec, n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}

	dir, err := os.MkdirTemp("", "coribench-r9-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	observer := &obs.Observer{Metrics: obs.NewRegistry()}
	faults, err := faulty.ParseFaultSchedule(faultSpec)
	if err != nil {
		fail(err)
	}
	ffs := faulty.NewFS(etl.OSFS{}, faults...)
	ffs.Metrics = observer.Metrics

	srv := serve.NewServer(serve.Config{
		MaxInFlight:   64,
		MaxPerStudy:   32,
		WarehouseDir:  dir,
		FS:            ffs,
		Observer:      observer,
		BrownoutAfter: 5,
	})
	ctx := context.Background()
	if err := srv.AddStudy(ctx, spec); err != nil {
		fail(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}

	// Churn: contributor mutations + forced refreshes racing the reads, so
	// generations keep advancing (and keep being persisted through the
	// fault-injecting filesystem) for the whole run.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	var refreshes, refreshFails int
	go func() {
		defer close(churnDone)
		tick := 0
		for {
			select {
			case <-churnStop:
				return
			default:
			}
			tick++
			if err := workload.Apply(contribs, workload.RandomBatch(contribs, seed+int64(tick), 4)); err != nil {
				refreshFails++
				continue
			}
			resp, err := client.Post(ts.URL+"/studies/"+spec.Name+"/refresh", "application/json", nil)
			refreshes++
			if err != nil {
				refreshFails++
			} else {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					refreshFails++
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	do := func(r workload.ExtractRequest) workload.Outcome {
		resp, err := client.Get(ts.URL + "/studies/" + r.Study + "/extract?" + url.Values(r.Params).Encode())
		if err != nil {
			return workload.Outcome{Err: err}
		}
		defer resp.Body.Close()
		out := workload.Outcome{Status: resp.StatusCode, Hit: resp.Header.Get("X-Guava-Cache") == "hit"}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			out.RetryAfter = time.Duration(ra) * time.Second
		}
		if resp.StatusCode == http.StatusOK {
			var body struct {
				Generation int64 `json:"generation"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
				out.Gen = body.Generation
			}
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return out
	}

	reqs := workload.ExtractRequests(spec.Name, 200, seed)
	stats := workload.DriveOpenLoop(reqs, workload.OpenLoopOptions{
		RPS:            rps,
		Duration:       dur,
		Seed:           seed,
		MaxOutstanding: 128,
		MaxRetries:     3,
		MaxBackoff:     100 * time.Millisecond,
	}, do)
	close(churnStop)
	<-churnDone

	good := stats.Requests - stats.Errors - stats.Shed
	goodput := float64(good) / stats.Elapsed.Seconds()
	m := observer.Metrics
	fmt.Printf("%-14s %10s %10s %10s %10s %10s %10s\n",
		"", "offered", "sent", "dropped", "shed", "errors", "stale")
	fmt.Printf("%-14s %10d %10d %10d %10d %10d %10d\n",
		"requests", stats.Offered, stats.Requests, stats.Dropped, stats.Shed, stats.Errors, stats.StaleReads)
	fmt.Printf("latency p50 %s  p99 %s  hit %.1f%%  shed rate %.1f%%  retries %d\n",
		stats.P50(), stats.P99(), stats.HitRatio()*100, stats.ShedRate()*100, stats.Retries)
	fmt.Printf("churn: %d refreshes (%d failed), %d generations swapped, %d persisted (%d persist errors)\n",
		refreshes, refreshFails,
		m.Counter("serve.snapshot.swaps").Value(), m.Counter("serve.snapshot.persist").Value(),
		m.Counter("serve.snapshot.persist.errors").Value())
	fmt.Printf("storage faults injected: %d %v\n", ffs.InjectedTotal(), ffs.Injected())
	fmt.Printf("goodput: %.0f req/s\n", goodput)

	if stats.Errors > 0 {
		fail(fmt.Errorf("R9: %d hard errors under fault schedule (must be zero)", stats.Errors))
	}
	if stats.StaleReads > 0 {
		fail(fmt.Errorf("R9: %d stale reads — a generation stamp went backwards", stats.StaleReads))
	}
	if minRPS > 0 && goodput < minRPS {
		fail(fmt.Errorf("R9: goodput %.0f req/s below the %.0f gate", goodput, minRPS))
	}
	if maxP99 > 0 && stats.P99() > maxP99 {
		fail(fmt.Errorf("R9: p99 %s above the %s gate", stats.P99(), maxP99))
	}
	fmt.Println()
}
