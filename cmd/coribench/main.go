// Command coribench is the experiment harness: it regenerates the
// measurable rows of EXPERIMENTS.md outside `go test -bench`, printing one
// section per experiment. See EXPERIMENTS.md for how each section maps onto
// the paper's figures, tables, and hypotheses.
//
// R1 measures the robustness layer: study throughput with a fraction of
// the contributor extract chains wrapped in fault injectors (-faults),
// retried under a budget (-retries), both for transient faults that
// recover and for permanent faults absorbed by graceful degradation.
// With -observe, the R1 runs execute with tracing attached.
//
// R2 measures the observability layer itself: the same study run plain
// and with a full observer attached (spans + metrics), reporting the
// relative overhead. -max-overhead makes a too-slow tracer an error —
// the CI regression gate.
//
// R3 measures the static vetting layer: wall-time of a full vet.Study
// pass over the reference study against the compile and run it guards,
// so EXPERIMENTS.md can state the cost of vetting-before-every-run.
//
// R4 measures the crash-recovery layer: the same study run without
// checkpoints, with filesystem checkpoints (the durability overhead), and
// resumed from checkpoints after a crash at the last classify step (the
// work saved), plus a quarantine run with poison rows diverted to the
// dead-letter relation.
//
// R5 measures the serving layer: the workload load generator replays a
// deterministic analyst traffic mix against an in-process studyd server
// from -clients concurrent clients, reporting extract p50/p99, cache hit
// ratio, and throughput for a cold and a warm pass — against the
// compile-and-run-per-request baseline (what repeated runstudy
// invocations cost). -min-speedup makes a too-small warm-cache advantage
// an error — the CI regression gate.
//
// R6 measures the incremental-refresh layer: a fixed-size mutation tick
// refreshed through the journal-driven delta path vs a full plan recompute,
// at warehouse scales 100x apart. -max-flat gates how much the delta tick
// may slow down across the scales; -min-delta-speedup gates its advantage
// over the full recompute at the largest scale.
//
// R7 measures the columnar storage layer: the same chunked select and hash
// join with the worker pool pinned to 1 vs 4 workers (with byte-identical
// output checks), the sharded-table and sharded-join paths against their
// single-shard equivalents, and a segment-backed scan under a byte budget a
// tenth of the file size — the warehouse-exceeds-RAM scenario. -min-par-speedup
// gates the scan/join parallel speedup; it defaults to 0 (report only)
// because the number is meaningless without multiple cores.
//
// R9 measures the robustness of the serving path as a whole: an in-process
// studyd over a crash-consistent warehouse whose filesystem executes a
// storage-fault schedule (-fs-faults), under open-loop Poisson load at
// -rps for -load-duration while contributors churn and refreshes race the
// reads. -min-rps and -max-p99 gate goodput and tail latency; any hard
// error or stale read (a generation stamp going backwards) fails the run
// unconditionally.
//
// R10 measures the free-text extraction layer: the strict extraction
// rate in reports/s over the Notes corpus, the diverting read's overhead
// on clean and on partially-corrupt corpora (misses quarantine with span
// provenance instead of failing the read), and the end-to-end cost of
// adding the text arm to the reference study. -min-extract-rps gates the
// strict extraction rate — the CI regression gate.
//
// -cpuprofile, -memprofile, and -trace enable the stdlib profilers for
// any experiment selection.
//
// Usage:
//
//	coribench [-exp all|T1|H2|A1|A2|A3|R1|R2|R3|R4|R5|R6|R7|R9|R10] [-seed 42] [-n 200]
//	          [-faults 0.33] [-retries 2] [-observe]
//	          [-max-overhead 0] [-clients 8] [-requests 400]
//	          [-min-speedup 0] [-delta-batch 24] [-max-flat 0]
//	          [-min-delta-speedup 0] [-min-par-speedup 0]
//	          [-rps 300] [-load-duration 3s] [-fs-faults torn_rename:MANIFEST@2]
//	          [-min-rps 0] [-max-p99 0] [-min-extract-rps 0]
//	          [-cpuprofile f] [-memprofile f] [-trace f]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"guava/internal/baseline"
	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/materialize"
	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/vet"
	"guava/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, T1, H2, A1, A2, A3, R1, R2, R3, R4, R5, R6, R7, R9, R10")
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 200, "records per contributor")
	faults := flag.Float64("faults", 0.33, "fraction of contributor chains wrapped in fault injectors (R1)")
	retries := flag.Int("retries", 2, "retries per step beyond the first attempt (R1)")
	observe := flag.Bool("observe", false, "run R1 with tracing attached (smoke-tests the observability layer)")
	maxOverhead := flag.Float64("max-overhead", 0, "fail if R2 tracing overhead exceeds this percentage (0 = report only)")
	clients := flag.Int("clients", 8, "concurrent load-generator clients (R5)")
	requests := flag.Int("requests", 400, "extract requests per load pass (R5)")
	minSpeedup := flag.Float64("min-speedup", 0, "fail if R5 warm-cache p50 speedup falls below this factor (0 = report only)")
	deltaBatch := flag.Int("delta-batch", 24, "contributor mutations per refresh tick (R6)")
	maxFlat := flag.Float64("max-flat", 0, "fail if R6 delta tick latency grows by more than this factor across the warehouse scales (0 = report only)")
	minDeltaSpeedup := flag.Float64("min-delta-speedup", 0, "fail if R6 delta-vs-full speedup at the largest scale falls below this factor (0 = report only)")
	minParSpeedup := flag.Float64("min-par-speedup", 0, "fail if R7 parallel scan or join speedup falls below this factor (0 = report only; needs multiple cores to mean anything)")
	rps := flag.Float64("rps", 300, "offered open-loop arrival rate (R9)")
	loadDur := flag.Duration("load-duration", 3*time.Second, "how long the open-loop driver offers load (R9)")
	fsFaults := flag.String("fs-faults", "torn_rename:MANIFEST@2,short_write:table.rel@4,drop_sync@6", "storage fault schedule for the warehouse filesystem, kind[:pathsub][@after][~delay],... (R9)")
	minRPS := flag.Float64("min-rps", 0, "fail if R9 goodput falls below this rate (0 = report only)")
	maxP99 := flag.Duration("max-p99", 0, "fail if R9 extract p99 exceeds this duration (0 = report only)")
	minExtractRPS := flag.Float64("min-extract-rps", 0, "fail if R10 strict text extraction falls below this rate in reports/s (0 = report only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	execTrace := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "coribench: profiling: %v\n", err)
		}
	}()

	run := func(id string) bool { return *exp == "all" || *exp == id }
	if run("T1") {
		expT1(*n)
	}
	if run("H2") {
		expH2(*seed, *n)
	}
	if run("A1") {
		expA1(*seed, *n)
	}
	if run("A2") {
		expA2(*seed, *n)
	}
	if run("A3") {
		expA3(*seed)
	}
	if run("R1") {
		expR1(*seed, *n, *faults, *retries, *observe)
	}
	if run("R2") {
		expR2(*seed, *n, *maxOverhead)
	}
	if run("R3") {
		expR3(*seed, *n)
	}
	if run("R4") {
		expR4(*seed, *n)
	}
	if run("R5") {
		expR5(*seed, *n, *clients, *requests, *minSpeedup)
	}
	if run("R6") {
		expR6(*seed, *deltaBatch, *maxFlat, *minDeltaSpeedup)
	}
	if run("R7") {
		expR7(*seed, *n, *minParSpeedup)
	}
	if run("R9") {
		expR9(*seed, *n, *rps, *loadDur, *fsFaults, *minRPS, *maxP99)
	}
	if run("R10") {
		expR10(*seed, *n, *minExtractRPS)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "coribench: %v\n", err)
	os.Exit(1)
}

// timeIt runs fn `reps` times and returns the per-run duration.
func timeIt(reps int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

// expT1: per-pattern write+read round-trip cost (Table 1).
func expT1(n int) {
	fmt.Printf("== T1: design-pattern round trips (%d records) ==\n", n)
	schema := relstore.MustSchema(
		relstore.Column{Name: "ID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Smoking", Type: relstore.KindString},
		relstore.Column{Name: "Packs", Type: relstore.KindFloat},
		relstore.Column{Name: "Hypoxia", Type: relstore.KindBool},
	)
	form := patterns.FormInfo{Name: "P", KeyColumn: "ID", Schema: schema}
	rows := make([]relstore.Row, n)
	for i := range rows {
		rows[i] = relstore.Row{
			relstore.Int(int64(i + 1)), relstore.Str("Current"),
			relstore.Float(float64(i % 6)), relstore.Bool(i%5 == 0),
		}
	}
	stacks := []struct {
		name  string
		stack *patterns.Stack
	}{
		{"Naive", patterns.NewStack(patterns.Naive{})},
		{"Split (Join on read)", patterns.NewStack(&patterns.Split{})},
		{"Generic (un-pivot on read)", patterns.NewStack(patterns.Generic{})},
		{"Audit ∘ Naive", patterns.NewStack(patterns.Naive{}, &patterns.Audit{})},
		{"Lookup ∘ Naive", patterns.NewStack(patterns.Naive{}, &patterns.Lookup{Columns: []string{"Smoking"}})},
		{"Audit ∘ Encode ∘ Generic", patterns.NewStack(patterns.Generic{}, &patterns.Audit{}, &patterns.Encode{})},
	}
	fmt.Printf("%-28s %14s %14s\n", "pattern stack", "write/rec", "read-all")
	for _, s := range stacks {
		db := relstore.NewDB("bench")
		if err := s.stack.Install(db, form); err != nil {
			fail(err)
		}
		start := time.Now()
		for _, r := range rows {
			if err := s.stack.WriteRow(db, form, r); err != nil {
				fail(err)
			}
		}
		writePer := time.Since(start) / time.Duration(n)
		readDur, err := timeIt(20, func() error {
			_, err := s.stack.Read(db, form)
			return err
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-28s %14s %14s\n", s.name, writePer, readDur)
	}
	fmt.Println()
}

// expH2: precision/recall of the classifier-specified study vs the
// once-integrated warehouse (Hypothesis #2).
func expH2(seed int64, n int) {
	fmt.Printf("== H2: precision/recall, Study 2 cohort (ex-smokers with hypoxia; %d records x 3 contributors) ==\n", n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	truth := baseline.Study2Truth(contribs, 0)

	conds := map[string]string{
		"CORI":      "Smoking = 'Quit' AND (TransientHypoxia = TRUE OR ProlongedHypoxia = TRUE)",
		"EndoSoft":  "SmokingStatus = 'Ex-smoker' AND (O2Desat = TRUE OR O2DesatProlonged = TRUE)",
		"MedRecord": "SmokeCode = 2 AND (HypoxiaT = TRUE OR HypoxiaP = TRUE)",
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	for _, c := range spec.Contributors {
		c.Condition = conds[c.Name]
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		fail(err)
	}
	rows, err := compiled.Run()
	if err != nil {
		fail(err)
	}
	selected := map[baseline.CohortKey]bool{}
	for _, r := range rows.Data {
		selected[baseline.CohortKey{Contributor: r[1].AsString(), Key: r[0].AsInt()}] = true
	}
	m := baseline.Score(selected, truth)

	integrated, err := baseline.IntegrateOnce(contribs)
	if err != nil {
		fail(err)
	}
	mi := baseline.Score(baseline.Study2FromIntegrated(integrated), truth)

	fmt.Printf("%-28s %10s %10s %6s %6s %6s\n", "route", "precision", "recall", "TP", "FP", "FN")
	fmt.Printf("%-28s %10.3f %10.3f %6d %6d %6d\n", "GUAVA + MultiClass", m.Precision(), m.Recall(), m.TruePositives, m.FalsePositives, m.FalseNegatives)
	fmt.Printf("%-28s %10.3f %10.3f %6d %6d %6d\n", "classical full integration", mi.Precision(), mi.Recall(), mi.TruePositives, mi.FalsePositives, mi.FalseNegatives)
	fmt.Println()
}

// expA1: materialization strategies vs classifier/domain ratio (Sec 4.2,
// Figure 7).
func expA1(seed int64, n int) {
	fmt.Printf("== A1: materialization strategies vs classifier count (%d records) ==\n", n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	cori := contribs[0]
	base, err := cori.Stack.Read(cori.DB, cori.Info)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-12s %-10s %12s %12s %10s\n", "classifiers", "strategy", "prepare", "access", "cells")
	for _, ratio := range []int{2, 8, 24} {
		cat := &materialize.Catalog{Base: base, Binds: map[string]*classifier.Bound{}, AttributeOf: map[string]string{}}
		for i := 0; i < ratio; i++ {
			name := fmt.Sprintf("Smoking_v%02d", i)
			cl, err := classifier.Parse(name, "", classifier.Target{
				Entity: "Procedure", Attribute: "Smoking", Domain: name,
				Kind: relstore.KindString, Elements: []string{"None", "Light", "Heavy"},
			}, fmt.Sprintf("None <- PacksPerDay = 0\nLight <- 0 < PacksPerDay < %d\nHeavy <- PacksPerDay >= %d", i+1, i+1))
			if err != nil {
				fail(err)
			}
			bound, err := cl.Bind(cori.Tree)
			if err != nil {
				fail(err)
			}
			cat.Binds[name] = bound
			cat.AttributeOf[name] = "Smoking"
		}
		cols := cat.Columns()
		for _, s := range []materialize.Strategy{
			&materialize.Full{}, &materialize.OnDemand{},
			&materialize.Hot{HotColumns: cols[:1]}, &materialize.Algebraic{},
		} {
			prep, err := timeIt(5, func() error { return s.Prepare(cat) })
			if err != nil {
				fail(err)
			}
			i := 0
			access, err := timeIt(50, func() error {
				_, err := s.Column(cols[i%len(cols)])
				i++
				return err
			})
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-12d %-10s %12s %12s %10d\n", ratio, s.Name(), prep, access, s.StoredCells())
		}
	}
	fmt.Println()
}

// expA2: generated workflow vs hand-written expert ETL (same output).
func expA2(seed int64, n int) {
	fmt.Printf("== A2: generated workflow vs hand-written ETL (%d records x 3 contributors) ==\n", n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		fail(err)
	}
	gen, err := compiled.Run()
	if err != nil {
		fail(err)
	}
	hand, err := baseline.HandETL(contribs)
	if err != nil {
		fail(err)
	}
	same := gen.EqualUnordered(hand)
	genDur, err := timeIt(10, func() error { _, err := compiled.Run(); return err })
	if err != nil {
		fail(err)
	}
	handDur, err := timeIt(10, func() error { _, err := baseline.HandETL(contribs); return err })
	if err != nil {
		fail(err)
	}
	fmt.Printf("outputs identical: %v (%d rows)\n", same, gen.Len())
	fmt.Printf("%-28s %14s\n", "route", "run")
	fmt.Printf("%-28s %14s\n", "generated (GUAVA/MultiClass)", genDur)
	fmt.Printf("%-28s %14s\n", "hand-written expert ETL", handDur)
	if handDur > 0 {
		fmt.Printf("overhead factor: %.2fx\n", float64(genDur)/float64(handDur))
	}
	fmt.Println()
}

// expR1: degraded-run throughput vs the clean baseline. A fraction of the
// contributor extract chains is wrapped in deterministic fault injectors;
// the transient row retries them back to a full study, the permanent row
// runs ContinueOnError and unions the surviving contributors.
func expR1(seed int64, n int, faultFrac float64, retries int, observe bool) {
	fmt.Printf("== R1: throughput under injected faults (%d records, faults=%.2f, retries=%d, observe=%v) ==\n", n, faultFrac, retries, observe)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	policy := etl.RunPolicy{MaxAttempts: retries + 1}
	const workers = 4
	const reps = 10

	compile := func() *etl.Compiled {
		c, err := etl.Compile(spec)
		if err != nil {
			fail(err)
		}
		return c
	}
	// The faulted chains: the first ceil(frac*N) extract steps in ID order.
	var extracts []string
	for _, s := range compile().Workflow.Steps {
		if strings.HasPrefix(s.ID, "extract/") {
			extracts = append(extracts, s.ID)
		}
	}
	sort.Strings(extracts)
	k := int(math.Ceil(faultFrac * float64(len(extracts))))
	if k > len(extracts) {
		k = len(extracts)
	}
	faulted := extracts[:k]

	var spanCount int
	bench := func(c *etl.Compiled, pol etl.RunPolicy, chaos []*faulty.Chaos) (time.Duration, *relstore.Rows, *etl.RunReport) {
		var rows *relstore.Rows
		var rep *etl.RunReport
		dur, err := timeIt(reps, func() error {
			for _, ch := range chaos {
				ch.Reset()
			}
			ctx := context.Background()
			var o *obs.Observer
			if observe {
				// Fresh observer per run: realistic usage, where the caller
				// collects one span tree per study execution.
				o = obs.NewObserver()
				ctx = obs.WithObserver(ctx, o)
			}
			var err error
			rows, rep, err = c.RunResilient(ctx, pol, workers)
			if o != nil {
				spanCount = o.Tracer.Len()
			}
			return err
		})
		if err != nil {
			fail(err)
		}
		return dur, rows, rep
	}
	throughput := func(rows *relstore.Rows, dur time.Duration) float64 {
		return float64(rows.Len()) / dur.Seconds()
	}

	cleanDur, cleanRows, _ := bench(compile(), policy, nil)

	// Transient: each faulted extract fails its first `retries` attempts and
	// succeeds on the final one, so the study still completes in full.
	transient := compile()
	var transientChaos []*faulty.Chaos
	for _, id := range faulted {
		transientChaos = append(transientChaos, faulty.Wrap(transient.Workflow, id, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, FailFirst: retries}
		}))
	}
	transDur, transRows, _ := bench(transient, policy, transientChaos)

	// Permanent: the faulted extracts never recover; ContinueOnError prunes
	// their chains and unions the survivors. At least one contributor must
	// survive or there is no study output to measure.
	permFaulted := faulted
	if len(permFaulted) == len(extracts) && len(extracts) > 1 {
		permFaulted = permFaulted[:len(extracts)-1]
		fmt.Printf("(permanent scenario capped at %d faulted chains so one contributor survives)\n", len(permFaulted))
	}
	permanent := compile()
	for _, id := range permFaulted {
		faulty.Wrap(permanent.Workflow, id, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, FailForever: true}
		})
	}
	degraded := etl.RunPolicy{MaxAttempts: retries + 1, ContinueOnError: true}
	permDur, permRows, permRep := bench(permanent, degraded, nil)

	fmt.Printf("%-34s %14s %8s %14s %10s\n", "scenario", "run", "rows", "rows/s", "vs clean")
	row := func(name string, dur time.Duration, rows *relstore.Rows) {
		fmt.Printf("%-34s %14s %8d %14.0f %9.2fx\n",
			name, dur, rows.Len(), throughput(rows, dur),
			throughput(rows, dur)/throughput(cleanRows, cleanDur))
	}
	row("clean baseline", cleanDur, cleanRows)
	row(fmt.Sprintf("transient faults (%d chains)", k), transDur, transRows)
	row(fmt.Sprintf("permanent faults (%d chains)", len(permFaulted)), permDur, permRows)
	if len(permRep.DegradedContributors) > 0 {
		fmt.Printf("degraded contributors: %s\n", strings.Join(permRep.DegradedContributors, ", "))
		fmt.Printf("failed steps: %s; skipped dependents: %s\n",
			strings.Join(permRep.Failed(), ", "), strings.Join(permRep.Skipped(), ", "))
	}
	if observe {
		fmt.Printf("tracing attached: %d spans per run\n", spanCount)
	}
	fmt.Println()
}

// expR2: tracing overhead. The same study runs plain and with a full
// observer attached (fresh tracer + registry per run, the realistic
// usage); the difference is the cost of the observability layer. With
// maxOverhead > 0 an overrun is an error, making this a CI gate.
func expR2(seed int64, n int, maxOverhead float64) {
	fmt.Printf("== R2: tracing overhead (%d records x 3 contributors) ==\n", n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		fail(err)
	}
	policy := etl.RunPolicy{}
	const workers = 4
	const reps = 30

	plainRun := func() error {
		_, _, err := compiled.RunResilient(context.Background(), policy, workers)
		return err
	}
	var spanCount, metricCount int
	tracedRun := func() error {
		o := obs.NewObserver()
		ctx := obs.WithObserver(context.Background(), o)
		_, _, err := compiled.RunResilient(ctx, policy, workers)
		spanCount = o.Tracer.Len()
		metricCount = len(o.Metrics.Snapshot())
		return err
	}
	// Warm caches and the scheduler before timing either side.
	for i := 0; i < 3; i++ {
		if err := plainRun(); err != nil {
			fail(err)
		}
		if err := tracedRun(); err != nil {
			fail(err)
		}
	}
	plainDur, err := timeIt(reps, plainRun)
	if err != nil {
		fail(err)
	}
	tracedDur, err := timeIt(reps, tracedRun)
	if err != nil {
		fail(err)
	}
	overhead := (float64(tracedDur) - float64(plainDur)) / float64(plainDur) * 100
	fmt.Printf("%-34s %14s\n", "configuration", "run")
	fmt.Printf("%-34s %14s\n", "plain (no observer)", plainDur)
	fmt.Printf("%-34s %14s\n", fmt.Sprintf("traced (%d spans, %d metrics)", spanCount, metricCount), tracedDur)
	fmt.Printf("tracing overhead: %+.1f%%\n", overhead)
	if maxOverhead > 0 && overhead > maxOverhead {
		fail(fmt.Errorf("R2: tracing overhead %.1f%% exceeds budget %.1f%%", overhead, maxOverhead))
	}
	fmt.Println()
}

// expR3: static vetting cost. One vet.Study pass over the reference study
// (the full diagnostics engine: per-classifier satisfiability, context
// checks, pattern-stack rewrites, cross-artifact study checks) is timed
// against the ETL compile and run it gates, answering "what does -vet on
// every study execution cost?".
func expR3(seed int64, n int) {
	fmt.Printf("== R3: static vetting cost vs ETL (%d records x 3 contributors) ==\n", n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	const reps = 30
	var vetRep *vet.Report
	vetDur, err := timeIt(reps, func() error {
		vetRep = vet.Study(spec, nil, nil)
		return nil
	})
	if err != nil {
		fail(err)
	}
	compileDur, err := timeIt(reps, func() error {
		_, err := etl.Compile(spec)
		return err
	})
	if err != nil {
		fail(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		fail(err)
	}
	runDur, err := timeIt(reps, func() error {
		_, err := compiled.Run()
		return err
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-34s %14s\n", "stage", "wall-time")
	fmt.Printf("%-34s %14s\n",
		fmt.Sprintf("vet.Study (%d diagnostics)", len(vetRep.Diags)), vetDur)
	fmt.Printf("%-34s %14s\n", "etl.Compile", compileDur)
	fmt.Printf("%-34s %14s\n", "compiled.Run", runDur)
	etlDur := compileDur + runDur
	fmt.Printf("vetting overhead vs compile+run: %.1f%%\n",
		float64(vetDur)/float64(etlDur)*100)
	if vetRep.HasErrors() {
		fail(fmt.Errorf("R3: reference study has vet errors:\n%s", vetRep.Text()))
	}
	fmt.Println()
}

// expR4: crash recovery. Four scenarios over the reference study: the
// no-checkpoint baseline; the same run writing a filesystem checkpoint per
// completed step (the durability tax); a resume from checkpoints after a
// simulated crash at the last classify step (the work saved — only the
// crashed step and the union re-execute); and a quarantined run where
// poison rows divert to the dead-letter relation instead of failing their
// chain.
func expR4(seed int64, n int) {
	fmt.Printf("== R4: checkpointed runs, resume after crash, quarantine (%d records x 3 contributors) ==\n", n)
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	compile := func() *etl.Compiled {
		c, err := etl.Compile(spec)
		if err != nil {
			fail(err)
		}
		return c
	}
	const workers = 4
	const reps = 10
	dir, err := os.MkdirTemp("", "coribench-r4-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	store := etl.NewFSCheckpointer(dir)
	fp := compile().Fingerprint()

	// Baseline: no checkpoints.
	base := compile()
	baseDur, err := timeIt(reps, func() error {
		_, _, err := base.RunResilient(context.Background(), etl.RunPolicy{}, workers)
		return err
	})
	if err != nil {
		fail(err)
	}

	// Checkpointed: every completed step becomes durable; cleared between
	// reps so each rep pays the full save cost.
	ckpt := compile()
	var saved int
	ckptDur, err := timeIt(reps, func() error {
		if err := store.Clear(fp); err != nil {
			return err
		}
		_, _, err := ckpt.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, workers)
		if err == nil {
			steps, serr := store.Steps(fp)
			if serr != nil {
				return serr
			}
			saved = len(steps)
		}
		return err
	})
	if err != nil {
		fail(err)
	}

	// Resume: crash after the last classify step's work, then re-run clean
	// against the surviving checkpoints. Only the crashed step and the
	// union re-execute; the timing is the resume alone.
	var classifies []string
	for _, s := range compile().Workflow.Steps {
		if strings.HasPrefix(s.ID, "classify/") {
			classifies = append(classifies, s.ID)
		}
	}
	sort.Strings(classifies)
	crashStep := classifies[len(classifies)-1]
	resume := compile()
	var restored, rerun int
	var resumeSum time.Duration
	for i := 0; i < reps; i++ {
		if err := store.Clear(fp); err != nil {
			fail(err)
		}
		crashed := compile()
		faulty.Wrap(crashed.Workflow, crashStep, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, CrashAfterWork: true}
		})
		if _, _, err := crashed.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, workers); err == nil {
			fail(fmt.Errorf("R4: crash run did not crash"))
		}
		start := time.Now()
		_, rep, err := resume.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, workers)
		if err != nil {
			fail(err)
		}
		resumeSum += time.Since(start)
		restored = len(rep.Restored())
		rerun = len(rep.Steps) - restored
	}
	resumeAvg := resumeSum / time.Duration(reps)

	// Quarantine: poison rows in one extract, diverted under budget.
	quar := compile()
	faulty.Wrap(quar.Workflow, "extract/CORI", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, PoisonRows: 5}
	})
	var quarantined int
	quarDur, err := timeIt(reps, func() error {
		_, rep, err := quar.RunResilient(context.Background(), etl.RunPolicy{MaxQuarantinedRows: 100}, workers)
		if err == nil {
			quarantined = rep.Quarantined
		}
		return err
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("%-40s %14s %10s\n", "scenario", "run", "vs base")
	row := func(name string, dur time.Duration) {
		fmt.Printf("%-40s %14s %9.2fx\n", name, dur, float64(dur)/float64(baseDur))
	}
	row("no checkpoints (baseline)", baseDur)
	row(fmt.Sprintf("fs checkpoints (%d steps saved)", saved), ckptDur)
	row(fmt.Sprintf("resume after crash (%d steps restored)", restored), resumeAvg)
	row(fmt.Sprintf("quarantine (%d rows diverted)", quarantined), quarDur)
	fmt.Printf("work saved by resume: %d of %d steps skipped (re-executed %d)\n",
		restored, restored+rerun, rerun)
	fmt.Println()
}

// expA3: end-to-end scaling with record count.
func expA3(seed int64) {
	fmt.Println("== A3: end-to-end study scaling ==")
	fmt.Printf("%-12s %14s %14s\n", "records", "build+enter", "compile+run")
	for _, n := range []int{50, 200, 800} {
		start := time.Now()
		contribs, err := workload.BuildAll(seed, n)
		if err != nil {
			fail(err)
		}
		build := time.Since(start)
		spec, err := baseline.ReferenceSpec(contribs)
		if err != nil {
			fail(err)
		}
		start = time.Now()
		compiled, err := etl.Compile(spec)
		if err != nil {
			fail(err)
		}
		if _, err := compiled.Run(); err != nil {
			fail(err)
		}
		run := time.Since(start)
		fmt.Printf("%-12d %14s %14s\n", n, build, run)
	}
	fmt.Println()
}
