package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"guava/internal/obs"
	"guava/internal/relstore"
)

// expR7: columnar execution and segment-backed storage. Three sections over
// one synthetic entity relation sized well past a chunk width:
//
//  1. Chunked operator parallelism — the same Select and Join run with the
//     worker pool pinned to 1 and then to `workers`, verifying the outputs
//     are byte-identical (chunk-order assembly) and reporting the speedup.
//     -min-par-speedup turns a too-small scan/join speedup into an error —
//     the CI regression gate. It defaults to 0 (report only) because the
//     speedup is meaningless on a single-core box: the pool still fans out,
//     but there is nothing to run the chunks on.
//  2. Hash sharding — the same predicate through a ShardedTable (one pool
//     task per shard, per-shard locks) vs a single Table, and ShardedJoin vs
//     Join, with unordered-equality checks on both.
//  3. Segment-backed scans — the relation written in the v2 segment layout,
//     reopened under a byte budget an order of magnitude below the file
//     size, and scanned; correctness against the in-memory Select plus the
//     relstore.segment.* counters show the warehouse exceeding RAM while
//     staying resident-bounded.
func expR7(seed int64, n int, minParSpeedup float64) {
	rows := n * 400
	const workers = 4
	fmt.Printf("== R7: columnar scans, sharding, segment-backed storage (%d rows, %d workers) ==\n", rows, workers)

	schema := relstore.MustSchema(
		relstore.Column{Name: "EntityKey", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Contributor", Type: relstore.KindString},
		relstore.Column{Name: "Smoking", Type: relstore.KindString},
		relstore.Column{Name: "Packs", Type: relstore.KindFloat},
		relstore.Column{Name: "Hypoxia", Type: relstore.KindBool},
	)
	rng := rand.New(rand.NewSource(seed))
	smoking := []string{"None", "Light", "Heavy", "Quit"}
	contribs := []string{"CORI", "EndoSoft", "MedRecord"}
	rel := &relstore.Rows{Schema: schema, Data: make([]relstore.Row, rows)}
	for i := range rel.Data {
		r := relstore.Row{
			relstore.Int(int64(i + 1)),
			relstore.Str(contribs[rng.Intn(len(contribs))]),
			relstore.Str(smoking[rng.Intn(len(smoking))]),
			relstore.Float(float64(rng.Intn(60)) / 10),
			relstore.Bool(rng.Intn(5) == 0),
		}
		if rng.Intn(10) == 0 {
			r[3] = relstore.Null()
		}
		rel.Data[i] = r
	}
	// A classifier-shaped cohort predicate: string equality plus an ordered
	// float comparison — both hit the typed columnar kernels.
	pred := relstore.And(
		relstore.Cmp(relstore.CmpNe, relstore.Col("Smoking"), relstore.Lit(relstore.Str("None"))),
		relstore.Cmp(relstore.CmpGt, relstore.Col("Packs"), relstore.Lit(relstore.Float(2.5))),
	)
	// The join's right side: a cohort covering a quarter of the entity keys,
	// the shape of a study-extract-to-warehouse patch. Keeping it small keeps
	// the join dominated by the chunk-parallel probe, not the sequential
	// build of the right-side hash.
	dim := &relstore.Rows{Schema: relstore.MustSchema(
		relstore.Column{Name: "EntityKey", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Site", Type: relstore.KindString},
	)}
	for i := 0; i < rows; i += 4 {
		dim.Data = append(dim.Data, relstore.Row{
			relstore.Int(int64(i + 1)), relstore.Str(fmt.Sprintf("site%d", i%7)),
		})
	}

	const reps = 5
	prevPar := relstore.Parallelism()
	defer relstore.SetParallelism(prevPar)

	bench := func(par int, fn func() (*relstore.Rows, error)) (time.Duration, *relstore.Rows) {
		relstore.SetParallelism(par)
		var out *relstore.Rows
		dur, err := timeIt(reps, func() error {
			var err error
			out, err = fn()
			return err
		})
		if err != nil {
			fail(err)
		}
		return dur, out
	}

	// 1. Chunked operator parallelism.
	scanSeq, scanSeqRows := bench(1, func() (*relstore.Rows, error) { return relstore.Select(rel, pred) })
	scanPar, scanParRows := bench(workers, func() (*relstore.Rows, error) { return relstore.Select(rel, pred) })
	if !sameOrderedRows(scanSeqRows, scanParRows) {
		fail(fmt.Errorf("R7: parallel scan output differs from sequential"))
	}
	joinSeq, joinSeqRows := bench(1, func() (*relstore.Rows, error) {
		return relstore.Join(rel, dim, "EntityKey", "EntityKey", "d_")
	})
	joinPar, joinParRows := bench(workers, func() (*relstore.Rows, error) {
		return relstore.Join(rel, dim, "EntityKey", "EntityKey", "d_")
	})
	if !sameOrderedRows(joinSeqRows, joinParRows) {
		fail(fmt.Errorf("R7: parallel join output differs from sequential"))
	}
	scanSpeedup := float64(scanSeq) / float64(scanPar)
	joinSpeedup := float64(joinSeq) / float64(joinPar)
	fmt.Printf("%-34s %14s %14s %10s %8s\n", "operator", "1 worker", fmt.Sprintf("%d workers", workers), "speedup", "rows")
	fmt.Printf("%-34s %14s %14s %9.2fx %8d\n", "chunked select (cohort pred)", scanSeq, scanPar, scanSpeedup, scanSeqRows.Len())
	fmt.Printf("%-34s %14s %14s %9.2fx %8d\n", "chunked hash join (entity key)", joinSeq, joinPar, joinSpeedup, joinSeqRows.Len())

	// 2. Hash sharding by entity key.
	relstore.SetParallelism(workers)
	plain := relstore.NewTable("r7", schema)
	sharded, err := relstore.NewShardedTable("r7s", schema, "EntityKey", workers)
	if err != nil {
		fail(err)
	}
	for _, r := range rel.Data {
		if err := plain.Insert(r); err != nil {
			fail(err)
		}
		if err := sharded.Insert(r); err != nil {
			fail(err)
		}
	}
	plainDur, plainRows := bench(workers, func() (*relstore.Rows, error) { return plain.Select(pred) })
	shardDur, shardRows := bench(workers, func() (*relstore.Rows, error) { return sharded.Select(pred) })
	if !plainRows.EqualUnordered(shardRows) {
		fail(fmt.Errorf("R7: sharded select output differs from single-table select"))
	}
	sjoinDur, sjoinRows := bench(workers, func() (*relstore.Rows, error) {
		return relstore.ShardedJoin(rel, dim, "EntityKey", "EntityKey", "d_")
	})
	if !sjoinRows.EqualUnordered(joinSeqRows) {
		fail(fmt.Errorf("R7: sharded join output differs from join"))
	}
	fmt.Printf("%-34s %14s %14s %10s\n", "sharded path", "single", "sharded", "speedup")
	fmt.Printf("%-34s %14s %14s %9.2fx\n",
		fmt.Sprintf("table select (%d shards)", sharded.NumShards()), plainDur, shardDur, float64(plainDur)/float64(shardDur))
	fmt.Printf("%-34s %14s %14s %9.2fx\n", "sharded join vs join", joinSeq, sjoinDur, float64(joinSeq)/float64(sjoinDur))

	// 3. Segment-backed scans under a byte budget.
	dir, err := os.MkdirTemp("", "coribench-r7-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "r7.rel")
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := relstore.WriteTypedSegmented(f, rel, relstore.DefaultSegmentRows); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		fail(err)
	}
	budget := fi.Size() / 10
	set, err := relstore.OpenSegments(path, budget)
	if err != nil {
		fail(err)
	}
	defer set.Close()

	loads := obs.Default.Counter("relstore.segment.loads")
	evicts := obs.Default.Counter("relstore.segment.evictions")
	loads0, evicts0 := loads.Value(), evicts.Value()
	var segRows *relstore.Rows
	segDur, err := timeIt(reps, func() error {
		var err error
		segRows, err = set.Select(pred)
		return err
	})
	if err != nil {
		fail(err)
	}
	if !sameOrderedRows(segRows, scanSeqRows) {
		fail(fmt.Errorf("R7: segment-backed select output differs from in-memory"))
	}
	resSegs, resBytes := set.Resident()
	if resBytes > budget {
		fail(fmt.Errorf("R7: resident bytes %d exceed budget %d", resBytes, budget))
	}
	fmt.Printf("%-34s %14s %10s\n", "segment-backed path", "select", "rows")
	fmt.Printf("%-34s %14s %10d\n",
		fmt.Sprintf("lazy scan (%d segments)", set.NumSegments()), segDur, segRows.Len())
	fmt.Printf("file %d bytes, budget %d: %d/%d segments resident (%d bytes), %d loads, %d evictions\n",
		fi.Size(), budget, resSegs, set.NumSegments(), resBytes,
		loads.Value()-loads0, evicts.Value()-evicts0)

	if minParSpeedup > 0 {
		fmt.Printf("parallel speedup gate: %.2fx (scan %.2fx, join %.2fx)\n", minParSpeedup, scanSpeedup, joinSpeedup)
		if scanSpeedup < minParSpeedup {
			fail(fmt.Errorf("R7: scan speedup %.2fx below the %.2fx gate", scanSpeedup, minParSpeedup))
		}
		if joinSpeedup < minParSpeedup {
			fail(fmt.Errorf("R7: join speedup %.2fx below the %.2fx gate", joinSpeedup, minParSpeedup))
		}
	}
	fmt.Println()
}

// sameOrderedRows reports whether two results hold identical rows in
// identical order — the determinism invariant for chunk-parallel operators,
// stricter than EqualUnordered.
func sameOrderedRows(a, b *relstore.Rows) bool {
	if !a.Schema.Equal(b.Schema) || a.Len() != b.Len() {
		return false
	}
	ka := relstore.ParallelRowKeys(a.Data, relstore.Row.Key)
	kb := relstore.ParallelRowKeys(b.Data, relstore.Row.Key)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
