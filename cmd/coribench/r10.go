package main

import (
	"context"
	"fmt"
	"time"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/workload"
)

// expR10: free-text extraction throughput and quarantine overhead. The Notes
// contributor stores report documents, not rows — every read runs the
// compiled extractor over the whole corpus. This experiment measures what
// that costs: the strict extraction rate in reports/s, the diverting read's
// overhead over a clean corpus (the price of the quarantine seam when
// nothing misses) and over a corpus with out-of-vocabulary reports (misses
// collected with span provenance instead of failing the read), and the
// end-to-end tax of adding the text arm to the reference study against the
// three form-backed arms alone. minExtractRPS > 0 turns a too-slow strict
// extraction rate into an error — the CI regression gate.
func expR10(seed int64, n int, minExtractRPS float64) {
	fmt.Printf("== R10: free-text extraction throughput and quarantine overhead (%d reports) ==\n", n)
	const reps = 30
	ctx := context.Background()

	notes, err := workload.BuildNotes(seed+3, n)
	if err != nil {
		fail(err)
	}

	// Strict read: every report must extract cleanly or the read fails.
	strictDur, err := timeIt(reps, func() error {
		_, err := notes.Stack.Read(notes.DB, notes.Info)
		return err
	})
	if err != nil {
		fail(err)
	}
	extractRPS := float64(n) / strictDur.Seconds()

	// Diverting read over the same clean corpus: the quarantine seam's cost
	// when it never fires.
	cleanDivDur, err := timeIt(reps, func() error {
		_, misses, err := notes.Stack.ReadDiverting(ctx, notes.DB, notes.Info)
		if err == nil && len(misses) != 0 {
			return fmt.Errorf("clean corpus diverted %d reports", len(misses))
		}
		return err
	})
	if err != nil {
		fail(err)
	}

	// Diverting read with ~5% out-of-vocabulary reports injected: the misses
	// divert with report-span provenance while the clean rows flow through.
	corrupt := n/20 + 1
	dirty, err := workload.BuildNotes(seed+3, n)
	if err != nil {
		fail(err)
	}
	for i := 0; i < corrupt; i++ {
		id := dirty.MaxID() + int64(i+1)
		if err := dirty.InjectReport(id, workload.CorruptNoteBody(id)); err != nil {
			fail(err)
		}
	}
	var diverted, kept int
	dirtyDivDur, err := timeIt(reps, func() error {
		rows, misses, err := dirty.Stack.ReadDiverting(ctx, dirty.DB, dirty.Info)
		if err != nil {
			return err
		}
		diverted, kept = len(misses), rows.Len()
		return nil
	})
	if err != nil {
		fail(err)
	}
	if diverted != corrupt || kept != n {
		fail(fmt.Errorf("R10: diverting read kept %d rows and diverted %d, want %d and %d", kept, diverted, n, corrupt))
	}

	fmt.Printf("%-44s %14s %12s %10s\n", "read path", "read-all", "reports/s", "vs strict")
	row := func(name string, dur time.Duration, docs int) {
		fmt.Printf("%-44s %14s %12.0f %9.2fx\n",
			name, dur, float64(docs)/dur.Seconds(), float64(dur)/float64(strictDur))
	}
	row("strict extract (clean corpus)", strictDur, n)
	row("diverting extract (clean corpus)", cleanDivDur, n)
	row(fmt.Sprintf("diverting extract (%d diverted of %d)", diverted, n+corrupt), dirtyDivDur, n+corrupt)

	// End-to-end: the reference study over the three form-backed arms alone
	// vs with the Notes text arm added, both through the resilient runner
	// under a quarantine budget (the runstudy/studyd configuration).
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		fail(err)
	}
	policy := etl.RunPolicy{MaxQuarantinedRows: 100}
	const workers = 4
	study := func(cs []*workload.Contributor) (time.Duration, int, int) {
		spec, err := baseline.ReferenceSpec(cs)
		if err != nil {
			fail(err)
		}
		compiled, err := etl.Compile(spec)
		if err != nil {
			fail(err)
		}
		var rows, quarantined int
		dur, err := timeIt(reps, func() error {
			out, rep, err := compiled.RunResilient(ctx, policy, workers)
			if err == nil {
				rows, quarantined = out.Len(), rep.Quarantined
			}
			return err
		})
		if err != nil {
			fail(err)
		}
		return dur, rows, quarantined
	}
	dbDur, dbRows, _ := study(contribs)
	mixedDur, mixedRows, _ := study(append(contribs[:len(contribs):len(contribs)], notes))
	quarDur, quarRows, quarantined := study(append(contribs[:len(contribs):len(contribs)], dirty))

	fmt.Printf("%-44s %14s %8s %10s\n", "study", "run", "rows", "vs 3-arm")
	srow := func(name string, dur time.Duration, rows int) {
		fmt.Printf("%-44s %14s %8d %9.2fx\n", name, dur, rows, float64(dur)/float64(dbDur))
	}
	srow("reference, 3 form arms", dbDur, dbRows)
	srow("reference, + Notes text arm", mixedDur, mixedRows)
	srow(fmt.Sprintf("reference, + dirty Notes (%d quarantined)", quarantined), quarDur, quarRows)
	fmt.Printf("text-arm overhead: %+.1f%%; quarantine overhead vs clean mixed: %+.1f%%\n",
		(float64(mixedDur)/float64(dbDur)-1)*100,
		(float64(quarDur)/float64(mixedDur)-1)*100)
	if minExtractRPS > 0 && extractRPS < minExtractRPS {
		fail(fmt.Errorf("R10: strict extraction rate %.0f reports/s below gate %.0f", extractRPS, minExtractRPS))
	}
	fmt.Println()
}
