// Command guavalint runs guava's repo-invariant linter (internal/lint) over
// a source tree: determinism of the relational/ETL core, metric names
// documented in OBSERVABILITY.md, mutex-guarded field discipline, and
// context-first Run methods. Zero dependencies — go/ast and go/parser only.
//
// Usage:
//
//	guavalint [root]
//
// root defaults to ".". Exit status is 0 when no findings, 1 when at least
// one, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"guava/internal/lint"
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("guavalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: guavalint [root]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root := "."
	switch fs.NArg() {
	case 0:
	case 1:
		root = fs.Arg(0)
	default:
		fs.Usage()
		return 2
	}
	findings, err := lint.Lint(root, lint.DefaultOptions())
	if err != nil {
		fmt.Fprintf(stderr, "guavalint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "guavalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
