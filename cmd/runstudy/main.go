// Command runstudy compiles and runs a study over the synthetic workload:
// the reference study (Habits + hypoxia over all three contributors), or the
// paper's Study 1 funnel, or Study 2 under both ex-smoker definitions. It
// can print the generated ETL plan and the per-contributor SQL and XQuery
// translations — the inspectability the paper demands of generated
// workflows.
//
// Usage:
//
//	runstudy [-study reference|study1|study2] [-seed 42] [-n 200]
//	         [-plan] [-sql] [-xquery] [-rows 10]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"guava"
	"guava/internal/baseline"
	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/workload"
)

func main() {
	studyName := flag.String("study", "reference", "study to run: reference, study1, or study2")
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 200, "records per contributor")
	showPlan := flag.Bool("plan", false, "print the generated ETL workflow")
	showSQL := flag.Bool("sql", false, "print the per-contributor SQL translation")
	showXQ := flag.Bool("xquery", false, "print the per-contributor XQuery translation")
	rows := flag.Int("rows", 10, "result rows to print (reference study)")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		fail(err)
	}
	switch *studyName {
	case "reference":
		runReference(contribs, *showPlan, *showSQL, *showXQ, *rows)
	case "study1":
		res, err := guava.Study1(contribs)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
		truth := guava.Study1Truth(contribs)
		if *res == *truth {
			fmt.Println("matches ground truth at every stage (precision = recall = 1.0)")
		} else {
			fmt.Printf("MISMATCH vs ground truth: %+v\n", truth)
		}
	case "study2":
		for _, recent := range []bool{false, true} {
			res, err := guava.Study2(contribs, recent)
			if err != nil {
				fail(err)
			}
			fmt.Print(res.Render())
		}
	default:
		fmt.Fprintf(os.Stderr, "runstudy: unknown study %q\n", *studyName)
		os.Exit(2)
	}
}

func runReference(contribs []*workload.Contributor, showPlan, showSQL, showXQ bool, maxRows int) {
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		fail(err)
	}
	if showPlan {
		fmt.Println(compiled.Workflow.Render())
	}
	if showSQL {
		plans, err := compiled.EmitSQLPlans()
		if err != nil {
			fail(err)
		}
		var names []string
		for n := range plans {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("-- %s\n%s\n\n", n, plans[n])
		}
	}
	if showXQ {
		for _, c := range spec.Contributors {
			var domains []*classifier.Classifier
			for _, col := range spec.Columns {
				domains = append(domains, c.Classifiers[col.As])
			}
			xq, err := classifier.EmitXQuery(c.Name+".xml", c.Entity, domains)
			if err != nil {
				fail(err)
			}
			fmt.Printf("(: %s :)\n%s\n\n", c.Name, xq)
		}
	}
	out, err := compiled.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("study %q: %d rows\n", spec.Name, out.Len())
	head := out
	if out.Len() > maxRows {
		head = &relstore.Rows{Schema: out.Schema, Data: out.Data[:maxRows]}
	}
	fmt.Print(head.Format())
	// Summary: classification histogram.
	grouped, err := relstore.GroupBy(out, []string{"Smoking_D3"}, relstore.Aggregate{Kind: relstore.AggCount, As: "N"})
	if err != nil {
		fail(err)
	}
	sorted, err := relstore.SortBy(grouped, "Smoking_D3")
	if err != nil {
		fail(err)
	}
	fmt.Println("\nSmoking_D3 histogram:")
	fmt.Print(sorted.Format())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "runstudy: %v\n", err)
	os.Exit(1)
}
