// Command runstudy compiles and runs a study over the synthetic workload:
// the reference study (Habits + hypoxia over all three contributors), or the
// paper's Study 1 funnel, or Study 2 under both ex-smoker definitions. It
// can print the generated ETL plan and the per-contributor SQL and XQuery
// translations — the inspectability the paper demands of generated
// workflows.
//
// With -vet the reference study is statically vetted before compilation —
// and, once the artifacts pass, the compiled plan runs through the
// plan-level dataflow analyzer (internal/plancheck, GV21x codes): the
// diagnostics print to stderr, and the run is refused when any
// error-severity finding exists at either layer. Without -vet nothing
// changes.
//
// The reference study runs through the resilient executor: -retries,
// -step-timeout, -timeout, and -continue configure the etl.RunPolicy,
// -fail injects a permanently dead contributor extract (demonstrating
// graceful degradation), and -report prints the structured RunReport.
//
// Crash recovery (reference study): -checkpoint-dir makes every completed
// step durable on disk; -resume reuses the checkpoints from a previous
// (killed) run instead of clearing them, so only unfinished steps
// re-execute. -crash step[:before|:after] simulates the process dying at
// that step — run once with -crash, then again with -resume, to watch a
// recovery end-to-end. -quarantine-budget N diverts up to N poison rows
// per run into the dead-letter relation instead of failing their step, and
// -quarantine-out writes that relation (with provenance) to a file, or
// stdout with "-". -poison contributor plants -poison-rows NULL-key rows in
// that contributor's extract output.
//
// Warehouse refresh (reference study): -refresh merges the study output
// into the persistent warehouse in -warehouse-dir (the paper's periodic
// inclusion) instead of printing it: tables load from <name>.rel files,
// the refresh runs under the same RunPolicy switches as a normal run, the
// merge stats print, and the updated tables persist back. Run it twice
// with unchanged contributor data and the second pass reports all rows
// unchanged. A full -refresh also persists the contributors' journal
// cursors to -cursor-file (default <warehouse-dir>/cursors.json).
//
// Incremental refresh (reference study): -refresh-delta loads those
// cursors and recomputes only the entities whose journal entries lie past
// them, patching the warehouse group-wise instead of re-running the whole
// plan. -mutate-count N (with -mutate-seed) applies N deterministic random
// contributor mutations after the build, so a delta run and a from-scratch
// full run given the same flags converge on byte-identical .rel files:
//
//	runstudy -refresh -warehouse-dir w1
//	runstudy -refresh-delta -warehouse-dir w1 -mutate-seed 5 -mutate-count 25
//	runstudy -refresh -warehouse-dir w2 -mutate-seed 5 -mutate-count 25
//	cmp w1/Study_reference.rel w2/Study_reference.rel
//
// Segmented warehouse (see STORAGE.md): -segment-rows N persists each
// warehouse table in the v2 segment-file layout, N rows per checksummed
// segment, which loadWarehouse reads back transparently (ReadTyped sniffs
// the version). -dump-warehouse TABLE streams a stored table to stdout in
// canonical v1 form whatever its layout; over a v2 file the dump goes
// through a lazily-loading SegmentSet capped at -segment-budget resident
// bytes, so a relation larger than memory still dumps — and diffs cleanly
// against an in-memory-mode warehouse:
//
//	runstudy -refresh -warehouse-dir w1
//	runstudy -refresh -warehouse-dir w2 -segment-rows 64
//	runstudy -dump-warehouse Study_reference -warehouse-dir w1 > flat.txt
//	runstudy -dump-warehouse Study_reference -warehouse-dir w2 \
//	         -segment-budget 8192 > seg.txt
//	diff flat.txt seg.txt
//
// Columnar execution: -relstore-parallel bounds the worker pool relstore's
// chunked operators fan out across, and -relstore-batch sets the chunk
// width (see DESIGN.md §6.12).
//
// Free-text contributor (see DESIGN.md §6.15): -with-text adds the Notes
// contributor — the same ground truth dictated into progress-note documents
// behind the textsrc extraction layout — so the study mixes text and
// database sources. -text-append N enters N further reports after the
// build (journaled, so a -refresh-delta run picks them up and converges
// byte-identically with a full run given the same flags), and
// -text-corrupt N injects N out-of-vocabulary reports: under
// -quarantine-budget they divert into the dead-letter relation with
// report-span provenance (report id + byte range + rule id) instead of
// failing the extract step.
//
// Observability (reference study): -trace-tree prints the run's span
// tree, -trace-out writes the spans as JSON lines, -metrics prints the
// metrics snapshot, and -cpuprofile/-memprofile/-trace enable the
// stdlib profilers. See OBSERVABILITY.md for the span model and metric
// names.
//
// Usage:
//
//	runstudy [-study reference|study1|study2] [-seed 42] [-n 200]
//	         [-vet] [-plan] [-sql] [-xquery] [-rows 10]
//	         [-parallel 1] [-retries 0] [-step-timeout 0] [-timeout 0]
//	         [-continue] [-fail contributor,...] [-report]
//	         [-refresh] [-refresh-delta] [-warehouse-dir dir]
//	         [-cursor-file file] [-mutate-seed 1] [-mutate-count 0]
//	         [-segment-rows 0] [-segment-budget 0] [-dump-warehouse table]
//	         [-relstore-parallel 0] [-relstore-batch 0]
//	         [-with-text] [-text-append 0] [-text-corrupt 0]
//	         [-checkpoint-dir dir] [-resume] [-crash step[:before|:after]]
//	         [-quarantine-budget 0] [-quarantine-out file|-]
//	         [-poison contributor] [-poison-rows 1]
//	         [-trace-tree] [-trace-out spans.jsonl] [-metrics]
//	         [-cpuprofile cpu.pb] [-memprofile mem.pb] [-trace trace.out]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"guava"
	"guava/internal/baseline"
	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/obs"
	"guava/internal/plancheck"
	"guava/internal/relstore"
	"guava/internal/vet"
	"guava/internal/workload"
)

func main() {
	studyName := flag.String("study", "reference", "study to run: reference, study1, or study2")
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 200, "records per contributor")
	doVet := flag.Bool("vet", false, "statically vet the study first; refuse to run on error-severity findings (reference study)")
	showPlan := flag.Bool("plan", false, "print the generated ETL workflow")
	showSQL := flag.Bool("sql", false, "print the per-contributor SQL translation")
	showXQ := flag.Bool("xquery", false, "print the per-contributor XQuery translation")
	rows := flag.Int("rows", 10, "result rows to print (reference study)")
	workers := flag.Int("parallel", 1, "worker count for the executor (<= 0 means one worker per ready step)")
	retries := flag.Int("retries", 0, "retries per step beyond the first attempt")
	stepTimeout := flag.Duration("step-timeout", 0, "deadline per step attempt (0 = none)")
	timeout := flag.Duration("timeout", 0, "deadline for the whole workflow (0 = none)")
	contOnErr := flag.Bool("continue", false, "continue past failed steps, skipping dependents (graceful degradation)")
	failContribs := flag.String("fail", "", "comma-separated contributors whose extract is forced to fail (reference study)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint completed steps into this directory (reference study)")
	resume := flag.Bool("resume", false, "reuse checkpoints from a previous run in -checkpoint-dir instead of clearing them")
	doRefresh := flag.Bool("refresh", false, "merge the study output into the warehouse in -warehouse-dir instead of printing it (reference study)")
	doDeltaRefresh := flag.Bool("refresh-delta", false, "refresh the warehouse incrementally from the contributor change journals, using the cursors persisted by a previous -refresh (reference study)")
	warehouseDir := flag.String("warehouse-dir", "", "directory holding the persistent warehouse tables for -refresh / -refresh-delta")
	cursorFile := flag.String("cursor-file", "", "path for the persisted delta cursors (default <warehouse-dir>/cursors.json)")
	mutateSeed := flag.Int64("mutate-seed", 1, "seed for -mutate-count's synthetic mutation batch")
	mutateCount := flag.Int("mutate-count", 0, "apply this many random contributor mutations (inserts/updates/deprecations) after building the workload")
	withText := flag.Bool("with-text", false, "add the free-text Notes contributor to the study (reports behind the textsrc extraction layout)")
	textAppend := flag.Int("text-append", 0, "append this many further ground-truth reports to the Notes contributor after the build (needs -with-text; journaled, so -refresh-delta picks them up)")
	textCorrupt := flag.Int("text-corrupt", 0, "inject this many out-of-vocabulary reports into the Notes contributor (needs -with-text; they quarantine under -quarantine-budget)")
	segmentRows := flag.Int("segment-rows", 0, "persist warehouse tables in the v2 segment-file layout with this many rows per segment (0 = v1 single-stream)")
	segmentBudget := flag.Int64("segment-budget", 0, "resident byte budget for -dump-warehouse over a v2 segment file (0 = unlimited)")
	dumpWarehouseTable := flag.String("dump-warehouse", "", "stream this warehouse table (v1 or v2 layout) from -warehouse-dir to stdout in canonical v1 form and exit")
	relstoreParallel := flag.Int("relstore-parallel", 0, "worker bound for relstore's chunked columnar operators (0 = default of min(GOMAXPROCS, 8))")
	relstoreBatch := flag.Int("relstore-batch", 0, "chunk width for relstore's columnar operators (0 = default 4096)")
	crashAt := flag.String("crash", "", "simulate a process crash at this step; step or step:before|:after (reference study)")
	quarBudget := flag.Int("quarantine-budget", 0, "max rows diverted to the dead-letter relation before a step fails (0 = quarantine off)")
	quarOut := flag.String("quarantine-out", "", "write the quarantined rows with provenance to this file (\"-\" = stdout)")
	poison := flag.String("poison", "", "plant poison (NULL-key) rows in this contributor's extract output (reference study)")
	poisonRows := flag.Int("poison-rows", 1, "how many rows -poison corrupts")
	showReport := flag.Bool("report", false, "print the per-step RunReport after the run")
	traceTree := flag.Bool("trace-tree", false, "print the run's span tree (reference study)")
	traceOut := flag.String("trace-out", "", "write the run's spans as JSON lines to this file (reference study)")
	showMetrics := flag.Bool("metrics", false, "print the metrics snapshot after the run (reference study)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	execTrace := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *relstoreParallel > 0 {
		relstore.SetParallelism(*relstoreParallel)
	}
	if *relstoreBatch > 0 {
		relstore.SetBatchSize(*relstoreBatch)
	}
	if *dumpWarehouseTable != "" {
		if *warehouseDir == "" {
			fail(fmt.Errorf("-dump-warehouse needs -warehouse-dir"))
		}
		if err := dumpWarehouse(*warehouseDir, *dumpWarehouseTable, *segmentBudget); err != nil {
			fail(err)
		}
		return
	}

	stopProf, err := obs.StartProfiling(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "runstudy: profiling: %v\n", err)
		}
	}()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		fail(err)
	}
	if !*withText && (*textAppend > 0 || *textCorrupt > 0) {
		fail(fmt.Errorf("-text-append/-text-corrupt need -with-text"))
	}
	if *withText {
		notes, err := workload.BuildNotes(*seed+3, *n)
		if err != nil {
			fail(err)
		}
		// Appends extend the same seeded truth stream past the initial n, so a
		// delta-refresh run and a from-scratch full run given the same
		// -text-append count see identical Notes databases (the delta ≡ full
		// equivalence the CI smoke job checks with cmp).
		if *textAppend > 0 {
			extended := workload.Generate(*seed+3, *n+*textAppend)
			for _, t := range extended[*n:] {
				if err := notes.InsertTruth(t); err != nil {
					fail(err)
				}
			}
			fmt.Printf("appended %d report(s) to Notes\n", *textAppend)
		}
		for i := 0; i < *textCorrupt; i++ {
			id := notes.MaxID() + int64(i+1)
			if err := notes.InjectReport(id, workload.CorruptNoteBody(id)); err != nil {
				fail(err)
			}
		}
		if *textCorrupt > 0 {
			fmt.Printf("injected %d corrupt report(s) into Notes\n", *textCorrupt)
		}
		contribs = append(contribs, notes)
	}
	if *mutateCount > 0 {
		// Deterministic from (workload state, seed): a delta-refresh run and
		// a from-scratch full run given the same -mutate-* flags see the
		// same post-mutation contributor databases.
		batch := workload.RandomBatch(contribs, *mutateSeed, *mutateCount)
		if err := workload.Apply(contribs, batch); err != nil {
			fail(err)
		}
		fmt.Printf("applied %d synthetic mutation(s) (seed %d)\n", len(batch), *mutateSeed)
	}
	switch *studyName {
	case "reference":
		policy := etl.RunPolicy{
			MaxAttempts:        *retries + 1,
			Backoff:            10 * time.Millisecond,
			StepTimeout:        *stepTimeout,
			WorkflowTimeout:    *timeout,
			ContinueOnError:    *contOnErr,
			MaxQuarantinedRows: *quarBudget,
		}
		runReference(contribs, refOptions{
			vet:  *doVet,
			plan: *showPlan, sql: *showSQL, xquery: *showXQ, rows: *rows,
			workers: *workers, policy: policy, fail: splitList(*failContribs),
			ckptDir: *ckptDir, resume: *resume, crash: *crashAt,
			refresh: *doRefresh, refreshDelta: *doDeltaRefresh,
			warehouseDir: *warehouseDir, cursorFile: *cursorFile,
			segmentRows: *segmentRows,
			quarOut:     *quarOut, poison: *poison, poisonRows: *poisonRows,
			report:    *showReport,
			traceTree: *traceTree, traceOut: *traceOut, metrics: *showMetrics,
		})
	case "study1":
		res, err := guava.Study1(contribs)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
		truth := guava.Study1Truth(contribs)
		if *res == *truth {
			fmt.Println("matches ground truth at every stage (precision = recall = 1.0)")
		} else {
			fmt.Printf("MISMATCH vs ground truth: %+v\n", truth)
		}
	case "study2":
		for _, recent := range []bool{false, true} {
			res, err := guava.Study2(contribs, recent)
			if err != nil {
				fail(err)
			}
			fmt.Print(res.Render())
		}
	default:
		fmt.Fprintf(os.Stderr, "runstudy: unknown study %q\n", *studyName)
		os.Exit(2)
	}
}

// refOptions collects the reference-study switches: what to print and how
// to execute.
type refOptions struct {
	vet               bool
	plan, sql, xquery bool
	rows              int
	workers           int
	policy            etl.RunPolicy
	fail              []string
	ckptDir           string
	resume            bool
	crash             string
	refresh           bool
	refreshDelta      bool
	warehouseDir      string
	cursorFile        string
	segmentRows       int
	quarOut           string
	poison            string
	poisonRows        int
	report            bool
	traceTree         bool
	traceOut          string
	metrics           bool
}

// observed reports whether any observability output was requested.
func (o refOptions) observed() bool { return o.traceTree || o.traceOut != "" || o.metrics }

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runReference(contribs []*workload.Contributor, opt refOptions) {
	ctx := context.Background()
	var observer *obs.Observer
	if opt.observed() {
		observer = obs.NewObserver()
		ctx = obs.WithObserver(ctx, observer)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	if opt.vet {
		rep := vet.Study(spec, nil, nil)
		fmt.Fprint(os.Stderr, rep.Text())
		if rep.HasErrors() {
			fail(fmt.Errorf("study %q failed vetting with %d error(s); fix them or drop -vet", spec.Name, rep.Count(vet.SevError)))
		}
	}
	compiled, err := etl.CompileTraced(ctx, spec)
	if err != nil {
		fail(err)
	}
	if opt.vet {
		// Second vetting layer: dataflow analysis over the compiled operator
		// trees, where contradictions invisible in the artifacts surface.
		prep := &vet.Report{}
		plancheck.Analyze(compiled, prep, plancheck.Options{})
		prep.Sort()
		fmt.Fprint(os.Stderr, prep.Text())
		if prep.HasErrors() {
			fail(fmt.Errorf("study %q failed plan analysis with %d error(s); fix them or drop -vet",
				spec.Name, prep.Count(vet.SevError)))
		}
	}
	if opt.plan {
		fmt.Println(compiled.Workflow.Render())
	}
	if opt.sql {
		plans, err := compiled.EmitSQLPlans()
		if err != nil {
			fail(err)
		}
		var names []string
		for n := range plans {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("-- %s\n%s\n\n", n, plans[n])
		}
	}
	if opt.xquery {
		for _, c := range spec.Contributors {
			var domains []*classifier.Classifier
			for _, col := range spec.Columns {
				domains = append(domains, c.Classifiers[col.As])
			}
			xq, err := classifier.EmitXQuery(c.Name+".xml", c.Entity, domains)
			if err != nil {
				fail(err)
			}
			fmt.Printf("(: %s :)\n%s\n\n", c.Name, xq)
		}
	}
	for _, name := range opt.fail {
		id := "extract/" + name
		if faulty.Wrap(compiled.Workflow, id, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, FailForever: true}
		}) == nil {
			fail(fmt.Errorf("-fail: no step %q in the workflow", id))
		}
	}
	if opt.ckptDir != "" {
		store := etl.NewFSCheckpointer(opt.ckptDir)
		if !opt.resume {
			// A fresh run must not silently reuse a previous run's state.
			if err := store.Clear(compiled.Fingerprint()); err != nil {
				fail(fmt.Errorf("-checkpoint-dir: %w", err))
			}
		}
		opt.policy.Checkpoint = store
	} else if opt.resume {
		fail(fmt.Errorf("-resume needs -checkpoint-dir"))
	}
	if opt.crash != "" {
		id, mode, _ := strings.Cut(opt.crash, ":")
		if mode == "" {
			mode = "before"
		}
		if mode != "before" && mode != "after" {
			fail(fmt.Errorf("-crash: mode %q is not before or after", mode))
		}
		if faulty.Wrap(compiled.Workflow, id, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped,
				CrashBeforeWork: mode == "before", CrashAfterWork: mode == "after"}
		}) == nil {
			fail(fmt.Errorf("-crash: no step %q in the workflow", id))
		}
	}
	if opt.poison != "" {
		id := "extract/" + opt.poison
		if faulty.Wrap(compiled.Workflow, id, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, PoisonRows: opt.poisonRows}
		}) == nil {
			fail(fmt.Errorf("-poison: no step %q in the workflow", id))
		}
	}
	if opt.refresh || opt.refreshDelta {
		if opt.warehouseDir == "" {
			fail(fmt.Errorf("-refresh/-refresh-delta need -warehouse-dir"))
		}
		cursorFile := opt.cursorFile
		if cursorFile == "" {
			cursorFile = filepath.Join(opt.warehouseDir, "cursors.json")
		}
		warehouse := relstore.NewDB("warehouse")
		loaded, err := loadWarehouse(opt.warehouseDir, warehouse)
		if err != nil {
			fail(err)
		}
		if loaded > 0 {
			fmt.Printf("loaded %d warehouse table(s) from %s\n", loaded, opt.warehouseDir)
		}
		var cursors *etl.DeltaCursors
		if opt.refreshDelta {
			// The persisted cursors mark what the last run already applied;
			// only journal entries past them are recomputed.
			if cursors, err = etl.LoadDeltaCursors(cursorFile); err != nil {
				fail(err)
			}
			report, rerr := compiled.RefreshDelta(ctx, warehouse, etl.DeltaOptions{Cursors: cursors})
			emitObservability(observer, opt)
			if rerr != nil {
				fail(rerr)
			}
			fmt.Printf("delta refresh %q into table %q: %d changed key(s), %s\n",
				spec.Name, compiled.Output.Table, report.Keys, report.Stats)
		} else {
			// Pin the cursors before the full run: anything the plan sees is
			// at or below them, so the next -refresh-delta starts exactly
			// where this refresh left off.
			cursors = etl.NewDeltaCursors()
			if err := compiled.SeedDeltaCursors(cursors); err != nil {
				cursors = nil
			}
			stats, rerr := compiled.RefreshContext(ctx, warehouse, opt.policy)
			emitObservability(observer, opt)
			if rerr != nil {
				fail(rerr)
			}
			fmt.Printf("refresh %q into table %q: %s\n", spec.Name, compiled.Output.Table, stats)
		}
		if err := saveWarehouse(opt.warehouseDir, warehouse, opt.segmentRows); err != nil {
			fail(err)
		}
		if cursors != nil {
			if err := cursors.Save(cursorFile); err != nil {
				fail(err)
			}
		}
		fmt.Printf("warehouse persisted to %s\n", opt.warehouseDir)
		return
	}

	out, report, err := compiled.RunResilient(ctx, opt.policy, opt.workers)
	if report != nil {
		if restored := report.Restored(); len(restored) > 0 {
			fmt.Printf("resumed from checkpoints: %d step(s) restored (%s)\n",
				len(restored), strings.Join(restored, ", "))
		}
		if q := report.Quarantine(); q != nil && opt.quarOut != "" {
			if werr := writeQuarantine(opt.quarOut, q); werr != nil {
				fail(werr)
			}
		}
		if report.Quarantined > 0 {
			fmt.Printf("quarantined rows: %d\n", report.Quarantined)
		}
	}
	if opt.report && report != nil {
		fmt.Print(report.Render())
		fmt.Println()
	}
	emitObservability(observer, opt)
	if err != nil {
		fail(err)
	}
	fmt.Printf("study %q: %d rows\n", spec.Name, out.Len())
	head := out
	if out.Len() > opt.rows {
		head = &relstore.Rows{Schema: out.Schema, Data: out.Data[:opt.rows]}
	}
	fmt.Print(head.Format())
	// Summary: classification histogram.
	grouped, err := relstore.GroupBy(out, []string{"Smoking_D3"}, relstore.Aggregate{Kind: relstore.AggCount, As: "N"})
	if err != nil {
		fail(err)
	}
	sorted, err := relstore.SortBy(grouped, "Smoking_D3")
	if err != nil {
		fail(err)
	}
	fmt.Println("\nSmoking_D3 histogram:")
	fmt.Print(sorted.Format())
}

// emitObservability prints whichever trace/metric outputs were requested.
func emitObservability(observer *obs.Observer, opt refOptions) {
	if observer == nil {
		return
	}
	if opt.traceTree {
		fmt.Println("trace:")
		fmt.Print(obs.RenderTree(observer.Tracer.Spans()))
		fmt.Println()
	}
	if opt.traceOut != "" {
		f, ferr := os.Create(opt.traceOut)
		if ferr != nil {
			fail(ferr)
		}
		if ferr := obs.WriteSpans(f, observer.Tracer.Spans()); ferr != nil {
			f.Close()
			fail(ferr)
		}
		if ferr := f.Close(); ferr != nil {
			fail(ferr)
		}
		fmt.Printf("wrote %d spans to %s\n", observer.Tracer.Len(), opt.traceOut)
	}
	if opt.metrics {
		fmt.Println("metrics:")
		fmt.Print(observer.Metrics.Render())
		fmt.Println()
	}
}

// loadWarehouse restores every persisted table (<name>.rel, the typed
// relation format) from dir into db. A missing or empty dir is a first
// refresh, not an error.
func loadWarehouse(dir string, db *relstore.DB) (int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("-warehouse-dir: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rel") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return loaded, err
		}
		rows, err := relstore.ReadTyped(f)
		f.Close()
		if err != nil {
			return loaded, fmt.Errorf("warehouse table %s: %w", e.Name(), err)
		}
		table, err := db.CreateTable(strings.TrimSuffix(e.Name(), ".rel"), rows.Schema)
		if err != nil {
			return loaded, err
		}
		if err := table.InsertAll(rows.Data); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}

// saveWarehouse persists every table in db to dir as <name>.rel, sorted on
// every column — canonical bytes, so warehouses reached by different routes
// (delta refresh vs full recompute) compare equal with plain cmp. With
// segRows > 0 tables are written in the v2 segment-file layout (segRows rows
// per checksummed segment) so later runs can load them lazily under a byte
// budget; 0 keeps the v1 single-stream layout.
func saveWarehouse(dir string, db *relstore.DB, segRows int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.TableNames() {
		table, err := db.Table(name)
		if err != nil {
			return err
		}
		rows := table.Rows()
		sorted, err := relstore.SortBy(rows, rows.Schema.Names()...)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name+".rel"))
		if err != nil {
			return err
		}
		if segRows > 0 {
			err = relstore.WriteTypedSegmented(f, sorted, segRows)
		} else {
			err = relstore.WriteTyped(f, sorted)
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// dumpWarehouse streams one warehouse table to stdout in canonical v1 typed
// form, whatever layout it is stored in. A v2 segment file streams through a
// SegmentSet under the byte budget — segments load, emit, and evict, so the
// dump never materializes the whole relation — which is how the CI smoke job
// diffs a segment-mode warehouse against an in-memory-mode one.
func dumpWarehouse(dir, name string, budget int64) error {
	path := filepath.Join(dir, name+".rel")
	set, err := relstore.OpenSegments(path, budget)
	if err == nil {
		defer set.Close()
		w := bufio.NewWriter(os.Stdout)
		sl, err := relstore.MarshalSchemaJSON(set.Schema())
		if err != nil {
			return err
		}
		w.Write(sl)
		w.WriteByte('\n')
		var rowErr error
		scanErr := set.Scan(func(r relstore.Row) bool {
			rl, err := relstore.MarshalRowJSON(r)
			if err != nil {
				rowErr = err
				return false
			}
			w.Write(rl)
			w.WriteByte('\n')
			return true
		})
		if scanErr != nil {
			return scanErr
		}
		if rowErr != nil {
			return rowErr
		}
		return w.Flush()
	}
	// Not a v2 segment file: read the v1 stream and echo it back.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := relstore.ReadTyped(f)
	if err != nil {
		return err
	}
	return relstore.WriteTyped(os.Stdout, rows)
}

// writeQuarantine renders the dead-letter relation to the given path ("-"
// for stdout).
func writeQuarantine(path string, q *relstore.Rows) error {
	if path == "-" {
		fmt.Println("quarantine:")
		fmt.Print(q.Format())
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(q.Format()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d quarantined row(s) to %s\n", len(q.Data), path)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "runstudy: %v\n", err)
	os.Exit(1)
}
