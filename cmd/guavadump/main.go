// Command guavadump derives a g-tree from a reporting-tool form definition
// and prints it, as indented text or as the XML document GUAVA stores
// (Hypothesis #1 made visible: the tree, with all its context information,
// comes from the form definition alone).
//
// Usage:
//
//	guavadump [-contributor CORI|EndoSoft|MedRecord] [-format text|xml]
package main

import (
	"flag"
	"fmt"
	"os"

	"guava/internal/gtree"
	"guava/internal/ui"
	"guava/internal/workload"
)

func main() {
	contributor := flag.String("contributor", "CORI", "which simulated vendor tool to dump (CORI, EndoSoft, MedRecord)")
	format := flag.String("format", "text", "output format: text (g-tree), form (clinician view), or xml")
	node := flag.String("node", "", "print the full context report of one node instead of the tree")
	flag.Parse()

	var form *ui.Form
	switch *contributor {
	case "CORI":
		form = workload.CORIProcedureForm()
	case "EndoSoft":
		form = workload.EndoSoftExamForm()
	case "MedRecord":
		form = workload.MedRecordForm()
	default:
		fmt.Fprintf(os.Stderr, "guavadump: unknown contributor %q\n", *contributor)
		os.Exit(2)
	}
	if err := form.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "guavadump: %v\n", err)
		os.Exit(1)
	}
	tree, err := gtree.Derive(*contributor, 1, form)
	if err != nil {
		fmt.Fprintf(os.Stderr, "guavadump: %v\n", err)
		os.Exit(1)
	}
	if *node != "" {
		rep, err := tree.ContextReport(*node)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guavadump: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}
	switch *format {
	case "form":
		fmt.Print(form.Render())
	case "text":
		fmt.Print(tree.Render())
	case "xml":
		if err := gtree.EncodeXML(os.Stdout, tree); err != nil {
			fmt.Fprintf(os.Stderr, "guavadump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	default:
		fmt.Fprintf(os.Stderr, "guavadump: unknown format %q\n", *format)
		os.Exit(2)
	}
}
