// Command gendata generates the synthetic CORI-like workload, entering every
// record through each vendor tool's user interface and pattern stack, then
// dumps the g-tree views (and optionally the physical table inventory) as
// CSV for inspection.
//
// Usage:
//
//	gendata [-seed 42] [-n 200] [-out DIR] [-tables]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"guava/internal/relstore"
	"guava/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed")
	n := flag.Int("n", 200, "records per contributor")
	out := flag.String("out", "", "directory for CSV dumps (default: stdout summary only)")
	tables := flag.Bool("tables", false, "also list each contributor's physical tables")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
		os.Exit(1)
	}
	for _, c := range contribs {
		rows, err := c.Stack.Read(c.DB, c.Info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %4d records, pattern stack %s\n", c.Name, rows.Len(), c.Stack.Describe())
		if *tables {
			pt, err := c.Stack.PhysicalTables(c.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("           physical: %s\n", strings.Join(pt, ", "))
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, c.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
				os.Exit(1)
			}
			if err := relstore.WriteCSV(f, rows); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("           wrote %s\n", path)
		}
	}
}
