// Command gendata generates the synthetic CORI-like workload, entering every
// record through each vendor tool's user interface and pattern stack, then
// dumps the g-tree views (and optionally the physical table inventory) as
// CSV for inspection.
//
// With -rel the views are also written in the typed .rel relation format,
// which round-trips exactly (CSV conflates NULL with ""); -segment-rows N
// selects the v2 segment-file layout, N rows per checksummed segment, so a
// generated relation can later be scanned lazily under a byte budget (see
// STORAGE.md).
//
// With -reports a fourth, free-text contributor (Notes) is generated: the
// same seeded ground truth dictated into progress-note documents behind the
// textsrc layout. -report-corrupt injects that many out-of-vocabulary
// reports on top, so the dumped corpus exercises the extraction-miss path;
// the summary line reports how many documents diverted.
//
// Usage:
//
//	gendata [-seed 42] [-n 200] [-out DIR] [-tables]
//	        [-rel] [-segment-rows 0]
//	        [-reports] [-report-corrupt 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"guava/internal/relstore"
	"guava/internal/textsrc"
	"guava/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed")
	n := flag.Int("n", 200, "records per contributor")
	out := flag.String("out", "", "directory for CSV dumps (default: stdout summary only)")
	tables := flag.Bool("tables", false, "also list each contributor's physical tables")
	rel := flag.Bool("rel", false, "also write each view to -out in the typed .rel format")
	segmentRows := flag.Int("segment-rows", 0, "with -rel, write the v2 segment layout with this many rows per segment (0 = v1)")
	reports := flag.Bool("reports", false, "also generate the free-text Notes contributor and dump its report corpus")
	reportCorrupt := flag.Int("report-corrupt", 0, "with -reports, inject this many out-of-vocabulary reports")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		fail(err)
	}
	for _, c := range contribs {
		rows, err := c.Stack.Read(c.DB, c.Info)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %4d records, pattern stack %s\n", c.Name, rows.Len(), c.Stack.Describe())
		if *tables {
			pt, err := c.Stack.PhysicalTables(c.Info)
			if err != nil {
				fail(err)
			}
			fmt.Printf("           physical: %s\n", strings.Join(pt, ", "))
		}
		if *out == "" {
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*out, c.Name+".csv")
		if err := writeFile(path, func(f *os.File) error { return relstore.WriteCSV(f, rows) }); err != nil {
			fail(err)
		}
		fmt.Printf("           wrote %s\n", path)
		if *rel {
			path := filepath.Join(*out, c.Name+".rel")
			err := writeFile(path, func(f *os.File) error {
				if *segmentRows > 0 {
					return relstore.WriteTypedSegmented(f, rows, *segmentRows)
				}
				return relstore.WriteTyped(f, rows)
			})
			if err != nil {
				fail(err)
			}
			fmt.Printf("           wrote %s\n", path)
		}
	}

	if *reports {
		if err := dumpReports(*seed, *n, *reportCorrupt, *out); err != nil {
			fail(err)
		}
	}
}

// dumpReports generates the free-text contributor, optionally corrupts part
// of the corpus, and dumps both the raw documents and the extracted view.
// Extraction runs through ReadDiverting — the sanity pass every generated
// corpus gets — so corrupted reports divert instead of failing the dump.
func dumpReports(seed int64, n, corrupt int, out string) error {
	c, err := workload.BuildNotes(seed+3, n)
	if err != nil {
		return err
	}
	for i := 0; i < corrupt; i++ {
		id := c.MaxID() + int64(i+1)
		if err := c.InjectReport(id, workload.CorruptNoteBody(id)); err != nil {
			return err
		}
	}
	rows, misses, err := c.Stack.ReadDiverting(context.Background(), c.DB, c.Info)
	if err != nil {
		return err
	}
	total := n + corrupt
	fmt.Printf("%-10s %4d records extracted from %d reports (%d diverted), pattern stack %s\n",
		c.Name, rows.Len(), total, total-rows.Len(), c.Stack.Describe())
	for _, m := range misses {
		fmt.Printf("           miss %s: %s (%v)\n", m.Locator, m.Rule, m.Err)
	}
	if out == "" {
		return nil
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	docs, err := c.DB.Table(textsrc.ReportsTable(c.Info.Name))
	if err != nil {
		return err
	}
	corpusPath := filepath.Join(out, c.Name+"_reports.txt")
	err = writeFile(corpusPath, func(f *os.File) error {
		var werr error
		docs.Scan(func(r relstore.Row) bool {
			_, werr = fmt.Fprintf(f, "%s%%\n", r[1].AsString())
			return werr == nil
		})
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Printf("           wrote %s\n", corpusPath)
	csvPath := filepath.Join(out, c.Name+".csv")
	if err := writeFile(csvPath, func(f *os.File) error { return relstore.WriteCSV(f, rows) }); err != nil {
		return err
	}
	fmt.Printf("           wrote %s\n", csvPath)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
	os.Exit(1)
}
