// Command gendata generates the synthetic CORI-like workload, entering every
// record through each vendor tool's user interface and pattern stack, then
// dumps the g-tree views (and optionally the physical table inventory) as
// CSV for inspection.
//
// With -rel the views are also written in the typed .rel relation format,
// which round-trips exactly (CSV conflates NULL with ""); -segment-rows N
// selects the v2 segment-file layout, N rows per checksummed segment, so a
// generated relation can later be scanned lazily under a byte budget (see
// STORAGE.md).
//
// Usage:
//
//	gendata [-seed 42] [-n 200] [-out DIR] [-tables]
//	        [-rel] [-segment-rows 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"guava/internal/relstore"
	"guava/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed")
	n := flag.Int("n", 200, "records per contributor")
	out := flag.String("out", "", "directory for CSV dumps (default: stdout summary only)")
	tables := flag.Bool("tables", false, "also list each contributor's physical tables")
	rel := flag.Bool("rel", false, "also write each view to -out in the typed .rel format")
	segmentRows := flag.Int("segment-rows", 0, "with -rel, write the v2 segment layout with this many rows per segment (0 = v1)")
	flag.Parse()

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		fail(err)
	}
	for _, c := range contribs {
		rows, err := c.Stack.Read(c.DB, c.Info)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %4d records, pattern stack %s\n", c.Name, rows.Len(), c.Stack.Describe())
		if *tables {
			pt, err := c.Stack.PhysicalTables(c.Info)
			if err != nil {
				fail(err)
			}
			fmt.Printf("           physical: %s\n", strings.Join(pt, ", "))
		}
		if *out == "" {
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*out, c.Name+".csv")
		if err := writeFile(path, func(f *os.File) error { return relstore.WriteCSV(f, rows) }); err != nil {
			fail(err)
		}
		fmt.Printf("           wrote %s\n", path)
		if *rel {
			path := filepath.Join(*out, c.Name+".rel")
			err := writeFile(path, func(f *os.File) error {
				if *segmentRows > 0 {
					return relstore.WriteTypedSegmented(f, rows, *segmentRows)
				}
				return relstore.WriteTyped(f, rows)
			})
			if err != nil {
				fail(err)
			}
			fmt.Printf("           wrote %s\n", path)
		}
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
	os.Exit(1)
}
