// Command studyd is the study-serving daemon: it loads the synthetic
// workload, vets and compiles the reference study (plus a smoking-only
// "cohort" variant) exactly once into the serve plan cache, refreshes the
// warehouse in the background on -refresh-interval, and serves the JSON
// extract API until SIGTERM/SIGINT, at which point it drains: background
// refresh stops, in-flight requests finish, and the process prints
// "studyd: drained cleanly" before exiting 0.
//
// The API (see internal/serve):
//
//	curl localhost:8091/healthz          # legacy combined probe
//	curl localhost:8091/healthz/live     # liveness: 200 while the process is up
//	curl localhost:8091/healthz/ready    # readiness: 503 while draining or warming
//	curl localhost:8091/studies
//	curl 'localhost:8091/studies/reference/extract?Smoking_D3=Heavy&limit=10'
//	curl -X POST localhost:8091/studies/reference/refresh
//	curl localhost:8091/metrics
//
// Usage:
//
//	studyd [-addr :8091] [-seed 42] [-n 200]
//	       [-refresh-interval 0] [-max-inflight 8] [-max-per-study 0]
//	       [-request-timeout 10s] [-plan-cache 16] [-result-cache 128]
//	       [-retries 0] [-step-timeout 0] [-continue]
//	       [-warehouse-dir /var/lib/studyd] [-fs-faults torn_rename:MANIFEST@0]
//	       [-trace-out spans.jsonl] [-parallel 0] [-with-text]
//
// With -warehouse-dir, every data-changing refresh is persisted as an
// immutable generation (segment file + checksummed MANIFEST); a restart —
// clean or SIGKILL — recovers the newest complete generation and serves it
// without re-running any study plan, discarding torn ones. -fs-faults runs
// the warehouse writes through the storage fault injector so crash drills
// can tear them on purpose.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/obs"
	"guava/internal/relstore"
	"guava/internal/serve"
	"guava/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 200, "records per contributor")
	refreshEvery := flag.Duration("refresh-interval", 0, "background warehouse refresh period (0 = on demand only)")
	maxInFlight := flag.Int("max-inflight", 8, "concurrent extracts admitted before 429")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline")
	planCache := flag.Int("plan-cache", 16, "compiled plans kept resident")
	resultCache := flag.Int("result-cache", 128, "rendered extracts kept resident")
	retries := flag.Int("retries", 0, "refresh retries per step beyond the first attempt")
	stepTimeout := flag.Duration("step-timeout", 0, "refresh deadline per step attempt (0 = none)")
	contOnErr := flag.Bool("continue", false, "refresh continues past failed contributors (graceful degradation)")
	traceOut := flag.String("trace-out", "", "append request/refresh spans as JSON lines to this file")
	badStudy := flag.Bool("bad-study", false, "additionally register a \"badplan\" study (lazily) whose compiled plan is contradictory; its first extract or refresh is rejected with 422 by the plan-admission gate")
	parallel := flag.Int("parallel", 0, "worker bound for relstore's chunked columnar scans (0 = default of min(GOMAXPROCS, 8), 1 = sequential)")
	warehouseDir := flag.String("warehouse-dir", "", "persist study generations under this directory and recover the newest complete one at startup (empty = memory only)")
	fsFaults := flag.String("fs-faults", "", "inject storage faults into warehouse writes, kind[:pathsub][@after][~delay],... e.g. torn_rename:MANIFEST@0")
	maxPerStudy := flag.Int("max-per-study", 0, "concurrent cache-miss extracts admitted per study before 429 (0 = no per-study bound)")
	withText := flag.Bool("with-text", false, "add the free-text Notes contributor so the served studies mix text and database sources")
	flag.Parse()

	if *parallel > 0 {
		// Extract predicates push down into relstore's chunked scans; this
		// bounds the per-scan fan-out so it composes with -max-inflight
		// instead of multiplying it unchecked.
		relstore.SetParallelism(*parallel)
	}

	observer := &obs.Observer{Metrics: obs.NewRegistry()}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		traceFile = f
		observer.Tracer = obs.NewTracer()
	}
	// Periodically drain spans to disk so the daemon's trace buffer stays
	// bounded however long it runs.
	drainSpans := func() {
		if traceFile == nil {
			return
		}
		if spans := observer.Tracer.Drain(); len(spans) > 0 {
			if err := obs.WriteSpans(traceFile, spans); err != nil {
				fmt.Fprintf(os.Stderr, "studyd: trace export: %v\n", err)
			}
		}
	}

	contribs, err := workload.BuildAll(*seed, *n)
	if err != nil {
		fail(err)
	}
	if *withText {
		// The Notes contributor dictates the same seeded ground truth into
		// progress-note documents; its extraction runs inside every study
		// refresh, so the served extract mixes text- and database-sourced rows.
		notes, err := workload.BuildNotes(*seed+3, *n)
		if err != nil {
			fail(err)
		}
		contribs = append(contribs, notes)
	}
	reference, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	cohort, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		fail(err)
	}
	// The cohort study serves the smoking column alone — a second plan in
	// the cache over the same contributor databases.
	cohort.Name = "cohort"
	cohort.Columns = cohort.Columns[:1]
	for _, c := range cohort.Contributors {
		delete(c.Classifiers, "Hypoxia_D1")
	}

	// The warehouse filesystem: real, or wrapped in the fault injector so CI
	// can tear generation writes and watch recovery cope.
	var warehouseFS etl.FS
	if *fsFaults != "" {
		faults, err := faulty.ParseFaultSchedule(*fsFaults)
		if err != nil {
			fail(err)
		}
		ffs := faulty.NewFS(etl.OSFS{}, faults...)
		ffs.Metrics = observer.Metrics
		warehouseFS = ffs
	}

	srv := serve.NewServer(serve.Config{
		RefreshInterval: *refreshEvery,
		MaxInFlight:     *maxInFlight,
		MaxPerStudy:     *maxPerStudy,
		RequestTimeout:  *reqTimeout,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		WarehouseDir:    *warehouseDir,
		FS:              warehouseFS,
		Logf: func(format string, args ...any) {
			fmt.Printf("studyd: "+format+"\n", args...)
		},
		Policy: etl.RunPolicy{
			MaxAttempts:     *retries + 1,
			Backoff:         10 * time.Millisecond,
			StepTimeout:     *stepTimeout,
			ContinueOnError: *contOnErr,
		},
		Observer: observer,
	})
	ctx := context.Background()
	for _, spec := range []*etl.StudySpec{reference, cohort} {
		if err := srv.AddStudy(ctx, spec); err != nil {
			fail(err)
		}
		fmt.Printf("studyd: study %q ready\n", spec.Name)
	}
	if *badStudy {
		// Artifacts vet clean (the contradiction only exists post-compile),
		// so lazy registration succeeds; the plan-admission gate rejects the
		// study at its first use, and every request answers 422 with the
		// GV21x report — the r8-smoke CI job drives exactly this.
		bad, err := baseline.ReferenceSpec(contribs)
		if err != nil {
			fail(err)
		}
		bad.Name = "badplan"
		bad.Contributors = bad.Contributors[:1]
		bad.Contributors[0].Condition = "PacksPerDay > 5 AND PacksPerDay < 2"
		if err := srv.AddStudyLazy(bad); err != nil {
			fail(err)
		}
		fmt.Printf("studyd: study %q registered lazily (plan will be rejected at first use)\n", bad.Name)
	}

	if err := srv.Start(*addr); err != nil {
		fail(err)
	}
	fmt.Printf("studyd: listening on %s (refresh interval %s)\n", srv.Addr(), *refreshEvery)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			drainSpans()
		case sig := <-sigs:
			fmt.Printf("studyd: %s received, draining\n", sig)
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			err := srv.Shutdown(shutdownCtx)
			cancel()
			drainSpans()
			if traceFile != nil {
				traceFile.Close()
			}
			if err != nil {
				fail(fmt.Errorf("drain: %w", err))
			}
			fmt.Println("studyd: drained cleanly")
			return
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "studyd: %v\n", err)
	os.Exit(1)
}
