// Command classlint analyzes a classifier's rule list before it is trusted
// with a study: it parses the rules, reconstructs the number-line interval
// each rule covers (for single-variable threshold classifiers, the dominant
// Figure 5 shape), and reports gaps and shadowed rules — the mistakes an
// analyst most wants caught before precision and recall suffer.
//
// Rules are read from a file or stdin, one "value <- guard" per line:
//
//	classlint -elements None,Light,Moderate,Heavy rules.txt
//	echo "Heavy <- Packs >= 5" | classlint -elements Heavy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"guava/internal/classifier"
	"guava/internal/relstore"
)

func main() {
	elements := flag.String("elements", "", "comma-separated categorical domain elements")
	name := flag.String("name", "classifier", "classifier name for the report")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
		os.Exit(1)
	}
	target := classifier.Target{
		Entity: "Entity", Attribute: "Attribute", Domain: "Domain",
		Kind: relstore.KindString,
	}
	if *elements != "" {
		target.Elements = strings.Split(*elements, ",")
	} else {
		target.Kind = relstore.KindNull // open domain: accept any value type
	}
	cl, err := classifier.Parse(*name, "", target, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
		os.Exit(1)
	}
	rep, err := classifier.AnalyzeIntervals(cl)
	if err != nil {
		fmt.Printf("parsed %d rules; not a single-variable threshold classifier (%v)\n", len(cl.Rules), err)
		return
	}
	fmt.Print(rep.Render(cl))
	if len(rep.Gaps) == 0 && len(rep.Shadowed) == 0 {
		fmt.Println("  no gaps, no shadowed rules")
	} else {
		os.Exit(1)
	}
}
