// Command classlint analyzes a classifier's rule list before it is trusted
// with a study: it parses the rules and runs the vet engine's standalone
// classifier checks — unsatisfiable guards (GV105), shadowed rules (GV102),
// domain gaps (GV103) and uncovered numeric tails (GV109), and rule values
// outside the declared domain (GV104) — the mistakes an analyst most wants
// caught before precision and recall suffer.
//
// Rules are read from a file or stdin, one "value <- guard" per line:
//
//	classlint -elements None,Light,Moderate,Heavy rules.txt
//	echo "Heavy <- Packs >= 5" | classlint -elements Heavy
//
// Migration note: classlint used to reconstruct single-variable threshold
// intervals via classifier.AnalyzeIntervals and exited nonzero on any gap or
// shadowed rule. It now runs on the internal/vet diagnostics engine — the
// same one behind guavavet — which handles multi-variable and categorical
// guards, and it exits nonzero only when an error-severity diagnostic is
// found; gaps and shadowing are warnings. Use guavavet for whole-study
// vetting with g-trees, schemas, and manifests in play.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"guava/internal/classifier"
	"guava/internal/relstore"
	"guava/internal/vet"
)

func main() {
	elements := flag.String("elements", "", "comma-separated categorical domain elements")
	name := flag.String("name", "classifier", "classifier name for the report")
	flag.Parse()

	var src []byte
	var err error
	file := "<stdin>"
	if flag.NArg() > 0 {
		file = flag.Arg(0)
		src, err = os.ReadFile(file)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
		os.Exit(1)
	}
	target := classifier.Target{
		Entity: "Entity", Attribute: "Attribute", Domain: "Domain",
		Kind: relstore.KindString,
	}
	if *elements != "" {
		target.Elements = strings.Split(*elements, ",")
	} else {
		target.Kind = relstore.KindNull // open domain: accept any value type
	}
	cl, err := classifier.Parse(*name, "", target, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
		os.Exit(1)
	}
	rep := &vet.Report{}
	vet.CheckClassifier(rep, cl, nil, file)
	rep.Sort()
	fmt.Print(rep.Text())
	if rep.HasErrors() {
		os.Exit(1)
	}
	if len(rep.Diags) == 0 {
		fmt.Printf("%s: %d rules, no findings\n", *name, len(cl.Rules))
	}
}
