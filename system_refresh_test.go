package guava

import (
	"context"
	"testing"

	"guava/internal/etl"
	"guava/internal/obs"
)

// TestStudyRefreshContextFacade: the periodic warehouse-inclusion path is
// reachable through the public facade — a Study refreshes into a warehouse
// DB under a RunPolicy and a cancellable context, the RefreshStats alias
// round-trips, and the refresh.* counters land in the attached Observer.
func TestStudyRefreshContextFacade(t *testing.T) {
	sys := registerAll(t, buildContribs(t))
	st, err := sys.DefineStudy("facade-refresh").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "h", "", habitsTarget, "None <- PacksPerDay = 0").
		Done().Build()
	if err != nil {
		t.Fatal(err)
	}

	warehouse := NewDB("warehouse")
	o := obs.NewObserver()
	ctx := obs.WithObserver(context.Background(), o)

	var stats RefreshStats
	stats, err = st.RefreshContext(ctx, warehouse, etl.RunPolicy{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Changed() || stats.Added == 0 {
		t.Fatalf("first refresh = %+v, want added rows", stats)
	}
	if !warehouse.Has("Study_facade-refresh") {
		t.Fatal("warehouse table missing after refresh")
	}
	if got := o.Metrics.Counter("refresh.added").Value(); got != int64(stats.Added) {
		t.Errorf("refresh.added = %d, want %d", got, stats.Added)
	}
	if o.Tracer.Find("refresh facade-refresh") == nil {
		t.Error("refresh span missing from the attached tracer")
	}

	// Idempotent second pass through the plain facade method.
	stats, err = st.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed() {
		t.Errorf("idempotent refresh = %+v", stats)
	}

	// Cancellation propagates.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.RefreshContext(canceled, warehouse, etl.RunPolicy{}); err == nil {
		t.Error("refresh under a canceled context must fail")
	}
}
