package guava

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/relstore"
)

// StudyDoc is the serializable form of a study: the analyst's complete set
// of decisions — columns, per-contributor classifiers (as rule text),
// conditions, cleaners, annotations — without live database handles, which
// re-resolve against a System's registered contributors at load time. This
// is the persistence layer behind the paper's requirement that analysts can
// "document, inspect, reuse, and modify integration decisions from prior
// studies".
type StudyDoc struct {
	Name         string           `json:"name"`
	Columns      []ColumnDoc      `json:"columns"`
	Contributors []ContributorDoc `json:"contributors"`
	Annotations  []AnnotationDoc  `json:"annotations,omitempty"`
}

// ColumnDoc serializes one output column.
type ColumnDoc struct {
	As        string `json:"as"`
	Attribute string `json:"attribute"`
	Domain    string `json:"domain"`
	Kind      string `json:"kind"`
}

// ContributorDoc serializes one contributor's study choices.
type ContributorDoc struct {
	Name        string                   `json:"name"`
	Entity      ClassifierDoc            `json:"entity"`
	Classifiers map[string]ClassifierDoc `json:"classifiers"`
	Cleaners    []ClassifierDoc          `json:"cleaners,omitempty"`
	Condition   string                   `json:"condition,omitempty"`
}

// ClassifierDoc serializes a classifier as its source text plus target.
type ClassifierDoc struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Entity      string   `json:"entity,omitempty"`
	Attribute   string   `json:"attribute,omitempty"`
	Domain      string   `json:"domain,omitempty"`
	Kind        string   `json:"kind,omitempty"`
	Elements    []string `json:"elements,omitempty"`
	Rules       string   `json:"rules"`
}

// AnnotationDoc serializes one provenance entry.
type AnnotationDoc struct {
	Author string    `json:"author"`
	At     time.Time `json:"at"`
	Note   string    `json:"note"`
}

func kindName(k relstore.Kind) string { return k.String() }

func kindFromName(s string) (relstore.Kind, error) {
	switch s {
	case "INTEGER":
		return relstore.KindInt, nil
	case "REAL":
		return relstore.KindFloat, nil
	case "TEXT":
		return relstore.KindString, nil
	case "BOOLEAN":
		return relstore.KindBool, nil
	case "", "NULL":
		return relstore.KindNull, nil
	default:
		return 0, fmt.Errorf("guava: unknown kind %q", s)
	}
}

func classifierDoc(cl *Classifier) ClassifierDoc {
	return ClassifierDoc{
		Name:        cl.Name,
		Description: cl.Description,
		Entity:      cl.Target.Entity,
		Attribute:   cl.Target.Attribute,
		Domain:      cl.Target.Domain,
		Kind:        kindName(cl.Target.Kind),
		Elements:    cl.Target.Elements,
		Rules:       cl.Source,
	}
}

// Doc serializes the study.
func (st *Study) Doc() *StudyDoc {
	doc := &StudyDoc{Name: st.Name}
	for _, c := range st.spec.Columns {
		doc.Columns = append(doc.Columns, ColumnDoc{
			As: c.As, Attribute: c.Attribute, Domain: c.Domain, Kind: kindName(c.Kind),
		})
	}
	for _, c := range st.spec.Contributors {
		cd := ContributorDoc{
			Name:        c.Name,
			Entity:      classifierDoc(c.Entity),
			Classifiers: make(map[string]ClassifierDoc, len(c.Classifiers)),
			Condition:   c.Condition,
		}
		for col, cl := range c.Classifiers {
			cd.Classifiers[col] = classifierDoc(cl)
		}
		for _, cl := range c.Cleaners {
			cd.Cleaners = append(cd.Cleaners, classifierDoc(cl))
		}
		doc.Contributors = append(doc.Contributors, cd)
	}
	for _, a := range st.Log.Entries() {
		doc.Annotations = append(doc.Annotations, AnnotationDoc{Author: a.Author, At: a.At, Note: a.Note})
	}
	return doc
}

// JSON renders the document, keeping the classifier language's "<-" arrows
// readable (no HTML escaping).
func (d *StudyDoc) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseStudyDoc reads a document from JSON.
func ParseStudyDoc(data []byte) (*StudyDoc, error) {
	var d StudyDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("guava: parse study doc: %w", err)
	}
	return &d, nil
}

// LoadStudy rebuilds and compiles a study from a document, resolving each
// contributor against the system's registry. The study registers under the
// document's name.
func (s *System) LoadStudy(doc *StudyDoc) (*Study, error) {
	b := s.DefineStudy(doc.Name)
	for _, c := range doc.Columns {
		k, err := kindFromName(c.Kind)
		if err != nil {
			return nil, err
		}
		b.Column(c.As, c.Attribute, c.Domain, k)
	}
	for _, cd := range doc.Contributors {
		cb := b.For(cd.Name)
		cb.EntityFor(cd.Entity.Entity, cd.Entity.Name, cd.Entity.Description, cd.Entity.Rules)
		for col, cld := range cd.Classifiers {
			k, err := kindFromName(cld.Kind)
			if err != nil {
				return nil, err
			}
			target := classifier.Target{
				Entity: cld.Entity, Attribute: cld.Attribute, Domain: cld.Domain,
				Kind: k, Elements: cld.Elements,
			}
			cb.Classify(col, cld.Name, cld.Description, target, cld.Rules)
		}
		for _, cld := range cd.Cleaners {
			cb.Clean(cld.Name, cld.Description, cld.Rules)
		}
		if cd.Condition != "" {
			cb.Condition(cd.Condition)
		}
		cb.Done()
	}
	st, err := b.Build()
	if err != nil {
		return nil, err
	}
	for _, a := range doc.Annotations {
		st.Log.Add(a.Author, a.Note, a.At)
	}
	return st, nil
}

// Columns exposes the study's output columns for inspection.
func (st *Study) Columns() []etl.ColumnSpec {
	out := make([]etl.ColumnSpec, len(st.spec.Columns))
	copy(out, st.spec.Columns)
	return out
}
