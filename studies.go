package guava

import (
	"context"
	"fmt"

	"guava/internal/gquery"
	"guava/internal/workload"
)

// This file implements the two motivating studies of Section 2 over the
// synthetic workload contributors, with per-contributor conditions written
// in each vendor's own vocabulary — the analyst-side work MultiClass
// captures. Ground-truth counterparts score the system for Hypothesis #2.

// Study1Result is the funnel of Study 1: "of all patients undergoing upper
// GI endoscopy, how many had the indication of Asthma-specific
// ENT/Pulmonary Reflux symptoms? Of these, include only those with no
// history of renal failure and with cardiopulmonary and abdominal
// examinations within normal limits. How many of these suffered the
// complication of transient hypoxia? Of these, how many required each of
// the following interventions: surgery, IV fluids, or oxygen
// administration?"
type Study1Result struct {
	UpperGI          int
	AsthmaIndication int
	Eligible         int
	TransientHypoxia int
	Surgery          int
	IVFluids         int
	Oxygen           int
}

// study1Conditions holds each vendor's wording of the funnel stages.
type study1Conditions struct {
	upperGI  string
	asthma   string
	eligible string
	hypoxia  string
	surgery  string
	ivfluids string
	oxygen   string
}

var study1Vocab = map[string]study1Conditions{
	"CORI": {
		upperGI:  "ProcType = 'Upper GI Endoscopy'",
		asthma:   "Indication = 'Asthma-specific ENT/Pulmonary Reflux symptoms'",
		eligible: "RenalFailure = FALSE AND CardioWNL = TRUE AND AbdoWNL = TRUE",
		hypoxia:  "TransientHypoxia = TRUE",
		surgery:  "Surgery = TRUE",
		ivfluids: "IVFluids = TRUE",
		oxygen:   "Oxygen = TRUE",
	},
	"EndoSoft": {
		upperGI:  "ExamType = 'EGD'",
		asthma:   "Reason = 'Reflux-associated asthma symptoms'",
		eligible: "RenalDisease = FALSE AND CardioNormal = TRUE AND AbdoNormal = TRUE",
		hypoxia:  "O2Desat = TRUE",
		surgery:  "TxSurgery = 'Yes'",
		ivfluids: "TxFluids = 'Yes'",
		oxygen:   "TxOxygen = 'Yes'",
	},
	"MedRecord": {
		upperGI:  "ProcCode = 10",
		asthma:   "IndicationText = 'Asthma-specific ENT/Pulmonary Reflux symptoms'",
		eligible: "RenalHx = FALSE AND CardioOK = TRUE AND AbdoOK = TRUE",
		hypoxia:  "HypoxiaT = TRUE",
		surgery:  "TxSurg = TRUE",
		ivfluids: "TxIVF = TRUE",
		oxygen:   "TxO2 = TRUE",
	},
}

// countWhere counts a contributor's records matching a condition in the
// classifier expression language, evaluated through the g-tree view.
func countWhere(c *workload.Contributor, cond string) (int, error) {
	q := &gquery.Query{Tree: c.Tree, Select: []string{c.Tree.KeyColumn}, Where: cond}
	rows, err := q.Run(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		return 0, err
	}
	return rows.Len(), nil
}

// Study1 runs the funnel over the workload contributors, summing counts
// across sources (each stage ANDs onto the previous ones).
func Study1(contribs []*workload.Contributor) (*Study1Result, error) {
	out := &Study1Result{}
	for _, c := range contribs {
		v, ok := study1Vocab[c.Name]
		if !ok {
			return nil, fmt.Errorf("guava: no Study 1 vocabulary for contributor %q", c.Name)
		}
		stages := []struct {
			cond string
			dst  *int
		}{
			{v.upperGI, &out.UpperGI},
			{v.upperGI + " AND " + v.asthma, &out.AsthmaIndication},
			{v.upperGI + " AND " + v.asthma + " AND " + v.eligible, &out.Eligible},
			{v.upperGI + " AND " + v.asthma + " AND " + v.eligible + " AND " + v.hypoxia, &out.TransientHypoxia},
		}
		base := stages[3].cond
		stages = append(stages,
			struct {
				cond string
				dst  *int
			}{base + " AND " + v.surgery, &out.Surgery},
			struct {
				cond string
				dst  *int
			}{base + " AND " + v.ivfluids, &out.IVFluids},
			struct {
				cond string
				dst  *int
			}{base + " AND " + v.oxygen, &out.Oxygen},
		)
		for _, st := range stages {
			n, err := countWhere(c, st.cond)
			if err != nil {
				return nil, fmt.Errorf("guava: study 1 over %s: %w", c.Name, err)
			}
			*st.dst += n
		}
	}
	return out, nil
}

// Study1Truth computes the same funnel from ground truth.
func Study1Truth(contribs []*workload.Contributor) *Study1Result {
	out := &Study1Result{}
	for _, c := range contribs {
		for _, t := range c.Truths {
			if t.ProcType != "Upper GI Endoscopy" {
				continue
			}
			out.UpperGI++
			if t.Indication != workload.Indications[0] {
				continue
			}
			out.AsthmaIndication++
			if t.RenalFailure || !t.CardioWNL || !t.AbdoWNL {
				continue
			}
			out.Eligible++
			if !t.TransientHypoxia {
				continue
			}
			out.TransientHypoxia++
			if t.Surgery {
				out.Surgery++
			}
			if t.IVFluids {
				out.IVFluids++
			}
			if t.Oxygen {
				out.Oxygen++
			}
		}
	}
	return out
}

// Render formats the funnel for CLI output.
func (r *Study1Result) Render() string {
	return fmt.Sprintf(`Study 1: upper GI endoscopy funnel
  upper GI endoscopies:         %5d
  + asthma/reflux indication:   %5d
  + eligible (no renal, WNL):   %5d
  + transient hypoxia:          %5d
      requiring surgery:        %5d
      requiring IV fluids:      %5d
      requiring oxygen:         %5d
`, r.UpperGI, r.AsthmaIndication, r.Eligible, r.TransientHypoxia, r.Surgery, r.IVFluids, r.Oxygen)
}

// Study2Result answers Study 2 under one definition of "ex-smoker": "of all
// procedures on ex-smokers, how many had a complication of hypoxia?"
type Study2Result struct {
	// Definition documents which ex-smoker reading was used.
	Definition  string
	ExSmokers   int
	WithHypoxia int
}

// study2Conditions is each vendor's wording of "ex-smoker" and "hypoxia".
type study2Conditions struct {
	exEver   string
	exRecent string // quit within the last year
	hypoxia  string
}

var study2Vocab = map[string]study2Conditions{
	"CORI": {
		exEver:   "Smoking = 'Quit'",
		exRecent: "Smoking = 'Quit' AND QuitYearsAgo <= 1",
		hypoxia:  "TransientHypoxia = TRUE OR ProlongedHypoxia = TRUE",
	},
	"EndoSoft": {
		exEver:   "SmokingStatus = 'Ex-smoker'",
		exRecent: "SmokingStatus = 'Ex-smoker' AND YearsSinceQuit <= 1",
		hypoxia:  "O2Desat = TRUE OR O2DesatProlonged = TRUE",
	},
	"MedRecord": {
		exEver:   "SmokeCode = 2",
		exRecent: "SmokeCode = 2 AND QuitYears <= 1",
		hypoxia:  "HypoxiaT = TRUE OR HypoxiaP = TRUE",
	},
}

// Study2 runs the ex-smoker × hypoxia study. withinLastYear selects the
// stricter ex-smoker definition — the paper's point is that the *same*
// study gives different answers under different classifier choices, and
// MultiClass makes the choice explicit and reusable.
func Study2(contribs []*workload.Contributor, withinLastYear bool) (*Study2Result, error) {
	def := "ex-smoker = ever quit"
	if withinLastYear {
		def = "ex-smoker = quit within the last year"
	}
	out := &Study2Result{Definition: def}
	for _, c := range contribs {
		v, ok := study2Vocab[c.Name]
		if !ok {
			return nil, fmt.Errorf("guava: no Study 2 vocabulary for contributor %q", c.Name)
		}
		ex := v.exEver
		if withinLastYear {
			ex = v.exRecent
		}
		n, err := countWhere(c, ex)
		if err != nil {
			return nil, fmt.Errorf("guava: study 2 over %s: %w", c.Name, err)
		}
		out.ExSmokers += n
		n, err = countWhere(c, "("+ex+") AND ("+v.hypoxia+")")
		if err != nil {
			return nil, err
		}
		out.WithHypoxia += n
	}
	return out, nil
}

// Study2TruthCounts computes the same counts from ground truth. withinYears
// = 0 means "ever quit"; 1 means "quit within the last year".
func Study2TruthCounts(contribs []*workload.Contributor, withinYears int64) *Study2Result {
	def := "ex-smoker = ever quit"
	if withinYears > 0 {
		def = "ex-smoker = quit within the last year"
	}
	out := &Study2Result{Definition: def}
	for _, c := range contribs {
		for _, t := range c.Truths {
			if !t.ExSmoker(withinYears) {
				continue
			}
			out.ExSmokers++
			if t.HasHypoxia() {
				out.WithHypoxia++
			}
		}
	}
	return out
}

// Render formats the result for CLI output.
func (r *Study2Result) Render() string {
	pct := 0.0
	if r.ExSmokers > 0 {
		pct = 100 * float64(r.WithHypoxia) / float64(r.ExSmokers)
	}
	return fmt.Sprintf("Study 2 (%s): %d ex-smoker procedures, %d with hypoxia (%.1f%%)\n",
		r.Definition, r.ExSmokers, r.WithHypoxia, pct)
}
