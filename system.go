package guava

import (
	"context"
	"fmt"
	"sort"
	"time"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gquery"
	"guava/internal/gtree"
	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/provenance"
	"guava/internal/relstore"
	"guava/internal/ui"
	"guava/internal/vet"
)

// System is one GUAVA/MultiClass installation: registered contributors,
// defined studies, and the annotation trail every artifact carries.
type System struct {
	// Name labels the installation (e.g. the warehouse it feeds).
	Name string

	contributors map[string]*Contributor
	studies      map[string]*Study
}

// New creates an empty system.
func New(name string) *System {
	return &System{
		Name:         name,
		contributors: make(map[string]*Contributor),
		studies:      make(map[string]*Study),
	}
}

// Contributor is one registered data source: its form, pattern stack,
// database, and the automatically derived g-tree.
type Contributor struct {
	Name  string
	Form  *Form
	Info  FormInfo
	Stack *Stack
	DB    *DB
	Tree  *GTree
	// Log is the contributor's annotation history.
	Log provenance.Log
}

// RegisterContributor derives the g-tree from the form (Hypothesis #1),
// installs the pattern stack into the database when its tables are absent,
// and registers the source under the name.
func (s *System) RegisterContributor(name string, form *Form, stack *Stack, db *DB) (*Contributor, error) {
	if _, dup := s.contributors[name]; dup {
		return nil, fmt.Errorf("guava: contributor %q already registered", name)
	}
	if err := form.Validate(); err != nil {
		return nil, err
	}
	tree, err := gtree.Derive(name, 1, form)
	if err != nil {
		return nil, err
	}
	info, err := patterns.FromUIForm(form)
	if err != nil {
		return nil, err
	}
	if err := stack.Install(db, info); err != nil {
		return nil, err
	}
	c := &Contributor{Name: name, Form: form, Info: info, Stack: stack, DB: db, Tree: tree}
	s.contributors[name] = c
	return c, nil
}

// Contributor returns the named contributor.
func (s *System) Contributor(name string) (*Contributor, error) {
	c, ok := s.contributors[name]
	if !ok {
		return nil, fmt.Errorf("guava: no contributor %q", name)
	}
	return c, nil
}

// ContributorNames lists registered contributors, sorted.
func (s *System) ContributorNames() []string {
	out := make([]string, 0, len(s.contributors))
	for n := range s.contributors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Sink returns a data-entry sink writing through the contributor's pattern
// stack — what the simulated reporting tool submits into.
func (c *Contributor) Sink() ui.RecordSink {
	return &patterns.Sink{DB: c.DB, Stack: c.Stack}
}

// NewEntryFor starts a new data-entry session on the contributor's form
// with the given instance key.
func NewEntryFor(c *Contributor, key int64) (*Entry, error) {
	return ui.NewEntry(c.Form, key)
}

// Query runs a g-tree query against the contributor.
func (c *Contributor) Query(q *Query) (*Rows, error) {
	return q.Run(context.Background(), c.DB, c.Stack, c.Info)
}

// Aggregate runs a grouped-aggregate g-tree query against the contributor.
func (c *Contributor) Aggregate(q *gquery.AggregateQuery) (*Rows, error) {
	return q.Run(context.Background(), c.DB, c.Stack, c.Info)
}

// View reads the whole naive relation (the g-tree view).
func (c *Contributor) View() (*Rows, error) {
	return c.Stack.Read(c.DB, c.Info)
}

// Study is a compiled, runnable study with its provenance trail.
type Study struct {
	Name string
	// Log is the study's annotation history ("so that it is clear who
	// generated them, when, and why").
	Log *provenance.Log

	spec     *etl.StudySpec
	compiled *etl.Compiled
}

// Annotate appends a timestamped note to the study.
func (st *Study) Annotate(author, note string, at time.Time) {
	st.Log.Add(author, note, at)
}

// Run executes the study's generated ETL workflow and returns the output
// table.
func (st *Study) Run() (*Rows, error) { return st.compiled.Run() }

// DirectEval evaluates the study without ETL compilation (the Hypothesis #3
// reference semantics).
func (st *Study) DirectEval() (*Rows, error) { return etl.DirectEval(st.spec) }

// Refresh re-runs the study and merges its output into the warehouse table
// "Study_<name>" — the periodic-inclusion workflow of the CORI warehouse.
func (st *Study) Refresh(warehouse *DB) (etl.RefreshStats, error) {
	return st.compiled.Refresh(warehouse)
}

// RefreshContext is Refresh under a RunPolicy and a cancellable context:
// the study re-runs through the resilient executor (retries, timeouts,
// quarantine, graceful degradation), and only the surviving contributors'
// rows merge — a dead contributor's warehouse history is left untouched.
// Attach an Observer to ctx (obs.WithObserver) to trace the refresh and
// collect the refresh.* counters.
func (st *Study) RefreshContext(ctx context.Context, warehouse *DB, policy etl.RunPolicy) (etl.RefreshStats, error) {
	return st.compiled.RefreshContext(ctx, warehouse, policy)
}

// RunParallel executes the study with the per-contributor chains running
// concurrently under ctx; workers bounds concurrency (<= 0 means unbounded).
func (st *Study) RunParallel(ctx context.Context, workers int) (*Rows, error) {
	return st.compiled.RunParallel(ctx, workers)
}

// RunResilient executes the study under a fault-handling policy: per-step
// retry with deterministic backoff, per-step and per-workflow deadlines,
// and — with policy.ContinueOnError — graceful degradation, where a failing
// contributor chain is recorded and pruned while the surviving contributors
// are still unioned into the study output. The RunReport carries per-step
// attempts, durations, errors, skip causes, and the degraded-contributor
// list.
func (st *Study) RunResilient(ctx context.Context, policy etl.RunPolicy, workers int) (*Rows, *etl.RunReport, error) {
	return st.compiled.RunResilient(ctx, policy, workers)
}

// Plan renders the generated ETL workflow for inspection.
func (st *Study) Plan() string { return st.compiled.Workflow.Render() }

// Fingerprint is the study's checkpoint identity: a deterministic hash of
// the compiled plan (study, contributors, classifiers, dependencies) that
// a Checkpointer keys snapshots by. A crashed run and its resume share
// checkpoints exactly when their fingerprints match; any plan change
// invalidates prior checkpoints.
func (st *Study) Fingerprint() string { return st.compiled.Fingerprint() }

// SQL renders the per-contributor SQL the study represents.
func (st *Study) SQL() (map[string]string, error) { return st.compiled.EmitSQLPlans() }

// XQuery renders one contributor's fragment as XQuery, the paper's original
// translation target.
func (st *Study) XQuery(contributor string) (string, error) {
	for _, c := range st.spec.Contributors {
		if c.Name != contributor {
			continue
		}
		var domains []*Classifier
		for _, col := range st.spec.Columns {
			domains = append(domains, c.Classifiers[col.As])
		}
		return classifier.EmitXQuery(contributor+".xml", c.Entity, domains)
	}
	return "", fmt.Errorf("guava: study %q has no contributor %q", st.Name, contributor)
}

// Datalog renders one contributor's classifier for one column as Datalog.
func (st *Study) Datalog(contributor, column string) (string, error) {
	b, ok := st.compiled.ColumnBinds[contributor][column]
	if !ok {
		return "", fmt.Errorf("guava: no bound classifier for %s/%s", contributor, column)
	}
	return classifier.EmitDatalog(b, column)
}

// Classifiers lists the classifiers the study uses for a column, by
// contributor — the reuse surface: "the analyst may choose to look at other
// studies that use the same study schema to make informed decisions as to
// which classifiers to use".
func (st *Study) Classifiers(column string) map[string]*Classifier {
	out := make(map[string]*Classifier)
	for _, c := range st.spec.Contributors {
		if cl, ok := c.Classifiers[column]; ok {
			out[c.Name] = cl
		}
	}
	return out
}

// Spec exposes the underlying study specification (read-only use).
func (st *Study) Spec() *etl.StudySpec { return st.spec }

// Vet statically vets the study: every contributor's classifiers
// (satisfiability, shadowing, domain gaps, context-disabled guards), g-tree
// (enablement cycles, dead answer options), and the study wiring. The
// returned report is sorted; HasErrors() gates whether the study should run.
func (st *Study) Vet() *vet.Report { return vet.Study(st.spec, nil, nil) }

// VetStudy vets a previously built study by name.
func (s *System) VetStudy(name string) (*vet.Report, error) {
	st, err := s.Study(name)
	if err != nil {
		return nil, err
	}
	return st.Vet(), nil
}

// AnalyzeClassifier statically and dynamically analyzes the classifier one
// contributor uses for one column: threshold gaps and shadowed rules (when
// the classifier is a single-variable threshold list), plus rule coverage
// over the contributor's current data.
func (st *Study) AnalyzeClassifier(contributor, column string) (*classifier.IntervalReport, *classifier.SampleReport, error) {
	bound, ok := st.compiled.ColumnBinds[contributor][column]
	if !ok {
		return nil, nil, fmt.Errorf("guava: no classifier for %s/%s", contributor, column)
	}
	var plan *etl.ContributorPlan
	for _, c := range st.spec.Contributors {
		if c.Name == contributor {
			plan = c
		}
	}
	if plan == nil {
		return nil, nil, fmt.Errorf("guava: study %q has no contributor %q", st.Name, contributor)
	}
	intervals, err := classifier.AnalyzeIntervals(bound.Classifier)
	if err != nil {
		intervals = nil // not a threshold classifier; sample analysis still applies
	}
	rows, err := plan.Stack.Read(plan.DB, plan.Form)
	if err != nil {
		return intervals, nil, err
	}
	sample, err := classifier.AnalyzeSample(bound, rows)
	if err != nil {
		return intervals, nil, err
	}
	return intervals, sample, nil
}

// Study returns a previously built study.
func (s *System) Study(name string) (*Study, error) {
	st, ok := s.studies[name]
	if !ok {
		return nil, fmt.Errorf("guava: no study %q", name)
	}
	return st, nil
}

// RunOption adjusts the context a study runs under. Options compose
// left to right.
type RunOption func(context.Context) context.Context

// WithObserver returns a RunOption that installs o on the run's
// context, so the execution emits spans into o.Tracer and metrics into
// o.Metrics. The returned report's Trace field holds the root span, and
// o.Tracer.OnEnd can stream live per-step progress while the study runs.
func WithObserver(o *obs.Observer) RunOption {
	return func(ctx context.Context) context.Context { return obs.WithObserver(ctx, o) }
}

// RunStudy runs a previously built study under a fault-handling policy —
// the production path of a CORI-style warehouse, where any one
// contributor's extract can hang or fail and the study must still deliver
// the surviving contributors. See Study.RunResilient for the policy and
// report semantics. Options (WithObserver) attach observability to the
// run.
func (s *System) RunStudy(ctx context.Context, name string, policy etl.RunPolicy, workers int, opts ...RunOption) (*Rows, *etl.RunReport, error) {
	st, err := s.Study(name)
	if err != nil {
		return nil, nil, err
	}
	for _, opt := range opts {
		ctx = opt(ctx)
	}
	return st.RunResilient(ctx, policy, workers)
}

// StudyNames lists built studies, sorted.
func (s *System) StudyNames() []string {
	out := make([]string, 0, len(s.studies))
	for n := range s.studies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StudiesUsingColumn reports, per prior study, the classifier it used for a
// column — the cross-study inspection MultiClass supports.
func (s *System) StudiesUsingColumn(column string) map[string]map[string]*Classifier {
	out := make(map[string]map[string]*Classifier)
	for name, st := range s.studies {
		m := st.Classifiers(column)
		if len(m) > 0 {
			out[name] = m
		}
	}
	return out
}

// StudyBuilder assembles a study incrementally.
type StudyBuilder struct {
	sys  *System
	name string
	cols []etl.ColumnSpec
	ctbs []*etl.ContributorPlan
	errs []error
}

// DefineStudy starts building a study.
func (s *System) DefineStudy(name string) *StudyBuilder {
	return &StudyBuilder{sys: s, name: name}
}

// Column adds an output column bound to a study-schema attribute domain.
func (b *StudyBuilder) Column(as, attribute, domain string, kind relstore.Kind) *StudyBuilder {
	b.cols = append(b.cols, etl.ColumnSpec{As: as, Attribute: attribute, Domain: domain, Kind: kind})
	return b
}

// ContributorBuilder scopes classifier choices to one contributor.
type ContributorBuilder struct {
	parent *StudyBuilder
	plan   *etl.ContributorPlan
}

// For opens a contributor section; the contributor must be registered.
func (b *StudyBuilder) For(contributor string) *ContributorBuilder {
	c, err := b.sys.Contributor(contributor)
	if err != nil {
		b.errs = append(b.errs, err)
		return &ContributorBuilder{parent: b, plan: &etl.ContributorPlan{Name: contributor}}
	}
	plan := &etl.ContributorPlan{
		Name: c.Name, DB: c.DB, Tree: c.Tree, Stack: c.Stack, Form: c.Info,
		Classifiers: make(map[string]*classifier.Classifier),
	}
	b.ctbs = append(b.ctbs, plan)
	return &ContributorBuilder{parent: b, plan: plan}
}

// Entity sets the contributor's entity classifier from rule text.
func (cb *ContributorBuilder) Entity(name, description, rules string) *ContributorBuilder {
	cl, err := classifier.ParseEntity(name, description, "Procedure", rules)
	if err != nil {
		cb.parent.errs = append(cb.parent.errs, err)
		return cb
	}
	cb.plan.Entity = cl
	return cb
}

// EntityFor sets the entity classifier with an explicit entity name.
func (cb *ContributorBuilder) EntityFor(entity, name, description, rules string) *ContributorBuilder {
	cl, err := classifier.ParseEntity(name, description, entity, rules)
	if err != nil {
		cb.parent.errs = append(cb.parent.errs, err)
		return cb
	}
	cb.plan.Entity = cl
	return cb
}

// Classify sets the domain classifier filling one output column.
func (cb *ContributorBuilder) Classify(column, name, description string, target Target, rules string) *ContributorBuilder {
	cl, err := classifier.Parse(name, description, target, rules)
	if err != nil {
		cb.parent.errs = append(cb.parent.errs, err)
		return cb
	}
	if cb.plan.Classifiers == nil {
		cb.plan.Classifiers = make(map[string]*classifier.Classifier)
	}
	cb.plan.Classifiers[column] = cl
	return cb
}

// Reuse fills a column with an existing classifier object — the MultiClass
// reuse path across studies.
func (cb *ContributorBuilder) Reuse(column string, cl *Classifier) *ContributorBuilder {
	if cb.plan.Classifiers == nil {
		cb.plan.Classifiers = make(map[string]*classifier.Classifier)
	}
	cb.plan.Classifiers[column] = cl
	return cb
}

// Condition sets the contributor's WHERE-like filter.
func (cb *ContributorBuilder) Condition(expr string) *ContributorBuilder {
	cb.plan.Condition = expr
	return cb
}

// Clean adds a data-cleaning classifier (rules of the form
// "DISCARD <- guard"); matching records are dropped before classification —
// the Section 6 extension.
func (cb *ContributorBuilder) Clean(name, description, rules string) *ContributorBuilder {
	cl, err := classifier.ParseCleaner(name, description, rules)
	if err != nil {
		cb.parent.errs = append(cb.parent.errs, err)
		return cb
	}
	cb.plan.Cleaners = append(cb.plan.Cleaners, cl)
	return cb
}

// Done closes the contributor section.
func (cb *ContributorBuilder) Done() *StudyBuilder { return cb.parent }

// Build compiles the study and registers it with the system.
func (b *StudyBuilder) Build() (*Study, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if _, dup := b.sys.studies[b.name]; dup {
		return nil, fmt.Errorf("guava: study %q already exists", b.name)
	}
	spec := &etl.StudySpec{
		Name:         b.name,
		Columns:      b.cols,
		Contributors: b.ctbs,
		Log:          &provenance.Log{},
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		return nil, err
	}
	st := &Study{Name: b.name, Log: spec.Log, spec: spec, compiled: compiled}
	b.sys.studies[b.name] = st
	return st, nil
}

// BuildVetted compiles the study like Build, but first runs the static
// vetter and refuses registration when it finds error-severity diagnostics.
// The report is returned either way (nil only when assembly itself failed),
// so callers can surface warnings from a study that still built.
func (b *StudyBuilder) BuildVetted() (*Study, *vet.Report, error) {
	if len(b.errs) > 0 {
		return nil, nil, b.errs[0]
	}
	spec := &etl.StudySpec{
		Name:         b.name,
		Columns:      b.cols,
		Contributors: b.ctbs,
		Log:          &provenance.Log{},
	}
	rep := vet.Study(spec, nil, nil)
	if rep.HasErrors() {
		return nil, rep, fmt.Errorf("guava: study %q failed vetting with %d error(s)", b.name, rep.Count(vet.SevError))
	}
	st, err := b.Build()
	if err != nil {
		return nil, rep, err
	}
	return st, rep, nil
}
