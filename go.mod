module guava

go 1.22
