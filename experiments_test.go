package guava

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gtree"
	"guava/internal/relstore"
	"guava/internal/versioning"
	"guava/internal/workload"
)

const (
	expSeed = 20060101
	expN    = 120
)

func buildContribs(t *testing.T) []*workload.Contributor {
	t.Helper()
	cs, err := workload.BuildAll(expSeed, expN)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// registerAll registers the workload contributors with a fresh system,
// reusing their already-populated databases.
func registerAll(t *testing.T, cs []*workload.Contributor) *System {
	t.Helper()
	sys := New("CORI warehouse")
	for _, c := range cs {
		if _, err := sys.RegisterContributor(c.Name, c.Form, c.Stack, c.DB); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

var habitsTarget = Target{
	Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
	Kind: KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
}

// TestArchitectureEndToEnd is Experiment F1: three heterogeneous
// contributors flow through g-trees, classifiers, and generated ETL into two
// different studies, exercising the whole Figure 1 architecture through the
// public facade.
func TestArchitectureEndToEnd(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)

	if got := sys.ContributorNames(); strings.Join(got, ",") != "CORI,EndoSoft,MedRecord" {
		t.Fatalf("contributors = %v", got)
	}

	habitsCORI := `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`
	habitsEndo := `
None     <- CigsPerDay = 0
Light    <- 0 < CigsPerDay < 40
Moderate <- 40 <= CigsPerDay < 100
Heavy    <- CigsPerDay >= 100
`
	habitsMed := `
None     <- PacksDaily = 0
Light    <- 0 < PacksDaily < 2
Moderate <- 2 <= PacksDaily < 5
Heavy    <- PacksDaily >= 5
`
	st, err := sys.DefineStudy("habits-overview").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All CORI procedures", "every report", "Procedure <- Procedure").
		Classify("Smoking_D3", "Habits (Cancer)", "cancer-study thresholds", habitsTarget, habitsCORI).
		Done().
		For("EndoSoft").
		EntityFor("Procedure", "All exams", "every exam", "Procedure <- Exam").
		Classify("Smoking_D3", "Habits (Cancer, cigarettes)", "same thresholds in cigarettes", habitsTarget, habitsEndo).
		Done().
		For("MedRecord").
		EntityFor("Procedure", "All records", "every record", "Procedure <- Record").
		Classify("Smoking_D3", "Habits (Cancer, coded)", "same thresholds", habitsTarget, habitsMed).
		Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	st.Annotate("jlogan", "initial habits overview study", time.Date(2006, 3, 26, 10, 0, 0, 0, time.UTC))

	rows, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3*expN {
		t.Fatalf("study rows = %d, want %d", rows.Len(), 3*expN)
	}

	// Generated ETL ≡ direct evaluation through the facade too.
	direct, err := st.DirectEval()
	if err != nil {
		t.Fatal(err)
	}
	if !rows.EqualUnordered(direct) {
		t.Error("facade: ETL and direct evaluation differ")
	}

	// Classification agrees with ground truth per contributor (units and
	// vocabularies reconciled by the per-contributor classifiers).
	classify := func(packs float64, current bool) string {
		if !current {
			return "" // unanswered packs -> NULL classification
		}
		switch {
		case packs == 0:
			return "None"
		case packs < 2:
			return "Light"
		case packs < 5:
			return "Moderate"
		default:
			return "Heavy"
		}
	}
	truthByKey := map[string]map[int64]string{}
	for _, c := range cs {
		m := map[int64]string{}
		for _, tr := range c.Truths {
			m[tr.ID] = classify(tr.PacksPerDay, tr.Smoking == "Current")
		}
		truthByKey[c.Name] = m
	}
	for _, r := range rows.Data {
		want := truthByKey[r[1].AsString()][r[0].AsInt()]
		if want == "" {
			if !r[2].IsNull() {
				t.Fatalf("%s/%d: classified %v, want NULL", r[1].AsString(), r[0].AsInt(), r[2])
			}
			continue
		}
		if !r[2].Equal(Str(want)) {
			t.Fatalf("%s/%d: classified %v, want %s", r[1].AsString(), r[0].AsInt(), r[2], want)
		}
	}

	// A second study over the same column reuses a classifier.
	reuse := st.Classifiers("Smoking_D3")["CORI"]
	st2, err := sys.DefineStudy("follow-up").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("Surgical only", "surgery cases", "Procedure <- Procedure AND Surgery = TRUE").
		Reuse("Smoking_D3", reuse).
		Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Run(); err != nil {
		t.Fatal(err)
	}
	using := sys.StudiesUsingColumn("Smoking_D3")
	if len(using) != 2 || using["follow-up"]["CORI"] != reuse {
		t.Errorf("classifier reuse not visible across studies: %v", using)
	}

	// Inspection surfaces: plan, SQL, XQuery, Datalog.
	if plan := st.Plan(); !strings.Contains(plan, "extract/CORI") || !strings.Contains(plan, "load/union") {
		t.Errorf("plan:\n%s", plan)
	}
	sqls, err := st.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqls["EndoSoft"], "CigsPerDay") {
		t.Errorf("EndoSoft SQL:\n%s", sqls["EndoSoft"])
	}
	xq, err := st.XQuery("CORI")
	if err != nil || !strings.Contains(xq, "for $p in") {
		t.Errorf("XQuery: %v\n%s", err, xq)
	}
	dl, err := st.Datalog("MedRecord", "Smoking_D3")
	if err != nil || !strings.Contains(dl, ":-") {
		t.Errorf("Datalog: %v\n%s", err, dl)
	}
	if st.Log.Len() != 1 {
		t.Error("annotation lost")
	}
}

// TestStudy1Funnel is Experiment ST1: the Study 1 funnel over three
// heterogeneous contributors matches ground truth at every stage
// (precision = recall = 1.0 per stage).
func TestStudy1Funnel(t *testing.T) {
	cs := buildContribs(t)
	got, err := Study1(cs)
	if err != nil {
		t.Fatal(err)
	}
	want := Study1Truth(cs)
	if *got != *want {
		t.Fatalf("funnel mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// The funnel is genuinely a funnel on this workload.
	if !(got.UpperGI >= got.AsthmaIndication && got.AsthmaIndication >= got.Eligible && got.Eligible >= got.TransientHypoxia) {
		t.Errorf("not monotone: %+v", got)
	}
	if got.AsthmaIndication == 0 {
		t.Error("empty cohort; enlarge workload")
	}
	if !strings.Contains(got.Render(), "transient hypoxia") {
		t.Error("render incomplete")
	}
}

// TestStudy2ExSmokerVariants is Experiment ST2: the same study under two
// ex-smoker definitions gives different, correct answers.
func TestStudy2ExSmokerVariants(t *testing.T) {
	cs := buildContribs(t)
	ever, err := Study2(cs, false)
	if err != nil {
		t.Fatal(err)
	}
	recent, err := Study2(cs, true)
	if err != nil {
		t.Fatal(err)
	}
	if *ever == *recent {
		t.Error("the two definitions must give different counts on this workload")
	}
	if recent.ExSmokers > ever.ExSmokers {
		t.Errorf("recent quitters (%d) exceed ever-quitters (%d)", recent.ExSmokers, ever.ExSmokers)
	}
	wantEver := Study2TruthCounts(cs, 0)
	wantRecent := Study2TruthCounts(cs, 1)
	if ever.ExSmokers != wantEver.ExSmokers || ever.WithHypoxia != wantEver.WithHypoxia {
		t.Errorf("ever: got %+v want %+v", ever, wantEver)
	}
	if recent.ExSmokers != wantRecent.ExSmokers || recent.WithHypoxia != wantRecent.WithHypoxia {
		t.Errorf("recent: got %+v want %+v", recent, wantRecent)
	}
	if !strings.Contains(ever.Render(), "ex-smoker") {
		t.Error("render incomplete")
	}
}

// TestHypothesis1AutoDerivation is Experiment H1: for every contributor,
// the g-tree and database mappings are generated automatically from the
// form definition, and the mappings are faithful (write-then-read identity,
// already stressed elsewhere; here we check the derivation artifacts).
func TestHypothesis1AutoDerivation(t *testing.T) {
	cs := buildContribs(t)
	for _, c := range cs {
		// One node per control, plus the root.
		controls := 0
		c.Form.Walk(func(*Control) { controls++ })
		nodes := 0
		c.Tree.Root.Walk(func(*GNode) { nodes++ })
		if nodes != controls+1 {
			t.Errorf("%s: %d nodes for %d controls", c.Name, nodes, controls)
		}
		// Every data-storing control appears in the naive schema mapping.
		for _, name := range c.Tree.FieldNames() {
			if !c.Info.Schema.Has(name) {
				t.Errorf("%s: g-tree field %q missing from naive schema", c.Name, name)
			}
		}
		// Context details survive: questions are non-empty on field nodes.
		c.Tree.Root.Walk(func(n *GNode) {
			if n.StoresData() && n.Question == "" {
				t.Errorf("%s: node %q lost its question wording", c.Name, n.Name)
			}
		})
	}
	// Enablement re-parenting holds in the CORI tree (Figure 2 behaviour).
	cori := cs[0]
	path, err := cori.Tree.Path("PacksPerDay")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(path, "/"), "Smoking/PacksPerDay") {
		t.Errorf("PacksPerDay path = %v", path)
	}
}

// TestHasAChildJoin reproduces the Figure 4 has-a relationship end to end:
// CORI's Finding child form joins to its parent Procedure through the ETL
// JoinStep, so studies can pull child attributes alongside the entity.
func TestHasAChildJoin(t *testing.T) {
	cs := buildContribs(t)
	cori := cs[0]
	ctx := etl.NewContext(map[string]*relstore.DB{"source_CORI": cori.DB})
	w := &etl.Workflow{Name: "findings"}
	procs := etl.TableRef{DB: "tmp", Table: "procs"}
	finds := etl.TableRef{DB: "tmp", Table: "finds"}
	a := w.Add("extract-procs", &etl.Extract{
		SourceDB: "source_CORI", Stack: cori.Stack, Form: cori.Info, To: procs,
	})
	b := w.Add("extract-findings", &etl.Extract{
		SourceDB: "source_CORI", Stack: cori.FindingStack, Form: cori.FindingInfo, To: finds,
	})
	w.Add("join", &etl.JoinStep{
		Left: procs, Right: finds,
		LeftCol: "ProcedureID", RightCol: "ProcedureRef",
		RightPrefix: "f", To: etl.TableRef{DB: "out", Table: "joined"},
	}, a, b)
	if err := w.Run(context.Background(), ctx); err != nil {
		t.Fatal(err)
	}
	joined, err := ctx.DB("out").Table("joined")
	if err != nil {
		t.Fatal(err)
	}
	wantFindings := 0
	for _, tr := range cori.Truths {
		wantFindings += len(tr.Findings)
	}
	if joined.Len() != wantFindings {
		t.Fatalf("joined rows = %d, want %d", joined.Len(), wantFindings)
	}
	// Every joined row's Size matches its ground-truth finding.
	rows := joined.Rows()
	fid := rows.Schema.Index("FindingID")
	size := rows.Schema.Index("Size")
	truthSize := map[int64]int64{}
	for _, tr := range cori.Truths {
		for _, f := range tr.Findings {
			truthSize[f.ID] = f.SizeMM
		}
	}
	for _, r := range rows.Data {
		if r[size].AsInt() != truthSize[r[fid].AsInt()] {
			t.Fatalf("finding %v size %v, want %d", r[fid], r[size], truthSize[r[fid].AsInt()])
		}
	}
}

// TestStudyRefreshFacade: periodic warehouse inclusion through the facade.
func TestStudyRefreshFacade(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	st, err := sys.DefineStudy("warehouse-study").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "Habits", "", habitsTarget, `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`).
		Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	warehouse := NewDB("warehouse")
	stats, err := st.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != expN {
		t.Errorf("first refresh added %d, want %d", stats.Added, expN)
	}
	stats, err = st.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unchanged != expN || stats.Added != 0 {
		t.Errorf("second refresh = %+v", stats)
	}
}

// TestKitchenSinkStudy combines every study feature at once: conditions,
// cleaners, multiple columns, parallel execution, serialization, and
// warehouse refresh — all over all three heterogeneous contributors.
func TestKitchenSinkStudy(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	hypoxiaTarget := Target{Entity: "Procedure", Attribute: "Hypoxia", Domain: "D1", Kind: KindBool}
	b := sys.DefineStudy("kitchen-sink").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		Column("Hypoxia_D1", "Hypoxia", "D1", KindBool)
	type vendor struct {
		form, packs, hyp1, hyp2, renal string
		scale                          int
	}
	vendors := map[string]vendor{
		"CORI":      {"Procedure", "PacksPerDay", "TransientHypoxia", "ProlongedHypoxia", "RenalFailure", 1},
		"EndoSoft":  {"Exam", "CigsPerDay", "O2Desat", "O2DesatProlonged", "RenalDisease", 20},
		"MedRecord": {"Record", "PacksDaily", "HypoxiaT", "HypoxiaP", "RenalHx", 1},
	}
	for name, v := range vendors {
		b = b.For(name).
			EntityFor("Procedure", "All "+name, "", "Procedure <- "+v.form).
			Classify("Smoking_D3", "Habits "+name, "", habitsTarget, fmt.Sprintf(`
None     <- %[1]s = 0
Light    <- 0 < %[1]s AND %[1]s < %[2]d
Moderate <- %[2]d <= %[1]s AND %[1]s < %[3]d
Heavy    <- %[1]s >= %[3]d
`, v.packs, 2*v.scale, 5*v.scale)).
			Classify("Hypoxia_D1", "Hypoxia "+name, "", hypoxiaTarget,
				fmt.Sprintf("TRUE <- %s = TRUE OR %s = TRUE\nFALSE <- TRUE", v.hyp1, v.hyp2)).
			Condition(v.renal+" = FALSE").
			Clean("Implausible "+name, "", fmt.Sprintf("DISCARD <- %s >= %d", v.packs, 100*v.scale)).
			Done()
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := st.RunParallel(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.EqualUnordered(parallel) {
		t.Error("parallel differs from serial")
	}
	direct, err := st.DirectEval()
	if err != nil {
		t.Fatal(err)
	}
	if !serial.EqualUnordered(direct) {
		t.Error("direct evaluation differs")
	}
	// Count matches ground truth: non-renal patients across all vendors.
	want := 0
	for _, c := range cs {
		for _, tr := range c.Truths {
			if !tr.RenalFailure {
				want++
			}
		}
	}
	if serial.Len() != want {
		t.Errorf("rows = %d, want %d", serial.Len(), want)
	}
	// Serialization round trip preserves all of it.
	data, err := st.Doc().JSON()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseStudyDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := registerAll(t, cs)
	st2, err := sys2.LoadStudy(doc)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := st2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded.EqualUnordered(serial) {
		t.Error("reloaded kitchen-sink study differs")
	}
	// Warehouse refresh is idempotent.
	wh := NewDB("wh")
	if _, err := st.Refresh(wh); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Refresh(wh)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Updated != 0 {
		t.Errorf("second refresh = %+v", stats)
	}
}

// TestAnalyzeClassifierFacade: the study-level classifier analysis reports
// interval structure and sample coverage.
func TestAnalyzeClassifierFacade(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	st, err := sys.DefineStudy("analyzed").
		Column("Smoking_D3", "Smoking", "D3", KindString).
		For("CORI").
		Entity("All", "", "Procedure <- Procedure").
		Classify("Smoking_D3", "Gappy", "deliberately missing the 2-5 band", habitsTarget, `
None  <- PacksPerDay = 0
Light <- 0 < PacksPerDay < 2
Heavy <- PacksPerDay >= 5
`).
		Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	intervals, sample, err := st.AnalyzeClassifier("CORI", "Smoking_D3")
	if err != nil {
		t.Fatal(err)
	}
	if intervals == nil || len(intervals.Gaps) != 1 {
		t.Fatalf("intervals = %+v", intervals)
	}
	if sample == nil || sample.Total != expN {
		t.Fatalf("sample = %+v", sample)
	}
	// Most records are Never/Quit smokers with NULL packs: unclassified.
	if sample.Unclassified == 0 {
		t.Error("expected unclassified records in the sample")
	}
	if _, _, err := st.AnalyzeClassifier("CORI", "Nope"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, _, err := st.AnalyzeClassifier("Ghost", "Smoking_D3"); err == nil {
		t.Error("unknown contributor must fail")
	}
}

// TestSystemValidation covers facade-level error paths.
func TestSystemValidation(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	if _, err := sys.RegisterContributor("CORI", cs[0].Form, cs[0].Stack, cs[0].DB); err == nil {
		t.Error("duplicate contributor must fail")
	}
	if _, err := sys.Contributor("Ghost"); err == nil {
		t.Error("unknown contributor must fail")
	}
	if _, err := sys.Study("ghost"); err == nil {
		t.Error("unknown study must fail")
	}
	// Builder error paths: unknown contributor, bad classifier text.
	if _, err := sys.DefineStudy("s1").
		Column("X", "A", "D", KindString).
		For("Ghost").Done().Build(); err == nil {
		t.Error("unknown contributor in builder must fail")
	}
	if _, err := sys.DefineStudy("s2").
		Column("X", "A", "D", KindString).
		For("CORI").
		Entity("e", "", "nonsense <-").
		Done().Build(); err == nil {
		t.Error("unparseable classifier must fail")
	}
	// Duplicate study name.
	ok := func() *StudyBuilder {
		return sys.DefineStudy("dup").
			Column("Smoking_D3", "Smoking", "D3", KindString).
			For("CORI").
			Entity("All", "", "Procedure <- Procedure").
			Classify("Smoking_D3", "h", "", habitsTarget, "None <- PacksPerDay = 0").
			Done()
	}
	if _, err := ok().Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := ok().Build(); err == nil {
		t.Error("duplicate study must fail")
	}
	if got := sys.StudyNames(); len(got) != 1 || got[0] != "dup" {
		t.Errorf("studies = %v", got)
	}
}

// TestContributorFacade covers the Contributor helper surface.
func TestContributorFacade(t *testing.T) {
	cs := buildContribs(t)
	sys := registerAll(t, cs)
	c, err := sys.Contributor("CORI")
	if err != nil {
		t.Fatal(err)
	}
	view, err := c.View()
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != expN {
		t.Errorf("view rows = %d", view.Len())
	}
	rows, err := c.Query(&Query{Tree: c.Tree, Select: []string{"ProcedureID"}, Where: "Smoking = 'Current'"})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Error("query returned nothing")
	}
	// The sink writes through the stack: add one record and see it in the
	// view.
	e, err := NewEntryFor(c, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Set("Age", Int(50)); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("Gender", Str("F")); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("Indication", Str("Screening")); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("ProcType", Str("Colonoscopy")); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(c.Sink()); err != nil {
		t.Fatal(err)
	}
	view2, err := c.View()
	if err != nil {
		t.Fatal(err)
	}
	if view2.Len() != expN+1 {
		t.Errorf("view rows after submit = %d", view2.Len())
	}
}

// TestVersioningThroughFacade wires gtree.Compare + versioning into the
// facade-level story (S12).
func TestVersioningThroughFacade(t *testing.T) {
	cs := buildContribs(t)
	oldTree := cs[0].Tree
	// Tool v2: PacksPerDay renamed.
	f2 := workload.CORIProcedureForm()
	f2.Walk(func(ctl *Control) {
		if ctl.Name == "PacksPerDay" {
			ctl.Name = "PacksDaily"
		}
	})
	// Fix the dangling enablement reference of QuitYearsAgo? It referenced
	// Smoking, untouched. PacksPerDay had the enablement itself.
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	newTree, err := gtree.Derive("CORI", 2, f2)
	if err != nil {
		t.Fatal(err)
	}
	diff := gtree.Compare(oldTree, newTree)
	if len(diff.Removed) != 1 || diff.Removed[0] != "PacksPerDay" {
		t.Fatalf("diff = %+v", diff)
	}
	cl, err := classifier.Parse("Habits", "", habitsTarget, "None <- PacksPerDay = 0\nHeavy <- PacksPerDay > 0")
	if err != nil {
		t.Fatal(err)
	}
	decisions, err := versioning.Propagate([]*classifier.Classifier{cl}, oldTree, newTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 || decisions[0].Status != versioning.Broken {
		t.Fatalf("decision = %+v", decisions)
	}
	found := false
	for _, s := range decisions[0].Suggestions {
		for _, cand := range s.Candidates {
			if cand == "PacksDaily" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected PacksDaily suggestion: %+v", decisions[0].Suggestions)
	}
}
