package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Instrumented code without a
// context (relstore's relational operators) records here; code with a
// context records into the installed observer's registry, falling back
// to Default (see MetricsFrom).
var Default = NewRegistry()

// Registry is a lock-cheap metrics registry: instrument lookup takes a
// read lock (a write lock only on first registration), and every
// recording operation after that is a plain atomic. Hold the returned
// instrument to skip even the read-locked lookup on hot paths.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// DefaultBuckets is the bucket ladder Histogram uses when none is given:
// millisecond-scale timings from 10µs to 10s.
var DefaultBuckets = []float64{0.01, 0.1, 1, 10, 100, 1000, 10000}

// Histogram returns the named histogram, creating it with the given
// upper bounds (ascending; DefaultBuckets when empty) on first use.
// Later calls reuse the first registration's buckets.
func (r *Registry) Histogram(name string, buckets ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(buckets) == 0 {
		buckets = DefaultBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets and
// tracks count and sum. Observations are atomics all the way; no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns (upper bound, cumulative count) pairs; the final pair
// has bound +Inf and equals Count().
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.bounds)+1)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, BucketCount{UpperBound: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, BucketCount{UpperBound: math.Inf(1), Count: cum})
	return out
}

// BucketCount is one cumulative histogram bucket. The upper bound is
// encoded as a string in JSON ("+Inf" for the overflow bucket) because
// encoding/json cannot represent infinities as numbers.
type BucketCount struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

type bucketCountJSON struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON encodes the bucket with its bound as a string.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketCountJSON{Le: le, Count: b.Count})
}

// UnmarshalJSON decodes the string-bound form written by MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var aux bucketCountJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	b.Count = aux.Count
	if aux.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(aux.Le, 64)
	if err != nil {
		return err
	}
	b.UpperBound = v
	return nil
}

// Sample is one exported metric value, the unit of Snapshot and the
// JSONL metrics format.
type Sample struct {
	Name    string        `json:"name"`
	Kind    string        `json:"kind"` // "counter", "gauge", or "histogram"
	Value   float64       `json:"value"`
	Count   int64         `json:"count,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns every registered instrument as a sample, sorted by
// name (counters' and gauges' Value holds the value; histograms' Value
// holds the sum and Count the observation count).
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.hists {
		out = append(out, Sample{Name: name, Kind: "histogram", Value: h.Sum(), Count: h.Count(), Buckets: h.Buckets()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Render formats the snapshot as an aligned table for CLI output.
func (r *Registry) Render() string {
	samples := r.Snapshot()
	var sb strings.Builder
	for _, s := range samples {
		switch s.Kind {
		case "histogram":
			mean := 0.0
			if s.Count > 0 {
				mean = s.Value / float64(s.Count)
			}
			fmt.Fprintf(&sb, "%-34s %-9s count=%d sum=%.3f mean=%.3f\n", s.Name, s.Kind, s.Count, s.Value, mean)
		default:
			fmt.Fprintf(&sb, "%-34s %-9s %g\n", s.Name, s.Kind, s.Value)
		}
	}
	return sb.String()
}
