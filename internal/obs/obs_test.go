package obs

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// TestNilSafety: with no observer installed, StartSpan returns a nil
// span and every method on it is a harmless no-op — instrumented code
// never branches on whether tracing is enabled.
func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "nothing")
	if span != nil {
		t.Fatalf("span without observer = %v, want nil", span)
	}
	if ctx2 != ctx {
		t.Fatal("ctx must pass through untouched without an observer")
	}
	span.SetAttr(Int("k", 1))
	span.End()
	span.EndErr(errors.New("x"))
	if span.ID() != 0 || span.Name() != "" || span.Duration() != 0 || span.Err() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	if _, ok := span.Attr("k"); ok {
		t.Fatal("nil span has no attrs")
	}
	if ObserverFrom(ctx) != nil || CurrentSpan(ctx) != nil {
		t.Fatal("empty ctx has no observer or span")
	}
	var tr *Tracer
	if tr.Spans() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	if MetricsFrom(ctx) != Default {
		t.Fatal("MetricsFrom without observer must fall back to Default")
	}
}

// TestSpanNestingAndAttrs: spans parent under the current context span,
// carry attributes, and record errors.
func TestSpanNestingAndAttrs(t *testing.T) {
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)
	if ObserverFrom(ctx) != o {
		t.Fatal("observer not installed")
	}
	if MetricsFrom(ctx) != o.Metrics {
		t.Fatal("MetricsFrom must prefer the observer registry")
	}

	ctx, root := StartSpan(ctx, "root", String("workflow", "w"))
	if root == nil || root.ParentID() != 0 {
		t.Fatalf("root = %+v", root)
	}
	if CurrentSpan(ctx) != root {
		t.Fatal("ctx must carry the started span")
	}
	cctx, child := StartSpan(ctx, "child")
	if child.ParentID() != root.ID() {
		t.Fatalf("child parent = %d, want %d", child.ParentID(), root.ID())
	}
	_, grand := StartSpan(cctx, "grandchild")
	if grand.ParentID() != child.ID() {
		t.Fatalf("grandchild parent = %d, want %d", grand.ParentID(), child.ID())
	}

	child.SetAttr(Int("rows", 42), Bool("ok", true), Float("f", 1.5))
	if v, ok := child.Attr("rows"); !ok || v.(int64) != 42 {
		t.Fatalf("rows attr = %v %v", v, ok)
	}
	grand.EndErr(errors.New("boom"))
	if grand.Err() != "boom" {
		t.Fatalf("err = %q", grand.Err())
	}
	child.End()
	if child.Duration() <= 0 {
		t.Fatal("ended span must have a positive duration")
	}
	d := child.Duration()
	child.End() // second End is a no-op
	if child.Duration() != d {
		t.Fatal("End must be idempotent")
	}
	root.End()

	if o.Tracer.Len() != 3 {
		t.Fatalf("tracer has %d spans, want 3", o.Tracer.Len())
	}
	if o.Tracer.Find("child") != child || o.Tracer.Find("missing") != nil {
		t.Fatal("Find broken")
	}
}

// TestOnEndStreams: OnEnd sinks see every span as it finishes — the
// live-progress hook.
func TestOnEndStreams(t *testing.T) {
	o := NewObserver()
	var ended []string
	o.Tracer.OnEnd(func(s *Span) { ended = append(ended, s.Name()) })
	ctx := WithObserver(context.Background(), o)
	ctx, root := StartSpan(ctx, "a")
	_, child := StartSpan(ctx, "b")
	child.End()
	root.End()
	if len(ended) != 2 || ended[0] != "b" || ended[1] != "a" {
		t.Fatalf("ended = %v", ended)
	}
}

// TestRenderTree: the flame-style dump nests children under parents with
// durations and attributes inline.
func TestRenderTree(t *testing.T) {
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)
	ctx, root := StartSpan(ctx, "workflow w")
	_, c1 := StartSpan(ctx, "step one", String("component", "extract"))
	c1.End()
	time.Sleep(time.Millisecond)
	_, c2 := StartSpan(ctx, "step two")
	c2.EndErr(errors.New("dead"))
	root.End()

	out := RenderTree(o.Tracer.Spans())
	for _, want := range []string{"workflow w", "├─ step one", "└─ step two", "component=extract", "err=dead"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "step one") > strings.Index(out, "step two") {
		t.Errorf("children must render in start order:\n%s", out)
	}
}

// TestStartProfiling: the pprof hooks write non-empty profile and trace
// files and stop cleanly.
func TestStartProfiling(t *testing.T) {
	dir := t.TempDir()
	cpu, mem, tr := dir+"/cpu.pb", dir+"/mem.pb", dir+"/trace.out"
	stop, err := StartProfiling(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem, tr} {
		fi, err := os.Stat(f)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s: stat=%v err=%v", f, fi, err)
		}
	}
	// Empty selection is a no-op.
	stop2, err := StartProfiling("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}
