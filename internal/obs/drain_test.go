package obs

import (
	"context"
	"testing"
)

// TestTracerDrain: Drain hands back the collected spans and resets the
// buffer, and later spans keep fresh IDs (no reuse after a drain).
func TestTracerDrain(t *testing.T) {
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)
	_, a := StartSpan(ctx, "a")
	a.End()
	_, b := StartSpan(ctx, "b")

	drained := o.Tracer.Drain()
	if len(drained) != 2 {
		t.Fatalf("drained %d spans, want 2", len(drained))
	}
	if o.Tracer.Len() != 0 {
		t.Fatalf("tracer retains %d spans after drain", o.Tracer.Len())
	}

	// An unended drained span can still end; a new span gets a new ID.
	b.End()
	if b.Duration() <= 0 {
		t.Error("drained span must still record its duration on End")
	}
	_, c := StartSpan(ctx, "c")
	c.End()
	if c.ID() <= b.ID() {
		t.Errorf("post-drain span ID %d must advance past %d", c.ID(), b.ID())
	}
	if got := o.Tracer.Len(); got != 1 {
		t.Fatalf("tracer holds %d spans after drain + one new span, want 1", got)
	}
	if (*Tracer)(nil).Drain() != nil {
		t.Error("nil tracer must drain to nil")
	}
}
