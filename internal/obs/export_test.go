package obs

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestSpanRoundTrip: the in-memory tracer's spans survive the JSONL
// exporter — write, parse back, and every field matches.
func TestSpanRoundTrip(t *testing.T) {
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)
	ctx, root := StartSpan(ctx, "workflow demo", String("workflow", "demo"))
	sctx, step := StartSpan(ctx, "step extract/a", Int("rows.out", 7))
	_, att := StartSpan(sctx, "attempt 1")
	att.EndErr(errors.New("dial refused"))
	step.SetAttr(Bool("degraded", false))
	step.End()
	root.End()

	spans := o.Tracer.Spans()
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("parsed %d records, want %d", len(got), len(spans))
	}
	for i, rec := range got {
		s := spans[i]
		if rec.ID != s.ID() || rec.Parent != s.ParentID() || rec.Name != s.Name() {
			t.Errorf("record %d identity mismatch: %+v vs span %d/%d %q", i, rec, s.ID(), s.ParentID(), s.Name())
		}
		if rec.DurationNS != int64(s.Duration()) {
			t.Errorf("record %d duration %d != %d", i, rec.DurationNS, s.Duration())
		}
		if rec.Err != s.Err() {
			t.Errorf("record %d err %q != %q", i, rec.Err, s.Err())
		}
		for _, a := range s.Attrs() {
			v, ok := rec.Attrs[a.Key]
			if !ok {
				t.Errorf("record %d missing attr %q", i, a.Key)
				continue
			}
			// JSON numbers come back as float64; compare via fmt-ish widening.
			switch want := a.Value.(type) {
			case int64:
				if f, ok := v.(float64); !ok || int64(f) != want {
					t.Errorf("record %d attr %q = %v, want %d", i, a.Key, v, want)
				}
			default:
				if v != a.Value {
					t.Errorf("record %d attr %q = %v, want %v", i, a.Key, v, a.Value)
				}
			}
		}
	}
}

// TestMetricsRoundTrip: snapshot → JSONL → parse-back preserves every
// sample, including histogram buckets.
func TestMetricsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("etl.rows.in").Add(120)
	r.Gauge("etl.workflow.active").Set(3)
	h := r.Histogram("etl.step.run_ms", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WriteMetrics(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("parsed %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Name != w.Name || g.Kind != w.Kind || g.Value != w.Value || g.Count != w.Count {
			t.Errorf("sample %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Buckets) != len(w.Buckets) {
			t.Errorf("sample %d buckets: got %d, want %d", i, len(g.Buckets), len(w.Buckets))
			continue
		}
		for j := range w.Buckets {
			wb, gb := w.Buckets[j], g.Buckets[j]
			if gb.Count != wb.Count {
				t.Errorf("sample %d bucket %d count %d != %d", i, j, gb.Count, wb.Count)
			}
			sameInf := math.IsInf(wb.UpperBound, 1) && math.IsInf(gb.UpperBound, 1)
			if !sameInf && gb.UpperBound != wb.UpperBound {
				t.Errorf("sample %d bucket %d bound %g != %g", i, j, gb.UpperBound, wb.UpperBound)
			}
		}
	}
}

// TestReadSpansSkipsBlanksAndRejectsGarbage: blank lines are tolerated,
// malformed lines fail loudly.
func TestReadSpansSkipsBlanksAndRejectsGarbage(t *testing.T) {
	in := "\n" + `{"id":1,"name":"a","start":"2026-01-01T00:00:00Z","duration_ns":5}` + "\n\n"
	recs, err := ReadSpans(strings.NewReader(in))
	if err != nil || len(recs) != 1 || recs[0].Name != "a" {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	if _, err := ReadSpans(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line must error")
	}
	if _, err := ReadMetrics(strings.NewReader("nope\n")); err == nil {
		t.Fatal("garbage metric line must error")
	}
}
