package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are restricted by
// the constructors to JSON-friendly scalars so every exporter can carry
// them.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a floating-point attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span is one timed operation in a trace: a name, a parent link, wall
// start time (carrying Go's monotonic reading, so durations are immune
// to clock adjustments), attributes, and an error. Spans are created by
// StartSpan and finished by End or EndErr; all methods are safe on a
// nil receiver, which is what instrumented code holds when tracing is
// disabled.
type Span struct {
	id     int64
	parent int64
	name   string
	start  time.Time
	tracer *Tracer

	mu       sync.Mutex
	attrs    []Attr
	duration time.Duration
	errMsg   string
	ended    bool
}

// ID returns the span's trace-unique ID (0 for a nil span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the parent span's ID (0 for roots and nil spans).
func (s *Span) ParentID() int64 {
	if s == nil {
		return 0
	}
	return s.parent
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time. The value carries a monotonic
// clock reading: subtracting two starts, or computing a contained-in
// check against Start()+Duration(), uses monotonic time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's monotonic duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duration
}

// Err returns the error message the span ended with ("" when none).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// Attrs returns a copy of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the value of the named attribute (last set wins).
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return nil, false
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span, fixing its monotonic duration and notifying
// the tracer's OnEnd sinks. Only the first End (or EndErr) counts.
func (s *Span) End() { s.EndErr(nil) }

// EndErr finishes the span recording err (nil for success).
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	if err != nil {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
	s.tracer.notifyEnd(s)
}

// Tracer assigns span IDs and collects every span started under it, in
// start order. It is safe for concurrent use.
type Tracer struct {
	nextID atomic.Int64

	mu    sync.Mutex
	spans []*Span
	onEnd []func(*Span)
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// start allocates, registers, and returns a new span.
func (t *Tracer) start(name string, parent int64, attrs []Attr) *Span {
	s := &Span{
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		tracer: t,
		attrs:  append([]Attr(nil), attrs...),
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// OnEnd registers a sink called synchronously each time a span ends —
// the live-progress hook exporters and CLIs stream from.
func (t *Tracer) OnEnd(fn func(*Span)) {
	t.mu.Lock()
	t.onEnd = append(t.onEnd, fn)
	t.mu.Unlock()
}

// notifyEnd invokes the registered OnEnd sinks for s.
func (t *Tracer) notifyEnd(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	sinks := make([]func(*Span), len(t.onEnd))
	copy(sinks, t.onEnd)
	t.mu.Unlock()
	for _, fn := range sinks {
		fn(s)
	}
}

// Spans returns a snapshot of every span started so far, in start order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Drain returns every span collected so far and forgets them, so a
// long-running process (the serving daemon) can periodically export its
// spans without the tracer's in-memory buffer growing without bound.
// Spans started but not yet ended are drained too; their duration is
// still written by EndErr, the tracer just no longer retains them.
func (t *Tracer) Drain() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.spans
	t.spans = nil
	return out
}

// Len reports how many spans have been started.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Find returns the first span with the given name, or nil.
func (t *Tracer) Find(name string) *Span {
	for _, s := range t.Spans() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// fmtAttr renders one attribute for the human-readable exporters.
func fmtAttr(a Attr) string { return fmt.Sprintf("%s=%v", a.Key, a.Value) }
