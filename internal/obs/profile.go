package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiling turns on the stdlib profilers selected by non-empty
// file paths — a CPU profile, a heap profile (written at stop), and a
// runtime execution trace — and returns a stop function that finishes
// and flushes them. It is the engine behind the -cpuprofile,
// -memprofile, and -trace flags of cmd/coribench and cmd/runstudy.
//
// On error, anything already started is stopped before returning.
func StartProfiling(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cpuFile != "" {
		cpuF, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if traceFile != "" {
		traceF, err = os.Create(traceFile)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
