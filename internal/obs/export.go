package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SpanRecord is the serialized form of one span — the JSON-lines
// exporter writes one record per line, and ReadSpans parses them back.
type SpanRecord struct {
	ID         int64          `json:"id"`
	Parent     int64          `json:"parent,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Err        string         `json:"err,omitempty"`
}

// Record snapshots the span into its serialized form.
func (s *Span) Record() SpanRecord {
	rec := SpanRecord{
		ID:         s.ID(),
		Parent:     s.ParentID(),
		Name:       s.Name(),
		Start:      s.Start(),
		DurationNS: int64(s.Duration()),
		Err:        s.Err(),
	}
	attrs := s.Attrs()
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	return rec
}

// WriteSpans writes the spans as JSON lines, one record per span, in
// start order.
func WriteSpans(w io.Writer, spans []*Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s.Record()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSON-lines span stream back into records, in input
// order. Blank lines are skipped.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("obs: parse span line %q: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteMetrics writes a registry snapshot as JSON lines, one sample per
// line, sorted by name.
func WriteMetrics(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMetrics parses a JSON-lines metrics stream back into samples.
func ReadMetrics(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s Sample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("obs: parse metric line %q: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderTree renders spans as a human-readable flame-style tree: each
// root with its children indented beneath it, in start order, with
// durations, attributes, and errors inline. This is the dump a human
// reads to explain a degraded run span by span.
func RenderTree(spans []*Span) string {
	children := make(map[int64][]*Span, len(spans))
	byID := make(map[int64]*Span, len(spans))
	var roots []*Span
	for _, s := range spans {
		byID[s.ID()] = s
	}
	for _, s := range spans {
		if p := s.ParentID(); p != 0 && byID[p] != nil {
			children[p] = append(children[p], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []*Span) {
		sort.SliceStable(list, func(i, j int) bool { return list[i].Start().Before(list[j].Start()) })
	}
	byStart(roots)
	for _, list := range children {
		byStart(list)
	}
	var sb strings.Builder
	var walk func(s *Span, prefix string, last bool, root bool)
	walk = func(s *Span, prefix string, last bool, root bool) {
		branch, childPrefix := "", ""
		if !root {
			if last {
				branch, childPrefix = prefix+"└─ ", prefix+"   "
			} else {
				branch, childPrefix = prefix+"├─ ", prefix+"│  "
			}
		}
		sb.WriteString(branch)
		sb.WriteString(s.Name())
		fmt.Fprintf(&sb, "  %s", s.Duration().Round(time.Microsecond))
		if attrs := s.Attrs(); len(attrs) > 0 {
			parts := make([]string, len(attrs))
			for i, a := range attrs {
				parts[i] = fmtAttr(a)
			}
			fmt.Fprintf(&sb, "  [%s]", strings.Join(parts, " "))
		}
		if e := s.Err(); e != "" {
			fmt.Fprintf(&sb, "  err=%s", e)
		}
		sb.WriteByte('\n')
		kids := children[s.ID()]
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1, false)
		}
	}
	for _, r := range roots {
		walk(r, "", true, true)
	}
	return sb.String()
}
