package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 2, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 5053.5 {
		t.Fatalf("sum = %g, want 5053.5", got)
	}
	b := h.Buckets()
	// le=1 gets 0.5 and the exact-boundary 1; le=10 adds 2; le=100 adds 50;
	// +Inf catches 5000.
	wantCum := []int64{2, 3, 4, 5}
	for i, bc := range b {
		if bc.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%g) cum = %d, want %d", i, bc.UpperBound, bc.Count, wantCum[i])
		}
	}
	if !math.IsInf(b[len(b)-1].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
	// Default ladder kicks in when no bounds are given.
	d := r.Histogram("d")
	if len(d.Buckets()) != len(DefaultBuckets)+1 {
		t.Fatalf("default histogram has %d buckets", len(d.Buckets()))
	}
}

func TestSnapshotSortedAndRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Gauge("a.first").Set(2)
	r.Histogram("m.mid").Observe(3)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a.first" || snap[1].Name != "m.mid" || snap[2].Name != "z.last" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	out := r.Render()
	for _, want := range []string{"a.first", "gauge", "m.mid", "histogram", "count=1", "z.last", "counter"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// creation races, recording races, and snapshot-while-writing — and
// checks the totals. Run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", 1, 10).Observe(float64(i % 20))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("shared.counter").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("shared.gauge").Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	h := r.Histogram("shared.hist")
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// Each worker observes 0..19 fifty times: sum = 50*190 per worker.
	wantSum := float64(workers) * 50 * 190
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
	if last := h.Buckets(); last[len(last)-1].Count != total {
		t.Errorf("+Inf cumulative = %d, want %d", last[len(last)-1].Count, total)
	}
}

// TestTracerConcurrent starts and ends spans from many goroutines; under
// -race this proves the tracer and span locking.
func TestTracerConcurrent(t *testing.T) {
	o := NewObserver()
	var ended sync.WaitGroup
	var count int
	var mu sync.Mutex
	o.Tracer.OnEnd(func(*Span) { mu.Lock(); count++; mu.Unlock() })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := o.Tracer.start("span", 0, nil)
				s.SetAttr(Int("i", int64(i)))
				ended.Add(1)
				go func() { defer ended.Done(); s.End() }()
			}
		}(w)
	}
	wg.Wait()
	ended.Wait()
	if o.Tracer.Len() != 1600 {
		t.Fatalf("len = %d, want 1600", o.Tracer.Len())
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1600 {
		t.Fatalf("OnEnd fired %d times, want 1600", count)
	}
}
