// Package obs is the zero-dependency observability layer of the ETL
// engine: spans with parent/child links and attributes (tracing), a
// lock-cheap metrics registry (counters, gauges, histograms), pluggable
// exporters (in-memory, JSON-lines, a human-readable flame-style tree
// dump), and pprof/runtime-trace profiling hooks.
//
// The design follows the paper's demand that generated ETL be inspectable
// rather than a black box — but at runtime, not just at plan time: a
// degraded study run can be explained span by span (which contributor
// died, how many attempts were spent on it, which union inputs were
// pruned), and every future performance PR measures itself against the
// metrics recorded here.
//
// Everything is stdlib-only and safe for concurrent use. Tracing is
// opt-in and nil-tolerant: when no Observer is installed in the
// context, StartSpan returns a nil *Span whose methods are all no-ops,
// so instrumented code pays only a context lookup on the disabled path.
//
// Typical wiring:
//
//	o := obs.NewObserver()
//	ctx := obs.WithObserver(context.Background(), o)
//	rows, report, err := compiled.RunResilient(ctx, policy, workers)
//	fmt.Print(obs.RenderTree(o.Tracer.Spans()))   // flame-style dump
//	fmt.Print(o.Metrics.Render())                 // metric snapshot
//
// See OBSERVABILITY.md at the repository root for the span model, the
// metric name catalog, and how to read the trace of a degraded run.
package obs

import "context"

// Observer bundles one tracer and one metrics registry — the unit a
// caller installs into a context to observe an execution.
type Observer struct {
	// Tracer collects the spans of every execution run under this
	// observer's context.
	Tracer *Tracer
	// Metrics receives the counters, gauges, and histograms recorded by
	// instrumented code running under this observer's context.
	Metrics *Registry
}

// NewObserver creates an observer with a fresh tracer and registry.
func NewObserver() *Observer {
	return &Observer{Tracer: NewTracer(), Metrics: NewRegistry()}
}

// ctxKey keys the observer scope stored in a context.
type ctxKey struct{}

// scope is what lives in the context: the observer plus the current span.
type scope struct {
	obs  *Observer
	span *Span
}

// WithObserver installs an observer into the context; spans started and
// metrics recorded under the returned context flow into it.
func WithObserver(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &scope{obs: o})
}

// ObserverFrom returns the observer installed in ctx, or nil.
func ObserverFrom(ctx context.Context) *Observer {
	if s, ok := ctx.Value(ctxKey{}).(*scope); ok {
		return s.obs
	}
	return nil
}

// MetricsFrom returns the registry metrics recorded under ctx should go
// to: the installed observer's, or the process-wide Default registry.
func MetricsFrom(ctx context.Context) *Registry {
	if o := ObserverFrom(ctx); o != nil && o.Metrics != nil {
		return o.Metrics
	}
	return Default
}

// StartSpan starts a span under the current span of ctx (or as a root)
// and returns a context carrying it. Without an observer in ctx it
// returns (ctx, nil); the nil span's methods are no-ops, so callers
// never need to branch on whether tracing is enabled.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	s, ok := ctx.Value(ctxKey{}).(*scope)
	if !ok || s.obs == nil || s.obs.Tracer == nil {
		return ctx, nil
	}
	var parent int64
	if s.span != nil {
		parent = s.span.ID()
	}
	span := s.obs.Tracer.start(name, parent, attrs)
	return context.WithValue(ctx, ctxKey{}, &scope{obs: s.obs, span: span}), span
}

// Event records an instant (zero-work) span under the current span — the
// shape warnings take in a trace, e.g. a corrupt checkpoint that was
// detected and ignored. It returns the ended span (nil when unobserved).
func Event(ctx context.Context, name string, attrs ...Attr) *Span {
	_, s := StartSpan(ctx, name, attrs...)
	s.End()
	return s
}

// CurrentSpan returns the span ctx is running under, or nil.
func CurrentSpan(ctx context.Context) *Span {
	if s, ok := ctx.Value(ctxKey{}).(*scope); ok {
		return s.span
	}
	return nil
}
