package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gtree"
	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/plancheck"
	"guava/internal/relstore"
	"guava/internal/ui"
)

// contribFixture builds a contributor: a small Procedure form, a pattern
// stack, a populated database, and the derived g-tree (the same shape the
// etl tests use, so serve exercises real compiled plans end to end).
func contribFixture(t *testing.T, name string, stack *patterns.Stack, records []map[string]relstore.Value) *etl.ContributorPlan {
	t.Helper()
	f := &ui.Form{
		Name: "Procedure", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{Name: "PacksPerDay", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat},
			{Name: "Hypoxia", Kind: ui.CheckBox, Question: "Hypoxia?"},
			{Name: "SurgeryPerformed", Kind: ui.CheckBox, Question: "Surgery?"},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := gtree.Derive(name, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	info, err := patterns.FromUIForm(f)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDB(name)
	if err := stack.Install(db, info); err != nil {
		t.Fatal(err)
	}
	sink := &patterns.Sink{DB: db, Stack: stack}
	for i, rec := range records {
		e, err := ui.NewEntry(f, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range rec {
			if err := e.Set(k, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Submit(sink); err != nil {
			t.Fatal(err)
		}
	}
	return &etl.ContributorPlan{Name: name, DB: db, Tree: tree, Stack: stack, Form: info}
}

var habitsTarget = classifier.Target{
	Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
	Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
}

// fixtureSpec builds a two-clinic study whose contributor databases the
// tests can mutate to force data-changing refreshes. With the records
// below, the surgery filter admits 4 rows (clinicA 1,2; clinicB 1,2).
func fixtureSpec(t *testing.T, habitsRules string) *etl.StudySpec {
	t.Helper()
	stackA := patterns.NewStack(patterns.Generic{}, &patterns.Audit{})
	stackB := patterns.NewStack(&patterns.Split{}, &patterns.Encode{})

	recsA := []map[string]relstore.Value{
		{"PacksPerDay": relstore.Float(0), "Hypoxia": relstore.Bool(false), "SurgeryPerformed": relstore.Bool(true)},
		{"PacksPerDay": relstore.Float(3), "Hypoxia": relstore.Bool(true), "SurgeryPerformed": relstore.Bool(true)},
		{"PacksPerDay": relstore.Float(7), "Hypoxia": relstore.Bool(true), "SurgeryPerformed": relstore.Bool(false)},
	}
	recsB := []map[string]relstore.Value{
		{"PacksPerDay": relstore.Float(1), "Hypoxia": relstore.Bool(false), "SurgeryPerformed": relstore.Bool(true)},
		{"Hypoxia": relstore.Bool(true), "SurgeryPerformed": relstore.Bool(true)},
	}
	ca := contribFixture(t, "clinicA", stackA, recsA)
	cb := contribFixture(t, "clinicB", stackB, recsB)

	entity, err := classifier.ParseEntity("Relevant", "surgery only", "Procedure",
		"Procedure <- Procedure AND SurgeryPerformed = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	habits, err := classifier.Parse("Habits (Cancer)", "", habitsTarget, habitsRules)
	if err != nil {
		t.Fatal(err)
	}
	hypoxia, err := classifier.Parse("Hypoxia passthrough", "", classifier.Target{
		Entity: "Procedure", Attribute: "Hypoxia", Domain: "D1", Kind: relstore.KindBool,
	}, "Hypoxia <- TRUE")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*etl.ContributorPlan{ca, cb} {
		c.Entity = entity
		c.Classifiers = map[string]*classifier.Classifier{
			"Smoking_D3": habits,
			"Hypoxia_D1": hypoxia,
		}
	}
	return &etl.StudySpec{
		Name: "exsmoker",
		Columns: []etl.ColumnSpec{
			{As: "Smoking_D3", Attribute: "Smoking", Domain: "D3", Kind: relstore.KindString},
			{As: "Hypoxia_D1", Attribute: "Hypoxia", Domain: "D1", Kind: relstore.KindBool},
		},
		Contributors: []*etl.ContributorPlan{ca, cb},
	}
}

const goodHabits = `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`

// newTestServer stands up a Server over the fixture study and an httptest
// front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *etl.StudySpec, *httptest.Server) {
	t.Helper()
	if cfg.Observer == nil {
		cfg.Observer = obs.NewObserver()
	}
	spec := fixtureSpec(t, goodHabits)
	srv := NewServer(cfg)
	if err := srv.AddStudy(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, spec, ts
}

// get fetches url and decodes the JSON body into a map.
func get(t *testing.T, url string) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestServeEndToEnd covers the read side: health, listing, extraction with
// filters and pagination, result caching, and error statuses.
func TestServeEndToEnd(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{})

	code, _, health := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}
	if health["studies"].(float64) != 1 {
		t.Errorf("healthz studies = %v, want 1", health["studies"])
	}

	code, _, list := get(t, ts.URL+"/studies")
	if code != http.StatusOK {
		t.Fatalf("studies = %d", code)
	}
	studies := list["studies"].([]any)
	if len(studies) != 1 {
		t.Fatalf("studies = %v", list)
	}
	info := studies[0].(map[string]any)
	if info["name"] != "exsmoker" || info["rows"].(float64) != 4 || info["generation"].(float64) != 1 {
		t.Errorf("study info = %v", info)
	}
	if info["lastStats"].(map[string]any)["added"].(float64) != 4 {
		t.Errorf("lastStats = %v", info["lastStats"])
	}

	// First extract misses, second hits, bodies agree.
	code, hdr, body := get(t, ts.URL+"/studies/exsmoker/extract")
	if code != http.StatusOK || hdr.Get("X-Guava-Cache") != "miss" {
		t.Fatalf("first extract = %d cache=%q", code, hdr.Get("X-Guava-Cache"))
	}
	if body["total"].(float64) != 4 || body["returned"].(float64) != 4 {
		t.Errorf("extract body = %v", body)
	}
	code, hdr, body2 := get(t, ts.URL+"/studies/exsmoker/extract")
	if code != http.StatusOK || hdr.Get("X-Guava-Cache") != "hit" {
		t.Fatalf("second extract = %d cache=%q", code, hdr.Get("X-Guava-Cache"))
	}
	if fmt.Sprint(body) != fmt.Sprint(body2) {
		t.Errorf("cached body diverges:\n%v\n%v", body, body2)
	}

	// Filters push into the store: only clinicA rows with packs >= 3.
	code, _, filtered := get(t, ts.URL+"/studies/exsmoker/extract?Contributor=clinicA&Smoking_D3.ne=None")
	if code != http.StatusOK {
		t.Fatalf("filtered extract = %d %v", code, filtered)
	}
	rows := filtered["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("filtered rows = %v", rows)
	}
	if row := rows[0].([]any); row[1] != "clinicA" || row[2] != "Moderate" {
		t.Errorf("filtered row = %v", row)
	}

	// Pagination is deterministic: two disjoint windows cover the set.
	_, _, p1 := get(t, ts.URL+"/studies/exsmoker/extract?limit=2")
	_, _, p2 := get(t, ts.URL+"/studies/exsmoker/extract?limit=2&offset=2")
	if p1["returned"].(float64) != 2 || p2["returned"].(float64) != 2 {
		t.Fatalf("pages = %v / %v", p1, p2)
	}
	if fmt.Sprint(p1["rows"]) == fmt.Sprint(p2["rows"]) {
		t.Error("offset pages must differ")
	}

	// Error surfaces.
	for url, want := range map[string]int{
		"/studies/nope/extract":                     http.StatusNotFound,
		"/studies/exsmoker/extract?NoSuchCol=1":     http.StatusBadRequest,
		"/studies/exsmoker/extract?EntityKey.zz=1":  http.StatusBadRequest,
		"/studies/exsmoker/extract?EntityKey=ten":   http.StatusBadRequest,
		"/studies/exsmoker/extract?limit=-1":        http.StatusBadRequest,
		"/studies/exsmoker/extract?offset=x":        http.StatusBadRequest,
		"/studies/exsmoker/extract?Hypoxia_D1=perh": http.StatusBadRequest,
	} {
		if code, _, body := get(t, ts.URL+url); code != want {
			t.Errorf("GET %s = %d (%v), want %d", url, code, body, want)
		}
	}

	// Metrics export includes the serve counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := srv.metrics()
	if m.Counter("serve.extract.cache.hit").Value() < 1 || m.Counter("serve.extract.cache.miss").Value() < 1 {
		t.Errorf("cache counters = hit %d miss %d", m.Counter("serve.extract.cache.hit").Value(),
			m.Counter("serve.extract.cache.miss").Value())
	}
	if len(raw) == 0 {
		t.Error("metrics export is empty")
	}

	// Every request got a span.
	if cfgTracer := srv.cfg.Observer.Tracer; cfgTracer.Len() == 0 {
		t.Error("no spans recorded")
	} else if cfgTracer.Find("http GET /studies/{name}/extract") == nil {
		t.Error("extract requests are missing spans")
	}
}

// TestForcedRefreshAndInvalidation is the serving cache contract: a no-op
// refresh keeps cached extracts valid; a data-changing refresh bumps the
// generation and invalidates them.
func TestForcedRefreshAndInvalidation(t *testing.T) {
	_, spec, ts := newTestServer(t, Config{})

	// Warm the cache.
	get(t, ts.URL+"/studies/exsmoker/extract")
	_, hdr, _ := get(t, ts.URL+"/studies/exsmoker/extract")
	if hdr.Get("X-Guava-Cache") != "hit" {
		t.Fatal("cache must be warm before the refresh")
	}

	// Forced refresh with unchanged contributor data: no-op, cache stays.
	resp, err := http.Post(ts.URL+"/studies/exsmoker/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ref map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ref["changed"] != false || ref["generation"].(float64) != 1 {
		t.Fatalf("no-op refresh = %d %v", resp.StatusCode, ref)
	}
	if _, hdr, _ := get(t, ts.URL+"/studies/exsmoker/extract"); hdr.Get("X-Guava-Cache") != "hit" {
		t.Error("no-op refresh must preserve cached extracts")
	}

	// A clinic submits a new surgical report; the next refresh must see it.
	clinicA := spec.Contributors[0]
	if err := clinicA.Stack.WriteValues(clinicA.DB, clinicA.Form, map[string]relstore.Value{
		"ProcedureID":      relstore.Int(10),
		"PacksPerDay":      relstore.Float(1),
		"Hypoxia":          relstore.Bool(false),
		"SurgeryPerformed": relstore.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/studies/exsmoker/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref = map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ref["changed"] != true || ref["generation"].(float64) != 2 {
		t.Fatalf("changing refresh = %v", ref)
	}
	code, hdr, body := get(t, ts.URL+"/studies/exsmoker/extract")
	if code != http.StatusOK || hdr.Get("X-Guava-Cache") != "miss" {
		t.Fatalf("post-change extract = %d cache=%q", code, hdr.Get("X-Guava-Cache"))
	}
	if body["total"].(float64) != 5 || body["generation"].(float64) != 2 {
		t.Errorf("post-change body = %v", body)
	}
}

// TestAdmissionControl: with every slot occupied, extracts are rejected
// with 429 immediately rather than queued.
func TestAdmissionControl(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{MaxInFlight: 2})
	srv.slots <- struct{}{}
	srv.slots <- struct{}{}
	code, _, body := get(t, ts.URL+"/studies/exsmoker/extract")
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated extract = %d %v", code, body)
	}
	if got := srv.metrics().Counter("serve.rejected").Value(); got != 1 {
		t.Errorf("serve.rejected = %d, want 1", got)
	}
	<-srv.slots
	<-srv.slots
	if code, _, _ := get(t, ts.URL+"/studies/exsmoker/extract"); code != http.StatusOK {
		t.Errorf("extract after slots free = %d", code)
	}
}

// TestBackgroundRefreshAndDrain: the refresh loops tick on their own, and
// Shutdown stops them before completing.
func TestBackgroundRefreshAndDrain(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{RefreshInterval: 5 * time.Millisecond})
	srv.StartRefreshLoops()

	m := srv.metrics()
	deadline := time.Now().Add(5 * time.Second)
	for m.Counter("serve.refresh.background").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background refresh never ticked twice")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Error("server must report draining after Shutdown")
	}
	if code, _, body := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("draining healthz = %d %v", code, body)
	}
	// Loops are stopped: the counter cannot advance any more.
	n := m.Counter("refresh.runs").Value()
	time.Sleep(25 * time.Millisecond)
	if got := m.Counter("refresh.runs").Value(); got != n {
		t.Errorf("refresh.runs advanced after drain: %d -> %d", n, got)
	}
}

// TestVetGateRefusesBadStudy: a spec with vet errors (classifier emitting
// outside its domain, GV104) never becomes servable.
func TestVetGateRefusesBadStudy(t *testing.T) {
	spec := fixtureSpec(t, "Extreme <- PacksPerDay > 5\nNone <- TRUE")
	srv := NewServer(Config{Observer: obs.NewObserver()})
	if err := srv.AddStudy(context.Background(), spec); err == nil {
		t.Fatal("AddStudy accepted a study that fails vetting")
	}
	if len(srv.StudyNames()) != 0 {
		t.Errorf("vet-rejected study is registered: %v", srv.StudyNames())
	}
}

// TestPlanGateRejectsWith422: a study whose artifacts vet clean but whose
// compiled plan is contradictory is refused eagerly by AddStudy, and — when
// registered lazily — answers every extract and refresh with 422 carrying
// the GV21x report, while a healthy study on the same server keeps serving.
func TestPlanGateRejectsWith422(t *testing.T) {
	spec := fixtureSpec(t, goodHabits)
	spec.Name = "badplan"
	for _, c := range spec.Contributors {
		c.Condition = "PacksPerDay > 5 AND PacksPerDay < 2"
	}
	srv := NewServer(Config{Observer: obs.NewObserver()})

	err := srv.AddStudy(context.Background(), spec)
	if err == nil {
		t.Fatal("AddStudy accepted a GV21x-rejected plan")
	}
	var rej *plancheck.RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("AddStudy error is not a *plancheck.RejectionError: %v", err)
	}
	if len(srv.StudyNames()) != 0 {
		t.Errorf("rejected study stayed registered: %v", srv.StudyNames())
	}

	if err := srv.AddStudyLazy(spec); err != nil {
		t.Fatalf("AddStudyLazy: %v", err)
	}
	if err := srv.AddStudy(context.Background(), fixtureSpec(t, goodHabits)); err != nil {
		t.Fatalf("AddStudy(healthy): %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, body := get(t, ts.URL+"/studies/badplan/extract")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("extract of rejected plan = %d, want 422 (%v)", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "GV212") {
		t.Errorf("422 body does not carry the GV212 diagnostic: %q", msg)
	}

	resp, err := http.Post(ts.URL+"/studies/badplan/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("refresh of rejected plan = %d, want 422", resp.StatusCode)
	}

	if code, _, _ := get(t, ts.URL+"/studies/exsmoker/extract"); code != http.StatusOK {
		t.Errorf("healthy study extract = %d, want 200", code)
	}
	if got := srv.metrics().Counter("serve.plan.rejected").Value(); got < 1 {
		t.Errorf("serve.plan.rejected = %d, want >= 1", got)
	}
}

// TestPlanCacheCompileOnce: repeated serving traffic compiles each study a
// single time, and eviction under pressure recompiles on return.
func TestPlanCacheCompileOnce(t *testing.T) {
	o := obs.NewObserver()
	srv, _, ts := newTestServer(t, Config{Observer: o})
	for i := 0; i < 3; i++ {
		if resp, err := http.Post(ts.URL+"/studies/exsmoker/refresh", "", nil); err == nil {
			resp.Body.Close()
		}
	}
	m := srv.metrics()
	if got := m.Counter("serve.plan.cache.miss").Value(); got != 1 {
		t.Errorf("plan compiled %d times, want 1", got)
	}
	// The initial refresh compiled (the miss above); the three forced
	// refreshes all hit the cache.
	if got := m.Counter("serve.plan.cache.hit").Value(); got != 3 {
		t.Errorf("plan cache hits = %d, want 3", got)
	}
}
