package serve

import (
	"sync"
	"sync/atomic"

	"guava/internal/etl"
	"guava/internal/relstore"
)

// A generation is one immutable snapshot of a study's serving state: the
// warehouse table, the delta cursors it was built from, the per-partition
// generation counters, and the merge stats that produced it. Extracts pin
// the current generation, read from it without any lock, and unpin; a
// refresh builds the *next* generation side-by-side and publishes it with
// one atomic pointer swap — so readers never block on a merge and never
// observe a half-applied one.
//
// Pinning is a refcount, but not the kind that protects memory — Go's GC
// does that for free. Pins protect the generation's on-disk directory:
// GC of retired generations only deletes a gen-<N> dir once no request is
// pinned to it and a newer persisted generation exists, so the last
// complete generation on disk is always one a crashed process can recover.
type generation struct {
	// num counts data-changing refreshes; extract results are stamped with
	// it, so a no-op refresh (which republishes under the same num)
	// preserves cache hits.
	num int64
	// table is the study's warehouse table at this generation. It is
	// never mutated after publish: the next refresh merges into a copy.
	table *relstore.Table
	// partGens is the per-contributor analogue of num: a delta refresh
	// bumps only the partitions it touched, so extracts pinned to one
	// contributor keep their cache entries when only others changed.
	partGens map[string]int64
	// cursors are the applied journal cursors this generation reflects
	// (nil until a full refresh seeds them). Treated as immutable: the
	// next builder clones before advancing.
	cursors *etl.DeltaCursors
	// stats is the merge report of the refresh that built this generation.
	stats etl.RefreshStats
	// dir is the on-disk generation directory ("" when not persisted). A
	// no-op republish inherits the previous generation's dir — same data,
	// same num, still recoverable.
	dir string

	owner   *servedStudy
	pins    atomic.Int64
	retired atomic.Bool
	cleanup sync.Once
}

// genFor picks the cache stamp for an extract: the partition generation
// when the query is pinned to a single contributor, the study generation
// otherwise.
func (g *generation) genFor(contributor string) int64 {
	if contributor == "" {
		return g.num
	}
	return g.partGens[contributor]
}

// pin returns the current generation with a pin held, or nil before the
// first successful refresh. The load/incref/re-check loop closes the race
// with a concurrent publish: if the pointer moved while we were pinning,
// we unpin the loser and retry against the new current.
func (st *servedStudy) pin() *generation {
	for {
		g := st.cur.Load()
		if g == nil {
			return nil
		}
		g.pins.Add(1)
		if st.cur.Load() == g {
			if st.pinGauge != nil {
				st.pinGauge.Add(1)
			}
			return g
		}
		g.unpinQuiet()
	}
}

// unpin releases a pin taken by pin(); the last unpin of a retired
// generation triggers its on-disk GC.
func (g *generation) unpin() {
	if g.owner != nil && g.owner.pinGauge != nil {
		g.owner.pinGauge.Add(-1)
	}
	g.unpinQuiet()
}

func (g *generation) unpinQuiet() {
	if g.pins.Add(-1) == 0 && g.retired.Load() {
		g.collect()
	}
}

// publish makes g the study's current generation and retires the old one.
// This is the only write to st.cur after registration, and it happens
// under refreshMu — readers are lock-free, builders are serialized.
func (s *Server) publish(st *servedStudy, g *generation) {
	old := st.cur.Swap(g)
	st.ready.Store(true)
	s.metrics().Counter("serve.snapshot.swaps").Inc()
	if old != nil && old != g {
		old.retired.Store(true)
		if old.pins.Load() == 0 {
			old.collect()
		}
	}
}

// collect deletes a retired generation's on-disk directory, once, and only
// when recovery no longer needs it: the current generation must be a
// *different*, *persisted* snapshot. If the latest refresh failed to
// persist, the previous dir stays — it is still the last complete
// generation a restart can serve.
func (g *generation) collect() {
	g.cleanup.Do(func() {
		if g.dir == "" || g.owner == nil || g.owner.store == nil {
			return
		}
		cur := g.owner.cur.Load()
		if cur == nil || cur.num == g.num || cur.dir == "" || cur.dir == g.dir {
			return
		}
		g.owner.store.removeGen(g.dir)
	})
}
