// Package serve is the study-serving subsystem: a long-running HTTP daemon
// over the warehouse. The paper's workflow is not one-shot — contributor
// data "is periodically sent for inclusion in the CORI warehouse" and
// analysts then pull study extracts repeatedly — so serve keeps each
// study's compiled plan in an LRU cache (compiled exactly once per
// residency), refreshes the warehouse in the background on a configurable
// interval, and answers extract queries from a generation-stamped result
// cache that is invalidated only when a refresh actually changes data.
//
// The API is zero-dependency net/http + encoding/json:
//
//	GET  /healthz                  liveness + drain state
//	GET  /metrics                  internal/obs registry, JSONL
//	GET  /studies                  every served study with refresh stats
//	GET  /studies/{name}/extract   filtered, paginated rows (see extract.go)
//	POST /studies/{name}/refresh   force a refresh now
//
// Robustness posture matches the batch path: extract admission is bounded
// by a semaphore (429 when saturated), every request carries a deadline and
// a span, refreshes run under an etl.RunPolicy, and Shutdown drains —
// refresh loops stop first, then in-flight requests complete.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/plancheck"
	"guava/internal/relstore"
	"guava/internal/vet"
)

// Config tunes a Server. The zero value is usable: sensible cache sizes and
// admission limits, no background refresh (interval 0 disables the loops),
// metrics into obs.Default, no tracing.
type Config struct {
	// RefreshInterval is the background refresh period per study;
	// <= 0 disables the loops (refresh still happens on demand).
	RefreshInterval time.Duration
	// MaxInFlight bounds concurrently admitted extracts (default 8).
	MaxInFlight int
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// PlanCacheSize bounds resident compiled plans (default 16).
	PlanCacheSize int
	// ResultCacheSize bounds cached rendered extracts (default 128).
	ResultCacheSize int
	// Policy governs refresh execution (retries, timeouts, quarantine).
	Policy etl.RunPolicy
	// Observer receives spans and metrics. nil routes metrics to
	// obs.Default and records no spans.
	Observer *obs.Observer
	// WarehouseDir enables the crash-consistent generation store: each
	// study persists its latest complete generation under
	// <dir>/<study>/gen-<N> and recovers it at registration after a
	// restart. "" keeps everything in memory.
	WarehouseDir string
	// FS is the filesystem the generation store writes through; nil uses
	// the real one. Tests and the R9 harness thread a faulty.FS here.
	FS etl.FS
	// SegmentRows is rows-per-segment for persisted generation tables
	// (<= 0 uses relstore.DefaultSegmentRows).
	SegmentRows int
	// MaxPerStudy bounds concurrently admitted cache-miss extracts per
	// study (0 disables the per-study admission tier).
	MaxPerStudy int
	// BrownoutAfter sheds cache-miss extracts for a study once this many
	// consecutive refreshes of it have failed, keeping cached reads alive
	// while the backend recovers (0 uses 3; < 0 disables brownout).
	BrownoutAfter int
	// Logf receives operational log lines (recovery, torn-generation
	// discards). nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 16
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 128
	}
	if c.BrownoutAfter == 0 {
		c.BrownoutAfter = 3
	}
	return c
}

// logf routes operational log lines to the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// servedStudy is one study's serving state. All data an extract touches —
// table, cursors, partition generations, merge stats — lives in one
// immutable generation object behind an atomic pointer (see generation.go):
// readers pin it lock-free, refreshes build the next generation
// side-by-side and swap. What remains on the study itself is either fixed
// at registration or a single atomic.
type servedStudy struct {
	name      string
	spec      *etl.StudySpec
	schema    *relstore.Schema
	tableName string
	store     *genStore  // on-disk generation store; nil when disabled
	pinGauge  *obs.Gauge // serve.snapshot.pins

	// cur is the current generation; nil until the first successful
	// refresh (or recovery) publishes one.
	cur atomic.Pointer[generation]

	// ready flips once a generation is published. Studies registered
	// through AddStudyLazy start unready: their first extract or refresh
	// triggers compilation (and the plan-admission gate) on demand.
	ready atomic.Bool

	// slots bounds concurrently admitted cache-miss extracts of this study
	// (nil disables the tier): one slow study saturating the global
	// semaphore must not starve the others.
	slots chan struct{}

	refreshMu sync.Mutex // serializes builders of the next generation

	refreshes   atomic.Int64 // refresh attempts, success or failure
	consecFails atomic.Int64 // consecutive failed refreshes (brownout input)
	lastErr     atomic.Value // string: last refresh error, "" after a success
	lastRefresh atomic.Value // time.Time of the last refresh attempt
}

// lastErrString returns the last refresh error ("" when the latest
// refresh succeeded or none ran yet).
func (st *servedStudy) lastErrString() string {
	if e, ok := st.lastErr.Load().(string); ok {
		return e
	}
	return ""
}

// noteRefresh records the outcome of one refresh attempt.
func (st *servedStudy) noteRefresh(err error) {
	st.refreshes.Add(1)
	st.lastRefresh.Store(time.Now())
	if err != nil {
		st.lastErr.Store(err.Error())
		st.consecFails.Add(1)
	} else {
		st.lastErr.Store("")
		st.consecFails.Store(0)
	}
}

// Server hosts a set of vetted studies behind the extract API.
type Server struct {
	cfg     Config
	plans   *planCache
	results *resultCache
	slots   chan struct{}
	start   time.Time

	mu      sync.RWMutex
	studies map[string]*servedStudy
	loops   bool // background refresh loops running

	loopStop chan struct{}
	loopWG   sync.WaitGroup

	httpSrv  *http.Server
	addr     atomic.Value // net.Addr
	draining atomic.Bool
}

// NewServer builds a Server from cfg. Studies are added with AddStudy;
// Start opens the listener and (when configured) the refresh loops.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		start:   time.Now(),
		studies: make(map[string]*servedStudy),
	}
	s.plans = newPlanCache(cfg.PlanCacheSize, s.metrics)
	s.results = newResultCache(cfg.ResultCacheSize)
	return s
}

// metrics returns the registry serve publishes into.
func (s *Server) metrics() *obs.Registry {
	if s.cfg.Observer != nil && s.cfg.Observer.Metrics != nil {
		return s.cfg.Observer.Metrics
	}
	return obs.Default
}

// observe threads the server's observer into ctx so spans and metrics from
// the etl layer land in the same place as serve's own.
func (s *Server) observe(ctx context.Context) context.Context {
	if s.cfg.Observer != nil {
		return obs.WithObserver(ctx, s.cfg.Observer)
	}
	return ctx
}

// AddStudy vets spec, compiles it through the plan cache (where the
// plan-level analyzer gates admission), and runs the initial warehouse
// refresh so the study is queryable the moment it is listed. A spec with vet
// errors or a GV21x-rejected plan is refused — the daemon serves only
// studies that pass the same static gates as the batch path. When the
// generation store holds a recovered generation for the study, it is served
// immediately and the initial refresh is skipped — a restarted daemon
// answers from the last complete pre-crash snapshot before any contributor
// is re-contacted.
func (s *Server) AddStudy(ctx context.Context, spec *etl.StudySpec) error {
	st, err := s.register(spec)
	if err != nil {
		return err
	}
	if st.cur.Load() != nil {
		return nil // recovered from disk; already serving
	}
	if _, err := s.refresh(ctx, st, "initial"); err != nil {
		s.mu.Lock()
		delete(s.studies, spec.Name)
		s.mu.Unlock()
		return fmt.Errorf("serve: initial refresh of %q: %w", spec.Name, err)
	}
	return nil
}

// AddStudyLazy registers spec without compiling or refreshing it: the study
// is listed immediately, and its first extract or refresh request compiles
// the plan through the cache — where a GV21x-rejected plan surfaces as HTTP
// 422 instead of a boot failure. Artifact-level vetting still runs eagerly;
// only the plan-level work is deferred.
func (s *Server) AddStudyLazy(spec *etl.StudySpec) error {
	_, err := s.register(spec)
	return err
}

// register performs the shared AddStudy/AddStudyLazy work: artifact vetting,
// schema derivation, and slotting the study into the serving map (plus its
// background refresh loop when the loops already run).
func (s *Server) register(spec *etl.StudySpec) (*servedStudy, error) {
	if rep := vet.Study(spec, nil, nil); rep.HasErrors() {
		return nil, fmt.Errorf("serve: study %q failed vetting:\n%s", spec.Name, rep.Text())
	}
	schema, err := spec.OutputSchema()
	if err != nil {
		return nil, err
	}
	st := &servedStudy{
		name:   spec.Name,
		spec:   spec,
		schema: schema,
		// The compiler's output name is deterministic, so lazy registration
		// can derive it without compiling.
		tableName: "Study_" + spec.Name,
		pinGauge:  s.metrics().Gauge("serve.snapshot.pins"),
	}
	if s.cfg.MaxPerStudy > 0 {
		st.slots = make(chan struct{}, s.cfg.MaxPerStudy)
	}
	if s.cfg.WarehouseDir != "" {
		st.store = newGenStore(s.cfg.FS, filepath.Join(s.cfg.WarehouseDir, spec.Name),
			s.cfg.SegmentRows, s.metrics, s.cfg.Logf)
		s.recoverStudy(st)
	}

	s.mu.Lock()
	if _, dup := s.studies[spec.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: study %q already registered", spec.Name)
	}
	s.studies[spec.Name] = st
	startLoop := s.loops
	stop := s.loopStop
	s.mu.Unlock()

	if startLoop {
		s.loopWG.Add(1)
		go s.refreshLoop(st, stop)
	}
	return st, nil
}

// recoverStudy loads the newest complete generation from the study's store
// and publishes it. A store whose recovered schema no longer matches the
// spec is wiped — stale shapes are never served.
func (s *Server) recoverStudy(st *servedStudy) {
	rec, err := st.store.recover()
	if err != nil || rec == nil {
		return
	}
	if !rec.rows.Schema.Equal(st.schema) {
		s.logf("serve: study %q recovered generation %d has a stale schema; discarding store", st.name, rec.man.Gen)
		st.store.discardAll()
		return
	}
	table := relstore.NewTable(st.tableName, st.schema)
	if err := table.InsertAll(rec.rows.Data); err != nil {
		s.logf("serve: study %q recovered generation %d failed to load: %v", st.name, rec.man.Gen, err)
		st.store.discardAll()
		return
	}
	_ = table.CreateIndex(etl.ContributorColumn)
	var cursors *etl.DeltaCursors
	if rec.man.Cursors != nil {
		cursors = etl.NewDeltaCursors()
		for k, v := range rec.man.Cursors {
			cursors.Set(k, v)
		}
	}
	partGens := rec.man.PartGens
	if partGens == nil {
		partGens = map[string]int64{}
	}
	g := &generation{
		num:      rec.man.Gen,
		table:    table,
		partGens: partGens,
		cursors:  cursors,
		stats:    rec.man.Stats,
		dir:      rec.dir,
		owner:    st,
	}
	st.refreshes.Store(rec.man.Refreshes)
	s.publish(st, g)
	s.logf("serve: study %q recovered generation %d (%d rows)", st.name, g.num, table.Len())
}

// ensureReady lazily brings an AddStudyLazy study online: the first request
// pays for compilation (running the plan-admission gate) and the initial
// refresh. Already-ready studies return immediately.
func (s *Server) ensureReady(ctx context.Context, st *servedStudy) error {
	if st.ready.Load() {
		return nil
	}
	_, err := s.refresh(ctx, st, "initial")
	return err
}

// study looks up a served study by name.
func (s *Server) study(name string) (*servedStudy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.studies[name]
	return st, ok
}

// StudyNames returns the served study names, sorted.
func (s *Server) StudyNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.studies))
	for n := range s.studies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the API routes; usable directly under httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("GET /healthz", s.handleHealthz))
	mux.Handle("GET /healthz/live", s.instrument("GET /healthz/live", s.handleHealthzLive))
	mux.Handle("GET /healthz/ready", s.instrument("GET /healthz/ready", s.handleHealthzReady))
	mux.Handle("GET /metrics", s.instrument("GET /metrics", s.handleMetrics))
	mux.Handle("GET /studies", s.instrument("GET /studies", s.handleStudies))
	mux.Handle("GET /studies/{name}/extract", s.instrument("GET /studies/{name}/extract", s.handleExtract))
	mux.Handle("POST /studies/{name}/refresh", s.instrument("POST /studies/{name}/refresh", s.handleRefresh))
	return mux
}

// Start listens on addr ("host:port", ":0" for ephemeral), serves the API
// in the background, and starts the refresh loops when RefreshInterval is
// positive. The bound address is available from Addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.addr.Store(ln.Addr())
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Printf("serve: %v\n", err)
		}
	}()
	s.StartRefreshLoops()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if a, ok := s.addr.Load().(net.Addr); ok {
		return a.String()
	}
	return ""
}

// StartRefreshLoops launches one background refresh goroutine per served
// study. A no-op when RefreshInterval <= 0 or the loops already run.
func (s *Server) StartRefreshLoops() {
	if s.cfg.RefreshInterval <= 0 {
		return
	}
	s.mu.Lock()
	if s.loops {
		s.mu.Unlock()
		return
	}
	s.loops = true
	s.loopStop = make(chan struct{})
	stop := s.loopStop
	studies := make([]*servedStudy, 0, len(s.studies))
	for _, st := range s.studies {
		studies = append(studies, st)
	}
	s.mu.Unlock()
	for _, st := range studies {
		s.loopWG.Add(1)
		go s.refreshLoop(st, stop)
	}
}

// stopRefreshLoops signals the loops and waits for them to exit.
func (s *Server) stopRefreshLoops() {
	s.mu.Lock()
	running := s.loops
	s.loops = false
	stop := s.loopStop
	s.mu.Unlock()
	if !running {
		return
	}
	close(stop)
	s.loopWG.Wait()
}

// Shutdown drains the server: mark draining (healthz flips to 503 so load
// balancers stop routing), stop the refresh loops, then let in-flight
// requests finish under ctx's deadline. Safe to call without Start (tests
// that mount Handler directly still get loop teardown).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopRefreshLoops()
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the response code for spans and error counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps a handler with the per-request span, deadline, and the
// serve.requests / serve.errors counters.
func (s *Server) instrument(pattern string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.metrics()
		m.Counter("serve.requests").Inc()
		ctx, cancel := context.WithTimeout(s.observe(r.Context()), s.cfg.RequestTimeout)
		defer cancel()
		ctx, span := obs.StartSpan(ctx, "http "+pattern, obs.String("path", r.URL.Path))
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		code := sw.status()
		span.SetAttr(obs.Int("status", int64(code)))
		if code >= 500 {
			m.Counter("serve.errors").Inc()
			span.EndErr(fmt.Errorf("HTTP %d", code))
		} else {
			span.End()
		}
	})
}

// writeJSON renders v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz is the legacy combined probe: 503 once draining so load
// balancers that only know one endpoint stop routing. New deployments
// should probe /healthz/live and /healthz/ready separately.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.mu.RLock()
	n := len(s.studies)
	s.mu.RUnlock()
	writeJSON(w, code, map[string]any{
		"status":   status,
		"studies":  n,
		"inflight": len(s.slots),
		"uptimeMs": time.Since(s.start).Milliseconds(),
	})
}

// handleHealthzLive answers pure liveness: the process is up and able to
// serve HTTP. It stays 200 while draining or recovering — a daemon
// finishing in-flight work is not dead, and reporting it dead gets it
// killed mid-drain.
func (s *Server) handleHealthzLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "alive",
		"uptimeMs": time.Since(s.start).Milliseconds(),
	})
}

// handleHealthzReady answers routability: 503 while draining or while any
// registered study has no published generation yet (initial refresh or
// recovery in progress), 200 once every study can serve an extract.
func (s *Server) handleHealthzReady(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	unready := 0
	s.mu.RLock()
	n := len(s.studies)
	for _, st := range s.studies {
		if !st.ready.Load() {
			unready++
		}
	}
	s.mu.RUnlock()
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case unready > 0:
		status, code = "not-ready", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"studies": n,
		"unready": unready,
	})
}

// handleMetrics exports the registry as JSONL, one sample per line — the
// same wire format obs.WriteMetrics uses on disk.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteMetrics(w, s.metrics())
}

// studyInfo is one /studies listing entry.
type studyInfo struct {
	Name        string       `json:"name"`
	Generation  int64        `json:"generation"`
	Rows        int          `json:"rows"`
	Columns     []columnInfo `json:"columns"`
	Refreshes   int64        `json:"refreshes"`
	LastRefresh string       `json:"lastRefresh,omitempty"`
	LastStats   *statsJSON   `json:"lastStats,omitempty"`
	LastError   string       `json:"lastError,omitempty"`
}

type columnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type statsJSON struct {
	Total     int `json:"total"`
	Added     int `json:"added"`
	Updated   int `json:"updated"`
	Unchanged int `json:"unchanged"`
}

func columnInfos(schema *relstore.Schema) []columnInfo {
	cols := make([]columnInfo, 0, len(schema.Columns))
	for _, c := range schema.Columns {
		cols = append(cols, columnInfo{Name: c.Name, Kind: c.Type.String()})
	}
	return cols
}

// handleStudies lists every served study with its serving state. Rows,
// generation, and merge stats are read from the same pinned generation an
// extract would use, so the listing can never show a half-updated view of
// a refresh in flight.
func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	var infos []studyInfo
	for _, name := range s.StudyNames() {
		st, ok := s.study(name)
		if !ok {
			continue
		}
		info := studyInfo{
			Name:    st.name,
			Columns: columnInfos(st.schema),
		}
		if g := st.pin(); g != nil {
			info.Generation = g.num
			info.Rows = g.table.Len()
			info.LastStats = &statsJSON{Total: g.stats.Total, Added: g.stats.Added, Updated: g.stats.Updated, Unchanged: g.stats.Unchanged}
			g.unpin()
		}
		info.Refreshes = st.refreshes.Load()
		if t, ok := st.lastRefresh.Load().(time.Time); ok && !t.IsZero() {
			info.LastRefresh = t.UTC().Format(time.RFC3339)
		}
		info.LastError = st.lastErrString()
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"studies": infos})
}

// handleExtract serves filtered, paginated study rows from a pinned
// generation — never blocking on a refresh, never observing a
// half-applied merge. Admission is tiered:
//
//  1. cached extracts are a priority lane: a hit is served without
//     consuming an admission slot, so cheap reads survive saturation;
//  2. cache misses take the global semaphore (429 when full), then the
//     per-study semaphore (429 — one slow study must not starve the rest);
//  3. a request that already blew its deadline is shed (503 + Retry-After)
//     before any table work;
//  4. brownout: when the study's refreshes keep failing, misses are shed
//     (503) while cached reads stay alive — stale-but-bounded beats down.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	m := s.metrics()
	began := time.Now()
	defer func() {
		m.Histogram("serve.extract.latency_ms").Observe(float64(time.Since(began).Microseconds()) / 1000)
	}()

	st, ok := s.study(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no study %q", r.PathValue("name"))
		return
	}
	if err := s.ensureReady(r.Context(), st); err != nil {
		var rej *plancheck.RejectionError
		if errors.As(err, &rej) {
			m.Counter("serve.plan.rejected.requests").Inc()
			httpError(w, http.StatusUnprocessableEntity,
				"study %q plan rejected by static analysis:\n%s", st.name, rej.Report.Text())
			return
		}
		httpError(w, http.StatusInternalServerError, "study %q not ready: %v", st.name, err)
		return
	}
	query, err := parseExtractQuery(st.schema, r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Pin the current generation: stamp, table, and partition counters all
	// come from this one immutable snapshot, so a refresh landing mid-read
	// is invisible — we keep serving the generation we pinned.
	snap := st.pin()
	if snap == nil {
		httpError(w, http.StatusInternalServerError, "study %q not ready: no generation published", st.name)
		return
	}
	defer snap.unpin()

	gen := snap.genFor(query.contributor)
	cacheKey := st.name + "?" + query.key
	if body, ok := s.results.get(cacheKey, gen); ok {
		m.Counter("serve.extract.cache.hit").Inc()
		w.Header().Set("X-Guava-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	m.Counter("serve.extract.cache.miss").Inc()

	// Tier: global admission.
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	default:
		m.Counter("serve.rejected").Inc()
		m.Counter("serve.shed.saturated").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "server saturated: %d extracts in flight", cap(s.slots))
		return
	}
	ifl := m.Gauge("serve.inflight")
	ifl.Add(1)
	defer ifl.Add(-1)

	// Tier: per-study admission.
	if st.slots != nil {
		select {
		case st.slots <- struct{}{}:
			defer func() { <-st.slots }()
		default:
			m.Counter("serve.shed.study").Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "study %q saturated: %d extracts in flight", st.name, cap(st.slots))
			return
		}
	}

	// Tier: deadline-aware shed — don't start table work the client has
	// already given up on.
	if err := r.Context().Err(); err != nil {
		m.Counter("serve.shed.deadline").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "request deadline exceeded")
		return
	}

	// Tier: brownout — refresh is persistently failing, so shed the miss
	// path and let cached extracts carry the load while it recovers.
	if ba := s.cfg.BrownoutAfter; ba > 0 && st.consecFails.Load() >= int64(ba) {
		m.Counter("serve.shed.brownout").Inc()
		w.Header().Set("Retry-After", "2")
		httpError(w, http.StatusServiceUnavailable,
			"study %q is browned out after %d consecutive refresh failures", st.name, st.consecFails.Load())
		return
	}

	rows, err := snap.table.Select(query.pred)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "extract failed: %v", err)
		return
	}
	// Deterministic pagination: the same all-column order the batch path
	// uses for study output.
	rows, err = relstore.SortBy(rows, rows.Schema.Names()...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "extract sort failed: %v", err)
		return
	}

	total := rows.Len()
	lo := min(query.offset, total)
	hi := min(lo+query.limit, total)
	page := make([][]any, 0, hi-lo)
	for _, row := range rows.Data[lo:hi] {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = valueJSON(v)
		}
		page = append(page, cells)
	}
	body, err := json.Marshal(map[string]any{
		"study":      st.name,
		"generation": gen,
		"total":      total,
		"offset":     query.offset,
		"limit":      query.limit,
		"returned":   hi - lo,
		"columns":    columnInfos(st.schema),
		"rows":       page,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "render failed: %v", err)
		return
	}
	body = append(body, '\n')
	evicted := s.results.put(cacheKey, gen, body)
	m.Counter("serve.extract.cache.evicted").Add(int64(evicted))

	w.Header().Set("X-Guava-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handleRefresh forces a refresh of one study and reports the merge stats.
// ?mode=delta runs the incremental path from the contributors' change
// journals; the default (or ?mode=full) re-runs the whole plan.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	st, ok := s.study(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no study %q", r.PathValue("name"))
		return
	}
	mode := r.URL.Query().Get("mode")
	var stats etl.RefreshStats
	var err error
	switch mode {
	case "", "full":
		mode = "full"
		s.metrics().Counter("serve.refresh.forced").Inc()
		stats, err = s.refresh(r.Context(), st, "forced")
	case "delta":
		if !deltaCapable(st.spec) {
			httpError(w, http.StatusConflict, "study %q is not delta-capable: a contributor has no change journal", st.name)
			return
		}
		s.metrics().Counter("serve.refresh.forced").Inc()
		stats, err = s.refreshDelta(r.Context(), st, "forced")
	default:
		httpError(w, http.StatusBadRequest, "unknown refresh mode %q (want full or delta)", mode)
		return
	}
	if err != nil {
		var rej *plancheck.RejectionError
		if errors.As(err, &rej) {
			s.metrics().Counter("serve.plan.rejected.requests").Inc()
			httpError(w, http.StatusUnprocessableEntity,
				"study %q plan rejected by static analysis:\n%s", st.name, rej.Report.Text())
			return
		}
		httpError(w, http.StatusInternalServerError, "refresh failed: %v", err)
		return
	}
	var gen int64
	if g := st.cur.Load(); g != nil {
		gen = g.num
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"study":      st.name,
		"mode":       mode,
		"generation": gen,
		"changed":    stats.Changed(),
		"stats":      statsJSON{Total: stats.Total, Added: stats.Added, Updated: stats.Updated, Unchanged: stats.Unchanged},
	})
}
