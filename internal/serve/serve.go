// Package serve is the study-serving subsystem: a long-running HTTP daemon
// over the warehouse. The paper's workflow is not one-shot — contributor
// data "is periodically sent for inclusion in the CORI warehouse" and
// analysts then pull study extracts repeatedly — so serve keeps each
// study's compiled plan in an LRU cache (compiled exactly once per
// residency), refreshes the warehouse in the background on a configurable
// interval, and answers extract queries from a generation-stamped result
// cache that is invalidated only when a refresh actually changes data.
//
// The API is zero-dependency net/http + encoding/json:
//
//	GET  /healthz                  liveness + drain state
//	GET  /metrics                  internal/obs registry, JSONL
//	GET  /studies                  every served study with refresh stats
//	GET  /studies/{name}/extract   filtered, paginated rows (see extract.go)
//	POST /studies/{name}/refresh   force a refresh now
//
// Robustness posture matches the batch path: extract admission is bounded
// by a semaphore (429 when saturated), every request carries a deadline and
// a span, refreshes run under an etl.RunPolicy, and Shutdown drains —
// refresh loops stop first, then in-flight requests complete.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/plancheck"
	"guava/internal/relstore"
	"guava/internal/vet"
)

// Config tunes a Server. The zero value is usable: sensible cache sizes and
// admission limits, no background refresh (interval 0 disables the loops),
// metrics into obs.Default, no tracing.
type Config struct {
	// RefreshInterval is the background refresh period per study;
	// <= 0 disables the loops (refresh still happens on demand).
	RefreshInterval time.Duration
	// MaxInFlight bounds concurrently admitted extracts (default 8).
	MaxInFlight int
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// PlanCacheSize bounds resident compiled plans (default 16).
	PlanCacheSize int
	// ResultCacheSize bounds cached rendered extracts (default 128).
	ResultCacheSize int
	// Policy governs refresh execution (retries, timeouts, quarantine).
	Policy etl.RunPolicy
	// Observer receives spans and metrics. nil routes metrics to
	// obs.Default and records no spans.
	Observer *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 16
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 128
	}
	return c
}

// servedStudy is one study's serving state. Extract readers take dataMu
// read-side; a refresh runs the study plan outside any lock, then takes
// dataMu write-side only for the warehouse merge — so reads stay
// snapshot-consistent without stalling behind plan execution.
type servedStudy struct {
	name      string
	spec      *etl.StudySpec
	schema    *relstore.Schema
	tableName string
	warehouse *relstore.DB

	// generation counts data-changing refreshes; extract results are
	// stamped with it, so a no-op refresh preserves cache hits.
	generation atomic.Int64

	// ready flips once an initial refresh has populated the warehouse.
	// Studies registered through AddStudyLazy start unready: their first
	// extract or refresh triggers compilation (and the plan-admission gate)
	// on demand.
	ready atomic.Bool

	// partGens is the per-contributor analogue: a delta refresh bumps only
	// the partitions it touched, so extracts pinned to one contributor are
	// stamped with that partition's generation and keep their cache entries
	// when only other contributors changed.
	partMu   sync.Mutex
	partGens map[string]*atomic.Int64

	refreshMu sync.Mutex   // serializes refreshes of this study
	dataMu    sync.RWMutex // extract readers vs merge writer

	statMu      sync.Mutex
	cursors     *etl.DeltaCursors // applied journal cursors; nil until a full refresh seeds them
	refreshes   int64
	lastStats   etl.RefreshStats
	lastRefresh time.Time
	lastErr     string
}

// partGen returns the generation counter for one contributor partition,
// creating it on first use.
func (st *servedStudy) partGen(name string) *atomic.Int64 {
	st.partMu.Lock()
	defer st.partMu.Unlock()
	g, ok := st.partGens[name]
	if !ok {
		g = new(atomic.Int64)
		st.partGens[name] = g
	}
	return g
}

// bumpAllPartitions advances every contributor partition — what a full
// refresh does, since it may have rewritten any of them.
func (st *servedStudy) bumpAllPartitions() {
	for _, c := range st.spec.Contributors {
		st.partGen(c.Name).Add(1)
	}
}

// extractGeneration picks the cache stamp for an extract: the partition
// generation when the query is pinned to a single contributor, the study
// generation otherwise. A partition-pinned extract depends only on that
// contributor's rows, so its cached body stays valid across deltas that
// changed other partitions.
func (st *servedStudy) extractGeneration(contributor string) int64 {
	if contributor == "" {
		return st.generation.Load()
	}
	return st.partGen(contributor).Load()
}

func (st *servedStudy) deltaCursors() *etl.DeltaCursors {
	st.statMu.Lock()
	defer st.statMu.Unlock()
	return st.cursors
}

func (st *servedStudy) setCursors(c *etl.DeltaCursors) {
	st.statMu.Lock()
	st.cursors = c
	st.statMu.Unlock()
}

// Server hosts a set of vetted studies behind the extract API.
type Server struct {
	cfg     Config
	plans   *planCache
	results *resultCache
	slots   chan struct{}
	start   time.Time

	mu      sync.RWMutex
	studies map[string]*servedStudy
	loops   bool // background refresh loops running

	loopStop chan struct{}
	loopWG   sync.WaitGroup

	httpSrv  *http.Server
	addr     atomic.Value // net.Addr
	draining atomic.Bool
}

// NewServer builds a Server from cfg. Studies are added with AddStudy;
// Start opens the listener and (when configured) the refresh loops.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		start:   time.Now(),
		studies: make(map[string]*servedStudy),
	}
	s.plans = newPlanCache(cfg.PlanCacheSize, s.metrics)
	s.results = newResultCache(cfg.ResultCacheSize)
	return s
}

// metrics returns the registry serve publishes into.
func (s *Server) metrics() *obs.Registry {
	if s.cfg.Observer != nil && s.cfg.Observer.Metrics != nil {
		return s.cfg.Observer.Metrics
	}
	return obs.Default
}

// observe threads the server's observer into ctx so spans and metrics from
// the etl layer land in the same place as serve's own.
func (s *Server) observe(ctx context.Context) context.Context {
	if s.cfg.Observer != nil {
		return obs.WithObserver(ctx, s.cfg.Observer)
	}
	return ctx
}

// AddStudy vets spec, compiles it through the plan cache (where the
// plan-level analyzer gates admission), and runs the initial warehouse
// refresh so the study is queryable the moment it is listed. A spec with vet
// errors or a GV21x-rejected plan is refused — the daemon serves only
// studies that pass the same static gates as the batch path.
func (s *Server) AddStudy(ctx context.Context, spec *etl.StudySpec) error {
	st, err := s.register(spec)
	if err != nil {
		return err
	}
	if _, err := s.refresh(ctx, st, "initial"); err != nil {
		s.mu.Lock()
		delete(s.studies, spec.Name)
		s.mu.Unlock()
		return fmt.Errorf("serve: initial refresh of %q: %w", spec.Name, err)
	}
	return nil
}

// AddStudyLazy registers spec without compiling or refreshing it: the study
// is listed immediately, and its first extract or refresh request compiles
// the plan through the cache — where a GV21x-rejected plan surfaces as HTTP
// 422 instead of a boot failure. Artifact-level vetting still runs eagerly;
// only the plan-level work is deferred.
func (s *Server) AddStudyLazy(spec *etl.StudySpec) error {
	_, err := s.register(spec)
	return err
}

// register performs the shared AddStudy/AddStudyLazy work: artifact vetting,
// schema derivation, and slotting the study into the serving map (plus its
// background refresh loop when the loops already run).
func (s *Server) register(spec *etl.StudySpec) (*servedStudy, error) {
	if rep := vet.Study(spec, nil, nil); rep.HasErrors() {
		return nil, fmt.Errorf("serve: study %q failed vetting:\n%s", spec.Name, rep.Text())
	}
	schema, err := spec.OutputSchema()
	if err != nil {
		return nil, err
	}
	st := &servedStudy{
		name:   spec.Name,
		spec:   spec,
		schema: schema,
		// The compiler's output name is deterministic, so lazy registration
		// can derive it without compiling.
		tableName: "Study_" + spec.Name,
		warehouse: relstore.NewDB("warehouse_" + spec.Name),
		partGens:  make(map[string]*atomic.Int64),
	}

	s.mu.Lock()
	if _, dup := s.studies[spec.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: study %q already registered", spec.Name)
	}
	s.studies[spec.Name] = st
	startLoop := s.loops
	stop := s.loopStop
	s.mu.Unlock()

	if startLoop {
		s.loopWG.Add(1)
		go s.refreshLoop(st, stop)
	}
	return st, nil
}

// ensureReady lazily brings an AddStudyLazy study online: the first request
// pays for compilation (running the plan-admission gate) and the initial
// refresh. Already-ready studies return immediately.
func (s *Server) ensureReady(ctx context.Context, st *servedStudy) error {
	if st.ready.Load() {
		return nil
	}
	_, err := s.refresh(ctx, st, "initial")
	return err
}

// study looks up a served study by name.
func (s *Server) study(name string) (*servedStudy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.studies[name]
	return st, ok
}

// StudyNames returns the served study names, sorted.
func (s *Server) StudyNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.studies))
	for n := range s.studies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the API routes; usable directly under httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("GET /healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("GET /metrics", s.handleMetrics))
	mux.Handle("GET /studies", s.instrument("GET /studies", s.handleStudies))
	mux.Handle("GET /studies/{name}/extract", s.instrument("GET /studies/{name}/extract", s.handleExtract))
	mux.Handle("POST /studies/{name}/refresh", s.instrument("POST /studies/{name}/refresh", s.handleRefresh))
	return mux
}

// Start listens on addr ("host:port", ":0" for ephemeral), serves the API
// in the background, and starts the refresh loops when RefreshInterval is
// positive. The bound address is available from Addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.addr.Store(ln.Addr())
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Printf("serve: %v\n", err)
		}
	}()
	s.StartRefreshLoops()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if a, ok := s.addr.Load().(net.Addr); ok {
		return a.String()
	}
	return ""
}

// StartRefreshLoops launches one background refresh goroutine per served
// study. A no-op when RefreshInterval <= 0 or the loops already run.
func (s *Server) StartRefreshLoops() {
	if s.cfg.RefreshInterval <= 0 {
		return
	}
	s.mu.Lock()
	if s.loops {
		s.mu.Unlock()
		return
	}
	s.loops = true
	s.loopStop = make(chan struct{})
	stop := s.loopStop
	studies := make([]*servedStudy, 0, len(s.studies))
	for _, st := range s.studies {
		studies = append(studies, st)
	}
	s.mu.Unlock()
	for _, st := range studies {
		s.loopWG.Add(1)
		go s.refreshLoop(st, stop)
	}
}

// stopRefreshLoops signals the loops and waits for them to exit.
func (s *Server) stopRefreshLoops() {
	s.mu.Lock()
	running := s.loops
	s.loops = false
	stop := s.loopStop
	s.mu.Unlock()
	if !running {
		return
	}
	close(stop)
	s.loopWG.Wait()
}

// Shutdown drains the server: mark draining (healthz flips to 503 so load
// balancers stop routing), stop the refresh loops, then let in-flight
// requests finish under ctx's deadline. Safe to call without Start (tests
// that mount Handler directly still get loop teardown).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopRefreshLoops()
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the response code for spans and error counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps a handler with the per-request span, deadline, and the
// serve.requests / serve.errors counters.
func (s *Server) instrument(pattern string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.metrics()
		m.Counter("serve.requests").Inc()
		ctx, cancel := context.WithTimeout(s.observe(r.Context()), s.cfg.RequestTimeout)
		defer cancel()
		ctx, span := obs.StartSpan(ctx, "http "+pattern, obs.String("path", r.URL.Path))
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		code := sw.status()
		span.SetAttr(obs.Int("status", int64(code)))
		if code >= 500 {
			m.Counter("serve.errors").Inc()
			span.EndErr(fmt.Errorf("HTTP %d", code))
		} else {
			span.End()
		}
	})
}

// writeJSON renders v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz answers liveness probes; 503 once draining so routing
// stops while in-flight work completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.mu.RLock()
	n := len(s.studies)
	s.mu.RUnlock()
	writeJSON(w, code, map[string]any{
		"status":   status,
		"studies":  n,
		"inflight": len(s.slots),
		"uptimeMs": time.Since(s.start).Milliseconds(),
	})
}

// handleMetrics exports the registry as JSONL, one sample per line — the
// same wire format obs.WriteMetrics uses on disk.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteMetrics(w, s.metrics())
}

// studyInfo is one /studies listing entry.
type studyInfo struct {
	Name        string       `json:"name"`
	Generation  int64        `json:"generation"`
	Rows        int          `json:"rows"`
	Columns     []columnInfo `json:"columns"`
	Refreshes   int64        `json:"refreshes"`
	LastRefresh string       `json:"lastRefresh,omitempty"`
	LastStats   *statsJSON   `json:"lastStats,omitempty"`
	LastError   string       `json:"lastError,omitempty"`
}

type columnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type statsJSON struct {
	Total     int `json:"total"`
	Added     int `json:"added"`
	Updated   int `json:"updated"`
	Unchanged int `json:"unchanged"`
}

func columnInfos(schema *relstore.Schema) []columnInfo {
	cols := make([]columnInfo, 0, len(schema.Columns))
	for _, c := range schema.Columns {
		cols = append(cols, columnInfo{Name: c.Name, Kind: c.Type.String()})
	}
	return cols
}

// handleStudies lists every served study with its serving state.
func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	var infos []studyInfo
	for _, name := range s.StudyNames() {
		st, ok := s.study(name)
		if !ok {
			continue
		}
		info := studyInfo{
			Name:       st.name,
			Generation: st.generation.Load(),
			Columns:    columnInfos(st.schema),
		}
		st.dataMu.RLock()
		if table, err := st.warehouse.Table(st.tableName); err == nil {
			info.Rows = table.Len()
		}
		st.dataMu.RUnlock()
		st.statMu.Lock()
		info.Refreshes = st.refreshes
		if !st.lastRefresh.IsZero() {
			info.LastRefresh = st.lastRefresh.UTC().Format(time.RFC3339)
			stats := st.lastStats
			info.LastStats = &statsJSON{Total: stats.Total, Added: stats.Added, Updated: stats.Updated, Unchanged: stats.Unchanged}
		}
		info.LastError = st.lastErr
		st.statMu.Unlock()
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"studies": infos})
}

// handleExtract serves filtered, paginated study rows. Admission is a
// non-blocking semaphore acquire: a saturated server answers 429
// immediately instead of queueing unbounded work.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	m := s.metrics()
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	default:
		m.Counter("serve.rejected").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "server saturated: %d extracts in flight", cap(s.slots))
		return
	}
	g := m.Gauge("serve.inflight")
	g.Add(1)
	defer g.Add(-1)
	began := time.Now()
	defer func() {
		m.Histogram("serve.extract.latency_ms").Observe(float64(time.Since(began).Microseconds()) / 1000)
	}()

	st, ok := s.study(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no study %q", r.PathValue("name"))
		return
	}
	if err := s.ensureReady(r.Context(), st); err != nil {
		var rej *plancheck.RejectionError
		if errors.As(err, &rej) {
			m.Counter("serve.plan.rejected.requests").Inc()
			httpError(w, http.StatusUnprocessableEntity,
				"study %q plan rejected by static analysis:\n%s", st.name, rej.Report.Text())
			return
		}
		httpError(w, http.StatusInternalServerError, "study %q not ready: %v", st.name, err)
		return
	}
	query, err := parseExtractQuery(st.schema, r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Read the generation before touching data: if a refresh lands
	// between here and the read below, the body is cached under the old
	// stamp and simply re-renders next time — stale data is never served
	// as current. Contributor-pinned queries stamp with the partition
	// generation so unrelated deltas don't evict them.
	gen := st.extractGeneration(query.contributor)
	cacheKey := st.name + "?" + query.key
	if body, ok := s.results.get(cacheKey, gen); ok {
		m.Counter("serve.extract.cache.hit").Inc()
		w.Header().Set("X-Guava-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	m.Counter("serve.extract.cache.miss").Inc()

	if err := r.Context().Err(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "request deadline exceeded")
		return
	}

	st.dataMu.RLock()
	table, err := st.warehouse.Table(st.tableName)
	var rows *relstore.Rows
	if err == nil {
		rows, err = table.Select(query.pred)
	}
	st.dataMu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "extract failed: %v", err)
		return
	}
	// Deterministic pagination: the same all-column order the batch path
	// uses for study output.
	rows, err = relstore.SortBy(rows, rows.Schema.Names()...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "extract sort failed: %v", err)
		return
	}

	total := rows.Len()
	lo := min(query.offset, total)
	hi := min(lo+query.limit, total)
	page := make([][]any, 0, hi-lo)
	for _, row := range rows.Data[lo:hi] {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = valueJSON(v)
		}
		page = append(page, cells)
	}
	body, err := json.Marshal(map[string]any{
		"study":      st.name,
		"generation": gen,
		"total":      total,
		"offset":     query.offset,
		"limit":      query.limit,
		"returned":   hi - lo,
		"columns":    columnInfos(st.schema),
		"rows":       page,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "render failed: %v", err)
		return
	}
	body = append(body, '\n')
	evicted := s.results.put(cacheKey, gen, body)
	m.Counter("serve.extract.cache.evicted").Add(int64(evicted))

	w.Header().Set("X-Guava-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handleRefresh forces a refresh of one study and reports the merge stats.
// ?mode=delta runs the incremental path from the contributors' change
// journals; the default (or ?mode=full) re-runs the whole plan.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	st, ok := s.study(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no study %q", r.PathValue("name"))
		return
	}
	mode := r.URL.Query().Get("mode")
	var stats etl.RefreshStats
	var err error
	switch mode {
	case "", "full":
		mode = "full"
		s.metrics().Counter("serve.refresh.forced").Inc()
		stats, err = s.refresh(r.Context(), st, "forced")
	case "delta":
		if !deltaCapable(st.spec) {
			httpError(w, http.StatusConflict, "study %q is not delta-capable: a contributor has no change journal", st.name)
			return
		}
		s.metrics().Counter("serve.refresh.forced").Inc()
		stats, err = s.refreshDelta(r.Context(), st, "forced")
	default:
		httpError(w, http.StatusBadRequest, "unknown refresh mode %q (want full or delta)", mode)
		return
	}
	if err != nil {
		var rej *plancheck.RejectionError
		if errors.As(err, &rej) {
			s.metrics().Counter("serve.plan.rejected.requests").Inc()
			httpError(w, http.StatusUnprocessableEntity,
				"study %q plan rejected by static analysis:\n%s", st.name, rej.Report.Text())
			return
		}
		httpError(w, http.StatusInternalServerError, "refresh failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"study":      st.name,
		"mode":       mode,
		"generation": st.generation.Load(),
		"changed":    stats.Changed(),
		"stats":      statsJSON{Total: stats.Total, Added: stats.Added, Updated: stats.Updated, Unchanged: stats.Unchanged},
	})
}
