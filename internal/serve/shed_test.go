package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHealthzLiveVsReady: the split probes diverge under drain — liveness
// stays 200 (the process is up) while readiness flips to 503 so load
// balancers stop routing. The legacy combined /healthz keeps its old 503
// drain behavior for existing probes.
func TestHealthzLiveVsReady(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{})
	if code, _, body := get(t, ts.URL+"/healthz/live"); code != http.StatusOK || body["status"] != "alive" {
		t.Fatalf("live = %d %v", code, body)
	}
	if code, _, body := get(t, ts.URL+"/healthz/ready"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("ready = %d %v", code, body)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, _, body := get(t, ts.URL+"/healthz/live"); code != http.StatusOK {
		t.Errorf("live while draining = %d %v, want 200", code, body)
	}
	if code, _, body := get(t, ts.URL+"/healthz/ready"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("ready while draining = %d %v, want 503 draining", code, body)
	}
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("legacy healthz while draining = %d, want 503", code)
	}
}

// TestHealthzReadyLazyStudy: a lazily registered study starts unready, so
// the readiness probe refuses traffic until its first request compiles it.
func TestHealthzReadyLazyStudy(t *testing.T) {
	spec := fixtureSpec(t, goodHabits)
	srv := NewServer(Config{})
	if err := srv.AddStudyLazy(spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	code, _, body := get(t, ts.URL+"/healthz/ready")
	if code != http.StatusServiceUnavailable || body["status"] != "not-ready" || body["unready"].(float64) != 1 {
		t.Fatalf("ready with lazy study = %d %v, want 503 not-ready unready=1", code, body)
	}
	if code, _, _ := get(t, ts.URL+"/studies/exsmoker/extract"); code != http.StatusOK {
		t.Fatalf("first extract = %d", code)
	}
	if code, _, body := get(t, ts.URL+"/healthz/ready"); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("ready after first extract = %d %v, want 200", code, body)
	}
}

// TestPerStudyAdmissionShed: a saturated study sheds its cache misses with
// 429 + Retry-After while cached extracts keep flowing through the
// priority lane — they never touch an admission slot.
func TestPerStudyAdmissionShed(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{MaxInFlight: 64, MaxPerStudy: 1})
	get(t, ts.URL+"/studies/exsmoker/extract") // prime one cached body

	st, _ := srv.study("exsmoker")
	st.slots <- struct{}{} // saturate the study

	code, hdr, body := get(t, ts.URL+"/studies/exsmoker/extract?limit=7")
	if code != http.StatusTooManyRequests {
		t.Fatalf("miss on saturated study = %d %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", hdr.Get("Retry-After"))
	}
	if got := srv.metrics().Counter("serve.shed.study").Value(); got != 1 {
		t.Errorf("serve.shed.study = %d, want 1", got)
	}
	if code, hdr, _ := get(t, ts.URL+"/studies/exsmoker/extract"); code != http.StatusOK || hdr.Get("X-Guava-Cache") != "hit" {
		t.Errorf("cached extract on saturated study = %d cache=%q, want 200 hit", code, hdr.Get("X-Guava-Cache"))
	}

	<-st.slots
	if code, _, _ := get(t, ts.URL+"/studies/exsmoker/extract?limit=7"); code != http.StatusOK {
		t.Errorf("extract after study slot freed = %d", code)
	}
}

// TestBrownoutShedsMissesServesHits: once refreshes fail BrownoutAfter
// times in a row, cache misses are shed 503 while cached extracts stay
// alive; a successful refresh lifts the brownout.
func TestBrownoutShedsMissesServesHits(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{BrownoutAfter: 2})
	get(t, ts.URL+"/studies/exsmoker/extract") // prime one cached body

	st, _ := srv.study("exsmoker")
	st.consecFails.Store(2)

	code, hdr, body := get(t, ts.URL+"/studies/exsmoker/extract?limit=7")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("miss under brownout = %d %v, want 503", code, body)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want 2", hdr.Get("Retry-After"))
	}
	if got := srv.metrics().Counter("serve.shed.brownout").Value(); got != 1 {
		t.Errorf("serve.shed.brownout = %d, want 1", got)
	}
	if code, hdr, _ := get(t, ts.URL+"/studies/exsmoker/extract"); code != http.StatusOK || hdr.Get("X-Guava-Cache") != "hit" {
		t.Errorf("cached extract under brownout = %d cache=%q, want 200 hit", code, hdr.Get("X-Guava-Cache"))
	}

	// A successful forced refresh resets the failure streak.
	if code, _ := post(t, ts.URL+"/studies/exsmoker/refresh"); code != http.StatusOK {
		t.Fatalf("refresh = %d", code)
	}
	if code, _, _ := get(t, ts.URL+"/studies/exsmoker/extract?limit=7"); code != http.StatusOK {
		t.Errorf("extract after brownout lifted = %d", code)
	}
}

// TestDeadlineShed: a request whose context is already dead is shed with
// 503 before any table work runs.
func TestDeadlineShed(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/studies/exsmoker/extract?limit=3", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired-deadline extract = %d %s, want 503", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", rec.Header().Get("Retry-After"))
	}
	if got := srv.metrics().Counter("serve.shed.deadline").Value(); got != 1 {
		t.Errorf("serve.shed.deadline = %d, want 1", got)
	}
}
