package serve

import (
	"context"
	"fmt"
	"time"

	"guava/internal/etl"
	"guava/internal/obs"
)

// The serving daemon's background cadence is where incremental refresh pays
// off: instead of re-running every study's full plan on every tick, the loop
// polls each contributor journal's high-water mark (an O(1) read), skips
// studies whose warehouses are already current, and refreshes dirty ones
// from the delta alone. Cache invalidation is partitioned to match: a delta
// that touched only contributor X bumps X's partition generation, so
// extracts pinned to other contributors keep their cached bodies.

// deltaCapable reports whether every contributor of the spec exposes a
// change journal — the precondition for etl.RefreshDelta.
func deltaCapable(spec *etl.StudySpec) bool {
	if len(spec.Contributors) == 0 {
		return false
	}
	for _, c := range spec.Contributors {
		if c.DeltaSource() == nil {
			return false
		}
	}
	return true
}

// studyDirty reports whether any contributor journal has advanced past the
// study's applied cursors — without reading a single changed key.
func studyDirty(spec *etl.StudySpec, cursors *etl.DeltaCursors) (bool, error) {
	for _, c := range spec.Contributors {
		src := c.DeltaSource()
		if src == nil {
			return true, nil
		}
		hwm, err := src.HighWaterMark()
		if err != nil {
			return true, err
		}
		if hwm != cursors.Get(c.Name) {
			return true, nil
		}
	}
	return false, nil
}

// refreshDelta refreshes one study from its contributors' change journals.
// The recompute (journal scan, keyed re-extract, re-classification) runs
// outside the data lock; only each contributor's warehouse patch holds
// dataMu write-side, via the delta hooks — so concurrent extracts keep
// reading between partition patches and each patch is atomic to them.
func (s *Server) refreshDelta(ctx context.Context, st *servedStudy, kind string) (etl.RefreshStats, error) {
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()

	ctx = s.observe(ctx)
	ctx, span := obs.StartSpan(ctx, "serve.refresh-delta "+st.name,
		obs.String("study", st.name), obs.String("kind", kind))
	var stats etl.RefreshStats
	var err error
	defer func() {
		span.EndErr(err)
		st.statMu.Lock()
		st.refreshes++
		st.lastRefresh = time.Now()
		if err != nil {
			st.lastErr = err.Error()
		} else {
			st.lastStats = stats
			st.lastErr = ""
		}
		st.statMu.Unlock()
	}()

	cursors := st.deltaCursors()
	if cursors == nil {
		err = fmt.Errorf("serve: study %q has no delta cursors (needs a full refresh first)", st.name)
		return stats, err
	}
	compiled, perr := s.plans.get(st.spec)
	if perr != nil {
		err = perr
		return stats, err
	}

	// RefreshDelta drives contributors sequentially, so a plain flag is
	// enough to pair the lock hooks and to release on an error between them.
	locked := false
	unlock := func() {
		if locked {
			st.dataMu.Unlock()
			locked = false
		}
	}
	defer unlock()
	report, rerr := compiled.RefreshDelta(ctx, st.warehouse, etl.DeltaOptions{
		Cursors: cursors,
		Hooks: etl.DeltaHooks{
			BeforeApply: func(string) error { st.dataMu.Lock(); locked = true; return nil },
			AfterApply:  func(string) error { unlock(); return nil },
		},
	})
	unlock()
	if rerr != nil {
		err = rerr
		return stats, err
	}
	stats = report.Stats

	changed := false
	for name, cs := range report.ByContributor {
		if cs.Changed() {
			st.partGen(name).Add(1)
			changed = true
		}
	}
	if changed {
		st.generation.Add(1)
	}
	s.metrics().Counter("serve.refresh.delta").Inc()
	span.SetAttr(obs.Int("keys", int64(report.Keys)), obs.Int("added", int64(stats.Added)),
		obs.Int("updated", int64(stats.Updated)), obs.Int("generation", st.generation.Load()))
	return stats, nil
}

// refreshAuto is the background loop's policy: full refresh for studies
// without journals, nothing for clean studies, delta for dirty ones, full
// as the fallback when the delta path fails.
func (s *Server) refreshAuto(ctx context.Context, st *servedStudy, kind string) {
	cursors := st.deltaCursors()
	if cursors == nil || !deltaCapable(st.spec) {
		_, _ = s.refresh(ctx, st, kind)
		return
	}
	if dirty, err := studyDirty(st.spec, cursors); err == nil && !dirty {
		s.metrics().Counter("serve.refresh.clean").Inc()
		return
	}
	if _, err := s.refreshDelta(ctx, st, kind); err != nil {
		s.metrics().Counter("serve.refresh.delta.fallback").Inc()
		_, _ = s.refresh(ctx, st, kind)
	}
}
