package serve

import (
	"context"
	"fmt"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/relstore"
)

// The serving daemon's background cadence is where incremental refresh pays
// off: instead of re-running every study's full plan on every tick, the loop
// polls each contributor journal's high-water mark (an O(1) read), skips
// studies whose warehouses are already current, and refreshes dirty ones
// from the delta alone. Cache invalidation is partitioned to match: a delta
// that touched only contributor X bumps X's partition generation, so
// extracts pinned to other contributors keep their cached bodies.

// deltaCapable reports whether every contributor of the spec exposes a
// change journal — the precondition for etl.RefreshDelta.
func deltaCapable(spec *etl.StudySpec) bool {
	if len(spec.Contributors) == 0 {
		return false
	}
	for _, c := range spec.Contributors {
		if c.DeltaSource() == nil {
			return false
		}
	}
	return true
}

// studyDirty reports whether any contributor journal has advanced past the
// study's applied cursors — without reading a single changed key.
func studyDirty(spec *etl.StudySpec, cursors *etl.DeltaCursors) (bool, error) {
	for _, c := range spec.Contributors {
		src := c.DeltaSource()
		if src == nil {
			return true, nil
		}
		hwm, err := src.HighWaterMark()
		if err != nil {
			return true, err
		}
		if hwm != cursors.Get(c.Name) {
			return true, nil
		}
	}
	return false, nil
}

// refreshDelta refreshes one study from its contributors' change journals.
// The whole delta — journal scan, keyed re-extract, warehouse patch — is
// applied to a private copy of the current generation's table, then
// published with one pointer swap. Concurrent extracts keep reading the
// pinned previous generation throughout; no reader ever observes a
// partially-patched partition.
func (s *Server) refreshDelta(ctx context.Context, st *servedStudy, kind string) (etl.RefreshStats, error) {
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()

	ctx = s.observe(ctx)
	ctx, span := obs.StartSpan(ctx, "serve.refresh-delta "+st.name,
		obs.String("study", st.name), obs.String("kind", kind))
	var stats etl.RefreshStats
	var err error
	defer func() {
		span.EndErr(err)
		st.noteRefresh(err)
	}()

	cur := st.cur.Load()
	if cur == nil || cur.cursors == nil {
		err = fmt.Errorf("serve: study %q has no delta cursors (needs a full refresh first)", st.name)
		return stats, err
	}
	compiled, perr := s.plans.get(st.spec)
	if perr != nil {
		err = perr
		return stats, err
	}

	// Clone the cursors (the published generation's set stays frozen) and
	// stage the patch in a private warehouse holding a copy of the table.
	cursors := etl.NewDeltaCursors()
	for name, seq := range cur.cursors.Snapshot() {
		cursors.Set(name, seq)
	}
	staging := relstore.NewDB("warehouse_" + st.name)
	next, cerr := staging.CreateTable(st.tableName, cur.table.Schema())
	if cerr != nil {
		err = cerr
		return stats, err
	}
	_ = next.CreateIndex(etl.ContributorColumn)
	if ierr := next.InsertAll(cur.table.Rows().Data); ierr != nil {
		err = ierr
		return stats, err
	}

	report, rerr := compiled.RefreshDelta(ctx, staging, etl.DeltaOptions{Cursors: cursors})
	if rerr != nil {
		err = rerr
		return stats, err
	}
	stats = report.Stats

	var changedParts []string
	for name, cs := range report.ByContributor {
		if cs.Changed() {
			changedParts = append(changedParts, name)
		}
	}
	g := nextGeneration(st, cur, next, false, changedParts)
	g.cursors = cursors
	g.stats = stats
	s.persist(st, g, len(changedParts) > 0)
	s.publish(st, g)

	s.metrics().Counter("serve.refresh.delta").Inc()
	span.SetAttr(obs.Int("keys", int64(report.Keys)), obs.Int("added", int64(stats.Added)),
		obs.Int("updated", int64(stats.Updated)), obs.Int("generation", g.num))
	return stats, nil
}

// refreshAuto is the background loop's policy: full refresh for studies
// without journals, nothing for clean studies, delta for dirty ones, full
// as the fallback when the delta path fails.
func (s *Server) refreshAuto(ctx context.Context, st *servedStudy, kind string) {
	cur := st.cur.Load()
	if cur == nil || cur.cursors == nil || !deltaCapable(st.spec) {
		_, _ = s.refresh(ctx, st, kind)
		return
	}
	if dirty, err := studyDirty(st.spec, cur.cursors); err == nil && !dirty {
		s.metrics().Counter("serve.refresh.clean").Inc()
		return
	}
	if _, err := s.refreshDelta(ctx, st, kind); err != nil {
		s.metrics().Counter("serve.refresh.delta.fallback").Inc()
		_, _ = s.refresh(ctx, st, kind)
	}
}
