package serve

import (
	"sync"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/plancheck"
)

// planCache is the compiled-plan LRU. Each study spec compiles exactly once
// per cache residency: concurrent callers racing on a cold entry share one
// compilation through the entry's sync.Once, and a plan evicted under
// pressure simply recompiles on its next use. Compilation is pure (no
// contributor data is read), so cached plans never go stale — eviction
// exists only to bound memory when a daemon hosts many studies.
//
// Admission is gated by the plan-level dataflow analyzer: a plan that
// compiles but carries a GV21x error (dead operator, contradictory
// predicate, un-pivot misuse) is never cached — the *plancheck.RejectionError
// propagates to the caller, which the HTTP layer maps to 422.
type planCache struct {
	metrics func() *obs.Registry

	mu  sync.Mutex
	lru *lru[*planEntry]
}

type planEntry struct {
	once sync.Once
	c    *etl.Compiled
	err  error
}

func newPlanCache(capacity int, metrics func() *obs.Registry) *planCache {
	return &planCache{metrics: metrics, lru: newLRU[*planEntry](capacity)}
}

// get returns the compiled plan for spec, compiling and plan-checking it at
// most once per residency. Failed compilations and rejected plans are not
// cached: the entry is dropped so a later call (for example after the spec
// is fixed) can retry.
func (p *planCache) get(spec *etl.StudySpec) (*etl.Compiled, error) {
	m := p.metrics()
	p.mu.Lock()
	e, ok := p.lru.get(spec.Name)
	if ok {
		m.Counter("serve.plan.cache.hit").Inc()
	} else {
		m.Counter("serve.plan.cache.miss").Inc()
		e = &planEntry{}
		evicted := p.lru.put(spec.Name, e)
		m.Counter("serve.plan.cache.evicted").Add(int64(len(evicted)))
	}
	p.mu.Unlock()

	e.once.Do(func() {
		e.c, e.err = etl.Compile(spec)
		if e.err != nil {
			return
		}
		if gerr := plancheck.Gate(e.c, plancheck.Options{}); gerr != nil {
			m.Counter("serve.plan.rejected").Inc()
			e.c, e.err = nil, gerr
		}
	})
	if e.err != nil {
		p.mu.Lock()
		if cur, ok := p.lru.get(spec.Name); ok && cur == e {
			p.lru.remove(spec.Name)
		}
		p.mu.Unlock()
		return nil, e.err
	}
	return e.c, nil
}

// len reports how many plans are resident.
func (p *planCache) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.len()
}
