package serve

import (
	"sync"

	"guava/internal/etl"
	"guava/internal/obs"
)

// planCache is the compiled-plan LRU. Each study spec compiles exactly once
// per cache residency: concurrent callers racing on a cold entry share one
// compilation through the entry's sync.Once, and a plan evicted under
// pressure simply recompiles on its next use. Compilation is pure (no
// contributor data is read), so cached plans never go stale — eviction
// exists only to bound memory when a daemon hosts many studies.
type planCache struct {
	metrics func() *obs.Registry

	mu  sync.Mutex
	lru *lru[*planEntry]
}

type planEntry struct {
	once sync.Once
	c    *etl.Compiled
	err  error
}

func newPlanCache(capacity int, metrics func() *obs.Registry) *planCache {
	return &planCache{metrics: metrics, lru: newLRU[*planEntry](capacity)}
}

// get returns the compiled plan for spec, compiling it at most once per
// residency. Failed compilations are not cached: the entry is dropped so a
// later call (for example after the spec is fixed) can retry.
func (p *planCache) get(spec *etl.StudySpec) (*etl.Compiled, error) {
	m := p.metrics()
	p.mu.Lock()
	e, ok := p.lru.get(spec.Name)
	if ok {
		m.Counter("serve.plan.cache.hit").Inc()
	} else {
		m.Counter("serve.plan.cache.miss").Inc()
		e = &planEntry{}
		evicted := p.lru.put(spec.Name, e)
		m.Counter("serve.plan.cache.evicted").Add(int64(len(evicted)))
	}
	p.mu.Unlock()

	e.once.Do(func() { e.c, e.err = etl.Compile(spec) })
	if e.err != nil {
		p.mu.Lock()
		if cur, ok := p.lru.get(spec.Name); ok && cur == e {
			p.lru.remove(spec.Name)
		}
		p.mu.Unlock()
		return nil, e.err
	}
	return e.c, nil
}

// len reports how many plans are resident.
func (p *planCache) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.len()
}
