package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"guava/internal/etl"
	"guava/internal/relstore"
)

// Extract queries arrive as URL parameters and compile into relstore
// predicates, so filtering runs inside the table (with index pushdown for
// equality) instead of materializing the whole study per request:
//
//	GET /studies/reference/extract?Smoking_D3=Heavy            (equality)
//	GET /studies/reference/extract?EntityKey.ge=10&limit=50    (range + page)
//
// A parameter is <Column>=<value> for equality or <Column>.<op>=<value>
// with op one of eq, ne, lt, le, gt, ge. Values are coerced to the output
// column's declared kind; "limit" and "offset" page through the
// deterministic all-column sort order.
const (
	defaultLimit = 100
	maxLimit     = 10000
)

var cmpOps = map[string]relstore.CmpOp{
	"eq": relstore.CmpEq,
	"ne": relstore.CmpNe,
	"lt": relstore.CmpLt,
	"le": relstore.CmpLe,
	"gt": relstore.CmpGt,
	"ge": relstore.CmpGe,
}

// extractQuery is one parsed extract request.
type extractQuery struct {
	pred   relstore.Pred // nil = no filter
	limit  int
	offset int
	key    string // canonical cache key (sorted query encoding)
	// contributor is set when the query is pinned to exactly one
	// contributor partition (a single Contributor equality filter) — the
	// result is then cache-stamped with that partition's generation.
	contributor string
}

// parseExtractQuery validates the request parameters against the study's
// output schema and compiles the filter predicate.
func parseExtractQuery(schema *relstore.Schema, q url.Values) (*extractQuery, error) {
	out := &extractQuery{limit: defaultLimit, key: q.Encode()}
	var preds []relstore.Pred
	contribParams := 0
	for key, vals := range q {
		switch key {
		case "limit":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("limit must be a non-negative integer, got %q", vals[0])
			}
			out.limit = min(n, maxLimit)
			continue
		case "offset":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("offset must be a non-negative integer, got %q", vals[0])
			}
			out.offset = n
			continue
		}
		col, opName := key, "eq"
		if i := strings.LastIndex(key, "."); i >= 0 {
			col, opName = key[:i], key[i+1:]
		}
		op, ok := cmpOps[opName]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q in %q (want eq, ne, lt, le, gt, ge)", opName, key)
		}
		c, err := schema.Col(col)
		if err != nil {
			return nil, fmt.Errorf("unknown column %q (have %s)", col, schema.NameList())
		}
		if col == etl.ContributorColumn {
			contribParams++
			if contribParams == 1 && opName == "eq" && len(vals) == 1 {
				out.contributor = vals[0]
			} else {
				// Ranges or multiple Contributor filters span partitions;
				// fall back to the study-wide generation stamp.
				out.contributor = ""
			}
		}
		for _, raw := range vals {
			v, err := parseParamValue(raw, c.Type)
			if err != nil {
				return nil, fmt.Errorf("column %s: %v", col, err)
			}
			preds = append(preds, relstore.Cmp(op, relstore.Col(col), relstore.Lit(v)))
		}
	}
	if len(preds) > 0 {
		out.pred = relstore.And(preds...)
	}
	return out, nil
}

// parseParamValue coerces a raw query-string value to the column's kind.
func parseParamValue(raw string, kind relstore.Kind) (relstore.Value, error) {
	switch kind {
	case relstore.KindInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return relstore.Value{}, fmt.Errorf("%q is not an integer", raw)
		}
		return relstore.Int(n), nil
	case relstore.KindFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return relstore.Value{}, fmt.Errorf("%q is not a number", raw)
		}
		return relstore.Float(f), nil
	case relstore.KindBool:
		b, err := strconv.ParseBool(strings.ToLower(raw))
		if err != nil {
			return relstore.Value{}, fmt.Errorf("%q is not a boolean", raw)
		}
		return relstore.Bool(b), nil
	default:
		return relstore.Str(raw), nil
	}
}

// valueJSON renders one cell for the API: NULL as JSON null, everything
// else as its natural JSON scalar.
func valueJSON(v relstore.Value) any {
	switch v.Kind() {
	case relstore.KindInt:
		return v.AsInt()
	case relstore.KindFloat:
		return v.AsFloat()
	case relstore.KindString:
		return v.AsString()
	case relstore.KindBool:
		return v.AsBool()
	default:
		return nil
	}
}

// resultCache holds rendered extract bodies stamped with the study
// generation they were computed from. A refresh that changes the warehouse
// bumps the generation, which invalidates every cached extract for that
// study on its next lookup; a no-op refresh leaves the generation — and so
// the cache — intact.
type resultCache struct {
	mu  sync.Mutex
	lru *lru[*resultEntry]
}

type resultEntry struct {
	gen  int64
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{lru: newLRU[*resultEntry](capacity)}
}

// get returns the cached body for key if it was rendered at generation gen.
// A stale entry (older or newer generation) is dropped and reported as a
// miss.
func (c *resultCache) get(key string, gen int64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.lru.get(key)
	if !ok {
		return nil, false
	}
	if e.gen != gen {
		c.lru.remove(key)
		return nil, false
	}
	return e.body, true
}

// put stores body for key at generation gen and returns how many entries
// were evicted for capacity.
func (c *resultCache) put(key string, gen int64, body []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lru.put(key, &resultEntry{gen: gen, body: body}))
}
