package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/relstore"
)

// genStore is one study's crash-consistent generation store:
//
//	<WarehouseDir>/<study>/gen-<N>/table.rel   v2 segment file (CRC per segment)
//	<WarehouseDir>/<study>/gen-<N>/MANIFEST    checksummed metadata, written last
//
// The write protocol makes "complete" a single-file property: table.rel is
// written first (temp+fsync+rename), then the MANIFEST — which carries the
// table's SHA-256 — is written the same way. A generation directory without
// a valid MANIFEST, or whose table fails its recorded checksum, is torn by
// definition; a crash at any point leaves either a complete generation or
// a detectably-incomplete one, never a plausible half-write. Startup
// recovery walks gen-<N> dirs newest-first, serves the first complete one,
// and deletes the rest.
const genManifestVersion = "guava-gen v1"

// genManifest is the MANIFEST payload (JSON, checksummed by the header).
type genManifest struct {
	Gen       int64            `json:"gen"`
	Table     string           `json:"table"`
	TableSHA  string           `json:"tableSha256"`
	Rows      int              `json:"rows"`
	Refreshes int64            `json:"refreshes"`
	Cursors   map[string]int64 `json:"cursors,omitempty"`
	PartGens  map[string]int64 `json:"partGens,omitempty"`
	Stats     etl.RefreshStats `json:"stats"`
}

type genStore struct {
	fs      etl.FS
	root    string // <WarehouseDir>/<study>
	segRows int
	metrics func() *obs.Registry
	logf    func(format string, args ...any)
}

func newGenStore(fsys etl.FS, root string, segRows int, metrics func() *obs.Registry, logf func(string, ...any)) *genStore {
	if fsys == nil {
		fsys = etl.OSFS{}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &genStore{fs: fsys, root: root, segRows: segRows, metrics: metrics, logf: logf}
}

func (gs *genStore) genDir(num int64) string {
	return filepath.Join(gs.root, fmt.Sprintf("gen-%d", num))
}

// save persists g (table first, MANIFEST last) and sets g.dir on success.
func (gs *genStore) save(g *generation, refreshes int64) error {
	dir := gs.genDir(g.num)
	rows := g.table.Rows()
	var buf bytes.Buffer
	if err := relstore.WriteTypedSegmented(&buf, rows, gs.segRows); err != nil {
		return err
	}
	if err := etl.WriteFileAtomic(gs.fs, filepath.Join(dir, "table.rel"), buf.Bytes()); err != nil {
		return err
	}
	tableSum := sha256.Sum256(buf.Bytes())
	man := genManifest{
		Gen:       g.num,
		Table:     "table.rel",
		TableSHA:  hex.EncodeToString(tableSum[:]),
		Rows:      len(rows.Data),
		Refreshes: refreshes,
		PartGens:  g.partGens,
		Stats:     g.stats,
	}
	if g.cursors != nil {
		man.Cursors = g.cursors.Snapshot()
	}
	payload, err := json.Marshal(man)
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	sum := sha256.Sum256(payload)
	content := genManifestVersion + "\nsha256 " + hex.EncodeToString(sum[:]) + "\n" + string(payload)
	if err := etl.WriteFileAtomic(gs.fs, filepath.Join(dir, "MANIFEST"), []byte(content)); err != nil {
		return err
	}
	g.dir = dir
	return nil
}

// loadGen reads and fully validates one generation directory: MANIFEST
// header + checksum, then the table file against the manifest's SHA-256
// and row count. Any failure means the directory is torn.
func (gs *genStore) loadGen(dir string) (*genManifest, *relstore.Rows, error) {
	b, err := gs.fs.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, nil, fmt.Errorf("manifest unreadable: %w", err)
	}
	rest, ok := strings.CutPrefix(string(b), genManifestVersion+"\n")
	if !ok {
		return nil, nil, fmt.Errorf("manifest has bad or missing header")
	}
	sumLine, payload, ok := strings.Cut(rest, "\n")
	wantSum, ok2 := strings.CutPrefix(sumLine, "sha256 ")
	if !ok || !ok2 {
		return nil, nil, fmt.Errorf("manifest missing checksum line")
	}
	sum := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, nil, fmt.Errorf("manifest checksum mismatch (torn or corrupted write)")
	}
	var man genManifest
	if err := json.Unmarshal([]byte(payload), &man); err != nil {
		return nil, nil, fmt.Errorf("manifest payload: %w", err)
	}
	tb, err := gs.fs.ReadFile(filepath.Join(dir, man.Table))
	if err != nil {
		return nil, nil, fmt.Errorf("table unreadable: %w", err)
	}
	tableSum := sha256.Sum256(tb)
	if hex.EncodeToString(tableSum[:]) != man.TableSHA {
		return nil, nil, fmt.Errorf("table checksum mismatch (torn or corrupted write)")
	}
	rows, err := relstore.ReadTyped(bytes.NewReader(tb))
	if err != nil {
		return nil, nil, fmt.Errorf("table parse: %w", err)
	}
	if len(rows.Data) != man.Rows {
		return nil, nil, fmt.Errorf("table has %d rows, manifest says %d", len(rows.Data), man.Rows)
	}
	return &man, rows, nil
}

// recoveredGen is one successfully recovered generation.
type recoveredGen struct {
	man  *genManifest
	rows *relstore.Rows
	dir  string
}

// recover walks the store newest-first and returns the newest complete
// generation, or nil when none exists. Torn directories are counted,
// logged, and deleted; older complete directories are deleted too — once
// a generation is chosen, nothing else on disk is ever needed.
func (gs *genStore) recover() (*recoveredGen, error) {
	ents, err := gs.fs.ReadDir(gs.root)
	if err != nil {
		return nil, nil // no store yet: a fresh study
	}
	type cand struct {
		num int64
		dir string
	}
	var cands []cand
	for _, e := range ents {
		rest, ok := strings.CutPrefix(e.Name(), "gen-")
		if !ok || !e.IsDir() {
			continue
		}
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			continue
		}
		cands = append(cands, cand{num: n, dir: filepath.Join(gs.root, e.Name())})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].num > cands[j].num })
	var chosen *recoveredGen
	for _, c := range cands {
		if chosen != nil {
			// Older than the recovered generation: retire it.
			gs.metrics().Counter("serve.snapshot.gc").Inc()
			_ = gs.fs.RemoveAll(c.dir)
			continue
		}
		man, rows, lerr := gs.loadGen(c.dir)
		if lerr != nil {
			gs.metrics().Counter("serve.snapshot.torn").Inc()
			gs.logf("serve: discarded torn generation %d at %s: %v", c.num, c.dir, lerr)
			_ = gs.fs.RemoveAll(c.dir)
			continue
		}
		chosen = &recoveredGen{man: man, rows: rows, dir: c.dir}
	}
	if chosen != nil {
		gs.metrics().Counter("serve.snapshot.recovered").Inc()
	}
	return chosen, nil
}

// removeGen deletes one retired generation directory.
func (gs *genStore) removeGen(dir string) {
	gs.metrics().Counter("serve.snapshot.gc").Inc()
	_ = gs.fs.RemoveAll(dir)
}

// discardAll wipes the study's store — used when recovered state no longer
// matches the study's schema.
func (gs *genStore) discardAll() {
	_ = gs.fs.RemoveAll(gs.root)
}
