package serve

// lru is a minimal least-recently-used map shared by the compiled-plan and
// extract-result caches. It is NOT self-locking: each cache wraps it with
// its own mutex so get-or-create sequences stay atomic.
type lru[V any] struct {
	cap   int
	items map[string]V
	order []string // least-recent first
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{cap: capacity, items: make(map[string]V, capacity)}
}

// get returns the value for key and marks it most-recently used.
func (l *lru[V]) get(key string) (V, bool) {
	v, ok := l.items[key]
	if ok {
		l.touch(key)
	}
	return v, ok
}

// put inserts or replaces key, marks it most-recently used, and returns the
// keys evicted to stay within capacity.
func (l *lru[V]) put(key string, v V) []string {
	if _, ok := l.items[key]; !ok {
		l.order = append(l.order, key)
	}
	l.items[key] = v
	l.touch(key)
	var evicted []string
	for len(l.items) > l.cap {
		oldest := l.order[0]
		l.order = l.order[1:]
		delete(l.items, oldest)
		evicted = append(evicted, oldest)
	}
	return evicted
}

// remove deletes key if present.
func (l *lru[V]) remove(key string) {
	if _, ok := l.items[key]; !ok {
		return
	}
	delete(l.items, key)
	for i, k := range l.order {
		if k == key {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
}

// len reports the resident entry count.
func (l *lru[V]) len() int { return len(l.items) }

// touch moves key to the most-recently-used position.
func (l *lru[V]) touch(key string) {
	for i, k := range l.order {
		if k == key {
			copy(l.order[i:], l.order[i+1:])
			l.order[len(l.order)-1] = key
			return
		}
	}
}
