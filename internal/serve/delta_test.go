package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// journaledSpec is the fixture study with change journals on both
// contributor stacks, making it delta-capable end to end.
func journaledSpec(t *testing.T) *etl.StudySpec {
	t.Helper()
	spec := fixtureSpec(t, goodHabits)
	for _, c := range spec.Contributors {
		c.Stack.Journal = patterns.NewJournal()
	}
	return spec
}

// submitSurgical adds one new surgery record to a contributor, guaranteeing
// the next refresh has a real change to apply.
func submitSurgical(t *testing.T, c *etl.ContributorPlan, id int64) {
	t.Helper()
	if err := c.Stack.WriteValues(c.DB, c.Form, map[string]relstore.Value{
		"ProcedureID":      relstore.Int(id),
		"PacksPerDay":      relstore.Float(6),
		"Hypoxia":          relstore.Bool(true),
		"SurgeryPerformed": relstore.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
}

// post issues a POST and decodes the JSON body.
func post(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("POST %s: bad JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, body
}

// TestDeltaRefreshPartitionInvalidation drives ?mode=delta over HTTP and
// checks the partition-scoped cache contract: a delta that touched only
// clinicA invalidates clinicA-pinned and study-wide extracts but leaves
// clinicB-pinned extracts cached; an empty delta invalidates nothing at all.
func TestDeltaRefreshPartitionInvalidation(t *testing.T) {
	spec := journaledSpec(t)
	srv := NewServer(Config{Observer: obs.NewObserver()})
	if err := srv.AddStudy(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	queries := []string{"?Contributor=clinicA", "?Contributor=clinicB", ""}
	prime := func() {
		for _, q := range queries {
			get(t, ts.URL+"/studies/exsmoker/extract"+q)
		}
	}
	cacheState := func(q string) string {
		_, hdr, _ := get(t, ts.URL+"/studies/exsmoker/extract"+q)
		return hdr.Get("X-Guava-Cache")
	}
	prime()
	for _, q := range queries {
		if got := cacheState(q); got != "hit" {
			t.Fatalf("primed extract %q = %q, want hit", q, got)
		}
	}

	// A change in clinicA only: delta refresh must evict clinicA-pinned and
	// unpinned results, and must NOT evict the clinicB partition.
	submitSurgical(t, spec.Contributors[0], 100)
	code, body := post(t, ts.URL+"/studies/exsmoker/refresh?mode=delta")
	if code != http.StatusOK {
		t.Fatalf("delta refresh = %d %v", code, body)
	}
	if body["mode"] != "delta" || body["changed"] != true {
		t.Fatalf("delta refresh body = %v", body)
	}
	if gen := body["generation"].(float64); gen != 2 {
		t.Fatalf("generation after delta = %v, want 2", gen)
	}
	if got := cacheState("?Contributor=clinicB"); got != "hit" {
		t.Errorf("untouched partition after delta = %q, want hit", got)
	}
	if got := cacheState("?Contributor=clinicA"); got != "miss" {
		t.Errorf("changed partition after delta = %q, want miss", got)
	}
	if got := cacheState(""); got != "miss" {
		t.Errorf("study-wide extract after delta = %q, want miss", got)
	}

	// Empty delta: nothing recorded since. Generation must hold and every
	// re-rendered extract must still be served from cache.
	prime()
	code, body = post(t, ts.URL+"/studies/exsmoker/refresh?mode=delta")
	if code != http.StatusOK || body["changed"] != false {
		t.Fatalf("empty delta = %d %v, want changed=false", code, body)
	}
	if gen := body["generation"].(float64); gen != 2 {
		t.Fatalf("generation after empty delta = %v, want 2 (no bump)", gen)
	}
	for _, q := range queries {
		if got := cacheState(q); got != "hit" {
			t.Errorf("extract %q after empty delta = %q, want hit", q, got)
		}
	}
}

// TestDeltaRefreshModeValidation covers the HTTP edges: an unknown mode is
// a 400, and ?mode=delta against a study whose contributors keep no
// journals is a 409.
func TestDeltaRefreshModeValidation(t *testing.T) {
	_, _, ts := newTestServer(t, Config{}) // fixture without journals
	code, body := post(t, ts.URL+"/studies/exsmoker/refresh?mode=delta")
	if code != http.StatusConflict {
		t.Errorf("delta on journal-less study = %d %v, want 409", code, body)
	}
	code, body = post(t, ts.URL+"/studies/exsmoker/refresh?mode=sideways")
	if code != http.StatusBadRequest {
		t.Errorf("unknown mode = %d %v, want 400", code, body)
	}
	// The default mode still works and reports itself as full.
	code, body = post(t, ts.URL+"/studies/exsmoker/refresh")
	if code != http.StatusOK || body["mode"] != "full" {
		t.Errorf("default refresh = %d %v, want mode=full", code, body)
	}
}

// TestRefreshAutoPolicy exercises the background loop's decision ladder
// directly: clean studies are skipped without touching the warehouse, dirty
// ones go through the delta path, and losing a journal falls back to full.
func TestRefreshAutoPolicy(t *testing.T) {
	spec := journaledSpec(t)
	o := obs.NewObserver()
	srv := NewServer(Config{Observer: o})
	ctx := context.Background()
	if err := srv.AddStudy(ctx, spec); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.study("exsmoker")

	srv.refreshAuto(ctx, st, "background")
	if got := o.Metrics.Counter("serve.refresh.clean").Value(); got != 1 {
		t.Errorf("clean skips = %d, want 1", got)
	}
	if gen := testGen(st); gen != 1 {
		t.Errorf("generation after clean tick = %d, want 1", gen)
	}

	submitSurgical(t, spec.Contributors[0], 101)
	srv.refreshAuto(ctx, st, "background")
	if got := o.Metrics.Counter("serve.refresh.delta").Value(); got != 1 {
		t.Errorf("delta refreshes = %d, want 1", got)
	}
	if gen := testGen(st); gen != 2 {
		t.Errorf("generation after dirty tick = %d, want 2", gen)
	}

	// Journal removed: the study is no longer delta-capable; the loop must
	// degrade to a full refresh rather than stall.
	spec.Contributors[1].Stack.Journal = nil
	submitSurgical(t, spec.Contributors[0], 102)
	srv.refreshAuto(ctx, st, "background")
	if gen := testGen(st); gen != 3 {
		t.Errorf("generation after full fallback tick = %d, want 3", gen)
	}
}

// TestDeltaExtractRaceUntouchedPartition is the serving-path race test for
// incremental refresh: readers hammer a clinicB-pinned extract over HTTP
// while a writer keeps mutating clinicA and delta-refreshing in flight.
// Because no delta ever touches clinicB, every pinned read after priming
// must be a cache hit with the same stable body — under -race this also
// vouches for the hook-based locking in refreshDelta.
func TestDeltaExtractRaceUntouchedPartition(t *testing.T) {
	spec := journaledSpec(t)
	srv := NewServer(Config{Observer: obs.NewObserver(), MaxInFlight: 64})
	ctx := context.Background()
	if err := srv.AddStudy(ctx, spec); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.study("exsmoker")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	pinned := ts.URL + "/studies/exsmoker/extract?Contributor=clinicB"
	get(t, pinned) // prime the clinicB partition entry

	const (
		readers = 6
		reads   = 40
		writes  = 15
	)
	var wg sync.WaitGroup
	clinicA := spec.Contributors[0]

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := clinicA.Stack.WriteValues(clinicA.DB, clinicA.Form, map[string]relstore.Value{
				"ProcedureID":      relstore.Int(int64(200 + i)),
				"PacksPerDay":      relstore.Float(float64(i)),
				"Hypoxia":          relstore.Bool(i%2 == 0),
				"SurgeryPerformed": relstore.Bool(true),
			}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if _, err := srv.refreshDelta(ctx, st, "stress"); err != nil {
				t.Errorf("delta refresh: %v", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; j < reads; j++ {
				if r%2 == 0 {
					// Pinned readers: the partition never changes, so after
					// priming the cache can never go stale.
					code, hdr, body := get(t, pinned)
					if code != http.StatusOK {
						t.Errorf("pinned extract = %d", code)
						return
					}
					if hdr.Get("X-Guava-Cache") != "hit" {
						t.Errorf("pinned extract read %d = cache %q, want hit", j, hdr.Get("X-Guava-Cache"))
						return
					}
					if total := body["total"].(float64); total != 2 {
						t.Errorf("pinned extract total = %v, want 2", total)
						return
					}
				} else {
					// Unpinned readers race the refreshes for interleaving;
					// their total must be a complete snapshot, never torn.
					code, _, body := get(t, ts.URL+"/studies/exsmoker/extract?limit="+fmt.Sprint(100+j%3))
					if code != http.StatusOK {
						t.Errorf("extract = %d", code)
						return
					}
					total := int(body["total"].(float64))
					if total < 4 || total > 4+writes {
						t.Errorf("torn snapshot: total = %d", total)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if got := testPartGen(st, "clinicB"); got != 1 {
		t.Errorf("clinicB partition generation = %d, want 1 (never touched)", got)
	}
	if got := testPartGen(st, "clinicA"); got != int64(1+writes) {
		t.Errorf("clinicA partition generation = %d, want %d", got, 1+writes)
	}
	if _, hdr, _ := get(t, pinned); hdr.Get("X-Guava-Cache") != "hit" {
		t.Errorf("final pinned extract = %q, want hit", hdr.Get("X-Guava-Cache"))
	}
}
