package serve

import (
	"context"
	"fmt"
	"time"

	"guava/internal/etl"
	"guava/internal/obs"
	"guava/internal/relstore"
)

// refresh re-runs st's plan and builds the study's next generation
// side-by-side: a copy of the current table absorbs the merge, and only
// then does one atomic pointer swap publish it. Extract readers keep
// serving the pinned previous generation for the whole build — they never
// block on the plan, the merge, or the persist. The study generation
// advances only when the merge changed data, which is what keeps cached
// extracts valid across no-op refreshes (a no-op republishes under the
// same number, inheriting the on-disk directory).
func (s *Server) refresh(ctx context.Context, st *servedStudy, kind string) (etl.RefreshStats, error) {
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()

	ctx = s.observe(ctx)
	ctx, span := obs.StartSpan(ctx, "serve.refresh "+st.name,
		obs.String("study", st.name), obs.String("kind", kind))
	var stats etl.RefreshStats
	var err error
	defer func() {
		span.EndErr(err)
		st.noteRefresh(err)
	}()

	compiled, err := s.plans.get(st.spec)
	if err != nil {
		return stats, err
	}
	// Seed delta cursors BEFORE running the plan: a journal entry landing
	// while the plan executes then stays below the cursor and is picked up
	// by the next delta (re-applying anything the plan already saw is
	// idempotent). Seeding after the run would silently skip it.
	var cursors *etl.DeltaCursors
	if deltaCapable(st.spec) {
		cursors = etl.NewDeltaCursors()
		if serr := compiled.SeedDeltaCursors(cursors); serr != nil {
			cursors = nil
		}
	}
	fresh, runReport, rerr := compiled.RunResilient(ctx, s.cfg.Policy, 0)
	if rerr != nil {
		err = rerr
		return stats, err
	}

	cur := st.cur.Load()
	next, berr := cloneForMerge(st, cur, fresh.Schema)
	if berr != nil {
		err = berr
		return stats, err
	}
	stats, err = etl.Merge(next, fresh, runReport.DegradedContributors...)
	if err != nil {
		return stats, err
	}

	g := nextGeneration(st, cur, next, stats.Changed(), nil)
	if cursors != nil {
		g.cursors = cursors
	}
	g.stats = stats
	s.persist(st, g, stats.Changed())
	s.publish(st, g)

	m := s.metrics()
	m.Counter("refresh.runs").Inc()
	m.Counter("refresh.added").Add(int64(stats.Added))
	m.Counter("refresh.updated").Add(int64(stats.Updated))
	m.Counter("refresh.unchanged").Add(int64(stats.Unchanged))
	span.SetAttr(obs.Int("added", int64(stats.Added)), obs.Int("updated", int64(stats.Updated)),
		obs.Int("unchanged", int64(stats.Unchanged)), obs.Int("generation", g.num))
	return stats, nil
}

// cloneForMerge builds the next generation's table: an indexed copy of the
// current one (empty for the first refresh). The copy is what makes the
// swap safe — the published table is never mutated.
func cloneForMerge(st *servedStudy, cur *generation, schema *relstore.Schema) (*relstore.Table, error) {
	if cur != nil {
		if !cur.table.Schema().Equal(schema) {
			return nil, fmt.Errorf("serve: study %q refresh produced a different schema", st.name)
		}
		schema = cur.table.Schema()
	}
	next := relstore.NewTable(st.tableName, schema)
	_ = next.CreateIndex(etl.ContributorColumn)
	if cur != nil {
		if err := next.InsertAll(cur.table.Rows().Data); err != nil {
			return nil, err
		}
	}
	return next, nil
}

// nextGeneration assembles the successor generation object. A full refresh
// that changed data advances the study number and every partition; a delta
// advances only changedParts. An unchanged build keeps the number and
// inherits the previous on-disk directory — same data, still recoverable.
func nextGeneration(st *servedStudy, cur *generation, table *relstore.Table, changedAll bool, changedParts []string) *generation {
	g := &generation{table: table, partGens: map[string]int64{}, owner: st}
	if cur != nil {
		g.num = cur.num
		g.cursors = cur.cursors
		for k, v := range cur.partGens {
			g.partGens[k] = v
		}
	}
	switch {
	case changedAll:
		g.num++
		for _, c := range st.spec.Contributors {
			g.partGens[c.Name]++
		}
	case len(changedParts) > 0:
		g.num++
		for _, name := range changedParts {
			g.partGens[name]++
		}
	default:
		if cur != nil {
			g.dir = cur.dir
		}
	}
	return g
}

// persist durably saves a data-changing generation. A failed save is
// logged and counted but does not fail the refresh: the in-memory swap
// still happens, and the previous on-disk generation survives as the last
// complete one (collect() keeps it while the current generation has no
// directory of its own).
func (s *Server) persist(st *servedStudy, g *generation, changed bool) {
	if st.store == nil || (!changed && g.dir != "") {
		return
	}
	if !changed && g.num == 0 {
		return // nothing ever changed and nothing is on disk: no state worth saving
	}
	if err := st.store.save(g, st.refreshes.Load()+1); err != nil {
		s.metrics().Counter("serve.snapshot.persist.errors").Inc()
		s.logf("serve: study %q failed to persist generation %d: %v", st.name, g.num, err)
		return
	}
	s.metrics().Counter("serve.snapshot.persist").Inc()
}

// refreshLoop periodically refreshes one study until stop closes. Errors
// are recorded on the study (visible in /studies as lastError) and the
// loop keeps going — a transiently failing contributor must not kill the
// refresh cadence.
func (s *Server) refreshLoop(st *servedStudy, stop <-chan struct{}) {
	defer s.loopWG.Done()
	tick := time.NewTicker(s.cfg.RefreshInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.metrics().Counter("serve.refresh.background").Inc()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
			s.refreshAuto(ctx, st, "background")
			cancel()
		}
	}
}
