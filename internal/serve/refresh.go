package serve

import (
	"context"
	"time"

	"guava/internal/etl"
	"guava/internal/obs"
)

// refresh re-runs st's plan and merges the output into its warehouse
// table. Refreshes of one study are serialized (refreshMu); the expensive
// part — executing the plan — runs outside the data lock, so concurrent
// extracts keep reading the previous snapshot and only block for the merge
// itself. The study generation advances only when the merge changed data,
// which is what keeps cached extracts valid across no-op refreshes.
func (s *Server) refresh(ctx context.Context, st *servedStudy, kind string) (etl.RefreshStats, error) {
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()

	ctx = s.observe(ctx)
	ctx, span := obs.StartSpan(ctx, "serve.refresh "+st.name,
		obs.String("study", st.name), obs.String("kind", kind))
	var stats etl.RefreshStats
	var err error
	defer func() {
		span.EndErr(err)
		st.statMu.Lock()
		st.refreshes++
		st.lastRefresh = time.Now()
		if err != nil {
			st.lastErr = err.Error()
		} else {
			st.lastStats = stats
			st.lastErr = ""
		}
		st.statMu.Unlock()
	}()

	compiled, err := s.plans.get(st.spec)
	if err != nil {
		return stats, err
	}
	// Seed delta cursors BEFORE running the plan: a journal entry landing
	// while the plan executes then stays below the cursor and is picked up
	// by the next delta (re-applying anything the plan already saw is
	// idempotent). Seeding after the run would silently skip it.
	var cursors *etl.DeltaCursors
	if deltaCapable(st.spec) {
		cursors = etl.NewDeltaCursors()
		if serr := compiled.SeedDeltaCursors(cursors); serr != nil {
			cursors = nil
		}
	}
	fresh, runReport, err := compiled.RunResilient(ctx, s.cfg.Policy, 0)
	if err != nil {
		return stats, err
	}

	st.dataMu.Lock()
	table, merr := st.warehouse.EnsureTable(st.tableName, fresh.Schema)
	if merr == nil {
		if !table.HasIndex(etl.ContributorColumn) {
			_ = table.CreateIndex(etl.ContributorColumn)
		}
		stats, merr = etl.Merge(table, fresh, runReport.DegradedContributors...)
	}
	st.dataMu.Unlock()
	if err = merr; err != nil {
		return stats, err
	}

	if stats.Changed() {
		st.generation.Add(1)
		st.bumpAllPartitions()
	}
	if cursors != nil {
		st.setCursors(cursors)
	}
	st.ready.Store(true)
	m := s.metrics()
	m.Counter("refresh.runs").Inc()
	m.Counter("refresh.added").Add(int64(stats.Added))
	m.Counter("refresh.updated").Add(int64(stats.Updated))
	m.Counter("refresh.unchanged").Add(int64(stats.Unchanged))
	span.SetAttr(obs.Int("added", int64(stats.Added)), obs.Int("updated", int64(stats.Updated)),
		obs.Int("unchanged", int64(stats.Unchanged)), obs.Int("generation", st.generation.Load()))
	return stats, nil
}

// refreshLoop periodically refreshes one study until stop closes. Errors
// are recorded on the study (visible in /studies as lastError) and the
// loop keeps going — a transiently failing contributor must not kill the
// refresh cadence.
func (s *Server) refreshLoop(st *servedStudy, stop <-chan struct{}) {
	defer s.loopWG.Done()
	tick := time.NewTicker(s.cfg.RefreshInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.metrics().Counter("serve.refresh.background").Inc()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
			s.refreshAuto(ctx, st, "background")
			cancel()
		}
	}
}
