package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"guava/internal/obs"
	"guava/internal/relstore"
)

// testGen reads a study's current generation number (0 when none yet).
func testGen(st *servedStudy) int64 {
	if g := st.cur.Load(); g != nil {
		return g.num
	}
	return 0
}

// testPartGen reads one partition's generation from the current snapshot.
func testPartGen(st *servedStudy, contributor string) int64 {
	if g := st.cur.Load(); g != nil {
		return g.partGens[contributor]
	}
	return 0
}

// TestExtractRefreshRace runs concurrent extract readers against a writer
// forcing data-changing refreshes on the same study — the shape the race
// detector needs to vouch for the serving path. Every extract must see a
// complete snapshot: a total that is one of the sizes the warehouse
// actually passes through, never a torn in-between count, and a body whose
// row count matches its own header.
func TestExtractRefreshRace(t *testing.T) {
	spec := fixtureSpec(t, goodHabits)
	srv := NewServer(Config{Observer: obs.NewObserver(), MaxInFlight: 64})
	if err := srv.AddStudy(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.study("exsmoker")

	const (
		readers  = 8
		reads    = 50
		writes   = 20
		baseRows = 4
	)
	valid := make(map[int]bool, writes+1)
	for i := 0; i <= writes; i++ {
		valid[baseRows+i] = true
	}

	var wg sync.WaitGroup
	clinicA := spec.Contributors[0]

	// Writer: submit a new surgical report, then refresh, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := clinicA.Stack.WriteValues(clinicA.DB, clinicA.Form, map[string]relstore.Value{
				"ProcedureID":      relstore.Int(int64(100 + i)),
				"PacksPerDay":      relstore.Float(float64(i)),
				"Hypoxia":          relstore.Bool(i%2 == 0),
				"SurgeryPerformed": relstore.Bool(true),
			}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if _, err := srv.refresh(context.Background(), st, "stress"); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()

	// Readers: extract through the real predicate + snapshot path. Vary
	// the query so some requests miss the result cache and read the table.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; j < reads; j++ {
				query, err := parseExtractQuery(st.schema, map[string][]string{
					"limit": {fmt.Sprint(100 + j%3)},
				})
				if err != nil {
					t.Errorf("parse: %v", err)
					return
				}
				g := st.pin()
				if g == nil {
					t.Error("pin returned nil on a ready study")
					return
				}
				rows, err := g.table.Select(query.pred)
				// The pinned snapshot must be internally consistent: its
				// row count matches its own stamped generation.
				wantRows := baseRows + int(g.num) - 1
				g.unpin()
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				if !valid[rows.Len()] {
					t.Errorf("torn snapshot: %d rows", rows.Len())
					return
				}
				if rows.Len() != wantRows {
					t.Errorf("mixed-generation read: %d rows at generation %d (want %d)", rows.Len(), wantRows+1-baseRows, wantRows)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// After the dust settles the current generation holds every report.
	g := st.pin()
	if g == nil {
		t.Fatal("no generation after stress run")
	}
	defer g.unpin()
	if got := g.table.Len(); got != baseRows+writes {
		t.Errorf("final rows = %d, want %d", got, baseRows+writes)
	}
	if gen := g.num; gen != int64(1+writes) {
		t.Errorf("generation = %d, want %d", gen, 1+writes)
	}
}
