package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/obs"
	"guava/internal/relstore"
)

// storeGen builds a standalone generation for store-level tests: a tiny
// contributor-indexed table with the given row count.
func storeGen(t *testing.T, num int64, rows int) *generation {
	t.Helper()
	schema := relstore.MustSchema(
		relstore.Column{Name: etl.ContributorColumn, Type: relstore.KindString},
		relstore.Column{Name: "N", Type: relstore.KindInt},
	)
	tb := relstore.NewTable("warehouse_t", schema)
	for i := 0; i < rows; i++ {
		if err := tb.Insert(relstore.Row{relstore.Str("clinicA"), relstore.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return &generation{num: num, table: tb, partGens: map[string]int64{"clinicA": num}}
}

// TestGenStoreSaveRecoverRoundTrip is the happy path: two clean saves, then
// recovery picks the newest generation and retires the older directory.
func TestGenStoreSaveRecoverRoundTrip(t *testing.T) {
	root := t.TempDir()
	reg := obs.NewObserver().Metrics
	gs := newGenStore(etl.OSFS{}, root, 2, func() *obs.Registry { return reg }, t.Logf)

	for n, rows := range map[int64]int{1: 4, 2: 5} {
		if err := gs.save(storeGen(t, n, rows), n); err != nil {
			t.Fatalf("save gen %d: %v", n, err)
		}
	}
	rec, err := gs.recover()
	if err != nil || rec == nil {
		t.Fatalf("recover = %v, %v", rec, err)
	}
	if rec.man.Gen != 2 || len(rec.rows.Data) != 5 {
		t.Errorf("recovered gen %d with %d rows, want gen 2 with 5", rec.man.Gen, len(rec.rows.Data))
	}
	if _, err := os.Stat(filepath.Join(root, "gen-1")); !os.IsNotExist(err) {
		t.Errorf("older gen-1 dir not retired at recovery: %v", err)
	}
	if got := reg.Counter("serve.snapshot.gc").Value(); got != 1 {
		t.Errorf("serve.snapshot.gc = %d, want 1", got)
	}
}

// TestRecoveryFaultMatrix runs every faulty.FS fault class against the
// generation store's write or read path and checks the recovery contract:
// a corrupted newest generation is detected (never served) and recovery
// falls back to the last complete one; a loud write error surfaces to the
// caller; a pure-latency fault corrupts nothing.
func TestRecoveryFaultMatrix(t *testing.T) {
	cases := []struct {
		name          string
		saveFaults    []faulty.FSFault // armed on gen-2's save
		recoverFaults []faulty.FSFault // armed on the recovery reads
		wantSaveErr   bool
		wantGen       int64 // generation recovery must land on
		wantRows      int
		wantTorn      int64
	}{
		{
			name:       "short_write_tears_table",
			saveFaults: []faulty.FSFault{{Kind: faulty.FaultShortWrite, Path: "table.rel"}},
			wantGen:    1, wantRows: 4, wantTorn: 1,
		},
		{
			name:       "torn_rename_tears_manifest",
			saveFaults: []faulty.FSFault{{Kind: faulty.FaultTornRename, Path: "MANIFEST"}},
			wantGen:    1, wantRows: 4, wantTorn: 1,
		},
		{
			name:       "drop_sync_tears_manifest",
			saveFaults: []faulty.FSFault{{Kind: faulty.FaultDropSync, Path: "MANIFEST"}},
			wantGen:    1, wantRows: 4, wantTorn: 1,
		},
		{
			name:        "enospc_fails_save_loudly",
			saveFaults:  []faulty.FSFault{{Kind: faulty.FaultENOSPC, Path: "table.rel"}},
			wantSaveErr: true,
			// The aborted gen-2 dir (created before the write failed) is
			// detected as torn and swept.
			wantGen: 1, wantRows: 4, wantTorn: 1,
		},
		{
			name:          "bit_flip_corrupts_recovery_read",
			recoverFaults: []faulty.FSFault{{Kind: faulty.FaultBitFlip, Path: "gen-2"}},
			wantGen:       1, wantRows: 4, wantTorn: 1,
		},
		{
			name:       "latency_corrupts_nothing",
			saveFaults: []faulty.FSFault{{Kind: faulty.FaultLatency, Path: "table.rel"}},
			wantGen:    2, wantRows: 5, wantTorn: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			reg := obs.NewObserver().Metrics
			metrics := func() *obs.Registry { return reg }

			// Gen 1 is always saved cleanly: the last known-good state.
			clean := newGenStore(etl.OSFS{}, root, 2, metrics, t.Logf)
			if err := clean.save(storeGen(t, 1, 4), 1); err != nil {
				t.Fatalf("clean save: %v", err)
			}

			// Gen 2 is saved through the fault-injecting FS. A silent fault
			// reports success here — mimicking a crash right after the write,
			// before any GC of gen-1 could run.
			g2 := storeGen(t, 2, 5)
			werr := newGenStore(faulty.NewFS(etl.OSFS{}, tc.saveFaults...), root, 2, metrics, t.Logf).save(g2, 2)
			if tc.wantSaveErr {
				if !errors.Is(werr, faulty.ErrNoSpace) {
					t.Fatalf("save error = %v, want ErrNoSpace", werr)
				}
			} else if werr != nil {
				t.Fatalf("save unexpectedly loud: %v", werr)
			}

			// Restart: recover through a (possibly fault-injecting) FS.
			var rfs etl.FS = etl.OSFS{}
			if len(tc.recoverFaults) > 0 {
				rfs = faulty.NewFS(etl.OSFS{}, tc.recoverFaults...)
			}
			rec, rerr := newGenStore(rfs, root, 2, metrics, t.Logf).recover()
			if rerr != nil || rec == nil {
				t.Fatalf("recover = %v, %v", rec, rerr)
			}
			if rec.man.Gen != tc.wantGen || len(rec.rows.Data) != tc.wantRows {
				t.Errorf("recovered gen %d with %d rows, want gen %d with %d",
					rec.man.Gen, len(rec.rows.Data), tc.wantGen, tc.wantRows)
			}
			if got := reg.Counter("serve.snapshot.torn").Value(); got != tc.wantTorn {
				t.Errorf("serve.snapshot.torn = %d, want %d", got, tc.wantTorn)
			}
			// Whatever recovery rejected must be gone from disk: a second
			// recovery over the same root sees only the chosen generation.
			if tc.wantGen == 1 {
				if _, err := os.Stat(filepath.Join(root, "gen-2")); !os.IsNotExist(err) {
					t.Errorf("torn gen-2 dir survived recovery: %v", err)
				}
			}
		})
	}
}

// TestServerCrashRecoveryServesLastGoodGeneration is the end-to-end crash
// story: a server persists generations while serving, dies without any
// shutdown, and a fresh process over the same warehouse dir serves an
// identical extract from disk — without re-running the study plan.
func TestServerCrashRecoveryServesLastGoodGeneration(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	spec := fixtureSpec(t, goodHabits)
	srv := NewServer(Config{Observer: obs.NewObserver(), WarehouseDir: dir})
	if err := srv.AddStudy(ctx, spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	submitSurgical(t, spec.Contributors[0], 300)
	if code, body := post(t, ts.URL+"/studies/exsmoker/refresh"); code != 200 || body["generation"].(float64) != 2 {
		t.Fatalf("refresh = %d %v, want generation 2", code, body)
	}
	_, _, before := get(t, ts.URL+"/studies/exsmoker/extract")
	ts.Close() // SIGKILL stand-in: no Shutdown, no drain, no final persist

	// The restarted process gets a *fresh* fixture spec — one that lacks the
	// surgical record added above. If recovery secretly re-ran the plan, the
	// extract would have 4 rows, not 5.
	o2 := obs.NewObserver()
	srv2 := NewServer(Config{Observer: o2, WarehouseDir: dir, Logf: t.Logf})
	if err := srv2.AddStudy(ctx, fixtureSpec(t, goodHabits)); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	_, _, after := get(t, ts2.URL+"/studies/exsmoker/extract")
	if !reflect.DeepEqual(before["rows"], after["rows"]) || before["total"] != after["total"] {
		t.Errorf("post-crash extract differs from pre-crash:\n before %v\n after  %v", before, after)
	}
	if got := o2.Metrics.Counter("serve.snapshot.recovered").Value(); got != 1 {
		t.Errorf("serve.snapshot.recovered = %d, want 1", got)
	}
	if got := o2.Metrics.Counter("refresh.runs").Value(); got != 0 {
		t.Errorf("refresh.runs = %d after recovery, want 0 (no plan re-run)", got)
	}

	// /studies reports the recovered generation from the same snapshot.
	_, _, studies := get(t, ts2.URL+"/studies")
	list := studies["studies"].([]any)
	if got := list[0].(map[string]any)["generation"].(float64); got != 2 {
		t.Errorf("recovered /studies generation = %v, want 2", got)
	}

	// A forced refresh still works on top of the recovered state.
	if code, body := post(t, ts2.URL+"/studies/exsmoker/refresh"); code != 200 {
		t.Fatalf("refresh after recovery = %d %v", code, body)
	}
}

// TestSnapshotGCUnderPinnedReaders hammers pin/extract against persisted
// refreshes and checks the on-disk GC invariant: once the dust settles,
// exactly one generation directory — the current one — remains.
func TestSnapshotGCUnderPinnedReaders(t *testing.T) {
	dir := t.TempDir()
	spec := fixtureSpec(t, goodHabits)
	srv := NewServer(Config{Observer: obs.NewObserver(), WarehouseDir: dir})
	if err := srv.AddStudy(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.study("exsmoker")

	const (
		readers = 8
		reads   = 40
		writes  = 12
	)
	var wg sync.WaitGroup
	clinicA := spec.Contributors[0]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := clinicA.Stack.WriteValues(clinicA.DB, clinicA.Form, map[string]relstore.Value{
				"ProcedureID":      relstore.Int(int64(400 + i)),
				"PacksPerDay":      relstore.Float(float64(i)),
				"Hypoxia":          relstore.Bool(i%2 == 0),
				"SurgeryPerformed": relstore.Bool(true),
			}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if _, err := srv.refresh(context.Background(), st, "stress"); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < reads; j++ {
				g := st.pin()
				if g == nil {
					t.Error("pin = nil on a ready study")
					return
				}
				// While pinned, the snapshot is internally consistent and —
				// when persisted — its directory must still exist.
				if want := 4 + int(g.num) - 1; g.table.Len() != want {
					t.Errorf("gen %d has %d rows, want %d", g.num, g.table.Len(), want)
				}
				if g.dir != "" {
					if _, err := os.Stat(g.dir); err != nil {
						t.Errorf("pinned generation %d lost its dir: %v", g.num, err)
					}
				}
				g.unpin()
			}
		}()
	}
	wg.Wait()

	if gen := testGen(st); gen != 1+writes {
		t.Fatalf("final generation = %d, want %d", gen, 1+writes)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "exsmoker"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range ents {
		dirs = append(dirs, e.Name())
	}
	if len(dirs) != 1 || dirs[0] != "gen-13" {
		t.Errorf("generation dirs after GC = %v, want [gen-13]", dirs)
	}
}
