package classifier

// This file exports the guard-normalization entry points the static vetting
// engine (internal/vet) builds on. The DNF conversion itself lives in
// datalog.go, where it originated for the Datalog translation; the exported
// wrapper additionally gets the unconditional (nil) guard right under
// negation, which the translation never needed.

// DNF normalizes a guard into disjunctive normal form: a list of
// conjunctions of atomic conditions (*Compare with exactly one operator,
// *IsNull), with NOT pushed inward by De Morgan's laws and IN expanded.
// The empty disjunction (nil) is FALSE; a disjunction containing an empty
// conjunction is TRUE. A nil guard is the unconditional TRUE guard, so its
// negation is FALSE.
//
// Note that the negated form uses the *logical* complement of each
// comparison operator. Under SQL-style NULL semantics that is exact for =
// and <> (relstore evaluates both two-valued) but not for the ordered
// operators, whose comparisons are false on NULL either way; callers that
// need NULL-faithful negation (the vet engine) must handle ordered atoms
// themselves.
func DNF(guard Node, negate bool) ([][]Node, error) {
	if guard == nil {
		if negate {
			return nil, nil
		}
		return [][]Node{{}}, nil
	}
	return dnf(guard, negate)
}

// WalkIdents visits every identifier in an AST in source order. A nil node
// is an empty AST.
func WalkIdents(n Node, fn func(*Ident)) { walkIdents(n, fn) }
