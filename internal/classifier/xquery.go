package classifier

import (
	"fmt"
	"strings"
)

// This file renders classifiers as XQuery, following the paper's translation
// scheme (Section 4.2): "treat each entity classifier as a for-each to
// iterate through objects, each domain classifier as a variable assignment,
// and each rule in a classifier as a conditional statement." The paper
// hand-translated several collections of classifiers into XQuery; here the
// translation is generated.

// xqCtx carries what the emitter needs to resolve identifiers the way the
// binder would: the iteration variable, the entity name (form references in
// guards render as true(), since iterating the form *is* the presence test),
// and the target domain's elements (which render as string constants in
// value position).
type xqCtx struct {
	v        string
	entity   string
	target   Target
	valuePos bool
}

func (c xqCtx) value() xqCtx { c.valuePos = true; return c }
func (c xqCtx) guard() xqCtx { c.valuePos = false; return c }

// xqExpr renders an AST node as an XQuery expression over the iteration
// variable (g-tree node references become $v/Node paths).
func xqExpr(ctx xqCtx, n Node) (string, error) {
	v := ctx.v
	switch x := n.(type) {
	case *NumLit:
		return x.SrcText, nil
	case *StrLit:
		return `"` + strings.ReplaceAll(x.S, `"`, `""`) + `"`, nil
	case *BoolLit:
		if x.B {
			return "true()", nil
		}
		return "false()", nil
	case *NullLit:
		return "()", nil
	case *Ident:
		if x.Name == ctx.entity && !ctx.valuePos {
			return "true()", nil
		}
		if ctx.valuePos && ctx.target.HasElement(x.Name) {
			return `"` + x.Name + `"`, nil
		}
		return fmt.Sprintf("$%s/%s", v, x.Name), nil
	case *Unary:
		inner, err := xqExpr(ctx, x.X)
		if err != nil {
			return "", err
		}
		if x.Op == "NOT" {
			return "not(" + inner + ")", nil
		}
		return "-" + inner, nil
	case *Binary:
		l, err := xqExpr(ctx, x.L)
		if err != nil {
			return "", err
		}
		r, err := xqExpr(ctx, x.R)
		if err != nil {
			return "", err
		}
		op := x.Op
		switch x.Op {
		case "AND":
			op = "and"
		case "OR":
			op = "or"
		case "%":
			op = "mod"
		case "/":
			op = "div"
		}
		return "(" + l + " " + op + " " + r + ")", nil
	case *Compare:
		var parts []string
		for i, cmpOp := range x.Ops {
			l, err := xqExpr(ctx, x.Operands[i])
			if err != nil {
				return "", err
			}
			r, err := xqExpr(ctx, x.Operands[i+1])
			if err != nil {
				return "", err
			}
			op := cmpOp
			switch cmpOp {
			case "<>":
				op = "!="
			}
			parts = append(parts, l+" "+op+" "+r)
		}
		if len(parts) == 1 {
			return "(" + parts[0] + ")", nil
		}
		return "(" + strings.Join(parts, " and ") + ")", nil
	case *IsNull:
		inner, err := xqExpr(ctx, x.X)
		if err != nil {
			return "", err
		}
		if x.Negate {
			return "exists(" + inner + ")", nil
		}
		return "empty(" + inner + ")", nil
	case *InList:
		inner, err := xqExpr(ctx, x.X)
		if err != nil {
			return "", err
		}
		items := make([]string, len(x.List))
		for i, it := range x.List {
			s, err := xqExpr(ctx, it)
			if err != nil {
				return "", err
			}
			items[i] = s
		}
		return inner + " = (" + strings.Join(items, ", ") + ")", nil
	default:
		return "", fmt.Errorf("classifier: cannot render %T as XQuery", n)
	}
}

// xqClassifierBody renders a domain classifier as a chain of XQuery
// conditionals — each rule one "if (guard) then value" arm.
func xqClassifierBody(ctx xqCtx, c *Classifier) (string, error) {
	var sb strings.Builder
	for i, r := range c.Rules {
		guard := "true()"
		if r.Guard != nil {
			g, err := xqExpr(ctx.guard(), r.Guard)
			if err != nil {
				return "", err
			}
			guard = g
		}
		val, err := xqExpr(ctx.value(), r.Value)
		if err != nil {
			return "", err
		}
		if i > 0 {
			sb.WriteString("\n      else ")
		}
		fmt.Fprintf(&sb, "if (%s) then %s", guard, val)
	}
	sb.WriteString("\n      else ()")
	return sb.String(), nil
}

// EmitXQuery renders a study fragment as XQuery: the entity classifier
// becomes the FLWOR for/where, each domain classifier an element constructor
// with its conditional chain. doc names the g-tree XML document.
func EmitXQuery(doc string, entity *Classifier, domains []*Classifier) (string, error) {
	if !entity.IsEntity {
		return "", fmt.Errorf("classifier: EmitXQuery needs an entity classifier, got %q", entity.Name)
	}
	v := strings.ToLower(entity.Target.Entity[:1])
	ctx := xqCtx{v: v, entity: entity.Target.Entity}
	var sb strings.Builder
	fmt.Fprintf(&sb, "for $%s in doc(%q)//%s\n", v, doc, entity.Target.Entity)
	var wheres []string
	for _, r := range entity.Rules {
		if r.Guard == nil {
			continue
		}
		g, err := xqExpr(ctx.guard(), r.Guard)
		if err != nil {
			return "", err
		}
		wheres = append(wheres, g)
	}
	if len(wheres) > 0 {
		fmt.Fprintf(&sb, "where %s\n", strings.Join(wheres, " or "))
	}
	fmt.Fprintf(&sb, "return\n  <%s>\n", entity.Target.Entity)
	for _, d := range domains {
		dctx := xqCtx{v: v, entity: entity.Target.Entity, target: d.Target}
		body, err := xqClassifierBody(dctx, d)
		if err != nil {
			return "", err
		}
		el := fmt.Sprintf("%s_%s", d.Target.Attribute, d.Target.Domain)
		fmt.Fprintf(&sb, "    <%s>{\n      %s\n    }</%s>\n", el, body, el)
	}
	fmt.Fprintf(&sb, "  </%s>", entity.Target.Entity)
	return sb.String(), nil
}
