package classifier

import (
	"fmt"
	"strings"
)

// EmitSQL renders a study fragment for one contributor as a single SQL
// statement over the naive relation: the entity classifier's selection is
// the WHERE clause and each domain classifier compiles to a searched CASE
// column — the relational counterpart of the XQuery translation, and the
// text cmd/runstudy prints when analysts inspect a generated workflow.
func EmitSQL(entity *Bound, domains []*Bound) (string, error) {
	if !entity.Classifier.IsEntity {
		return "", fmt.Errorf("classifier: EmitSQL needs an entity classifier, got %q", entity.Classifier.Name)
	}
	tree := entity.Tree
	var sb strings.Builder
	sb.WriteString("SELECT\n  ")
	cols := []string{tree.KeyColumn}
	for _, d := range domains {
		if d.Classifier.IsEntity {
			return "", fmt.Errorf("classifier: %q is an entity classifier, not a domain classifier", d.Classifier.Name)
		}
		cols = append(cols, fmt.Sprintf("%s AS %s_%s",
			d.Case().SQL(), d.Classifier.Target.Attribute, d.Classifier.Target.Domain))
	}
	sb.WriteString(strings.Join(cols, ",\n  "))
	fmt.Fprintf(&sb, "\nFROM %s\nWHERE %s", tree.FormName(), entity.Selection().SQL())
	return sb.String(), nil
}
