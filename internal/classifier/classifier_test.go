package classifier

import (
	"strings"
	"testing"

	"guava/internal/gtree"
	"guava/internal/relstore"
	"guava/internal/ui"
)

// fig5Tree builds a g-tree containing the nodes Figure 5's classifiers
// reference: PacksPerDay, TumorX/Y/Z, SurgeryPerformed, plus a boolean and
// a group box for negative tests.
func fig5Tree(t *testing.T) *gtree.Tree {
	t.Helper()
	f := &ui.Form{
		Name: "Procedure", Title: "Procedure", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{Name: "History", Kind: ui.GroupBox, Question: "History", Children: []*ui.Control{
				{Name: "PacksPerDay", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat},
				{Name: "Smoking", Kind: ui.RadioList, Question: "Smoking status",
					Options: []ui.Option{
						{Display: "None", Stored: relstore.Str("None")},
						{Display: "Current", Stored: relstore.Str("Current")},
						{Display: "Previous", Stored: relstore.Str("Previous")},
					}},
			}},
			{Name: "TumorX", Kind: ui.TextBox, Question: "Tumor X (mm)", DataType: relstore.KindFloat},
			{Name: "TumorY", Kind: ui.TextBox, Question: "Tumor Y (mm)", DataType: relstore.KindFloat},
			{Name: "TumorZ", Kind: ui.TextBox, Question: "Tumor Z (mm)", DataType: relstore.KindFloat},
			{Name: "SurgeryPerformed", Kind: ui.CheckBox, Question: "Surgery performed?"},
			{Name: "QuitYearsAgo", Kind: ui.TextBox, Question: "Years since quitting", DataType: relstore.KindInt},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := gtree.Derive("CORI", 1, f)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func naiveSchema(t *testing.T) *relstore.Schema {
	t.Helper()
	return relstore.MustSchema(
		relstore.Column{Name: "ProcedureID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "PacksPerDay", Type: relstore.KindFloat},
		relstore.Column{Name: "Smoking", Type: relstore.KindString},
		relstore.Column{Name: "TumorX", Type: relstore.KindFloat},
		relstore.Column{Name: "TumorY", Type: relstore.KindFloat},
		relstore.Column{Name: "TumorZ", Type: relstore.KindFloat},
		relstore.Column{Name: "SurgeryPerformed", Type: relstore.KindBool},
		relstore.Column{Name: "QuitYearsAgo", Type: relstore.KindInt},
	)
}

var habitsDomain = Target{
	Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
	Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
}

const habitsCancerSrc = `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`

const habitsChemistrySrc = `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 1
Moderate <- 1 <= PacksPerDay < 2
Heavy    <- PacksPerDay >= 2
`

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("Light <- 0 < PacksPerDay AND x <> 'it''s' -- comment\nNext <- TRUE")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{TokIdent, TokArrow, TokNumber, TokLt, TokIdent, TokAnd, TokIdent, TokNe, TokString, TokNewline, TokIdent, TokArrow, TokTrue, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	// Escaped quote in string literal.
	if toks[8].Text != "it's" {
		t.Errorf("string literal = %q", toks[8].Text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a ! b", "x @ y", "'spans\nlines'"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(habitsCancerSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(rules))
	}
	// Chained comparison survives parsing.
	cmp, ok := rules[1].Guard.(*Compare)
	if !ok || len(cmp.Ops) != 2 {
		t.Fatalf("rule 2 guard = %#v", rules[1].Guard)
	}
	if rules[1].String() != "Light <- 0 < PacksPerDay < 2" {
		t.Errorf("round trip = %q", rules[1].String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                      // no rules
		"None PacksPerDay = 0",  // missing arrow
		"None <- ",              // missing guard
		"None <- (a = 1",        // unbalanced paren
		"None <- a = 1 extra x", // trailing garbage after rule on same line
		"None <- a IN ()",       // empty IN list
		"None <- a IS 5",        // IS without NULL
	}
	for _, src := range bad {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("ParseRules(%q): expected error", src)
		}
	}
}

func TestParseExpr(t *testing.T) {
	n, err := ParseExpr("NOT (RenalFailure = TRUE) AND Age >= 18 OR Name IN ('a','b')")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n.String(), "OR") {
		t.Errorf("expr = %s", n.String())
	}
	if _, err := ParseExpr("a = 1\nb = 2"); err == nil {
		t.Error("two expressions must fail")
	}
}

// TestFigure5Classifiers parses, binds, and evaluates all four classifiers
// of Figure 5 — the central worked example of the paper.
func TestFigure5Classifiers(t *testing.T) {
	tree := fig5Tree(t)
	schema := naiveSchema(t)

	cancer, err := Parse("Habits (Cancer)",
		"Classifies packs per day according to conversations with cancer study on 5/3/02",
		habitsDomain, habitsCancerSrc)
	if err != nil {
		t.Fatal(err)
	}
	chem, err := Parse("Habits (Chemistry)",
		"Classifies packs per day according to flier from chemical studies",
		habitsDomain, habitsChemistrySrc)
	if err != nil {
		t.Fatal(err)
	}
	tumor, err := Parse("Tumor Size",
		"Estimates tumor volume based on dimensions in 3-space. Assumes 52% occupancy from sphere-to-cube ratio.",
		Target{Entity: "Procedure", Attribute: "TumorVolume", Domain: "D1", Kind: relstore.KindFloat},
		"TumorX * TumorY * TumorZ * 0.52 <- TumorX > 0 AND TumorY > 0 AND TumorZ > 0")
	if err != nil {
		t.Fatal(err)
	}
	relevant, err := ParseEntity("Relevant Procedures",
		"Only consider procedures where surgery was performed",
		"Procedure",
		"Procedure <- Procedure AND SurgeryPerformed = TRUE")
	if err != nil {
		t.Fatal(err)
	}

	bCancer, err := cancer.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	bChem, err := chem.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	bTumor, err := tumor.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	bRelevant, err := relevant.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}

	// Refs drive versioning propagation.
	if got := strings.Join(bCancer.Refs, ","); got != "PacksPerDay" {
		t.Errorf("cancer refs = %q", got)
	}
	if got := strings.Join(bTumor.Refs, ","); got != "TumorX,TumorY,TumorZ" {
		t.Errorf("tumor refs = %q", got)
	}
	if got := strings.Join(bRelevant.Refs, ","); got != "SurgeryPerformed" {
		t.Errorf("relevant refs = %q", got)
	}

	mkRow := func(packs float64) relstore.Row {
		return relstore.Row{relstore.Int(1), relstore.Float(packs), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	}
	// "MultiClass allows more than one classifier to map data from the same
	// contributor to the same domain" — the two Habits classifiers disagree
	// on 1.5 packs/day.
	cases := []struct {
		packs                float64
		wantCancer, wantChem string
	}{
		{0, "None", "None"},
		{0.5, "Light", "Light"},
		{1.5, "Light", "Moderate"},
		{2, "Moderate", "Heavy"},
		{4.9, "Moderate", "Heavy"},
		{5, "Heavy", "Heavy"},
	}
	for _, c := range cases {
		v, err := bCancer.Apply(mkRow(c.packs), schema)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(relstore.Str(c.wantCancer)) {
			t.Errorf("cancer(%v) = %v, want %s", c.packs, v, c.wantCancer)
		}
		v, err = bChem.Apply(mkRow(c.packs), schema)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(relstore.Str(c.wantChem)) {
			t.Errorf("chem(%v) = %v, want %s", c.packs, v, c.wantChem)
		}
	}
	// Unanswered packs stays unclassified (NULL), not "None".
	nullRow := relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	v, err := bCancer.Apply(nullRow, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Errorf("cancer(NULL) = %v, want NULL", v)
	}

	// Tumor volume computes 3*4*5*0.52 = 31.2.
	tr := relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Float(3), relstore.Float(4), relstore.Float(5), relstore.Null(), relstore.Null()}
	v, err = bTumor.Apply(tr, schema)
	if err != nil {
		t.Fatal(err)
	}
	if v.IsNull() || v.AsFloat() < 31.2-1e-9 || v.AsFloat() > 31.2+1e-9 {
		t.Errorf("tumor volume = %v, want ≈31.2", v)
	}
	// Any non-positive dimension leaves it unclassified.
	tr[3] = relstore.Float(0)
	if v, _ := bTumor.Apply(tr, schema); !v.IsNull() {
		t.Errorf("tumor volume with zero dim = %v", v)
	}

	// Entity classifier selects only surgery rows.
	sel := bRelevant.Selection()
	yes := relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Bool(true), relstore.Null()}
	no := relstore.Row{relstore.Int(2), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Bool(false), relstore.Null()}
	if ok, _ := sel.Eval(yes, schema); !ok {
		t.Error("surgery row must be selected")
	}
	if ok, _ := sel.Eval(no, schema); ok {
		t.Error("non-surgery row must not be selected")
	}
	if ok, _ := sel.Eval(nullRow, schema); ok {
		t.Error("unanswered surgery row must not be selected")
	}
}

func TestBindErrors(t *testing.T) {
	tree := fig5Tree(t)
	cases := []struct {
		name string
		src  string
		tgt  Target
	}{
		{"unknown node", "None <- Nonexistent = 0", habitsDomain},
		{"group box reference", "None <- History = 0", habitsDomain},
		{"form node as value", "Procedure <- PacksPerDay = 0", habitsDomain},
		{"element not in domain", "Gigantic <- PacksPerDay = 0", habitsDomain},
		{"string arithmetic", "None <- Smoking * 2 = 4", habitsDomain},
		{"incomparable kinds", "None <- Smoking > 5", habitsDomain},
		{"bool ordered compare", "None <- SurgeryPerformed < TRUE", habitsDomain},
		{"bare non-bool guard", "None <- Smoking", habitsDomain},
		{"wrong value type", "5 <- PacksPerDay = 0", habitsDomain},
		{"negate string", "-Smoking <- PacksPerDay = 0", Target{Entity: "P", Attribute: "A", Domain: "D", Kind: relstore.KindFloat}},
		{"form node in non-entity guard", "None <- Procedure AND PacksPerDay = 0", habitsDomain},
		{"in list non-literal", "None <- PacksPerDay IN (TumorX)", habitsDomain},
		{"in list wrong kind", "None <- PacksPerDay IN ('a')", habitsDomain},
	}
	for _, c := range cases {
		cl, err := Parse("x", "", c.tgt, c.src)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if _, err := cl.Bind(tree); err == nil {
			t.Errorf("%s: expected bind error for %q", c.name, c.src)
		}
	}
	// Entity classifier without a form-node reference.
	ec, err := ParseEntity("bad", "", "Procedure", "Procedure <- SurgeryPerformed = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Bind(tree); err == nil {
		t.Error("entity classifier without form reference must fail to bind")
	}
	// Entity classifier whose value is not the entity.
	if _, err := ParseEntity("bad2", "", "Procedure", "Other <- Procedure"); err == nil {
		t.Error("entity classifier with wrong value must fail to parse")
	}
	// Domain classifier without attribute.
	if _, err := Parse("bad3", "", Target{Entity: "P"}, "None <- TRUE"); err == nil {
		t.Error("domain classifier without attribute must fail")
	}
}

func TestGuardFeatures(t *testing.T) {
	tree := fig5Tree(t)
	schema := naiveSchema(t)
	tgt := habitsDomain
	cases := []struct {
		src  string
		row  relstore.Row
		want relstore.Value
	}{
		{"None <- Smoking IS NULL", relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}, relstore.Str("None")},
		{"None <- Smoking IS NOT NULL", relstore.Row{relstore.Int(1), relstore.Null(), relstore.Str("Current"), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}, relstore.Str("None")},
		{"Heavy <- Smoking IN ('Current', 'Previous')", relstore.Row{relstore.Int(1), relstore.Null(), relstore.Str("Previous"), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}, relstore.Str("Heavy")},
		{"Light <- NOT (PacksPerDay >= 2)", relstore.Row{relstore.Int(1), relstore.Float(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}, relstore.Str("Light")},
		{"Heavy <- SurgeryPerformed", relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Bool(true), relstore.Null()}, relstore.Str("Heavy")},
		{"Moderate <- PacksPerDay % 2 = 0 AND PacksPerDay > 0", relstore.Row{relstore.Int(1), relstore.Float(4), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}, relstore.Str("Moderate")},
		{"None <- QuitYearsAgo = NULL", relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}, relstore.Str("None")},
	}
	for _, c := range cases {
		cl, err := Parse("g", "", tgt, c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		b, err := cl.Bind(tree)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		v, err := b.Apply(c.row, schema)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if !v.Equal(c.want) {
			t.Errorf("%q = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestFirstMatchSemantics(t *testing.T) {
	tree := fig5Tree(t)
	schema := naiveSchema(t)
	// Overlapping guards: the first matching rule wins.
	cl, err := Parse("o", "", habitsDomain, "Light <- PacksPerDay > 0\nHeavy <- PacksPerDay > 0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	row := relstore.Row{relstore.Int(1), relstore.Float(3), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	v, err := b.Apply(row, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(relstore.Str("Light")) {
		t.Errorf("first-match = %v, want Light", v)
	}
}

func TestClassifyColumn(t *testing.T) {
	tree := fig5Tree(t)
	cl, _ := Parse("c", "", habitsDomain, habitsCancerSrc)
	b, err := cl.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	rows := &relstore.Rows{Schema: naiveSchema(t), Data: []relstore.Row{
		{relstore.Int(1), relstore.Float(0), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()},
		{relstore.Int(2), relstore.Float(3), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()},
	}}
	vals, err := b.ClassifyColumn(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !vals[0].Equal(relstore.Str("None")) || !vals[1].Equal(relstore.Str("Moderate")) {
		t.Errorf("vals = %v", vals)
	}
}

func TestClassifierStringAndIdents(t *testing.T) {
	cl, err := Parse("Habits (Cancer)", "desc", habitsDomain, habitsCancerSrc)
	if err != nil {
		t.Fatal(err)
	}
	s := cl.String()
	if !strings.Contains(s, "Habits (Cancer)") || !strings.Contains(s, "-- desc") || !strings.Contains(s, "Procedure.Smoking:D3") {
		t.Errorf("String = %q", s)
	}
	ids := cl.Idents()
	// None/Light/Moderate/Heavy + PacksPerDay, in first-appearance order.
	if ids[0] != "None" || ids[1] != "PacksPerDay" {
		t.Errorf("idents = %v", ids)
	}
}

func TestEmitXQuery(t *testing.T) {
	relevant, _ := ParseEntity("Relevant", "", "Procedure", "Procedure <- Procedure AND SurgeryPerformed = TRUE")
	cancer, _ := Parse("Habits (Cancer)", "", habitsDomain, habitsCancerSrc)
	xq, err := EmitXQuery("CORI.xml", relevant, []*Classifier{cancer})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`for $p in doc("CORI.xml")//Procedure`,
		`$p/SurgeryPerformed = true()`,
		`<Smoking_D3>`,
		`if (($p/PacksPerDay = 0)) then "None"`,
		`0 < $p/PacksPerDay and $p/PacksPerDay < 2`,
		`else ()`,
	} {
		if !strings.Contains(xq, want) {
			t.Errorf("XQuery missing %q:\n%s", want, xq)
		}
	}
	if _, err := EmitXQuery("d", cancer, nil); err == nil {
		t.Error("EmitXQuery with a domain classifier as entity must fail")
	}
}

func TestEmitDatalog(t *testing.T) {
	tree := fig5Tree(t)
	cancer, _ := Parse("Habits (Cancer)", "", habitsDomain, habitsCancerSrc)
	b, err := cancer.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := EmitDatalog(b, "smoking_d3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`smoking_d3(ProcedureID, "None") :- procedure(ProcedureID,`,
		`PacksPerDay = 0.`,
		`0 < PacksPerDay, PacksPerDay < 2`,
		`PacksPerDay >= 5`,
	} {
		if !strings.Contains(dl, want) {
			t.Errorf("Datalog missing %q:\n%s", want, dl)
		}
	}
	// OR in a guard becomes two clauses (union of conjunctive queries).
	orCl, _ := Parse("o", "", habitsDomain, "Heavy <- PacksPerDay >= 5 OR Smoking = 'Current'")
	ob, err := orCl.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	odl, err := EmitDatalog(ob, "out")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(odl, ":-") != 2 {
		t.Errorf("OR must produce 2 clauses:\n%s", odl)
	}
	// NOT over AND distributes (De Morgan) into two clauses.
	notCl, _ := Parse("n", "", habitsDomain, "Light <- NOT (PacksPerDay >= 5 AND Smoking = 'Current')")
	nb, err := notCl.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	ndl, err := EmitDatalog(nb, "out")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(ndl, ":-") != 2 {
		t.Errorf("NOT-AND must produce 2 clauses:\n%s", ndl)
	}
	if !strings.Contains(ndl, "PacksPerDay < 5") {
		t.Errorf("negated >= must become <:\n%s", ndl)
	}
	// IN expands to one clause per element.
	inCl, _ := Parse("i", "", habitsDomain, "Heavy <- Smoking IN ('Current', 'Previous')")
	ib, _ := inCl.Bind(tree)
	idl, err := EmitDatalog(ib, "out")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(idl, ":-") != 2 {
		t.Errorf("IN must produce 2 clauses:\n%s", idl)
	}
	// Entity classifier emits presence clauses.
	ent, _ := ParseEntity("Relevant", "", "Procedure", "Procedure <- Procedure AND SurgeryPerformed = TRUE")
	eb, err := ent.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	edl, err := EmitDatalog(eb, "relevant")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(edl, "relevant(ProcedureID) :- procedure(ProcedureID,") {
		t.Errorf("entity Datalog:\n%s", edl)
	}
	if !strings.Contains(edl, "SurgeryPerformed = true") {
		t.Errorf("entity Datalog must compare the boolean:\n%s", edl)
	}
}

func TestEmitSQL(t *testing.T) {
	tree := fig5Tree(t)
	relevant, _ := ParseEntity("Relevant", "", "Procedure", "Procedure <- Procedure AND SurgeryPerformed = TRUE")
	cancer, _ := Parse("Habits (Cancer)", "", habitsDomain, habitsCancerSrc)
	rb, err := relevant.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := cancer.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := EmitSQL(rb, []*Bound{cb})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT", "FROM Procedure", "WHERE", "SurgeryPerformed = TRUE",
		"CASE WHEN PacksPerDay = 0 THEN 'None'", "AS Smoking_D3",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	if _, err := EmitSQL(cb, nil); err == nil {
		t.Error("EmitSQL with domain classifier as entity must fail")
	}
	if _, err := EmitSQL(rb, []*Bound{rb}); err == nil {
		t.Error("EmitSQL with entity classifier as domain must fail")
	}
}
