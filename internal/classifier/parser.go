package classifier

import "strconv"

// parser is a recursive-descent parser for the classifier language.
//
// Grammar (rules separated by newlines):
//
//	rules   := rule (NEWLINE rule)*
//	rule    := expr ["<-" orExpr]
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | relExpr
//	relExpr := expr ((cmpOp expr)+ | IS [NOT] NULL | IN '(' expr, ... ')')?
//	expr    := term ((+|-) term)*
//	term    := factor ((*|/|%) factor)*
//	factor  := '-' factor | atom
//	atom    := NUMBER | STRING | TRUE | FALSE | NULL | IDENT | '(' orExpr ')'
//
// Chained comparisons (a < b < c) are kept in one Compare node and desugar
// during checking.
type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errAt(p.cur(), "expected %s, found %s %q", k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

// ParseRules parses a whole rule list, one rule per line.
func ParseRules(src string) ([]*Rule, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []*Rule
	for p.accept(TokNewline) {
	}
	for p.cur().Kind != TokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
		if p.cur().Kind == TokEOF {
			break
		}
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		for p.accept(TokNewline) {
		}
	}
	if len(rules) == 0 {
		return nil, &Error{Msg: "empty classifier: no rules"}
	}
	return rules, nil
}

// ParseExpr parses a single boolean expression (used for study filter
// conditions, the WHERE-like clauses of Section 3).
func ParseExpr(src string) (Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	for p.accept(TokNewline) {
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokNewline) {
	}
	if p.cur().Kind != TokEOF {
		return nil, errAt(p.cur(), "unexpected %s %q after expression", p.cur().Kind, p.cur().Text)
	}
	return n, nil
}

func (p *parser) parseRule() (*Rule, error) {
	// The value clause is an arithmetic expression; it must stop before
	// "<-", so parse at additive level (not comparisons, whose "<" would
	// swallow the arrow's "<"). The lexer already distinguishes "<-".
	val, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if !p.accept(TokArrow) {
		return nil, errAt(p.cur(), "expected '<-' after rule value")
	}
	guard, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	return &Rule{Value: val, Guard: guard}, nil
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.accept(TokNot) {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseRel()
}

var cmpToks = map[TokKind]string{
	TokEq: "=", TokNe: "<>", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func (p *parser) parseRel() (Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokIs {
		p.next()
		neg := p.accept(TokNot)
		if _, err := p.expect(TokNull); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	if p.cur().Kind == TokIn {
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var list []Node
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(TokComma) {
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list}, nil
	}
	if op, ok := cmpToks[p.cur().Kind]; ok {
		cmp := &Compare{Operands: []Node{l}, Ops: nil}
		for {
			op2, ok := cmpToks[p.cur().Kind]
			if !ok {
				break
			}
			_ = op
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			cmp.Ops = append(cmp.Ops, op2)
			cmp.Operands = append(cmp.Operands, r)
		}
		return cmp, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Node, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseTerm() (Node, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		case TokPercent:
			op = "%"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseFactor() (Node, error) {
	if p.accept(TokMinus) {
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Node, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return &NumLit{Int: i, IsInt: true, SrcText: t.Text}, nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t, "bad number %q", t.Text)
		}
		return &NumLit{Float: f, SrcText: t.Text}, nil
	case TokString:
		p.next()
		return &StrLit{S: t.Text}, nil
	case TokTrue:
		p.next()
		return &BoolLit{B: true}, nil
	case TokFalse:
		p.next()
		return &BoolLit{B: false}, nil
	case TokNull:
		p.next()
		return &NullLit{}, nil
	case TokIdent:
		p.next()
		return &Ident{Name: t.Text, Tok: t}, nil
	case TokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, errAt(t, "unexpected %s %q", t.Kind, t.Text)
	}
}
