package classifier

import (
	"fmt"
	"strings"
)

// This file renders classifiers as Datalog with comparison built-ins. The
// translation substantiates the paper's claim that "the classifier language
// as specified here is equivalent in expressive power to conjunctive queries
// with union": each rule's guard is normalized to disjunctive normal form,
// and every disjunct becomes one conjunctive Datalog clause; the rule list
// is their union.

// dnf converts a guard AST into a list of conjunctions of atomic conditions,
// pushing NOT inward (De Morgan) and eliminating IN by expansion.
func dnf(n Node, negate bool) ([][]Node, error) {
	switch x := n.(type) {
	case nil:
		return [][]Node{{}}, nil
	case *BoolLit:
		b := x.B != negate
		if b {
			return [][]Node{{}}, nil // one empty conjunction = TRUE
		}
		return nil, nil // no disjuncts = FALSE
	case *Unary:
		if x.Op == "NOT" {
			return dnf(x.X, !negate)
		}
		return nil, fmt.Errorf("classifier: %s is not a condition", n)
	case *Binary:
		op := x.Op
		if negate {
			switch op {
			case "AND":
				op = "OR"
			case "OR":
				op = "AND"
			}
		}
		switch op {
		case "OR":
			l, err := dnf(x.L, negate)
			if err != nil {
				return nil, err
			}
			r, err := dnf(x.R, negate)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		case "AND":
			l, err := dnf(x.L, negate)
			if err != nil {
				return nil, err
			}
			r, err := dnf(x.R, negate)
			if err != nil {
				return nil, err
			}
			var out [][]Node
			for _, lc := range l {
				for _, rc := range r {
					conj := make([]Node, 0, len(lc)+len(rc))
					conj = append(conj, lc...)
					conj = append(conj, rc...)
					out = append(out, conj)
				}
			}
			return out, nil
		default:
			return nil, fmt.Errorf("classifier: arithmetic %s is not a condition", n)
		}
	case *Compare:
		// Split chains into pairwise atoms first.
		var atoms []Node
		for i, op := range x.Ops {
			atoms = append(atoms, &Compare{Operands: []Node{x.Operands[i], x.Operands[i+1]}, Ops: []string{op}})
		}
		if !negate {
			return [][]Node{atoms}, nil
		}
		// NOT (a AND b AND c) = NOT a OR NOT b OR NOT c.
		var out [][]Node
		for _, a := range atoms {
			c := a.(*Compare)
			out = append(out, []Node{&Compare{
				Operands: c.Operands,
				Ops:      []string{negateCmp(c.Ops[0])},
			}})
		}
		return out, nil
	case *IsNull:
		return [][]Node{{&IsNull{X: x.X, Negate: x.Negate != negate}}}, nil
	case *InList:
		// x IN (a,b) = x=a OR x=b; negated: x<>a AND x<>b.
		if !negate {
			var out [][]Node
			for _, item := range x.List {
				out = append(out, []Node{&Compare{Operands: []Node{x.X, item}, Ops: []string{"="}}})
			}
			return out, nil
		}
		var conj []Node
		for _, item := range x.List {
			conj = append(conj, &Compare{Operands: []Node{x.X, item}, Ops: []string{"<>"}})
		}
		return [][]Node{conj}, nil
	case *Ident:
		// Bare boolean node reference; form nodes are presence atoms and
		// drop out of the body (the relation atom asserts presence).
		cmpVal := &BoolLit{B: !negate}
		return [][]Node{{&Compare{Operands: []Node{x, cmpVal}, Ops: []string{"="}}}}, nil
	default:
		return nil, fmt.Errorf("classifier: %s is not a condition", n)
	}
}

func negateCmp(op string) string {
	switch op {
	case "=":
		return "<>"
	case "<>":
		return "="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

// dlTerm renders an AST node as a Datalog term; g-tree node references
// become logic variables of the same name.
func dlTerm(n Node) (string, error) {
	switch x := n.(type) {
	case *NumLit:
		return x.SrcText, nil
	case *StrLit:
		return `"` + x.S + `"`, nil
	case *BoolLit:
		if x.B {
			return "true", nil
		}
		return "false", nil
	case *NullLit:
		return "null", nil
	case *Ident:
		return varName(x.Name), nil
	case *Unary:
		inner, err := dlTerm(x.X)
		if err != nil {
			return "", err
		}
		return "-" + inner, nil
	case *Binary:
		l, err := dlTerm(x.L)
		if err != nil {
			return "", err
		}
		r, err := dlTerm(x.R)
		if err != nil {
			return "", err
		}
		return "(" + l + " " + x.Op + " " + r + ")", nil
	default:
		return "", fmt.Errorf("classifier: cannot render %T as a Datalog term", n)
	}
}

func varName(s string) string {
	if s == "" {
		return "_"
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// dlAtom renders an atomic condition as a Datalog body literal.
func dlAtom(n Node) (string, error) {
	switch x := n.(type) {
	case *Compare:
		l, err := dlTerm(x.Operands[0])
		if err != nil {
			return "", err
		}
		r, err := dlTerm(x.Operands[1])
		if err != nil {
			return "", err
		}
		op := x.Ops[0]
		if op == "<>" {
			op = "!="
		}
		return l + " " + op + " " + r, nil
	case *IsNull:
		inner, err := dlTerm(x.X)
		if err != nil {
			return "", err
		}
		if x.Negate {
			return "not null(" + inner + ")", nil
		}
		return "null(" + inner + ")", nil
	default:
		return "", fmt.Errorf("classifier: %T is not an atomic condition", n)
	}
}

// EmitDatalog renders a bound classifier as Datalog clauses over the
// contributor's naive relation. The naive relation appears as one body atom
// form(Key, Col1, …, ColN) with a variable per column; the head is
// out(Key, Value).
func EmitDatalog(bd *Bound, headName string) (string, error) {
	tree := bd.Tree
	fields := tree.FieldNames()
	args := make([]string, 0, len(fields)+1)
	args = append(args, varName(tree.KeyColumn))
	for _, f := range fields {
		args = append(args, varName(f))
	}
	relAtom := fmt.Sprintf("%s(%s)", strings.ToLower(tree.FormName()), strings.Join(args, ", "))

	var sb strings.Builder
	for _, r := range bd.Classifier.Rules {
		disjuncts, err := dnf(r.Guard, false)
		if err != nil {
			return "", err
		}
		var headVal string
		if bd.Classifier.IsEntity {
			headVal = ""
		} else {
			v, err := dlValueTerm(r.Value, bd)
			if err != nil {
				return "", err
			}
			headVal = ", " + v
		}
		head := fmt.Sprintf("%s(%s%s)", headName, varName(tree.KeyColumn), headVal)
		for _, conj := range disjuncts {
			body := []string{relAtom}
			for _, atom := range conj {
				lit, err := dlAtom(atom)
				if err != nil {
					return "", err
				}
				body = append(body, lit)
			}
			fmt.Fprintf(&sb, "%s :- %s.\n", head, strings.Join(body, ", "))
		}
	}
	return sb.String(), nil
}

// dlValueTerm renders a rule's value clause: domain elements become quoted
// constants, node references variables, arithmetic stays symbolic.
func dlValueTerm(n Node, bd *Bound) (string, error) {
	if id, ok := n.(*Ident); ok {
		if !bd.Tree.Has(id.Name) && bd.Classifier.Target.HasElement(id.Name) {
			return `"` + id.Name + `"`, nil
		}
	}
	return dlTerm(n)
}
