package classifier

import (
	"strings"
	"testing"
)

// fuzzSeeds are representative classifier sources — the Figure 5 shapes plus
// the syntactic corners the lexer and parser special-case (quote escaping,
// comments, unary minus, IN lists, mixed operators).
var fuzzSeeds = []string{
	habitsCancerSrc,
	habitsChemistrySrc,
	"Procedure <- Procedure AND SurgeryPerformed = TRUE",
	"DISCARD <- PacksPerDay < 0",
	"None <- Smoking IS NULL OR NOT (PacksPerDay >= 2)\nHeavy <- Smoking IN ('a', 'b')",
	"TumorX * TumorY * TumorZ * 0.52 <- TumorX > 0 AND TumorY > 0 AND TumorZ > 0",
	"Val <- -PacksPerDay + 2 * 3 - 1 % 2 > 0",
	"X <- a = 'it''s' -- trailing comment\nY <- b <> \"q\"",
	"X <- .5 < a AND a != 2",
	"X <-",
	"<- TRUE",
	"X <- (a = 1",
	"X <- a IN ()",
}

// FuzzLex asserts the lexer never panics and, on success, always terminates
// the stream with EOF and keeps token positions inside the input.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("Lex(%q): stream not EOF-terminated: %v", src, toks)
		}
		lines := strings.Count(src, "\n") + 1
		for _, tok := range toks {
			if tok.Line < 1 || tok.Line > lines+1 {
				t.Fatalf("Lex(%q): token %v has line %d outside input", src, tok, tok.Line)
			}
		}
	})
}

// FuzzParse asserts the rule parser never panics and that anything it
// accepts survives a print → reparse round trip (the fixpoint property the
// emitters rely on).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rules, err := ParseRules(src)
		if err != nil {
			return
		}
		var printed strings.Builder
		for _, r := range rules {
			printed.WriteString(r.String())
			printed.WriteByte('\n')
		}
		rules2, err := ParseRules(printed.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\n(printed: %q)", src, err, printed.String())
		}
		if len(rules2) != len(rules) {
			t.Fatalf("reparse of %q: %d rules became %d", src, len(rules), len(rules2))
		}
	})
}
