package classifier

import (
	"strings"
	"testing"

	"guava/internal/relstore"
)

func parseHabits(t *testing.T, src string) *Classifier {
	t.Helper()
	c, err := Parse("test", "", habitsDomain, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAnalyzeIntervalsComplete: Habits(Cancer) covers [0, +inf) with no
// internal gaps and no shadowed rules.
func TestAnalyzeIntervalsComplete(t *testing.T) {
	c := parseHabits(t, habitsCancerSrc)
	rep, err := AnalyzeIntervals(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Node != "PacksPerDay" {
		t.Errorf("node = %q", rep.Node)
	}
	if len(rep.Gaps) != 0 {
		t.Errorf("gaps = %v, want none", rep.Gaps)
	}
	if len(rep.Shadowed) != 0 {
		t.Errorf("shadowed = %v, want none", rep.Shadowed)
	}
	if !rep.UncoveredBelow {
		t.Error("values below 0 are legitimately unclassified")
	}
	if rep.UncoveredAbove {
		t.Error("PacksPerDay >= 5 covers +inf")
	}
	// Rule intervals reconstruct the thresholds.
	if got := rep.RuleIntervals[1][0].String(); got != "(0, 2)" {
		t.Errorf("rule 2 interval = %s", got)
	}
	if got := rep.RuleIntervals[2][0].String(); got != "[2, 5)" {
		t.Errorf("rule 3 interval = %s", got)
	}
	if got := rep.RuleIntervals[3][0].String(); got != "[5, +inf)" {
		t.Errorf("rule 4 interval = %s", got)
	}
}

// TestAnalyzeIntervalsGap: a classifier missing the [2,5) band reports the
// gap — the bug an analyst most wants caught.
func TestAnalyzeIntervalsGap(t *testing.T) {
	c := parseHabits(t, `
None  <- PacksPerDay = 0
Light <- 0 < PacksPerDay < 2
Heavy <- PacksPerDay >= 5
`)
	rep, err := AnalyzeIntervals(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Gaps) != 1 {
		t.Fatalf("gaps = %v, want one", rep.Gaps)
	}
	if got := rep.Gaps[0].String(); got != "[2, 5)" {
		t.Errorf("gap = %s, want [2, 5)", got)
	}
	txt := rep.Render(c)
	if !strings.Contains(txt, "GAP: [2, 5)") {
		t.Errorf("render:\n%s", txt)
	}
}

// TestAnalyzeIntervalsShadowed: a rule fully covered by earlier rules is
// unreachable under first-match semantics.
func TestAnalyzeIntervalsShadowed(t *testing.T) {
	c := parseHabits(t, `
Light <- PacksPerDay >= 0
Heavy <- 2 <= PacksPerDay < 5
None  <- PacksPerDay < 0
`)
	rep, err := AnalyzeIntervals(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shadowed) != 1 || rep.Shadowed[0] != 1 {
		t.Errorf("shadowed = %v, want [1]", rep.Shadowed)
	}
	if len(rep.Gaps) != 0 {
		t.Errorf("gaps = %v", rep.Gaps)
	}
	if !strings.Contains(rep.Render(c), "SHADOWED: rule 2") {
		t.Errorf("render:\n%s", rep.Render(c))
	}
}

// TestAnalyzeIntervalsDisjunction: OR guards produce interval unions;
// adjacent half-open intervals merge.
func TestAnalyzeIntervalsDisjunction(t *testing.T) {
	c := parseHabits(t, `
Light <- 0 <= PacksPerDay < 1 OR 1 <= PacksPerDay < 2
Heavy <- PacksPerDay >= 2
`)
	rep, err := AnalyzeIntervals(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RuleIntervals[0]) != 1 || rep.RuleIntervals[0][0].String() != "[0, 2)" {
		t.Errorf("merged union = %v", rep.RuleIntervals[0])
	}
	if len(rep.Gaps) != 0 {
		t.Errorf("gaps = %v", rep.Gaps)
	}
	// Open endpoints do NOT merge across a missing point.
	c2 := parseHabits(t, `
Light <- 0 <= PacksPerDay < 1 OR 1 < PacksPerDay <= 2
Heavy <- PacksPerDay > 2
`)
	rep2, err := AnalyzeIntervals(c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Gaps) != 1 || rep2.Gaps[0].String() != "[1, 1]" {
		t.Errorf("point gap = %v", rep2.Gaps)
	}
}

// TestAnalyzeIntervalsMirroredLiterals: "0 < PacksPerDay" and
// "PacksPerDay > 0" analyze identically.
func TestAnalyzeIntervalsMirroredLiterals(t *testing.T) {
	a := parseHabits(t, "Light <- 0 < PacksPerDay\nNone <- PacksPerDay <= 0")
	b := parseHabits(t, "Light <- PacksPerDay > 0\nNone <- 0 >= PacksPerDay")
	ra, err := AnalyzeIntervals(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := AnalyzeIntervals(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.RuleIntervals[0][0] != rb.RuleIntervals[0][0] {
		t.Errorf("%v != %v", ra.RuleIntervals[0][0], rb.RuleIntervals[0][0])
	}
	if len(ra.Gaps) != 0 || len(rb.Gaps) != 0 {
		t.Error("unexpected gaps")
	}
}

// TestAnalyzeIntervalsRejectsNonThreshold: shapes outside the analyzer's
// scope fail with errors, not wrong answers.
func TestAnalyzeIntervalsRejectsNonThreshold(t *testing.T) {
	bad := []string{
		"None <- Smoking = 'Never'",                    // string compare
		"None <- PacksPerDay = 0 AND QuitYearsAgo = 1", // two nodes
		"None <- PacksPerDay IS NULL",                  // null test
		"None <- PacksPerDay = TumorX",                 // node vs node
	}
	for _, src := range bad {
		c := parseHabits(t, src)
		if _, err := AnalyzeIntervals(c); err == nil {
			t.Errorf("%q: expected analysis error", src)
		}
	}
	ent, err := ParseEntity("e", "", "Procedure", "Procedure <- Procedure")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeIntervals(ent); err == nil {
		t.Error("entity classifier must be rejected")
	}
	// TRUE guards are fine (full line).
	c := parseHabits(t, "None <- TRUE")
	rep, err := AnalyzeIntervals(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Gaps) != 0 || rep.UncoveredBelow || rep.UncoveredAbove {
		t.Errorf("TRUE guard must cover everything: %+v", rep)
	}
}

// TestAnalyzeSample: dynamic coverage over data.
func TestAnalyzeSample(t *testing.T) {
	tree := fig5Tree(t)
	c := parseHabits(t, habitsCancerSrc)
	b, err := c.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	schema := naiveSchema(t)
	mk := func(packs relstore.Value) relstore.Row {
		return relstore.Row{relstore.Int(1), packs, relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	}
	rows := &relstore.Rows{Schema: schema, Data: []relstore.Row{
		mk(relstore.Float(0)),   // rule 1
		mk(relstore.Float(1)),   // rule 2
		mk(relstore.Float(1.5)), // rule 2
		mk(relstore.Float(3)),   // rule 3
		mk(relstore.Null()),     // unclassified
	}}
	rep, err := AnalyzeSample(b, rows)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 5 || rep.Unclassified != 1 {
		t.Errorf("total=%d unclassified=%d", rep.Total, rep.Unclassified)
	}
	wantFired := []int{1, 2, 1, 0}
	for i, w := range wantFired {
		if rep.Fired[i] != w {
			t.Errorf("rule %d fired %d, want %d", i+1, rep.Fired[i], w)
		}
	}
	if len(rep.NeverFired) != 1 || rep.NeverFired[0] != 3 {
		t.Errorf("never fired = %v", rep.NeverFired)
	}
	if got := rep.UnclassifiedFraction(); got != 0.2 {
		t.Errorf("unclassified fraction = %v", got)
	}
	empty := &SampleReport{}
	if empty.UnclassifiedFraction() != 0 {
		t.Error("empty sample fraction must be 0")
	}
}
