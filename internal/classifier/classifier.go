package classifier

import (
	"fmt"
	"strings"

	"guava/internal/relstore"
)

// Target identifies what a classifier maps data *into*: an entity of a study
// schema and, for domain classifiers, one domain of one attribute. Elements
// lists the categorical values of the domain (empty for open numeric or
// textual domains); rule values that are bare identifiers resolve against it
// — in Figure 5 "None", "Light", "Moderate", "Heavy" are domain elements,
// not g-tree nodes.
type Target struct {
	Entity    string
	Attribute string
	Domain    string
	Kind      relstore.Kind
	Elements  []string
}

// String renders the target for display.
func (t Target) String() string {
	if t.Attribute == "" {
		return t.Entity
	}
	return fmt.Sprintf("%s.%s:%s", t.Entity, t.Attribute, t.Domain)
}

// HasElement reports whether name is a categorical element of the domain.
func (t Target) HasElement(name string) bool {
	for _, e := range t.Elements {
		if e == name {
			return true
		}
	}
	return false
}

// Classifier is one MultiClass classifier: a named, annotated list of rules
// mapping g-tree data to a study-schema domain (domain classifier) or
// selecting which form instances become entities (entity classifier).
type Classifier struct {
	// Name is the analyst-facing name, e.g. "Habits (Cancer)".
	Name string
	// Description is the analyst's annotation — the paper requires every
	// artifact to carry who/when/why context.
	Description string
	// Target is the domain (or entity) being mapped to.
	Target Target
	// IsEntity distinguishes entity classifiers from domain classifiers.
	IsEntity bool
	// IsCleaner marks data-cleaning classifiers (Section 6 extension):
	// rules of the form "DISCARD <- guard" drop matching records from the
	// study before classification.
	IsCleaner bool
	// Source is the original rule text.
	Source string
	// Rules are the parsed declarative statements, in priority order.
	Rules []*Rule
}

// Parse builds a domain classifier from rule text (one "value <- guard" per
// line).
func Parse(name, description string, target Target, src string) (*Classifier, error) {
	if target.Attribute == "" {
		return nil, fmt.Errorf("classifier %q: domain classifier needs a target attribute", name)
	}
	rules, err := ParseRules(src)
	if err != nil {
		return nil, fmt.Errorf("classifier %q: %w", name, err)
	}
	return &Classifier{Name: name, Description: description, Target: target, Source: src, Rules: rules}, nil
}

// ParseEntity builds an entity classifier: its rules' values must all be the
// target entity name, and (checked at bind time) its guards must reference a
// g-tree form node.
func ParseEntity(name, description, entity, src string) (*Classifier, error) {
	rules, err := ParseRules(src)
	if err != nil {
		return nil, fmt.Errorf("entity classifier %q: %w", name, err)
	}
	for _, r := range rules {
		id, ok := r.Value.(*Ident)
		if !ok || id.Name != entity {
			return nil, fmt.Errorf("entity classifier %q: rule value must be the entity name %q, got %s", name, entity, r.Value)
		}
	}
	return &Classifier{
		Name:        name,
		Description: description,
		Target:      Target{Entity: entity},
		IsEntity:    true,
		Source:      src,
		Rules:       rules,
	}, nil
}

// DiscardKeyword is the reserved rule value of cleaning classifiers.
const DiscardKeyword = "DISCARD"

// ParseCleaner builds a data-cleaning classifier — the paper's Section 6
// extension: "analysts may also choose to discard data based on the needs of
// the particular study they wish to run". Every rule's value must be the
// DISCARD keyword; records matching any guard are dropped from the study
// before classification.
func ParseCleaner(name, description, src string) (*Classifier, error) {
	rules, err := ParseRules(src)
	if err != nil {
		return nil, fmt.Errorf("cleaning classifier %q: %w", name, err)
	}
	for _, r := range rules {
		id, ok := r.Value.(*Ident)
		if !ok || id.Name != DiscardKeyword {
			return nil, fmt.Errorf("cleaning classifier %q: rule value must be %s, got %s", name, DiscardKeyword, r.Value)
		}
	}
	return &Classifier{
		Name:        name,
		Description: description,
		IsCleaner:   true,
		Source:      src,
		Rules:       rules,
	}, nil
}

// String renders the classifier header and rules, the way Figure 5 displays
// them for inspection and reuse.
func (c *Classifier) String() string {
	var sb strings.Builder
	kind := "Classifier"
	if c.IsEntity {
		kind = "Entity Classifier"
	}
	if c.IsCleaner {
		kind = "Cleaning Classifier"
	}
	if c.IsCleaner {
		fmt.Fprintf(&sb, "%s %s\n", kind, c.Name)
	} else {
		fmt.Fprintf(&sb, "%s %s -> %s\n", kind, c.Name, c.Target)
	}
	if c.Description != "" {
		fmt.Fprintf(&sb, "  -- %s\n", c.Description)
	}
	for _, r := range c.Rules {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}

// Idents returns the distinct unresolved identifiers appearing anywhere in
// the classifier's rules, in first-appearance order. (Which of these are
// g-tree nodes is decided at bind time.)
func (c *Classifier) Idents() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range c.Rules {
		for _, n := range []Node{r.Value, r.Guard} {
			walkIdents(n, func(id *Ident) {
				if !seen[id.Name] {
					seen[id.Name] = true
					out = append(out, id.Name)
				}
			})
		}
	}
	return out
}
