package classifier

import (
	"strings"
	"unicode"
)

// lexer converts classifier text into tokens. Newlines are significant (they
// separate rules) and collapse into a single TokNewline. Comments run from
// "--" to end of line, as analysts annotate rules inline.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

var keywords = map[string]TokKind{
	"AND": TokAnd, "OR": TokOr, "NOT": TokNot, "IS": TokIs, "IN": TokIn,
	"NULL": TokNull, "TRUE": TokTrue, "FALSE": TokFalse,
}

// Lex tokenizes the whole input, returning the token stream or the first
// lexical error.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	emit := func(k TokKind, text string, line, col int) {
		toks = append(toks, Token{Kind: k, Text: text, Line: line, Col: col})
	}
	for l.pos < len(l.src) {
		line, col := l.line, l.col
		b := l.peekByte()
		switch {
		case b == '\n':
			l.advance()
			if len(toks) > 0 && toks[len(toks)-1].Kind != TokNewline {
				emit(TokNewline, "\\n", line, col)
			}
		case b == ' ' || b == '\t' || b == '\r':
			l.advance()
		case b == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case b == '<':
			l.advance()
			switch l.peekByte() {
			case '-':
				l.advance()
				emit(TokArrow, "<-", line, col)
			case '=':
				l.advance()
				emit(TokLe, "<=", line, col)
			case '>':
				l.advance()
				emit(TokNe, "<>", line, col)
			default:
				emit(TokLt, "<", line, col)
			}
		case b == '>':
			l.advance()
			if l.peekByte() == '=' {
				l.advance()
				emit(TokGe, ">=", line, col)
			} else {
				emit(TokGt, ">", line, col)
			}
		case b == '!':
			l.advance()
			if l.peekByte() == '=' {
				l.advance()
				emit(TokNe, "!=", line, col)
			} else {
				return nil, &Error{Line: line, Col: col, Msg: "unexpected '!'"}
			}
		case b == '=':
			l.advance()
			emit(TokEq, "=", line, col)
		case b == '(':
			l.advance()
			emit(TokLParen, "(", line, col)
		case b == ')':
			l.advance()
			emit(TokRParen, ")", line, col)
		case b == ',':
			l.advance()
			emit(TokComma, ",", line, col)
		case b == '+':
			l.advance()
			emit(TokPlus, "+", line, col)
		case b == '-':
			l.advance()
			emit(TokMinus, "-", line, col)
		case b == '*':
			l.advance()
			emit(TokStar, "*", line, col)
		case b == '/':
			l.advance()
			emit(TokSlash, "/", line, col)
		case b == '%':
			l.advance()
			emit(TokPercent, "%", line, col)
		case b == '\'' || b == '"':
			quote := b
			l.advance()
			var sb strings.Builder
			closed := false
			for l.pos < len(l.src) {
				c := l.advance()
				if c == quote {
					// Doubled quote escapes itself.
					if l.peekByte() == quote {
						l.advance()
						sb.WriteByte(quote)
						continue
					}
					closed = true
					break
				}
				if c == '\n' {
					return nil, &Error{Line: line, Col: col, Msg: "string literal spans newline"}
				}
				sb.WriteByte(c)
			}
			if !closed {
				return nil, &Error{Line: line, Col: col, Msg: "unterminated string literal"}
			}
			emit(TokString, sb.String(), line, col)
		case b >= '0' && b <= '9' || b == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			var sb strings.Builder
			seenDot := false
			for l.pos < len(l.src) {
				c := l.peekByte()
				if c >= '0' && c <= '9' {
					sb.WriteByte(l.advance())
					continue
				}
				if c == '.' && !seenDot {
					seenDot = true
					sb.WriteByte(l.advance())
					continue
				}
				break
			}
			emit(TokNumber, sb.String(), line, col)
		case isIdentStart(rune(b)):
			var sb strings.Builder
			for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
				sb.WriteByte(l.advance())
			}
			word := sb.String()
			if k, ok := keywords[strings.ToUpper(word)]; ok {
				emit(k, word, line, col)
			} else {
				emit(TokIdent, word, line, col)
			}
		default:
			return nil, &Error{Line: line, Col: col, Msg: "unexpected character " + string(b)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: l.line, Col: l.col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
