package classifier

import (
	"fmt"
	"strings"
)

// Node is an AST node of the classifier expression language.
type Node interface {
	// String renders the node back to classifier-language source.
	String() string
}

// NumLit is a numeric literal. Integral values keep IsInt true so the
// checker can produce INTEGER-typed expressions.
type NumLit struct {
	Int     int64
	Float   float64
	IsInt   bool
	SrcText string
}

func (n *NumLit) String() string { return n.SrcText }

// StrLit is a string literal.
type StrLit struct{ S string }

func (s *StrLit) String() string { return "'" + strings.ReplaceAll(s.S, "'", "''") + "'" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ B bool }

func (b *BoolLit) String() string {
	if b.B {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is NULL.
type NullLit struct{}

func (NullLit) String() string { return "NULL" }

// Ident is an unresolved name: a g-tree node reference, or — in value
// position — possibly a domain element of the target domain ("None",
// "Light", …), resolved by the checker.
type Ident struct {
	Name string
	Tok  Token
}

func (i *Ident) String() string { return i.Name }

// Unary is unary minus or NOT.
type Unary struct {
	Op string // "-" or "NOT"
	X  Node
}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + u.X.String()
	}
	return "-" + u.X.String()
}

// Binary is an arithmetic or logical binary operation: + - * / % AND OR.
type Binary struct {
	Op   string
	L, R Node
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Compare is a (possibly chained) comparison: the paper writes guards like
// "0 < PacksPerDay < 2", which desugars to 0 < PacksPerDay AND
// PacksPerDay < 2.
type Compare struct {
	Operands []Node   // n+1 operands
	Ops      []string // n operators: = <> < <= > >=
}

func (c *Compare) String() string {
	var sb strings.Builder
	sb.WriteString(c.Operands[0].String())
	for i, op := range c.Ops {
		sb.WriteString(" " + op + " ")
		sb.WriteString(c.Operands[i+1].String())
	}
	return sb.String()
}

// IsNull is "x IS NULL" / "x IS NOT NULL".
type IsNull struct {
	X      Node
	Negate bool
}

func (n *IsNull) String() string {
	if n.Negate {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

// InList is "x IN (a, b, c)".
type InList struct {
	X    Node
	List []Node
}

func (n *InList) String() string {
	parts := make([]string, len(n.List))
	for i, e := range n.List {
		parts[i] = e.String()
	}
	return n.X.String() + " IN (" + strings.Join(parts, ", ") + ")"
}

// Rule is one declarative statement "Value <- Guard" (Figure 5). A Rule with
// a nil Guard is unconditional (guard TRUE).
type Rule struct {
	Value Node
	Guard Node
}

// String renders the rule back to source.
func (r *Rule) String() string {
	if r.Guard == nil {
		return r.Value.String() + " <- TRUE"
	}
	return fmt.Sprintf("%s <- %s", r.Value.String(), r.Guard.String())
}

// walkIdents visits every identifier in an AST.
func walkIdents(n Node, fn func(*Ident)) {
	switch x := n.(type) {
	case nil:
	case *Ident:
		fn(x)
	case *Unary:
		walkIdents(x.X, fn)
	case *Binary:
		walkIdents(x.L, fn)
		walkIdents(x.R, fn)
	case *Compare:
		for _, o := range x.Operands {
			walkIdents(o, fn)
		}
	case *IsNull:
		walkIdents(x.X, fn)
	case *InList:
		walkIdents(x.X, fn)
		for _, e := range x.List {
			walkIdents(e, fn)
		}
	}
}
