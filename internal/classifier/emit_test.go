package classifier

import (
	"strings"
	"testing"

	"guava/internal/relstore"
)

// TestTokenKindNames: every token kind renders a diagnostic name (these
// appear in analyst-facing error messages).
func TestTokenKindNames(t *testing.T) {
	kinds := []TokKind{
		TokEOF, TokIdent, TokNumber, TokString, TokArrow, TokLParen, TokRParen,
		TokComma, TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokEq,
		TokNe, TokLt, TokLe, TokGt, TokGe, TokAnd, TokOr, TokNot, TokIs,
		TokIn, TokNull, TokTrue, TokFalse, TokNewline,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "TokKind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate token name %q", name)
		}
		seen[name] = true
	}
	if !strings.HasPrefix(TokKind(200).String(), "TokKind(") {
		t.Error("unknown kinds must render numerically")
	}
}

func TestErrorRendering(t *testing.T) {
	withPos := &Error{Line: 3, Col: 7, Msg: "boom"}
	if got := withPos.Error(); !strings.Contains(got, "line 3:7") {
		t.Errorf("error = %q", got)
	}
	noPos := &Error{Msg: "general"}
	if got := noPos.Error(); strings.Contains(got, "line") {
		t.Errorf("error = %q", got)
	}
}

// TestXQueryEmitEdges covers the remaining expression shapes and failure
// modes of the XQuery emitter.
func TestXQueryEmitEdges(t *testing.T) {
	ent, err := ParseEntity("e", "", "Procedure", "Procedure <- Procedure")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Parse("edge", "", habitsDomain, `
None  <- Smoking IS NULL AND PacksPerDay IS NOT NULL
Light <- Smoking IN ('a', 'b') OR NOT (PacksPerDay > 1)
Heavy <- PacksPerDay % 2 = 0 AND PacksPerDay / 2 > 1
`)
	if err != nil {
		t.Fatal(err)
	}
	xq, err := EmitXQuery("doc.xml", ent, []*Classifier{cl})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"empty($p/Smoking)",
		"exists($p/PacksPerDay)",
		`$p/Smoking = ("a", "b")`,
		"not(",
		"mod",
		"div",
	} {
		if !strings.Contains(xq, want) {
			t.Errorf("xquery missing %q:\n%s", want, xq)
		}
	}
	// Unconditional rules render without a where clause.
	uncond, err := Parse("u", "", habitsDomain, "None <- TRUE")
	if err != nil {
		t.Fatal(err)
	}
	xq2, err := EmitXQuery("doc.xml", ent, []*Classifier{uncond})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xq2, "if (true()) then") {
		t.Errorf("unconditional rule:\n%s", xq2)
	}
	// Negated numbers and FALSE literals.
	neg, err := Parse("n", "", habitsDomain, "None <- PacksPerDay > -1 AND FALSE")
	if err != nil {
		t.Fatal(err)
	}
	xq3, err := EmitXQuery("doc.xml", ent, []*Classifier{neg})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xq3, "-1") || !strings.Contains(xq3, "false()") {
		t.Errorf("negated/false:\n%s", xq3)
	}
}

// TestDatalogEmitEdges covers value-term and atom rendering branches.
func TestDatalogEmitEdges(t *testing.T) {
	tree := fig5Tree(t)
	// Arithmetic head value with negation.
	cl, err := Parse("v", "", Target{Entity: "P", Attribute: "A", Domain: "D", Kind: 0},
		"-TumorX + 2 <- TumorX > 0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := EmitDatalog(b, "out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dl, "(-TumorX + 2)") {
		t.Errorf("datalog head:\n%s", dl)
	}
	// IS NULL / IS NOT NULL atoms.
	cl2, err := Parse("n", "", habitsDomain, "None <- Smoking IS NULL AND PacksPerDay IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cl2.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	dl2, err := EmitDatalog(b2, "out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dl2, "null(Smoking)") || !strings.Contains(dl2, "not null(PacksPerDay)") {
		t.Errorf("null atoms:\n%s", dl2)
	}
	// FALSE guard emits no clause at all.
	cl3, err := Parse("f", "", habitsDomain, "None <- FALSE\nLight <- TRUE")
	if err != nil {
		t.Fatal(err)
	}
	b3, err := cl3.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	dl3, err := EmitDatalog(b3, "out")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(dl3, ":-") != 1 {
		t.Errorf("FALSE guard must emit nothing:\n%s", dl3)
	}
}

// TestCleanerBindAndApply: cleaning classifiers bind and evaluate like
// entity classifiers (boolean "discard?" semantics).
func TestCleanerBindAndApply(t *testing.T) {
	tree := fig5Tree(t)
	cl, err := ParseCleaner("c", "drop heavy smokers", "DISCARD <- PacksPerDay >= 5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Bind(tree)
	if err != nil {
		t.Fatal(err)
	}
	schema := naiveSchema(t)
	mkPacksRow := func(p float64) relstore.Row {
		return relstore.Row{relstore.Int(1), relstore.Float(p), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	}
	v, err := b.Apply(mkPacksRow(6), schema)
	if err != nil || !v.Truthy() {
		t.Errorf("heavy row: %v, %v", v, err)
	}
	v, err = b.Apply(mkPacksRow(1), schema)
	if err != nil || v.Truthy() {
		t.Errorf("light row: %v, %v", v, err)
	}
}
