package classifier

import (
	"fmt"
	"sort"

	"guava/internal/gtree"
	"guava/internal/relstore"
)

// Bound is a classifier resolved against one contributor's g-tree: every
// identifier is resolved (g-tree node, domain element, or entity), every
// expression is typed, and the rules are compiled to executable relational
// expressions over the contributor's naive schema. "The input to a
// classifier is contributor data, but as displayed as it appears in a user
// interface rather than as stored in a database" — binding against the
// g-tree rather than the physical schema is exactly that.
type Bound struct {
	Classifier *Classifier
	Tree       *gtree.Tree

	// Refs are the g-tree node names the classifier references, sorted —
	// the versioning component propagates classifiers whose refs did not
	// change between tool versions.
	Refs []string

	// Guards and Values are the compiled per-rule artifacts (parallel to
	// Classifier.Rules). For entity classifiers Values is nil.
	Guards []relstore.Pred
	Values []relstore.Expr
}

// binder carries resolution context.
type binder struct {
	tree     *gtree.Tree
	target   Target
	isEntity bool
	refs     map[string]bool
}

// Bind resolves and type-checks the classifier against a g-tree.
func (c *Classifier) Bind(tree *gtree.Tree) (*Bound, error) {
	b := &binder{tree: tree, target: c.Target, isEntity: c.IsEntity, refs: map[string]bool{}}
	out := &Bound{Classifier: c, Tree: tree}
	for i, r := range c.Rules {
		guard, err := b.compilePred(r.Guard)
		if err != nil {
			return nil, fmt.Errorf("classifier %q rule %d: %w", c.Name, i+1, err)
		}
		out.Guards = append(out.Guards, guard)
		if c.IsEntity || c.IsCleaner {
			// Entity and cleaning classifiers have no value expressions:
			// their meaning is the disjunction of their guards.
			continue
		}
		val, kind, err := b.compileExpr(r.Value)
		if err != nil {
			return nil, fmt.Errorf("classifier %q rule %d: %w", c.Name, i+1, err)
		}
		if kind != relstore.KindNull && c.Target.Kind != relstore.KindNull && !kindCompatible(kind, c.Target.Kind) {
			return nil, fmt.Errorf("classifier %q rule %d: value has type %s, domain %s expects %s",
				c.Name, i+1, kind, c.Target.Domain, c.Target.Kind)
		}
		out.Values = append(out.Values, val)
	}
	if c.IsEntity {
		// "The classifier must refer to at least one node in the g-tree
		// that represents a form rather than an attribute."
		hasForm := false
		for _, r := range c.Rules {
			walkIdents(r.Guard, func(id *Ident) {
				if n, err := tree.Node(id.Name); err == nil && n.Kind == gtree.FormNode {
					hasForm = true
				}
			})
		}
		if !hasForm {
			return nil, fmt.Errorf("entity classifier %q must reference a form node of the g-tree", c.Name)
		}
	}
	for r := range b.refs {
		out.Refs = append(out.Refs, r)
	}
	sort.Strings(out.Refs)
	return out, nil
}

func kindCompatible(have, want relstore.Kind) bool {
	if have == want {
		return true
	}
	return want == relstore.KindFloat && have == relstore.KindInt
}

// resolveIdent classifies an identifier: a data-storing g-tree node, a form
// node, or (in value position of a categorical domain) a domain element.
func (b *binder) resolveIdent(id *Ident, valuePos bool) (relstore.Expr, relstore.Kind, error) {
	if n, err := b.tree.Node(id.Name); err == nil {
		switch n.Kind {
		case gtree.FieldNode:
			b.refs[id.Name] = true
			return relstore.Col(id.Name), n.DataType, nil
		case gtree.FormNode:
			return nil, relstore.KindNull, errAt(id.Tok, "form node %q cannot be used as a value", id.Name)
		default:
			return nil, relstore.KindNull, errAt(id.Tok, "group box %q stores no data", id.Name)
		}
	}
	if valuePos && !b.isEntity && b.target.HasElement(id.Name) {
		return relstore.Lit(relstore.Str(id.Name)), relstore.KindString, nil
	}
	return nil, relstore.KindNull, errAt(id.Tok, "unknown name %q: not a g-tree node%s", id.Name, b.elementsHint(valuePos))
}

func (b *binder) elementsHint(valuePos bool) string {
	if valuePos && len(b.target.Elements) > 0 {
		return fmt.Sprintf(" or an element of domain %s %v", b.target.Domain, b.target.Elements)
	}
	return ""
}

// compileExpr compiles a value-position expression, returning its kind.
func (b *binder) compileExpr(n Node) (relstore.Expr, relstore.Kind, error) {
	switch x := n.(type) {
	case *NumLit:
		if x.IsInt {
			return relstore.Lit(relstore.Int(x.Int)), relstore.KindInt, nil
		}
		return relstore.Lit(relstore.Float(x.Float)), relstore.KindFloat, nil
	case *StrLit:
		return relstore.Lit(relstore.Str(x.S)), relstore.KindString, nil
	case *BoolLit:
		return relstore.Lit(relstore.Bool(x.B)), relstore.KindBool, nil
	case *NullLit:
		return relstore.Lit(relstore.Null()), relstore.KindNull, nil
	case *Ident:
		return b.resolveIdent(x, true)
	case *Unary:
		if x.Op != "-" {
			return nil, relstore.KindNull, fmt.Errorf("operator %s is not valid in a value clause", x.Op)
		}
		inner, k, err := b.compileExpr(x.X)
		if err != nil {
			return nil, relstore.KindNull, err
		}
		if k != relstore.KindInt && k != relstore.KindFloat && k != relstore.KindNull {
			return nil, relstore.KindNull, fmt.Errorf("cannot negate a %s value", k)
		}
		return relstore.Neg(inner), k, nil
	case *Binary:
		var op relstore.ArithOp
		switch x.Op {
		case "+":
			op = relstore.OpAdd
		case "-":
			op = relstore.OpSub
		case "*":
			op = relstore.OpMul
		case "/":
			op = relstore.OpDiv
		case "%":
			op = relstore.OpMod
		default:
			return nil, relstore.KindNull, fmt.Errorf("operator %s is not valid in a value clause", x.Op)
		}
		l, lk, err := b.compileExpr(x.L)
		if err != nil {
			return nil, relstore.KindNull, err
		}
		r, rk, err := b.compileExpr(x.R)
		if err != nil {
			return nil, relstore.KindNull, err
		}
		if x.Op == "+" && lk == relstore.KindString && rk == relstore.KindString {
			return relstore.Arith(op, l, r), relstore.KindString, nil
		}
		for _, k := range []relstore.Kind{lk, rk} {
			if k != relstore.KindInt && k != relstore.KindFloat && k != relstore.KindNull {
				return nil, relstore.KindNull, fmt.Errorf("arithmetic %s applied to %s operand", x.Op, k)
			}
		}
		k := relstore.KindInt
		if lk == relstore.KindFloat || rk == relstore.KindFloat || x.Op == "/" {
			k = relstore.KindFloat
		}
		return relstore.Arith(op, l, r), k, nil
	default:
		return nil, relstore.KindNull, fmt.Errorf("%s is a condition, not a value", n)
	}
}

var cmpOps = map[string]relstore.CmpOp{
	"=": relstore.CmpEq, "<>": relstore.CmpNe, "<": relstore.CmpLt,
	"<=": relstore.CmpLe, ">": relstore.CmpGt, ">=": relstore.CmpGe,
}

// compilePred compiles a guard. A nil guard is TRUE.
func (b *binder) compilePred(n Node) (relstore.Pred, error) {
	switch x := n.(type) {
	case nil:
		return relstore.True, nil
	case *BoolLit:
		if x.B {
			return relstore.True, nil
		}
		return relstore.False, nil
	case *Ident:
		// A bare identifier in guard position: a boolean field node is a
		// truth test; a form node asserts presence ("Procedure AND
		// SurgeryPerformed = TRUE" of Figure 5c).
		if node, err := b.tree.Node(x.Name); err == nil {
			switch node.Kind {
			case gtree.FormNode:
				if !b.isEntity {
					return nil, errAt(x.Tok, "form node %q may only anchor entity classifiers", x.Name)
				}
				return relstore.True, nil
			case gtree.FieldNode:
				if node.DataType != relstore.KindBool {
					return nil, errAt(x.Tok, "node %q is %s; a bare guard reference must be boolean", x.Name, node.DataType)
				}
				b.refs[x.Name] = true
				return relstore.Truth(relstore.Col(x.Name)), nil
			default:
				return nil, errAt(x.Tok, "group box %q stores no data", x.Name)
			}
		}
		return nil, errAt(x.Tok, "unknown name %q in condition", x.Name)
	case *Unary:
		if x.Op != "NOT" {
			return nil, fmt.Errorf("%s is a value, not a condition", n)
		}
		inner, err := b.compilePred(x.X)
		if err != nil {
			return nil, err
		}
		return relstore.Not(inner), nil
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := b.compilePred(x.L)
			if err != nil {
				return nil, err
			}
			r, err := b.compilePred(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" {
				return relstore.And(l, r), nil
			}
			return relstore.Or(l, r), nil
		default:
			return nil, fmt.Errorf("arithmetic expression %s is not a condition", n)
		}
	case *Compare:
		exprs := make([]relstore.Expr, len(x.Operands))
		kinds := make([]relstore.Kind, len(x.Operands))
		for i, o := range x.Operands {
			e, k, err := b.compileExpr(o)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			kinds[i] = k
		}
		var preds []relstore.Pred
		for i, opName := range x.Ops {
			op := cmpOps[opName]
			lk, rk := kinds[i], kinds[i+1]
			if !comparableKinds(lk, rk, op) {
				return nil, fmt.Errorf("cannot compare %s with %s using %s", lk, rk, opName)
			}
			preds = append(preds, relstore.Cmp(op, exprs[i], exprs[i+1]))
		}
		return relstore.And(preds...), nil
	case *IsNull:
		e, _, err := b.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		if x.Negate {
			return relstore.IsNotNull(e), nil
		}
		return relstore.IsNull(e), nil
	case *InList:
		e, k, err := b.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		var vals []relstore.Value
		for _, item := range x.List {
			ie, ik, err := b.compileExpr(item)
			if err != nil {
				return nil, err
			}
			lit, ok := ie.(relstore.LitExpr)
			if !ok {
				return nil, fmt.Errorf("IN list items must be literals, got %s", item)
			}
			if !comparableKinds(k, ik, relstore.CmpEq) {
				return nil, fmt.Errorf("IN list item %s has type %s, expected %s", item, ik, k)
			}
			vals = append(vals, lit.V)
		}
		return relstore.In(e, vals...), nil
	default:
		return nil, fmt.Errorf("%s is a value, not a condition", n)
	}
}

func comparableKinds(l, r relstore.Kind, op relstore.CmpOp) bool {
	if l == relstore.KindNull || r == relstore.KindNull {
		return op == relstore.CmpEq || op == relstore.CmpNe
	}
	numeric := func(k relstore.Kind) bool { return k == relstore.KindInt || k == relstore.KindFloat }
	if numeric(l) && numeric(r) {
		return true
	}
	if l != r {
		return false
	}
	if l == relstore.KindBool {
		return op == relstore.CmpEq || op == relstore.CmpNe
	}
	return true
}

// BindCondition parses and binds a standalone filter condition (the
// WHERE-clause-like conditions analysts write per study, Section 3) against
// a g-tree, returning the executable predicate and the g-tree nodes it
// references.
func BindCondition(tree *gtree.Tree, src string) (relstore.Pred, []string, error) {
	n, err := ParseExpr(src)
	if err != nil {
		return nil, nil, err
	}
	b := &binder{tree: tree, refs: map[string]bool{}}
	p, err := b.compilePred(n)
	if err != nil {
		return nil, nil, err
	}
	refs := make([]string, 0, len(b.refs))
	for r := range b.refs {
		refs = append(refs, r)
	}
	sort.Strings(refs)
	return p, refs, nil
}

// Case compiles a domain classifier into one searched-CASE expression:
// each rule becomes a WHEN/THEN branch, unmatched rows yield NULL
// ("unclassified").
func (bd *Bound) Case() relstore.CaseExpr {
	branches := make([]relstore.CaseBranch, len(bd.Guards))
	for i := range bd.Guards {
		branches[i] = relstore.CaseBranch{When: bd.Guards[i], Then: bd.Values[i]}
	}
	return relstore.CaseExpr{Branches: branches}
}

// Selection compiles an entity classifier into the disjunction of its
// guards: a form instance becomes an entity when any rule admits it.
func (bd *Bound) Selection() relstore.Pred {
	return relstore.Or(bd.Guards...)
}

// Apply evaluates the classifier directly over one naive-schema row. Domain
// classifiers return the classified value (NULL when no rule matches);
// entity classifiers return TRUE/FALSE (selected); cleaning classifiers
// return TRUE/FALSE (discarded).
func (bd *Bound) Apply(row relstore.Row, schema *relstore.Schema) (relstore.Value, error) {
	if bd.Classifier.IsEntity || bd.Classifier.IsCleaner {
		ok, err := bd.Selection().Eval(row, schema)
		if err != nil {
			return relstore.Null(), err
		}
		return relstore.Bool(ok), nil
	}
	c := bd.Case()
	return c.Eval(row, schema)
}

// ClassifyColumn evaluates the classifier over a whole relation, returning
// the classified values in row order.
func (bd *Bound) ClassifyColumn(rows *relstore.Rows) ([]relstore.Value, error) {
	out := make([]relstore.Value, rows.Len())
	for i, r := range rows.Data {
		v, err := bd.Apply(r, rows.Schema)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
