package classifier

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"guava/internal/relstore"
)

// This file implements classifier analysis: the tooling that lets a data
// analyst trust a classifier before running a study. Two complementary
// checks:
//
//   - AnalyzeIntervals: static analysis of single-variable threshold
//     classifiers (the dominant Figure 5 shape). It reconstructs the
//     number-line interval each rule covers and reports gaps (values no rule
//     classifies), and rules shadowed by earlier rules (unreachable under
//     first-match semantics).
//
//   - AnalyzeSample: dynamic analysis over data — which rules never fired,
//     and what fraction of records stayed unclassified.

// Interval is a contiguous range over the number line.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
	LoInf, HiInf   bool // unbounded below / above
}

// String renders the interval in math notation.
func (iv Interval) String() string {
	lo := "("
	loVal := "-inf"
	if !iv.LoInf {
		loVal = trimFloat(iv.Lo)
		if !iv.LoOpen {
			lo = "["
		}
	}
	hi := ")"
	hiVal := "+inf"
	if !iv.HiInf {
		hiVal = trimFloat(iv.Hi)
		if !iv.HiOpen {
			hi = "]"
		}
	}
	return fmt.Sprintf("%s%s, %s%s", lo, loVal, hiVal, hi)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// empty reports whether no value satisfies the interval.
func (iv Interval) empty() bool {
	if iv.LoInf || iv.HiInf {
		return false
	}
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// intersect narrows the interval with another constraint.
func (iv Interval) intersect(o Interval) Interval {
	out := iv
	if !o.LoInf {
		if out.LoInf || o.Lo > out.Lo || (o.Lo == out.Lo && o.LoOpen) {
			out.Lo, out.LoOpen, out.LoInf = o.Lo, o.LoOpen, false
		}
	}
	if !o.HiInf {
		if out.HiInf || o.Hi < out.Hi || (o.Hi == out.Hi && o.HiOpen) {
			out.Hi, out.HiOpen, out.HiInf = o.Hi, o.HiOpen, false
		}
	}
	return out
}

func fullInterval() Interval { return Interval{LoInf: true, HiInf: true} }

// IntervalReport is the result of static threshold analysis.
type IntervalReport struct {
	// Node is the single g-tree node the classifier thresholds over.
	Node string
	// RuleIntervals maps each rule index to the intervals its guard covers.
	RuleIntervals [][]Interval
	// Gaps are maximal uncovered intervals between the smallest and largest
	// finite bound (values there classify to NULL).
	Gaps []Interval
	// UncoveredBelow/UncoveredAbove report whether values below the
	// smallest bound / above the largest bound are unclassified.
	UncoveredBelow, UncoveredAbove bool
	// Shadowed lists rule indices that can never fire because earlier rules
	// fully cover their intervals.
	Shadowed []int
}

// AnalyzeIntervals statically analyzes a single-variable threshold
// classifier. It fails with a descriptive error when the classifier is not
// of that shape (multi-node guards, string comparisons, IS NULL, …).
func AnalyzeIntervals(c *Classifier) (*IntervalReport, error) {
	if c.IsEntity {
		return nil, fmt.Errorf("classifier: %q is an entity classifier; interval analysis applies to domain classifiers", c.Name)
	}
	rep := &IntervalReport{}
	for i, r := range c.Rules {
		ivs, node, err := guardIntervals(r.Guard)
		if err != nil {
			return nil, fmt.Errorf("classifier: %q rule %d: %w", c.Name, i+1, err)
		}
		if rep.Node == "" {
			rep.Node = node
		} else if node != "" && node != rep.Node {
			return nil, fmt.Errorf("classifier: %q thresholds over both %q and %q; interval analysis needs one variable", c.Name, rep.Node, node)
		}
		rep.RuleIntervals = append(rep.RuleIntervals, ivs)
	}
	// Shadowing: a rule is unreachable when every one of its intervals is
	// covered by the union of earlier rules' intervals.
	var covered []Interval
	for i, ivs := range rep.RuleIntervals {
		if len(ivs) > 0 && allCovered(ivs, covered) {
			rep.Shadowed = append(rep.Shadowed, i)
		}
		covered = mergeIntervals(append(covered, ivs...))
	}
	// Gaps: complement of the union within the finite hull.
	rep.Gaps, rep.UncoveredBelow, rep.UncoveredAbove = complement(covered)
	return rep, nil
}

// guardIntervals converts a guard into a union of intervals over a single
// node. TRUE guards return the full line with node "".
func guardIntervals(g Node) ([]Interval, string, error) {
	disjuncts, err := dnf(g, false)
	if err != nil {
		return nil, "", err
	}
	var out []Interval
	node := ""
	for _, conj := range disjuncts {
		iv := fullInterval()
		for _, atom := range conj {
			cmp, ok := atom.(*Compare)
			if !ok {
				return nil, "", fmt.Errorf("guard %s is not a numeric threshold", atom)
			}
			n, constraint, err := atomInterval(cmp)
			if err != nil {
				return nil, "", err
			}
			if node == "" {
				node = n
			} else if n != node {
				return nil, "", fmt.Errorf("guard mixes nodes %q and %q", node, n)
			}
			iv = iv.intersect(constraint)
		}
		if !iv.empty() {
			out = append(out, iv)
		}
	}
	return mergeIntervals(out), node, nil
}

// atomInterval converts one comparison into an interval constraint.
func atomInterval(c *Compare) (string, Interval, error) {
	l, r := c.Operands[0], c.Operands[1]
	op := c.Ops[0]
	name, num, ok := identNumber(l, r)
	if !ok {
		// Try the mirrored orientation, flipping the operator.
		name, num, ok = identNumber(r, l)
		if !ok {
			return "", Interval{}, fmt.Errorf("comparison %s is not <node> vs <number>", c)
		}
		op = mirrorCmp(op)
	}
	switch op {
	case "=":
		return name, Interval{Lo: num, Hi: num}, nil
	case "<":
		return name, Interval{LoInf: true, Hi: num, HiOpen: true}, nil
	case "<=":
		return name, Interval{LoInf: true, Hi: num}, nil
	case ">":
		return name, Interval{Lo: num, LoOpen: true, HiInf: true}, nil
	case ">=":
		return name, Interval{Lo: num, HiInf: true}, nil
	default:
		return "", Interval{}, fmt.Errorf("operator %s is not an interval constraint", op)
	}
}

func identNumber(a, b Node) (string, float64, bool) {
	id, ok := a.(*Ident)
	if !ok {
		return "", 0, false
	}
	v, ok := numericLiteral(b)
	if !ok {
		return "", 0, false
	}
	return id.Name, v, true
}

// numericLiteral folds a (possibly unary-negated) numeric literal.
func numericLiteral(n Node) (float64, bool) {
	switch x := n.(type) {
	case *NumLit:
		if x.IsInt {
			return float64(x.Int), true
		}
		return x.Float, true
	case *Unary:
		if x.Op != "-" {
			return 0, false
		}
		v, ok := numericLiteral(x.X)
		return -v, ok
	default:
		return 0, false
	}
}

func mirrorCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// boundLess orders interval start bounds.
func startLess(a, b Interval) bool {
	if a.LoInf != b.LoInf {
		return a.LoInf
	}
	if a.LoInf {
		return false
	}
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return !a.LoOpen && b.LoOpen
}

// touchesOrOverlaps reports whether b starts within or adjacent to a's span.
func touchesOrOverlaps(a, b Interval) bool {
	if a.HiInf || b.LoInf {
		return true
	}
	if b.Lo < a.Hi {
		return true
	}
	if b.Lo == a.Hi {
		// Adjacent: [x, 2) ∪ [2, y) merges; (…, 2) ∪ (2, …) leaves point 2.
		return !(a.HiOpen && b.LoOpen)
	}
	return false
}

// mergeIntervals unions intervals into a minimal sorted set.
func mergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool { return startLess(sorted[i], sorted[j]) })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if touchesOrOverlaps(*last, iv) {
			// Extend the end if iv reaches further.
			if !last.HiInf {
				if iv.HiInf || iv.Hi > last.Hi || (iv.Hi == last.Hi && !iv.HiOpen) {
					last.Hi, last.HiOpen, last.HiInf = iv.Hi, iv.HiOpen, iv.HiInf
				}
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// covers reports whether merged (sorted, disjoint) covers iv entirely.
func covers(merged []Interval, iv Interval) bool {
	for _, m := range merged {
		// iv must sit inside a single merged interval (merged set is
		// maximal, so no need to span).
		loOK := m.LoInf || (!iv.LoInf && (iv.Lo > m.Lo || (iv.Lo == m.Lo && (m.LoOpen == false || iv.LoOpen))))
		hiOK := m.HiInf || (!iv.HiInf && (iv.Hi < m.Hi || (iv.Hi == m.Hi && (m.HiOpen == false || iv.HiOpen))))
		if loOK && hiOK {
			return true
		}
	}
	return false
}

func allCovered(ivs, merged []Interval) bool {
	for _, iv := range ivs {
		if !covers(merged, iv) {
			return false
		}
	}
	return true
}

// complement returns the gaps between merged coverage intervals plus
// open-endedness flags.
func complement(merged []Interval) (gaps []Interval, below, above bool) {
	if len(merged) == 0 {
		return nil, true, true
	}
	first, last := merged[0], merged[len(merged)-1]
	below = !first.LoInf
	above = !last.HiInf
	for i := 0; i+1 < len(merged); i++ {
		a, b := merged[i], merged[i+1]
		gap := Interval{
			Lo: a.Hi, LoOpen: !a.HiOpen,
			Hi: b.Lo, HiOpen: !b.LoOpen,
		}
		if !gap.empty() {
			gaps = append(gaps, gap)
		}
	}
	return gaps, below, above
}

// SampleReport is the result of evaluating a classifier over sample data.
type SampleReport struct {
	// Fired counts, per rule index, how many sample rows each rule matched
	// (first-match semantics).
	Fired []int
	// NeverFired lists rule indices that matched nothing.
	NeverFired []int
	// Unclassified counts rows no rule matched.
	Unclassified int
	// Total is the sample size.
	Total int
}

// UnclassifiedFraction returns the unclassified share (0 on empty samples).
func (r *SampleReport) UnclassifiedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Unclassified) / float64(r.Total)
}

// AnalyzeSample evaluates the bound classifier over sample rows and reports
// rule coverage.
func AnalyzeSample(bd *Bound, rows *relstore.Rows) (*SampleReport, error) {
	rep := &SampleReport{Fired: make([]int, len(bd.Guards)), Total: rows.Len()}
	for _, row := range rows.Data {
		matched := false
		for i, g := range bd.Guards {
			ok, err := g.Eval(row, rows.Schema)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Fired[i]++
				matched = true
				break
			}
		}
		if !matched {
			rep.Unclassified++
		}
	}
	for i, n := range rep.Fired {
		if n == 0 {
			rep.NeverFired = append(rep.NeverFired, i)
		}
	}
	return rep, nil
}

// RenderReport formats an interval report for the analyst.
func (rep *IntervalReport) Render(c *Classifier) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "threshold analysis of %q over %s\n", c.Name, rep.Node)
	for i, ivs := range rep.RuleIntervals {
		parts := make([]string, len(ivs))
		for j, iv := range ivs {
			parts[j] = iv.String()
		}
		cover := strings.Join(parts, " ∪ ")
		if cover == "" {
			cover = "∅"
		}
		fmt.Fprintf(&sb, "  rule %d (%s): %s\n", i+1, c.Rules[i].Value, cover)
	}
	for _, g := range rep.Gaps {
		fmt.Fprintf(&sb, "  GAP: %s is unclassified\n", g)
	}
	for _, s := range rep.Shadowed {
		fmt.Fprintf(&sb, "  SHADOWED: rule %d can never fire\n", s+1)
	}
	if rep.UncoveredBelow && !math.IsInf(hullLo(rep), -1) {
		fmt.Fprintf(&sb, "  values below %s are unclassified\n", trimFloat(hullLo(rep)))
	}
	if rep.UncoveredAbove && !math.IsInf(hullHi(rep), 1) {
		fmt.Fprintf(&sb, "  values above %s are unclassified\n", trimFloat(hullHi(rep)))
	}
	return sb.String()
}

func hullLo(rep *IntervalReport) float64 {
	lo := math.Inf(1)
	for _, ivs := range rep.RuleIntervals {
		for _, iv := range ivs {
			if !iv.LoInf && iv.Lo < lo {
				lo = iv.Lo
			}
		}
	}
	return lo
}

func hullHi(rep *IntervalReport) float64 {
	hi := math.Inf(-1)
	for _, ivs := range rep.RuleIntervals {
		for _, iv := range ivs {
			if !iv.HiInf && iv.Hi > hi {
				hi = iv.Hi
			}
		}
	}
	return hi
}
