// Package classifier implements the MultiClass classifier language of
// Figure 5 of the paper: "each classifier is a list of declarative
// statements of the form A ← B, where A is an arithmetic calculation and B
// is a Boolean condition. Both clauses use nodes in a g-tree as arguments."
//
// The package provides the concrete syntax (lexer + parser), name resolution
// and type checking against a g-tree and a target study-schema domain,
// direct evaluation over naive-schema rows, and translations to XQuery,
// Datalog, and SQL — the paper hand-translated classifiers into the first
// two; here every translation is generated and the relational one is
// executable, which is what makes Hypothesis #3 machine-checkable.
package classifier

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds of the classifier language.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokArrow  // <-
	TokLParen // (
	TokRParen // )
	TokComma
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq  // =
	TokNe  // <> or !=
	TokLt  // <
	TokLe  // <=
	TokGt  // >
	TokGe  // >=
	TokAnd // AND
	TokOr  // OR
	TokNot // NOT
	TokIs  // IS
	TokIn  // IN
	TokNull
	TokTrue
	TokFalse
	TokNewline
)

// String names the token kind.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokArrow:
		return "'<-'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokPercent:
		return "'%'"
	case TokEq:
		return "'='"
	case TokNe:
		return "'<>'"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	case TokAnd:
		return "AND"
	case TokOr:
		return "OR"
	case TokNot:
		return "NOT"
	case TokIs:
		return "IS"
	case TokIn:
		return "IN"
	case TokNull:
		return "NULL"
	case TokTrue:
		return "TRUE"
	case TokFalse:
		return "FALSE"
	case TokNewline:
		return "newline"
	default:
		return fmt.Sprintf("TokKind(%d)", uint8(k))
	}
}

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// Error is a syntax or semantic error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("classifier: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "classifier: " + e.Msg
}

func errAt(t Token, format string, args ...interface{}) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}
