package classifier

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"guava/internal/relstore"
)

// TestParsePrintFixpoint: rendering a parsed rule list and reparsing it
// yields the same rendering (print ∘ parse ∘ print = print).
func TestParsePrintFixpoint(t *testing.T) {
	srcs := []string{
		habitsCancerSrc,
		habitsChemistrySrc,
		"TumorX * TumorY * TumorZ * 0.52 <- TumorX > 0 AND TumorY > 0 AND TumorZ > 0",
		"Procedure <- Procedure AND SurgeryPerformed = TRUE",
		"None <- Smoking IS NULL OR NOT (PacksPerDay >= 2)\nHeavy <- Smoking IN ('a', 'b')",
		"X <- a = 1 AND (b = 2 OR c = 3)",
		"Val <- -PacksPerDay + 2 * 3 - 1 % 2 > 0",
	}
	for _, src := range srcs {
		rules, err := ParseRules(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		printed := ""
		for _, r := range rules {
			printed += r.String() + "\n"
		}
		rules2, err := ParseRules(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		printed2 := ""
		for _, r := range rules2 {
			printed2 += r.String() + "\n"
		}
		if printed != printed2 {
			t.Errorf("not a fixpoint:\n%q\nvs\n%q", printed, printed2)
		}
	}
}

// TestAnalyzerMatchesEvaluatorProperty cross-validates the static interval
// analyzer against the runtime evaluator: for random threshold classifiers
// and random probe values, a probe classifies to NULL exactly when the
// analyzer says it is uncovered (in a gap or outside the hull).
func TestAnalyzerMatchesEvaluatorProperty(t *testing.T) {
	tree := fig5Tree(t)
	schema := naiveSchema(t)

	f := func(rawBounds []int8, probes []int8) bool {
		if len(rawBounds) < 2 {
			return true
		}
		// Build a random threshold classifier: sorted distinct bounds become
		// consecutive [b_i, b_{i+1}) bands, with every other band omitted to
		// create gaps.
		bounds := map[int]bool{}
		for _, b := range rawBounds {
			bounds[int(b)] = true
		}
		var sorted []int
		for b := range bounds {
			sorted = append(sorted, b)
		}
		sort.Ints(sorted)
		if len(sorted) < 2 {
			return true
		}
		src := ""
		elements := []string{"None", "Light", "Moderate", "Heavy"}
		kept := 0
		for i := 0; i+1 < len(sorted); i++ {
			if i%2 == 1 {
				continue // deliberate gap
			}
			el := elements[kept%len(elements)]
			src += fmt.Sprintf("%s <- %d <= PacksPerDay < %d\n", el, sorted[i], sorted[i+1])
			kept++
		}
		if kept == 0 {
			return true
		}
		cl, err := Parse("prop", "", habitsDomain, src)
		if err != nil {
			return false
		}
		rep, err := AnalyzeIntervals(cl)
		if err != nil {
			return false
		}
		bound, err := cl.Bind(tree)
		if err != nil {
			return false
		}
		inGaps := func(v float64) bool {
			for _, g := range rep.Gaps {
				lo := g.Lo
				if g.LoInf {
					lo = math.Inf(-1)
				}
				hi := g.Hi
				if g.HiInf {
					hi = math.Inf(1)
				}
				loOK := v > lo || (v == lo && !g.LoOpen)
				hiOK := v < hi || (v == hi && !g.HiOpen)
				if loOK && hiOK {
					return true
				}
			}
			return false
		}
		hullLoV, hullHiV := hullLo(rep), hullHi(rep)
		for _, p := range probes {
			v := float64(p)
			row := relstore.Row{relstore.Int(1), relstore.Float(v), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
			got, err := bound.Apply(row, schema)
			if err != nil {
				return false
			}
			uncovered := inGaps(v) ||
				(rep.UncoveredBelow && v < hullLoV) ||
				(rep.UncoveredAbove && v > hullHiV) ||
				(rep.UncoveredBelow && v == hullLoV && startsOpenAt(rep, v)) ||
				(rep.UncoveredAbove && v == hullHiV && endsOpenAt(rep, v))
			if got.IsNull() != uncovered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// startsOpenAt reports whether coverage begins strictly after v (v itself
// uncovered at the lower hull).
func startsOpenAt(rep *IntervalReport, v float64) bool {
	for _, ivs := range rep.RuleIntervals {
		for _, iv := range ivs {
			if !iv.LoInf && iv.Lo == v && !iv.LoOpen {
				return false
			}
			if iv.LoInf {
				return false
			}
		}
	}
	return true
}

// endsOpenAt reports whether coverage ends strictly before v.
func endsOpenAt(rep *IntervalReport, v float64) bool {
	for _, ivs := range rep.RuleIntervals {
		for _, iv := range ivs {
			if !iv.HiInf && iv.Hi == v && !iv.HiOpen {
				return false
			}
			if iv.HiInf {
				return false
			}
		}
	}
	return true
}

// TestDNFPreservesSemanticsProperty: converting guards to DNF (the Datalog
// path) preserves evaluation on random inputs.
func TestDNFPreservesSemanticsProperty(t *testing.T) {
	tree := fig5Tree(t)
	schema := naiveSchema(t)
	f := func(a, b, c int8, probe int8) bool {
		src := fmt.Sprintf(
			"Heavy <- NOT (PacksPerDay < %d AND PacksPerDay >= %d) OR PacksPerDay = %d",
			a, b, c)
		cl, err := Parse("p", "", habitsDomain, src)
		if err != nil {
			return false
		}
		bound, err := cl.Bind(tree)
		if err != nil {
			return false
		}
		// Direct evaluation of the original guard.
		row := relstore.Row{relstore.Int(1), relstore.Float(float64(probe)), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
		direct, err := bound.Guards[0].Eval(row, schema)
		if err != nil {
			return false
		}
		// Evaluation via the DNF the Datalog emitter uses: OR over
		// conjunctions of atoms.
		disjuncts, err := dnf(cl.Rules[0].Guard, false)
		if err != nil {
			return false
		}
		viaDNF := false
		for _, conj := range disjuncts {
			all := true
			for _, atom := range conj {
				// Re-parse each atom through the binder.
				ab, err := Parse("a", "", habitsDomain, "Heavy <- "+atom.(interface{ String() string }).String())
				if err != nil {
					return false
				}
				abound, err := ab.Bind(tree)
				if err != nil {
					return false
				}
				ok, err := abound.Guards[0].Eval(row, schema)
				if err != nil {
					return false
				}
				if !ok {
					all = false
					break
				}
			}
			if all {
				viaDNF = true
				break
			}
		}
		return direct == viaDNF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
