// Package materialize implements the study-schema materialization options of
// Section 4.2: "The naïve approach is to materialize the output of
// individual classifiers into relational tables … If the classifiers/domains
// ratio is high, then a comprehensive materialized study schema may be too
// large to manage. Alternatives include materializing only often-used
// classifiers or determining relationships between classifiers" (deriving B
// from A when they share an algebraic relationship).
package materialize

import (
	"fmt"
	"sort"

	"guava/internal/classifier"
	"guava/internal/relstore"
	"guava/internal/study"
)

// Catalog is the input to a strategy: the selected naive relation of one
// contributor plus the bound classifiers, keyed by output column name.
type Catalog struct {
	Base  *relstore.Rows
	Binds map[string]*classifier.Bound
	// AttributeOf maps column names to their study-schema attribute, so the
	// algebraic strategy knows which classifiers are alternative
	// representations of the same thing.
	AttributeOf map[string]string
}

// Columns returns the catalog's column names, sorted.
func (c *Catalog) Columns() []string {
	out := make([]string, 0, len(c.Binds))
	for n := range c.Binds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// compute evaluates one classifier column from the base relation.
func (c *Catalog) compute(col string) ([]relstore.Value, error) {
	b, ok := c.Binds[col]
	if !ok {
		return nil, fmt.Errorf("materialize: no classifier for column %q", col)
	}
	return b.ClassifyColumn(c.Base)
}

// Strategy is one materialization policy. Prepare builds whatever storage
// the policy keeps; Column serves one classifier's output; StoredCells
// reports the policy's storage footprint (classified cells retained).
type Strategy interface {
	Name() string
	Prepare(c *Catalog) error
	Column(name string) ([]relstore.Value, error)
	StoredCells() int
}

// Full materializes every classifier column up front — Figure 7's
// fully-materialized study schema, "one table per entity classifier per
// entity, with columns representing classifier output".
type Full struct {
	cat  *Catalog
	cols map[string][]relstore.Value
}

// Name implements Strategy.
func (*Full) Name() string { return "full" }

// Prepare implements Strategy.
func (f *Full) Prepare(c *Catalog) error {
	f.cat = c
	f.cols = make(map[string][]relstore.Value, len(c.Binds))
	for _, name := range c.Columns() {
		vals, err := c.compute(name)
		if err != nil {
			return err
		}
		f.cols[name] = vals
	}
	return nil
}

// Column implements Strategy.
func (f *Full) Column(name string) ([]relstore.Value, error) {
	vals, ok := f.cols[name]
	if !ok {
		return nil, fmt.Errorf("materialize: full: unknown column %q", name)
	}
	return vals, nil
}

// StoredCells implements Strategy.
func (f *Full) StoredCells() int {
	n := 0
	for _, v := range f.cols {
		n += len(v)
	}
	return n
}

// Table renders the fully-materialized study table (Figure 7): the base
// key-columns plus one column per classifier.
func (f *Full) Table(keyCols ...string) (*relstore.Rows, error) {
	if f.cat == nil {
		return nil, fmt.Errorf("materialize: full: not prepared")
	}
	out, err := relstore.Project(f.cat.Base, keyCols...)
	if err != nil {
		return nil, err
	}
	cols := make([]relstore.Column, 0, len(f.cols)+len(keyCols))
	cols = append(cols, out.Schema.Columns...)
	names := f.cat.Columns()
	for _, n := range names {
		cols = append(cols, relstore.Column{Name: n, Type: relstore.KindString})
	}
	schema, err := relstore.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	data := make([]relstore.Row, len(out.Data))
	for i, r := range out.Data {
		nr := make(relstore.Row, 0, schema.Arity())
		nr = append(nr, r...)
		for _, n := range names {
			v := f.cols[n][i]
			if !v.IsNull() {
				v = relstore.Str(v.Display())
			}
			nr = append(nr, v)
		}
		data[i] = nr
	}
	return &relstore.Rows{Schema: schema, Data: data}, nil
}

// OnDemand stores nothing and re-evaluates classifiers on every access.
type OnDemand struct {
	cat *Catalog
}

// Name implements Strategy.
func (*OnDemand) Name() string { return "on-demand" }

// Prepare implements Strategy.
func (o *OnDemand) Prepare(c *Catalog) error {
	o.cat = c
	return nil
}

// Column implements Strategy.
func (o *OnDemand) Column(name string) ([]relstore.Value, error) {
	return o.cat.compute(name)
}

// StoredCells implements Strategy.
func (*OnDemand) StoredCells() int { return 0 }

// Hot materializes only the named often-used classifiers; the rest compute
// on demand.
type Hot struct {
	// HotColumns are the columns to precompute.
	HotColumns []string

	cat  *Catalog
	cols map[string][]relstore.Value
}

// Name implements Strategy.
func (*Hot) Name() string { return "hot-only" }

// Prepare implements Strategy.
func (h *Hot) Prepare(c *Catalog) error {
	h.cat = c
	h.cols = make(map[string][]relstore.Value, len(h.HotColumns))
	for _, name := range h.HotColumns {
		vals, err := c.compute(name)
		if err != nil {
			return err
		}
		h.cols[name] = vals
	}
	return nil
}

// Column implements Strategy.
func (h *Hot) Column(name string) ([]relstore.Value, error) {
	if vals, ok := h.cols[name]; ok {
		return vals, nil
	}
	return h.cat.compute(name)
}

// StoredCells implements Strategy.
func (h *Hot) StoredCells() int {
	n := 0
	for _, v := range h.cols {
		n += len(v)
	}
	return n
}

// Algebraic materializes one pivot classifier per study-schema attribute and
// serves sibling classifiers through a derived value mapping when one exists
// (study.DeriveMapping); only underivable siblings fall back to
// re-evaluation. This is Section 4.2's "determining relationships between
// classifiers: if classifier A and classifier B share a simple algebraic
// relationship, then we can materialize A's output and compute B as needed."
type Algebraic struct {
	cat    *Catalog
	pivots map[string]string           // attribute -> pivot column
	cols   map[string][]relstore.Value // materialized pivots
	derive map[string]study.Derivation // derivable column -> mapping from pivot
	// Derived and Fallback expose which columns resolved which way, for
	// tests and the experiment harness.
	Derived  []string
	Fallback []string
}

// Name implements Strategy.
func (*Algebraic) Name() string { return "algebraic" }

// Prepare implements Strategy.
func (a *Algebraic) Prepare(c *Catalog) error {
	a.cat = c
	a.pivots = map[string]string{}
	a.cols = map[string][]relstore.Value{}
	a.derive = map[string]study.Derivation{}
	a.Derived, a.Fallback = nil, nil
	for _, name := range c.Columns() {
		attr := c.AttributeOf[name]
		if attr == "" {
			attr = name
		}
		if _, ok := a.pivots[attr]; ok {
			continue
		}
		// First column of each attribute (sorted order) is the pivot.
		a.pivots[attr] = name
		vals, err := c.compute(name)
		if err != nil {
			return err
		}
		a.cols[name] = vals
	}
	for _, name := range c.Columns() {
		attr := c.AttributeOf[name]
		if attr == "" {
			attr = name
		}
		pivot := a.pivots[attr]
		if pivot == name {
			continue
		}
		target, err := c.compute(name)
		if err != nil {
			return err
		}
		if m, _, ok := study.DeriveMapping(a.cols[pivot], target); ok {
			a.derive[name] = m
			a.Derived = append(a.Derived, name)
		} else {
			a.Fallback = append(a.Fallback, name)
		}
	}
	sort.Strings(a.Derived)
	sort.Strings(a.Fallback)
	return nil
}

// Column implements Strategy.
func (a *Algebraic) Column(name string) ([]relstore.Value, error) {
	if vals, ok := a.cols[name]; ok {
		return vals, nil
	}
	if m, ok := a.derive[name]; ok {
		attr := a.cat.AttributeOf[name]
		if attr == "" {
			attr = name
		}
		pivotVals := a.cols[a.pivots[attr]]
		out := make([]relstore.Value, len(pivotVals))
		for i, pv := range pivotVals {
			v, ok := m.Apply(pv)
			if !ok {
				// Pivot value unseen at Prepare time; recompute honestly.
				return a.cat.compute(name)
			}
			out[i] = v
		}
		return out, nil
	}
	return a.cat.compute(name)
}

// StoredCells implements Strategy.
func (a *Algebraic) StoredCells() int {
	n := 0
	for _, v := range a.cols {
		n += len(v)
	}
	for range a.derive {
		n++ // mapping entries are negligible but non-zero; count one per map
	}
	return n
}
