package materialize

import (
	"strings"
	"testing"

	"guava/internal/classifier"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// catalogFixture builds a catalog over the CORI contributor with several
// classifiers per attribute — including pairs that are and are not
// algebraically related.
func catalogFixture(t *testing.T) *Catalog {
	t.Helper()
	c, err := workload.BuildCORI(3, 80)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Stack.Read(c.DB, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	habits := classifier.Target{Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
		Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"}}
	status := classifier.Target{Entity: "Procedure", Attribute: "Smoking", Domain: "D2",
		Kind: relstore.KindString, Elements: []string{"None", "Current", "Previous"}}
	everTarget := classifier.Target{Entity: "Procedure", Attribute: "Smoking", Domain: "DEver",
		Kind: relstore.KindString, Elements: []string{"Ever", "Never"}}
	alc := classifier.Target{Entity: "Procedure", Attribute: "Alcohol", Domain: "D1",
		Kind: relstore.KindString, Elements: []string{"Any", "None"}}

	parse := func(name string, tgt classifier.Target, src string) *classifier.Bound {
		cl, err := classifier.Parse(name, "", tgt, src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.Bind(c.Tree)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	binds := map[string]*classifier.Bound{
		// Smoking_status is derivable from nothing else; it is the pivot
		// (alphabetically first among Smoking_* columns is Smoking_ever).
		"Smoking_ever": parse("ever", everTarget, `
Never <- Smoking = 'Never'
Ever  <- Smoking = 'Current' OR Smoking = 'Quit'
`),
		// Derivable from Smoking_ever? No — status splits Ever into two.
		"Smoking_status": parse("status", status, `
None     <- Smoking = 'Never'
Current  <- Smoking = 'Current'
Previous <- Smoking = 'Quit'
`),
		// Habits from packs; not derivable from the categorical pivots.
		"Smoking_habits": parse("habits", habits, `
None     <- Smoking = 'Never' OR Smoking = 'Quit'
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`),
		"Alcohol_any": parse("alcohol any", alc, `
None <- Alcohol = 'None'
Any  <- Alcohol <> 'None'
`),
	}
	return &Catalog{
		Base:  rows,
		Binds: binds,
		AttributeOf: map[string]string{
			"Smoking_ever": "Smoking", "Smoking_status": "Smoking", "Smoking_habits": "Smoking",
			"Alcohol_any": "Alcohol",
		},
	}
}

// strategies under test; Hot pins the two hottest columns.
func allStrategies() []Strategy {
	return []Strategy{
		&Full{},
		&OnDemand{},
		&Hot{HotColumns: []string{"Smoking_status", "Alcohol_any"}},
		&Algebraic{},
	}
}

// TestStrategiesAgree: every strategy serves identical column values.
func TestStrategiesAgree(t *testing.T) {
	cat := catalogFixture(t)
	reference := map[string][]relstore.Value{}
	for _, col := range cat.Columns() {
		vals, err := cat.compute(col)
		if err != nil {
			t.Fatal(err)
		}
		reference[col] = vals
	}
	for _, s := range allStrategies() {
		if err := s.Prepare(cat); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for col, want := range reference {
			got, err := s.Column(col)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name(), col, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d values, want %d", s.Name(), col, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Errorf("%s/%s row %d: %v != %v", s.Name(), col, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStorageFootprints(t *testing.T) {
	cat := catalogFixture(t)
	n := cat.Base.Len()
	full := &Full{}
	od := &OnDemand{}
	hot := &Hot{HotColumns: []string{"Smoking_status"}}
	alg := &Algebraic{}
	for _, s := range []Strategy{full, od, hot, alg} {
		if err := s.Prepare(cat); err != nil {
			t.Fatal(err)
		}
	}
	if full.StoredCells() != 4*n {
		t.Errorf("full cells = %d, want %d", full.StoredCells(), 4*n)
	}
	if od.StoredCells() != 0 {
		t.Errorf("on-demand cells = %d, want 0", od.StoredCells())
	}
	if hot.StoredCells() != n {
		t.Errorf("hot cells = %d, want %d", hot.StoredCells(), n)
	}
	// Algebraic stores one pivot per attribute (2 attributes) plus mapping
	// bookkeeping; strictly less than full.
	if alg.StoredCells() >= full.StoredCells() {
		t.Errorf("algebraic cells = %d, must be < full %d", alg.StoredCells(), full.StoredCells())
	}
}

func TestAlgebraicDerivability(t *testing.T) {
	cat := catalogFixture(t)
	alg := &Algebraic{}
	if err := alg.Prepare(cat); err != nil {
		t.Fatal(err)
	}
	// Pivots: Alcohol_any (alone), Smoking_ever (alphabetically first).
	// Smoking_status refines Smoking_ever -> NOT derivable from it.
	// Smoking_habits cuts across -> not derivable either.
	joined := strings.Join(alg.Fallback, ",")
	if !strings.Contains(joined, "Smoking_status") || !strings.Contains(joined, "Smoking_habits") {
		t.Errorf("fallback = %v (derived = %v)", alg.Fallback, alg.Derived)
	}
}

func TestAlgebraicDerivesWhenPossible(t *testing.T) {
	// Build a catalog where one column IS derivable from the pivot: a
	// coarsening of the same classification.
	c, err := workload.BuildCORI(9, 60)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Stack.Read(c.DB, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	fine := classifier.Target{Entity: "P", Attribute: "Smoking", Domain: "fine",
		Kind: relstore.KindString, Elements: []string{"None", "Current", "Previous"}}
	coarse := classifier.Target{Entity: "P", Attribute: "Smoking", Domain: "coarse",
		Kind: relstore.KindString, Elements: []string{"Ever", "Never"}}
	parse := func(name string, tgt classifier.Target, src string) *classifier.Bound {
		cl, err := classifier.Parse(name, "", tgt, src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.Bind(c.Tree)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cat := &Catalog{
		Base: rows,
		Binds: map[string]*classifier.Bound{
			// "A_fine" sorts first -> pivot.
			"A_fine": parse("fine", fine, `
None     <- Smoking = 'Never'
Current  <- Smoking = 'Current'
Previous <- Smoking = 'Quit'
`),
			"B_coarse": parse("coarse", coarse, `
Never <- Smoking = 'Never'
Ever  <- Smoking = 'Current' OR Smoking = 'Quit'
`),
		},
		AttributeOf: map[string]string{"A_fine": "Smoking", "B_coarse": "Smoking"},
	}
	alg := &Algebraic{}
	if err := alg.Prepare(cat); err != nil {
		t.Fatal(err)
	}
	if len(alg.Derived) != 1 || alg.Derived[0] != "B_coarse" {
		t.Fatalf("derived = %v, fallback = %v", alg.Derived, alg.Fallback)
	}
	// Derived column equals direct computation.
	got, err := alg.Column("B_coarse")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cat.compute("B_coarse")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestFigure7Materialize renders the fully-materialized study table of
// Figure 7: key columns plus one column per classifier.
func TestFigure7Materialize(t *testing.T) {
	cat := catalogFixture(t)
	full := &Full{}
	if err := full.Prepare(cat); err != nil {
		t.Fatal(err)
	}
	table, err := full.Table("ProcedureID")
	if err != nil {
		t.Fatal(err)
	}
	want := "ProcedureID, Alcohol_any, Smoking_ever, Smoking_habits, Smoking_status"
	if table.Schema.NameList() != want {
		t.Errorf("schema = %s\nwant %s", table.Schema.NameList(), want)
	}
	if table.Len() != cat.Base.Len() {
		t.Errorf("rows = %d, want %d", table.Len(), cat.Base.Len())
	}
	// Values in the table match the classifier outputs.
	ever, _ := full.Column("Smoking_ever")
	ei := table.Schema.Index("Smoking_ever")
	for i, r := range table.Data {
		if ever[i].IsNull() {
			if !r[ei].IsNull() {
				t.Fatalf("row %d: %v, want NULL", i, r[ei])
			}
			continue
		}
		if !r[ei].Equal(relstore.Str(ever[i].Display())) {
			t.Fatalf("row %d: %v != %v", i, r[ei], ever[i])
		}
	}
}

func TestStrategyErrors(t *testing.T) {
	cat := catalogFixture(t)
	full := &Full{}
	if _, err := full.Table("ProcedureID"); err == nil {
		t.Error("unprepared Table must fail")
	}
	if err := full.Prepare(cat); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Column("Ghost"); err == nil {
		t.Error("unknown column must fail")
	}
	od := &OnDemand{}
	if err := od.Prepare(cat); err != nil {
		t.Fatal(err)
	}
	if _, err := od.Column("Ghost"); err == nil {
		t.Error("unknown column must fail")
	}
}
