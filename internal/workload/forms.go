package workload

import (
	"guava/internal/relstore"
	"guava/internal/ui"
)

// This file defines the user interfaces of the three simulated vendor
// reporting tools. They deliberately disagree — in wording, vocabulary,
// units, stored encodings, and physical layout — because that disagreement
// is the paper's problem statement: "each new vendor necessitates a new ETL
// workflow, potentially for each study."

func strOptions(labels []string) []ui.Option {
	out := make([]ui.Option, len(labels))
	for i, l := range labels {
		out[i] = ui.Option{Display: l, Stored: relstore.Str(l)}
	}
	return out
}

// CORIProcedureForm is contributor A's form: the reference tool, worded like
// the paper's Figure 2, with the Study 1 fields (indication, history,
// examinations, complications, interventions).
func CORIProcedureForm() *ui.Form {
	return &ui.Form{
		Name: "Procedure", Title: "CORI Procedure Report", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{Name: "Demographics", Kind: ui.GroupBox, Question: "Demographics", Children: []*ui.Control{
				{Name: "Age", Kind: ui.TextBox, Question: "Patient age (years)", DataType: relstore.KindInt, Required: true},
				{Name: "Gender", Kind: ui.RadioList, Question: "Patient gender", Options: strOptions(GenderValues), Required: true},
			}},
			{Name: "Indication", Kind: ui.DropDown, Question: "Indication for procedure", Options: strOptions(Indications), Required: true},
			{Name: "ProcType", Kind: ui.DropDown, Question: "Procedure performed", Options: strOptions(ProcedureTypes), Required: true},
			{Name: "MedicalHistory", Kind: ui.GroupBox, Question: "Medical History", Children: []*ui.Control{
				{Name: "RenalFailure", Kind: ui.CheckBox, Question: "History of renal failure?"},
				{Name: "Smoking", Kind: ui.RadioList, Question: "Does the patient smoke?", Options: strOptions(SmokingStatus)},
				{Name: "PacksPerDay", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat,
					Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "Smoking", Value: relstore.Str("Current")}},
				{Name: "QuitYearsAgo", Kind: ui.TextBox, Question: "Years since quitting", DataType: relstore.KindInt,
					Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "Smoking", Value: relstore.Str("Quit")}},
				{Name: "Alcohol", Kind: ui.DropDown, Question: "Alcohol use", AllowFreeText: true, Options: strOptions(AlcoholLevels)},
			}},
			{Name: "Examinations", Kind: ui.GroupBox, Question: "Examinations", Children: []*ui.Control{
				{Name: "CardioWNL", Kind: ui.CheckBox, Question: "Cardiopulmonary examination within normal limits?", Default: relstore.Bool(true)},
				{Name: "AbdoWNL", Kind: ui.CheckBox, Question: "Abdominal examination within normal limits?", Default: relstore.Bool(true)},
			}},
			{Name: "Complications", Kind: ui.GroupBox, Question: "Complications", Children: []*ui.Control{
				{Name: "TransientHypoxia", Kind: ui.CheckBox, Question: "Transient hypoxia"},
				{Name: "ProlongedHypoxia", Kind: ui.CheckBox, Question: "Prolonged hypoxia"},
				{Name: "Bleeding", Kind: ui.CheckBox, Question: "Bleeding"},
			}},
			{Name: "Interventions", Kind: ui.GroupBox, Question: "Interventions required", Children: []*ui.Control{
				{Name: "Surgery", Kind: ui.CheckBox, Question: "Surgery"},
				{Name: "IVFluids", Kind: ui.CheckBox, Question: "IV fluids"},
				{Name: "Oxygen", Kind: ui.CheckBox, Question: "Oxygen administration"},
			}},
		},
	}
}

// CORIFindingForm is contributor A's has-a child form (Figure 4's Finding
// entity).
func CORIFindingForm() *ui.Form {
	return &ui.Form{
		Name: "Finding", Title: "CORI Finding", KeyColumn: "FindingID",
		Controls: []*ui.Control{
			{Name: "ProcedureRef", Kind: ui.TextBox, Question: "Procedure ID", DataType: relstore.KindInt, Required: true},
			{Name: "Size", Kind: ui.TextBox, Question: "Size (mm)", DataType: relstore.KindInt},
			{Name: "ImagesTaken", Kind: ui.CheckBox, Question: "Images taken?"},
		},
	}
}

// EndoSoftExamForm is contributor B's form: same clinical reality, entirely
// different wording and units (cigarettes per day, not packs; yes/no
// drop-downs for treatments so the vendor can pack them into one field).
func EndoSoftExamForm() *ui.Form {
	yn := []ui.Option{{Display: "Yes", Stored: relstore.Str("Yes")}, {Display: "No", Stored: relstore.Str("No")}}
	return &ui.Form{
		Name: "Exam", Title: "EndoSoft Examination Record", KeyColumn: "ExamID",
		Controls: []*ui.Control{
			{Name: "PatientAge", Kind: ui.TextBox, Question: "Age", DataType: relstore.KindInt, Required: true},
			{Name: "Sex", Kind: ui.RadioList, Question: "Sex", Options: strOptions([]string{"Female", "Male"}), Required: true},
			{Name: "Reason", Kind: ui.DropDown, Question: "Reason for examination", Options: strOptions([]string{
				"Reflux-associated asthma symptoms",
				"Difficulty swallowing",
				"GI bleed",
				"Abdominal pain",
				"Barrett's surveillance",
				"Anemia workup",
				"Routine screening",
			}), Required: true},
			{Name: "ExamType", Kind: ui.DropDown, Question: "Examination", Options: strOptions([]string{"EGD", "Colonoscopy", "Flex Sig"}), Required: true},
			{Name: "HistoryBlock", Kind: ui.GroupBox, Question: "History", Children: []*ui.Control{
				{Name: "RenalDisease", Kind: ui.CheckBox, Question: "Renal disease?"},
				{Name: "SmokingStatus", Kind: ui.RadioList, Question: "Tobacco use", Options: strOptions(VendorBSmoking)},
				{Name: "CigsPerDay", Kind: ui.TextBox, Question: "Cigarettes per day", DataType: relstore.KindInt,
					Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "SmokingStatus", Value: relstore.Str("Smoker")}},
				{Name: "YearsSinceQuit", Kind: ui.TextBox, Question: "Years since quitting", DataType: relstore.KindInt,
					Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "SmokingStatus", Value: relstore.Str("Ex-smoker")}},
				{Name: "ETOH", Kind: ui.DropDown, Question: "Alcohol (drinks)", Options: strOptions(VendorBAlcohol)},
			}},
			{Name: "ExamFindings", Kind: ui.GroupBox, Question: "Physical exam", Children: []*ui.Control{
				{Name: "CardioNormal", Kind: ui.CheckBox, Question: "Cardio/pulm exam unremarkable"},
				{Name: "AbdoNormal", Kind: ui.CheckBox, Question: "Abdominal exam unremarkable"},
			}},
			{Name: "Events", Kind: ui.GroupBox, Question: "Intra-procedure events", Children: []*ui.Control{
				{Name: "O2Desat", Kind: ui.CheckBox, Question: "Transient O2 desaturation"},
				{Name: "O2DesatProlonged", Kind: ui.CheckBox, Question: "Prolonged O2 desaturation"},
			}},
			{Name: "Treatment", Kind: ui.GroupBox, Question: "Treatment required", Children: []*ui.Control{
				{Name: "TxSurgery", Kind: ui.DropDown, Question: "Surgical intervention", Options: yn, Default: relstore.Str("No")},
				{Name: "TxFluids", Kind: ui.DropDown, Question: "IV fluids", Options: yn, Default: relstore.Str("No")},
				{Name: "TxOxygen", Kind: ui.DropDown, Question: "Supplemental oxygen", Options: yn, Default: relstore.Str("No")},
			}},
		},
	}
}

// MedRecordForm is contributor C's form: a tool that stores everything as
// integer codes behind a generic EAV database — the paper's "most frequent
// type of schematic heterogeneity".
func MedRecordForm() *ui.Form {
	intOpts := func(pairs ...struct {
		L string
		V int64
	}) []ui.Option {
		out := make([]ui.Option, len(pairs))
		for i, p := range pairs {
			out[i] = ui.Option{Display: p.L, Stored: relstore.Int(p.V)}
		}
		return out
	}
	type lv = struct {
		L string
		V int64
	}
	return &ui.Form{
		Name: "Record", Title: "MedRecord Procedure Entry", KeyColumn: "RecordID",
		Controls: []*ui.Control{
			{Name: "AgeYears", Kind: ui.TextBox, Question: "Age in years", DataType: relstore.KindInt, Required: true},
			{Name: "SexCode", Kind: ui.RadioList, Question: "Sex (0=F, 1=M)",
				Options: intOpts(lv{"Female", 0}, lv{"Male", 1}), Required: true},
			{Name: "IndicationText", Kind: ui.DropDown, Question: "Indication", Options: strOptions(Indications), Required: true},
			{Name: "ProcCode", Kind: ui.RadioList, Question: "Procedure code",
				Options: intOpts(lv{"Upper GI Endoscopy", 10}, lv{"Colonoscopy", 20}, lv{"Flexible Sigmoidoscopy", 30}), Required: true},
			{Name: "SmokeCode", Kind: ui.RadioList, Question: "Smoking (0=never,1=current,2=former)",
				Options: intOpts(lv{"Never", 0}, lv{"Current", 1}, lv{"Former", 2})},
			{Name: "PacksDaily", Kind: ui.TextBox, Question: "Packs/day if current", DataType: relstore.KindFloat,
				Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "SmokeCode", Value: relstore.Int(1)}},
			{Name: "QuitYears", Kind: ui.TextBox, Question: "Years since quit if former", DataType: relstore.KindInt,
				Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "SmokeCode", Value: relstore.Int(2)}},
			{Name: "EtohCode", Kind: ui.RadioList, Question: "Alcohol (0=none..3=heavy)",
				Options: intOpts(lv{"None", 0}, lv{"Light", 1}, lv{"Moderate", 2}, lv{"Heavy", 3})},
			{Name: "RenalHx", Kind: ui.CheckBox, Question: "Renal failure history"},
			{Name: "CardioOK", Kind: ui.CheckBox, Question: "Cardiopulmonary normal"},
			{Name: "AbdoOK", Kind: ui.CheckBox, Question: "Abdomen normal"},
			{Name: "HypoxiaT", Kind: ui.CheckBox, Question: "Hypoxia (transient)"},
			{Name: "HypoxiaP", Kind: ui.CheckBox, Question: "Hypoxia (prolonged)"},
			{Name: "TxSurg", Kind: ui.CheckBox, Question: "Surgery required"},
			{Name: "TxIVF", Kind: ui.CheckBox, Question: "IV fluids required"},
			{Name: "TxO2", Kind: ui.CheckBox, Question: "Oxygen required"},
		},
	}
}
