package workload

import (
	"fmt"

	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/textsrc"
	"guava/internal/ui"
)

// This file builds contributor D: a free-text progress-note source. Unlike
// the three form-backed tools, this contributor's database stores report
// documents — the naive relation only exists by running the compiled
// extractor over them on read. The same ground truth flows in, "dictated"
// into canonical text by the textsrc layout, so studies mixing Notes with
// the form contributors exercise the full text path end to end.

// NotesSpec describes the progress-note report family: the co-designed
// structure the extractor and the renderer share. Stored values line up
// with the canonical Truth vocabulary, so classifiers over Notes need only
// the same unit reconciliation as any other contributor.
func NotesSpec() *textsrc.ExtractSpec {
	return &textsrc.ExtractSpec{
		Name:  "NoteReport",
		Title: "Endoscopy progress note",
		Key:   "NoteID",
		Sections: []textsrc.SectionSpec{
			{Heading: "HISTORY", Fields: []textsrc.FieldSpec{
				{Name: "SmokeStatus", Label: "Smoking status", Kind: relstore.KindString, Required: true,
					Vocab: []textsrc.VocabEntry{
						{Text: "never smoker", Stored: relstore.Str("Never")},
						{Text: "current smoker", Stored: relstore.Str("Current")},
						{Text: "former smoker", Stored: relstore.Str("Quit")},
					}},
				{Name: "TobaccoPacks", Label: "Tobacco use", Kind: relstore.KindFloat,
					Unit: &textsrc.UnitSpec{Canonical: "packs/day", Factors: map[string]float64{
						"packs/day": 1, "cigarettes/day": 0.05,
					}}},
				{Name: "AgeYears", Label: "Age", Kind: relstore.KindInt},
			}},
			{Heading: "COMPLICATIONS", Fields: []textsrc.FieldSpec{
				{Name: "HypoxiaTransient", Label: "transient hypoxia", Matcher: textsrc.Enumeration},
				{Name: "HypoxiaProlonged", Label: "prolonged hypoxia", Matcher: textsrc.Enumeration},
			}},
		},
	}
}

// BuildNotes builds contributor D: ground truth dictated into free-text
// progress notes behind the TextReports layout.
func BuildNotes(seed int64, n int) (*Contributor, error) {
	truths := Generate(seed, n)
	spec := NotesSpec()
	layout, err := textsrc.NewLayout(spec)
	if err != nil {
		return nil, err
	}
	form, err := spec.Form()
	if err != nil {
		return nil, err
	}
	stack := patterns.NewStack(layout)
	return build("Notes", form, stack, truths, func(e *ui.Entry, t Truth) error {
		s := &setter{e: e}
		s.set("SmokeStatus", relstore.Str(t.Smoking))
		if t.Smoking == "Current" {
			s.set("TobaccoPacks", relstore.Float(t.PacksPerDay))
		}
		s.set("AgeYears", relstore.Int(t.Age))
		s.setBool("HypoxiaTransient", t.TransientHypoxia)
		s.setBool("HypoxiaProlonged", t.ProlongedHypoxia)
		return s.err
	})
}

// InjectReport stores one raw report document — canonical or not — under the
// contributor's stack and journals it, bypassing the form path entirely.
// This is how corrupted or hand-written text enters the workload.
func (c *Contributor) InjectReport(id int64, body string) error {
	return textsrc.AppendDocument(c.DB, c.Stack, c.Info, relstore.Int(id), body)
}

// CorruptNoteBody returns a progress note whose required smoking status
// carries an out-of-vocabulary phrase: structurally a fine report, but its
// one bad line makes exactly one extraction miss (rule
// NoteReport/HISTORY/SmokeStatus) with span provenance.
func CorruptNoteBody(id int64) string {
	return fmt.Sprintf("REPORT %d\n\n== HISTORY ==\nSmoking status: pipe smoker\nAge: 44\n", id)
}
