package workload

import "math/rand"

// Truth is the ground-truth record of one procedure: what "really happened"
// to the patient, independent of how any vendor tool words or stores it.
// Studies scored against Truth measure Hypothesis #2's precision/recall.
type Truth struct {
	ID         int64
	Age        int64
	Gender     string // element of GenderValues
	Indication string
	ProcType   string

	RenalFailure bool
	// Smoking is the canonical status: "Never", "Current", or "Quit".
	Smoking     string
	PacksPerDay float64 // 0 when Never
	// QuitYearsAgo is meaningful only when Smoking == "Quit".
	QuitYearsAgo int64
	Alcohol      string // element of AlcoholLevels

	CardioWNL bool // cardiopulmonary examination within normal limits
	AbdoWNL   bool // abdominal examination within normal limits

	TransientHypoxia bool
	ProlongedHypoxia bool
	Bleeding         bool

	Surgery  bool
	IVFluids bool
	Oxygen   bool

	// Findings are the per-procedure finding records (has-a children).
	Findings []FindingTruth
}

// FindingTruth is one finding attached to a procedure.
type FindingTruth struct {
	ID          int64
	ProcedureID int64
	SizeMM      int64
	ImagesTaken bool
}

// HasHypoxia reports any hypoxia complication.
func (t *Truth) HasHypoxia() bool { return t.TransientHypoxia || t.ProlongedHypoxia }

// ExSmoker reports whether the patient quit within the given number of
// years — the definitional knob Study 2 turns ("a previous smoker may mean
// someone who has quit in the last year, or in the last ten years, or at any
// time at all").
func (t *Truth) ExSmoker(withinYears int64) bool {
	if t.Smoking != "Quit" {
		return false
	}
	if withinYears <= 0 {
		return true
	}
	return t.QuitYearsAgo <= withinYears
}

// Generate produces n deterministic ground-truth records from the seed. The
// value distributions are chosen so every Study 1/Study 2 funnel stage keeps
// a meaningful population at a few hundred records.
func Generate(seed int64, n int) []Truth {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Truth, n)
	var findingSeq int64
	pick := func(options []string) string { return options[rng.Intn(len(options))] }
	chance := func(p float64) bool { return rng.Float64() < p }
	for i := range out {
		t := Truth{
			ID:       int64(i + 1),
			Age:      int64(18 + rng.Intn(70)),
			Gender:   pick(GenderValues),
			ProcType: pick(ProcedureTypes),
		}
		// The asthma-reflux indication gets extra weight so Study 1's cohort
		// is non-trivial.
		if chance(0.25) {
			t.Indication = Indications[0]
		} else {
			t.Indication = pick(Indications[1:])
		}
		t.RenalFailure = chance(0.08)
		switch r := rng.Float64(); {
		case r < 0.55:
			t.Smoking = "Never"
		case r < 0.80:
			t.Smoking = "Current"
			t.PacksPerDay = float64(rng.Intn(13)) * 0.5 // 0.0..6.0 in half packs
			if t.PacksPerDay == 0 {
				t.PacksPerDay = 0.5
			}
		default:
			t.Smoking = "Quit"
			t.PacksPerDay = 0
			t.QuitYearsAgo = int64(rng.Intn(20)) // 0..19 years ago
		}
		t.Alcohol = pick(AlcoholLevels)
		t.CardioWNL = chance(0.85)
		t.AbdoWNL = chance(0.80)
		// Complications: smokers desaturate more often, mirroring the
		// clinical correlation the studies go looking for.
		pHypoxia := 0.06
		if t.Smoking == "Current" {
			pHypoxia = 0.18
		} else if t.Smoking == "Quit" {
			pHypoxia = 0.11
		}
		t.TransientHypoxia = chance(pHypoxia)
		t.ProlongedHypoxia = t.TransientHypoxia && chance(0.2)
		t.Bleeding = chance(0.04)
		if t.TransientHypoxia || t.ProlongedHypoxia {
			t.Oxygen = chance(0.7)
			t.IVFluids = chance(0.35)
			t.Surgery = chance(0.08)
		} else if t.Bleeding {
			t.Surgery = chance(0.3)
			t.IVFluids = chance(0.6)
		}
		for f := 0; f < rng.Intn(3); f++ {
			findingSeq++
			t.Findings = append(t.Findings, FindingTruth{
				ID:          findingSeq,
				ProcedureID: t.ID,
				SizeMM:      int64(1 + rng.Intn(40)),
				ImagesTaken: chance(0.5),
			})
		}
		out[i] = t
	}
	return out
}
