package workload

import (
	"sync"
	"testing"
	"time"
)

// TestDriveOpenLoopClassifiesOutcomes drives a synthetic transport that
// sheds, hard-fails, and answers from cache in a known pattern, and checks
// the driver's bookkeeping: offered = sent + dropped, completions are
// partitioned into success/shed/error, and shed responses are retried.
func TestDriveOpenLoopClassifiesOutcomes(t *testing.T) {
	reqs := ExtractRequests("exsmoker", 16, 7)
	var mu sync.Mutex
	calls := 0
	do := func(req ExtractRequest) Outcome {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		switch {
		case n%7 == 0:
			return Outcome{Status: 429, RetryAfter: time.Millisecond}
		case n%11 == 0:
			return Outcome{Status: 500}
		default:
			return Outcome{Status: 200, Hit: n%2 == 0, Gen: 1}
		}
	}
	stats := DriveOpenLoop(reqs, OpenLoopOptions{
		RPS: 500, Duration: 200 * time.Millisecond, Seed: 1,
		MaxRetries: 1, MaxOutstanding: 8, MaxBackoff: 2 * time.Millisecond,
	}, do)

	if stats.Offered == 0 || stats.Requests == 0 {
		t.Fatalf("no load offered: %+v", stats)
	}
	if stats.Offered != stats.Requests+stats.Dropped {
		t.Errorf("offered %d != sent %d + dropped %d", stats.Offered, stats.Requests, stats.Dropped)
	}
	ok := stats.Requests - stats.Errors - stats.Shed
	if ok <= 0 || stats.Hits > ok {
		t.Errorf("inconsistent partition: ok=%d hits=%d in %+v", ok, stats.Hits, stats)
	}
	if stats.Retries == 0 {
		t.Errorf("429s with Retry-After were never retried: %+v", stats)
	}
	if stats.StaleReads != 0 {
		t.Errorf("stale reads on a constant generation = %d", stats.StaleReads)
	}
	if stats.P99() <= 0 || stats.Quantile(0.5) > stats.P99() {
		t.Errorf("latency quantiles out of order: p50=%v p99=%v", stats.Quantile(0.5), stats.P99())
	}
	if r := stats.ShedRate(); r < 0 || r > 1 {
		t.Errorf("shed rate = %v", r)
	}
}

// TestDriveOpenLoopRetryClearsShed: a transport that sheds exactly once
// per request ends the run with zero shed completions — the retry budget
// absorbed every 429.
func TestDriveOpenLoopRetryClearsShed(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	do := func(req ExtractRequest) Outcome {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls%2 == 1 { // alternate: first attempt shed, retry succeeds
			return Outcome{Status: 429, RetryAfter: time.Millisecond}
		}
		return Outcome{Status: 200, Hit: true, Gen: 1}
	}
	stats := DriveOpenLoop([]ExtractRequest{{Study: "s"}}, OpenLoopOptions{
		RPS: 300, Duration: 100 * time.Millisecond, Seed: 3,
		MaxRetries: 2, MaxOutstanding: 1, MaxBackoff: 2 * time.Millisecond,
	}, do)
	if stats.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if stats.Shed != 0 {
		t.Errorf("shed = %d after absorbing retries, want 0 (%+v)", stats.Shed, stats)
	}
	if stats.Retries < stats.Requests {
		t.Errorf("retries = %d for %d requests, want >= one each", stats.Retries, stats.Requests)
	}
}

// TestDriveOpenLoopDetectsStaleReads: a transport whose generation stamp
// goes backwards must be caught — that is the zero-stale-reads gate R9
// leans on.
func TestDriveOpenLoopDetectsStaleReads(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	do := func(req ExtractRequest) Outcome {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return Outcome{Status: 200, Gen: 5}
		}
		return Outcome{Status: 200, Gen: 3} // time travel
	}
	stats := DriveOpenLoop([]ExtractRequest{{Study: "s"}}, OpenLoopOptions{
		RPS: 300, Duration: 100 * time.Millisecond, Seed: 5,
		MaxOutstanding: 1, // serialize so arrival order is observation order
	}, do)
	if stats.Requests < 2 {
		t.Fatalf("need at least 2 completions, got %d", stats.Requests)
	}
	if stats.StaleReads != stats.Requests-1 {
		t.Errorf("stale reads = %d of %d requests, want %d", stats.StaleReads, stats.Requests, stats.Requests-1)
	}
}
