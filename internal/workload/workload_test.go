package workload

import (
	"fmt"
	"testing"

	"guava/internal/relstore"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 200)
	b := Generate(42, 200)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	c := Generate(43, 200)
	same := 0
	for i := range a {
		if a[i].Smoking == c[i].Smoking && a[i].Indication == c[i].Indication {
			same++
		}
	}
	if same == 200 {
		t.Error("different seeds must differ")
	}
}

func TestGenerateInvariants(t *testing.T) {
	truths := Generate(7, 500)
	var asthma, currents, quits, hypoxia int
	for _, tr := range truths {
		if tr.Age < 18 || tr.Age > 88 {
			t.Errorf("age %d out of range", tr.Age)
		}
		switch tr.Smoking {
		case "Never":
			if tr.PacksPerDay != 0 || tr.QuitYearsAgo != 0 {
				t.Error("never-smoker with smoking details")
			}
		case "Current":
			currents++
			if tr.PacksPerDay <= 0 {
				t.Error("current smoker without packs")
			}
		case "Quit":
			quits++
		default:
			t.Errorf("bad smoking status %q", tr.Smoking)
		}
		if tr.ProlongedHypoxia && !tr.TransientHypoxia {
			t.Error("prolonged hypoxia implies transient")
		}
		if tr.HasHypoxia() {
			hypoxia++
		}
		if tr.Indication == Indications[0] {
			asthma++
		}
		for _, f := range tr.Findings {
			if f.ProcedureID != tr.ID {
				t.Error("finding not linked to its procedure")
			}
		}
	}
	// The Study 1/2 funnels need non-trivial populations.
	if asthma < 50 || currents < 50 || quits < 30 || hypoxia < 20 {
		t.Errorf("populations too thin: asthma=%d current=%d quit=%d hypoxia=%d", asthma, currents, quits, hypoxia)
	}
}

func TestExSmokerDefinitions(t *testing.T) {
	tr := Truth{Smoking: "Quit", QuitYearsAgo: 5}
	if tr.ExSmoker(1) {
		t.Error("quit 5 years ago is not ex-smoker-within-1")
	}
	if !tr.ExSmoker(10) || !tr.ExSmoker(0) {
		t.Error("quit 5 years ago is ex-smoker within 10 and ever")
	}
	cur := Truth{Smoking: "Current"}
	if cur.ExSmoker(0) {
		t.Error("current smoker is never an ex-smoker")
	}
}

// TestContributorsRoundTrip builds all three vendors and checks that the
// g-tree view (pattern-stack Read) reproduces exactly what was entered
// through each UI — the full UI → patterns → physical → view loop on
// realistic data.
func TestContributorsRoundTrip(t *testing.T) {
	const n = 60
	contribs, err := BuildAll(11, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != 3 {
		t.Fatalf("contributors = %d", len(contribs))
	}
	for _, c := range contribs {
		rows, err := c.Stack.Read(c.DB, c.Info)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if rows.Len() != n {
			t.Errorf("%s: %d rows, want %d", c.Name, rows.Len(), n)
		}
	}

	// Spot-check CORI values against truth.
	cori := contribs[0]
	rows, err := cori.Stack.Read(cori.DB, cori.Info)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int64]relstore.Row{}
	ki := rows.Schema.Index("ProcedureID")
	for _, r := range rows.Data {
		byKey[r[ki].AsInt()] = r
	}
	for _, tr := range cori.Truths {
		r, ok := byKey[tr.ID]
		if !ok {
			t.Fatalf("CORI record %d missing", tr.ID)
		}
		if !r[rows.Schema.Index("Indication")].Equal(relstore.Str(tr.Indication)) {
			t.Errorf("record %d indication = %v, want %s", tr.ID, r[rows.Schema.Index("Indication")], tr.Indication)
		}
		if !r[rows.Schema.Index("TransientHypoxia")].Equal(relstore.Bool(tr.TransientHypoxia)) {
			t.Errorf("record %d hypoxia mismatch", tr.ID)
		}
		packs := r[rows.Schema.Index("PacksPerDay")]
		if tr.Smoking == "Current" {
			if !packs.Equal(relstore.Float(tr.PacksPerDay)) {
				t.Errorf("record %d packs = %v, want %v", tr.ID, packs, tr.PacksPerDay)
			}
		} else if !packs.IsNull() {
			t.Errorf("record %d: non-smoker has packs %v (enablement must prevent this)", tr.ID, packs)
		}
	}

	// EndoSoft stores cigarettes; check unit conversion happened on entry.
	endo := contribs[1]
	erows, err := endo.Stack.Read(endo.DB, endo.Info)
	if err != nil {
		t.Fatal(err)
	}
	eki := erows.Schema.Index("ExamID")
	ecig := erows.Schema.Index("CigsPerDay")
	ebyKey := map[int64]relstore.Row{}
	for _, r := range erows.Data {
		ebyKey[r[eki].AsInt()] = r
	}
	for _, tr := range endo.Truths {
		r := ebyKey[tr.ID]
		if tr.Smoking == "Current" {
			want := relstore.Int(int64(tr.PacksPerDay * 20))
			if !r[ecig].Equal(want) {
				t.Errorf("exam %d cigs = %v, want %v", tr.ID, r[ecig], want)
			}
		} else if !r[ecig].IsNull() {
			t.Errorf("exam %d: cigs present for non-smoker", tr.ID)
		}
	}

	// MedRecord stores codes behind EAV; smoking code must match truth.
	med := contribs[2]
	mrows, err := med.Stack.Read(med.DB, med.Info)
	if err != nil {
		t.Fatal(err)
	}
	mki := mrows.Schema.Index("RecordID")
	msm := mrows.Schema.Index("SmokeCode")
	mbyKey := map[int64]relstore.Row{}
	for _, r := range mrows.Data {
		mbyKey[r[mki].AsInt()] = r
	}
	for _, tr := range med.Truths {
		r := mbyKey[tr.ID]
		if !r[msm].Equal(relstore.Int(medRecordSmoke[tr.Smoking])) {
			t.Errorf("record %d smoke code = %v, want %d", tr.ID, r[msm], medRecordSmoke[tr.Smoking])
		}
	}

	// The CORI findings child table exists and links to procedures.
	frows, err := cori.FindingStack.Read(cori.DB, cori.FindingInfo)
	if err != nil {
		t.Fatal(err)
	}
	wantFindings := 0
	for _, tr := range cori.Truths {
		wantFindings += len(tr.Findings)
	}
	if frows.Len() != wantFindings {
		t.Errorf("findings = %d, want %d", frows.Len(), wantFindings)
	}
}

func TestVocabularyMapsAreTotal(t *testing.T) {
	for _, ind := range Indications {
		if endoSoftReason[ind] == "" {
			t.Errorf("endoSoftReason missing %q", ind)
		}
	}
	for _, p := range ProcedureTypes {
		if endoSoftExam[p] == "" {
			t.Errorf("endoSoftExam missing %q", p)
		}
		if _, ok := medRecordProc[p]; !ok {
			t.Errorf("medRecordProc missing %q", p)
		}
	}
	for _, s := range SmokingStatus {
		if endoSoftSmoking[s] == "" {
			t.Errorf("endoSoftSmoking missing %q", s)
		}
		if _, ok := medRecordSmoke[s]; !ok {
			t.Errorf("medRecordSmoke missing %q", s)
		}
	}
	for _, a := range AlcoholLevels {
		if endoSoftEtoh[a] == "" {
			t.Errorf("endoSoftEtoh missing %q", a)
		}
		if _, ok := medRecordEtoh[a]; !ok {
			t.Errorf("medRecordEtoh missing %q", a)
		}
	}
}
