package workload

import (
	"fmt"
	"math/rand"

	"guava/internal/relstore"
)

// This file generates the "periodically sent" change traffic the paper's
// warehouse receives between refreshes: seeded, replayable batches of
// inserts, field updates, and deprecations against the vendor tools. The
// delta-refresh equivalence harness and the R6 benchmark both drive their
// warehouses with these batches.

// MutKind is the kind of one mutation.
type MutKind int

const (
	// MutInsert enters a brand-new record through the tool's UI.
	MutInsert MutKind = iota
	// MutUpdate changes one naive-schema field of an existing record.
	MutUpdate
	// MutDelete deprecates an existing record through the Audit layer.
	MutDelete
)

func (k MutKind) String() string {
	switch k {
	case MutInsert:
		return "insert"
	case MutUpdate:
		return "update"
	case MutDelete:
		return "delete"
	}
	return fmt.Sprintf("MutKind(%d)", int(k))
}

// Mutation is one replayable change against one contributor. A batch of
// Mutations fully determines the resulting database state, so two universes
// applying the same batch stay bit-identical — the property the delta ≡ full
// equivalence harness leans on.
type Mutation struct {
	Contributor string
	Kind        MutKind
	// Key is the targeted record ID (updates, deletes) or the new record's
	// ID (inserts).
	Key int64
	// Col and Val are the field change for updates.
	Col string
	Val relstore.Value
	// Seed derives the ground-truth record for inserts.
	Seed int64
}

// String renders the mutation for failure diagnostics.
func (m Mutation) String() string {
	switch m.Kind {
	case MutUpdate:
		return fmt.Sprintf("%s: update #%d %s=%s", m.Contributor, m.Key, m.Col, m.Val.Display())
	case MutDelete:
		return fmt.Sprintf("%s: delete #%d", m.Contributor, m.Key)
	}
	return fmt.Sprintf("%s: insert #%d (seed %d)", m.Contributor, m.Key, m.Seed)
}

// fieldGen produces a random in-vocabulary value for one updatable column.
type fieldGen struct {
	col string
	gen func(rng *rand.Rand) relstore.Value
}

func pickStr(options ...string) func(*rand.Rand) relstore.Value {
	return func(rng *rand.Rand) relstore.Value { return relstore.Str(options[rng.Intn(len(options))]) }
}

func randBool(rng *rand.Rand) relstore.Value { return relstore.Bool(rng.Intn(2) == 1) }

func randAge(rng *rand.Rand) relstore.Value { return relstore.Int(int64(18 + rng.Intn(70))) }

// updatableFields lists, per contributor tool, the naive-schema columns a
// mutation batch may rewrite — each in that vendor's own vocabulary.
// Delimited-packed columns (EndoSoft's Tx*) are deliberately absent: packed
// fields change only through whole-record entry.
var updatableFields = map[string][]fieldGen{
	"CORI": {
		{"Smoking", pickStr("Never", "Current", "Quit")},
		{"PacksPerDay", func(rng *rand.Rand) relstore.Value { return relstore.Float(0.5 * float64(1+rng.Intn(8))) }},
		{"QuitYearsAgo", func(rng *rand.Rand) relstore.Value { return relstore.Int(int64(rng.Intn(20))) }},
		{"TransientHypoxia", randBool},
		{"ProlongedHypoxia", randBool},
		{"Age", randAge},
	},
	"EndoSoft": {
		{"SmokingStatus", pickStr("Non-smoker", "Smoker", "Ex-smoker")},
		{"CigsPerDay", func(rng *rand.Rand) relstore.Value { return relstore.Int(int64(rng.Intn(60))) }},
		{"YearsSinceQuit", func(rng *rand.Rand) relstore.Value { return relstore.Int(int64(rng.Intn(20))) }},
		{"O2Desat", randBool},
		{"O2DesatProlonged", randBool},
		{"PatientAge", randAge},
	},
	"MedRecord": {
		{"SmokeCode", func(rng *rand.Rand) relstore.Value { return relstore.Int(int64(rng.Intn(3))) }},
		{"PacksDaily", func(rng *rand.Rand) relstore.Value { return relstore.Float(0.5 * float64(1+rng.Intn(8))) }},
		{"QuitYears", func(rng *rand.Rand) relstore.Value { return relstore.Int(int64(rng.Intn(20))) }},
		{"HypoxiaT", randBool},
		{"HypoxiaP", randBool},
		{"AgeYears", randAge},
	},
	// Notes updates route through textsrc.Layout.Update, which re-dictates
	// the stored report with the changed answer — a mutation batch over a
	// mixed workload exercises the text path exactly like the table layouts.
	"Notes": {
		{"SmokeStatus", pickStr("Never", "Current", "Quit")},
		{"TobaccoPacks", func(rng *rand.Rand) relstore.Value { return relstore.Float(0.5 * float64(1+rng.Intn(8))) }},
		{"HypoxiaTransient", randBool},
		{"HypoxiaProlonged", randBool},
		{"AgeYears", randAge},
	},
}

// RandomBatch derives n mutations over the contributors from the seed,
// deterministically: roughly 60% field updates, 25% inserts, 15% deletes
// (deletes fall back to updates at contributors whose stack cannot
// deprecate). Insert IDs continue past each contributor's current MaxID, so
// a batch generated once applies cleanly to any universe built from the same
// seed and history.
func RandomBatch(contribs []*Contributor, seed int64, n int) []Mutation {
	rng := rand.New(rand.NewSource(seed))
	nextID := make([]int64, len(contribs))
	for i, c := range contribs {
		nextID[i] = c.MaxID() + 1
	}
	out := make([]Mutation, 0, n)
	for len(out) < n {
		ci := rng.Intn(len(contribs))
		c := contribs[ci]
		m := Mutation{Contributor: c.Name}
		switch r := rng.Float64(); {
		case r < 0.25:
			m.Kind = MutInsert
			m.Key = nextID[ci]
			nextID[ci]++
			m.Seed = rng.Int63()
		case r < 0.40 && c.CanDeprecate():
			m.Kind = MutDelete
			m.Key = c.Truths[rng.Intn(len(c.Truths))].ID
		default:
			m.Kind = MutUpdate
			m.Key = c.Truths[rng.Intn(len(c.Truths))].ID
			fields := updatableFields[c.Name]
			f := fields[rng.Intn(len(fields))]
			m.Col = f.col
			m.Val = f.gen(rng)
		}
		out = append(out, m)
	}
	return out
}

// Apply replays a mutation batch against the contributors, in order. Inserts
// derive their ground truth from the mutation's seed (findings excluded),
// updates and deletes route through the pattern stack — all of it journaled,
// so a delta refresh sees exactly these keys.
func Apply(contribs []*Contributor, batch []Mutation) error {
	byName := make(map[string]*Contributor, len(contribs))
	for _, c := range contribs {
		byName[c.Name] = c
	}
	for _, m := range batch {
		c, ok := byName[m.Contributor]
		if !ok {
			return fmt.Errorf("workload: mutation targets unknown contributor %q", m.Contributor)
		}
		var err error
		switch m.Kind {
		case MutInsert:
			t := Generate(m.Seed, 1)[0]
			t.ID = m.Key
			t.Findings = nil
			err = c.InsertTruth(t)
		case MutUpdate:
			_, err = c.SetField(relstore.Int(m.Key), m.Col, m.Val)
		case MutDelete:
			_, err = c.DeprecateRecord(relstore.Int(m.Key))
		default:
			err = fmt.Errorf("workload: unknown mutation kind %v", m.Kind)
		}
		if err != nil {
			return fmt.Errorf("workload: apply %s: %w", m, err)
		}
	}
	return nil
}
