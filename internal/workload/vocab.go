// Package workload generates the synthetic clinical data this reproduction
// uses in place of CORI's real endoscopy reports (which are gated health
// data). The generator produces ground-truth patient/procedure records and
// then *enters them through the user-interface layer* of each simulated
// vendor tool, so that every byte in a contributor database traveled the
// same path real data does: form controls → pattern stack → physical
// tables. Ground truth makes the paper's Hypothesis #2 measurable: studies
// specified with classifiers can be scored for precision and recall against
// what the generator knows it created.
package workload

// The controlled vocabulary of the simulated CORI reporting tools. Study 1
// of the paper needs the asthma-reflux indication, the transient-hypoxia
// complication, and the surgery / IV fluids / oxygen interventions; the rest
// rounds out a plausible endoscopy tool.

// Indications for endoscopic procedures.
var Indications = []string{
	"Asthma-specific ENT/Pulmonary Reflux symptoms",
	"Dysphagia",
	"GI Bleeding",
	"Abdominal Pain",
	"Surveillance - Barrett's Esophagus",
	"Anemia",
	"Screening",
}

// ProcedureTypes of the simulated clinic.
var ProcedureTypes = []string{
	"Upper GI Endoscopy",
	"Colonoscopy",
	"Flexible Sigmoidoscopy",
}

// SmokingStatus values as contributor A's tool words them.
var SmokingStatus = []string{"Never", "Current", "Quit"}

// AlcoholLevels as contributor A's tool words them.
var AlcoholLevels = []string{"None", "Light", "Moderate", "Heavy"}

// GenderValues used by the demographic block.
var GenderValues = []string{"F", "M"}

// Interventions a complication can require (Study 1's funnel tail).
var Interventions = []string{"Surgery", "IV Fluids", "Oxygen Administration"}

// VendorBSmoking is contributor B's differently-worded smoking vocabulary;
// the classifier layer reconciles it ("interventions in one source refers to
// the same data as complications in another source" — the analyst judges
// domain vocabulary, the system carries the context).
var VendorBSmoking = []string{"Non-smoker", "Smoker", "Ex-smoker"}

// VendorBAlcohol is contributor B's alcohol vocabulary.
var VendorBAlcohol = []string{"0", "<7/wk", ">=7/wk"}
