package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file is the serving-side workload: a deterministic generator of
// extract queries shaped like analyst traffic against a study endpoint
// (repeated cohort pulls with a mix of equality filters, range filters,
// and paging), and a driver that replays them from concurrent clients
// collecting the latency distribution and cache behavior. The generator is
// transport-agnostic — the driver calls back into whatever issues the
// request (an HTTP client in coribench, an in-process handler in tests).

// ExtractRequest is one extract query: a study name and its URL query
// parameters (multiple values per key allowed, as in a query string).
type ExtractRequest struct {
	Study  string
	Params map[string][]string
}

// String renders the request roughly as its URL path for labels and logs.
func (r ExtractRequest) String() string {
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "/studies/" + r.Study + "/extract"
	sep := "?"
	for _, k := range keys {
		for _, v := range r.Params[k] {
			s += sep + k + "=" + v
			sep = "&"
		}
	}
	return s
}

// ExtractRequests generates n deterministic extract queries against the
// reference study's columns. The mix repeats popular shapes often enough
// that a result cache can prove itself while still touching filters,
// ranges, and paging:
//
//	~40% hot full-page pulls (identical, maximally cacheable)
//	~30% equality filters over Contributor / Smoking_D3 / Hypoxia_D1
//	~20% EntityKey range scans
//	~10% paging through the unfiltered extract
func ExtractRequests(study string, n int, seed int64) []ExtractRequest {
	rng := rand.New(rand.NewSource(seed))
	smoking := []string{"None", "Light", "Moderate", "Heavy"}
	contributors := []string{"CORI", "EndoSoft", "MedRecord"}
	reqs := make([]ExtractRequest, 0, n)
	for i := 0; i < n; i++ {
		params := map[string][]string{}
		switch roll := rng.Float64(); {
		case roll < 0.40:
			params["limit"] = []string{"100"}
		case roll < 0.55:
			params["Contributor"] = []string{contributors[rng.Intn(len(contributors))]}
		case roll < 0.65:
			params["Smoking_D3"] = []string{smoking[rng.Intn(len(smoking))]}
		case roll < 0.70:
			params["Hypoxia_D1"] = []string{fmt.Sprint(rng.Intn(2) == 0)}
		case roll < 0.90:
			lo := rng.Intn(150)
			params["EntityKey.ge"] = []string{fmt.Sprint(lo)}
			params["EntityKey.lt"] = []string{fmt.Sprint(lo + 25*(1+rng.Intn(3)))}
		default:
			params["limit"] = []string{"20"}
			params["offset"] = []string{fmt.Sprint(20 * rng.Intn(5))}
		}
		reqs = append(reqs, ExtractRequest{Study: study, Params: params})
	}
	return reqs
}

// LoadStats aggregates one driven load run. The closed-loop Drive fills
// Requests/Hits/Errors; the open-loop DriveOpenLoop additionally separates
// shed load (429/503, retryable by design) from hard errors and tracks the
// offered-vs-completed gap.
type LoadStats struct {
	Requests int // requests actually sent (and completed)
	Hits     int // successful responses served from cache
	Errors   int // hard failures: transport errors and non-shed 4xx/5xx
	// Open-loop extras:
	Offered    int // arrivals the Poisson clock generated (sent + dropped)
	Shed       int // requests still 429/503 after the retry budget
	Retries    int // extra attempts spent honoring Retry-After backoff
	StaleReads int // responses stamped older than one already observed
	Dropped    int // arrivals past MaxOutstanding, never sent
	Elapsed    time.Duration
	latencies  []time.Duration // sorted ascending
}

// HitRatio is the fraction of successful requests served from cache.
func (s *LoadStats) HitRatio() float64 {
	if ok := s.Requests - s.Errors - s.Shed; ok > 0 {
		return float64(s.Hits) / float64(ok)
	}
	return 0
}

// ShedRate is the fraction of completed requests the server shed.
func (s *LoadStats) ShedRate() float64 {
	if s.Requests > 0 {
		return float64(s.Shed) / float64(s.Requests)
	}
	return 0
}

// Quantile returns the q-th latency quantile (q in [0,1]) across all
// requests, zero when nothing was measured.
func (s *LoadStats) Quantile(q float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(s.latencies)-1))
	return s.latencies[i]
}

// P50 and P99 are the conventional latency summary points.
func (s *LoadStats) P50() time.Duration { return s.Quantile(0.50) }
func (s *LoadStats) P99() time.Duration { return s.Quantile(0.99) }

// Throughput is successful requests per second over the driven wall time.
func (s *LoadStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Requests-s.Errors) / s.Elapsed.Seconds()
}

// Drive replays reqs from `clients` concurrent workers, each request going
// through do, which reports whether the response was served from cache.
// Requests are dealt round-robin so every worker sees the same mix.
func Drive(reqs []ExtractRequest, clients int, do func(ExtractRequest) (hit bool, err error)) *LoadStats {
	if clients < 1 {
		clients = 1
	}
	type sample struct {
		d   time.Duration
		hit bool
		err bool
	}
	samples := make([]sample, len(reqs))
	var wg sync.WaitGroup
	began := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(reqs); i += clients {
				t0 := time.Now()
				hit, err := do(reqs[i])
				samples[i] = sample{d: time.Since(t0), hit: hit, err: err != nil}
			}
		}(c)
	}
	wg.Wait()

	stats := &LoadStats{Requests: len(reqs), Elapsed: time.Since(began)}
	for _, s := range samples {
		stats.latencies = append(stats.latencies, s.d)
		if s.err {
			stats.Errors++
		} else if s.hit {
			stats.Hits++
		}
	}
	sort.Slice(stats.latencies, func(i, j int) bool { return stats.latencies[i] < stats.latencies[j] })
	return stats
}
