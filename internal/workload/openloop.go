package workload

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// The open-loop driver models analyst traffic the way capacity planning
// needs it modeled: arrivals come from a Poisson process at a fixed offered
// rate, regardless of how fast the server answers — a slow server does not
// slow the arrival clock down, it piles up outstanding requests until the
// driver's bound sheds them. Query popularity is Zipf-distributed over the
// request mix (a few hot cohort pulls, a long tail), which is what makes a
// result cache's hit ratio honest. This is the harness behind coribench R9:
// drive a studyd under a storage-fault schedule and check that latency and
// correctness hold.

// Outcome is one request's result as the transport saw it. The driver
// classifies it: 200s count as successes (and cache hits), 429/503 count as
// shed — retried with backoff, honoring Retry-After — and anything else is
// a hard error. Gen carries the response's generation stamp so the driver
// can prove reads never go back in time.
type Outcome struct {
	Hit        bool
	Status     int           // HTTP status; 0 with Err set means transport failure
	RetryAfter time.Duration // server's Retry-After hint (0 when absent)
	Gen        int64         // generation stamp from the response (0 when absent)
	Err        error
}

// shed reports whether the outcome is load shedding (retryable) rather
// than success or hard failure.
func (o Outcome) shed() bool { return o.Status == 429 || o.Status == 503 }

// OpenLoopOptions shapes one open-loop run.
type OpenLoopOptions struct {
	// RPS is the offered arrival rate (Poisson; exponential inter-arrivals).
	RPS float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Seed drives arrivals and popularity; same seed, same offered load.
	Seed int64
	// ZipfS is the popularity skew over the request mix (must be > 1;
	// default 1.2). Index 0 is the hottest request.
	ZipfS float64
	// MaxOutstanding bounds in-flight requests; an arrival past the bound
	// is dropped (counted, never sent) — the open-loop analogue of a full
	// client connection pool. Default 64.
	MaxOutstanding int
	// MaxRetries is how many times a shed (429/503) response is retried
	// before the request is recorded as shed. Default 2.
	MaxRetries int
	// MaxBackoff caps the per-retry sleep (Retry-After included).
	// Default 250ms.
	MaxBackoff time.Duration
}

func (o OpenLoopOptions) withDefaults() OpenLoopOptions {
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 64
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 250 * time.Millisecond
	}
	return o
}

// backoffFor computes the sleep before retry `attempt` (0-based): the
// server's Retry-After when given, else 5ms doubling — both with ±25%
// deterministic jitter (hashed from the request index, so no shared RNG on
// the hot path) and capped at MaxBackoff.
func (o OpenLoopOptions) backoffFor(attempt, idx int, retryAfter time.Duration) time.Duration {
	d := retryAfter
	if d <= 0 {
		d = (5 * time.Millisecond) << attempt
	}
	h := uint64(idx)*2654435761 + uint64(attempt)*40503 + uint64(o.Seed)
	jitter := 0.75 + float64(h%500)/1000 // 0.75 .. 1.25
	d = time.Duration(float64(d) * jitter)
	if d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	return d
}

// genKey is the staleness domain of a request: contributor-pinned extracts
// are stamped with their partition generation, everything else with the
// study generation — each key must be monotone over the run's real time.
func genKey(req ExtractRequest) string {
	if c := req.Params["Contributor"]; len(c) > 0 {
		return req.Study + "/" + c[0]
	}
	return req.Study
}

// DriveOpenLoop offers Poisson arrivals at opts.RPS for opts.Duration,
// picking requests from reqs by Zipf popularity, and sends each through do
// with Retry-After-honoring backoff. The returned stats separate shed load
// (429/503 after retries) from hard errors, count dropped arrivals, and
// flag stale reads — a response whose generation stamp is older than one
// the driver had already observed for the same study/partition *before
// this request was issued*. Concurrent requests that straddle a swap and
// complete out of order are legitimate (both were in flight together);
// only going back past the request's own start is a violation.
func DriveOpenLoop(reqs []ExtractRequest, opts OpenLoopOptions, do func(ExtractRequest) Outcome) *LoadStats {
	opts = opts.withDefaults()
	if len(reqs) == 0 || opts.RPS <= 0 || opts.Duration <= 0 {
		return &LoadStats{}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(len(reqs)-1))

	var (
		mu      sync.Mutex
		stats   = &LoadStats{}
		maxGens = map[string]int64{}
		wg      sync.WaitGroup
	)
	outstanding := make(chan struct{}, opts.MaxOutstanding)

	record := func(req ExtractRequest, lat time.Duration, out Outcome, retries int, floor int64) {
		mu.Lock()
		defer mu.Unlock()
		stats.Requests++
		stats.Retries += retries
		stats.latencies = append(stats.latencies, lat)
		switch {
		case out.Err != nil || (out.Status >= 400 && !out.shed()):
			stats.Errors++
		case out.shed():
			stats.Shed++
		default:
			if out.Hit {
				stats.Hits++
			}
			if out.Gen > 0 {
				key := genKey(req)
				if out.Gen < floor {
					stats.StaleReads++
				}
				if out.Gen > maxGens[key] {
					maxGens[key] = out.Gen
				}
			}
		}
	}

	began := time.Now()
	next := began
	for time.Since(began) < opts.Duration {
		// Poisson process: exponential inter-arrival at the offered rate.
		next = next.Add(time.Duration(rng.ExpFloat64() / opts.RPS * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		req := reqs[int(zipf.Uint64())]
		idx := stats.Offered
		stats.Offered++

		select {
		case outstanding <- struct{}{}:
		default:
			stats.Dropped++ // open loop: never queue past the bound
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-outstanding }()
			// The staleness floor: the newest generation any completed
			// request for this key had returned when this one was issued.
			mu.Lock()
			floor := maxGens[genKey(req)]
			mu.Unlock()
			t0 := time.Now()
			retries := 0
			for attempt := 0; ; attempt++ {
				out := do(req)
				if out.shed() && attempt < opts.MaxRetries {
					retries++
					time.Sleep(opts.backoffFor(attempt, idx, out.RetryAfter))
					continue
				}
				record(req, time.Since(t0), out, retries, floor)
				return
			}
		}()
	}
	wg.Wait()

	stats.Elapsed = time.Since(began)
	sort.Slice(stats.latencies, func(i, j int) bool { return stats.latencies[i] < stats.latencies[j] })
	return stats
}
