package workload

import (
	"fmt"

	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/ui"
)

// Contributor is one fully built data source: its tool's forms, the derived
// g-trees, the pattern stack, a populated physical database, and the ground
// truth that went in through the UI.
type Contributor struct {
	Name   string
	DB     *relstore.DB
	Stack  *patterns.Stack
	Form   *ui.Form
	Info   patterns.FormInfo
	Tree   *gtree.Tree
	Truths []Truth

	// Finding artifacts are populated for contributors whose tool records
	// findings (contributor A).
	FindingForm  *ui.Form
	FindingInfo  patterns.FormInfo
	FindingStack *patterns.Stack
	FindingTree  *gtree.Tree

	// enter is the tool's data-entry mapping, retained so post-build
	// mutations (see mutate.go) insert new records through the same UI
	// path the initial population used.
	enter entryFn
}

// entryFn maps one ground-truth record onto one tool's form controls.
type entryFn func(e *ui.Entry, t Truth) error

// build assembles a contributor: validate the form, derive the g-tree,
// install the stack, and enter every truth record through the UI.
func build(name string, form *ui.Form, stack *patterns.Stack, truths []Truth, enter entryFn) (*Contributor, error) {
	if err := form.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	tree, err := gtree.Derive(name, 1, form)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	info, err := patterns.FromUIForm(form)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	// Every workload stack journals its writes so studies over these
	// contributors can refresh incrementally (etl.RefreshDelta).
	stack.Journal = patterns.NewJournal()
	db := relstore.NewDB(name)
	if err := stack.Install(db, info); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	sink := &patterns.Sink{DB: db, Stack: stack}
	for _, t := range truths {
		e, err := ui.NewEntry(form, t.ID)
		if err != nil {
			return nil, fmt.Errorf("workload: %s record %d: %w", name, t.ID, err)
		}
		if err := enter(e, t); err != nil {
			return nil, fmt.Errorf("workload: %s record %d: %w", name, t.ID, err)
		}
		if err := e.Submit(sink); err != nil {
			return nil, fmt.Errorf("workload: %s record %d: %w", name, t.ID, err)
		}
	}
	return &Contributor{Name: name, DB: db, Stack: stack, Form: form, Info: info, Tree: tree, Truths: truths, enter: enter}, nil
}

// InsertTruth enters one new ground-truth record through the tool's UI, the
// same path the initial population used (findings are not entered — only the
// procedure form). The record is appended to Truths.
func (c *Contributor) InsertTruth(t Truth) error {
	e, err := ui.NewEntry(c.Form, t.ID)
	if err != nil {
		return fmt.Errorf("workload: %s record %d: %w", c.Name, t.ID, err)
	}
	if err := c.enter(e, t); err != nil {
		return fmt.Errorf("workload: %s record %d: %w", c.Name, t.ID, err)
	}
	sink := &patterns.Sink{DB: c.DB, Stack: c.Stack}
	if err := e.Submit(sink); err != nil {
		return fmt.Errorf("workload: %s record %d: %w", c.Name, t.ID, err)
	}
	c.Truths = append(c.Truths, t)
	return nil
}

// SetField changes one naive-schema column of an existing record, routed
// through the contributor's pattern stack (and journaled when it lands).
func (c *Contributor) SetField(key relstore.Value, col string, v relstore.Value) (int, error) {
	return c.Stack.Update(c.DB, c.Info, key, col, v)
}

// DeprecateRecord marks a record deleted through the stack's Audit layer.
func (c *Contributor) DeprecateRecord(key relstore.Value) (int, error) {
	return c.Stack.Deprecate(c.DB, c.Info, key)
}

// CanDeprecate reports whether the contributor's stack carries an Audit
// transform — without one records cannot be logically deleted.
func (c *Contributor) CanDeprecate() bool {
	for _, t := range c.Stack.Transforms {
		if _, ok := t.(*patterns.Audit); ok {
			return true
		}
	}
	return false
}

// MaxID returns the highest ground-truth record ID entered so far.
func (c *Contributor) MaxID() int64 {
	var max int64
	for _, t := range c.Truths {
		if t.ID > max {
			max = t.ID
		}
	}
	return max
}

// set is a small helper that aborts on the first UI error.
type setter struct {
	e   *ui.Entry
	err error
}

func (s *setter) set(name string, v relstore.Value) {
	if s.err != nil {
		return
	}
	s.err = s.e.Set(name, v)
}

func (s *setter) setBool(name string, b bool) { s.set(name, relstore.Bool(b)) }

// BuildCORI builds contributor A: the reference CORI-like tool over a
// Lookup ∘ Audit ∘ Naive stack, plus the Finding child form over Naive.
func BuildCORI(seed int64, n int) (*Contributor, error) {
	truths := Generate(seed, n)
	stack := patterns.NewStack(patterns.Naive{},
		&patterns.Audit{},
		&patterns.Lookup{Columns: []string{"Indication", "ProcType", "Alcohol"}},
	)
	c, err := build("CORI", CORIProcedureForm(), stack, truths, func(e *ui.Entry, t Truth) error {
		s := &setter{e: e}
		s.set("Age", relstore.Int(t.Age))
		s.set("Gender", relstore.Str(t.Gender))
		s.set("Indication", relstore.Str(t.Indication))
		s.set("ProcType", relstore.Str(t.ProcType))
		s.setBool("RenalFailure", t.RenalFailure)
		s.set("Smoking", relstore.Str(t.Smoking))
		switch t.Smoking {
		case "Current":
			s.set("PacksPerDay", relstore.Float(t.PacksPerDay))
		case "Quit":
			s.set("QuitYearsAgo", relstore.Int(t.QuitYearsAgo))
		}
		s.set("Alcohol", relstore.Str(t.Alcohol))
		s.setBool("CardioWNL", t.CardioWNL)
		s.setBool("AbdoWNL", t.AbdoWNL)
		s.setBool("TransientHypoxia", t.TransientHypoxia)
		s.setBool("ProlongedHypoxia", t.ProlongedHypoxia)
		s.setBool("Bleeding", t.Bleeding)
		s.setBool("Surgery", t.Surgery)
		s.setBool("IVFluids", t.IVFluids)
		s.setBool("Oxygen", t.Oxygen)
		return s.err
	})
	if err != nil {
		return nil, err
	}
	// Finding child form, naive layout.
	ff := CORIFindingForm()
	if err := ff.Validate(); err != nil {
		return nil, err
	}
	ftree, err := gtree.Derive("CORI", 1, ff)
	if err != nil {
		return nil, err
	}
	finfo, err := patterns.FromUIForm(ff)
	if err != nil {
		return nil, err
	}
	fstack := patterns.NewStack(patterns.Naive{})
	if err := fstack.Install(c.DB, finfo); err != nil {
		return nil, err
	}
	fsink := &patterns.Sink{DB: c.DB, Stack: fstack}
	for _, t := range truths {
		for _, f := range t.Findings {
			e, err := ui.NewEntry(ff, f.ID)
			if err != nil {
				return nil, err
			}
			s := &setter{e: e}
			s.set("ProcedureRef", relstore.Int(f.ProcedureID))
			s.set("Size", relstore.Int(f.SizeMM))
			s.setBool("ImagesTaken", f.ImagesTaken)
			if s.err != nil {
				return nil, s.err
			}
			if err := e.Submit(fsink); err != nil {
				return nil, err
			}
		}
	}
	c.FindingForm, c.FindingInfo, c.FindingStack, c.FindingTree = ff, finfo, fstack, ftree
	return c, nil
}

// endoSoftReason maps the canonical indication onto EndoSoft's wording.
var endoSoftReason = map[string]string{
	"Asthma-specific ENT/Pulmonary Reflux symptoms": "Reflux-associated asthma symptoms",
	"Dysphagia":                          "Difficulty swallowing",
	"GI Bleeding":                        "GI bleed",
	"Abdominal Pain":                     "Abdominal pain",
	"Surveillance - Barrett's Esophagus": "Barrett's surveillance",
	"Anemia":                             "Anemia workup",
	"Screening":                          "Routine screening",
}

// endoSoftExam maps the canonical procedure type onto EndoSoft's wording.
var endoSoftExam = map[string]string{
	"Upper GI Endoscopy":     "EGD",
	"Colonoscopy":            "Colonoscopy",
	"Flexible Sigmoidoscopy": "Flex Sig",
}

// endoSoftSmoking maps the canonical status onto EndoSoft's vocabulary.
var endoSoftSmoking = map[string]string{
	"Never": "Non-smoker", "Current": "Smoker", "Quit": "Ex-smoker",
}

// endoSoftEtoh coarsens the four canonical alcohol levels onto EndoSoft's
// three buckets — deliberate vocabulary loss at one contributor.
var endoSoftEtoh = map[string]string{
	"None": "0", "Light": "<7/wk", "Moderate": ">=7/wk", "Heavy": ">=7/wk",
}

// BuildEndoSoft builds contributor B: different wording, cigarettes instead
// of packs, and a Sentinel ∘ Delimited ∘ Split physical stack.
func BuildEndoSoft(seed int64, n int) (*Contributor, error) {
	truths := Generate(seed, n)
	stack := patterns.NewStack(&patterns.Split{},
		&patterns.Delimited{Into: "tx_packed", Columns: []string{"TxSurgery", "TxFluids", "TxOxygen"}},
		&patterns.Sentinel{},
	)
	return build("EndoSoft", EndoSoftExamForm(), stack, truths, func(e *ui.Entry, t Truth) error {
		s := &setter{e: e}
		s.set("PatientAge", relstore.Int(t.Age))
		sex := "Female"
		if t.Gender == "M" {
			sex = "Male"
		}
		s.set("Sex", relstore.Str(sex))
		s.set("Reason", relstore.Str(endoSoftReason[t.Indication]))
		s.set("ExamType", relstore.Str(endoSoftExam[t.ProcType]))
		s.setBool("RenalDisease", t.RenalFailure)
		s.set("SmokingStatus", relstore.Str(endoSoftSmoking[t.Smoking]))
		switch t.Smoking {
		case "Current":
			s.set("CigsPerDay", relstore.Int(int64(t.PacksPerDay*20)))
		case "Quit":
			s.set("YearsSinceQuit", relstore.Int(t.QuitYearsAgo))
		}
		s.set("ETOH", relstore.Str(endoSoftEtoh[t.Alcohol]))
		s.setBool("CardioNormal", t.CardioWNL)
		s.setBool("AbdoNormal", t.AbdoWNL)
		s.setBool("O2Desat", t.TransientHypoxia)
		s.setBool("O2DesatProlonged", t.ProlongedHypoxia)
		yn := func(b bool) relstore.Value {
			if b {
				return relstore.Str("Yes")
			}
			return relstore.Str("No")
		}
		s.set("TxSurgery", yn(t.Surgery))
		s.set("TxFluids", yn(t.IVFluids))
		s.set("TxOxygen", yn(t.Oxygen))
		return s.err
	})
}

// medRecordSmoke maps the canonical status onto MedRecord's integer codes.
var medRecordSmoke = map[string]int64{"Never": 0, "Current": 1, "Quit": 2}

// medRecordEtoh maps the canonical alcohol level onto MedRecord's codes.
var medRecordEtoh = map[string]int64{"None": 0, "Light": 1, "Moderate": 2, "Heavy": 3}

// medRecordProc maps the canonical procedure type onto MedRecord's codes.
var medRecordProc = map[string]int64{
	"Upper GI Endoscopy": 10, "Colonoscopy": 20, "Flexible Sigmoidoscopy": 30,
}

// BuildMedRecord builds contributor C: integer-coded answers behind a
// Rename ∘ Encode ∘ Audit ∘ Generic (EAV) stack — the hardest physical
// layout in Table 1.
func BuildMedRecord(seed int64, n int) (*Contributor, error) {
	truths := Generate(seed, n)
	stack := patterns.NewStack(patterns.Generic{},
		&patterns.Audit{},
		&patterns.Rename{Physical: map[string]string{
			"AgeYears": "fld_001", "SexCode": "fld_002", "IndicationText": "fld_003",
			"ProcCode": "fld_004", "SmokeCode": "fld_010", "PacksDaily": "fld_011",
			"QuitYears": "fld_012", "EtohCode": "fld_013",
		}},
		&patterns.Encode{TrueCode: "1", FalseCode: "0"},
	)
	return build("MedRecord", MedRecordForm(), stack, truths, func(e *ui.Entry, t Truth) error {
		s := &setter{e: e}
		s.set("AgeYears", relstore.Int(t.Age))
		var sex int64
		if t.Gender == "M" {
			sex = 1
		}
		s.set("SexCode", relstore.Int(sex))
		s.set("IndicationText", relstore.Str(t.Indication))
		s.set("ProcCode", relstore.Int(medRecordProc[t.ProcType]))
		s.set("SmokeCode", relstore.Int(medRecordSmoke[t.Smoking]))
		switch t.Smoking {
		case "Current":
			s.set("PacksDaily", relstore.Float(t.PacksPerDay))
		case "Quit":
			s.set("QuitYears", relstore.Int(t.QuitYearsAgo))
		}
		s.set("EtohCode", relstore.Int(medRecordEtoh[t.Alcohol]))
		s.setBool("RenalHx", t.RenalFailure)
		s.setBool("CardioOK", t.CardioWNL)
		s.setBool("AbdoOK", t.AbdoWNL)
		s.setBool("HypoxiaT", t.TransientHypoxia)
		s.setBool("HypoxiaP", t.ProlongedHypoxia)
		s.setBool("TxSurg", t.Surgery)
		s.setBool("TxIVF", t.IVFluids)
		s.setBool("TxO2", t.Oxygen)
		return s.err
	})
}

// BuildAll builds the three contributors over disjoint patient populations
// (distinct seeds), sized n records each.
func BuildAll(seed int64, n int) ([]*Contributor, error) {
	a, err := BuildCORI(seed, n)
	if err != nil {
		return nil, err
	}
	b, err := BuildEndoSoft(seed+1, n)
	if err != nil {
		return nil, err
	}
	c, err := BuildMedRecord(seed+2, n)
	if err != nil {
		return nil, err
	}
	return []*Contributor{a, b, c}, nil
}
