package workload

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestExtractRequestsDeterministic: the same seed yields the same traffic,
// a different seed a different mix, and every request parses as a query
// over the reference study's real columns.
func TestExtractRequestsDeterministic(t *testing.T) {
	a := ExtractRequests("reference", 200, 7)
	b := ExtractRequests("reference", 200, 7)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("generated %d/%d requests, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("request %d diverges under one seed: %s vs %s", i, a[i], b[i])
		}
	}
	c := ExtractRequests("reference", 200, 8)
	same := 0
	for i := range a {
		if a[i].String() == c[i].String() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traffic")
	}

	// The hot shape repeats — a result cache must be able to prove itself.
	counts := map[string]int{}
	for _, r := range a {
		counts[r.String()]++
	}
	max := 0
	for _, n := range counts {
		max = maxInt(max, n)
	}
	if max < 20 {
		t.Errorf("hottest request repeats only %d times in 200", max)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDrive: the driver fans requests across clients, counts hits and
// errors, and reports ordered quantiles.
func TestDrive(t *testing.T) {
	reqs := ExtractRequests("reference", 40, 1)
	stats := Drive(reqs, 4, func(r ExtractRequest) (bool, error) {
		time.Sleep(100 * time.Microsecond)
		switch {
		case r.Params["limit"] != nil && r.Params["offset"] == nil:
			return true, nil // pretend the hot shape always hits
		case r.Params["Hypoxia_D1"] != nil:
			return false, errors.New("boom")
		default:
			return false, nil
		}
	})
	if stats.Requests != 40 {
		t.Fatalf("requests = %d, want 40", stats.Requests)
	}
	if stats.Hits == 0 {
		t.Error("hot requests must register hits")
	}
	if stats.Hits+stats.Errors > stats.Requests {
		t.Errorf("hits %d + errors %d exceed %d requests", stats.Hits, stats.Errors, stats.Requests)
	}
	if stats.HitRatio() <= 0 || stats.HitRatio() > 1 {
		t.Errorf("hit ratio = %v", stats.HitRatio())
	}
	if stats.P50() <= 0 || stats.P99() < stats.P50() {
		t.Errorf("quantiles disordered: p50=%v p99=%v", stats.P50(), stats.P99())
	}
	if stats.Throughput() <= 0 {
		t.Errorf("throughput = %v", stats.Throughput())
	}
	if got := fmt.Sprint(reqs[0]); got == "" {
		t.Error("request must render")
	}
}
