package workload

import (
	"context"
	"testing"

	"guava/internal/relstore"
)

// TestBuildNotesRoundTrip: ground truth dictated into progress notes must
// read back through the extractor exactly as the form contributors read
// back through their table layouts.
func TestBuildNotesRoundTrip(t *testing.T) {
	c, err := BuildNotes(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Stack.Read(c.DB, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != len(c.Truths) {
		t.Fatalf("read %d rows, want %d", len(rows.Data), len(c.Truths))
	}
	s := rows.Schema
	byID := map[int64]relstore.Row{}
	for _, r := range rows.Data {
		byID[r[s.Index("NoteID")].AsInt()] = r
	}
	for _, tr := range c.Truths {
		r, ok := byID[tr.ID]
		if !ok {
			t.Fatalf("truth %d missing from extraction", tr.ID)
		}
		if got := r[s.Index("SmokeStatus")].AsString(); got != tr.Smoking {
			t.Errorf("record %d: SmokeStatus = %q, want %q", tr.ID, got, tr.Smoking)
		}
		packs := r[s.Index("TobaccoPacks")]
		if tr.Smoking == "Current" {
			if packs.IsNull() || packs.AsFloat() != tr.PacksPerDay {
				t.Errorf("record %d: TobaccoPacks = %s, want %v", tr.ID, packs, tr.PacksPerDay)
			}
		} else if !packs.IsNull() {
			t.Errorf("record %d: TobaccoPacks = %s, want NULL", tr.ID, packs)
		}
		if got := r[s.Index("HypoxiaTransient")].AsBool(); got != tr.TransientHypoxia {
			t.Errorf("record %d: HypoxiaTransient = %v, want %v", tr.ID, got, tr.TransientHypoxia)
		}
	}
}

// TestNotesCorruptReportDiverts: an injected out-of-vocabulary report fails
// the strict read, diverts under ReadDiverting with report-span provenance,
// and lands in the journal so a delta refresh would pick it up.
func TestNotesCorruptReportDiverts(t *testing.T) {
	c, err := BuildNotes(11, 15)
	if err != nil {
		t.Fatal(err)
	}
	bad := c.MaxID() + 1
	if err := c.InjectReport(bad, CorruptNoteBody(bad)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stack.Read(c.DB, c.Info); err == nil {
		t.Fatal("strict read over a corrupt corpus must fail")
	}
	rows, misses, err := c.Stack.ReadDiverting(context.Background(), c.DB, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 15 || len(misses) != 1 {
		t.Fatalf("got %d rows, %d misses; want 15 rows, 1 miss", len(rows.Data), len(misses))
	}
	m := misses[0]
	if m.SourceKind != "report-span" || !m.Key.Equal(relstore.Int(bad)) {
		t.Errorf("miss provenance = %+v, want report-span for report %d", m, bad)
	}
	hw, err := c.Stack.Journal.HighWaterMark(c.DB, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	keys, _, err := c.Stack.Journal.ChangedSince(c.DB, c.Info, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hw != 16 || len(keys) != 16 {
		t.Errorf("journal hw = %d with %d keys, want 16/16 (inject must journal)", hw, len(keys))
	}
}
