package plancheck

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"guava/internal/etl"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/vet"
)

var update = flag.Bool("update", false, "rewrite the plan-corpus golden files")

// plancorpusDir is the plan-level extension of the defect corpus, living
// beside the artifact corpus in internal/vet/testdata.
var plancorpusDir = filepath.Join("..", "vet", "testdata", "plancorpus")

// builtFixtures are fixtures the manifest grammar cannot express (a column
// nobody reads, statistics-driven emptiness): their directories hold only
// the golden, and the report comes from a hand-built workflow here.
var builtFixtures = map[string]func() *vet.Report{
	// GV214: a query derives a column the only consumer never reads.
	"GV214_bad": func() *vet.Report {
		w := &etl.Workflow{Name: "gv214"}
		t1 := etl.TableRef{DB: "tmp", Table: "wide"}
		out := etl.TableRef{DB: "study", Table: "out"}
		w.Add("derive/wide", &etl.Query{
			From: etl.TableRef{DB: "src", Table: "rows"},
			Derive: []relstore.Derivation{
				{Name: "K", Type: relstore.KindInt, Expr: relstore.Col("K")},
				{Name: "Wasted", Type: relstore.KindInt, Expr: relstore.Col("V")},
			},
			To: t1,
		})
		w.Add("project/out", &etl.Query{From: t1, Project: []string{"K"}, To: out}, "derive/wide")
		rep := &vet.Report{}
		AnalyzeWorkflow("gv214", w, rep, Options{})
		rep.Sort()
		return rep
	},
	// GV216: warehouse statistics prove the scanned source relation empty.
	"GV216_bad": func() *vet.Report {
		form := mustForm()
		w := &etl.Workflow{Name: "gv216"}
		w.Add("extract/Clinic", &etl.Extract{
			SourceDB: "source_Clinic",
			Stack:    patterns.NewStack(patterns.Naive{}),
			Form:     form,
			To:       etl.TableRef{DB: "tmp1_Clinic", Table: "Visit_naive"},
		})
		rep := &vet.Report{}
		AnalyzeWorkflow("gv216", w, rep, Options{
			Stats: func(db, table string) (int, bool) {
				if db == "source_Clinic" && table == "Visit" {
					return 0, true
				}
				return 0, false
			},
		})
		rep.Sort()
		return rep
	},
}

func mustForm() patterns.FormInfo {
	schema, err := relstore.NewSchema(
		relstore.Column{Name: "VisitID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "PacksPerDay", Type: relstore.KindFloat},
	)
	if err != nil {
		panic(err)
	}
	return patterns.FormInfo{Name: "Visit", KeyColumn: "VisitID", Schema: schema}
}

// TestPlanCorpusGoldens locks the plan-analysis reports down byte-for-byte:
// manifest fixtures run the full guavavet pipeline (artifact vet + plan
// analysis), built fixtures run the analyzer directly, and every
// GV<code>_bad directory must actually contain its code.
func TestPlanCorpusGoldens(t *testing.T) {
	entries, err := os.ReadDir(plancorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var cases []string
	for _, e := range entries {
		if e.IsDir() {
			cases = append(cases, e.Name())
		}
	}
	sort.Strings(cases)
	if len(cases) == 0 {
		t.Fatal("empty plan corpus")
	}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(plancorpusDir, name)
			var rep *vet.Report
			if build, ok := builtFixtures[name]; ok {
				rep = build()
			} else {
				rep = VetPaths([]string{dir}, Options{})
			}
			// Artifact positions carry the path the bundle was loaded from;
			// strip the corpus prefix so goldens are location-independent.
			got := strings.ReplaceAll(rep.Text(), plancorpusDir+string(filepath.Separator), "")

			goldenPath := filepath.Join(dir, "expect.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			switch {
			case strings.HasPrefix(name, "clean_"):
				if len(rep.Diags) != 0 {
					t.Errorf("clean fixture produced diagnostics:\n%s", got)
				}
			case strings.HasPrefix(name, "GV"):
				code := strings.SplitN(name, "_", 2)[0]
				found := false
				for _, d := range rep.Diags {
					if d.Code == code {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("fixture did not trigger %s:\n%s", code, got)
				}
			}

			// Whatever text renders must also render as valid JSON and SARIF.
			for _, render := range []func() ([]byte, error){rep.JSON, rep.SARIF} {
				out, err := render()
				if err != nil {
					t.Fatal(err)
				}
				if !json.Valid(out) {
					t.Errorf("renderer produced invalid JSON:\n%s", out)
				}
			}
		})
	}
}

// TestPlanCorpusCoverage mirrors vet's TestCatalogCoverage from the other
// side: every GV21x code must have a plancorpus fixture.
func TestPlanCorpusCoverage(t *testing.T) {
	for _, c := range vet.Catalog {
		if !strings.HasPrefix(c.Code, "GV21") {
			continue
		}
		if _, err := os.Stat(filepath.Join(plancorpusDir, c.Code+"_bad")); err != nil {
			t.Errorf("no plancorpus fixture for %s (%s)", c.Code, c.Summary)
		}
	}
}
