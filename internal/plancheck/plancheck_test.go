package plancheck

import (
	"strings"
	"testing"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/vet"
	"guava/internal/workload"
)

// referenceSpec builds the shipped three-contributor reference study.
func referenceSpec(t *testing.T) *etl.StudySpec {
	t.Helper()
	contribs, err := workload.BuildAll(42, 25)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		t.Fatalf("ReferenceSpec: %v", err)
	}
	return spec
}

// cohortSpec is the trimmed variant studyd also serves: one column, no
// Hypoxia classifier.
func cohortSpec(t *testing.T) *etl.StudySpec {
	t.Helper()
	spec := referenceSpec(t)
	spec.Name = "cohort"
	spec.Columns = spec.Columns[:1]
	for _, c := range spec.Contributors {
		delete(c.Classifiers, "Hypoxia_D1")
	}
	return spec
}

// TestReferenceStudiesAreClean is the zero-false-positive acceptance gate:
// the plan analyzer must stay silent over both shipped studies.
func TestReferenceStudiesAreClean(t *testing.T) {
	for _, spec := range []*etl.StudySpec{referenceSpec(t), cohortSpec(t)} {
		rep := Study(spec, Options{})
		if len(rep.Diags) != 0 {
			t.Errorf("study %q: expected a silent plan report, got:\n%s", spec.Name, rep.Text())
		}
	}
}

// TestGateAcceptsReference proves the admission gate passes healthy plans.
func TestGateAcceptsReference(t *testing.T) {
	compiled, err := etl.Compile(referenceSpec(t))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := Gate(compiled, Options{}); err != nil {
		t.Fatalf("Gate rejected the reference study: %v", err)
	}
}

// TestGateRejectsContradiction proves a contradictory post-compile condition
// is rejected with GV212/GV211 while the artifacts alone vet clean.
func TestGateRejectsContradiction(t *testing.T) {
	spec := referenceSpec(t)
	spec.Name = "badplan"
	spec.Contributors = spec.Contributors[:1] // CORI carries PacksPerDay
	spec.Contributors[0].Condition = "PacksPerDay > 5 AND PacksPerDay < 2"

	if rep := vet.Study(spec, nil, nil); rep.HasErrors() {
		t.Fatalf("artifact vet should pass (the contradiction is plan-level):\n%s", rep.Text())
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	err = Gate(compiled, Options{})
	rej, ok := err.(*RejectionError)
	if !ok {
		t.Fatalf("Gate: want *RejectionError, got %v", err)
	}
	text := rej.Report.Text()
	for _, code := range []string{"GV211", "GV212"} {
		if !strings.Contains(text, code) {
			t.Errorf("rejection report missing %s:\n%s", code, text)
		}
	}
}

// TestAnalyzeDeterministic asserts byte-identical reports across repeated
// runs — map iteration anywhere in the pass would break this.
func TestAnalyzeDeterministic(t *testing.T) {
	spec := referenceSpec(t)
	spec.Contributors[0].Condition = "PacksPerDay > 5 AND PacksPerDay < 2"
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var first string
	for i := 0; i < 5; i++ {
		rep := &vet.Report{}
		Analyze(compiled, rep, Options{})
		rep.Sort()
		if i == 0 {
			first = rep.Text()
			continue
		}
		if got := rep.Text(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestOperatorTransferFunctions drives the five operators the ETL compiler
// never emits (extend, rename, sort_by, pivot, group_by) through the
// analyzer directly, completing transfer-function coverage of all 14
// relstore operators.
func TestOperatorTransferFunctions(t *testing.T) {
	schema, err := relstore.NewSchema(
		relstore.Column{Name: "K", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "V", Type: relstore.KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	scan := &Node{Op: OpScan, Table: etl.TableRef{DB: "d", Table: "t"}, Schema: schema}
	p := &pass{study: "s", step: "x", rep: &vet.Report{}, tables: map[string]*facts{}, caseFPs: map[uint64][]caseSite{}}

	ext := p.analyze(&Node{Op: OpExtend, In: []*Node{scan}, Derivs: []relstore.Derivation{
		{Name: "Two", Type: relstore.KindInt, Expr: relstore.Lit(relstore.Int(2))},
	}})
	if !ext.notNull["K"] || !ext.notNull["Two"] || ext.schema == nil || !ext.schema.Has("V") {
		t.Errorf("extend facts wrong: %+v", ext)
	}

	ren := p.analyze(&Node{Op: OpRename, In: []*Node{scan}, From: "K", To: "Key"})
	if !ren.notNull["Key"] || ren.notNull["K"] || !ren.schema.Has("Key") {
		t.Errorf("rename facts wrong: %+v", ren)
	}

	srt := p.analyze(&Node{Op: OpSortBy, In: []*Node{scan}, Cols: []string{"K"}})
	if !srt.notNull["K"] {
		t.Errorf("sort_by should preserve facts: %+v", srt)
	}

	piv := p.analyze(&Node{Op: OpPivot, In: []*Node{scan}, Cols: []string{"K"}, AttrCol: "A", ValCol: "V"})
	if !piv.key["K"] {
		t.Errorf("pivot should prove the key column unique: %+v", piv)
	}

	grp := p.analyze(&Node{Op: OpGroupBy, In: []*Node{scan}, Cols: []string{"K"}, Aggs: []relstore.Aggregate{
		{Kind: relstore.AggCount, Col: "V", As: "N"},
	}})
	if !grp.key["K"] || !grp.notNull["N"] || grp.schema == nil || !grp.schema.Has("N") {
		t.Errorf("group_by facts wrong: %+v", grp)
	}
}
