package plancheck

import (
	"sort"
	"strings"

	"guava/internal/etl"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/vet"
)

// AnalyzeWorkflow runs the dataflow pass over a compiled workflow, appending
// GV21x diagnostics to rep. study names the study for diagnostic positions
// ("plan:<study>/<step>"). Steps whose components the analyzer does not
// recognize produce unknown facts and are skipped silently — the pass never
// guesses.
func AnalyzeWorkflow(study string, w *etl.Workflow, rep *vet.Report, opts Options) {
	if w == nil {
		return
	}
	p := &pass{
		study:   study,
		rep:     rep,
		opts:    opts,
		tables:  map[string]*facts{},
		caseFPs: map[uint64][]caseSite{},
	}
	steps, ok := topoSteps(w.Steps)
	if !ok {
		return // cyclic or dangling dependencies; Workflow.Lint owns that report
	}
	for _, st := range steps {
		p.step = st.ID
		to, haveTo := stepOutput(st)
		root := p.lowerStep(st)
		var f *facts
		if root != nil {
			f = p.analyze(root)
		} else {
			f = unknownFacts(fpString("step|" + st.ID))
		}
		if f.dead {
			cause := f.deadCause
			if cause == "" {
				cause = "dead input"
			}
			rep.Add("GV211", p.pos(), "operator tree output is provably empty (%s)", cause)
		}
		if haveTo {
			p.tables[to.String()] = f
		}
	}
	p.reportDeadColumns(steps)
	p.reportSharedSubtrees()
}

// stepOutput returns the table a step writes.
func stepOutput(st *etl.Step) (etl.TableRef, bool) {
	type writer interface{ Writes() []etl.TableRef }
	if wr, ok := st.Component.(writer); ok {
		ws := wr.Writes()
		if len(ws) == 1 {
			return ws[0], true
		}
	}
	return etl.TableRef{}, false
}

// topoSteps orders steps so producers precede consumers, preserving the
// declaration order among ready steps (the pass must be deterministic).
func topoSteps(steps []etl.Step) ([]*etl.Step, bool) {
	byID := make(map[string]*etl.Step, len(steps))
	indeg := make(map[string]int, len(steps))
	for i := range steps {
		st := &steps[i]
		byID[st.ID] = st
		indeg[st.ID] = 0
	}
	dependents := map[string][]string{}
	for i := range steps {
		st := &steps[i]
		for _, dep := range st.DependsOn {
			if _, ok := byID[dep]; !ok {
				return nil, false
			}
			indeg[st.ID]++
			dependents[dep] = append(dependents[dep], st.ID)
		}
	}
	var out []*etl.Step
	ready := make([]string, 0, len(steps))
	for i := range steps {
		if indeg[steps[i].ID] == 0 {
			ready = append(ready, steps[i].ID)
		}
	}
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, byID[id])
		for _, next := range dependents[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	return out, len(out) == len(steps)
}

// lowerStep lowers one ETL component into an operator tree over the 14
// relstore operators. Unknown components lower to nil (unknown facts).
func (p *pass) lowerStep(st *etl.Step) *Node {
	switch c := st.Component.(type) {
	case *etl.Extract:
		return lowerExtract(c)
	case *etl.Query:
		return lowerQuery(c)
	case *etl.Union:
		n := &Node{Op: OpUnionAll}
		if c.Distinct {
			n.Op = OpUnion
			n.Distinct = true
		}
		for _, from := range c.From {
			n.In = append(n.In, &Node{Op: OpScan, Table: from})
		}
		return n
	case *etl.JoinStep:
		return &Node{
			Op:      OpJoin,
			In:      []*Node{{Op: OpScan, Table: c.Left}, {Op: OpScan, Table: c.Right}},
			LeftCol: c.LeftCol, RightCol: c.RightCol, Prefix: c.RightPrefix,
		}
	default:
		return nil
	}
}

// lowerExtract models what the pattern stack reconstructs. A transform-free
// Join/EAV (Generic) stack lowers to the exact operator pipeline
// patterns.Generic.Read runs — scan(eav) → un-pivot → left-join(entities) →
// project — which is where GV213 lives. Everything else is opaque
// reconstruction with the naive form schema as the output contract.
func lowerExtract(c *etl.Extract) *Node {
	if c.Stack == nil || c.Form.Schema == nil {
		return nil
	}
	form := c.Form
	if isGeneric(c.Stack) && len(c.Stack.Transforms) == 0 {
		keyType := relstore.KindInt
		if kc, err := form.Schema.Col(form.KeyColumn); err == nil {
			keyType = kc.Type
		}
		entSchema, err := relstore.NewSchema(relstore.Column{Name: form.KeyColumn, Type: keyType, NotNull: true})
		if err != nil {
			return nil
		}
		eavSchema, err := relstore.NewSchema(
			relstore.Column{Name: form.KeyColumn, Type: keyType, NotNull: true},
			relstore.Column{Name: "Attribute", Type: relstore.KindString, NotNull: true},
			relstore.Column{Name: "Value", Type: relstore.KindString},
		)
		if err != nil {
			// The key column collides with the EAV layout's fixed columns;
			// model the scans opaquely and let the un-pivot checks report.
			eavSchema = nil
		}
		var attrs []relstore.Column
		for _, col := range form.Schema.Columns {
			if col.Name != form.KeyColumn {
				attrs = append(attrs, relstore.Column{Name: col.Name, Type: col.Type})
			}
		}
		entities := &Node{Op: OpScan, Table: etl.TableRef{DB: c.SourceDB, Table: form.Name + "_entities"}, Schema: entSchema}
		eav := &Node{Op: OpScan, Table: etl.TableRef{DB: c.SourceDB, Table: form.Name + "_eav"}, Schema: eavSchema}
		unpivot := &Node{
			Op: OpUnpivot, In: []*Node{eav},
			Table:   eav.Table,
			Cols:    []string{form.KeyColumn},
			AttrCol: "Attribute", ValCol: "Value",
			Attrs: attrs,
		}
		join := &Node{
			Op: OpLeftJoin, In: []*Node{entities, unpivot},
			LeftCol: form.KeyColumn, RightCol: form.KeyColumn, Prefix: "v",
		}
		return &Node{Op: OpProject, In: []*Node{join}, Cols: form.Schema.Names()}
	}
	return &Node{
		Op:      OpScan,
		Table:   etl.TableRef{DB: c.SourceDB, Table: form.Name},
		Schema:  form.Schema,
		NotNull: []string{form.KeyColumn},
	}
}

func isGeneric(s *patterns.Stack) bool {
	switch s.Layout.(type) {
	case patterns.Generic, *patterns.Generic:
		return true
	}
	return false
}

func lowerQuery(c *etl.Query) *Node {
	n := &Node{Op: OpScan, Table: c.From}
	if c.Where != nil {
		n = &Node{Op: OpSelect, In: []*Node{n}, Pred: c.Where}
	}
	switch {
	case len(c.Derive) > 0:
		n = &Node{Op: OpDerive, In: []*Node{n}, Derivs: c.Derive}
	case len(c.Project) > 0:
		n = &Node{Op: OpProject, In: []*Node{n}, Cols: c.Project}
	}
	if c.Distinct {
		n = &Node{Op: OpDistinct, In: []*Node{n}}
	}
	if len(c.Require) > 0 {
		n = &Node{Op: OpRequire, In: []*Node{n}, Cols: c.Require}
	}
	return n
}

// reportDeadColumns flags columns a step explicitly constructs (derives or
// projects) that no downstream consumer reads and that are not part of a
// final output relation (GV214). Pass-through steps construct nothing, and
// unknown consumers read everything, so the check under-reports rather than
// over-reports.
func (p *pass) reportDeadColumns(steps []*etl.Step) {
	type reader interface{ Reads() []etl.TableRef }
	readAll := map[string]bool{}          // table → some consumer reads every column
	reads := map[string]map[string]bool{} // table → column read-set
	consumed := map[string]bool{}

	addRead := func(t etl.TableRef, cols map[string]bool, all bool) {
		key := t.String()
		consumed[key] = true
		if all {
			readAll[key] = true
			return
		}
		if reads[key] == nil {
			reads[key] = map[string]bool{}
		}
		for c := range cols {
			reads[key][c] = true
		}
	}

	for _, st := range steps {
		switch c := st.Component.(type) {
		case *etl.Query:
			if len(c.Derive) == 0 && len(c.Project) == 0 {
				addRead(c.From, nil, true)
				continue
			}
			cols := map[string]bool{}
			predCols(c.Where, cols)
			for _, d := range c.Derive {
				exprCols(d.Expr, cols)
			}
			for _, name := range c.Project {
				cols[name] = true
			}
			if len(c.Derive) == 0 {
				// Require names output columns; without Derive the output
				// columns are input columns.
				for _, name := range c.Require {
					cols[name] = true
				}
			}
			addRead(c.From, cols, false)
		default:
			if rd, ok := st.Component.(reader); ok {
				for _, t := range rd.Reads() {
					addRead(t, nil, true)
				}
			}
		}
	}

	for _, st := range steps {
		q, ok := st.Component.(*etl.Query)
		if !ok {
			continue
		}
		var produced []string
		switch {
		case len(q.Derive) > 0:
			for _, d := range q.Derive {
				produced = append(produced, d.Name)
			}
		case len(q.Project) > 0:
			produced = append(produced, q.Project...)
		default:
			continue
		}
		key := q.To.String()
		if !consumed[key] || readAll[key] {
			continue // final output, or fully-read
		}
		p.step = st.ID
		for _, col := range produced {
			if !reads[key][col] {
				p.rep.Add("GV214", p.pos(),
					"column %q is computed here but no downstream operator reads it; the work is wasted on every row", col)
			}
		}
	}
}

// reportSharedSubtrees emits the cross-classifier redundancy report (GV215):
// classifier CASE derivations whose expression and input lineage fingerprint
// identically would be computed once by a CSE pass (ROADMAP item 4).
func (p *pass) reportSharedSubtrees() {
	type group struct {
		fp    uint64
		sites []caseSite
	}
	var groups []group
	for fp, sites := range p.caseFPs {
		if len(sites) > 1 {
			groups = append(groups, group{fp: fp, sites: sites})
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].sites[0], groups[j].sites[0]
		if a.step != b.step {
			return a.step < b.step
		}
		if a.column != b.column {
			return a.column < b.column
		}
		return groups[i].fp < groups[j].fp
	})
	for _, g := range groups {
		first := g.sites[0]
		others := make([]string, 0, len(g.sites)-1)
		for _, s := range g.sites[1:] {
			others = append(others, s.step+"/"+s.column)
		}
		p.step = first.step
		p.rep.Add("GV215", p.pos(),
			"classifier expression for column %q is structurally identical to %s (subtree fingerprint %016x); a cross-classifier CSE pass would compute it once",
			first.column, strings.Join(others, ", "), g.fp)
	}
}
