package plancheck

import "guava/internal/relstore"

// exprCols adds every column name the expression references to set.
func exprCols(e relstore.Expr, set map[string]bool) {
	switch x := e.(type) {
	case nil:
	case relstore.ColRef:
		set[x.Name] = true
	case *relstore.ColRef:
		set[x.Name] = true
	case relstore.LitExpr, *relstore.LitExpr:
	case relstore.ArithExpr:
		exprCols(x.L, set)
		exprCols(x.R, set)
	case *relstore.ArithExpr:
		exprCols(x.L, set)
		exprCols(x.R, set)
	case relstore.NegExpr:
		exprCols(x.E, set)
	case *relstore.NegExpr:
		exprCols(x.E, set)
	case relstore.CaseExpr:
		caseCols(x, set)
	case *relstore.CaseExpr:
		caseCols(*x, set)
	case relstore.FuncExpr:
		for _, a := range x.Args {
			exprCols(a, set)
		}
	case *relstore.FuncExpr:
		for _, a := range x.Args {
			exprCols(a, set)
		}
	case relstore.PredExpr:
		predCols(x.P, set)
	case *relstore.PredExpr:
		predCols(x.P, set)
	}
}

func caseCols(c relstore.CaseExpr, set map[string]bool) {
	for _, b := range c.Branches {
		predCols(b.When, set)
		exprCols(b.Then, set)
	}
	exprCols(c.Else, set)
}

// predCols adds every column name the predicate references to set.
func predCols(p relstore.Pred, set map[string]bool) {
	switch x := p.(type) {
	case nil:
	case relstore.BoolLit, *relstore.BoolLit:
	case relstore.CmpPred:
		exprCols(x.L, set)
		exprCols(x.R, set)
	case *relstore.CmpPred:
		exprCols(x.L, set)
		exprCols(x.R, set)
	case relstore.AndPred:
		for _, q := range x.Ps {
			predCols(q, set)
		}
	case *relstore.AndPred:
		for _, q := range x.Ps {
			predCols(q, set)
		}
	case relstore.OrPred:
		for _, q := range x.Ps {
			predCols(q, set)
		}
	case *relstore.OrPred:
		for _, q := range x.Ps {
			predCols(q, set)
		}
	case relstore.NotPred:
		predCols(x.P, set)
	case *relstore.NotPred:
		predCols(x.P, set)
	case relstore.NullPred:
		exprCols(x.E, set)
	case *relstore.NullPred:
		exprCols(x.E, set)
	case relstore.InPred:
		exprCols(x.E, set)
	case *relstore.InPred:
		exprCols(x.E, set)
	case relstore.ExprPred:
		exprCols(x.E, set)
	case *relstore.ExprPred:
		exprCols(x.E, set)
	}
}

// asCol unwraps a bare column reference.
func asCol(e relstore.Expr) (string, bool) {
	switch x := e.(type) {
	case relstore.ColRef:
		return x.Name, true
	case *relstore.ColRef:
		return x.Name, true
	}
	return "", false
}

// exprNotNull reports whether the expression provably never evaluates to
// NULL given the input columns proven non-NULL. One-sided: false means
// "unknown", never "nullable".
func exprNotNull(e relstore.Expr, notNull map[string]bool) bool {
	switch x := e.(type) {
	case relstore.ColRef:
		return notNull[x.Name]
	case *relstore.ColRef:
		return notNull[x.Name]
	case relstore.LitExpr:
		return !x.V.IsNull()
	case *relstore.LitExpr:
		return !x.V.IsNull()
	}
	return false
}
