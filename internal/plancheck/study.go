package plancheck

import (
	"fmt"

	"guava/internal/etl"
	"guava/internal/vet"
)

// Analyze runs the plan pass over an already-compiled study. When
// opts.Stats is nil the contributor databases the spec carries become the
// statistics source, so cardinality facts (and GV216) reflect the data the
// plan would actually run over.
func Analyze(c *etl.Compiled, rep *vet.Report, opts Options) {
	if c == nil {
		return
	}
	if opts.Stats == nil {
		opts.Stats = specStats(c.Spec)
	}
	AnalyzeWorkflow(c.Spec.Name, c.Workflow, rep, opts)
}

// specStats builds a row-count lookup over the contributor databases
// registered for the compiled study ("source_<name>").
func specStats(spec *etl.StudySpec) func(db, table string) (int, bool) {
	if spec == nil {
		return nil
	}
	return func(db, table string) (int, bool) {
		for _, ct := range spec.Contributors {
			if ct.DB == nil || "source_"+ct.Name != db {
				continue
			}
			t, err := ct.DB.Table(table)
			if err != nil {
				return 0, false
			}
			return t.Len(), true
		}
		return 0, false
	}
}

// Study compiles the spec and analyzes the resulting plan. A compile failure
// is itself a plan-level defect (GV210): the artifacts vetted clean, yet no
// executable plan exists.
func Study(spec *etl.StudySpec, opts Options) *vet.Report {
	rep := &vet.Report{}
	if spec == nil {
		return rep
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		rep.Add("GV210", vet.Pos{File: "plan:" + spec.Name}, "study fails to compile: %v", err)
		rep.Sort()
		return rep
	}
	Analyze(compiled, rep, opts)
	rep.Sort()
	return rep
}

// RejectionError is returned by Gate when a compiled plan carries GV21x
// errors: the plan must not be cached, served, or executed.
type RejectionError struct {
	Study  string
	Report *vet.Report
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("plancheck: study %q plan rejected with %d error(s):\n%s",
		e.Study, e.Report.Count(vet.SevError), e.Report.Text())
}

// Gate analyzes a compiled plan and returns a *RejectionError when the
// report carries error-severity diagnostics — the admission check studyd's
// plan cache runs before a compiled plan becomes servable.
func Gate(c *etl.Compiled, opts Options) error {
	rep := &vet.Report{}
	Analyze(c, rep, opts)
	rep.Sort()
	if rep.HasErrors() {
		return &RejectionError{Study: c.Spec.Name, Report: rep}
	}
	return nil
}

// VetPaths is the guavavet pipeline: load the artifact paths, run the
// artifact-level checks, and — when the bundle carries a study manifest —
// compile and analyze the plan, merging both reports under one stable-code
// contract. Plan analysis only runs when the artifacts vetted without
// errors; artifact defects already explain any downstream compile failure.
func VetPaths(paths []string, opts Options) *vet.Report {
	bundle := vet.LoadPaths(paths)
	rep := bundle.Vet()
	if rep.HasErrors() {
		return rep
	}
	if spec, _, ok := bundle.StudySpec(); ok {
		rep.Merge(Study(spec, opts))
		rep.Sort()
	}
	return rep
}
