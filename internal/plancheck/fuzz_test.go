package plancheck

import (
	"fmt"
	"math/rand"
	"testing"

	"guava/internal/etl"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/vet"
)

// genWorkflow builds a pseudo-random compiled-plan-shaped workflow from a
// seed: extracts over random stacks (including degenerate data-less generic
// forms), query chains with random — frequently contradictory — predicates,
// random derivations and projections, unions and joins. The same seed always
// builds the same workflow.
func genWorkflow(seed int64) *etl.Workflow {
	rng := rand.New(rand.NewSource(seed))
	w := &etl.Workflow{Name: fmt.Sprintf("fuzz-%d", seed)}

	colPool := []string{"K", "A", "B", "C", "Attribute", "Value"}
	randCol := func() string { return colPool[rng.Intn(len(colPool))] }
	randVal := func() relstore.Value {
		switch rng.Intn(4) {
		case 0:
			return relstore.Int(int64(rng.Intn(10) - 5))
		case 1:
			return relstore.Float(rng.Float64() * 10)
		case 2:
			return relstore.Str(fmt.Sprintf("s%d", rng.Intn(3)))
		default:
			return relstore.Null()
		}
	}
	var randPred func(depth int) relstore.Pred
	randPred = func(depth int) relstore.Pred {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(6) {
			case 0:
				return relstore.Cmp(relstore.CmpOp(rng.Intn(6)), relstore.Col(randCol()), relstore.Lit(randVal()))
			case 1:
				return relstore.Cmp(relstore.CmpOp(rng.Intn(6)), relstore.Lit(randVal()), relstore.Col(randCol()))
			case 2:
				return relstore.IsNull(relstore.Col(randCol()))
			case 3:
				return relstore.In(relstore.Col(randCol()), randVal(), randVal())
			case 4:
				return relstore.Truth(relstore.Col(randCol()))
			default:
				return relstore.BoolLit{V: rng.Intn(2) == 0}
			}
		}
		switch rng.Intn(3) {
		case 0:
			return relstore.And(randPred(depth-1), randPred(depth-1))
		case 1:
			return relstore.Or(randPred(depth-1), randPred(depth-1))
		default:
			return relstore.Not(randPred(depth - 1))
		}
	}
	randForm := func(i int) patterns.FormInfo {
		cols := []relstore.Column{{Name: "K", Type: relstore.KindInt, NotNull: true}}
		for _, extra := range []string{"A", "B", "C"}[:rng.Intn(4)] {
			cols = append(cols, relstore.Column{Name: extra, Type: relstore.KindFloat})
		}
		schema, err := relstore.NewSchema(cols...)
		if err != nil {
			panic(err)
		}
		return patterns.FormInfo{Name: fmt.Sprintf("F%d", i), KeyColumn: "K", Schema: schema}
	}

	var tables []etl.TableRef
	nExtract := 1 + rng.Intn(3)
	for i := 0; i < nExtract; i++ {
		var stack *patterns.Stack
		if rng.Intn(2) == 0 {
			stack = patterns.NewStack(patterns.Generic{})
		} else {
			stack = patterns.NewStack(patterns.Naive{})
		}
		to := etl.TableRef{DB: fmt.Sprintf("tmp%d", i), Table: fmt.Sprintf("t%d", i)}
		w.Add(fmt.Sprintf("extract/%d", i), &etl.Extract{
			SourceDB: fmt.Sprintf("src%d", i),
			Stack:    stack,
			Form:     randForm(i),
			To:       to,
		})
		tables = append(tables, to)
	}
	nQuery := rng.Intn(5)
	for i := 0; i < nQuery; i++ {
		fromIdx := rng.Intn(len(tables))
		from := tables[fromIdx]
		q := &etl.Query{From: from, To: etl.TableRef{DB: "q", Table: fmt.Sprintf("q%d", i)}}
		if rng.Intn(2) == 0 {
			q.Where = randPred(3)
		}
		switch rng.Intn(3) {
		case 0:
			for j := 0; j <= rng.Intn(3); j++ {
				q.Derive = append(q.Derive, relstore.Derivation{
					Name: fmt.Sprintf("D%d", j), Type: relstore.KindFloat, Expr: relstore.Col(randCol()),
				})
			}
		case 1:
			q.Project = []string{randCol()}
		}
		if rng.Intn(3) == 0 {
			q.Distinct = true
		}
		if rng.Intn(3) == 0 {
			q.Require = []string{randCol()}
		}
		w.Add(fmt.Sprintf("query/%d", i), q, fmt.Sprintf("extract/%d", fromIdx%nExtract))
		tables = append(tables, q.To)
	}
	if rng.Intn(2) == 0 && len(tables) >= 2 {
		w.Add("join/0", &etl.JoinStep{
			Left: tables[0], Right: tables[1],
			LeftCol: "K", RightCol: "K", RightPrefix: "r",
			To: etl.TableRef{DB: "j", Table: "joined"},
		}, "extract/0")
	}
	var unionFrom []etl.TableRef
	for i := 0; i < nExtract; i++ {
		unionFrom = append(unionFrom, tables[i])
	}
	union := &etl.Union{From: unionFrom, Distinct: rng.Intn(2) == 0, To: etl.TableRef{DB: "out", Table: "study"}}
	var deps []string
	for i := 0; i < nExtract; i++ {
		deps = append(deps, fmt.Sprintf("extract/%d", i))
	}
	w.Add("load/union", union, deps...)
	return w
}

// FuzzAnalyzeWorkflow: the analyzer must never panic on any generated plan
// and must produce byte-identical reports across repeated runs of the same
// plan — the determinism the golden corpus (and plan-cache admission)
// depends on.
func FuzzAnalyzeWorkflow(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, -99} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		w := genWorkflow(seed)
		var first string
		for i := 0; i < 2; i++ {
			rep := &vet.Report{}
			AnalyzeWorkflow("fuzz", w, rep, Options{
				Stats: func(db, table string) (int, bool) { return 0, db == "src0" },
			})
			rep.Sort()
			got := rep.Text()
			if i == 0 {
				first = got
				continue
			}
			if got != first {
				t.Fatalf("seed %d: non-deterministic report:\n%s\nvs\n%s", seed, got, first)
			}
		}
	})
}

// TestFuzzSeedsNow runs the seed corpus directly so plain `go test` covers
// the generator even when fuzzing is not invoked.
func TestFuzzSeedsNow(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		w := genWorkflow(seed)
		rep := &vet.Report{}
		AnalyzeWorkflow("fuzz", w, rep, Options{})
		rep.Sort()
		rep2 := &vet.Report{}
		AnalyzeWorkflow("fuzz", w, rep2, Options{})
		rep2.Sort()
		if rep.Text() != rep2.Text() {
			t.Fatalf("seed %d: non-deterministic report", seed)
		}
	}
}
