// Package plancheck statically analyzes compiled study plans.
//
// internal/vet stops at the artifact layer: classifiers, g-trees, and study
// manifests are vetted before compilation, but nothing checks the relational
// operator trees the compiler actually emits — and some defects only exist
// there, because the compiler conjoins predicates (entity selection ∧ study
// condition ∧ ¬cleaners) and lowers pattern stacks into physical operator
// pipelines. plancheck walks those trees as a dataflow analysis: every
// operator has a transfer function over per-column facts (inferred schema,
// nullability, key-ness, cardinality intervals from warehouse statistics)
// plus plan-level facts (provably-dead output, structural fingerprints), and
// contradictions surface as the GV21x family of vet diagnostics.
//
// The analysis is deliberately one-sided: every verdict that carries error
// severity is a proof. Predicate emptiness reuses the guard satisfiability
// engine (vet.PredUnsat), which widens anything it cannot interpret to TRUE,
// so "dead" means dead — the zero-false-positive contract the reference
// studies are tested against.
//
// Subtree fingerprints (GV215) are the measurement baseline for the
// cross-classifier common-subexpression elimination planned in ROADMAP item
// 4: two derivations with the same fingerprint are exactly the work that
// pass would execute once.
package plancheck

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/vet"
)

// Op enumerates the plan operators the analyzer walks — the 14 relstore
// operators plus the glue nodes lowering needs (table scans and the ETL
// require-non-null assertion).
type Op int

// Operator kinds, mirroring internal/relstore's operator set.
const (
	OpScan Op = iota // leaf: a physical or intermediate table
	OpSelect
	OpProject
	OpDerive
	OpExtend
	OpRename
	OpJoin
	OpLeftJoin
	OpUnionAll
	OpUnion
	OpDistinct
	OpSortBy
	OpPivot
	OpUnpivot
	OpGroupBy
	OpRequire // etl.Query's non-NULL assertion over output columns
)

var opNames = map[Op]string{
	OpScan: "scan", OpSelect: "select", OpProject: "project",
	OpDerive: "derive", OpExtend: "extend", OpRename: "rename",
	OpJoin: "join", OpLeftJoin: "left_join", OpUnionAll: "union_all",
	OpUnion: "union", OpDistinct: "distinct", OpSortBy: "sort_by",
	OpPivot: "pivot", OpUnpivot: "unpivot", OpGroupBy: "group_by",
	OpRequire: "require",
}

func (o Op) String() string { return opNames[o] }

// Node is one operator in a lowered plan tree. Only the parameter fields
// relevant to Op are set.
type Node struct {
	Op Op
	In []*Node

	// OpScan: the table reference; Schema and NotNull describe physical
	// tables, while scans of intermediate step outputs leave Schema nil and
	// inherit the producing step's facts.
	Table   etl.TableRef
	Schema  *relstore.Schema
	NotNull []string

	// OpSelect.
	Pred relstore.Pred
	// OpProject / OpSortBy / OpRequire column lists; key columns for
	// OpPivot, OpUnpivot, and OpGroupBy.
	Cols []string
	// OpDerive / OpExtend.
	Derivs []relstore.Derivation
	// OpRename.
	From, To string
	// OpPivot / OpUnpivot.
	AttrCol, ValCol string
	Attrs           []relstore.Column
	// OpJoin / OpLeftJoin.
	LeftCol, RightCol, Prefix string
	// OpGroupBy.
	Aggs []relstore.Aggregate
	// OpUnion (set) vs OpUnionAll (multiset) are distinct ops; Distinct
	// additionally marks a deduplicating OpUnion lowered from etl.Union.
	Distinct bool
}

// Options configures an analysis pass.
type Options struct {
	// Stats returns the known row count of a physical relation, keyed the
	// way plans reference it (database name, table name). Nil means no
	// statistics: cardinality intervals start unbounded and GV216 never
	// fires.
	Stats func(db, table string) (rows int, ok bool)
}

// card is a cardinality interval; Hi < 0 means unbounded.
type card struct{ Lo, Hi int }

var cardUnknown = card{Lo: 0, Hi: -1}

func (c card) provablyEmpty() bool { return c.Hi == 0 }

// facts is everything the pass knows about one operator's output.
type facts struct {
	schema  *relstore.Schema
	notNull map[string]bool
	// key marks columns proven unique over the output (group-by keys,
	// pivot keys); the join-reordering input ROADMAP item 4 wants.
	key  map[string]bool
	card card
	// dead marks output proven empty for every possible input — a
	// structural property (contradiction), unlike card, which may be
	// data-dependent (empty source today).
	dead bool
	// deadCause names the originating proof for the GV211 message.
	deadCause string
	// fp is the structural fingerprint of the operator tree below.
	fp uint64
}

func unknownFacts(fp uint64) *facts {
	return &facts{notNull: map[string]bool{}, key: map[string]bool{}, card: cardUnknown, fp: fp}
}

func (f *facts) clone() *facts {
	nf := &facts{schema: f.schema, card: f.card, dead: f.dead, deadCause: f.deadCause, fp: f.fp}
	nf.notNull = make(map[string]bool, len(f.notNull))
	for k, v := range f.notNull {
		nf.notNull[k] = v
	}
	nf.key = make(map[string]bool, len(f.key))
	for k, v := range f.key {
		nf.key[k] = v
	}
	return nf
}

func (f *facts) notNullList() []string {
	out := make([]string, 0, len(f.notNull))
	for c, nn := range f.notNull {
		if nn {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// pass carries one workflow analysis: resolved facts per produced table,
// the diagnostics sink, and the cross-step fingerprint index GV215 reads.
type pass struct {
	study  string
	step   string // current step ID, for diagnostic positions
	rep    *vet.Report
	opts   Options
	tables map[string]*facts // keyed by TableRef.String()

	// caseFPs indexes classifier CASE derivations by (input fingerprint,
	// expression) — the shared-subtree report (GV215) and the CSE baseline.
	caseFPs map[uint64][]caseSite
}

type caseSite struct {
	step, column string
	sql          string
}

func (p *pass) pos() vet.Pos {
	return vet.Pos{File: "plan:" + p.study + "/" + p.step}
}

// analyze computes output facts for one operator node. It never fails:
// shapes it cannot interpret (unknown input schema, missing columns in
// hand-built or fuzzed plans) resolve to unknown facts, keeping the
// error-severity diagnostics proofs.
func (p *pass) analyze(n *Node) *facts {
	if n == nil {
		return unknownFacts(fpString("nil"))
	}
	ins := make([]*facts, len(n.In))
	for i, in := range n.In {
		ins[i] = p.analyze(in)
	}
	fp := p.fingerprint(n, ins)

	switch n.Op {
	case OpScan:
		return p.analyzeScan(n, fp)
	case OpSelect:
		return p.analyzeSelect(n, ins[0], fp)
	case OpProject:
		return p.analyzeProject(n, ins[0], fp)
	case OpDerive:
		return p.analyzeDerive(n, ins[0], fp, false)
	case OpExtend:
		return p.analyzeDerive(n, ins[0], fp, true)
	case OpRename:
		return p.analyzeRename(n, ins[0], fp)
	case OpJoin, OpLeftJoin:
		return p.analyzeJoin(n, ins[0], ins[1], fp)
	case OpUnionAll, OpUnion:
		return p.analyzeUnion(n, ins, fp)
	case OpDistinct:
		out := ins[0].clone()
		out.fp = fp
		return out
	case OpSortBy:
		out := ins[0].clone()
		out.fp = fp
		return out
	case OpPivot:
		return p.analyzePivot(n, ins[0], fp)
	case OpUnpivot:
		return p.analyzeUnpivot(n, ins[0], fp)
	case OpGroupBy:
		return p.analyzeGroupBy(n, ins[0], fp)
	case OpRequire:
		out := ins[0].clone()
		for _, c := range n.Cols {
			out.notNull[c] = true
		}
		out.fp = fp
		return out
	default:
		return unknownFacts(fp)
	}
}

func (p *pass) analyzeScan(n *Node, fp uint64) *facts {
	f := unknownFacts(fp)
	if n.Schema == nil {
		// Intermediate table: inherit the producing step's facts.
		if prev, ok := p.tables[n.Table.String()]; ok {
			f = prev.clone()
			f.fp = prev.fp // lineage: the scan IS the producer's subtree
		}
		return f
	}
	f.schema = n.Schema
	for _, c := range n.Schema.Columns {
		if c.NotNull {
			f.notNull[c.Name] = true
		}
	}
	for _, c := range n.NotNull {
		f.notNull[c] = true
	}
	if p.opts.Stats != nil {
		if rows, ok := p.opts.Stats(n.Table.DB, n.Table.Table); ok {
			f.card = card{Lo: rows, Hi: rows}
			if rows == 0 {
				p.rep.Add("GV216", p.pos(),
					"source relation %s is empty per warehouse statistics; every operator above this scan is vacuous for the current data", n.Table)
			}
		}
	}
	return f
}

func (p *pass) analyzeSelect(n *Node, in *facts, fp uint64) *facts {
	out := in.clone()
	out.fp = fp
	out.card = card{Lo: 0, Hi: in.card.Hi}
	if n.Pred != nil && !in.dead && vet.PredUnsat(n.Pred, in.notNullList()) {
		p.rep.Add("GV212", p.pos(),
			"selection predicate is unsatisfiable: no row can satisfy %s", n.Pred.SQL())
		out.dead = true
		out.deadCause = "contradictory predicate"
	}
	return out
}

func (p *pass) analyzeProject(n *Node, in *facts, fp uint64) *facts {
	out := unknownFacts(fp)
	out.card = in.card
	out.dead, out.deadCause = in.dead, in.deadCause
	if in.schema != nil {
		cols := make([]relstore.Column, 0, len(n.Cols))
		for _, name := range n.Cols {
			c, err := in.schema.Col(name)
			if err != nil {
				out.schema = nil
				return out
			}
			cols = append(cols, c)
		}
		if s, err := relstore.NewSchema(cols...); err == nil {
			out.schema = s
		}
	}
	for _, name := range n.Cols {
		if in.notNull[name] {
			out.notNull[name] = true
		}
		if in.key[name] {
			out.key[name] = true
		}
	}
	return out
}

func (p *pass) analyzeDerive(n *Node, in *facts, fp uint64, extend bool) *facts {
	out := unknownFacts(fp)
	out.card = in.card
	out.dead, out.deadCause = in.dead, in.deadCause
	var cols []relstore.Column
	if extend && in.schema != nil {
		cols = append(cols, in.schema.Columns...)
		for k, v := range in.notNull {
			out.notNull[k] = v
		}
	}
	for _, d := range n.Derivs {
		cols = append(cols, relstore.Column{Name: d.Name, Type: d.Type})
		if exprNotNull(d.Expr, in.notNull) {
			out.notNull[d.Name] = true
		}
		if c, ok := asCol(d.Expr); ok && in.key[c] {
			out.key[d.Name] = true
		}
		// Classifier CASE derivations are the cross-classifier redundancy
		// unit: fingerprint them by input lineage + expression.
		if _, isCase := d.Expr.(relstore.CaseExpr); isCase {
			sql := d.Expr.SQL()
			key := fpString(fmt.Sprintf("case|%016x|%s", in.fp, sql))
			p.caseFPs[key] = append(p.caseFPs[key], caseSite{step: p.step, column: d.Name, sql: sql})
		}
	}
	if !extend || in.schema != nil {
		if s, err := relstore.NewSchema(cols...); err == nil {
			out.schema = s
		}
	}
	return out
}

func (p *pass) analyzeRename(n *Node, in *facts, fp uint64) *facts {
	out := unknownFacts(fp)
	out.card = in.card
	out.dead, out.deadCause = in.dead, in.deadCause
	if in.schema != nil {
		cols := make([]relstore.Column, len(in.schema.Columns))
		copy(cols, in.schema.Columns)
		for i := range cols {
			if cols[i].Name == n.From {
				cols[i].Name = n.To
			}
		}
		if s, err := relstore.NewSchema(cols...); err == nil {
			out.schema = s
		}
	}
	for k, v := range in.notNull {
		if k == n.From {
			k = n.To
		}
		out.notNull[k] = v
	}
	for k, v := range in.key {
		if k == n.From {
			k = n.To
		}
		out.key[k] = v
	}
	return out
}

func (p *pass) analyzeJoin(n *Node, l, r *facts, fp uint64) *facts {
	out := unknownFacts(fp)
	left := n.Op == OpLeftJoin
	// relstore keeps every right column, renaming with "<prefix>_" only on
	// collision with a left column name.
	rname := func(name string) string {
		if l.schema != nil && l.schema.Has(name) {
			return n.Prefix + "_" + name
		}
		return name
	}
	if l.schema != nil && r.schema != nil {
		cols := make([]relstore.Column, 0, len(l.schema.Columns)+len(r.schema.Columns))
		cols = append(cols, l.schema.Columns...)
		for _, c := range r.schema.Columns {
			c.Name = rname(c.Name)
			cols = append(cols, c)
		}
		if s, err := relstore.NewSchema(cols...); err == nil {
			out.schema = s
		}
	}
	for k, v := range l.notNull {
		out.notNull[k] = v
	}
	if l.schema != nil {
		for k, v := range r.notNull {
			// A left join's unmatched rows pad the right side with NULLs.
			if !left {
				out.notNull[rname(k)] = v
			}
		}
	}
	if !left {
		// An inner join drops rows with NULL keys on either side.
		out.notNull[n.LeftCol] = true
		if l.schema != nil {
			out.notNull[rname(n.RightCol)] = true
		}
	}
	out.card = joinCard(l.card, r.card, left)
	switch {
	case l.dead:
		out.dead, out.deadCause = true, "dead left input"
	case !left && r.dead:
		out.dead, out.deadCause = true, "dead right input"
	}
	return out
}

func joinCard(l, r card, left bool) card {
	out := cardUnknown
	if left {
		out.Lo = l.Lo // every left row survives
	}
	switch {
	case l.Hi == 0 || (!left && r.Hi == 0):
		out.Hi = 0
	case l.Hi < 0 || r.Hi < 0:
		out.Hi = -1
	case left && r.Hi == 0:
		out.Hi = l.Hi
	default:
		out.Hi = mulCap(l.Hi, r.Hi)
	}
	return out
}

func mulCap(a, b int) int {
	if a > 0 && b > (1<<31)/a {
		return -1 // treat overflow as unbounded
	}
	return a * b
}

func (p *pass) analyzeUnion(n *Node, ins []*facts, fp uint64) *facts {
	out := unknownFacts(fp)
	if len(ins) == 0 {
		out.card = card{}
		return out
	}
	out.schema = ins[0].schema
	// A column is non-NULL in the union only when every branch proves it.
	for c, v := range ins[0].notNull {
		if !v {
			continue
		}
		all := true
		for _, in := range ins[1:] {
			if !in.notNull[c] {
				all = false
				break
			}
		}
		if all {
			out.notNull[c] = true
		}
	}
	lo, hi, dead := 0, 0, true
	for _, in := range ins {
		lo += in.card.Lo
		if hi >= 0 {
			if in.card.Hi < 0 {
				hi = -1
			} else {
				hi += in.card.Hi
			}
		}
		dead = dead && in.dead
	}
	if n.Op == OpUnion || n.Distinct {
		lo = min(lo, 1)
	}
	out.card = card{Lo: lo, Hi: hi}
	if dead {
		out.dead, out.deadCause = true, "all inputs dead"
	}
	return out
}

func (p *pass) analyzePivot(n *Node, in *facts, fp uint64) *facts {
	out := unknownFacts(fp)
	out.card = card{Lo: min(in.card.Lo, 1), Hi: in.card.Hi}
	out.dead, out.deadCause = in.dead, in.deadCause
	for _, k := range n.Cols {
		if in.notNull[k] {
			out.notNull[k] = true
		}
	}
	if len(n.Cols) == 1 {
		out.key[n.Cols[0]] = true // one row per key group
	}
	return out
}

func (p *pass) analyzeUnpivot(n *Node, in *facts, fp uint64) *facts {
	out := unknownFacts(fp)
	out.card = card{Lo: min(in.card.Lo, 1), Hi: in.card.Hi}
	out.dead, out.deadCause = in.dead, in.deadCause

	if len(n.Attrs) == 0 {
		p.rep.Add("GV213", p.pos(),
			"un-pivot over %s reconstructs zero attributes: the EAV relation has no wide columns to rebuild, so every reconstructed row is data-less", n.Table)
	}
	for _, k := range n.Cols {
		if k == n.AttrCol || k == n.ValCol {
			p.rep.Add("GV213", p.pos(),
				"un-pivot key column %q collides with the %s column of the EAV layout", k,
				map[bool]string{true: "attribute", false: "value"}[k == n.AttrCol])
		}
		if in.notNull[k] {
			out.notNull[k] = true
		}
	}
	for _, a := range n.Attrs {
		for _, k := range n.Cols {
			if a.Name == k {
				p.rep.Add("GV213", p.pos(),
					"un-pivot attribute %q collides with key column %q", a.Name, k)
			}
		}
	}
	cols := make([]relstore.Column, 0, len(n.Cols)+len(n.Attrs))
	if in.schema != nil {
		ok := true
		for _, k := range n.Cols {
			c, err := in.schema.Col(k)
			if err != nil {
				ok = false
				break
			}
			cols = append(cols, c)
		}
		if ok {
			cols = append(cols, n.Attrs...)
			if s, err := relstore.NewSchema(cols...); err == nil {
				out.schema = s
			}
		}
	}
	if len(n.Cols) == 1 {
		out.key[n.Cols[0]] = true // unpivot groups EAV rows: one wide row per key
	}
	return out
}

func (p *pass) analyzeGroupBy(n *Node, in *facts, fp uint64) *facts {
	out := unknownFacts(fp)
	out.card = card{Lo: min(in.card.Lo, 1), Hi: in.card.Hi}
	out.dead, out.deadCause = in.dead, in.deadCause
	cols := make([]relstore.Column, 0, len(n.Cols)+len(n.Aggs))
	schemaOK := in.schema != nil
	for _, k := range n.Cols {
		if in.notNull[k] {
			out.notNull[k] = true
		}
		if schemaOK {
			c, err := in.schema.Col(k)
			if err != nil {
				schemaOK = false
				continue
			}
			cols = append(cols, c)
		}
	}
	for _, a := range n.Aggs {
		if a.Kind == relstore.AggCount {
			out.notNull[a.As] = true
		}
		if schemaOK {
			cols = append(cols, relstore.Column{Name: a.As, Type: aggKind(a, in.schema)})
		}
	}
	if schemaOK {
		if s, err := relstore.NewSchema(cols...); err == nil {
			out.schema = s
		}
	}
	if len(n.Cols) == 1 {
		out.key[n.Cols[0]] = true
	}
	return out
}

func aggKind(a relstore.Aggregate, in *relstore.Schema) relstore.Kind {
	switch a.Kind {
	case relstore.AggCount:
		return relstore.KindInt
	case relstore.AggAvg:
		return relstore.KindFloat
	default:
		if c, err := in.Col(a.Col); err == nil {
			return c.Type
		}
		return relstore.KindNull
	}
}

// fingerprint hashes the operator's structure together with its inputs'
// fingerprints — identical fingerprints mean identical subtrees modulo
// physical table identity.
func (p *pass) fingerprint(n *Node, ins []*facts) uint64 {
	var sb strings.Builder
	sb.WriteString(n.Op.String())
	switch n.Op {
	case OpScan:
		sb.WriteString("|" + n.Table.String())
	case OpSelect:
		if n.Pred != nil {
			sb.WriteString("|" + n.Pred.SQL())
		}
	case OpProject, OpSortBy, OpRequire:
		sb.WriteString("|" + strings.Join(n.Cols, ","))
	case OpDerive, OpExtend:
		for _, d := range n.Derivs {
			sb.WriteString("|" + d.Name + ":" + d.Expr.SQL())
		}
	case OpRename:
		sb.WriteString("|" + n.From + ">" + n.To)
	case OpJoin, OpLeftJoin:
		sb.WriteString("|" + n.LeftCol + "=" + n.RightCol + "|" + n.Prefix)
	case OpPivot, OpUnpivot:
		sb.WriteString("|" + strings.Join(n.Cols, ",") + "|" + n.AttrCol + "|" + n.ValCol)
		for _, a := range n.Attrs {
			sb.WriteString("|" + a.Name)
		}
	case OpGroupBy:
		sb.WriteString("|" + strings.Join(n.Cols, ","))
		for _, a := range n.Aggs {
			sb.WriteString("|" + strconv.Itoa(int(a.Kind)) + ":" + a.Col + ">" + a.As)
		}
	case OpUnion, OpUnionAll:
		if n.Distinct {
			sb.WriteString("|distinct")
		}
	}
	for _, in := range ins {
		fmt.Fprintf(&sb, "|%016x", in.fp)
	}
	return fpString(sb.String())
}

func fpString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
