package baseline

import (
	"testing"

	"guava/internal/etl"
	"guava/internal/workload"
)

func contribs(t *testing.T) []*workload.Contributor {
	t.Helper()
	cs, err := workload.BuildAll(17, 50)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestHandETLMatchesGenerated: the expert-written physical-level extraction
// and the compiled GUAVA/MultiClass workflow produce the same study table
// (Experiment A2's correctness leg).
func TestHandETLMatchesGenerated(t *testing.T) {
	cs := contribs(t)
	spec, err := ReferenceSpec(cs)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	generated, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	hand, err := HandETL(cs)
	if err != nil {
		t.Fatal(err)
	}
	if generated.Len() != 150 {
		t.Errorf("generated rows = %d, want 150", generated.Len())
	}
	if !generated.EqualUnordered(hand) {
		t.Fatalf("hand ETL diverges from generated workflow\ngenerated:\n%s\nhand:\n%s",
			head(generated.Format(), 12), head(hand.Format(), 12))
	}
}

func head(s string, lines int) string {
	out := ""
	for i, l := range splitLines(s) {
		if i >= lines {
			break
		}
		out += l + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestReferenceSpecValidation(t *testing.T) {
	cs := contribs(t)
	if _, err := ReferenceSpec(nil); err == nil {
		t.Error("empty contributor set must fail")
	}
	// Any subset of the known contributors is a valid study — partial
	// studies are how text-only or single-vendor runs work.
	if _, err := ReferenceSpec(cs[:2]); err != nil {
		t.Errorf("two-contributor subset must build: %v", err)
	}
	if _, err := ReferenceSpec([]*workload.Contributor{{Name: "Mystery"}}); err == nil {
		t.Error("unknown contributor must fail")
	}
	// HandETL rejects unknown contributors.
	bad := []*workload.Contributor{{Name: "Mystery"}}
	if _, err := HandETL(bad); err == nil {
		t.Error("unknown contributor must fail")
	}
}

// TestHypothesis2PrecisionRecall is Experiment H2: a study specified with
// classifiers over GUAVA extracts exactly the relevant records
// (precision = recall = 1.0), while the once-integrated warehouse — which
// collapsed smoking into a boolean — cannot even express the ex-smoker
// cohort and measurably over- and under-selects.
func TestHypothesis2PrecisionRecall(t *testing.T) {
	cs := contribs(t)

	// Ground truth: ex-smokers (ever quit) who had any hypoxia.
	truth := Study2Truth(cs, 0)
	if len(truth) == 0 {
		t.Fatal("empty ground-truth cohort; enlarge the workload")
	}

	// GUAVA route: per-contributor conditions select exactly ex-smokers
	// with hypoxia (vocabulary reconciled per tool).
	conds := map[string]string{
		"CORI":      "Smoking = 'Quit' AND (TransientHypoxia = TRUE OR ProlongedHypoxia = TRUE)",
		"EndoSoft":  "SmokingStatus = 'Ex-smoker' AND (O2Desat = TRUE OR O2DesatProlonged = TRUE)",
		"MedRecord": "SmokeCode = 2 AND (HypoxiaT = TRUE OR HypoxiaP = TRUE)",
	}
	spec, err := ReferenceSpec(cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Contributors {
		c.Condition = conds[c.Name]
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	selected := map[CohortKey]bool{}
	for _, r := range rows.Data {
		selected[CohortKey{Contributor: r[1].AsString(), Key: r[0].AsInt()}] = true
	}
	m := Score(selected, truth)
	if m.Precision() != 1 || m.Recall() != 1 {
		t.Errorf("GUAVA route: precision=%.3f recall=%.3f (TP=%d FP=%d FN=%d)",
			m.Precision(), m.Recall(), m.TruePositives, m.FalsePositives, m.FalseNegatives)
	}

	// Classical route: the integrated warehouse lost the distinction.
	integrated, err := IntegrateOnce(cs)
	if err != nil {
		t.Fatal(err)
	}
	approx := Study2FromIntegrated(integrated)
	mi := Score(approx, truth)
	if mi.Precision() >= 1 {
		t.Errorf("integrated warehouse should over-select (never-smokers with hypoxia): precision=%.3f", mi.Precision())
	}
	if mi.FalsePositives == 0 {
		t.Error("integrated warehouse must have false positives")
	}
}

func TestStudy2TruthDefinitions(t *testing.T) {
	cs := contribs(t)
	ever := Study2Truth(cs, 0)
	recent := Study2Truth(cs, 1)
	if len(recent) > len(ever) {
		t.Errorf("quit-within-1-year cohort (%d) cannot exceed ever-quit cohort (%d)", len(recent), len(ever))
	}
	for k := range recent {
		if !ever[k] {
			t.Error("recent cohort must be a subset of ever cohort")
		}
	}
}

func TestScoreMetrics(t *testing.T) {
	sel := map[CohortKey]bool{{Contributor: "a", Key: 1}: true, {Contributor: "a", Key: 2}: true}
	rel := map[CohortKey]bool{{Contributor: "a", Key: 2}: true, {Contributor: "a", Key: 3}: true}
	m := Score(sel, rel)
	if m.TruePositives != 1 || m.FalsePositives != 1 || m.FalseNegatives != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision() != 0.5 || m.Recall() != 0.5 {
		t.Errorf("precision=%v recall=%v", m.Precision(), m.Recall())
	}
	empty := Score(nil, nil)
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty cohorts score 1.0")
	}
}
