package baseline

import (
	"fmt"

	"guava/internal/relstore"
	"guava/internal/workload"
)

// IntegrateOnce is the classical warehouse the paper's introduction warns
// about: during the one-time integration, the database expert faces "a data
// source A with two categories, smokers or non-smokers, [that] cannot be
// fully integrated with a data source B with three related categories …
// without making a classification decision". The expert decides once:
// smoking collapses to a boolean IsSmoker (current smokers only), and the
// quit-date detail is not carried into the warehouse at all.
//
// The returned relation is the integrated warehouse: Key, Contributor,
// IsSmoker, Hypoxia.
func IntegrateOnce(contribs []*workload.Contributor) (*relstore.Rows, error) {
	schema := relstore.MustSchema(
		relstore.Column{Name: "Key", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Contributor", Type: relstore.KindString, NotNull: true},
		relstore.Column{Name: "IsSmoker", Type: relstore.KindBool},
		relstore.Column{Name: "Hypoxia", Type: relstore.KindBool},
	)
	out := &relstore.Rows{Schema: schema}
	for _, c := range contribs {
		rows, err := c.Stack.Read(c.DB, c.Info)
		if err != nil {
			return nil, err
		}
		s := rows.Schema
		for _, r := range rows.Data {
			var key relstore.Value
			var isSmoker, hyp bool
			switch c.Name {
			case "CORI":
				key = r[s.Index("ProcedureID")]
				isSmoker = r[s.Index("Smoking")].Equal(relstore.Str("Current"))
				hyp = truthy(r[s.Index("TransientHypoxia")]) || truthy(r[s.Index("ProlongedHypoxia")])
			case "EndoSoft":
				key = r[s.Index("ExamID")]
				isSmoker = r[s.Index("SmokingStatus")].Equal(relstore.Str("Smoker"))
				hyp = truthy(r[s.Index("O2Desat")]) || truthy(r[s.Index("O2DesatProlonged")])
			case "MedRecord":
				key = r[s.Index("RecordID")]
				isSmoker = r[s.Index("SmokeCode")].Equal(relstore.Int(1))
				hyp = truthy(r[s.Index("HypoxiaT")]) || truthy(r[s.Index("HypoxiaP")])
			default:
				return nil, fmt.Errorf("baseline: unknown contributor %q", c.Name)
			}
			out.Data = append(out.Data, relstore.Row{key, relstore.Str(c.Name), relstore.Bool(isSmoker), relstore.Bool(hyp)})
		}
	}
	return out, nil
}

func truthy(v relstore.Value) bool { return !v.IsNull() && v.Truthy() }

// CohortMetrics scores a selected cohort against the ground-truth cohort:
// standard precision and recall, the measures the paper proposes for its
// usability testing ("analysts should be able to extract only and all
// relevant data").
type CohortMetrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP / (TP + FP); 1 when nothing was selected.
func (m CohortMetrics) Precision() float64 {
	d := m.TruePositives + m.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN); 1 when nothing was relevant.
func (m CohortMetrics) Recall() float64 {
	d := m.TruePositives + m.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(d)
}

// CohortKey identifies one study entity across contributors.
type CohortKey struct {
	Contributor string
	Key         int64
}

// Score compares a selected cohort with the relevant (ground-truth) cohort.
func Score(selected, relevant map[CohortKey]bool) CohortMetrics {
	var m CohortMetrics
	for k := range selected {
		if relevant[k] {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	for k := range relevant {
		if !selected[k] {
			m.FalseNegatives++
		}
	}
	return m
}

// Study2Truth computes the ground-truth ex-smoker-with-hypoxia cohort under
// a definition of ex-smoker ("quit within N years"; 0 = ever).
func Study2Truth(contribs []*workload.Contributor, withinYears int64) map[CohortKey]bool {
	out := map[CohortKey]bool{}
	for _, c := range contribs {
		for _, t := range c.Truths {
			if t.ExSmoker(withinYears) && t.HasHypoxia() {
				out[CohortKey{Contributor: c.Name, Key: t.ID}] = true
			}
		}
	}
	return out
}

// Study2FromIntegrated is the best Study 2 cohort the once-integrated
// warehouse can produce: ex-smokers are unrepresentable, so the expert's
// least-bad proxy is "non-current-smokers with hypoxia" — demonstrably both
// over- and under-selecting.
func Study2FromIntegrated(integrated *relstore.Rows) map[CohortKey]bool {
	out := map[CohortKey]bool{}
	s := integrated.Schema
	for _, r := range integrated.Data {
		isSmoker := truthy(r[s.Index("IsSmoker")])
		hyp := truthy(r[s.Index("Hypoxia")])
		if !isSmoker && hyp {
			out[CohortKey{Contributor: r[s.Index("Contributor")].AsString(), Key: r[s.Index("Key")].AsInt()}] = true
		}
	}
	return out
}
