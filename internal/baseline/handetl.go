// Package baseline implements the two comparison systems the reproduction
// measures GUAVA/MultiClass against:
//
//   - HandETL: the status-quo workflow the paper describes — a database
//     expert hand-writes extraction code against each contributor's
//     *physical* tables, hard-coding every design-pattern detail (audit
//     columns, lookup codes, sentinel values, packed fields, EAV layouts).
//     It produces byte-identical study output to the generated workflow, at
//     the cost of being exactly the kind of code analysts cannot write or
//     audit.
//
//   - IntegrateOnce: the classical fully-integrated warehouse, where one
//     up-front classification decision (the paper's smokers/non-smokers
//     example) destroys the information later studies need.
package baseline

import (
	"fmt"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// ReferenceColumns is the output shape of the reference study used for the
// generated-vs-hand-written comparison: the Habits (Cancer) smoking
// classification and a hypoxia flag, over all procedures of all three
// simulated contributors.
var ReferenceColumns = []etl.ColumnSpec{
	{As: "Smoking_D3", Attribute: "Smoking", Domain: "D3", Kind: relstore.KindString},
	{As: "Hypoxia_D1", Attribute: "Hypoxia", Domain: "D1", Kind: relstore.KindBool},
}

var habitsTarget = classifier.Target{
	Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
	Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
}

var hypoxiaTarget = classifier.Target{
	Entity: "Procedure", Attribute: "Hypoxia", Domain: "D1", Kind: relstore.KindBool,
}

// habitsRules returns the Habits (Cancer) thresholds in the given unit
// (packs/day scaled by `scale`: 1 for packs, 20 for cigarettes).
func habitsRules(packsNode string, scale int) string {
	return fmt.Sprintf(`
None     <- %[1]s = 0
Light    <- 0 < %[1]s AND %[1]s < %[2]d
Moderate <- %[2]d <= %[1]s AND %[1]s < %[3]d
Heavy    <- %[1]s >= %[3]d
`, packsNode, 2*scale, 5*scale)
}

// ReferenceSpec assembles the reference study over any subset of the
// workload contributors (the classic three form-backed tools, plus the
// free-text Notes source), with per-contributor classifiers reconciling
// each vendor's vocabulary and units.
func ReferenceSpec(contribs []*workload.Contributor) (*etl.StudySpec, error) {
	if len(contribs) == 0 {
		return nil, fmt.Errorf("baseline: reference spec needs at least one workload contributor")
	}
	spec := &etl.StudySpec{Name: "reference", Columns: ReferenceColumns}
	type cfg struct {
		formNode string
		habits   string
		hypoxia  string
	}
	cfgs := map[string]cfg{
		"CORI": {
			formNode: "Procedure",
			habits:   habitsRules("PacksPerDay", 1),
			hypoxia:  "TRUE <- TransientHypoxia = TRUE OR ProlongedHypoxia = TRUE\nFALSE <- TRUE",
		},
		"EndoSoft": {
			formNode: "Exam",
			habits:   habitsRules("CigsPerDay", 20),
			hypoxia:  "TRUE <- O2Desat = TRUE OR O2DesatProlonged = TRUE\nFALSE <- TRUE",
		},
		"MedRecord": {
			formNode: "Record",
			habits:   habitsRules("PacksDaily", 1),
			hypoxia:  "TRUE <- HypoxiaT = TRUE OR HypoxiaP = TRUE\nFALSE <- TRUE",
		},
		"Notes": {
			formNode: "NoteReport",
			habits:   habitsRules("TobaccoPacks", 1),
			hypoxia:  "TRUE <- HypoxiaTransient = TRUE OR HypoxiaProlonged = TRUE\nFALSE <- TRUE",
		},
	}
	for _, c := range contribs {
		cf, ok := cfgs[c.Name]
		if !ok {
			return nil, fmt.Errorf("baseline: unknown contributor %q", c.Name)
		}
		entity, err := classifier.ParseEntity("All procedures ("+c.Name+")",
			"every report is a study entity", "Procedure",
			fmt.Sprintf("Procedure <- %s", cf.formNode))
		if err != nil {
			return nil, err
		}
		habits, err := classifier.Parse("Habits (Cancer) for "+c.Name,
			"cancer-study thresholds in this vendor's unit", habitsTarget, cf.habits)
		if err != nil {
			return nil, err
		}
		hypoxia, err := classifier.Parse("Any hypoxia for "+c.Name,
			"transient or prolonged desaturation", hypoxiaTarget, cf.hypoxia)
		if err != nil {
			return nil, err
		}
		spec.Contributors = append(spec.Contributors, &etl.ContributorPlan{
			Name: c.Name, DB: c.DB, Tree: c.Tree, Stack: c.Stack, Form: c.Info,
			Entity: entity,
			Classifiers: map[string]*classifier.Classifier{
				"Smoking_D3": habits,
				"Hypoxia_D1": hypoxia,
			},
		})
	}
	return spec, nil
}

// outputSchema is the reference study's result schema.
func outputSchema() *relstore.Schema {
	return relstore.MustSchema(
		relstore.Column{Name: etl.EntityKeyColumn, Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: etl.ContributorColumn, Type: relstore.KindString, NotNull: true},
		relstore.Column{Name: "Smoking_D3", Type: relstore.KindString},
		relstore.Column{Name: "Hypoxia_D1", Type: relstore.KindBool},
	)
}

func classifyPacks(packs relstore.Value, scale float64) relstore.Value {
	if packs.IsNull() {
		return relstore.Null()
	}
	p := packs.AsFloat()
	switch {
	case p == 0:
		return relstore.Str("None")
	case p < 2*scale:
		return relstore.Str("Light")
	case p < 5*scale:
		return relstore.Str("Moderate")
	default:
		return relstore.Str("Heavy")
	}
}

// HandETL is the expert-written extraction: it reads each contributor's
// physical tables directly, replicating by hand every transformation the
// pattern stacks perform. Compare each arm with the ~10 declarative lines of
// classifier text in ReferenceSpec.
func HandETL(contribs []*workload.Contributor) (*relstore.Rows, error) {
	out := &relstore.Rows{Schema: outputSchema()}
	for _, c := range contribs {
		var err error
		switch c.Name {
		case "CORI":
			err = handCORI(c.DB, out)
		case "EndoSoft":
			err = handEndoSoft(c.DB, out)
		case "MedRecord":
			err = handMedRecord(c.DB, out)
		default:
			err = fmt.Errorf("baseline: unknown contributor %q", c.Name)
		}
		if err != nil {
			return nil, err
		}
	}
	return relstore.SortBy(out, etl.ContributorColumn, etl.EntityKeyColumn)
}

// handCORI knows: the naive-layout table "Procedure" carries an Audit column
// "_deleted" (pull only 0) and Lookup-coded Indication/ProcType/Alcohol
// columns (irrelevant to this study, but the expert must know to skip them).
func handCORI(db *relstore.DB, out *relstore.Rows) error {
	t, err := db.Table("Procedure")
	if err != nil {
		return err
	}
	s := t.Schema()
	ki, del := s.Index("ProcedureID"), s.Index("_deleted")
	packs := s.Index("PacksPerDay")
	th, ph := s.Index("TransientHypoxia"), s.Index("ProlongedHypoxia")
	if ki < 0 || del < 0 || packs < 0 || th < 0 || ph < 0 {
		return fmt.Errorf("baseline: CORI physical schema changed")
	}
	t.Scan(func(r relstore.Row) bool {
		if !r[del].Equal(relstore.Int(0)) {
			return true // deprecated row
		}
		hyp := (!r[th].IsNull() && r[th].AsBool()) || (!r[ph].IsNull() && r[ph].AsBool())
		out.Data = append(out.Data, relstore.Row{
			r[ki], relstore.Str("CORI"), classifyPacks(r[packs], 1), relstore.Bool(hyp),
		})
		return true
	})
	return nil
}

// handEndoSoft knows: the Exam form is Split across Exam_part0..6 joined on
// ExamID, every NULL is a Sentinel (-9999 for numbers), booleans were
// widened to 0/1 integers, and the treatment columns are packed into
// tx_packed (unused here). CigsPerDay lives in part3; O2Desat in part5;
// O2DesatProlonged in part6.
func handEndoSoft(db *relstore.DB, out *relstore.Rows) error {
	const sentinel = -9999
	part := func(n int) (*relstore.Table, error) { return db.Table(fmt.Sprintf("Exam_part%d", n)) }
	p3, err := part(3)
	if err != nil {
		return err
	}
	p5, err := part(5)
	if err != nil {
		return err
	}
	p6, err := part(6)
	if err != nil {
		return err
	}
	cigs := map[int64]relstore.Value{}
	p3.Scan(func(r relstore.Row) bool {
		v := r[p3.Schema().Index("CigsPerDay")]
		if !v.IsNull() && v.AsInt() == sentinel {
			v = relstore.Null()
		}
		cigs[r[0].AsInt()] = v
		return true
	})
	desat := map[int64]bool{}
	p5.Scan(func(r relstore.Row) bool {
		v := r[p5.Schema().Index("O2Desat")]
		desat[r[0].AsInt()] = !v.IsNull() && v.AsInt() == 1
		return true
	})
	p6.Scan(func(r relstore.Row) bool {
		key := r[0].AsInt()
		v := r[p6.Schema().Index("O2DesatProlonged")]
		prolonged := !v.IsNull() && v.AsInt() == 1
		out.Data = append(out.Data, relstore.Row{
			relstore.Int(key), relstore.Str("EndoSoft"),
			classifyPacks(cigs[key], 20), relstore.Bool(desat[key] || prolonged),
		})
		return true
	})
	return nil
}

// handMedRecord knows: the Record form hides behind a Generic EAV layout
// (Record_entities + Record_eav), values are strings, booleans are encoded
// "1"/"0", the audit flag is the "_deleted" attribute, and the packs column
// was physically renamed to "fld_011".
func handMedRecord(db *relstore.DB, out *relstore.Rows) error {
	ents, err := db.Table("Record_entities")
	if err != nil {
		return err
	}
	eav, err := db.Table("Record_eav")
	if err != nil {
		return err
	}
	type rec struct {
		packs   relstore.Value
		hypT    bool
		hypP    bool
		deleted bool
	}
	recs := map[int64]*rec{}
	ents.Scan(func(r relstore.Row) bool {
		recs[r[0].AsInt()] = &rec{packs: relstore.Null()}
		return true
	})
	eav.Scan(func(r relstore.Row) bool {
		k := r[0].AsInt()
		rc, ok := recs[k]
		if !ok {
			return true
		}
		attr, val := r[1].AsString(), r[2]
		switch attr {
		case "fld_011": // PacksDaily, physically renamed
			if f, err := relstore.Coerce(val, relstore.KindFloat); err == nil {
				rc.packs = f
			}
		case "HypoxiaT":
			rc.hypT = val.Display() == "1"
		case "HypoxiaP":
			rc.hypP = val.Display() == "1"
		case "_deleted":
			rc.deleted = val.Display() != "0"
		}
		return true
	})
	keys := make([]int64, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	// Deterministic order (sorted keys) keeps output stable.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		rc := recs[k]
		if rc.deleted {
			continue
		}
		out.Data = append(out.Data, relstore.Row{
			relstore.Int(k), relstore.Str("MedRecord"),
			classifyPacks(rc.packs, 1), relstore.Bool(rc.hypT || rc.hypP),
		})
	}
	return nil
}
