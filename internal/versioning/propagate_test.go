package versioning

import (
	"strings"
	"testing"

	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/relstore"
	"guava/internal/ui"
)

func formV1(t *testing.T) *ui.Form {
	t.Helper()
	f := &ui.Form{
		Name: "Procedure", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{Name: "PacksPerDay", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat},
			{Name: "SurgeryPerformed", Kind: ui.CheckBox, Question: "Surgery performed?"},
			{Name: "Alcohol", Kind: ui.DropDown, Question: "Alcohol use",
				Options: []ui.Option{
					{Display: "None", Stored: relstore.Str("None")},
					{Display: "Heavy", Stored: relstore.Str("Heavy")},
				}},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func deriveV(t *testing.T, version int, f *ui.Form) *gtree.Tree {
	t.Helper()
	tree, err := gtree.Derive("CORI", version, f)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

var habitsTarget = classifier.Target{
	Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
	Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
}

func mkClassifiers(t *testing.T) (habits, surgery, alcohol *classifier.Classifier) {
	t.Helper()
	var err error
	habits, err = classifier.Parse("Habits", "", habitsTarget, `
None  <- PacksPerDay = 0
Heavy <- PacksPerDay > 0
`)
	if err != nil {
		t.Fatal(err)
	}
	surgery, err = classifier.ParseEntity("Relevant", "", "Procedure",
		"Procedure <- Procedure AND SurgeryPerformed = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	alcohol, err = classifier.Parse("Drinks", "", classifier.Target{
		Entity: "Procedure", Attribute: "Alcohol", Domain: "D1",
		Kind: relstore.KindString, Elements: []string{"Any", "None"},
	}, `
None <- Alcohol = 'None'
Any  <- Alcohol <> 'None'
`)
	if err != nil {
		t.Fatal(err)
	}
	return habits, surgery, alcohol
}

// TestPropagateUnchanged: a new tool version that only adds controls
// propagates every classifier untouched ("propagating classifiers to the
// next version if their input nodes did not change").
func TestPropagateUnchanged(t *testing.T) {
	old := deriveV(t, 1, formV1(t))
	f2 := formV1(t)
	f2.Controls = append(f2.Controls, &ui.Control{Name: "BiopsyTaken", Kind: ui.CheckBox, Question: "Biopsy?"})
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	new := deriveV(t, 2, f2)
	habits, surgery, alcohol := mkClassifiers(t)
	decisions, err := Propagate([]*classifier.Classifier{habits, surgery, alcohol}, old, new)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decisions {
		if d.Status != Propagated {
			t.Errorf("%s: status = %s, reasons = %v", d.Classifier.Name, d.Status, d.Reasons)
		}
	}
}

// TestPropagateChanged: changed inputs flag classifiers for review with
// reasons; removed inputs suggest replacements ("suggest new classifiers if
// there is a change").
func TestPropagateChanged(t *testing.T) {
	old := deriveV(t, 1, formV1(t))
	f2 := &ui.Form{
		Name: "Procedure", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			// PacksPerDay renamed to PacksDaily (same type) — removal with
			// an obvious replacement candidate.
			{Name: "PacksDaily", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat},
			{Name: "SurgeryPerformed", Kind: ui.CheckBox, Question: "Surgery performed?"},
			// Alcohol gains an option: changed, still binds.
			{Name: "Alcohol", Kind: ui.DropDown, Question: "Alcohol use",
				Options: []ui.Option{
					{Display: "None", Stored: relstore.Str("None")},
					{Display: "Light", Stored: relstore.Str("Light")},
					{Display: "Heavy", Stored: relstore.Str("Heavy")},
				}},
		},
	}
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	new := deriveV(t, 2, f2)
	habits, surgery, alcohol := mkClassifiers(t)
	decisions, err := Propagate([]*classifier.Classifier{habits, surgery, alcohol}, old, new)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Decision{}
	for _, d := range decisions {
		byName[d.Classifier.Name] = d
	}
	// Habits references the removed PacksPerDay: broken, with PacksDaily
	// suggested.
	h := byName["Habits"]
	if h.Status != Broken {
		t.Errorf("Habits status = %s", h.Status)
	}
	foundSuggestion := false
	for _, s := range h.Suggestions {
		if s.OldNode == "PacksPerDay" {
			for _, cand := range s.Candidates {
				if cand == "PacksDaily" {
					foundSuggestion = true
				}
			}
		}
	}
	if !foundSuggestion {
		t.Errorf("expected PacksDaily suggestion, got %+v", h.Suggestions)
	}
	// Surgery untouched: propagated.
	if byName["Relevant"].Status != Propagated {
		t.Errorf("Relevant status = %s", byName["Relevant"].Status)
	}
	// Alcohol options changed but the classifier still binds: review.
	a := byName["Drinks"]
	if a.Status != NeedsReview {
		t.Errorf("Drinks status = %s, reasons %v", a.Status, a.Reasons)
	}
	if len(a.Reasons) == 0 || !strings.Contains(a.Reasons[0], "options changed") {
		t.Errorf("Drinks reasons = %v", a.Reasons)
	}
	// Render mentions all of it.
	txt := Render(decisions)
	for _, want := range []string{"broken:", "propagated:", "needs-review:", "consider replacing PacksPerDay with: PacksDaily"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
}

func TestPropagateRejectsUnbindable(t *testing.T) {
	old := deriveV(t, 1, formV1(t))
	bad, err := classifier.Parse("Bad", "", habitsTarget, "None <- Ghost = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Propagate([]*classifier.Classifier{bad}, old, old); err == nil {
		t.Error("classifier that does not bind to the old tree must fail")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "", 3},
		{"", "xy", 2},
		{"kitten", "sitting", 3},
		{"PacksPerDay", "PacksDaily", 5},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSuggestBounds(t *testing.T) {
	old := deriveV(t, 1, formV1(t))
	// A new tree with many float fields: suggestions cap at 3 and exclude
	// implausibly distant names.
	f2 := &ui.Form{Name: "Procedure", KeyColumn: "ProcedureID", Controls: []*ui.Control{
		{Name: "PacksDaily", Kind: ui.TextBox, DataType: relstore.KindFloat},
		{Name: "PacksEveryDay", Kind: ui.TextBox, DataType: relstore.KindFloat},
		{Name: "PackCount", Kind: ui.TextBox, DataType: relstore.KindFloat},
		{Name: "CompletelyUnrelatedMeasurementOfSomething", Kind: ui.TextBox, DataType: relstore.KindFloat},
		{Name: "WrongType", Kind: ui.TextBox, DataType: relstore.KindInt},
	}}
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	new := deriveV(t, 2, f2)
	s := suggest(old, new, "PacksPerDay")
	if len(s.Candidates) == 0 || len(s.Candidates) > 3 {
		t.Fatalf("candidates = %v", s.Candidates)
	}
	for _, c := range s.Candidates {
		if c == "WrongType" {
			t.Error("wrong-typed node suggested")
		}
		if c == "CompletelyUnrelatedMeasurementOfSomething" {
			t.Error("implausibly distant node suggested")
		}
	}
}
