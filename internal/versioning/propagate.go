// Package versioning implements the paper's Section 6 extension: "handling
// new versions of a reporting tool by propagating classifiers to the next
// version if their input nodes did not change, and suggest new classifiers
// if there is a change."
package versioning

import (
	"fmt"
	"sort"
	"strings"

	"guava/internal/classifier"
	"guava/internal/gtree"
)

// Status describes the outcome of propagating one classifier.
type Status uint8

// Propagation outcomes.
const (
	// Propagated means every referenced node is unchanged in the new tool
	// version; the classifier carries forward as-is.
	Propagated Status = iota
	// NeedsReview means at least one referenced node changed or vanished;
	// the analyst must revisit the classifier (suggestions attached).
	NeedsReview
	// Broken means the classifier no longer binds against the new g-tree
	// at all.
	Broken
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Propagated:
		return "propagated"
	case NeedsReview:
		return "needs-review"
	case Broken:
		return "broken"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Suggestion proposes a replacement node for a changed or removed input.
type Suggestion struct {
	// OldNode is the classifier input that changed.
	OldNode string
	// Candidates are plausible replacement nodes in the new tree, best
	// first (same data type, ranked by name similarity).
	Candidates []string
}

// Decision is the propagation outcome for one classifier.
type Decision struct {
	Classifier *classifier.Classifier
	Status     Status
	// Reasons explains why the classifier needs review, one line per
	// affected input node.
	Reasons []string
	// Suggestions propose replacements for affected inputs.
	Suggestions []Suggestion
}

// Propagate carries a set of classifiers from one tool version to the next.
// Classifiers whose referenced g-tree nodes are untouched re-bind against
// the new tree and propagate; others are flagged with reasons and
// replacement suggestions.
func Propagate(classifiers []*classifier.Classifier, oldTree, newTree *gtree.Tree) ([]Decision, error) {
	diff := gtree.Compare(oldTree, newTree)
	out := make([]Decision, 0, len(classifiers))
	for _, cl := range classifiers {
		bound, err := cl.Bind(oldTree)
		if err != nil {
			return nil, fmt.Errorf("versioning: classifier %q does not bind to the old tree: %w", cl.Name, err)
		}
		var reasons []string
		var suggestions []Suggestion
		for _, ref := range bound.Refs {
			if !diff.NodeChanged(ref) {
				continue
			}
			if changes, ok := diff.Changed[ref]; ok {
				for _, c := range changes {
					reasons = append(reasons, fmt.Sprintf("input %s: %s", ref, c))
				}
			} else {
				reasons = append(reasons, fmt.Sprintf("input %s: removed in new version", ref))
				// Only removed inputs need a replacement; a changed node is
				// still the right node, just worth re-reading.
				if s := suggest(oldTree, newTree, ref); len(s.Candidates) > 0 {
					suggestions = append(suggestions, s)
				}
			}
		}
		d := Decision{Classifier: cl, Reasons: reasons, Suggestions: suggestions}
		switch {
		case len(reasons) == 0:
			if _, err := cl.Bind(newTree); err != nil {
				d.Status = Broken
				d.Reasons = append(d.Reasons, err.Error())
			} else {
				d.Status = Propagated
			}
		default:
			d.Status = NeedsReview
			if _, err := cl.Bind(newTree); err != nil {
				d.Status = Broken
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// suggest ranks new-tree field nodes as replacements for an old node: same
// data type required, ordered by name edit distance, at most three.
func suggest(oldTree, newTree *gtree.Tree, ref string) Suggestion {
	oldNode, err := oldTree.Node(ref)
	if err != nil {
		return Suggestion{OldNode: ref}
	}
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	for _, name := range newTree.FieldNames() {
		n, err := newTree.Node(name)
		if err != nil || n.DataType != oldNode.DataType {
			continue
		}
		// The node itself, unchanged, is not a suggestion target.
		if name == ref {
			continue
		}
		cands = append(cands, cand{name: name, dist: editDistance(strings.ToLower(ref), strings.ToLower(name))})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].name < cands[j].name
	})
	s := Suggestion{OldNode: ref}
	for i := 0; i < len(cands) && i < 3; i++ {
		// Only suggest names within a plausible distance: renames, not
		// arbitrary fields.
		if cands[i].dist > len(ref) {
			break
		}
		s.Candidates = append(s.Candidates, cands[i].name)
	}
	return s
}

// editDistance is the Levenshtein distance between two strings.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Render summarizes decisions for the analyst, one block per classifier.
func Render(decisions []Decision) string {
	var sb strings.Builder
	for _, d := range decisions {
		fmt.Fprintf(&sb, "%-14s %s\n", d.Status.String()+":", d.Classifier.Name)
		for _, r := range d.Reasons {
			fmt.Fprintf(&sb, "    %s\n", r)
		}
		for _, s := range d.Suggestions {
			fmt.Fprintf(&sb, "    consider replacing %s with: %s\n", s.OldNode, strings.Join(s.Candidates, ", "))
		}
	}
	return sb.String()
}
