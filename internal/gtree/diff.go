package gtree

import (
	"fmt"
	"sort"

	"guava/internal/relstore"
)

// Diff summarizes how a g-tree changed between two reporting-tool versions.
// Section 6 of the paper: "handling new versions of a reporting tool by
// propagating classifiers to the next version if their input nodes did not
// change, and suggest new classifiers if there is a change." The diff is the
// input to that propagation (internal/versioning).
type Diff struct {
	// Added names nodes present only in the new tree.
	Added []string
	// Removed names nodes present only in the old tree.
	Removed []string
	// Changed maps node names to human-readable descriptions of what
	// changed (question wording, options, data type, enablement).
	Changed map[string][]string
}

// Empty reports whether nothing changed.
func (d *Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// NodeChanged reports whether the named node was removed or changed; an
// unchanged or added node returns false.
func (d *Diff) NodeChanged(name string) bool {
	if _, ok := d.Changed[name]; ok {
		return true
	}
	for _, r := range d.Removed {
		if r == name {
			return true
		}
	}
	return false
}

// Compare diffs two trees node-by-node (by name; structural moves such as a
// node gaining a dependency parent do not count as changes, because the
// node's data semantics are unchanged).
func Compare(old, new *Tree) *Diff {
	d := &Diff{Changed: make(map[string][]string)}
	oldIdx := old.index()
	newIdx := new.index()
	var names []string
	for n := range oldIdx {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		on := oldIdx[name]
		nn, ok := newIdx[name]
		if !ok {
			d.Removed = append(d.Removed, name)
			continue
		}
		if changes := describeChanges(on, nn); len(changes) > 0 {
			d.Changed[name] = changes
		}
	}
	names = names[:0]
	for n := range newIdx {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := oldIdx[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
	return d
}

func describeChanges(old, new *Node) []string {
	var out []string
	if old.Kind != new.Kind {
		out = append(out, fmt.Sprintf("kind changed: %s -> %s", old.Kind, new.Kind))
	}
	if old.Question != new.Question {
		out = append(out, fmt.Sprintf("question changed: %q -> %q", old.Question, new.Question))
	}
	if old.DataType != new.DataType {
		out = append(out, fmt.Sprintf("data type changed: %s -> %s", old.DataType, new.DataType))
	}
	if !optionsEqual(old.Options, new.Options) {
		out = append(out, fmt.Sprintf("options changed: %s -> %s", renderOptions(old.Options), renderOptions(new.Options)))
	}
	if old.Required != new.Required {
		out = append(out, fmt.Sprintf("required changed: %v -> %v", old.Required, new.Required))
	}
	if !old.Default.Equal(new.Default) {
		out = append(out, fmt.Sprintf("default changed: %s -> %s", old.Default, new.Default))
	}
	if !enablementEqual(old.Enablement, new.Enablement) {
		out = append(out, "enablement changed")
	}
	return out
}

func optionsEqual(a, b []OptionInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Display != b[i].Display || !a[i].Stored.Equal(b[i].Stored) {
			return false
		}
	}
	return true
}

func renderOptions(opts []OptionInfo) string {
	s := "["
	for i, o := range opts {
		if i > 0 {
			s += ", "
		}
		s += o.Display
	}
	return s + "]"
}

func enablementEqual(a, b EnablementInfo) bool {
	an, bn := normalizeEnablement(a), normalizeEnablement(b)
	return an.Kind == bn.Kind && an.Control == bn.Control && an.Value.Equal(bn.Value)
}

func normalizeEnablement(e EnablementInfo) EnablementInfo {
	if e.Kind == "" {
		e.Kind = "always"
	}
	if e.Kind == "always" {
		return EnablementInfo{Kind: "always", Value: relstore.Null()}
	}
	return e
}
