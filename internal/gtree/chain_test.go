package gtree

import (
	"strings"
	"testing"

	"guava/internal/relstore"
)

// cyclicTree builds a tree whose enablement guards form a cycle A -> B -> A.
// Derive rejects such specs, but DecodeXML and manual construction do not,
// so the chain walk itself must terminate.
func cyclicTree() *Tree {
	a := &Node{Name: "A", Kind: FieldNode, DataType: relstore.KindString,
		Enablement: EnablementInfo{Kind: "answered", Control: "B"}}
	b := &Node{Name: "B", Kind: FieldNode, DataType: relstore.KindString,
		Enablement: EnablementInfo{Kind: "answered", Control: "A"}}
	root := &Node{Name: "F", Kind: FormNode, Children: []*Node{a, b}}
	return &Tree{Contributor: "T", ToolVersion: 1, KeyColumn: "K", Root: root}
}

// TestEnablementChainCycle is the regression test for the infinite loop the
// chain walk used to fall into on cyclic enablement: it must return an error
// (with the partial chain) instead of hanging.
func TestEnablementChainCycle(t *testing.T) {
	tree := cyclicTree()
	chain, err := tree.EnablementChain("A")
	if err == nil {
		t.Fatal("EnablementChain on a cycle: expected error, got nil")
	}
	if !strings.Contains(err.Error(), "enablement cycle") {
		t.Errorf("error %q does not mention the cycle", err)
	}
	// The partial chain stops one short of revisiting A.
	if len(chain) != 1 || chain[0].Name != "B" {
		t.Errorf("partial chain = %v, want [B]", names(chain))
	}
	// ContextReport rides on the same walk; it must terminate too.
	if _, err := tree.ContextReport("A"); err != nil {
		t.Errorf("ContextReport on cyclic tree: %v", err)
	}
}

func TestEnablementChainMissingControl(t *testing.T) {
	a := &Node{Name: "A", Kind: FieldNode, DataType: relstore.KindString,
		Enablement: EnablementInfo{Kind: "answered", Control: "Ghost"}}
	tree := &Tree{Contributor: "T", Root: &Node{Name: "F", Kind: FormNode, Children: []*Node{a}}}
	if _, err := tree.EnablementChain("A"); err == nil {
		t.Fatal("EnablementChain with missing control: expected error")
	}
}

func TestEnablementChainOrder(t *testing.T) {
	c := &Node{Name: "C", Kind: FieldNode, DataType: relstore.KindString,
		Enablement: EnablementInfo{Kind: "answered", Control: "B"}}
	b := &Node{Name: "B", Kind: FieldNode, DataType: relstore.KindString,
		Enablement: EnablementInfo{Kind: "equals", Control: "A", Value: relstore.Str("Yes")}}
	a := &Node{Name: "A", Kind: FieldNode, DataType: relstore.KindString}
	tree := &Tree{Contributor: "T", Root: &Node{Name: "F", Kind: FormNode, Children: []*Node{a, b, c}}}
	chain, err := tree.EnablementChain("C")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(chain); len(got) != 2 || got[0] != "B" || got[1] != "A" {
		t.Errorf("chain = %v, want [B A] (nearest first)", got)
	}
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}
