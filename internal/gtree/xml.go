package gtree

import (
	"encoding/xml"
	"fmt"
	"io"

	"guava/internal/relstore"
)

// The paper stores g-trees as XML, "which mimics the hierarchical nature of
// the form interface and allows queries to return XML documents in a
// standard format". This file provides the XML encoding and decoding.

type xmlValue struct {
	Kind string `xml:"kind,attr"`
	Text string `xml:",chardata"`
}

func toXMLValue(v relstore.Value) *xmlValue {
	if v.IsNull() {
		return nil
	}
	var kind string
	switch v.Kind() {
	case relstore.KindInt:
		kind = "int"
	case relstore.KindFloat:
		kind = "float"
	case relstore.KindString:
		kind = "string"
	case relstore.KindBool:
		kind = "bool"
	}
	return &xmlValue{Kind: kind, Text: v.Display()}
}

func fromXMLValue(x *xmlValue) (relstore.Value, error) {
	if x == nil {
		return relstore.Null(), nil
	}
	var k relstore.Kind
	switch x.Kind {
	case "int":
		k = relstore.KindInt
	case "float":
		k = relstore.KindFloat
	case "string":
		k = relstore.KindString
	case "bool":
		k = relstore.KindBool
	case "":
		return relstore.Null(), nil
	default:
		return relstore.Null(), fmt.Errorf("gtree: unknown value kind %q", x.Kind)
	}
	return relstore.Coerce(relstore.Str(x.Text), k)
}

type xmlOption struct {
	Display    string    `xml:"display,attr"`
	Stored     *xmlValue `xml:"stored,omitempty"`
	Unselected bool      `xml:"unselected,attr,omitempty"`
}

type xmlEnablement struct {
	Kind    string    `xml:"kind,attr"`
	Control string    `xml:"control,attr,omitempty"`
	Value   *xmlValue `xml:"value,omitempty"`
}

type xmlNode struct {
	Name          string         `xml:"name,attr"`
	Kind          string         `xml:"kind,attr"`
	ControlType   string         `xml:"controlType,attr,omitempty"`
	Question      string         `xml:"question,omitempty"`
	AllowFreeText bool           `xml:"allowFreeText,attr,omitempty"`
	Required      bool           `xml:"required,attr,omitempty"`
	DataType      string         `xml:"dataType,attr,omitempty"`
	Default       *xmlValue      `xml:"default,omitempty"`
	Options       []xmlOption    `xml:"option"`
	Enablement    *xmlEnablement `xml:"enablement,omitempty"`
	Children      []xmlNode      `xml:"node"`
}

type xmlTree struct {
	XMLName     xml.Name `xml:"gtree"`
	Contributor string   `xml:"contributor,attr"`
	ToolVersion int      `xml:"toolVersion,attr"`
	KeyColumn   string   `xml:"keyColumn,attr"`
	Root        xmlNode  `xml:"node"`
}

func nodeToXML(n *Node) xmlNode {
	x := xmlNode{
		Name:          n.Name,
		Kind:          n.Kind.String(),
		ControlType:   n.ControlType,
		Question:      n.Question,
		AllowFreeText: n.AllowFreeText,
		Required:      n.Required,
		Default:       toXMLValue(n.Default),
	}
	if n.DataType != relstore.KindNull {
		x.DataType = n.DataType.String()
	}
	for _, o := range n.Options {
		xo := xmlOption{Display: o.Display, Stored: toXMLValue(o.Stored)}
		if o.Stored.IsNull() {
			xo.Unselected = true
		}
		x.Options = append(x.Options, xo)
	}
	if n.Enablement.Kind != "" && n.Enablement.Kind != "always" {
		x.Enablement = &xmlEnablement{
			Kind:    n.Enablement.Kind,
			Control: n.Enablement.Control,
			Value:   toXMLValue(n.Enablement.Value),
		}
	}
	for _, c := range n.Children {
		x.Children = append(x.Children, nodeToXML(c))
	}
	return x
}

func nodeFromXML(x xmlNode) (*Node, error) {
	n := &Node{
		Name:          x.Name,
		ControlType:   x.ControlType,
		Question:      x.Question,
		AllowFreeText: x.AllowFreeText,
		Required:      x.Required,
	}
	switch x.Kind {
	case "form":
		n.Kind = FormNode
	case "group":
		n.Kind = GroupNode
	case "field":
		n.Kind = FieldNode
	default:
		return nil, fmt.Errorf("gtree: unknown node kind %q", x.Kind)
	}
	switch x.DataType {
	case "":
		n.DataType = relstore.KindNull
	case "INTEGER":
		n.DataType = relstore.KindInt
	case "REAL":
		n.DataType = relstore.KindFloat
	case "TEXT":
		n.DataType = relstore.KindString
	case "BOOLEAN":
		n.DataType = relstore.KindBool
	default:
		return nil, fmt.Errorf("gtree: unknown data type %q", x.DataType)
	}
	var err error
	if n.Default, err = fromXMLValue(x.Default); err != nil {
		return nil, err
	}
	for _, xo := range x.Options {
		stored := relstore.Null()
		if !xo.Unselected {
			if stored, err = fromXMLValue(xo.Stored); err != nil {
				return nil, err
			}
		}
		n.Options = append(n.Options, OptionInfo{Display: xo.Display, Stored: stored})
	}
	n.Enablement = EnablementInfo{Kind: "always"}
	if x.Enablement != nil {
		v, err := fromXMLValue(x.Enablement.Value)
		if err != nil {
			return nil, err
		}
		n.Enablement = EnablementInfo{Kind: x.Enablement.Kind, Control: x.Enablement.Control, Value: v}
	}
	if n.Kind != FieldNode {
		n.Enablement = EnablementInfo{}
	}
	for _, xc := range x.Children {
		c, err := nodeFromXML(xc)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// EncodeXML writes the tree as indented XML.
func EncodeXML(w io.Writer, t *Tree) error {
	x := xmlTree{
		Contributor: t.Contributor,
		ToolVersion: t.ToolVersion,
		KeyColumn:   t.KeyColumn,
		Root:        nodeToXML(t.Root),
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("gtree: encode: %w", err)
	}
	return nil
}

// DecodeXML reads a tree from XML produced by EncodeXML.
func DecodeXML(r io.Reader) (*Tree, error) {
	var x xmlTree
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("gtree: decode: %w", err)
	}
	root, err := nodeFromXML(x.Root)
	if err != nil {
		return nil, err
	}
	return &Tree{
		Contributor: x.Contributor,
		ToolVersion: x.ToolVersion,
		KeyColumn:   x.KeyColumn,
		Root:        root,
	}, nil
}
