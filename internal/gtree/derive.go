package gtree

import (
	"fmt"

	"guava/internal/relstore"
	"guava/internal/ui"
)

// Derive builds a g-tree automatically from a form definition — the paper's
// Hypothesis #1, performed by an IDE plugin there and by this function here.
//
// Derivation proceeds in two steps:
//
//  1. Containment: the form becomes the root node and the control hierarchy
//     maps one node per control, group boxes included.
//  2. Dependency re-parenting: a control whose enablement references another
//     control moves beneath that control's node, because the UI only
//     surfaces it in that context ("the frequency node appears as a child
//     of the smoking node", Figure 2).
func Derive(contributor string, toolVersion int, form *ui.Form) (*Tree, error) {
	if err := form.Validate(); err != nil {
		return nil, fmt.Errorf("gtree: derive: %w", err)
	}
	root := &Node{
		Name:     form.Name,
		Kind:     FormNode,
		Question: form.Title,
	}
	nodes := map[string]*Node{}
	parents := map[string]*Node{} // node name -> containment parent node

	var build func(c *ui.Control, parent *Node)
	build = func(c *ui.Control, parent *Node) {
		n := controlNode(c)
		nodes[c.Name] = n
		parents[c.Name] = parent
		for _, ch := range c.Children {
			build(ch, n)
		}
	}
	for _, c := range form.Controls {
		build(c, root)
	}

	// Attach each node to its dependency parent when one exists, otherwise
	// to its containment parent. Iterating the form's declaration order
	// keeps sibling order deterministic.
	form.Walk(func(c *ui.Control) {
		n := nodes[c.Name]
		parent := parents[c.Name]
		if c.Enabled.Cond != ui.Always {
			if dep, ok := nodes[c.Enabled.Control]; ok {
				parent = dep
			}
		}
		parent.Children = append(parent.Children, n)
	})

	t := &Tree{
		Contributor: contributor,
		ToolVersion: toolVersion,
		KeyColumn:   form.KeyColumn,
		Root:        root,
	}
	// Guard against enablement cycles that would detach nodes from the root.
	reachable := 0
	t.Root.Walk(func(*Node) { reachable++ })
	if reachable != len(nodes)+1 {
		return nil, fmt.Errorf("gtree: derive: enablement cycle detached %d node(s)", len(nodes)+1-reachable)
	}
	return t, nil
}

// controlNode converts one control into its g-tree node, capturing all the
// context information of Figure 3.
func controlNode(c *ui.Control) *Node {
	n := &Node{
		Name:          c.Name,
		ControlType:   c.Kind.String(),
		Question:      c.Question,
		AllowFreeText: c.AllowFreeText,
		Default:       c.Default,
		Required:      c.Required,
	}
	if c.Kind == ui.GroupBox {
		n.Kind = GroupNode
		return n
	}
	n.Kind = FieldNode
	n.DataType = c.StoredKind()
	switch c.Enabled.Cond {
	case ui.Always:
		n.Enablement = EnablementInfo{Kind: "always"}
	case ui.WhenAnswered:
		n.Enablement = EnablementInfo{Kind: "answered", Control: c.Enabled.Control}
	case ui.WhenEquals:
		n.Enablement = EnablementInfo{Kind: "equals", Control: c.Enabled.Control, Value: c.Enabled.Value}
	}
	// A radio list with no default starts with no option selected, so the
	// node carries an explicit Unselected entry whose stored value is NULL
	// (Figure 3b) — analysts must be able to ask for "never answered".
	if c.Kind == ui.RadioList && c.Default.IsNull() {
		n.Options = append(n.Options, OptionInfo{Display: "Unselected", Stored: relstore.Null()})
	}
	for _, o := range c.Options {
		n.Options = append(n.Options, OptionInfo{Display: o.Display, Stored: o.Stored})
	}
	if c.Kind == ui.CheckBox {
		n.Options = append(n.Options,
			OptionInfo{Display: "Checked", Stored: relstore.Bool(true)},
			OptionInfo{Display: "Unchecked", Stored: relstore.Bool(false)},
		)
	}
	return n
}

// DeriveTool derives one g-tree per form of a tool, keyed by form name.
func DeriveTool(contributor string, tool *ui.Tool) (map[string]*Tree, error) {
	out := make(map[string]*Tree, len(tool.Forms))
	for _, f := range tool.Forms {
		t, err := Derive(contributor, tool.Version, f)
		if err != nil {
			return nil, err
		}
		out[f.Name] = t
	}
	return out, nil
}
