// Package gtree implements GUAVA trees: the per-contributor view structure
// derived from a reporting tool's user interface. "There is a node in the
// g-tree for every control on the screen, even those that do not normally
// store data, such as group boxes" (Figure 2). Each node captures context
// information about its control — exact question wording, answer options,
// default value, required flag, enablement guard (Figure 3) — so analysts
// can see data in its original context rather than "the potentially obscure
// environment of a database".
package gtree

import (
	"fmt"
	"sort"
	"strings"

	"guava/internal/relstore"
)

// NodeKind enumerates what a g-tree node stands for.
type NodeKind uint8

// Node kinds. FormNode is the root (entity classifiers must reference "at
// least one node in the g-tree that represents a form"); GroupNode mirrors a
// group box; FieldNode stores data.
const (
	FormNode NodeKind = iota
	GroupNode
	FieldNode
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case FormNode:
		return "form"
	case GroupNode:
		return "group"
	case FieldNode:
		return "field"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// OptionInfo records one selectable answer of a control, as context: the
// display wording the clinician saw and the value the tool stored.
type OptionInfo struct {
	Display string
	Stored  relstore.Value
}

// EnablementInfo records the guard under which a control becomes enabled.
type EnablementInfo struct {
	// Kind is "always", "answered", or "equals".
	Kind string
	// Control names the controlling node ("" when always enabled).
	Control string
	// Value is the stored value the controlling control must equal (for
	// Kind "equals").
	Value relstore.Value
}

// Node is one g-tree node.
type Node struct {
	// Name identifies the node; for field nodes it is also the column name
	// in the contributor's naive schema.
	Name string
	// Kind distinguishes form, group, and field nodes.
	Kind NodeKind
	// ControlType is the originating control kind ("RadioList", "TextBox",
	// …) for provenance; empty for form nodes.
	ControlType string
	// Question is the exact wording of the control's question.
	Question string
	// Options are the answer choices with their stored values. Radio lists
	// that start unselected carry an extra synthetic "Unselected" option
	// whose stored value is NULL (Figure 3b).
	Options []OptionInfo
	// AllowFreeText marks drop-downs that also accept typed text (Fig 3a).
	AllowFreeText bool
	// Default is the control's initial value (NULL when none).
	Default relstore.Value
	// Required reports whether the control must be filled in.
	Required bool
	// DataType is the stored kind of the node's answers (KindNull for
	// structural nodes).
	DataType relstore.Kind
	// Enablement is the guard on the control (Figure 3c).
	Enablement EnablementInfo
	// Children are the nodes nested beneath this one. Containment children
	// come from group boxes; dependency children are controls whose
	// enablement references this node ("the frequency node appears as a
	// child of the smoking node").
	Children []*Node
}

// StoresData reports whether the node stores a value.
func (n *Node) StoresData() bool { return n.Kind == FieldNode }

// Walk visits the node and all descendants depth-first, pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Tree is a complete g-tree for one form of one contributor's tool.
type Tree struct {
	// Contributor names the data source the tree belongs to.
	Contributor string
	// ToolVersion is the reporting-tool release the tree was derived from.
	ToolVersion int
	// KeyColumn names the form's instance key in the naive schema.
	KeyColumn string
	// Root is the form node.
	Root *Node

	byName map[string]*Node
}

// index builds the name→node map lazily.
func (t *Tree) index() map[string]*Node {
	if t.byName == nil {
		t.byName = make(map[string]*Node)
		t.Root.Walk(func(n *Node) { t.byName[n.Name] = n })
	}
	return t.byName
}

// Node returns the named node.
func (t *Tree) Node(name string) (*Node, error) {
	n, ok := t.index()[name]
	if !ok {
		return nil, fmt.Errorf("gtree: no node %q in g-tree %s/%s", name, t.Contributor, t.Root.Name)
	}
	return n, nil
}

// Has reports whether the tree contains a node with the name.
func (t *Tree) Has(name string) bool {
	_, ok := t.index()[name]
	return ok
}

// FormName returns the root form's name.
func (t *Tree) FormName() string { return t.Root.Name }

// FieldNames returns the names of data-storing nodes, sorted.
func (t *Tree) FieldNames() []string {
	var out []string
	t.Root.Walk(func(n *Node) {
		if n.StoresData() {
			out = append(out, n.Name)
		}
	})
	sort.Strings(out)
	return out
}

// Path returns the root-to-node name path for the named node.
func (t *Tree) Path(name string) ([]string, error) {
	var path []string
	var find func(n *Node, trail []string) bool
	find = func(n *Node, trail []string) bool {
		trail = append(trail, n.Name)
		if n.Name == name {
			path = append(path, trail...)
			return true
		}
		for _, c := range n.Children {
			if find(c, trail) {
				return true
			}
		}
		return false
	}
	if !find(t.Root, nil) {
		return nil, fmt.Errorf("gtree: no node %q", name)
	}
	return path, nil
}

// ContextReport renders everything an analyst can know about one node: the
// full containment/dependency path, the exact question wording, answer
// options with stored values, defaults, required flag, and the enablement
// chain back to the root — the "detailed accounts of the user interface that
// was used to generate the data" the paper's abstract promises.
func (t *Tree) ContextReport(name string) (string, error) {
	n, err := t.Node(name)
	if err != nil {
		return "", err
	}
	path, err := t.Path(name)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %s (contributor %s, tool v%d)\n", name, t.Contributor, t.ToolVersion)
	fmt.Fprintf(&sb, "  path:     %s\n", strings.Join(path, " > "))
	fmt.Fprintf(&sb, "  control:  %s (%s)\n", n.ControlType, n.Kind)
	if n.Question != "" {
		fmt.Fprintf(&sb, "  question: %q\n", n.Question)
	}
	if n.DataType != relstore.KindNull {
		fmt.Fprintf(&sb, "  stores:   %s\n", n.DataType)
	}
	for _, o := range n.Options {
		stored := o.Stored.String()
		if o.Stored.IsNull() {
			stored = "no value stored"
		}
		fmt.Fprintf(&sb, "  option:   %q -> %s\n", o.Display, stored)
	}
	if n.AllowFreeText {
		fmt.Fprintf(&sb, "  option:   free text allowed\n")
	}
	if !n.Default.IsNull() {
		fmt.Fprintf(&sb, "  default:  %s\n", n.Default)
	}
	if n.Required {
		fmt.Fprintf(&sb, "  required: yes\n")
	}
	// Walk the enablement chain: what must be answered, in order, for this
	// control to accept data at all. The chain walk is bounded, so a cyclic
	// enablement spec yields a truncated report instead of a hang.
	chain, _ := t.EnablementChain(name)
	cur := n
	for _, parent := range chain {
		if cur.Enablement.Kind == "equals" {
			opt := cur.Enablement.Value.String()
			if o, ok := optionFor(parent, cur.Enablement.Value); ok {
				opt = fmt.Sprintf("%q", o.Display)
			}
			fmt.Fprintf(&sb, "  enabled:  only when %q is answered %s\n", parent.Question, opt)
		} else {
			fmt.Fprintf(&sb, "  enabled:  only when %q is answered\n", parent.Question)
		}
		cur = parent
	}
	return sb.String(), nil
}

// EnablementChain returns the controlling nodes that gate the named node,
// nearest first: the node's enablement control, that control's control, and
// so on up to an always-enabled node. Derive rejects cyclic enablement
// specs, but trees can also arrive via DecodeXML or manual construction, so
// the walk keeps a visited set: on a cycle (or an enablement naming a
// missing control) it returns the chain collected so far together with an
// error, rather than looping forever.
func (t *Tree) EnablementChain(name string) ([]*Node, error) {
	n, err := t.Node(name)
	if err != nil {
		return nil, err
	}
	var chain []*Node
	visited := map[string]bool{n.Name: true}
	cur := n
	for cur.Enablement.Kind == "answered" || cur.Enablement.Kind == "equals" {
		parent, err := t.Node(cur.Enablement.Control)
		if err != nil {
			return chain, err
		}
		if visited[parent.Name] {
			return chain, fmt.Errorf("gtree: enablement cycle through %q in g-tree %s/%s",
				parent.Name, t.Contributor, t.Root.Name)
		}
		visited[parent.Name] = true
		chain = append(chain, parent)
		cur = parent
	}
	return chain, nil
}

// optionFor finds the option of a node whose stored value equals v.
func optionFor(n *Node, v relstore.Value) (OptionInfo, bool) {
	for _, o := range n.Options {
		if o.Stored.Equal(v) {
			return o, true
		}
	}
	return OptionInfo{}, false
}

// Render draws the tree as indented text, the way cmd/guavadump presents it
// to analysts.
func (t *Tree) Render() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Name)
		meta := []string{n.Kind.String()}
		if n.ControlType != "" {
			meta = append(meta, n.ControlType)
		}
		if n.Question != "" {
			meta = append(meta, fmt.Sprintf("%q", n.Question))
		}
		if len(n.Options) > 0 {
			opts := make([]string, len(n.Options))
			for i, o := range n.Options {
				opts[i] = o.Display
			}
			meta = append(meta, "options: "+strings.Join(opts, "|"))
		}
		if n.Required {
			meta = append(meta, "required")
		}
		if !n.Default.IsNull() {
			meta = append(meta, "default "+n.Default.String())
		}
		if n.Enablement.Kind != "" && n.Enablement.Kind != "always" {
			if n.Enablement.Kind == "equals" {
				meta = append(meta, fmt.Sprintf("enabled when %s = %s", n.Enablement.Control, n.Enablement.Value))
			} else {
				meta = append(meta, fmt.Sprintf("enabled when %s answered", n.Enablement.Control))
			}
		}
		sb.WriteString("  [" + strings.Join(meta, "; ") + "]\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
