package gtree

import (
	"bytes"
	"strings"
	"testing"

	"guava/internal/relstore"
	"guava/internal/ui"
)

// figure2Form reconstructs the Figure 2 Procedure dialog.
func figure2Form(t *testing.T) *ui.Form {
	t.Helper()
	f := &ui.Form{
		Name:      "Procedure",
		Title:     "Procedure Report",
		KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{
				Name: "Complications", Kind: ui.GroupBox, Question: "Complications",
				Children: []*ui.Control{
					{Name: "Hypoxia", Kind: ui.CheckBox, Question: "Hypoxia"},
					{Name: "SurgeonConsulted", Kind: ui.CheckBox, Question: "Surgeon Consulted"},
					{Name: "OtherComplication", Kind: ui.TextBox, Question: "Other", DataType: relstore.KindString},
				},
			},
			{
				Name: "MedicalHistory", Kind: ui.GroupBox, Question: "Medical History",
				Children: []*ui.Control{
					{Name: "RenalFailure", Kind: ui.CheckBox, Question: "Renal Failure"},
					{Name: "Smoking", Kind: ui.RadioList, Question: "Does the patient smoke?",
						Options: []ui.Option{
							{Display: "No", Stored: relstore.Str("No")},
							{Display: "Yes", Stored: relstore.Str("Yes")},
							{Display: "Quit", Stored: relstore.Str("Quit")},
						}},
					{Name: "Frequency", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat,
						Enabled: ui.Enablement{Cond: ui.WhenAnswered, Control: "Smoking"}},
					{Name: "Alcohol", Kind: ui.DropDown, Question: "Alcohol use", AllowFreeText: true,
						Options: []ui.Option{
							{Display: "None", Stored: relstore.Str("None")},
							{Display: "Light", Stored: relstore.Str("Light")},
							{Display: "Heavy", Stored: relstore.Str("Heavy")},
						}},
				},
			},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func deriveFig2(t *testing.T) *Tree {
	t.Helper()
	tree, err := Derive("CORI", 1, figure2Form(t))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestFigure2GTree checks the derivation against the structure drawn in
// Figure 2: a node for every control including group boxes, and Frequency
// appearing as a child of Smoking rather than of Medical History.
func TestFigure2GTree(t *testing.T) {
	tree := deriveFig2(t)
	if tree.Root.Name != "Procedure" || tree.Root.Kind != FormNode {
		t.Fatalf("root = %s (%s)", tree.Root.Name, tree.Root.Kind)
	}
	// Every control has a node, group boxes included.
	for _, name := range []string{"Complications", "MedicalHistory", "Hypoxia", "SurgeonConsulted", "OtherComplication", "RenalFailure", "Smoking", "Frequency", "Alcohol"} {
		if !tree.Has(name) {
			t.Errorf("missing node %q", name)
		}
	}
	// Frequency is re-parented beneath Smoking.
	path, err := tree.Path("Frequency")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Procedure", "MedicalHistory", "Smoking", "Frequency"}
	if strings.Join(path, "/") != strings.Join(want, "/") {
		t.Errorf("Frequency path = %v, want %v", path, want)
	}
	// Group boxes store no data.
	mh, _ := tree.Node("MedicalHistory")
	if mh.StoresData() || mh.Kind != GroupNode {
		t.Error("MedicalHistory must be a non-data group node")
	}
	fields := tree.FieldNames()
	wantFields := []string{"Alcohol", "Frequency", "Hypoxia", "OtherComplication", "RenalFailure", "Smoking", "SurgeonConsulted"}
	if strings.Join(fields, ",") != strings.Join(wantFields, ",") {
		t.Errorf("fields = %v", fields)
	}
}

// TestFigure3NodeDetails checks the per-node context of Figure 3: the
// alcohol node has a free-text option, the smoking node has an Unselected
// entry, and the frequency node records its enablement guard.
func TestFigure3NodeDetails(t *testing.T) {
	tree := deriveFig2(t)

	alcohol, _ := tree.Node("Alcohol")
	if !alcohol.AllowFreeText {
		t.Error("alcohol node must record the free-text option (Fig 3a)")
	}
	if len(alcohol.Options) != 3 {
		t.Errorf("alcohol options = %d, want 3", len(alcohol.Options))
	}
	if alcohol.Question != "Alcohol use" {
		t.Errorf("alcohol question = %q", alcohol.Question)
	}

	smoking, _ := tree.Node("Smoking")
	if len(smoking.Options) != 4 {
		t.Fatalf("smoking options = %d, want 4 (3 answers + Unselected)", len(smoking.Options))
	}
	if smoking.Options[0].Display != "Unselected" || !smoking.Options[0].Stored.IsNull() {
		t.Errorf("first smoking option = %+v, want Unselected/NULL (Fig 3b)", smoking.Options[0])
	}

	freq, _ := tree.Node("Frequency")
	if freq.Enablement.Kind != "answered" || freq.Enablement.Control != "Smoking" {
		t.Errorf("frequency enablement = %+v, want answered(Smoking) (Fig 3c)", freq.Enablement)
	}
	if freq.DataType != relstore.KindFloat {
		t.Errorf("frequency data type = %v", freq.DataType)
	}

	hyp, _ := tree.Node("Hypoxia")
	if len(hyp.Options) != 2 {
		t.Errorf("checkbox node must expose Checked/Unchecked, got %v", hyp.Options)
	}
}

func TestDeriveRadioWithDefaultHasNoUnselected(t *testing.T) {
	f := &ui.Form{Name: "F", KeyColumn: "ID", Controls: []*ui.Control{
		{Name: "R", Kind: ui.RadioList, Question: "r?",
			Options: []ui.Option{{Display: "A", Stored: relstore.Str("A")}},
			Default: relstore.Str("A")},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := Derive("X", 1, f)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := tree.Node("R")
	if len(n.Options) != 1 {
		t.Errorf("radio with default must not gain Unselected: %v", n.Options)
	}
}

func TestDeriveWhenEqualsReparenting(t *testing.T) {
	f := &ui.Form{Name: "F", KeyColumn: "ID", Controls: []*ui.Control{
		{Name: "A", Kind: ui.CheckBox, Question: "a?"},
		{Name: "B", Kind: ui.TextBox, Question: "b?",
			Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "A", Value: relstore.Bool(true)}},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := Derive("X", 1, f)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := tree.Path("B")
	if strings.Join(path, "/") != "F/A/B" {
		t.Errorf("path = %v, want F/A/B", path)
	}
	b, _ := tree.Node("B")
	if b.Enablement.Kind != "equals" || !b.Enablement.Value.Equal(relstore.Bool(true)) {
		t.Errorf("enablement = %+v", b.Enablement)
	}
}

func TestTreeNodeLookupErrors(t *testing.T) {
	tree := deriveFig2(t)
	if _, err := tree.Node("Nope"); err == nil {
		t.Error("missing node must error")
	}
	if _, err := tree.Path("Nope"); err == nil {
		t.Error("missing path must error")
	}
}

func TestRender(t *testing.T) {
	tree := deriveFig2(t)
	txt := tree.Render()
	if !strings.Contains(txt, "Procedure") || !strings.Contains(txt, "Does the patient smoke?") {
		t.Errorf("render missing content:\n%s", txt)
	}
	// Frequency is indented deeper than Smoking.
	lines := strings.Split(txt, "\n")
	indent := func(name string) int {
		for _, l := range lines {
			if strings.Contains(l, name+" ") {
				return len(l) - len(strings.TrimLeft(l, " "))
			}
		}
		return -1
	}
	if indent("Frequency") <= indent("Smoking") {
		t.Errorf("Frequency indent %d, Smoking indent %d", indent("Frequency"), indent("Smoking"))
	}
	if !strings.Contains(txt, "enabled when Smoking answered") {
		t.Error("render must show enablement guards")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tree := deriveFig2(t)
	var buf bytes.Buffer
	if err := EncodeXML(&buf, tree); err != nil {
		t.Fatal(err)
	}
	xml := buf.String()
	for _, want := range []string{`contributor="CORI"`, `name="Smoking"`, `question`, `Unselected`} {
		if !strings.Contains(xml, want) {
			t.Errorf("XML missing %q:\n%s", want, xml[:min(len(xml), 600)])
		}
	}
	back, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Contributor != "CORI" || back.ToolVersion != 1 || back.KeyColumn != "ProcedureID" {
		t.Errorf("tree metadata lost: %+v", back)
	}
	// Structure and node details survive.
	if d := Compare(tree, back); !d.Empty() {
		t.Errorf("round trip diff: added=%v removed=%v changed=%v", d.Added, d.Removed, d.Changed)
	}
	path, err := back.Path("Frequency")
	if err != nil || strings.Join(path, "/") != "Procedure/MedicalHistory/Smoking/Frequency" {
		t.Errorf("decoded path = %v (%v)", path, err)
	}
	freq, _ := back.Node("Frequency")
	if freq.Enablement.Control != "Smoking" || freq.DataType != relstore.KindFloat {
		t.Errorf("decoded frequency node = %+v", freq)
	}
}

func TestDecodeXMLErrors(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader("not xml")); err == nil {
		t.Error("garbage must fail")
	}
	bad := `<gtree contributor="X" toolVersion="1" keyColumn="ID"><node name="F" kind="nope"></node></gtree>`
	if _, err := DecodeXML(strings.NewReader(bad)); err == nil {
		t.Error("unknown node kind must fail")
	}
	bad2 := `<gtree contributor="X" toolVersion="1" keyColumn="ID"><node name="F" kind="field" dataType="WAT"></node></gtree>`
	if _, err := DecodeXML(strings.NewReader(bad2)); err == nil {
		t.Error("unknown data type must fail")
	}
}

func TestCompareDiff(t *testing.T) {
	old := deriveFig2(t)

	// v2 of the tool: Smoking gains an option, Frequency is removed,
	// a new BiopsyTaken control appears.
	f2 := figure2Form(t)
	var keep []*ui.Control
	for _, c := range f2.Controls[1].Children {
		if c.Name != "Frequency" {
			keep = append(keep, c)
		}
		if c.Name == "Smoking" {
			c.Options = append(c.Options, ui.Option{Display: "Occasional", Stored: relstore.Str("Occasional")})
		}
	}
	f2.Controls[1].Children = keep
	f2.Controls = append(f2.Controls, &ui.Control{Name: "BiopsyTaken", Kind: ui.CheckBox, Question: "Biopsy taken?"})
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	newTree, err := Derive("CORI", 2, f2)
	if err != nil {
		t.Fatal(err)
	}

	d := Compare(old, newTree)
	if d.Empty() {
		t.Fatal("diff must not be empty")
	}
	if len(d.Added) != 1 || d.Added[0] != "BiopsyTaken" {
		t.Errorf("Added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "Frequency" {
		t.Errorf("Removed = %v", d.Removed)
	}
	if _, ok := d.Changed["Smoking"]; !ok {
		t.Errorf("Changed = %v, want Smoking", d.Changed)
	}
	if !d.NodeChanged("Smoking") || !d.NodeChanged("Frequency") {
		t.Error("NodeChanged must flag changed and removed nodes")
	}
	if d.NodeChanged("Alcohol") || d.NodeChanged("BiopsyTaken") {
		t.Error("NodeChanged must not flag unchanged/added nodes")
	}
	// Identical trees diff empty.
	if d := Compare(old, old); !d.Empty() {
		t.Errorf("self-diff must be empty: %+v", d)
	}
}

func TestCompareDetectsDetailChanges(t *testing.T) {
	mk := func(mut func(*ui.Control)) *Tree {
		f := &ui.Form{Name: "F", KeyColumn: "ID", Controls: []*ui.Control{
			{Name: "T", Kind: ui.TextBox, Question: "orig?", DataType: relstore.KindInt},
		}}
		mut(f.Controls[0])
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		tr, err := Derive("X", 1, f)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	base := mk(func(*ui.Control) {})
	cases := []struct {
		name string
		mut  func(*ui.Control)
	}{
		{"question", func(c *ui.Control) { c.Question = "new?" }},
		{"datatype", func(c *ui.Control) { c.DataType = relstore.KindFloat }},
		{"required", func(c *ui.Control) { c.Required = true }},
		{"default", func(c *ui.Control) { c.Default = relstore.Int(5) }},
	}
	for _, c := range cases {
		d := Compare(base, mk(c.mut))
		if _, ok := d.Changed["T"]; !ok {
			t.Errorf("%s change not detected: %+v", c.name, d)
		}
	}
}

// TestContextReport: the per-node context document walks the enablement
// chain and lists options, defaults, and wording.
func TestContextReport(t *testing.T) {
	tree := deriveFig2(t)
	rep, err := tree.ContextReport("Frequency")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"node Frequency (contributor CORI, tool v1)",
		"path:     Procedure > MedicalHistory > Smoking > Frequency",
		`question: "Packs per day"`,
		"stores:   REAL",
		`enabled:  only when "Does the patient smoke?" is answered`,
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// A node with options, free text, and no enablement.
	rep, err = tree.ContextReport("Alcohol")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`option:   "Light" -> 'Light'`, "free text allowed"} {
		if !strings.Contains(rep, want) {
			t.Errorf("alcohol report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "enabled:") {
		t.Error("always-enabled node must not report enablement")
	}
	if _, err := tree.ContextReport("Ghost"); err == nil {
		t.Error("missing node must fail")
	}
	// WhenEquals chains name the enabling option's display text.
	f := &ui.Form{Name: "F", KeyColumn: "ID", Controls: []*ui.Control{
		{Name: "Smoking", Kind: ui.RadioList, Question: "Does the patient smoke?",
			Options: []ui.Option{{Display: "Yes", Stored: relstore.Str("Y")}, {Display: "No", Stored: relstore.Str("N")}}},
		{Name: "Packs", Kind: ui.TextBox, Question: "Packs?", DataType: relstore.KindFloat,
			Enabled: ui.Enablement{Cond: ui.WhenEquals, Control: "Smoking", Value: relstore.Str("Y")}},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := Derive("X", 1, f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = tr.ContextReport("Packs")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, `only when "Does the patient smoke?" is answered "Yes"`) {
		t.Errorf("equals-chain report:\n%s", rep)
	}
}

func TestDeriveTool(t *testing.T) {
	tool := &ui.Tool{Name: "CORI", Version: 3, Forms: []*ui.Form{figure2Form(t)}}
	trees, err := DeriveTool("CORI", tool)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := trees["Procedure"]
	if !ok || tr.ToolVersion != 3 {
		t.Fatalf("trees = %v", trees)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
