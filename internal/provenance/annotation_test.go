package provenance

import (
	"strings"
	"testing"
	"time"
)

func TestLogOrderingAndRendering(t *testing.T) {
	var l Log
	t0 := time.Date(2002, 5, 3, 9, 0, 0, 0, time.UTC)
	l.Add("jlogan", "created for cancer study", t0.Add(2*time.Hour))
	l.Add("jterwill", "initial draft", t0)
	l.Add("lmd", "reviewed", t0.Add(4*time.Hour))
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	es := l.Entries()
	if es[0].Author != "jterwill" || es[2].Author != "lmd" {
		t.Errorf("entries out of order: %v", es)
	}
	s := l.String()
	if !strings.Contains(s, "2002-05-03 09:00] jterwill: initial draft") {
		t.Errorf("String = %q", s)
	}
	if strings.Index(s, "jterwill") > strings.Index(s, "jlogan") {
		t.Error("rendered order must be chronological")
	}
}

func TestLogConcurrent(t *testing.T) {
	var l Log
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				l.Add("author", "note", time.Unix(int64(g*100+i), 0))
				l.Entries()
			}
			done <- struct{}{}
		}(g)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if l.Len() != 100 {
		t.Errorf("Len = %d, want 100", l.Len())
	}
}
