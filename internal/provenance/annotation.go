// Package provenance implements the annotation layer the paper requires of
// every artifact: "Anyone using the system can annotate and timestamp each
// of these artifacts, as well as the studies themselves, so that it is clear
// who generated them, when, and why."
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Annotation is one timestamped note on an artifact.
type Annotation struct {
	// Author identifies who made the note.
	Author string
	// At is when the note was made.
	At time.Time
	// Note is the why.
	Note string
}

// String renders the annotation one-per-line, newest information last.
func (a Annotation) String() string {
	return fmt.Sprintf("[%s] %s: %s", a.At.Format("2006-01-02 15:04"), a.Author, a.Note)
}

// Log is an append-only annotation history, safe for concurrent use. The
// zero value is ready to use.
type Log struct {
	mu      sync.Mutex
	entries []Annotation
}

// Add appends an annotation.
func (l *Log) Add(author, note string, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Annotation{Author: author, At: at, Note: note})
}

// Entries returns the annotations ordered by time (stable for ties).
func (l *Log) Entries() []Annotation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Annotation, len(l.entries))
	copy(out, l.entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Len returns the number of annotations.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// String renders the whole history.
func (l *Log) String() string {
	es := l.Entries()
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, "\n")
}
