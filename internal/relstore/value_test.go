package relstore

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("abc"), KindString, "'abc'"},
		{Str("O'Brien"), KindString, "'O''Brien'"},
		{Bool(true), KindBool, "TRUE"},
		{Bool(false), KindBool, "FALSE"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueZeroIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(2), Int(2), true},
		{Int(2), Int(3), false},
		{Int(2), Float(2), true},
		{Float(2.5), Float(2.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
		{Int(0), Str("0"), false},
		{Bool(true), Int(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Float(1.5), -1},
		{Float(3), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Int(-100), -1},
		{Int(-100), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueKeyNumericUnification(t *testing.T) {
	if Int(2).Key() != Float(2).Key() {
		t.Error("Int(2) and Float(2) must share a hash key")
	}
	if Int(2).Key() == Str("2").Key() {
		t.Error("Int(2) and Str(\"2\") must not share a key")
	}
	if Null().Key() == Str("").Key() {
		t.Error("NULL and empty string must not share a key")
	}
}

func TestValueTruthy(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Int(-1), Float(0.5), Str("x")}
	falsy := []Value{Null(), Bool(false), Int(0), Float(0), Str("")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in      Value
		to      Kind
		want    Value
		wantErr bool
	}{
		{Int(3), KindFloat, Float(3), false},
		{Float(3), KindInt, Int(3), false},
		{Float(3.5), KindInt, Null(), true},
		{Str("17"), KindInt, Int(17), false},
		{Str(" 17 "), KindInt, Int(17), false},
		{Str("x"), KindInt, Null(), true},
		{Str("2.5"), KindFloat, Float(2.5), false},
		{Str("true"), KindBool, Bool(true), false},
		{Str("N"), KindBool, Bool(false), false},
		{Str("1"), KindBool, Bool(true), false},
		{Str("maybe"), KindBool, Null(), true},
		{Int(0), KindBool, Bool(false), false},
		{Bool(true), KindInt, Int(1), false},
		{Int(9), KindString, Str("9"), false},
		{Null(), KindInt, Null(), false},
		{Bool(true), KindFloat, Float(1), false},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.to)
		if c.wantErr {
			if err == nil {
				t.Errorf("Coerce(%v, %v): want error, got %v", c.in, c.to, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestCoerceIdentityProperty(t *testing.T) {
	// Coercing a value to its own kind is the identity.
	f := func(i int64, s string, b bool) bool {
		for _, v := range []Value{Int(i), Str(s), Bool(b)} {
			got, err := Coerce(v, v.Kind())
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].AsInt() != 1 {
		t.Error("Clone must not share storage")
	}
	if !r.Equal(Row{Int(1), Str("a")}) {
		t.Error("original row mutated")
	}
}

func TestRowEqual(t *testing.T) {
	if (Row{Int(1)}).Equal(Row{Int(1), Int(2)}) {
		t.Error("rows of different arity must differ")
	}
	if !(Row{Int(1), Null()}).Equal(Row{Int(1), Null()}) {
		t.Error("rows with NULLs in same slots must be equal")
	}
}

func TestRowKeyDistinguishes(t *testing.T) {
	a := Row{Str("a"), Str("b")}
	b := Row{Str("ab"), Str("")}
	if a.Key() == b.Key() {
		t.Error("row keys must not collide across field boundaries")
	}
}
