package relstore

import (
	"strings"
	"testing"
)

var exprSchema = MustSchema(
	Column{Name: "X", Type: KindInt},
	Column{Name: "Y", Type: KindFloat},
	Column{Name: "S", Type: KindString},
	Column{Name: "B", Type: KindBool},
)

func evalExpr(t *testing.T, e Expr, r Row) Value {
	t.Helper()
	v, err := e.Eval(r, exprSchema)
	if err != nil {
		t.Fatalf("eval %s: %v", e.SQL(), err)
	}
	return v
}

func TestColAndLit(t *testing.T) {
	r := Row{Int(4), Float(2.5), Str("hi"), Bool(true)}
	if v := evalExpr(t, Col("X"), r); !v.Equal(Int(4)) {
		t.Errorf("Col(X) = %v", v)
	}
	if v := evalExpr(t, Lit(Str("k")), r); !v.Equal(Str("k")) {
		t.Errorf("Lit = %v", v)
	}
	if _, err := Col("nope").Eval(r, exprSchema); err == nil {
		t.Error("unknown column must error")
	}
}

func TestArithmetic(t *testing.T) {
	r := Row{Int(7), Float(2), Str("ab"), Bool(false)}
	cases := []struct {
		e    Expr
		want Value
	}{
		{Arith(OpAdd, Col("X"), Lit(Int(3))), Int(10)},
		{Arith(OpSub, Col("X"), Lit(Int(3))), Int(4)},
		{Arith(OpMul, Col("X"), Lit(Int(2))), Int(14)},
		{Arith(OpDiv, Lit(Int(8)), Lit(Int(2))), Int(4)},
		{Arith(OpDiv, Lit(Int(7)), Lit(Int(2))), Float(3.5)},
		{Arith(OpMod, Lit(Int(7)), Lit(Int(2))), Int(1)},
		{Arith(OpAdd, Col("X"), Col("Y")), Float(9)},
		{Arith(OpMul, Col("Y"), Lit(Float(0.52))), Float(1.04)},
		{Arith(OpAdd, Col("S"), Lit(Str("c"))), Str("abc")},
		{Neg(Col("X")), Int(-7)},
		{Neg(Col("Y")), Float(-2)},
	}
	for _, c := range cases {
		got := evalExpr(t, c.e, r)
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e.SQL(), got, c.want)
		}
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	r := Row{Null(), Float(2), Str("ab"), Bool(false)}
	v := evalExpr(t, Arith(OpAdd, Col("X"), Lit(Int(3))), r)
	if !v.IsNull() {
		t.Errorf("NULL + 3 = %v, want NULL", v)
	}
}

func TestArithmeticErrors(t *testing.T) {
	r := Row{Int(1), Float(2), Str("ab"), Bool(false)}
	bad := []Expr{
		Arith(OpDiv, Col("X"), Lit(Int(0))),
		Arith(OpMod, Col("X"), Lit(Int(0))),
		Arith(OpMul, Col("S"), Lit(Int(2))),
		Arith(OpDiv, Col("Y"), Lit(Float(0))),
		Neg(Col("S")),
	}
	for _, e := range bad {
		if _, err := e.Eval(r, exprSchema); err == nil {
			t.Errorf("%s: expected error", e.SQL())
		}
	}
}

func TestCaseExpr(t *testing.T) {
	// The Habits(Cancer) classifier shape from Figure 5.
	packs := Col("Y")
	habits := CaseExpr{
		Branches: []CaseBranch{
			{When: Cmp(CmpEq, packs, Lit(Int(0))), Then: Lit(Str("None"))},
			{When: Cmp(CmpLt, packs, Lit(Int(2))), Then: Lit(Str("Light"))},
			{When: Cmp(CmpLt, packs, Lit(Int(5))), Then: Lit(Str("Moderate"))},
			{When: Cmp(CmpGe, packs, Lit(Int(5))), Then: Lit(Str("Heavy"))},
		},
	}
	cases := []struct {
		packs float64
		want  string
	}{
		{0, "None"}, {0.5, "Light"}, {1.9, "Light"}, {2, "Moderate"}, {4.9, "Moderate"}, {5, "Heavy"}, {12, "Heavy"},
	}
	for _, c := range cases {
		r := Row{Int(0), Float(c.packs), Str(""), Bool(false)}
		got := evalExpr(t, habits, r)
		if !got.Equal(Str(c.want)) {
			t.Errorf("habits(%v) = %v, want %s", c.packs, got, c.want)
		}
	}
	// No matching branch, no else -> NULL.
	empty := CaseExpr{Branches: []CaseBranch{{When: False, Then: Lit(Int(1))}}}
	r := Row{Int(0), Float(0), Str(""), Bool(false)}
	if v := evalExpr(t, empty, r); !v.IsNull() {
		t.Errorf("unmatched CASE = %v, want NULL", v)
	}
	withElse := CaseExpr{Branches: empty.Branches, Else: Lit(Str("fallback"))}
	if v := evalExpr(t, withElse, r); !v.Equal(Str("fallback")) {
		t.Errorf("ELSE = %v", v)
	}
	if sql := habits.SQL(); !strings.HasPrefix(sql, "CASE WHEN") || !strings.HasSuffix(sql, "END") {
		t.Errorf("CASE SQL = %q", sql)
	}
}

func TestFuncs(t *testing.T) {
	r := Row{Int(-4), Float(2.6), Str("  MiXeD "), Bool(true)}
	cases := []struct {
		e    Expr
		want Value
	}{
		{Call("ABS", Col("X")), Int(4)},
		{Call("ABS", Lit(Float(-2.5))), Float(2.5)},
		{Call("ROUND", Col("Y")), Float(3)},
		{Call("LENGTH", Lit(Str("abc"))), Int(3)},
		{Call("LOWER", Call("TRIM", Col("S"))), Str("mixed")},
		{Call("UPPER", Call("TRIM", Col("S"))), Str("MIXED")},
		{Call("COALESCE", Lit(Null()), Col("X"), Lit(Int(9))), Int(-4)},
		{Call("COALESCE", Lit(Null()), Lit(Null())), Null()},
	}
	for _, c := range cases {
		got := evalExpr(t, c.e, r)
		if c.want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%s = %v, want NULL", c.e.SQL(), got)
			}
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e.SQL(), got, c.want)
		}
	}
	if _, err := Call("NOPE", Col("X")).Eval(r, exprSchema); err == nil {
		t.Error("unknown function must error")
	}
	if _, err := Call("ABS").Eval(r, exprSchema); err == nil {
		t.Error("wrong arity must error")
	}
	if _, err := Call("ABS", Col("S")).Eval(r, exprSchema); err == nil {
		t.Error("ABS of string must error")
	}
}

func TestExprSQLRendering(t *testing.T) {
	e := Arith(OpMul, Arith(OpMul, Col("TumorX"), Col("TumorY")), Lit(Float(0.52)))
	want := "((TumorX * TumorY) * 0.52)"
	if got := e.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
}
