package relstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The v2 ".rel" layout extends the v1 typed line format (serial.go) with a
// segment directory, so a relation can be read piecewise and a warehouse can
// exceed RAM. A v2 file is:
//
//	header line: {"rel":2,"rows":N,"schema":[...],"segments":[{"rows":r,"bytes":b,"crc":c},...]}
//	segment 0:   r0 row lines (b0 bytes, CRC-32/IEEE c0)
//	segment 1:   ...
//
// Row lines are exactly the v1 kind-tagged JSON rows, so the two formats
// share one row codec; only the framing differs. v1 files (whose first line
// is the bare schema array, starting '[') remain readable by ReadTyped,
// which sniffs the first byte. Writes are deterministic: the same relation
// and segment size always produce the same bytes, preserving the
// byte-identical round-trip invariant the checkpoint and warehouse layers
// compare with cmp(1).

// DefaultSegmentRows is the rows-per-segment used when a caller asks for
// segmenting without choosing a size; it matches the operator batch width.
const DefaultSegmentRows = DefaultBatchSize

// segMeta describes one segment block in the v2 header.
type segMeta struct {
	Rows  int    `json:"rows"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// relHeader is the v2 header line.
type relHeader struct {
	Rel      int            `json:"rel"`
	Rows     int            `json:"rows"`
	Schema   []serialColumn `json:"schema"`
	Segments []segMeta      `json:"segments"`
}

func schemaToSerial(s *Schema) []serialColumn {
	cols := make([]serialColumn, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = serialColumn{Name: c.Name, Type: c.Type.String(), NotNull: c.NotNull}
	}
	return cols
}

func schemaFromSerial(cols []serialColumn) (*Schema, error) {
	out := make([]Column, len(cols))
	for i, c := range cols {
		k, err := kindFromString(c.Type)
		if err != nil {
			return nil, err
		}
		out[i] = Column{Name: c.Name, Type: k, NotNull: c.NotNull}
	}
	return NewSchema(out...)
}

// WriteTypedSegmented writes a relation in the v2 segment-file layout with
// segRows rows per segment (<= 0 uses DefaultSegmentRows). An empty relation
// writes a header with no segments.
func WriteTypedSegmented(w io.Writer, rows *Rows, segRows int) error {
	if segRows <= 0 {
		segRows = DefaultSegmentRows
	}
	hdr := relHeader{Rel: 2, Rows: len(rows.Data), Schema: schemaToSerial(rows.Schema)}
	var blocks []*bytes.Buffer
	for lo := 0; lo < len(rows.Data); lo += segRows {
		hi := lo + segRows
		if hi > len(rows.Data) {
			hi = len(rows.Data)
		}
		var buf bytes.Buffer
		for _, r := range rows.Data[lo:hi] {
			rl, err := MarshalRowJSON(r)
			if err != nil {
				return err
			}
			buf.Write(rl)
			buf.WriteByte('\n')
		}
		hdr.Segments = append(hdr.Segments, segMeta{
			Rows:  hi - lo,
			Bytes: int64(buf.Len()),
			CRC:   crc32.ChecksumIEEE(buf.Bytes()),
		})
		blocks = append(blocks, &buf)
		mSegWrites.Inc()
	}
	hl, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(hl)
	bw.WriteByte('\n')
	for _, b := range blocks {
		bw.Write(b.Bytes())
	}
	return bw.Flush()
}

// parseSegmentBlock decodes and validates one segment's bytes against its
// header entry: checksum first, then the row lines against the schema.
func parseSegmentBlock(block []byte, meta segMeta, schema *Schema, segIdx int) ([]Row, error) {
	if got := crc32.ChecksumIEEE(block); got != meta.CRC {
		return nil, fmt.Errorf("relstore: segment %d checksum mismatch: file says %08x, block hashes to %08x", segIdx, meta.CRC, got)
	}
	data := make([]Row, 0, meta.Rows)
	for len(block) > 0 {
		nl := bytes.IndexByte(block, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("relstore: segment %d: truncated row line", segIdx)
		}
		row, err := UnmarshalRowJSON(block[:nl])
		if err != nil {
			return nil, err
		}
		if err := schema.Validate(row); err != nil {
			return nil, fmt.Errorf("relstore: segment %d row %d: %w", segIdx, len(data), err)
		}
		data = append(data, row)
		block = block[nl+1:]
	}
	if len(data) != meta.Rows {
		return nil, fmt.Errorf("relstore: segment %d holds %d rows, header says %d", segIdx, len(data), meta.Rows)
	}
	return data, nil
}

// readTypedV2 reads the segment blocks following an already-parsed v2
// header line, materializing the whole relation.
func readTypedV2(br *bufio.Reader, hdr relHeader) (*Rows, error) {
	schema, err := schemaFromSerial(hdr.Schema)
	if err != nil {
		return nil, err
	}
	data := make([]Row, 0, hdr.Rows)
	for i, meta := range hdr.Segments {
		block := make([]byte, meta.Bytes)
		if _, err := io.ReadFull(br, block); err != nil {
			return nil, fmt.Errorf("relstore: read segment %d: %w", i, err)
		}
		rows, err := parseSegmentBlock(block, meta, schema, i)
		if err != nil {
			return nil, err
		}
		data = append(data, rows...)
	}
	if len(data) != hdr.Rows {
		return nil, fmt.Errorf("relstore: v2 relation holds %d rows, header says %d", len(data), hdr.Rows)
	}
	return &Rows{Schema: schema, Data: data}, nil
}

// SegmentSet is a lazily-loaded, budgeted view over a v2 segment file: the
// header is parsed eagerly, segment blocks load on first access and stay
// resident until the byte budget forces least-recently-used eviction. A
// relation larger than the budget can still be scanned end to end — each
// segment is resident while being read and evicted as later ones load.
// SegmentSet is safe for concurrent use.
type SegmentSet struct {
	// Immutable after OpenSegments (no lock needed to read).
	f       *os.File
	schema  *Schema
	hdr     relHeader
	offsets []int64
	budget  int64 // max resident block bytes; <= 0 means unlimited

	mu       sync.Mutex
	resident map[int]*segEntry
	access   int64 // LRU clock
	bytes    int64 // resident block bytes
}

type segEntry struct {
	rows []Row
	size int64
	last int64
}

// OpenSegments opens a v2 segment file for lazy, budgeted access.
// budgetBytes caps the resident segment bytes (on-disk block size as the
// proxy); <= 0 means unlimited. The file must be v2 — v1 files have no
// segment directory to seek by; read those with ReadTyped.
func OpenSegments(path string, budgetBytes int64) (*SegmentSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	hl, err := readLine(br)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("relstore: open segments: %w", err)
	}
	if len(hl) == 0 || hl[0] != '{' {
		f.Close()
		return nil, fmt.Errorf("relstore: %s is not a v2 segment file (header starts %q); use ReadTyped", path, firstByte(hl))
	}
	var hdr relHeader
	if err := json.Unmarshal(hl, &hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("relstore: parse v2 header: %w", err)
	}
	if hdr.Rel != 2 {
		f.Close()
		return nil, fmt.Errorf("relstore: unsupported .rel version %d", hdr.Rel)
	}
	schema, err := schemaFromSerial(hdr.Schema)
	if err != nil {
		f.Close()
		return nil, err
	}
	offsets := make([]int64, len(hdr.Segments))
	off := int64(len(hl) + 1)
	for i, m := range hdr.Segments {
		offsets[i] = off
		off += m.Bytes
	}
	return &SegmentSet{
		f: f, schema: schema, hdr: hdr, offsets: offsets,
		resident: make(map[int]*segEntry), budget: budgetBytes,
	}, nil
}

// Close releases the underlying file.
func (s *SegmentSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resident = map[int]*segEntry{}
	s.bytes = 0
	return s.f.Close()
}

// Schema returns the relation schema.
func (s *SegmentSet) Schema() *Schema { return s.schema }

// Len returns the total row count from the header, without loading data.
func (s *SegmentSet) Len() int { return s.hdr.Rows }

// NumSegments returns the segment count.
func (s *SegmentSet) NumSegments() int { return len(s.hdr.Segments) }

// Resident returns the currently resident segment count and bytes.
func (s *SegmentSet) Resident() (segments int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.resident), s.bytes
}

// segment returns segment i's rows, loading and evicting as needed. The
// returned slice must be treated read-only.
func (s *SegmentSet) segment(i int) ([]Row, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.access++
	if e, ok := s.resident[i]; ok {
		e.last = s.access
		mSegHits.Inc()
		return e.rows, nil
	}
	meta := s.hdr.Segments[i]
	block := make([]byte, meta.Bytes)
	if _, err := s.f.ReadAt(block, s.offsets[i]); err != nil {
		return nil, fmt.Errorf("relstore: load segment %d: %w", i, err)
	}
	rows, err := parseSegmentBlock(block, meta, s.schema, i)
	if err != nil {
		return nil, err
	}
	mSegLoads.Inc()
	s.resident[i] = &segEntry{rows: rows, size: meta.Bytes, last: s.access}
	s.bytes += meta.Bytes
	// Evict least-recently-used segments past the budget, never the one
	// just loaded.
	for s.budget > 0 && s.bytes > s.budget && len(s.resident) > 1 {
		victim, oldest := -1, s.access+1
		for j, e := range s.resident {
			if j != i && e.last < oldest {
				victim, oldest = j, e.last
			}
		}
		if victim < 0 {
			break
		}
		s.bytes -= s.resident[victim].size
		delete(s.resident, victim)
		mSegEvicts.Inc()
	}
	return rows, nil
}

// Segment materializes segment i as a Rows snapshot (rows cloned, safe to
// retain).
func (s *SegmentSet) Segment(i int) (*Rows, error) {
	rows, err := s.segment(i)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for j, r := range rows {
		out[j] = r.Clone()
	}
	return &Rows{Schema: s.schema, Data: out}, nil
}

// Scan calls fn for every row in segment order, loading segments on demand
// under the budget. The row passed to fn must not be mutated or retained.
// Scanning stops early if fn returns false.
func (s *SegmentSet) Scan(fn func(Row) bool) error {
	for i := range s.hdr.Segments {
		rows, err := s.segment(i)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if !fn(r) {
				return nil
			}
		}
	}
	return nil
}

// Select evaluates pred over the relation segment by segment — the
// segment-mode scan path: each segment loads, filters through the columnar
// kernels, and may be evicted before the next loads, so the peak resident
// set is bounded by the budget plus the (small) matching output.
func (s *SegmentSet) Select(pred Pred) (*Rows, error) {
	var out []Row
	for i := range s.hdr.Segments {
		rows, err := s.segment(i)
		if err != nil {
			return nil, err
		}
		part, err := Select(&Rows{Schema: s.schema, Data: rows}, pred)
		if err != nil {
			return nil, err
		}
		for _, r := range part.Data {
			out = append(out, r.Clone())
		}
	}
	return &Rows{Schema: s.schema, Data: out}, nil
}

// Rows materializes the whole relation, ignoring the budget.
func (s *SegmentSet) Rows() (*Rows, error) {
	out := make([]Row, 0, s.hdr.Rows)
	err := s.Scan(func(r Row) bool {
		out = append(out, r.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return &Rows{Schema: s.schema, Data: out}, nil
}

func firstByte(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return string(b[:1])
}
