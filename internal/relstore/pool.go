package relstore

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Chunked execution configuration. Operators process relations in chunks of
// BatchSize rows; independent chunks are evaluated by a bounded goroutine
// pool of Parallelism workers. Both knobs are process-wide and safe to set
// concurrently; changes apply to operator calls that start afterwards.

// DefaultBatchSize is the chunk width operators use unless reconfigured:
// large enough to amortize per-chunk setup (vector construction, pool
// dispatch), small enough that a chunk's working set stays cache-resident.
const DefaultBatchSize = 4096

var (
	batchSize   atomic.Int64
	parallelism atomic.Int64
)

func init() {
	batchSize.Store(DefaultBatchSize)
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	parallelism.Store(int64(p))
}

// BatchSize returns the current operator chunk width.
func BatchSize() int { return int(batchSize.Load()) }

// SetBatchSize reconfigures the operator chunk width. Values below 1 reset
// to DefaultBatchSize.
func SetBatchSize(n int) {
	if n < 1 {
		n = DefaultBatchSize
	}
	batchSize.Store(int64(n))
}

// Parallelism returns the worker bound for chunked operators.
func Parallelism() int { return int(parallelism.Load()) }

// SetParallelism bounds the goroutine pool chunked operators fan out across.
// 1 disables parallelism (chunks evaluate inline, in order); values below 1
// reset to the default bound of min(GOMAXPROCS, 8).
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	parallelism.Store(int64(n))
}

// chunkBounds splits [0, n) into BatchSize-wide half-open intervals.
func chunkBounds(n int) [][2]int {
	w := BatchSize()
	if n == 0 {
		return nil
	}
	out := make([][2]int, 0, (n+w-1)/w)
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runChunks evaluates fn(ci) for every chunk index across the bounded worker
// pool. Workers pull chunk indexes from a shared atomic counter, so the pool
// stays busy even when chunk costs are skewed. If several chunks fail, the
// error of the lowest-indexed chunk wins — the same error a sequential
// left-to-right evaluation would have surfaced first, which keeps error
// behavior deterministic under parallelism.
func runChunks(nChunks int, fn func(ci int) error) error {
	if nChunks == 0 {
		return nil
	}
	workers := Parallelism()
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for ci := 0; ci < nChunks; ci++ {
			if err := fn(ci); err != nil {
				return err
			}
		}
		return nil
	}
	mBatchParallel.Inc()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		errCi   = nChunks
		callErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				if err := fn(ci); err != nil {
					mu.Lock()
					if ci < errCi {
						errCi, callErr = ci, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return callErr
}
