package relstore

import (
	"fmt"
	"hash/fnv"
)

// Hash sharding splits a relation into disjoint sub-relations by hash of an
// entity-key column, so scans and joins fan out across the worker pool with
// each worker owning a shard. Sharding is opt-in: callers that hold a plain
// Table or Rows keep the single-shard behavior, while callers that build a
// ShardedTable (or partition with ShardRows) get shard-parallel scans whose
// output is deterministic — shards enumerate in shard order, rows within a
// shard in insertion order, so the same inserts always yield the same scan.

// ShardOf returns the shard index of a key value for an n-way sharding:
// FNV-1a over the value's collision-safe key form. NULL keys map to shard 0.
func ShardOf(v Value, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(v.Key()))
	return int(h.Sum32() % uint32(n))
}

// ShardRows hash-partitions a relation into n sub-relations by the named
// column. Every row lands in exactly one shard; within a shard, input order
// is preserved.
func ShardRows(in *Rows, col string, n int) ([]*Rows, error) {
	ci := in.Schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: shard: no column %q", col)
	}
	if n < 1 {
		n = 1
	}
	shards := make([]*Rows, n)
	for i := range shards {
		shards[i] = &Rows{Schema: in.Schema}
	}
	for _, r := range in.Data {
		s := ShardOf(r[ci], n)
		shards[s].Data = append(shards[s].Data, r)
	}
	return shards, nil
}

// ShardedTable is a relation hash-sharded by an entity-key column across
// independent Tables. Inserts route by key hash; Select fans out across the
// pool, one task per shard, and concatenates shard results in shard order.
// Because each shard is its own Table with its own lock, shard-parallel
// reads never contend on a single table mutex, and concurrent writers to
// different shards proceed independently.
type ShardedTable struct {
	name   string
	schema *Schema
	keyCol string
	ki     int
	shards []*Table
}

// NewShardedTable creates an empty n-way sharded table keyed by keyCol.
func NewShardedTable(name string, schema *Schema, keyCol string, n int) (*ShardedTable, error) {
	ki := schema.Index(keyCol)
	if ki < 0 {
		return nil, fmt.Errorf("relstore: sharded table %s: no key column %q", name, keyCol)
	}
	if n < 1 {
		n = 1
	}
	st := &ShardedTable{name: name, schema: schema, keyCol: keyCol, ki: ki, shards: make([]*Table, n)}
	for i := range st.shards {
		st.shards[i] = NewTable(fmt.Sprintf("%s#%d", name, i), schema)
	}
	return st, nil
}

// Name returns the logical table name.
func (s *ShardedTable) Name() string { return s.name }

// Schema returns the table schema.
func (s *ShardedTable) Schema() *Schema { return s.schema }

// KeyColumn returns the entity-key column rows are sharded by.
func (s *ShardedTable) KeyColumn() string { return s.keyCol }

// NumShards returns the shard count.
func (s *ShardedTable) NumShards() int { return len(s.shards) }

// Shard returns the i-th shard's backing table, for callers that need
// per-shard indexes or direct scans.
func (s *ShardedTable) Shard(i int) *Table { return s.shards[i] }

// Insert routes the row to its key's shard.
func (s *ShardedTable) Insert(r Row) error {
	if len(r) != s.schema.Arity() {
		return fmt.Errorf("relstore: insert into %s: row arity %d != schema arity %d", s.name, len(r), s.schema.Arity())
	}
	mShardInserts.Inc()
	return s.shards[ShardOf(r[s.ki], len(s.shards))].Insert(r)
}

// InsertAll inserts each row, stopping at the first error.
func (s *ShardedTable) InsertAll(rows []Row) error {
	for _, r := range rows {
		if err := s.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of rows across shards.
func (s *ShardedTable) Len() int {
	n := 0
	for _, t := range s.shards {
		n += t.Len()
	}
	return n
}

// Select evaluates pred over every shard in parallel — one pool task per
// shard, each using the shard table's own columnar scan (with index pushdown
// if the shard carries indexes) — and concatenates the shard results in
// shard order.
func (s *ShardedTable) Select(pred Pred) (*Rows, error) {
	mShardSelects.Inc()
	parts := make([]*Rows, len(s.shards))
	err := runChunks(len(s.shards), func(i int) error {
		rows, err := s.shards[i].Select(pred)
		if err != nil {
			return err
		}
		parts[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, p := range parts {
		out = append(out, p.Data...)
	}
	return &Rows{Schema: s.schema, Data: out}, nil
}

// Rows snapshots the whole sharded relation, shard order then insertion
// order.
func (s *ShardedTable) Rows() *Rows {
	var out []Row
	for _, t := range s.shards {
		out = append(out, t.Rows().Data...)
	}
	return &Rows{Schema: s.schema, Data: out}
}

// CreateIndex builds the named hash index on every shard.
func (s *ShardedTable) CreateIndex(col string) error {
	for _, t := range s.shards {
		if err := t.CreateIndex(col); err != nil {
			return err
		}
	}
	return nil
}

// ShardedJoin hash-partitions both relations by their join keys into
// Parallelism shards and joins shard pairs in parallel — rows can only match
// within a shard, since both sides use the same key hash. Output is
// deterministic (shard order, then left order within each shard) but
// shard-grouped, not left-relation order; callers needing the sequential
// Join order should use Join, which parallelizes the probe without
// re-partitioning.
func ShardedJoin(left, right *Rows, leftCol, rightCol, rightPrefix string) (*Rows, error) {
	mShardJoins.Inc()
	n := Parallelism()
	lShards, err := ShardRows(left, leftCol, n)
	if err != nil {
		return nil, fmt.Errorf("relstore: sharded join: %w", err)
	}
	rShards, err := ShardRows(right, rightCol, n)
	if err != nil {
		return nil, fmt.Errorf("relstore: sharded join: %w", err)
	}
	schema, err := joinSchema(left.Schema, right.Schema, rightPrefix)
	if err != nil {
		return nil, err
	}
	parts := make([]*Rows, n)
	err = runChunks(n, func(i int) error {
		rows, err := Join(lShards[i], rShards[i], leftCol, rightCol, rightPrefix)
		if err != nil {
			return err
		}
		parts[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, p := range parts {
		out = append(out, p.Data...)
	}
	return &Rows{Schema: schema, Data: out}, nil
}
