package relstore

import "fmt"

// Columnar predicate evaluation. Operators hand each chunk of a relation to
// evalPredChunk, which walks the predicate tree once per chunk instead of
// once per row: leaf predicates over plain column/literal operands run as
// typed loops over lazily-built column vectors, and only predicates the
// kernels cannot express (CASE guards, arithmetic comparands, nested
// sub-expressions) fall back to per-row evaluation — restricted to the rows
// still selected, so AND/OR short-circuiting keeps the row-at-a-time error
// semantics: a conjunct is never evaluated for a row an earlier conjunct
// already rejected.

// chunkCtx is one chunk of a relation under columnar evaluation: the source
// rows plus lazily-built vectors for the columns the predicate touches.
type chunkCtx struct {
	in     *Rows
	lo, hi int
	vecs   []*Vector
}

func newChunkCtx(in *Rows, lo, hi int) *chunkCtx {
	return &chunkCtx{in: in, lo: lo, hi: hi, vecs: make([]*Vector, in.Schema.Arity())}
}

// vec returns the vector for column ci, building it on first use.
func (c *chunkCtx) vec(ci int) *Vector {
	if c.vecs[ci] == nil {
		c.vecs[ci] = BatchFromRows(c.in, c.lo, c.hi, []int{ci}).Vecs[ci]
	}
	return c.vecs[ci]
}

func (c *chunkCtx) len() int { return c.hi - c.lo }

// evalPredChunk sets out[i] to pred(row lo+i) for every i with sel[i] true
// and to false elsewhere. sel and out may alias distinct slices of the same
// length as the chunk. A nil pred selects everything in sel.
func evalPredChunk(p Pred, c *chunkCtx, sel, out []bool) error {
	switch q := p.(type) {
	case nil:
		copy(out, sel)
		return nil
	case BoolLit:
		for i := range out {
			out[i] = sel[i] && q.V
		}
		return nil
	case AndPred:
		copy(out, sel)
		tmp := make([]bool, len(out))
		for _, sub := range q.Ps {
			if err := evalPredChunk(sub, c, out, tmp); err != nil {
				return err
			}
			copy(out, tmp)
		}
		return nil
	case OrPred:
		pending := make([]bool, len(sel))
		copy(pending, sel)
		for i := range out {
			out[i] = false
		}
		tmp := make([]bool, len(out))
		for _, sub := range q.Ps {
			if err := evalPredChunk(sub, c, pending, tmp); err != nil {
				return err
			}
			live := false
			for i := range tmp {
				if tmp[i] {
					out[i] = true
					pending[i] = false
				}
				live = live || pending[i]
			}
			if !live {
				break
			}
		}
		return nil
	case NotPred:
		tmp := make([]bool, len(out))
		if err := evalPredChunk(q.P, c, sel, tmp); err != nil {
			return err
		}
		for i := range out {
			out[i] = sel[i] && !tmp[i]
		}
		return nil
	case NullPred:
		if col, ok := q.E.(ColRef); ok {
			ci := c.in.Schema.Index(col.Name)
			if ci < 0 {
				return fmt.Errorf("relstore: unknown column %q in (%s)", col.Name, c.in.Schema.NameList())
			}
			v := c.vec(ci)
			for i := range out {
				out[i] = sel[i] && (v.Null(i) != q.Negate)
			}
			return nil
		}
		return evalPredRows(p, c, sel, out)
	case InPred:
		if col, ok := q.E.(ColRef); ok {
			ci := c.in.Schema.Index(col.Name)
			if ci < 0 {
				return fmt.Errorf("relstore: unknown column %q in (%s)", col.Name, c.in.Schema.NameList())
			}
			v := c.vec(ci)
			for i := range out {
				out[i] = false
				if !sel[i] {
					continue
				}
				val := v.Value(i)
				for _, cand := range q.List {
					if val.Equal(cand) {
						out[i] = true
						break
					}
				}
			}
			return nil
		}
		return evalPredRows(p, c, sel, out)
	case CmpPred:
		lv, lok := cmpOperand(q.L, c)
		rv, rok := cmpOperand(q.R, c)
		if lok && rok {
			return cmpKernel(q.Op, lv, rv, c, sel, out)
		}
		return evalPredRows(p, c, sel, out)
	default:
		return evalPredRows(p, c, sel, out)
	}
}

// evalPredRows is the per-row fallback over the selected rows of a chunk.
func evalPredRows(p Pred, c *chunkCtx, sel, out []bool) error {
	for i := range out {
		out[i] = false
		if !sel[i] {
			continue
		}
		ok, err := p.Eval(c.in.Data[c.lo+i], c.in.Schema)
		if err != nil {
			return err
		}
		out[i] = ok
	}
	return nil
}

// operand is a resolved comparison side: a column vector or a constant.
type operand struct {
	vec *Vector
	lit Value
}

func (o operand) value(i int) Value {
	if o.vec != nil {
		return o.vec.Value(i)
	}
	return o.lit
}

// cmpOperand resolves an expression to a kernel operand when it is a plain
// column reference or literal; anything else forces the row fallback.
func cmpOperand(e Expr, c *chunkCtx) (operand, bool) {
	switch t := e.(type) {
	case ColRef:
		ci := c.in.Schema.Index(t.Name)
		if ci < 0 {
			return operand{}, false
		}
		return operand{vec: c.vec(ci)}, true
	case LitExpr:
		return operand{lit: t.V}, true
	}
	return operand{}, false
}

// cmpKernel evaluates a comparison over resolved operands. The typed fast
// paths cover the dominant shapes — a pure int, float, or string vector
// against a non-NULL literal of the matching kind — and everything else goes
// through the exact Value semantics (Equal for =/<>, Compare for the ordered
// operators, NULLs collapsing to false).
func cmpKernel(op CmpOp, l, r operand, c *chunkCtx, sel, out []bool) error {
	// Fast path: pure typed vector vs literal. A NULL cell against the
	// non-NULL literal follows CmpPred semantics: <> holds (Equal is false),
	// every other operator does not.
	if l.vec != nil && r.vec == nil && l.vec.Pure() && !r.lit.IsNull() {
		v, lit := l.vec, r.lit
		null := op == CmpNe
		switch {
		case v.kind == KindInt && lit.Kind() == KindInt:
			y := lit.AsInt()
			for i := range out {
				switch {
				case !sel[i]:
					out[i] = false
				case v.Null(i):
					out[i] = null
				default:
					out[i] = intCmp(op, v.ints[i], y)
				}
			}
			return nil
		case v.kind == KindFloat && lit.IsNumeric(),
			v.kind == KindInt && lit.Kind() == KindFloat:
			y := lit.AsFloat()
			var xs func(i int) float64
			if v.kind == KindInt {
				xs = func(i int) float64 { return float64(v.ints[i]) }
			} else {
				xs = func(i int) float64 { return v.floats[i] }
			}
			for i := range out {
				switch {
				case !sel[i]:
					out[i] = false
				case v.Null(i):
					out[i] = null
				default:
					out[i] = floatCmp(op, xs(i), y)
				}
			}
			return nil
		case v.kind == KindString && lit.Kind() == KindString:
			y := lit.AsString()
			for i := range out {
				switch {
				case !sel[i]:
					out[i] = false
				case v.Null(i):
					out[i] = null
				default:
					out[i] = strCmp(op, v.strs[i], y)
				}
			}
			return nil
		}
	}
	// General path: exact Value semantics per selected row.
	for i := range out {
		out[i] = false
		if !sel[i] {
			continue
		}
		lv, rv := l.value(i), r.value(i)
		switch op {
		case CmpEq:
			out[i] = lv.Equal(rv)
			continue
		case CmpNe:
			out[i] = !lv.Equal(rv)
			continue
		}
		if lv.IsNull() || rv.IsNull() {
			continue
		}
		if lv.Kind() != rv.Kind() && !(lv.IsNumeric() && rv.IsNumeric()) {
			return fmt.Errorf("relstore: ordered comparison between %s and %s", lv.Kind(), rv.Kind())
		}
		cmp := lv.Compare(rv)
		switch op {
		case CmpLt:
			out[i] = cmp < 0
		case CmpLe:
			out[i] = cmp <= 0
		case CmpGt:
			out[i] = cmp > 0
		case CmpGe:
			out[i] = cmp >= 0
		default:
			return fmt.Errorf("relstore: unknown comparison op %d", op)
		}
	}
	return nil
}

func intCmp(op CmpOp, x, y int64) bool {
	switch op {
	case CmpEq:
		return x == y
	case CmpNe:
		return x != y
	case CmpLt:
		return x < y
	case CmpLe:
		return x <= y
	case CmpGt:
		return x > y
	default:
		return x >= y
	}
}

func floatCmp(op CmpOp, x, y float64) bool {
	switch op {
	case CmpEq:
		return x == y
	case CmpNe:
		return x != y
	case CmpLt:
		return x < y
	case CmpLe:
		return x <= y
	case CmpGt:
		return x > y
	default:
		return x >= y
	}
}

func strCmp(op CmpOp, x, y string) bool {
	switch op {
	case CmpEq:
		return x == y
	case CmpNe:
		return x != y
	case CmpLt:
		return x < y
	case CmpLe:
		return x <= y
	case CmpGt:
		return x > y
	default:
		return x >= y
	}
}

// predMask evaluates pred over all of in, chunk-parallel, returning the
// selection mask. It is the scan kernel behind Select, Table.Select, and the
// sharded scans.
func predMask(pred Pred, in *Rows) ([]bool, error) {
	n := len(in.Data)
	mask := make([]bool, n)
	if pred == nil {
		for i := range mask {
			mask[i] = true
		}
		return mask, nil
	}
	bounds := chunkBounds(n)
	err := runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		c := newChunkCtx(in, lo, hi)
		sel := make([]bool, hi-lo)
		for i := range sel {
			sel[i] = true
		}
		return evalPredChunk(pred, c, sel, mask[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	return mask, nil
}
