package relstore

import "guava/internal/obs"

// Relational-operator invocation counters. relstore's operators take no
// context, so they record into the process-wide obs.Default registry;
// the instruments are package vars so the hot path is one atomic add
// with no registry lookup. Exported under the "relstore.ops.<name>"
// metric names documented in OBSERVABILITY.md.
var (
	opSelect   = obs.Default.Counter("relstore.ops.select")
	opProject  = obs.Default.Counter("relstore.ops.project")
	opDerive   = obs.Default.Counter("relstore.ops.derive")
	opExtend   = obs.Default.Counter("relstore.ops.extend")
	opRename   = obs.Default.Counter("relstore.ops.rename")
	opJoin     = obs.Default.Counter("relstore.ops.join")
	opLeftJoin = obs.Default.Counter("relstore.ops.left_join")
	opUnionAll = obs.Default.Counter("relstore.ops.union_all")
	opUnion    = obs.Default.Counter("relstore.ops.union")
	opDistinct = obs.Default.Counter("relstore.ops.distinct")
	opSortBy   = obs.Default.Counter("relstore.ops.sort_by")
	opPivot    = obs.Default.Counter("relstore.ops.pivot")
	opUnpivot  = obs.Default.Counter("relstore.ops.unpivot")
	opGroupBy  = obs.Default.Counter("relstore.ops.group_by")
)

// Columnar-execution counters, under "relstore.batch.*": chunks and rows
// that went through the chunked batch kernels, and how many operator calls
// actually fanned out across the worker pool (multi-chunk inputs with
// Parallelism > 1).
var (
	mBatchChunks   = obs.Default.Counter("relstore.batch.chunks")
	mBatchRows     = obs.Default.Counter("relstore.batch.rows")
	mBatchParallel = obs.Default.Counter("relstore.batch.parallel_ops")
)

// Sharding counters, under "relstore.shard.*": rows routed into shards,
// sharded scans/selects, and sharded joins.
var (
	mShardInserts = obs.Default.Counter("relstore.shard.inserts")
	mShardSelects = obs.Default.Counter("relstore.shard.selects")
	mShardJoins   = obs.Default.Counter("relstore.shard.joins")
)

// Segment-store counters, under "relstore.segment.*": v2 segment blocks
// written, lazily loaded, served from the resident cache, and evicted under
// the memory budget.
var (
	mSegWrites = obs.Default.Counter("relstore.segment.writes")
	mSegLoads  = obs.Default.Counter("relstore.segment.loads")
	mSegHits   = obs.Default.Counter("relstore.segment.hits")
	mSegEvicts = obs.Default.Counter("relstore.segment.evictions")
)
