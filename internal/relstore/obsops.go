package relstore

import "guava/internal/obs"

// Relational-operator invocation counters. relstore's operators take no
// context, so they record into the process-wide obs.Default registry;
// the instruments are package vars so the hot path is one atomic add
// with no registry lookup. Exported under the "relstore.ops.<name>"
// metric names documented in OBSERVABILITY.md.
var (
	opSelect   = obs.Default.Counter("relstore.ops.select")
	opProject  = obs.Default.Counter("relstore.ops.project")
	opDerive   = obs.Default.Counter("relstore.ops.derive")
	opExtend   = obs.Default.Counter("relstore.ops.extend")
	opRename   = obs.Default.Counter("relstore.ops.rename")
	opJoin     = obs.Default.Counter("relstore.ops.join")
	opLeftJoin = obs.Default.Counter("relstore.ops.left_join")
	opUnionAll = obs.Default.Counter("relstore.ops.union_all")
	opUnion    = obs.Default.Counter("relstore.ops.union")
	opDistinct = obs.Default.Counter("relstore.ops.distinct")
	opSortBy   = obs.Default.Counter("relstore.ops.sort_by")
	opPivot    = obs.Default.Counter("relstore.ops.pivot")
	opUnpivot  = obs.Default.Counter("relstore.ops.unpivot")
	opGroupBy  = obs.Default.Counter("relstore.ops.group_by")
)
