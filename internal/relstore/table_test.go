package relstore

import (
	"strings"
	"testing"
)

func procSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "ProcedureID", Type: KindInt, NotNull: true},
		Column{Name: "Smoking", Type: KindString},
		Column{Name: "PacksPerDay", Type: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(Column{Name: "A", Type: KindInt}, Column{Name: "A", Type: KindString})
	if err == nil {
		t.Fatal("duplicate column names must be rejected")
	}
	_, err = NewSchema(Column{Name: "", Type: KindInt})
	if err == nil {
		t.Fatal("empty column name must be rejected")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := procSchema(t)
	if s.Index("Smoking") != 1 {
		t.Errorf("Index(Smoking) = %d, want 1", s.Index("Smoking"))
	}
	if s.Index("nope") != -1 {
		t.Error("missing column must index to -1")
	}
	if !s.Has("ProcedureID") || s.Has("procedureid") {
		t.Error("Has must be case-sensitive")
	}
	if got := s.NameList(); got != "ProcedureID, Smoking, PacksPerDay" {
		t.Errorf("NameList = %q", got)
	}
}

func TestSchemaProjectRenameAppend(t *testing.T) {
	s := procSchema(t)
	p, err := s.Project("PacksPerDay", "ProcedureID")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Columns[0].Name != "PacksPerDay" {
		t.Errorf("project wrong: %v", p.Names())
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting a missing column must fail")
	}
	r, err := s.Rename("Smoking", "SmokingStatus")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("SmokingStatus") || r.Has("Smoking") {
		t.Error("rename did not take")
	}
	if s.Has("SmokingStatus") {
		t.Error("rename must not mutate the original")
	}
	a, err := s.Append(Column{Name: "Alcohol", Type: KindString})
	if err != nil {
		t.Fatal(err)
	}
	if a.Arity() != 4 {
		t.Error("append did not add column")
	}
	if _, err := s.Append(Column{Name: "Smoking", Type: KindInt}); err == nil {
		t.Error("appending a duplicate name must fail")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := procSchema(t)
	ok := []Row{
		{Int(1), Str("Current"), Float(1.5)},
		{Int(2), Null(), Null()},
		{Int(3), Str("None"), Int(2)}, // int accepted for float column
	}
	for _, r := range ok {
		if err := s.Validate(r); err != nil {
			t.Errorf("Validate(%v): %v", r, err)
		}
	}
	bad := []Row{
		{Null(), Str("x"), Null()},      // NULL in NOT NULL
		{Int(1), Int(5), Null()},        // wrong kind
		{Int(1), Str("x")},              // arity
		{Str("1"), Str("x"), Float(0)},  // string where int
		{Int(1), Str("x"), Str("heal")}, // string where float
	}
	for _, r := range bad {
		if err := s.Validate(r); err == nil {
			t.Errorf("Validate(%v): expected error", r)
		}
	}
}

func TestSchemaDDL(t *testing.T) {
	s := procSchema(t)
	ddl := s.DDL()
	if !strings.Contains(ddl, "ProcedureID INTEGER NOT NULL") || !strings.Contains(ddl, "Smoking TEXT") {
		t.Errorf("DDL = %q", ddl)
	}
}

func TestTableInsertAndScan(t *testing.T) {
	tab := NewTable("Procedures", procSchema(t))
	if err := tab.Insert(Row{Int(1), Str("Current"), Float(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Row{Int(2), Str("None"), Float(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Row{Int(1), Str("x")}); err == nil {
		t.Fatal("arity-violating insert must fail")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	var seen int
	tab.Scan(func(r Row) bool { seen++; return true })
	if seen != 2 {
		t.Errorf("scan visited %d rows", seen)
	}
	seen = 0
	tab.Scan(func(r Row) bool { seen++; return false })
	if seen != 1 {
		t.Error("scan must stop when fn returns false")
	}
}

func TestTableInsertClones(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	r := Row{Int(1), Str("Current"), Float(2)}
	if err := tab.Insert(r); err != nil {
		t.Fatal(err)
	}
	r[1] = Str("MUTATED")
	rows := tab.Rows()
	if rows.Data[0][1].AsString() != "Current" {
		t.Error("Insert must clone the row")
	}
}

func TestTableInsertMap(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	err := tab.InsertMap(map[string]Value{"ProcedureID": Int(7), "Smoking": Str("Prev")})
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows()
	if !rows.Data[0][2].IsNull() {
		t.Error("absent column must be NULL")
	}
	if err := tab.InsertMap(map[string]Value{"Nope": Int(1)}); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestTableUpdateDelete(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	for i := 1; i <= 4; i++ {
		if err := tab.Insert(Row{Int(int64(i)), Str("Current"), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tab.Update(Cmp(CmpGt, Col("ProcedureID"), Lit(Int(2))), func(r Row) Row {
		r[1] = Str("None")
		return r
	})
	if err != nil || n != 2 {
		t.Fatalf("Update = (%d, %v), want (2, nil)", n, err)
	}
	got, err := tab.Lookup("Smoking", Str("None"))
	if err != nil || len(got) != 2 {
		t.Fatalf("Lookup after update: %d rows, err %v", len(got), err)
	}
	n, err = tab.Delete(Eq("Smoking", Str("None")))
	if err != nil || n != 2 {
		t.Fatalf("Delete = (%d, %v)", n, err)
	}
	if tab.Len() != 2 {
		t.Errorf("Len after delete = %d", tab.Len())
	}
}

func TestTableIndexLookupMatchesScan(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	for i := 0; i < 100; i++ {
		status := "None"
		if i%3 == 0 {
			status = "Current"
		}
		if err := tab.Insert(Row{Int(int64(i)), Str(status), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	scanned, err := tab.Lookup("Smoking", Str("Current"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("Smoking"); err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex("Smoking") {
		t.Fatal("index not registered")
	}
	indexed, err := tab.Lookup("Smoking", Str("Current"))
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != len(scanned) {
		t.Fatalf("indexed lookup %d rows, scan %d", len(indexed), len(scanned))
	}
	// Index must stay fresh across insert, update, delete.
	if err := tab.Insert(Row{Int(1000), Str("Current"), Float(1)}); err != nil {
		t.Fatal(err)
	}
	indexed, _ = tab.Lookup("Smoking", Str("Current"))
	if len(indexed) != len(scanned)+1 {
		t.Error("index stale after insert")
	}
	if _, err := tab.Delete(Eq("ProcedureID", Int(1000))); err != nil {
		t.Fatal(err)
	}
	indexed, _ = tab.Lookup("Smoking", Str("Current"))
	if len(indexed) != len(scanned) {
		t.Error("index stale after delete")
	}
	if err := tab.CreateIndex("Nope"); err == nil {
		t.Error("index on missing column must fail")
	}
}

// TestTableSelectUsesIndex: Select over an indexed equality returns the same
// rows as a full scan, with and without residual conjuncts, mirrored
// literals, and non-indexed fallbacks.
func TestTableSelectUsesIndex(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	for i := 0; i < 200; i++ {
		status := []string{"None", "Current", "Previous"}[i%3]
		if err := tab.Insert(Row{Int(int64(i)), Str(status), Float(float64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.CreateIndex("Smoking"); err != nil {
		t.Fatal(err)
	}
	preds := []Pred{
		Eq("Smoking", Str("Current")),
		Cmp(CmpEq, Lit(Str("Current")), Col("Smoking")), // mirrored
		And(Eq("Smoking", Str("Current")), Cmp(CmpGt, Col("PacksPerDay"), Lit(Float(3)))),
		And(Cmp(CmpLt, Col("ProcedureID"), Lit(Int(50))), Eq("Smoking", Str("None"))),
		Eq("PacksPerDay", Float(2)),                                   // not indexed: scan
		Or(Eq("Smoking", Str("None")), Eq("Smoking", Str("Current"))), // OR: scan
		Eq("Smoking", Null()),                                         // NULL probe: scan
	}
	for i, p := range preds {
		fast, err := tab.Select(p)
		if err != nil {
			t.Fatalf("pred %d: %v", i, err)
		}
		slow, err := Select(tab.Rows(), p)
		if err != nil {
			t.Fatalf("pred %d: %v", i, err)
		}
		if !fast.EqualUnordered(slow) {
			t.Errorf("pred %d: indexed select differs (%d vs %d rows)", i, fast.Len(), slow.Len())
		}
	}
}

func TestTableTruncate(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	if err := tab.Insert(Row{Int(1), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("ProcedureID"); err != nil {
		t.Fatal(err)
	}
	tab.Truncate()
	if tab.Len() != 0 {
		t.Error("truncate left rows")
	}
	rows, _ := tab.Lookup("ProcedureID", Int(1))
	if len(rows) != 0 {
		t.Error("index stale after truncate")
	}
}

func TestDBLifecycle(t *testing.T) {
	db := NewDB("cori")
	s := procSchema(t)
	if _, err := db.CreateTable("P", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("P", s); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if _, err := db.Table("P"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("Q"); err == nil {
		t.Fatal("missing table must fail")
	}
	if _, err := db.EnsureTable("P", s); err != nil {
		t.Fatal(err)
	}
	other := MustSchema(Column{Name: "X", Type: KindInt})
	if _, err := db.EnsureTable("P", other); err == nil {
		t.Fatal("EnsureTable with different schema must fail")
	}
	if _, err := db.CreateTable("A", s); err != nil {
		t.Fatal(err)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "P" {
		t.Errorf("TableNames = %v", names)
	}
	if err := db.Drop("A"); err != nil {
		t.Fatal(err)
	}
	if db.Has("A") {
		t.Error("dropped table still present")
	}
	if err := db.Drop("A"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable("T", procSchema(t))
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := tab.Insert(Row{Int(int64(g*1000 + i)), Str("Current"), Float(1)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
		go func() {
			for i := 0; i < 50; i++ {
				tab.Scan(func(Row) bool { return true })
				tab.Len()
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 200 {
		t.Errorf("Len = %d, want 200", tab.Len())
	}
}
