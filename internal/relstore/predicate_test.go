package relstore

import (
	"strings"
	"testing"
)

func evalP(t *testing.T, p Pred, r Row) bool {
	t.Helper()
	ok, err := p.Eval(r, exprSchema)
	if err != nil {
		t.Fatalf("eval %s: %v", p.SQL(), err)
	}
	return ok
}

func TestComparisons(t *testing.T) {
	r := Row{Int(5), Float(2.5), Str("abc"), Bool(true)}
	tests := []struct {
		p    Pred
		want bool
	}{
		{Cmp(CmpEq, Col("X"), Lit(Int(5))), true},
		{Cmp(CmpEq, Col("X"), Lit(Float(5))), true},
		{Cmp(CmpNe, Col("X"), Lit(Int(4))), true},
		{Cmp(CmpLt, Col("X"), Lit(Int(6))), true},
		{Cmp(CmpLe, Col("X"), Lit(Int(5))), true},
		{Cmp(CmpGt, Col("Y"), Lit(Int(2))), true},
		{Cmp(CmpGe, Col("Y"), Lit(Float(2.5))), true},
		{Cmp(CmpLt, Col("S"), Lit(Str("b"))), true},
		{Cmp(CmpGt, Col("S"), Lit(Str("b"))), false},
		{Eq("B", Bool(true)), true},
	}
	for _, c := range tests {
		if got := evalP(t, c.p, r); got != c.want {
			t.Errorf("%s = %v, want %v", c.p.SQL(), got, c.want)
		}
	}
}

func TestComparisonNullSemantics(t *testing.T) {
	r := Row{Null(), Null(), Str("x"), Bool(false)}
	// Equality treats NULL = NULL as true (needed for Unselected sentinels).
	if !evalP(t, Cmp(CmpEq, Col("X"), Lit(Null())), r) {
		t.Error("NULL = NULL should hold in this engine")
	}
	if evalP(t, Cmp(CmpEq, Col("X"), Lit(Int(0))), r) {
		t.Error("NULL = 0 must be false")
	}
	// Ordered comparisons with NULL are false.
	for _, op := range []CmpOp{CmpLt, CmpLe, CmpGt, CmpGe} {
		if evalP(t, Cmp(op, Col("X"), Lit(Int(1))), r) {
			t.Errorf("NULL %s 1 must be false", op)
		}
	}
}

func TestOrderedComparisonKindMismatch(t *testing.T) {
	r := Row{Int(1), Float(1), Str("x"), Bool(true)}
	if _, err := Cmp(CmpLt, Col("S"), Lit(Int(1))).Eval(r, exprSchema); err == nil {
		t.Error("string < int must error")
	}
}

func TestBooleanConnectives(t *testing.T) {
	r := Row{Int(5), Float(2.5), Str("abc"), Bool(true)}
	p1 := Cmp(CmpGt, Col("X"), Lit(Int(0)))
	p2 := Cmp(CmpLt, Col("X"), Lit(Int(3)))
	if evalP(t, And(p1, p2), r) {
		t.Error("AND of true,false must be false")
	}
	if !evalP(t, Or(p1, p2), r) {
		t.Error("OR of true,false must be true")
	}
	if !evalP(t, Not(p2), r) {
		t.Error("NOT false must be true")
	}
	if !evalP(t, And(), r) {
		t.Error("empty AND must be true")
	}
	if evalP(t, Or(), r) {
		t.Error("empty OR must be false")
	}
}

func TestAndOrFlattening(t *testing.T) {
	p := Cmp(CmpEq, Col("X"), Lit(Int(1)))
	combined := And(And(p, p), p, nil)
	ap, ok := combined.(AndPred)
	if !ok {
		t.Fatalf("And did not return AndPred: %T", combined)
	}
	if len(ap.Ps) != 3 {
		t.Errorf("flattened AND has %d terms, want 3", len(ap.Ps))
	}
	if single := And(p); single != Pred(p) {
		t.Error("And of one predicate should return it unchanged")
	}
	oc := Or(Or(p, p), p)
	op, ok := oc.(OrPred)
	if !ok || len(op.Ps) != 3 {
		t.Errorf("Or flattening wrong: %#v", oc)
	}
}

func TestNullPred(t *testing.T) {
	r := Row{Null(), Float(1), Str("x"), Bool(true)}
	if !evalP(t, IsNull(Col("X")), r) {
		t.Error("IsNull(NULL) must hold")
	}
	if evalP(t, IsNull(Col("Y")), r) {
		t.Error("IsNull(1.0) must not hold")
	}
	if !evalP(t, IsNotNull(Col("Y")), r) {
		t.Error("IsNotNull(1.0) must hold")
	}
	if got := IsNull(Col("X")).SQL(); got != "X IS NULL" {
		t.Errorf("SQL = %q", got)
	}
	if got := IsNotNull(Col("X")).SQL(); got != "X IS NOT NULL" {
		t.Errorf("SQL = %q", got)
	}
}

func TestInPred(t *testing.T) {
	r := Row{Int(5), Float(1), Str("IV fluids"), Bool(true)}
	p := In(Col("S"), Str("surgery"), Str("IV fluids"), Str("oxygen"))
	if !evalP(t, p, r) {
		t.Error("IN must match")
	}
	if evalP(t, In(Col("S"), Str("surgery")), r) {
		t.Error("IN must not match")
	}
	if got := p.SQL(); got != "S IN ('surgery', 'IV fluids', 'oxygen')" {
		t.Errorf("SQL = %q", got)
	}
}

func TestTruthPred(t *testing.T) {
	r := Row{Int(0), Float(1), Str(""), Bool(true)}
	if !evalP(t, Truth(Col("B")), r) {
		t.Error("Truth(true bool) must hold")
	}
	if evalP(t, Truth(Col("X")), r) {
		t.Error("Truth(0) must not hold")
	}
	if evalP(t, Truth(Col("S")), r) {
		t.Error("Truth(empty string) must not hold")
	}
}

func TestBoolLit(t *testing.T) {
	r := Row{Int(0), Float(0), Str(""), Bool(false)}
	if !evalP(t, True, r) || evalP(t, False, r) {
		t.Error("True/False literals broken")
	}
	if True.SQL() != "TRUE" || False.SQL() != "FALSE" {
		t.Error("bool literal SQL broken")
	}
}

func TestPredSQLRendering(t *testing.T) {
	p := And(
		Cmp(CmpGt, Col("PacksPerDay"), Lit(Int(0))),
		Cmp(CmpLt, Col("PacksPerDay"), Lit(Int(2))),
	)
	want := "(PacksPerDay > 0 AND PacksPerDay < 2)"
	if got := p.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
	n := Not(Eq("Smoking", Str("None")))
	if got := n.SQL(); !strings.Contains(got, "NOT (Smoking = 'None')") {
		t.Errorf("NOT SQL = %q", got)
	}
	if got := And().SQL(); got != "TRUE" {
		t.Errorf("empty AND SQL = %q", got)
	}
	if got := Or().SQL(); got != "FALSE" {
		t.Errorf("empty OR SQL = %q", got)
	}
}
