package relstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestShardRowsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := randRelation(r, 100)
	shards, err := ShardRows(in, "K", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("%d shards, want 8", len(shards))
	}
	total := 0
	ki := in.Schema.Index("K")
	for si, s := range shards {
		total += s.Len()
		for _, row := range s.Data {
			if got := ShardOf(row[ki], 8); got != si {
				t.Fatalf("row with key %v in shard %d, hashes to %d", row[ki], si, got)
			}
		}
	}
	if total != in.Len() {
		t.Fatalf("shards hold %d rows, input has %d", total, in.Len())
	}
	// More shards than distinct keys: empty shards must be valid relations.
	few := &Rows{Schema: in.Schema, Data: in.Data[:2]}
	shards, err = ShardRows(few, "K", 16)
	if err != nil {
		t.Fatal(err)
	}
	empties := 0
	for _, s := range shards {
		if s.Len() == 0 {
			empties++
		}
	}
	if empties < 14 {
		t.Fatalf("expected >=14 empty shards, got %d", empties)
	}
	if _, err := ShardRows(in, "Nope", 4); err == nil {
		t.Error("sharding on a missing column must error")
	}
}

func TestShardedTableSelectMatchesTable(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	in := randRelation(r, 200)
	plain := NewTable("plain", in.Schema)
	st, err := NewShardedTable("sharded", in.Schema, "K", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range in.Data {
		if err := plain.Insert(row); err != nil {
			t.Fatal(err)
		}
		if err := st.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != plain.Len() {
		t.Fatalf("sharded len %d != %d", st.Len(), plain.Len())
	}
	if err := st.CreateIndex("K"); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		pred := randPred(r, 2)
		want, errW := plain.Select(pred)
		got, errG := st.Select(pred)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: plain err=%v sharded err=%v", trial, errW, errG)
		}
		if errW != nil {
			continue
		}
		if !got.EqualUnordered(want) {
			t.Fatalf("trial %d pred %s: sharded select differs (%d vs %d rows)", trial, pred.SQL(), got.Len(), want.Len())
		}
		// Determinism: the same sharded select twice is byte-identical.
		again, err := st.Select(pred)
		if err != nil {
			t.Fatal(err)
		}
		if err := strictRowsEq(again, got); err != nil {
			t.Fatalf("trial %d: sharded select not deterministic: %v", trial, err)
		}
	}
	// Rows() returns shard order deterministically.
	a, b := st.Rows(), st.Rows()
	if err := strictRowsEq(a, b); err != nil {
		t.Fatalf("sharded Rows not deterministic: %v", err)
	}
	if !a.EqualUnordered(plain.Rows()) {
		t.Fatal("sharded Rows differs from plain table as a multiset")
	}
}

func TestShardedJoinEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		left := randRelation(r, r.Intn(80))
		right := randRelation(r, r.Intn(60))
		want, err := Join(left, right, "K", "K", "r")
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShardedJoin(left, right, "K", "K", "r")
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualUnordered(want) {
			t.Fatalf("trial %d: sharded join %d rows, sequential %d; multisets differ", trial, got.Len(), want.Len())
		}
		again, err := ShardedJoin(left, right, "K", "K", "r")
		if err != nil {
			t.Fatal(err)
		}
		if err := strictRowsEq(again, got); err != nil {
			t.Fatalf("trial %d: sharded join not deterministic: %v", trial, err)
		}
	}
}

// TestShardedConcurrentScanInsert runs sharded scans against in-flight
// inserts and deletes — the shape of a study extract racing a delta refresh.
// Run under -race; correctness here is "no race, no torn reads": every
// observed row must be one that some writer inserted.
func TestShardedConcurrentScanInsert(t *testing.T) {
	schema := propSchema()
	st, err := NewShardedTable("stress", schema, "K", 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(43 + w)))
			for i := 0; i < 200; i++ {
				row := randRelation(r, 1).Data[0]
				row[0] = Int(int64(w*1000 + i))
				if err := st.Insert(row); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := st.Shard(w % st.NumShards()).Delete(Eq("ID", Int(int64(w*1000+i)))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(47 + g)))
			for i := 0; i < 50; i++ {
				pred := randPred(r, 2)
				rows, err := st.Select(pred)
				if err != nil {
					continue // generated pred may mismatch kinds mid-flight
				}
				for _, row := range rows.Data {
					if len(row) != schema.Arity() {
						t.Errorf("torn row: arity %d", len(row))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// After the dust settles, shard routing is still consistent.
	ki := schema.Index("K")
	for si := 0; si < st.NumShards(); si++ {
		st.Shard(si).Scan(func(r Row) bool {
			if ShardOf(r[ki], st.NumShards()) != si {
				t.Errorf("row with key %v stored in wrong shard %d", r[ki], si)
				return false
			}
			return true
		})
	}
	if st.Name() != "stress" || st.KeyColumn() != "K" || st.Schema() != schema {
		t.Error("accessor mismatch")
	}
	if got := fmt.Sprintf("%s", st.Shard(1).Name()); got != "stress#1" {
		t.Errorf("shard name %q", got)
	}
}
