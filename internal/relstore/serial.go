package relstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file implements the typed, NULL-safe serialization of relations the
// ETL checkpoint layer durably stores between runs. CSV (csv.go) is the
// human-facing export and cannot round-trip a relation exactly — it conflates
// NULL with the empty string and drops column types. The typed format is
// line-oriented JSON: one schema line, then one line per row with every value
// tagged by kind, so Read(Write(rows)) reproduces the relation bit for bit.
//
// Integers serialize as JSON strings, not numbers: an int64 above 2^53 would
// silently lose precision through a float64-backed JSON decoder.

// serialColumn is the JSON shape of one schema column.
type serialColumn struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	NotNull bool   `json:"notnull,omitempty"`
}

// serialValue is the JSON shape of one typed cell; exactly one field is set,
// and a JSON null stands for the NULL value.
type serialValue struct {
	I *string  `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
	B *bool    `json:"b,omitempty"`
}

// kindFromString inverts Kind.String.
func kindFromString(s string) (Kind, error) {
	switch s {
	case "NULL":
		return KindNull, nil
	case "INTEGER":
		return KindInt, nil
	case "REAL":
		return KindFloat, nil
	case "TEXT":
		return KindString, nil
	case "BOOLEAN":
		return KindBool, nil
	}
	return KindNull, fmt.Errorf("relstore: unknown column type %q", s)
}

// MarshalSchemaJSON renders a schema as one JSON line (no trailing newline).
func MarshalSchemaJSON(s *Schema) ([]byte, error) {
	cols := make([]serialColumn, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = serialColumn{Name: c.Name, Type: c.Type.String(), NotNull: c.NotNull}
	}
	return json.Marshal(cols)
}

// UnmarshalSchemaJSON parses a schema line written by MarshalSchemaJSON.
func UnmarshalSchemaJSON(b []byte) (*Schema, error) {
	var cols []serialColumn
	if err := json.Unmarshal(b, &cols); err != nil {
		return nil, fmt.Errorf("relstore: parse schema: %w", err)
	}
	out := make([]Column, len(cols))
	for i, c := range cols {
		k, err := kindFromString(c.Type)
		if err != nil {
			return nil, err
		}
		out[i] = Column{Name: c.Name, Type: k, NotNull: c.NotNull}
	}
	return NewSchema(out...)
}

// MarshalRowJSON renders one row as one JSON line of kind-tagged values.
func MarshalRowJSON(r Row) ([]byte, error) {
	vals := make([]*serialValue, len(r))
	for i, v := range r {
		switch v.Kind() {
		case KindNull:
			vals[i] = nil
		case KindInt:
			s := strconv.FormatInt(v.AsInt(), 10)
			vals[i] = &serialValue{I: &s}
		case KindFloat:
			f := v.AsFloat()
			vals[i] = &serialValue{F: &f}
		case KindString:
			s := v.AsString()
			vals[i] = &serialValue{S: &s}
		case KindBool:
			b := v.AsBool()
			vals[i] = &serialValue{B: &b}
		default:
			return nil, fmt.Errorf("relstore: cannot serialize value of kind %v", v.Kind())
		}
	}
	return json.Marshal(vals)
}

// UnmarshalRowJSON parses a row line written by MarshalRowJSON.
func UnmarshalRowJSON(b []byte) (Row, error) {
	var vals []*serialValue
	if err := json.Unmarshal(b, &vals); err != nil {
		return nil, fmt.Errorf("relstore: parse row: %w", err)
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		switch {
		case v == nil:
			row[i] = Null()
		case v.I != nil:
			n, err := strconv.ParseInt(*v.I, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: parse row integer %q: %w", *v.I, err)
			}
			row[i] = Int(n)
		case v.F != nil:
			row[i] = Float(*v.F)
		case v.S != nil:
			row[i] = Str(*v.S)
		case v.B != nil:
			row[i] = Bool(*v.B)
		default:
			return nil, fmt.Errorf("relstore: row value %d has no kind tag", i)
		}
	}
	return row, nil
}

// WriteTyped writes a relation in the typed line format: the schema line,
// then one row line per tuple.
func WriteTyped(w io.Writer, rows *Rows) error {
	sl, err := MarshalSchemaJSON(rows.Schema)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(sl)
	bw.WriteByte('\n')
	for _, r := range rows.Data {
		rl, err := MarshalRowJSON(r)
		if err != nil {
			return err
		}
		bw.Write(rl)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTyped parses a relation written by WriteTyped or WriteTypedSegmented,
// validating every row against the parsed schema. The format version is
// sniffed from the first byte: v1 files open with the bare schema array
// ('['), v2 segment files with a header object ('{').
func ReadTyped(r io.Reader) (*Rows, error) {
	br := bufio.NewReader(r)
	sl, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("relstore: read typed relation: %w", err)
	}
	if len(sl) > 0 && sl[0] == '{' {
		var hdr relHeader
		if err := json.Unmarshal(sl, &hdr); err != nil {
			return nil, fmt.Errorf("relstore: parse v2 header: %w", err)
		}
		if hdr.Rel != 2 {
			return nil, fmt.Errorf("relstore: unsupported .rel version %d", hdr.Rel)
		}
		return readTypedV2(br, hdr)
	}
	schema, err := UnmarshalSchemaJSON(sl)
	if err != nil {
		return nil, err
	}
	var data []Row
	for {
		rl, err := readLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: read typed relation: %w", err)
		}
		row, err := UnmarshalRowJSON(rl)
		if err != nil {
			return nil, err
		}
		if err := schema.Validate(row); err != nil {
			return nil, fmt.Errorf("relstore: typed relation row %d: %w", len(data), err)
		}
		data = append(data, row)
	}
	return &Rows{Schema: schema, Data: data}, nil
}

// readLine returns the next newline-terminated line without the terminator.
// A non-empty final line without a newline is an error — it is how a torn
// write looks — while a clean EOF at a line boundary ends the stream.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err == io.EOF && len(line) > 0 {
		return nil, fmt.Errorf("truncated line %q", line)
	}
	if err != nil {
		return nil, err
	}
	return line[:len(line)-1], nil
}
