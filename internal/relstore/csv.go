package relstore

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV writes a result as CSV with a header row. NULLs render as empty
// fields.
func WriteCSV(w io.Writer, rows *Rows) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rows.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, rows.Schema.Arity())
	for _, row := range rows.Data {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.Display()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses CSV produced by WriteCSV into a result typed by the given
// schema. The header must match the schema's column names in order.
func ReadCSV(r io.Reader, schema *Schema) (*Rows, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: read csv header: %w", err)
	}
	names := schema.Names()
	if len(header) != len(names) {
		return nil, fmt.Errorf("relstore: csv header arity %d != schema arity %d", len(header), len(names))
	}
	for i := range header {
		if header[i] != names[i] {
			return nil, fmt.Errorf("relstore: csv header %q != schema column %q", header[i], names[i])
		}
	}
	var data []Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: read csv: %w", err)
		}
		row := make(Row, len(rec))
		for i, field := range rec {
			if field == "" {
				row[i] = Null()
				continue
			}
			v, err := Coerce(Str(field), schema.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("relstore: csv column %q: %w", names[i], err)
			}
			row[i] = v
		}
		data = append(data, row)
	}
	return &Rows{Schema: schema, Data: data}, nil
}
