package relstore

// Structural rewriting of predicates and expressions: the pattern layer uses
// this to translate a g-tree query's WHERE clause into one over a physical
// layout (renamed columns, encoded literals, sentinel guards), which is the
// paper's "translate a query against the g-tree into one against the
// database".

// ExprRewriter rewrites one expression node; returning ok=false aborts the
// whole rewrite (the caller falls back to evaluating over the decoded view).
type ExprRewriter func(Expr) (Expr, bool)

// RewriteExpr applies fn bottom-up over an expression tree. fn sees each
// node after its children were rewritten.
func RewriteExpr(e Expr, fn ExprRewriter) (Expr, bool) {
	switch x := e.(type) {
	case ColRef, LitExpr:
		return fn(e)
	case NegExpr:
		inner, ok := RewriteExpr(x.E, fn)
		if !ok {
			return nil, false
		}
		return fn(NegExpr{E: inner})
	case ArithExpr:
		l, ok := RewriteExpr(x.L, fn)
		if !ok {
			return nil, false
		}
		r, ok := RewriteExpr(x.R, fn)
		if !ok {
			return nil, false
		}
		return fn(ArithExpr{Op: x.Op, L: l, R: r})
	case FuncExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, ok := RewriteExpr(a, fn)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return fn(FuncExpr{Name: x.Name, Args: args})
	case PredExpr:
		p, ok := RewritePredWith(x.P, fn)
		if !ok {
			return nil, false
		}
		return fn(PredExpr{P: p})
	case CaseExpr:
		branches := make([]CaseBranch, len(x.Branches))
		for i, b := range x.Branches {
			w, ok := RewritePredWith(b.When, fn)
			if !ok {
				return nil, false
			}
			t, ok := RewriteExpr(b.Then, fn)
			if !ok {
				return nil, false
			}
			branches[i] = CaseBranch{When: w, Then: t}
		}
		var els Expr
		if x.Else != nil {
			var ok bool
			els, ok = RewriteExpr(x.Else, fn)
			if !ok {
				return nil, false
			}
		}
		return fn(CaseExpr{Branches: branches, Else: els})
	default:
		return nil, false
	}
}

// RewritePredWith applies an expression rewriter inside a predicate tree,
// preserving predicate structure.
func RewritePredWith(p Pred, fn ExprRewriter) (Pred, bool) {
	switch x := p.(type) {
	case nil:
		return nil, true
	case BoolLit:
		return x, true
	case CmpPred:
		l, ok := RewriteExpr(x.L, fn)
		if !ok {
			return nil, false
		}
		r, ok := RewriteExpr(x.R, fn)
		if !ok {
			return nil, false
		}
		return CmpPred{Op: x.Op, L: l, R: r}, true
	case AndPred:
		ps := make([]Pred, len(x.Ps))
		for i, sub := range x.Ps {
			np, ok := RewritePredWith(sub, fn)
			if !ok {
				return nil, false
			}
			ps[i] = np
		}
		return AndPred{Ps: ps}, true
	case OrPred:
		ps := make([]Pred, len(x.Ps))
		for i, sub := range x.Ps {
			np, ok := RewritePredWith(sub, fn)
			if !ok {
				return nil, false
			}
			ps[i] = np
		}
		return OrPred{Ps: ps}, true
	case NotPred:
		inner, ok := RewritePredWith(x.P, fn)
		if !ok {
			return nil, false
		}
		return NotPred{P: inner}, true
	case NullPred:
		e, ok := RewriteExpr(x.E, fn)
		if !ok {
			return nil, false
		}
		return NullPred{E: e, Negate: x.Negate}, true
	case InPred:
		e, ok := RewriteExpr(x.E, fn)
		if !ok {
			return nil, false
		}
		return InPred{E: e, List: x.List}, true
	case ExprPred:
		e, ok := RewriteExpr(x.E, fn)
		if !ok {
			return nil, false
		}
		return ExprPred{E: e}, true
	default:
		return nil, false
	}
}

// RewritePred is a higher-level rewriter: fn sees whole predicate nodes
// bottom-up and may replace them structurally (e.g. turn IsNull(col) into
// col = sentinel). Returning ok=false aborts.
type PredRewriter func(Pred) (Pred, bool)

// MapPredNodes applies fn to every predicate node bottom-up.
func MapPredNodes(p Pred, fn PredRewriter) (Pred, bool) {
	switch x := p.(type) {
	case nil:
		return nil, true
	case AndPred:
		ps := make([]Pred, len(x.Ps))
		for i, sub := range x.Ps {
			np, ok := MapPredNodes(sub, fn)
			if !ok {
				return nil, false
			}
			ps[i] = np
		}
		return fn(AndPred{Ps: ps})
	case OrPred:
		ps := make([]Pred, len(x.Ps))
		for i, sub := range x.Ps {
			np, ok := MapPredNodes(sub, fn)
			if !ok {
				return nil, false
			}
			ps[i] = np
		}
		return fn(OrPred{Ps: ps})
	case NotPred:
		inner, ok := MapPredNodes(x.P, fn)
		if !ok {
			return nil, false
		}
		return fn(NotPred{P: inner})
	default:
		return fn(p)
	}
}

// PredColumns collects the distinct column names a predicate references, in
// first-appearance order.
func PredColumns(p Pred) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkExpr func(Expr)
	var walkPred func(Pred)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case ColRef:
			add(x.Name)
		case NegExpr:
			walkExpr(x.E)
		case ArithExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case FuncExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case PredExpr:
			walkPred(x.P)
		case CaseExpr:
			for _, b := range x.Branches {
				walkPred(b.When)
				walkExpr(b.Then)
			}
			if x.Else != nil {
				walkExpr(x.Else)
			}
		}
	}
	walkPred = func(p Pred) {
		switch x := p.(type) {
		case nil, BoolLit:
		case CmpPred:
			walkExpr(x.L)
			walkExpr(x.R)
		case AndPred:
			for _, sub := range x.Ps {
				walkPred(sub)
			}
		case OrPred:
			for _, sub := range x.Ps {
				walkPred(sub)
			}
		case NotPred:
			walkPred(x.P)
		case NullPred:
			walkExpr(x.E)
		case InPred:
			walkExpr(x.E)
		case ExprPred:
			walkExpr(x.E)
		}
	}
	walkPred(p)
	return out
}
