package relstore

import (
	"sync"
	"testing"
)

// TestConcurrentReadersWriter is the serving-path concurrency contract,
// meant to run under -race: many readers extract from a table while a
// writer refreshes it. Update and Delete hold the write lock for the whole
// call and Select clones under the read lock, so every read must observe a
// consistent snapshot — here, a table-wide invariant (all rows carry the
// same Version) that the writer advances atomically.
func TestConcurrentReadersWriter(t *testing.T) {
	schema := MustSchema(
		Column{Name: "EntityKey", Type: KindInt, NotNull: true},
		Column{Name: "Version", Type: KindInt, NotNull: true},
	)
	table := NewTable("Study_stress", schema)
	const rows = 64
	for i := 0; i < rows; i++ {
		if err := table.Insert(Row{Int(int64(i)), Int(0)}); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers  = 8
		reads    = 200
		rewrites = 100
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers)

	// Writer: bump every row's Version in one Update call per iteration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); v <= rewrites; v++ {
			version := v
			if _, err := table.Update(nil, func(r Row) Row {
				out := r.Clone()
				out[1] = Int(version)
				return out
			}); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: every Select must see a single Version across all rows —
	// half-applied updates would be a torn snapshot.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < reads; j++ {
				got, err := table.Select(nil)
				if err != nil {
					errs <- err
					return
				}
				if got.Len() != rows {
					t.Errorf("select saw %d rows, want %d", got.Len(), rows)
					return
				}
				first := got.Data[0][1].AsInt()
				for _, r := range got.Data {
					if r[1].AsInt() != first {
						t.Errorf("torn read: versions %d and %d in one select", first, r[1].AsInt())
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentDBTableLifecycle: table creation races against lookups
// without corrupting the catalog.
func TestConcurrentDBTableLifecycle(t *testing.T) {
	db := NewDB("stress")
	schema := MustSchema(Column{Name: "K", Type: KindInt})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := db.EnsureTable("T", schema); err != nil {
					t.Errorf("EnsureTable: %v", err)
					return
				}
				if !db.Has("T") {
					t.Error("table vanished between ensure and lookup")
					return
				}
				_ = db.TableNames()
			}
		}()
	}
	wg.Wait()
}
