package relstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSegmentedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for _, n := range []int{0, 1, 6, 7, 8, 100} {
		in := randRelation(r, n)
		var v2 bytes.Buffer
		if err := WriteTypedSegmented(&v2, in, 7); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTyped(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := strictRowsEq(back, in); err != nil {
			t.Fatalf("n=%d: v2 round trip: %v", n, err)
		}
		// Deterministic: the same relation writes the same bytes.
		var again bytes.Buffer
		if err := WriteTypedSegmented(&again, in, 7); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v2.Bytes(), again.Bytes()) {
			t.Fatalf("n=%d: v2 write not deterministic", n)
		}
		// v1 of the same relation still reads, and reads equal.
		var v1 bytes.Buffer
		if err := WriteTyped(&v1, in); err != nil {
			t.Fatal(err)
		}
		backV1, err := ReadTyped(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := strictRowsEq(backV1, back); err != nil {
			t.Fatalf("n=%d: v1 and v2 disagree: %v", n, err)
		}
		if n > 0 && v1.Bytes()[0] != '[' {
			t.Fatal("v1 must start with the schema array")
		}
		if v2.Bytes()[0] != '{' {
			t.Fatal("v2 must start with the header object")
		}
	}
}

func TestSegmentedChecksumDetectsCorruption(t *testing.T) {
	in := randRelation(rand.New(rand.NewSource(59)), 40)
	var buf bytes.Buffer
	if err := WriteTypedSegmented(&buf, in, 10); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one byte inside the last segment's block (well past the header).
	mut := append([]byte(nil), raw...)
	i := len(mut) - 10
	for mut[i] == '"' || mut[i] == '\n' { // keep the JSON parseable-looking
		i--
	}
	mut[i] ^= 0x01
	if _, err := ReadTyped(bytes.NewReader(mut)); err == nil {
		t.Fatal("corrupted segment read without error")
	} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "parse") {
		t.Fatalf("unexpected corruption error: %v", err)
	}
	// Truncated tail: a missing block is an error, not silent data loss.
	if _, err := ReadTyped(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated segment file read without error")
	}
}

func writeSegFile(t *testing.T, in *Rows, segRows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rel.rel")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedSegmented(f, in, segRows); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSegmentSetScanUnderBudget(t *testing.T) {
	in := randRelation(rand.New(rand.NewSource(61)), 500)
	path := writeSegFile(t, in, 25) // 20 segments
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Budget roughly a tenth of the file: most segments must be evicted
	// along the way, yet the scan sees every row in order.
	set, err := OpenSegments(path, fi.Size()/10)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Len() != in.Len() || set.NumSegments() != 20 {
		t.Fatalf("Len=%d NumSegments=%d, want %d/20", set.Len(), set.NumSegments(), in.Len())
	}
	got, err := set.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if err := strictRowsEq(got, in); err != nil {
		t.Fatalf("budgeted scan: %v", err)
	}
	segs, bytes := set.Resident()
	if bytes > fi.Size()/10 && segs > 1 {
		t.Fatalf("resident %d bytes exceeds budget %d across %d segments", bytes, fi.Size()/10, segs)
	}
	if segs >= 20 {
		t.Fatalf("no eviction happened: %d segments resident", segs)
	}
	// Per-segment materialization matches slices of the source.
	s0, err := set.Segment(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := strictRowsEq(s0, &Rows{Schema: in.Schema, Data: in.Data[:25]}); err != nil {
		t.Fatalf("segment 0: %v", err)
	}
	// Early-exit scan.
	count := 0
	if err := set.Scan(func(Row) bool { count++; return count < 30 }); err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Fatalf("early-exit scan saw %d rows", count)
	}
}

func TestSegmentSetSelectMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	in := randRelation(r, 300)
	path := writeSegFile(t, in, 16)
	set, err := OpenSegments(path, 1500)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for trial := 0; trial < 15; trial++ {
		pred := randPred(r, 2)
		want, errW := Select(in, pred)
		got, errG := set.Select(pred)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: in-memory err=%v, segment err=%v", trial, errW, errG)
		}
		if errW != nil {
			continue
		}
		if err := strictRowsEq(got, want); err != nil {
			t.Fatalf("trial %d pred %s: %v", trial, pred.SQL(), err)
		}
	}
}

func TestSegmentSetConcurrentScans(t *testing.T) {
	in := randRelation(rand.New(rand.NewSource(71)), 400)
	path := writeSegFile(t, in, 20)
	set, err := OpenSegments(path, 2000)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := set.Rows()
			if err != nil {
				t.Error(err)
				return
			}
			if err := strictRowsEq(rows, in); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestOpenSegmentsRejectsV1(t *testing.T) {
	in := randRelation(rand.New(rand.NewSource(73)), 10)
	path := filepath.Join(t.TempDir(), "v1.rel")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTyped(f, in); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenSegments(path, 0); err == nil {
		t.Fatal("OpenSegments accepted a v1 file")
	}
	// But ReadTyped still reads it.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := ReadTyped(rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := strictRowsEq(back, in); err != nil {
		t.Fatal(err)
	}
}
