package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Rows is an immutable, materialized query result: a schema plus data.
type Rows struct {
	Schema *Schema
	Data   []Row
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// Clone deep-copies the result.
func (r *Rows) Clone() *Rows {
	data := make([]Row, len(r.Data))
	for i, row := range r.Data {
		data[i] = row.Clone()
	}
	return &Rows{Schema: r.Schema, Data: data}
}

// Column returns all values of the named column in row order.
func (r *Rows) Column(name string) ([]Value, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("relstore: no column %q", name)
	}
	out := make([]Value, len(r.Data))
	for j, row := range r.Data {
		out[j] = row[i]
	}
	return out, nil
}

// ParallelRowKeys computes fn over every row chunk-parallel, in row order.
// It is the batch kernel behind multiset comparisons and group-key
// extraction: key-string building dominates those paths, and each row's key
// is independent, so the pool can fan it out.
func ParallelRowKeys(data []Row, fn func(Row) string) []string {
	keys := make([]string, len(data))
	bounds := chunkBounds(len(data))
	runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		for i := lo; i < hi; i++ {
			keys[i] = fn(data[i])
		}
		return nil
	})
	return keys
}

// EqualUnordered reports whether two results contain the same multiset of
// rows over identical schemas, ignoring order. Used by the Hypothesis-3
// equivalence tests (compiled ETL ≡ direct evaluation) and the columnar
// equivalence harness. The comparison sorts each side's row-key strings and
// walks them pairwise — O(n log n) regardless of key collisions, where the
// previous map-of-counts bucketed colliding keys — and the key extraction
// itself runs chunk-parallel.
func (r *Rows) EqualUnordered(o *Rows) bool {
	if !r.Schema.Equal(o.Schema) || len(r.Data) != len(o.Data) {
		return false
	}
	ka := ParallelRowKeys(r.Data, Row.Key)
	kb := ParallelRowKeys(o.Data, Row.Key)
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// Format renders the result as an aligned text table for CLI output.
func (r *Rows) Format() string {
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.Data))
	for j, row := range r.Data {
		cells[j] = make([]string, len(row))
		for i, v := range row {
			s := v.Display()
			cells[j][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(f)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(f)))
		}
		sb.WriteByte('\n')
	}
	writeRow(names)
	seps := make([]string, len(names))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	writeRow(seps)
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}

// Select returns the rows satisfying pred (nil pred keeps everything). The
// predicate evaluates columnar: each chunk builds vectors for the columns
// the predicate references and runs typed comparison kernels over them,
// chunks fanning out across the worker pool; the surviving rows are gathered
// in input order, so the result is identical to a row-at-a-time scan.
func Select(in *Rows, pred Pred) (*Rows, error) {
	opSelect.Inc()
	mask, err := predMask(pred, in)
	if err != nil {
		return nil, err
	}
	out := make([]Row, 0, len(in.Data))
	for i, keep := range mask {
		if keep {
			out = append(out, in.Data[i])
		}
	}
	return &Rows{Schema: in.Schema, Data: out}, nil
}

// Project keeps the named columns in the given order.
func Project(in *Rows, names ...string) (*Rows, error) {
	opProject.Inc()
	schema, err := in.Schema.Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = in.Schema.Index(n)
	}
	out := make([]Row, len(in.Data))
	bounds := chunkBounds(len(in.Data))
	runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		for j := lo; j < hi; j++ {
			row := in.Data[j]
			nr := make(Row, len(idx))
			for i, k := range idx {
				nr[i] = row[k]
			}
			out[j] = nr
		}
		return nil
	})
	return &Rows{Schema: schema, Data: out}, nil
}

// Derivation names one computed output column.
type Derivation struct {
	Name string
	Type Kind
	Expr Expr
}

// DeriveSchema is the output schema Derive produces for the derivations.
func DeriveSchema(derivs []Derivation) (*Schema, error) {
	cols := make([]Column, len(derivs))
	for i, d := range derivs {
		cols[i] = Column{Name: d.Name, Type: d.Type}
	}
	return NewSchema(cols...)
}

// DeriveRow evaluates the derivations over one row — the unit of work Derive
// applies per tuple, exposed so callers with a poison-row path can isolate a
// single failing tuple instead of losing the whole relation.
func DeriveRow(derivs []Derivation, row Row, schema *Schema) (Row, error) {
	nr := make(Row, len(derivs))
	for i, d := range derivs {
		v, err := d.Expr.Eval(row, schema)
		if err != nil {
			return nil, fmt.Errorf("derive %s: %w", d.Name, err)
		}
		if !v.IsNull() && d.Type != KindNull && v.Kind() != d.Type {
			v, err = Coerce(v, d.Type)
			if err != nil {
				return nil, fmt.Errorf("derive %s: %w", d.Name, err)
			}
		}
		nr[i] = v
	}
	return nr, nil
}

// Derive computes a new relation whose columns are the given derivations
// evaluated over each input row (a generalized projection; SELECT exprs).
// Rows are independent, so derivation evaluation is chunked across the
// worker pool; output positions are fixed up front, keeping order exact.
func Derive(in *Rows, derivs ...Derivation) (*Rows, error) {
	opDerive.Inc()
	schema, err := DeriveSchema(derivs)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(in.Data))
	bounds := chunkBounds(len(in.Data))
	err = runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		for j := lo; j < hi; j++ {
			nr, err := DeriveRow(derivs, in.Data[j], in.Schema)
			if err != nil {
				return err
			}
			out[j] = nr
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Rows{Schema: schema, Data: out}, nil
}

// Extend appends computed columns to the input relation.
func Extend(in *Rows, derivs ...Derivation) (*Rows, error) {
	opExtend.Inc()
	extra := make([]Column, len(derivs))
	for i, d := range derivs {
		extra[i] = Column{Name: d.Name, Type: d.Type}
	}
	schema, err := in.Schema.Append(extra...)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(in.Data))
	bounds := chunkBounds(len(in.Data))
	err = runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		for j := lo; j < hi; j++ {
			row := in.Data[j]
			nr := make(Row, 0, schema.Arity())
			nr = append(nr, row...)
			for _, d := range derivs {
				v, err := d.Expr.Eval(row, in.Schema)
				if err != nil {
					return fmt.Errorf("extend %s: %w", d.Name, err)
				}
				if !v.IsNull() && d.Type != KindNull && v.Kind() != d.Type {
					v, err = Coerce(v, d.Type)
					if err != nil {
						return fmt.Errorf("extend %s: %w", d.Name, err)
					}
				}
				nr = append(nr, v)
			}
			out[j] = nr
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Rows{Schema: schema, Data: out}, nil
}

// Rename renames a column.
func Rename(in *Rows, from, to string) (*Rows, error) {
	opRename.Inc()
	schema, err := in.Schema.Rename(from, to)
	if err != nil {
		return nil, err
	}
	return &Rows{Schema: schema, Data: in.Data}, nil
}

// joinSchema builds the output schema of a join, prefixing colliding right
// column names.
func joinSchema(left, right *Schema, rightPrefix string) (*Schema, error) {
	cols := make([]Column, 0, left.Arity()+right.Arity())
	cols = append(cols, left.Columns...)
	for _, c := range right.Columns {
		name := c.Name
		if left.Has(name) {
			name = rightPrefix + "_" + name
		}
		cols = append(cols, Column{Name: name, Type: c.Type, NotNull: c.NotNull})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("relstore: join: %w", err)
	}
	return schema, nil
}

// joinKeys extracts the join-key strings of col for every row chunk-parallel;
// a NULL key yields "" (NULL never joins, and Value.Key never returns "").
func joinKeys(data []Row, ci int) []string {
	return ParallelRowKeys(data, func(r Row) string {
		if r[ci].IsNull() {
			return ""
		}
		return r[ci].Key()
	})
}

// Join performs a hash equi-join on leftCol = rightCol. Columns of the right
// relation that collide with left names are prefixed with the right prefix
// (prefix + "_"). The join is an inner join. Key extraction on both sides is
// chunked across the pool; the build hashes the right side in row order and
// the probe fans left chunks out in parallel, concatenating per-chunk output
// in chunk order — the exact row order a sequential nested probe produces.
func Join(left, right *Rows, leftCol, rightCol, rightPrefix string) (*Rows, error) {
	opJoin.Inc()
	li := left.Schema.Index(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("relstore: join: no left column %q", leftCol)
	}
	ri := right.Schema.Index(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("relstore: join: no right column %q", rightCol)
	}
	schema, err := joinSchema(left.Schema, right.Schema, rightPrefix)
	if err != nil {
		return nil, err
	}
	rightKeys := joinKeys(right.Data, ri)
	buckets := make(map[string][]int, len(right.Data))
	for i, k := range rightKeys {
		if k != "" {
			buckets[k] = append(buckets[k], i)
		}
	}
	leftKeys := joinKeys(left.Data, li)
	bounds := chunkBounds(len(left.Data))
	chunkOut := make([][]Row, len(bounds))
	runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		var out []Row
		for j := lo; j < hi; j++ {
			k := leftKeys[j]
			if k == "" {
				continue
			}
			lrow := left.Data[j]
			for _, rj := range buckets[k] {
				nr := make(Row, 0, schema.Arity())
				nr = append(nr, lrow...)
				nr = append(nr, right.Data[rj]...)
				out = append(out, nr)
			}
		}
		chunkOut[ci] = out
		return nil
	})
	var out []Row
	for _, rows := range chunkOut {
		out = append(out, rows...)
	}
	return &Rows{Schema: schema, Data: out}, nil
}

// LeftJoin is Join but keeps unmatched left rows with NULLs on the right.
func LeftJoin(left, right *Rows, leftCol, rightCol, rightPrefix string) (*Rows, error) {
	opLeftJoin.Inc()
	inner, err := Join(left, right, leftCol, rightCol, rightPrefix)
	if err != nil {
		return nil, err
	}
	li := left.Schema.Index(leftCol)
	ri := right.Schema.Index(rightCol)
	matched := make(map[string]bool, len(right.Data))
	for _, k := range joinKeys(right.Data, ri) {
		if k != "" {
			matched[k] = true
		}
	}
	for _, lrow := range left.Data {
		if !lrow[li].IsNull() && matched[lrow[li].Key()] {
			continue
		}
		nr := make(Row, 0, inner.Schema.Arity())
		nr = append(nr, lrow...)
		for i := 0; i < right.Schema.Arity(); i++ {
			nr = append(nr, Null())
		}
		inner.Data = append(inner.Data, nr)
	}
	return inner, nil
}

// UnionAll concatenates relations with identical schemas (bag semantics).
// MultiClass "simply unions together the results of ETL workflows from
// different contributors" — this is that union.
func UnionAll(rs ...*Rows) (*Rows, error) {
	opUnionAll.Inc()
	if len(rs) == 0 {
		return nil, fmt.Errorf("relstore: union of nothing")
	}
	schema := rs[0].Schema
	var out []Row
	for _, r := range rs {
		if !r.Schema.Equal(schema) {
			return nil, fmt.Errorf("relstore: union schema mismatch: (%s) vs (%s)", schema.NameList(), r.Schema.NameList())
		}
		out = append(out, r.Data...)
	}
	return &Rows{Schema: schema, Data: out}, nil
}

// Union is UnionAll followed by Distinct (set semantics).
func Union(rs ...*Rows) (*Rows, error) {
	opUnion.Inc()
	all, err := UnionAll(rs...)
	if err != nil {
		return nil, err
	}
	return Distinct(all), nil
}

// Distinct removes duplicate rows, keeping first occurrences in order. The
// whole-row key strings the dedupe hashes on are computed chunk-parallel;
// only the ordered membership pass is sequential.
func Distinct(in *Rows) *Rows {
	opDistinct.Inc()
	keys := ParallelRowKeys(in.Data, Row.Key)
	seen := make(map[string]bool, len(in.Data))
	out := make([]Row, 0, len(in.Data))
	for i, row := range in.Data {
		if seen[keys[i]] {
			continue
		}
		seen[keys[i]] = true
		out = append(out, row)
	}
	return &Rows{Schema: in.Schema, Data: out}
}

// SortBy orders rows by the named columns ascending (stable). The sort runs
// over an index permutation against column vectors of the key columns —
// column-major access for the comparator — and gathers rows at the end.
func SortBy(in *Rows, cols ...string) (*Rows, error) {
	opSortBy.Inc()
	idx := make([]int, len(cols))
	for i, c := range cols {
		k := in.Schema.Index(c)
		if k < 0 {
			return nil, fmt.Errorf("relstore: sort: no column %q", c)
		}
		idx[i] = k
	}
	n := len(in.Data)
	keyVecs := make([]*Vector, len(idx))
	if n > 0 {
		b := BatchFromRows(&Rows{Schema: in.Schema, Data: in.Data}, 0, n, idx)
		for i, k := range idx {
			keyVecs[i] = b.Vecs[k]
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		for _, v := range keyVecs {
			c := v.Value(perm[a]).Compare(v.Value(perm[b]))
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([]Row, n)
	for i, p := range perm {
		out[i] = in.Data[p]
	}
	return &Rows{Schema: in.Schema, Data: out}, nil
}

// Pivot converts a wide relation to Entity-Attribute-Value form: for each
// input row, one output row per value column, keyed by the key columns.
// (The Generic design pattern of Table 1 stores data this way.) Each input
// row expands independently, so chunks fan out across the pool and
// concatenate in chunk order.
func Pivot(in *Rows, keyCols []string, attrCol, valCol string) (*Rows, error) {
	opPivot.Inc()
	keyIdx := make([]int, len(keyCols))
	cols := make([]Column, 0, len(keyCols)+2)
	for i, k := range keyCols {
		j := in.Schema.Index(k)
		if j < 0 {
			return nil, fmt.Errorf("relstore: pivot: no key column %q", k)
		}
		keyIdx[i] = j
		cols = append(cols, in.Schema.Columns[j])
	}
	cols = append(cols, Column{Name: attrCol, Type: KindString, NotNull: true})
	cols = append(cols, Column{Name: valCol, Type: KindString})
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	isKey := make(map[int]bool, len(keyIdx))
	for _, j := range keyIdx {
		isKey[j] = true
	}
	bounds := chunkBounds(len(in.Data))
	chunkOut := make([][]Row, len(bounds))
	runChunks(len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		mBatchChunks.Inc()
		mBatchRows.Add(int64(hi - lo))
		var out []Row
		for r := lo; r < hi; r++ {
			row := in.Data[r]
			for j, c := range in.Schema.Columns {
				if isKey[j] {
					continue
				}
				nr := make(Row, 0, schema.Arity())
				for _, k := range keyIdx {
					nr = append(nr, row[k])
				}
				nr = append(nr, Str(c.Name))
				if row[j].IsNull() {
					nr = append(nr, Null())
				} else {
					nr = append(nr, Str(row[j].Display()))
				}
				out = append(out, nr)
			}
		}
		chunkOut[ci] = out
		return nil
	})
	var out []Row
	for _, rows := range chunkOut {
		out = append(out, rows...)
	}
	return &Rows{Schema: schema, Data: out}, nil
}

// groupKeys extracts the concatenated key strings of keyIdx chunk-parallel.
func groupKeys(data []Row, keyIdx []int) []string {
	return ParallelRowKeys(data, func(row Row) string {
		var kb strings.Builder
		for _, k := range keyIdx {
			kb.WriteString(row[k].Key())
			kb.WriteByte(0x1f)
		}
		return kb.String()
	})
}

// Unpivot converts an Entity-Attribute-Value relation back to wide form.
// attrs names the output columns and their types; rows sharing the same key
// tuple fold into one output row. Attributes absent for a key become NULL.
// The paper's Join pattern "executes an un-pivot operation, either in code
// or SQL if the operator exists in the DBMS"; relstore provides it natively.
// The group-key extraction is chunked across the pool; the ordered fold that
// assigns attributes into their key's row stays sequential, preserving
// first-appearance output order.
func Unpivot(in *Rows, keyCols []string, attrCol, valCol string, attrs []Column) (*Rows, error) {
	opUnpivot.Inc()
	keyIdx := make([]int, len(keyCols))
	cols := make([]Column, 0, len(keyCols)+len(attrs))
	for i, k := range keyCols {
		j := in.Schema.Index(k)
		if j < 0 {
			return nil, fmt.Errorf("relstore: unpivot: no key column %q", k)
		}
		keyIdx[i] = j
		cols = append(cols, in.Schema.Columns[j])
	}
	ai := in.Schema.Index(attrCol)
	vi := in.Schema.Index(valCol)
	if ai < 0 || vi < 0 {
		return nil, fmt.Errorf("relstore: unpivot: missing attr/value columns %q/%q", attrCol, valCol)
	}
	attrPos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		// Attribute columns in unpivot output are always nullable: a key may
		// simply lack that attribute row.
		cols = append(cols, Column{Name: a.Name, Type: a.Type})
		attrPos[a.Name] = len(keyCols) + i
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	keys := groupKeys(in.Data, keyIdx)
	rowFor := make(map[string]int)
	var order []Row
	for i, row := range in.Data {
		key := keys[i]
		pos, ok := rowFor[key]
		if !ok {
			nr := make(Row, schema.Arity())
			for i, k := range keyIdx {
				nr[i] = row[k]
			}
			pos = len(order)
			order = append(order, nr)
			rowFor[key] = pos
		}
		attr := row[ai]
		if attr.IsNull() {
			continue
		}
		p, ok := attrPos[attr.Display()]
		if !ok {
			continue // attribute not requested
		}
		v := row[vi]
		if !v.IsNull() {
			coerced, err := Coerce(v, schema.Columns[p].Type)
			if err != nil {
				return nil, fmt.Errorf("relstore: unpivot %s: %w", attr.Display(), err)
			}
			v = coerced
		}
		order[pos][p] = v
	}
	return &Rows{Schema: schema, Data: order}, nil
}

// AggKind enumerates aggregate functions for GroupBy.
type AggKind uint8

// Aggregates needed by the study funnels (counts, sums, averages).
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// Aggregate names one aggregated output column over a source column (ignored
// for AggCount).
type Aggregate struct {
	Kind AggKind
	Col  string
	As   string
}

// GroupBy groups rows by the key columns and computes aggregates per group.
// Output order follows first appearance of each group.
func GroupBy(in *Rows, keyCols []string, aggs ...Aggregate) (*Rows, error) {
	opGroupBy.Inc()
	keyIdx := make([]int, len(keyCols))
	cols := make([]Column, 0, len(keyCols)+len(aggs))
	for i, k := range keyCols {
		j := in.Schema.Index(k)
		if j < 0 {
			return nil, fmt.Errorf("relstore: group: no key column %q", k)
		}
		keyIdx[i] = j
		cols = append(cols, in.Schema.Columns[j])
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		t := KindFloat
		if a.Kind == AggCount {
			t = KindInt
			aggIdx[i] = -1
		} else {
			j := in.Schema.Index(a.Col)
			if j < 0 {
				return nil, fmt.Errorf("relstore: group: no aggregate column %q", a.Col)
			}
			aggIdx[i] = j
			if (a.Kind == AggMin || a.Kind == AggMax) && in.Schema.Columns[j].Type != KindFloat {
				t = in.Schema.Columns[j].Type
			}
		}
		name := a.As
		if name == "" {
			name = fmt.Sprintf("agg%d", i)
		}
		cols = append(cols, Column{Name: name, Type: t})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	type acc struct {
		count int64
		sum   float64
		min   Value
		max   Value
		n     int64
	}
	rowKeys := groupKeys(in.Data, keyIdx)
	groups := make(map[string][]acc)
	keys := make(map[string]Row)
	var order []string
	for ri, row := range in.Data {
		key := rowKeys[ri]
		accs, ok := groups[key]
		if !ok {
			keyRow := make(Row, len(keyIdx))
			for i, k := range keyIdx {
				keyRow[i] = row[k]
			}
			accs = make([]acc, len(aggs))
			keys[key] = keyRow
			order = append(order, key)
		}
		for i, a := range aggs {
			accs[i].count++
			if a.Kind == AggCount {
				continue
			}
			v := row[aggIdx[i]]
			if v.IsNull() {
				continue
			}
			accs[i].n++
			if v.IsNumeric() {
				accs[i].sum += v.AsFloat()
			}
			if accs[i].min.IsNull() || v.Compare(accs[i].min) < 0 {
				accs[i].min = v
			}
			if accs[i].max.IsNull() || v.Compare(accs[i].max) > 0 {
				accs[i].max = v
			}
		}
		groups[key] = accs
	}
	out := make([]Row, 0, len(order))
	for _, key := range order {
		accs := groups[key]
		nr := make(Row, 0, schema.Arity())
		nr = append(nr, keys[key]...)
		for i, a := range aggs {
			switch a.Kind {
			case AggCount:
				nr = append(nr, Int(accs[i].count))
			case AggSum:
				nr = append(nr, Float(accs[i].sum))
			case AggMin:
				nr = append(nr, accs[i].min)
			case AggMax:
				nr = append(nr, accs[i].max)
			case AggAvg:
				if accs[i].n == 0 {
					nr = append(nr, Null())
				} else {
					nr = append(nr, Float(accs[i].sum/float64(accs[i].n)))
				}
			}
		}
		out = append(out, nr)
	}
	return &Rows{Schema: schema, Data: out}, nil
}
