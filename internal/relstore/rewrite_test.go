package relstore

import (
	"strings"
	"testing"
)

// renamer maps column A->X, leaving others untouched.
func renamer(e Expr) (Expr, bool) {
	if c, ok := e.(ColRef); ok && c.Name == "zz" {
		return Col("qq"), true
	}
	return e, true
}

// aborter fails on any column reference.
func aborter(e Expr) (Expr, bool) {
	if _, ok := e.(ColRef); ok {
		return nil, false
	}
	return e, true
}

func TestRewriteExprCoversAllShapes(t *testing.T) {
	exprs := []Expr{
		Col("zz"),
		Lit(Int(1)),
		Neg(Col("zz")),
		Arith(OpAdd, Col("zz"), Lit(Int(2))),
		Call("ABS", Col("zz")),
		AsExpr(Eq("zz", Int(3))),
		CaseExpr{
			Branches: []CaseBranch{{When: Eq("zz", Int(1)), Then: Col("zz")}},
			Else:     Arith(OpMul, Col("zz"), Lit(Int(2))),
		},
	}
	for _, e := range exprs {
		out, ok := RewriteExpr(e, renamer)
		if !ok {
			t.Fatalf("%s: rewrite aborted", e.SQL())
		}
		if strings.Contains(out.SQL(), "zz") && !strings.Contains(out.SQL(), "ABS") && !strings.Contains(out.SQL(), "CASE") {
			t.Errorf("%s: A not renamed: %s", e.SQL(), out.SQL())
		}
		if strings.Contains(e.SQL(), "zz") {
			if _, ok := RewriteExpr(e, aborter); ok {
				t.Errorf("%s: aborter must abort", e.SQL())
			}
		}
	}
	// CASE rewrite renames inside WHEN, THEN, and ELSE.
	ce := exprs[6]
	out, _ := RewriteExpr(ce, renamer)
	sql := out.SQL()
	if strings.Count(sql, "qq") != 3 {
		t.Errorf("CASE rewrite: %s", sql)
	}
}

func TestRewritePredWithCoversAllShapes(t *testing.T) {
	preds := []Pred{
		Eq("zz", Int(1)),
		And(Eq("zz", Int(1)), Eq("B", Int(2))),
		Or(Eq("zz", Int(1)), Eq("B", Int(2))),
		Not(Eq("zz", Int(1))),
		IsNull(Col("zz")),
		IsNotNull(Col("zz")),
		In(Col("zz"), Int(1), Int(2)),
		Truth(Col("zz")),
		True,
	}
	for _, p := range preds {
		out, ok := RewritePredWith(p, renamer)
		if !ok {
			t.Fatalf("%s: rewrite aborted", p.SQL())
		}
		if strings.Contains(p.SQL(), "zz") && strings.Contains(out.SQL(), "zz") {
			t.Errorf("%s: A survived: %s", p.SQL(), out.SQL())
		}
		if strings.Contains(p.SQL(), "zz") {
			if _, ok := RewritePredWith(p, aborter); ok {
				t.Errorf("%s: aborter must abort", p.SQL())
			}
		}
	}
	// nil predicate passes through.
	if out, ok := RewritePredWith(nil, renamer); !ok || out != nil {
		t.Error("nil predicate must survive")
	}
}

func TestMapPredNodesStructure(t *testing.T) {
	// Replace every comparison leaf with TRUE; composites keep shape.
	p := And(
		Or(Eq("zz", Int(1)), Not(Eq("B", Int(2)))),
		Eq("C", Int(3)),
	)
	out, ok := MapPredNodes(p, func(n Pred) (Pred, bool) {
		if _, isCmp := n.(CmpPred); isCmp {
			return True, true
		}
		return n, true
	})
	if !ok {
		t.Fatal("rewrite aborted")
	}
	r := Row{}
	s := MustSchema()
	v, err := out.Eval(r, s)
	if err != nil || !v {
		t.Errorf("all-TRUE pred = %v, %v", v, err)
	}
	// Aborting from inside a Not propagates.
	if _, ok := MapPredNodes(Not(Eq("zz", Int(1))), func(n Pred) (Pred, bool) {
		if _, isCmp := n.(CmpPred); isCmp {
			return nil, false
		}
		return n, true
	}); ok {
		t.Error("abort inside NOT must propagate")
	}
	// nil passes.
	if out, ok := MapPredNodes(nil, func(n Pred) (Pred, bool) { return n, true }); !ok || out != nil {
		t.Error("nil must pass")
	}
}
