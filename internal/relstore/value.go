package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The value kinds supported by the engine. KindNull is the type of the SQL
// NULL value; a null compares equal only to null and orders before all other
// values.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only when Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload widened to float64. Valid for KindInt
// and KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. Valid only when Kind is KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. Valid only when Kind is KindBool.
func (v Value) AsBool() bool { return v.b }

// IsNumeric reports whether v is an integer or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Display renders the value for human-facing tables: like String but without
// quoting around strings.
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Equal reports deep equality. NULL equals only NULL. Integers and floats
// compare numerically across kinds (Int(2).Equal(Float(2)) is true), because
// design-pattern round trips may legitimately widen integers.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return v.kind == o.kind
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Compare orders two values. NULL sorts before everything; mixed numeric
// kinds compare numerically; otherwise kinds order by their Kind constant and
// values of equal kind order naturally. The result is -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// Key returns a map-key form of the value, suitable for hash indexes and
// hash joins. Numerically equal int/float values share a key.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "s" + v.s
	case KindBool:
		if v.b {
			return "bt"
		}
		return "bf"
	default:
		return "?"
	}
}

// Truthy interprets the value as a condition result: TRUE booleans, non-zero
// numbers and non-empty strings are truthy; NULL is falsy.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// Coerce converts v to the requested kind when a safe conversion exists
// (int↔float, anything→string via Display, "0"/"1"/"true"/"false"→bool,
// numeric strings→numbers). It returns an error otherwise. NULL coerces to
// NULL of any kind.
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == KindNull || v.kind == k {
		return v, nil
	}
	switch k {
	case KindString:
		return Str(v.Display()), nil
	case KindFloat:
		switch v.kind {
		case KindInt:
			return Float(float64(v.i)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null(), fmt.Errorf("relstore: cannot coerce %s to REAL", v)
			}
			return Float(f), nil
		case KindBool:
			if v.b {
				return Float(1), nil
			}
			return Float(0), nil
		}
	case KindInt:
		switch v.kind {
		case KindFloat:
			if v.f == float64(int64(v.f)) {
				return Int(int64(v.f)), nil
			}
			return Null(), fmt.Errorf("relstore: cannot coerce %s to INTEGER without loss", v)
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null(), fmt.Errorf("relstore: cannot coerce %s to INTEGER", v)
			}
			return Int(i), nil
		case KindBool:
			if v.b {
				return Int(1), nil
			}
			return Int(0), nil
		}
	case KindBool:
		switch v.kind {
		case KindInt:
			return Bool(v.i != 0), nil
		case KindFloat:
			return Bool(v.f != 0), nil
		case KindString:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "true", "t", "yes", "y", "1":
				return Bool(true), nil
			case "false", "f", "no", "n", "0":
				return Bool(false), nil
			}
			return Null(), fmt.Errorf("relstore: cannot coerce %s to BOOLEAN", v)
		}
	}
	return Null(), fmt.Errorf("relstore: cannot coerce %s (%s) to %s", v, v.kind, k)
}

// Row is a tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row that shares no backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows have the same length and pairwise-equal
// values.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key concatenates the value keys of the row, for hashing whole tuples.
func (r Row) Key() string {
	var sb strings.Builder
	for _, v := range r {
		sb.WriteString(v.Key())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}
