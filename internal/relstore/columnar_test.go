package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// The columnar equivalence harness: every chunked operator must produce
// output identical — same rows, same order, same value kinds — to a
// row-at-a-time reference, over seeded randomized relations covering NULLs,
// kind exceptions (ints stored in REAL columns), huge int64s beyond float64
// precision, empty inputs, and every batch-size/parallelism configuration.

// strictValEq is stricter than Value.Equal: kinds must match exactly, so an
// Int(2) that came back as Float(2) fails.
func strictValEq(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case KindNull:
		return true
	case KindInt:
		return a.AsInt() == b.AsInt()
	case KindFloat:
		return a.AsFloat() == b.AsFloat()
	case KindString:
		return a.AsString() == b.AsString()
	default:
		return a.AsBool() == b.AsBool()
	}
}

func strictRowsEq(got, want *Rows) error {
	if !got.Schema.Equal(want.Schema) {
		return fmt.Errorf("schema (%s) != (%s)", got.Schema.NameList(), want.Schema.NameList())
	}
	if len(got.Data) != len(want.Data) {
		return fmt.Errorf("%d rows, want %d", len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if len(got.Data[i]) != len(want.Data[i]) {
			return fmt.Errorf("row %d arity %d != %d", i, len(got.Data[i]), len(want.Data[i]))
		}
		for c := range got.Data[i] {
			if !strictValEq(got.Data[i][c], want.Data[i][c]) {
				return fmt.Errorf("row %d col %d: %v != %v", i, c, got.Data[i][c], want.Data[i][c])
			}
		}
	}
	return nil
}

// withExec reconfigures the chunk width and pool for one test, restoring the
// previous configuration on cleanup.
func withExec(t *testing.T, batch, par int) {
	t.Helper()
	ob, op := BatchSize(), Parallelism()
	SetBatchSize(batch)
	SetParallelism(par)
	t.Cleanup(func() {
		SetBatchSize(ob)
		SetParallelism(op)
	})
}

// execConfigs are the batch/parallelism shapes the equivalence tests sweep:
// degenerate one-row chunks, odd widths that leave ragged tails, and the
// default — each sequential and parallel.
var execConfigs = [][2]int{{1, 1}, {1, 4}, {7, 1}, {7, 3}, {64, 8}, {DefaultBatchSize, 8}}

func propSchema() *Schema {
	return MustSchema(
		Column{Name: "ID", Type: KindInt, NotNull: true},
		Column{Name: "K", Type: KindString},
		Column{Name: "N", Type: KindInt},
		Column{Name: "X", Type: KindFloat},
		Column{Name: "B", Type: KindBool},
	)
}

// randRelation builds a random relation over propSchema: ~quarter NULLs in
// nullable columns, string keys from a small alphabet (to force join and
// group collisions), int64s that occasionally exceed 2^53 (to catch any
// float64 round-trip in a kernel), and REAL cells that sometimes hold Int
// values — the kind-exception path Schema.Validate permits.
func randRelation(r *rand.Rand, n int) *Rows {
	data := make([]Row, n)
	for i := range data {
		row := Row{Int(int64(i)), Null(), Null(), Null(), Null()}
		if r.Intn(4) > 0 {
			row[1] = Str(string(rune('a' + r.Intn(5))))
		}
		if r.Intn(4) > 0 {
			if r.Intn(5) == 0 {
				row[2] = Int((int64(1) << 60) + int64(r.Intn(3)))
			} else {
				row[2] = Int(int64(r.Intn(20) - 10))
			}
		}
		if r.Intn(4) > 0 {
			if r.Intn(3) == 0 {
				row[3] = Int(int64(r.Intn(10))) // exception: Int in REAL column
			} else {
				row[3] = Float(float64(r.Intn(100)) / 4)
			}
		}
		if r.Intn(4) > 0 {
			row[4] = Bool(r.Intn(2) == 0)
		}
		data[i] = row
	}
	return &Rows{Schema: propSchema(), Data: data}
}

// randPred builds a random predicate tree over propSchema's columns.
func randPred(r *rand.Rand, depth int) Pred {
	if depth > 0 && r.Intn(2) == 0 {
		switch r.Intn(3) {
		case 0:
			return And(randPred(r, depth-1), randPred(r, depth-1))
		case 1:
			return Or(randPred(r, depth-1), randPred(r, depth-1))
		default:
			return Not(randPred(r, depth-1))
		}
	}
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	switch r.Intn(7) {
	case 0:
		return Cmp(ops[r.Intn(len(ops))], Col("K"), Lit(Str(string(rune('a'+r.Intn(5))))))
	case 1:
		return Cmp(ops[r.Intn(len(ops))], Col("N"), Lit(Int(int64(r.Intn(20)-10))))
	case 2:
		// Cross-kind numeric: int column vs float literal and vice versa.
		if r.Intn(2) == 0 {
			return Cmp(ops[r.Intn(len(ops))], Col("N"), Lit(Float(float64(r.Intn(20)-10)+0.5)))
		}
		return Cmp(ops[r.Intn(len(ops))], Col("X"), Lit(Int(int64(r.Intn(10)))))
	case 3:
		if r.Intn(2) == 0 {
			return IsNull(Col("X"))
		}
		return IsNotNull(Col("K"))
	case 4:
		return In(Col("K"), Str("a"), Str("c"), Null())
	case 5:
		return Eq("B", Bool(r.Intn(2) == 0))
	default:
		// Huge-int equality: must compare exactly, not through float64.
		return Eq("N", Int((int64(1)<<60)+1))
	}
}

// refSelect is the row-at-a-time reference the columnar Select must match.
func refSelect(in *Rows, pred Pred) (*Rows, error) {
	var out []Row
	for _, r := range in.Data {
		ok, err := evalPred(pred, r, in.Schema)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return &Rows{Schema: in.Schema, Data: out}, nil
}

func TestColumnarSelectEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		in := randRelation(r, r.Intn(150))
		pred := randPred(r, 3)
		want, refErr := refSelect(in, pred)
		for _, cfg := range execConfigs {
			withExec(t, cfg[0], cfg[1])
			got, err := Select(in, pred)
			if refErr != nil {
				if err == nil {
					t.Fatalf("trial %d cfg %v: reference errored (%v), columnar did not", trial, cfg, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d cfg %v: %v", trial, cfg, err)
			}
			if err := strictRowsEq(got, want); err != nil {
				t.Fatalf("trial %d cfg %v pred %s: %v", trial, cfg, pred.SQL(), err)
			}
		}
	}
}

// refJoin is a sequential nested-loop inner join: NULL keys never match,
// output in left order then right order.
func refJoin(left, right *Rows, leftCol, rightCol, prefix string) (*Rows, error) {
	schema, err := joinSchema(left.Schema, right.Schema, prefix)
	if err != nil {
		return nil, err
	}
	li, ri := left.Schema.Index(leftCol), right.Schema.Index(rightCol)
	var out []Row
	for _, lr := range left.Data {
		if lr[li].IsNull() {
			continue
		}
		for _, rr := range right.Data {
			if !rr[ri].IsNull() && lr[li].Key() == rr[ri].Key() {
				nr := append(append(make(Row, 0, schema.Arity()), lr...), rr...)
				out = append(out, nr)
			}
		}
	}
	return &Rows{Schema: schema, Data: out}, nil
}

func refLeftJoin(left, right *Rows, leftCol, rightCol, prefix string) (*Rows, error) {
	inner, err := refJoin(left, right, leftCol, rightCol, prefix)
	if err != nil {
		return nil, err
	}
	li, ri := left.Schema.Index(leftCol), right.Schema.Index(rightCol)
	for _, lr := range left.Data {
		matched := false
		if !lr[li].IsNull() {
			for _, rr := range right.Data {
				if !rr[ri].IsNull() && lr[li].Key() == rr[ri].Key() {
					matched = true
					break
				}
			}
		}
		if !matched {
			nr := append(make(Row, 0, inner.Schema.Arity()), lr...)
			for i := 0; i < right.Schema.Arity(); i++ {
				nr = append(nr, Null())
			}
			inner.Data = append(inner.Data, nr)
		}
	}
	return inner, nil
}

func TestColumnarJoinEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		left := randRelation(r, r.Intn(80))
		right := randRelation(r, r.Intn(60))
		wantJ, err := refJoin(left, right, "K", "K", "r")
		if err != nil {
			t.Fatal(err)
		}
		wantL, err := refLeftJoin(left, right, "K", "K", "r")
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range execConfigs {
			withExec(t, cfg[0], cfg[1])
			gotJ, err := Join(left, right, "K", "K", "r")
			if err != nil {
				t.Fatal(err)
			}
			if err := strictRowsEq(gotJ, wantJ); err != nil {
				t.Fatalf("trial %d cfg %v join: %v", trial, cfg, err)
			}
			gotL, err := LeftJoin(left, right, "K", "K", "r")
			if err != nil {
				t.Fatal(err)
			}
			if err := strictRowsEq(gotL, wantL); err != nil {
				t.Fatalf("trial %d cfg %v left join: %v", trial, cfg, err)
			}
		}
	}
}

// TestColumnarOpsChunkInvariance pins the remaining operators: whatever the
// chunk width and pool size, output must be byte-identical to the sequential
// single-chunk run.
func TestColumnarOpsChunkInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	type op struct {
		name string
		run  func(*Rows) (*Rows, error)
	}
	ops := []op{
		{"project", func(in *Rows) (*Rows, error) { return Project(in, "K", "ID") }},
		{"derive", func(in *Rows) (*Rows, error) {
			return Derive(in,
				Derivation{Name: "twice", Type: KindInt, Expr: Arith(OpMul, Col("ID"), Lit(Int(2)))},
				Derivation{Name: "tag", Type: KindString, Expr: Call("UPPER", Col("K"))},
			)
		}},
		{"extend", func(in *Rows) (*Rows, error) {
			return Extend(in, Derivation{Name: "has", Type: KindBool, Expr: CaseExpr{
				Branches: []CaseBranch{{When: IsNull(Col("X")), Then: Lit(Bool(false))}},
				Else:     Lit(Bool(true)),
			}})
		}},
		{"distinct", func(in *Rows) (*Rows, error) {
			p, err := Project(in, "K", "B")
			if err != nil {
				return nil, err
			}
			return Distinct(p), nil
		}},
		{"sort", func(in *Rows) (*Rows, error) { return SortBy(in, "K", "N", "ID") }},
		{"pivot", func(in *Rows) (*Rows, error) { return Pivot(in, []string{"ID"}, "Attr", "Val") }},
		{"unpivot", func(in *Rows) (*Rows, error) {
			piv, err := Pivot(in, []string{"ID"}, "Attr", "Val")
			if err != nil {
				return nil, err
			}
			return Unpivot(piv, []string{"ID"}, "Attr", "Val", []Column{
				{Name: "K", Type: KindString}, {Name: "B", Type: KindBool},
			})
		}},
		{"group", func(in *Rows) (*Rows, error) {
			return GroupBy(in, []string{"K"},
				Aggregate{Kind: AggCount, As: "n"},
				Aggregate{Kind: AggSum, Col: "X", As: "sx"},
				Aggregate{Kind: AggMin, Col: "N", As: "mn"},
				Aggregate{Kind: AggMax, Col: "X", As: "mx"},
				Aggregate{Kind: AggAvg, Col: "N", As: "av"},
			)
		}},
	}
	for trial := 0; trial < 10; trial++ {
		in := randRelation(r, r.Intn(120))
		for _, o := range ops {
			withExec(t, 1<<30, 1) // sequential, single chunk: the reference
			want, refErr := o.run(in)
			for _, cfg := range execConfigs {
				withExec(t, cfg[0], cfg[1])
				got, err := o.run(in)
				if refErr != nil {
					if err == nil {
						t.Fatalf("trial %d %s cfg %v: reference errored (%v), chunked did not", trial, o.name, cfg, refErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("trial %d %s cfg %v: %v", trial, o.name, cfg, err)
				}
				if err := strictRowsEq(got, want); err != nil {
					t.Fatalf("trial %d %s cfg %v: %v", trial, o.name, cfg, err)
				}
			}
		}
	}
}

// TestColumnarErrorEquivalence: a predicate that errors on some row must
// error under every configuration, with the same (first-chunk) error text.
func TestColumnarErrorEquivalence(t *testing.T) {
	in := randRelation(rand.New(rand.NewSource(17)), 300)
	// Ordered comparison between TEXT and BOOLEAN errors on any row where
	// both sides are non-NULL.
	bad := Cmp(CmpLt, Col("K"), Col("B"))
	want, refErr := refSelect(in, bad)
	if refErr == nil {
		t.Fatalf("reference did not error (got %d rows)", want.Len())
	}
	for _, cfg := range execConfigs {
		withExec(t, cfg[0], cfg[1])
		if _, err := Select(in, bad); err == nil {
			t.Fatalf("cfg %v: columnar select did not error", cfg)
		}
	}
	// Short-circuit guard: the same comparison behind a FALSE conjunct must
	// NOT error — AND masks restrict later conjuncts to surviving rows.
	guarded := And(BoolLit{V: false}, bad)
	for _, cfg := range execConfigs {
		withExec(t, cfg[0], cfg[1])
		out, err := Select(in, guarded)
		if err != nil {
			t.Fatalf("cfg %v: guarded conjunct evaluated on masked rows: %v", cfg, err)
		}
		if out.Len() != 0 {
			t.Fatalf("cfg %v: FALSE AND ... selected %d rows", cfg, out.Len())
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	in := randRelation(r, 200)
	b := BatchFromRows(in, 0, len(in.Data), nil)
	for i, row := range in.Data {
		for c := range row {
			got := b.Vecs[c].Value(i)
			if !strictValEq(got, row[c]) {
				t.Fatalf("row %d col %d: vector gave %v, want %v", i, c, got, row[c])
			}
			if b.Vecs[c].Null(i) != row[c].IsNull() {
				t.Fatalf("row %d col %d: null bit %v, value %v", i, c, b.Vecs[c].Null(i), row[c])
			}
		}
		if err := strictRowsEq(&Rows{Schema: in.Schema, Data: []Row{b.Row(i)}},
			&Rows{Schema: in.Schema, Data: []Row{row}}); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	// The REAL column holds Int exceptions by construction; the vector must
	// know it is impure, and a pure column must report pure.
	xi := in.Schema.Index("X")
	hasExc := false
	for _, row := range in.Data {
		if !row[xi].IsNull() && row[xi].Kind() == KindInt {
			hasExc = true
		}
	}
	if hasExc == b.Vecs[xi].Pure() {
		t.Errorf("X column: exceptions=%v but Pure()=%v", hasExc, b.Vecs[xi].Pure())
	}
	if !b.Vecs[in.Schema.Index("ID")].Pure() {
		t.Error("ID column has no exceptions but reports impure")
	}
	// Round-trip through Batch.Rows as a whole.
	if err := strictRowsEq(b.Rows(), in); err != nil {
		t.Fatal(err)
	}
}

func TestEqualUnordered(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	in := randRelation(r, 50)
	perm := in.Clone()
	rand.New(rand.NewSource(29)).Shuffle(len(perm.Data), func(i, j int) {
		perm.Data[i], perm.Data[j] = perm.Data[j], perm.Data[i]
	})
	if !in.EqualUnordered(perm) {
		t.Error("permutation must compare equal")
	}
	// Multiset semantics: duplicate counts matter.
	s := MustSchema(Column{Name: "V", Type: KindInt})
	a := &Rows{Schema: s, Data: []Row{{Int(1)}, {Int(1)}, {Int(2)}}}
	b := &Rows{Schema: s, Data: []Row{{Int(1)}, {Int(2)}, {Int(2)}}}
	if a.EqualUnordered(b) {
		t.Error("different duplicate counts must compare unequal")
	}
	if !a.EqualUnordered(&Rows{Schema: s, Data: []Row{{Int(2)}, {Int(1)}, {Int(1)}}}) {
		t.Error("same multiset must compare equal")
	}
	// Sorted-key comparison is total even when many rows collide on a key
	// prefix; verify against a sequential sort of the same keys.
	keys := ParallelRowKeys(in.Data, Row.Key)
	seq := make([]string, len(in.Data))
	for i, row := range in.Data {
		seq[i] = row.Key()
	}
	sort.Strings(keys)
	sort.Strings(seq)
	for i := range keys {
		if keys[i] != seq[i] {
			t.Fatalf("parallel key %d diverges from sequential", i)
		}
	}
}
