package relstore

import (
	"fmt"
	"strings"
)

// Pred is a boolean condition over a row. Like Expr it is structured so
// plans can be rendered to SQL and inspected by analysts.
type Pred interface {
	Eval(r Row, s *Schema) (bool, error)
	SQL() string
}

// evalPred treats a nil predicate as TRUE.
func evalPred(p Pred, r Row, s *Schema) (bool, error) {
	if p == nil {
		return true, nil
	}
	return p.Eval(r, s)
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators supported in classifier guards.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// CmpPred compares two scalar expressions. Comparison with NULL on either
// side yields false (SQL three-valued logic collapsed to false), except
// equality where NULL = NULL holds; classifier semantics need to match
// "Unselected" sentinel values exactly.
type CmpPred struct {
	Op   CmpOp
	L, R Expr
}

// Cmp builds a comparison predicate.
func Cmp(op CmpOp, l, r Expr) CmpPred { return CmpPred{Op: op, L: l, R: r} }

// Eq builds an equality predicate between a column and a literal.
func Eq(col string, v Value) CmpPred { return Cmp(CmpEq, Col(col), Lit(v)) }

// Eval implements Pred.
func (c CmpPred) Eval(r Row, s *Schema) (bool, error) {
	lv, err := c.L.Eval(r, s)
	if err != nil {
		return false, err
	}
	rv, err := c.R.Eval(r, s)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case CmpEq:
		return lv.Equal(rv), nil
	case CmpNe:
		if lv.IsNull() || rv.IsNull() {
			return !lv.Equal(rv), nil
		}
		return !lv.Equal(rv), nil
	}
	if lv.IsNull() || rv.IsNull() {
		return false, nil
	}
	if lv.Kind() != rv.Kind() && !(lv.IsNumeric() && rv.IsNumeric()) {
		return false, fmt.Errorf("relstore: ordered comparison between %s and %s", lv.Kind(), rv.Kind())
	}
	cmp := lv.Compare(rv)
	switch c.Op {
	case CmpLt:
		return cmp < 0, nil
	case CmpLe:
		return cmp <= 0, nil
	case CmpGt:
		return cmp > 0, nil
	case CmpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("relstore: unknown comparison op %d", c.Op)
}

// SQL implements Pred.
func (c CmpPred) SQL() string {
	return c.L.SQL() + " " + c.Op.String() + " " + c.R.SQL()
}

// AndPred is a conjunction. Empty conjunctions are TRUE.
type AndPred struct{ Ps []Pred }

// And conjoins predicates, flattening nested Ands and dropping nils.
func And(ps ...Pred) Pred {
	flat := make([]Pred, 0, len(ps))
	for _, p := range ps {
		switch q := p.(type) {
		case nil:
		case AndPred:
			flat = append(flat, q.Ps...)
		default:
			if p != nil {
				flat = append(flat, p)
			}
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return AndPred{Ps: flat}
}

// Eval implements Pred.
func (a AndPred) Eval(r Row, s *Schema) (bool, error) {
	for _, p := range a.Ps {
		ok, err := p.Eval(r, s)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// SQL implements Pred.
func (a AndPred) SQL() string {
	if len(a.Ps) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a.Ps))
	for i, p := range a.Ps {
		parts[i] = p.SQL()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// OrPred is a disjunction. Empty disjunctions are FALSE.
type OrPred struct{ Ps []Pred }

// Or disjoins predicates, flattening nested Ors.
func Or(ps ...Pred) Pred {
	flat := make([]Pred, 0, len(ps))
	for _, p := range ps {
		switch q := p.(type) {
		case nil:
		case OrPred:
			flat = append(flat, q.Ps...)
		default:
			if p != nil {
				flat = append(flat, p)
			}
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return OrPred{Ps: flat}
}

// Eval implements Pred.
func (o OrPred) Eval(r Row, s *Schema) (bool, error) {
	for _, p := range o.Ps {
		ok, err := p.Eval(r, s)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// SQL implements Pred.
func (o OrPred) SQL() string {
	if len(o.Ps) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(o.Ps))
	for i, p := range o.Ps {
		parts[i] = p.SQL()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// NotPred negates a predicate.
type NotPred struct{ P Pred }

// Not negates a predicate.
func Not(p Pred) NotPred { return NotPred{P: p} }

// Eval implements Pred.
func (n NotPred) Eval(r Row, s *Schema) (bool, error) {
	ok, err := n.P.Eval(r, s)
	return !ok, err
}

// SQL implements Pred.
func (n NotPred) SQL() string { return "NOT (" + n.P.SQL() + ")" }

// NullPred tests an expression for NULL (or NOT NULL when Negate is set).
type NullPred struct {
	E      Expr
	Negate bool
}

// IsNull builds an IS NULL predicate.
func IsNull(e Expr) NullPred { return NullPred{E: e} }

// IsNotNull builds an IS NOT NULL predicate.
func IsNotNull(e Expr) NullPred { return NullPred{E: e, Negate: true} }

// Eval implements Pred.
func (p NullPred) Eval(r Row, s *Schema) (bool, error) {
	v, err := p.E.Eval(r, s)
	if err != nil {
		return false, err
	}
	if p.Negate {
		return !v.IsNull(), nil
	}
	return v.IsNull(), nil
}

// SQL implements Pred.
func (p NullPred) SQL() string {
	if p.Negate {
		return p.E.SQL() + " IS NOT NULL"
	}
	return p.E.SQL() + " IS NULL"
}

// InPred tests membership of an expression in a literal list.
type InPred struct {
	E    Expr
	List []Value
}

// In builds an IN-list predicate.
func In(e Expr, vs ...Value) InPred { return InPred{E: e, List: vs} }

// Eval implements Pred.
func (p InPred) Eval(r Row, s *Schema) (bool, error) {
	v, err := p.E.Eval(r, s)
	if err != nil {
		return false, err
	}
	for _, c := range p.List {
		if v.Equal(c) {
			return true, nil
		}
	}
	return false, nil
}

// SQL implements Pred.
func (p InPred) SQL() string {
	parts := make([]string, len(p.List))
	for i, v := range p.List {
		parts[i] = v.String()
	}
	return p.E.SQL() + " IN (" + strings.Join(parts, ", ") + ")"
}

// BoolLit is a constant predicate.
type BoolLit struct{ V bool }

// True is the always-true predicate; False the always-false one.
var (
	True  = BoolLit{V: true}
	False = BoolLit{V: false}
)

// Eval implements Pred.
func (b BoolLit) Eval(Row, *Schema) (bool, error) { return b.V, nil }

// SQL implements Pred.
func (b BoolLit) SQL() string {
	if b.V {
		return "TRUE"
	}
	return "FALSE"
}

// PredExpr adapts a predicate to a boolean scalar expression; the classifier
// compiler uses it to materialize boolean study-schema domains.
type PredExpr struct{ P Pred }

// AsExpr adapts a predicate to an expression yielding TRUE/FALSE.
func AsExpr(p Pred) PredExpr { return PredExpr{P: p} }

// Eval implements Expr.
func (pe PredExpr) Eval(r Row, s *Schema) (Value, error) {
	ok, err := evalPred(pe.P, r, s)
	if err != nil {
		return Null(), err
	}
	return Bool(ok), nil
}

// SQL implements Expr.
func (pe PredExpr) SQL() string { return "(" + pe.P.SQL() + ")" }

// ExprPred adapts a scalar expression to a predicate via truthiness; it lets
// classifier guards reference boolean g-tree nodes directly, as in
// "SurgeryPerformed = TRUE" or bare "SurgeryPerformed".
type ExprPred struct{ E Expr }

// Truth adapts an expression to a predicate.
func Truth(e Expr) ExprPred { return ExprPred{E: e} }

// Eval implements Pred.
func (p ExprPred) Eval(r Row, s *Schema) (bool, error) {
	v, err := p.E.Eval(r, s)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// SQL implements Pred.
func (p ExprPred) SQL() string { return p.E.SQL() }
