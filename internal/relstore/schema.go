package relstore

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name    string
	Type    Kind
	NotNull bool
}

// Schema is an ordered list of columns. Column names are unique
// case-sensitively; lookups are case-sensitive because the schemas in this
// system are machine-generated from form definitions.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns, validating name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relstore: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relstore: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1 when absent.
func (s *Schema) Index(name string) int {
	if s == nil || s.byName == nil {
		return -1
	}
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Col returns the column with the given name.
func (s *Schema) Col(name string) (Column, error) {
	i := s.Index(name)
	if i < 0 {
		return Column{}, fmt.Errorf("relstore: no column %q in (%s)", name, s.NameList())
	}
	return s.Columns[i], nil
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// NameList renders the column names as a comma-separated list.
func (s *Schema) NameList() string { return strings.Join(s.Names(), ", ") }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Arity() != o.Arity() {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing the named columns in the given
// order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		c, err := s.Col(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return NewSchema(cols...)
}

// Rename returns a copy of the schema with one column renamed.
func (s *Schema) Rename(from, to string) (*Schema, error) {
	if !s.Has(from) {
		return nil, fmt.Errorf("relstore: rename: no column %q", from)
	}
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	cols[s.Index(from)].Name = to
	return NewSchema(cols...)
}

// Append returns a copy of the schema with extra columns added at the end.
func (s *Schema) Append(cols ...Column) (*Schema, error) {
	all := make([]Column, 0, len(s.Columns)+len(cols))
	all = append(all, s.Columns...)
	all = append(all, cols...)
	return NewSchema(all...)
}

// Validate checks a row against the schema: arity, NOT NULL, and value kinds
// (NULL is allowed in nullable columns; int is accepted where float is
// declared).
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("relstore: row arity %d != schema arity %d (%s)", len(r), len(s.Columns), s.NameList())
	}
	for i, c := range s.Columns {
		v := r[i]
		if v.IsNull() {
			if c.NotNull {
				return fmt.Errorf("relstore: NULL in NOT NULL column %q", c.Name)
			}
			continue
		}
		if v.Kind() == c.Type {
			continue
		}
		if c.Type == KindFloat && v.Kind() == KindInt {
			continue
		}
		return fmt.Errorf("relstore: column %q expects %s, got %s (%s)", c.Name, c.Type, v.Kind(), v)
	}
	return nil
}

// DDL renders the schema as a CREATE TABLE body for documentation output.
func (s *Schema) DDL() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		p := c.Name + " " + c.Type.String()
		if c.NotNull {
			p += " NOT NULL"
		}
		parts[i] = p
	}
	return strings.Join(parts, ", ")
}
