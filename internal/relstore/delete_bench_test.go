package relstore

import (
	"fmt"
	"testing"
)

// keyedBenchTable builds a table shaped like a warehouse study table: a
// string entity key (indexed, unique) and an indexed low-cardinality
// partition column.
func keyedBenchTable(b *testing.B, n int) *Table {
	b.Helper()
	s := MustSchema(
		Column{Name: "EntityKey", Type: KindString, NotNull: true},
		Column{Name: "Contributor", Type: KindString},
		Column{Name: "V", Type: KindInt},
	)
	t := NewTable("T", s)
	for i := 0; i < n; i++ {
		if err := t.Insert(Row{Str(fmt.Sprintf("k%05d", i)), Str(fmt.Sprintf("c%d", i%3)), Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	if err := t.CreateIndex("EntityKey"); err != nil {
		b.Fatal(err)
	}
	if err := t.CreateIndex("Contributor"); err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkDeleteSmallFromLarge is the delta-refresh hot path: delete a
// handful of keyed rows out of a large indexed table, then put them back.
// The delete must stay near-flat as the table grows — it is allowed integer
// work on the surviving index entries, but no re-hashing of row values and
// no O(rows) allocations.
func BenchmarkDeleteSmallFromLarge(b *testing.B) {
	for _, n := range []int{100, 6000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := keyedBenchTable(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				keys := make([]Value, 8)
				for j := range keys {
					keys[j] = Str(fmt.Sprintf("k%05d", (i*8+j)%n))
				}
				pred := In(Col("EntityKey"), keys...)
				rows, err := t.Select(pred)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := t.Delete(pred); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, r := range rows.Data {
					if err := t.Insert(r); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}
