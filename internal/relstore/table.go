package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// Table is a named, mutable relation with optional hash indexes. Tables are
// safe for concurrent use.
//
// Indexes reference rows through stable row IDs rather than storage
// positions: ids maps a position to its row's ID and pos maps an ID back to
// the current position. Deleting rows therefore only edits the doomed rows'
// own buckets and renumbers the pos array — an integer fix-up — instead of
// rewriting every bucket of every index.
type Table struct {
	name   string
	schema *Schema

	mu      sync.RWMutex
	rows    []Row
	ids     []int                 // position -> stable row ID, parallel to rows
	pos     []int                 // row ID -> current position, -1 once deleted
	freeIDs []int                 // deleted IDs available for reuse
	indexes map[string]*hashIndex // column name -> index
}

type hashIndex struct {
	col     int
	buckets map[string][]int // value key -> stable row IDs
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema, indexes: make(map[string]*hashIndex)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert validates and appends a row. The row is cloned; the caller may
// reuse its slice.
func (t *Table) Insert(r Row) error {
	if err := t.schema.Validate(r); err != nil {
		return fmt.Errorf("insert into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := len(t.rows)
	t.rows = append(t.rows, r.Clone())
	var id int
	if n := len(t.freeIDs); n > 0 {
		id = t.freeIDs[n-1]
		t.freeIDs = t.freeIDs[:n-1]
		t.pos[id] = p
	} else {
		id = len(t.pos)
		t.pos = append(t.pos, p)
	}
	t.ids = append(t.ids, id)
	for _, idx := range t.indexes {
		k := r[idx.col].Key()
		idx.buckets[k] = append(idx.buckets[k], id)
	}
	return nil
}

// InsertAll inserts each row, stopping at the first error.
func (t *Table) InsertAll(rows []Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// InsertMap inserts a row given as a column-name→value map; absent nullable
// columns become NULL.
func (t *Table) InsertMap(m map[string]Value) error {
	r := make(Row, t.schema.Arity())
	for name, v := range m {
		i := t.schema.Index(name)
		if i < 0 {
			return fmt.Errorf("insert into %s: no column %q", t.name, name)
		}
		r[i] = v
	}
	return t.Insert(r)
}

// Update applies fn to every row matching pred, replacing the stored row
// with the returned one. It returns the number of rows updated. Indexes are
// rebuilt if any update occurred.
func (t *Table) Update(pred Pred, fn func(Row) Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i, r := range t.rows {
		ok, err := evalPred(pred, r, t.schema)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		nr := fn(r.Clone())
		if err := t.schema.Validate(nr); err != nil {
			return n, fmt.Errorf("update %s: %w", t.name, err)
		}
		t.rows[i] = nr
		n++
	}
	if n > 0 {
		t.rebuildIndexesLocked()
	}
	return n, nil
}

// Delete removes rows matching pred and returns how many were removed.
// Candidate rows come from a hash-index probe when the predicate has an
// indexable equality or IN conjunct. Because indexes hold stable row IDs,
// deleting k rows costs O(k) bucket edits plus an integer renumbering of the
// positions after the first hole — the rest of the index is untouched, so
// small deletes from a large table stay cheap no matter how many rows or
// buckets the table has. Row positions are decided before any mutation, so a
// predicate error leaves the table untouched.
func (t *Table) Delete(pred Pred) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	var doomed []int
	probe := func(ids []int, rest Pred) error {
		for _, id := range ids {
			p := t.pos[id]
			ok, err := evalPred(rest, t.rows[p], t.schema)
			if err != nil {
				return err
			}
			if ok {
				doomed = append(doomed, p)
			}
		}
		return nil
	}
	if col, v, rest, ok := t.indexableEqLocked(pred); ok {
		if err := probe(t.indexes[col].buckets[v.Key()], rest); err != nil {
			return 0, err
		}
	} else if col, vs, rest, ok := t.indexableInLocked(pred); ok {
		idx := t.indexes[col]
		seen := make(map[string]bool, len(vs))
		for _, v := range vs {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := probe(idx.buckets[k], rest); err != nil {
				return 0, err
			}
		}
	} else {
		for p, r := range t.rows {
			ok, err := evalPred(pred, r, t.schema)
			if err != nil {
				return 0, err
			}
			if ok {
				doomed = append(doomed, p)
			}
		}
	}
	if len(doomed) == 0 {
		return 0, nil
	}
	sort.Ints(doomed)

	// Remove each doomed row's ID from its bucket in every index and retire
	// the ID. Only the doomed rows' buckets are touched.
	for _, p := range doomed {
		id := t.ids[p]
		r := t.rows[p]
		for _, idx := range t.indexes {
			k := r[idx.col].Key()
			b := idx.buckets[k]
			for i, bid := range b {
				if bid == id {
					b[i] = b[len(b)-1]
					b = b[:len(b)-1]
					break
				}
			}
			if len(b) == 0 {
				delete(idx.buckets, k)
			} else {
				idx.buckets[k] = b
			}
		}
		t.pos[id] = -1
		t.freeIDs = append(t.freeIDs, id)
	}

	// Compact rows and ids in place — entries before the first hole stay
	// put, the rest slide left — and point the surviving IDs at their new
	// positions. Pure integer work, no allocation, no re-hashing.
	w := doomed[0]
	di := 0
	for p := doomed[0]; p < len(t.rows); p++ {
		if di < len(doomed) && doomed[di] == p {
			di++
			continue
		}
		t.rows[w] = t.rows[p]
		t.ids[w] = t.ids[p]
		t.pos[t.ids[w]] = w
		w++
	}
	for p := w; p < len(t.rows); p++ {
		t.rows[p] = nil // release for GC
	}
	t.rows = t.rows[:w]
	t.ids = t.ids[:w]
	return len(doomed), nil
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	t.ids = nil
	t.pos = nil
	t.freeIDs = nil
	t.rebuildIndexesLocked()
}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op.
func (t *Table) CreateIndex(col string) error {
	i := t.schema.Index(col)
	if i < 0 {
		return fmt.Errorf("relstore: index on %s: no column %q", t.name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := &hashIndex{col: i, buckets: make(map[string][]int)}
	for p, r := range t.rows {
		k := r[i].Key()
		idx.buckets[k] = append(idx.buckets[k], t.ids[p])
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether a hash index exists on the column.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[col]
	return ok
}

func (t *Table) rebuildIndexesLocked() {
	for col, idx := range t.indexes {
		i := idx.col
		nb := make(map[string][]int)
		for p, r := range t.rows {
			k := r[i].Key()
			nb[k] = append(nb[k], t.ids[p])
		}
		t.indexes[col] = &hashIndex{col: i, buckets: nb}
	}
}

// bucketPositionsLocked maps a bucket's row IDs to their current storage
// positions, sorted ascending so index probes yield rows in the same order a
// full scan would. Callers must hold t.mu.
func (t *Table) bucketPositionsLocked(ids []int) []int {
	ps := make([]int, len(ids))
	for i, id := range ids {
		ps[i] = t.pos[id]
	}
	sort.Ints(ps)
	return ps
}

// Lookup returns clones of the rows whose indexed column equals v. It falls
// back to a scan when no index exists on the column.
func (t *Table) Lookup(col string, v Value) ([]Row, error) {
	ci := t.schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: lookup on %s: no column %q", t.name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[col]; ok {
		positions := t.bucketPositionsLocked(idx.buckets[v.Key()])
		out := make([]Row, 0, len(positions))
		for _, p := range positions {
			out = append(out, t.rows[p].Clone())
		}
		return out, nil
	}
	var out []Row
	for _, r := range t.rows {
		if r[ci].Equal(v) {
			out = append(out, r.Clone())
		}
	}
	return out, nil
}

// Scan calls fn for every row. The row passed to fn must not be mutated or
// retained; clone it if needed. Scanning stops early if fn returns false.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Select scans the table and returns clones of the rows matching pred (nil
// keeps everything) — unlike Rows()+Select, non-matching rows are never
// cloned, which is what layout-level predicate pushdown buys. When the
// predicate contains an equality on a hash-indexed column, the index probes
// the candidate rows instead of scanning.
func (t *Table) Select(pred Pred) (*Rows, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col, v, rest, ok := t.indexableEqLocked(pred); ok {
		idx := t.indexes[col]
		positions := t.bucketPositionsLocked(idx.buckets[v.Key()])
		out := make([]Row, 0, len(positions))
		for _, p := range positions {
			r := t.rows[p]
			keep, err := evalPred(rest, r, t.schema)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, r.Clone())
			}
		}
		return &Rows{Schema: t.schema, Data: out}, nil
	}
	if col, vs, rest, ok := t.indexableInLocked(pred); ok {
		idx := t.indexes[col]
		var positions []int
		seenBucket := make(map[string]bool, len(vs))
		for _, v := range vs {
			k := v.Key()
			if seenBucket[k] {
				continue
			}
			seenBucket[k] = true
			for _, id := range idx.buckets[k] {
				positions = append(positions, t.pos[id])
			}
		}
		// Buckets come back in probe order; restore storage order so the
		// result is identical to what the scan path would produce.
		sort.Ints(positions)
		out := make([]Row, 0, len(positions))
		for _, p := range positions {
			r := t.rows[p]
			keep, err := evalPred(rest, r, t.schema)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, r.Clone())
			}
		}
		return &Rows{Schema: t.schema, Data: out}, nil
	}
	// No usable index: run the columnar scan kernel over the stored rows
	// (chunk-parallel mask, then an ordered gather of clones). This is the
	// path layout-level predicate pushdown lands on — serve's extract
	// filters arrive here as Preds, not post-hoc row filters.
	in := &Rows{Schema: t.schema, Data: t.rows}
	mask, err := predMask(pred, in)
	if err != nil {
		return nil, err
	}
	var out []Row
	for i, keep := range mask {
		if keep {
			out = append(out, t.rows[i].Clone())
		}
	}
	return &Rows{Schema: t.schema, Data: out}, nil
}

// indexableEqLocked recognizes predicates of the shape "col = literal [AND rest]"
// where col carries a hash index, returning the probe and the residual
// predicate. Callers must hold t.mu.
func (t *Table) indexableEqLocked(pred Pred) (string, Value, Pred, bool) {
	matchCmp := func(p Pred) (string, Value, bool) {
		c, ok := p.(CmpPred)
		if !ok || c.Op != CmpEq {
			return "", Value{}, false
		}
		if col, ok := c.L.(ColRef); ok {
			if lit, ok := c.R.(LitExpr); ok && !lit.V.IsNull() {
				if _, indexed := t.indexes[col.Name]; indexed {
					return col.Name, lit.V, true
				}
			}
		}
		if col, ok := c.R.(ColRef); ok {
			if lit, ok := c.L.(LitExpr); ok && !lit.V.IsNull() {
				if _, indexed := t.indexes[col.Name]; indexed {
					return col.Name, lit.V, true
				}
			}
		}
		return "", Value{}, false
	}
	if col, v, ok := matchCmp(pred); ok {
		return col, v, True, true
	}
	if and, ok := pred.(AndPred); ok {
		for i, sub := range and.Ps {
			if col, v, ok := matchCmp(sub); ok {
				rest := make([]Pred, 0, len(and.Ps)-1)
				rest = append(rest, and.Ps[:i]...)
				rest = append(rest, and.Ps[i+1:]...)
				return col, v, And(rest...), true
			}
		}
	}
	return "", Value{}, nil, false
}

// indexableInLocked recognizes predicates of the shape "col IN (literals) [AND
// rest]" where col carries a hash index and every literal is non-NULL,
// returning the probe values and the residual predicate. Callers must hold
// t.mu.
func (t *Table) indexableInLocked(pred Pred) (string, []Value, Pred, bool) {
	matchIn := func(p Pred) (string, []Value, bool) {
		in, ok := p.(InPred)
		if !ok {
			return "", nil, false
		}
		col, ok := in.E.(ColRef)
		if !ok {
			return "", nil, false
		}
		if _, indexed := t.indexes[col.Name]; !indexed {
			return "", nil, false
		}
		for _, v := range in.List {
			if v.IsNull() {
				return "", nil, false
			}
		}
		return col.Name, in.List, true
	}
	if col, vs, ok := matchIn(pred); ok {
		return col, vs, True, true
	}
	if and, ok := pred.(AndPred); ok {
		for i, sub := range and.Ps {
			if col, vs, ok := matchIn(sub); ok {
				rest := make([]Pred, 0, len(and.Ps)-1)
				rest = append(rest, and.Ps[:i]...)
				rest = append(rest, and.Ps[i+1:]...)
				return col, vs, And(rest...), true
			}
		}
	}
	return "", nil, nil, false
}

// ScanSince calls fn, in storage order, for every row whose value in col
// sorts strictly after the given value. It assumes rows were appended in
// non-decreasing col order — the contract of append-only change logs stamped
// with a monotone sequence — and binary-searches for the first qualifying
// row, so the cost is O(log n + rows yielded) rather than a full scan. The
// row passed to fn must not be mutated or retained; scanning stops early if
// fn returns false.
func (t *Table) ScanSince(col string, after Value, fn func(Row) bool) error {
	ci := t.schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("relstore: scan-since on %s: no column %q", t.name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	lo := sort.Search(len(t.rows), func(i int) bool {
		return t.rows[i][ci].Compare(after) > 0
	})
	for _, r := range t.rows[lo:] {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// Rows returns a snapshot Rows result of the whole table.
func (t *Table) Rows() *Rows {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return &Rows{Schema: t.schema, Data: out}
}

// DB is a named collection of tables; it models one database instance
// (a contributor database, a temporary ETL database, or the warehouse).
type DB struct {
	name string

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (d *DB) Name() string { return d.name }

// CreateTable creates a new table, failing if the name is taken.
func (d *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.tables[name]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists in %s", name, d.name)
	}
	t := NewTable(name, schema)
	d.tables[name] = t
	return t, nil
}

// EnsureTable returns the existing table or creates it. If the table exists
// with a different schema, an error is returned.
func (d *DB) EnsureTable(name string, schema *Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, exists := d.tables[name]; exists {
		if !t.schema.Equal(schema) {
			return nil, fmt.Errorf("relstore: table %q exists with different schema", name)
		}
		return t, nil
	}
	t := NewTable(name, schema)
	d.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (d *DB) Table(name string) (*Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q in %s", name, d.name)
	}
	return t, nil
}

// Has reports whether a table with the name exists.
func (d *DB) Has(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.tables[name]
	return ok
}

// Drop removes a table.
func (d *DB) Drop(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		return fmt.Errorf("relstore: no table %q in %s", name, d.name)
	}
	delete(d.tables, name)
	return nil
}

// TableNames returns the table names in sorted order.
func (d *DB) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
