package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// Table is a named, mutable relation with optional hash indexes. Tables are
// safe for concurrent use.
type Table struct {
	name   string
	schema *Schema

	mu      sync.RWMutex
	rows    []Row
	indexes map[string]*hashIndex // column name -> index
}

type hashIndex struct {
	col     int
	buckets map[string][]int // value key -> row positions
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema, indexes: make(map[string]*hashIndex)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert validates and appends a row. The row is cloned; the caller may
// reuse its slice.
func (t *Table) Insert(r Row) error {
	if err := t.schema.Validate(r); err != nil {
		return fmt.Errorf("insert into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := len(t.rows)
	t.rows = append(t.rows, r.Clone())
	for _, idx := range t.indexes {
		k := r[idx.col].Key()
		idx.buckets[k] = append(idx.buckets[k], pos)
	}
	return nil
}

// InsertAll inserts each row, stopping at the first error.
func (t *Table) InsertAll(rows []Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// InsertMap inserts a row given as a column-name→value map; absent nullable
// columns become NULL.
func (t *Table) InsertMap(m map[string]Value) error {
	r := make(Row, t.schema.Arity())
	for name, v := range m {
		i := t.schema.Index(name)
		if i < 0 {
			return fmt.Errorf("insert into %s: no column %q", t.name, name)
		}
		r[i] = v
	}
	return t.Insert(r)
}

// Update applies fn to every row matching pred, replacing the stored row
// with the returned one. It returns the number of rows updated. Indexes are
// rebuilt if any update occurred.
func (t *Table) Update(pred Pred, fn func(Row) Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i, r := range t.rows {
		ok, err := evalPred(pred, r, t.schema)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		nr := fn(r.Clone())
		if err := t.schema.Validate(nr); err != nil {
			return n, fmt.Errorf("update %s: %w", t.name, err)
		}
		t.rows[i] = nr
		n++
	}
	if n > 0 {
		t.rebuildIndexesLocked()
	}
	return n, nil
}

// Delete removes rows matching pred and returns how many were removed.
func (t *Table) Delete(pred Pred) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rows[:0]
	n := 0
	for _, r := range t.rows {
		ok, err := evalPred(pred, r, t.schema)
		if err != nil {
			return n, err
		}
		if ok {
			n++
			continue
		}
		kept = append(kept, r)
	}
	t.rows = kept
	if n > 0 {
		t.rebuildIndexesLocked()
	}
	return n, nil
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	t.rebuildIndexesLocked()
}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op.
func (t *Table) CreateIndex(col string) error {
	i := t.schema.Index(col)
	if i < 0 {
		return fmt.Errorf("relstore: index on %s: no column %q", t.name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := &hashIndex{col: i, buckets: make(map[string][]int)}
	for pos, r := range t.rows {
		k := r[i].Key()
		idx.buckets[k] = append(idx.buckets[k], pos)
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether a hash index exists on the column.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[col]
	return ok
}

func (t *Table) rebuildIndexesLocked() {
	for col, idx := range t.indexes {
		i := idx.col
		nb := make(map[string][]int)
		for pos, r := range t.rows {
			k := r[i].Key()
			nb[k] = append(nb[k], pos)
		}
		t.indexes[col] = &hashIndex{col: i, buckets: nb}
	}
}

// Lookup returns clones of the rows whose indexed column equals v. It falls
// back to a scan when no index exists on the column.
func (t *Table) Lookup(col string, v Value) ([]Row, error) {
	ci := t.schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: lookup on %s: no column %q", t.name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[col]; ok {
		positions := idx.buckets[v.Key()]
		out := make([]Row, 0, len(positions))
		for _, p := range positions {
			out = append(out, t.rows[p].Clone())
		}
		return out, nil
	}
	var out []Row
	for _, r := range t.rows {
		if r[ci].Equal(v) {
			out = append(out, r.Clone())
		}
	}
	return out, nil
}

// Scan calls fn for every row. The row passed to fn must not be mutated or
// retained; clone it if needed. Scanning stops early if fn returns false.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Select scans the table and returns clones of the rows matching pred (nil
// keeps everything) — unlike Rows()+Select, non-matching rows are never
// cloned, which is what layout-level predicate pushdown buys. When the
// predicate contains an equality on a hash-indexed column, the index probes
// the candidate rows instead of scanning.
func (t *Table) Select(pred Pred) (*Rows, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col, v, rest, ok := t.indexableEq(pred); ok {
		idx := t.indexes[col]
		positions := idx.buckets[v.Key()]
		out := make([]Row, 0, len(positions))
		for _, p := range positions {
			r := t.rows[p]
			keep, err := evalPred(rest, r, t.schema)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, r.Clone())
			}
		}
		return &Rows{Schema: t.schema, Data: out}, nil
	}
	var out []Row
	for _, r := range t.rows {
		ok, err := evalPred(pred, r, t.schema)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r.Clone())
		}
	}
	return &Rows{Schema: t.schema, Data: out}, nil
}

// indexableEq recognizes predicates of the shape "col = literal [AND rest]"
// where col carries a hash index, returning the probe and the residual
// predicate. Callers must hold t.mu.
func (t *Table) indexableEq(pred Pred) (string, Value, Pred, bool) {
	matchCmp := func(p Pred) (string, Value, bool) {
		c, ok := p.(CmpPred)
		if !ok || c.Op != CmpEq {
			return "", Value{}, false
		}
		if col, ok := c.L.(ColRef); ok {
			if lit, ok := c.R.(LitExpr); ok && !lit.V.IsNull() {
				if _, indexed := t.indexes[col.Name]; indexed {
					return col.Name, lit.V, true
				}
			}
		}
		if col, ok := c.R.(ColRef); ok {
			if lit, ok := c.L.(LitExpr); ok && !lit.V.IsNull() {
				if _, indexed := t.indexes[col.Name]; indexed {
					return col.Name, lit.V, true
				}
			}
		}
		return "", Value{}, false
	}
	if col, v, ok := matchCmp(pred); ok {
		return col, v, True, true
	}
	if and, ok := pred.(AndPred); ok {
		for i, sub := range and.Ps {
			if col, v, ok := matchCmp(sub); ok {
				rest := make([]Pred, 0, len(and.Ps)-1)
				rest = append(rest, and.Ps[:i]...)
				rest = append(rest, and.Ps[i+1:]...)
				return col, v, And(rest...), true
			}
		}
	}
	return "", Value{}, nil, false
}

// Rows returns a snapshot Rows result of the whole table.
func (t *Table) Rows() *Rows {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return &Rows{Schema: t.schema, Data: out}
}

// DB is a named collection of tables; it models one database instance
// (a contributor database, a temporary ETL database, or the warehouse).
type DB struct {
	name string

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (d *DB) Name() string { return d.name }

// CreateTable creates a new table, failing if the name is taken.
func (d *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.tables[name]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists in %s", name, d.name)
	}
	t := NewTable(name, schema)
	d.tables[name] = t
	return t, nil
}

// EnsureTable returns the existing table or creates it. If the table exists
// with a different schema, an error is returned.
func (d *DB) EnsureTable(name string, schema *Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, exists := d.tables[name]; exists {
		if !t.schema.Equal(schema) {
			return nil, fmt.Errorf("relstore: table %q exists with different schema", name)
		}
		return t, nil
	}
	t := NewTable(name, schema)
	d.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (d *DB) Table(name string) (*Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q in %s", name, d.name)
	}
	return t, nil
}

// Has reports whether a table with the name exists.
func (d *DB) Has(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.tables[name]
	return ok
}

// Drop removes a table.
func (d *DB) Drop(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		return fmt.Errorf("relstore: no table %q in %s", name, d.name)
	}
	delete(d.tables, name)
	return nil
}

// TableNames returns the table names in sorted order.
func (d *DB) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
