package relstore

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// serialSchema is the round-trip tests' kitchen-sink schema: every kind,
// nullable and NOT NULL columns.
func serialSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "K", Type: KindInt, NotNull: true},
		Column{Name: "F", Type: KindFloat},
		Column{Name: "S", Type: KindString},
		Column{Name: "B", Type: KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTypedRoundTrip(t *testing.T) {
	s := serialSchema(t)
	in := &Rows{Schema: s, Data: []Row{
		{Int(1), Float(1.5), Str("plain"), Bool(true)},
		// The cases CSV cannot round-trip: NULL vs empty string, newlines,
		// quotes, and an int64 beyond float64's 2^53 integer range.
		{Int(math.MaxInt64), Null(), Str(""), Null()},
		{Int(-7), Float(math.SmallestNonzeroFloat64), Str("a,\"b\"\nc"), Bool(false)},
		{Int(0), Float(12345.6789), Str("NULL"), Bool(true)}, // the literal string "NULL"
	}}

	var buf bytes.Buffer
	if err := WriteTyped(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTyped(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema.Equal(in.Schema) {
		t.Fatalf("schema round trip: got %v", out.Schema.Columns)
	}
	if len(out.Data) != len(in.Data) {
		t.Fatalf("rows = %d, want %d", len(out.Data), len(in.Data))
	}
	for i := range in.Data {
		if !out.Data[i].Equal(in.Data[i]) {
			t.Fatalf("row %d: got %v want %v", i, out.Data[i], in.Data[i])
		}
		// Equal treats Int(2)==Float(2); the checkpoint contract is
		// stronger — kinds must survive too.
		for j := range in.Data[i] {
			if out.Data[i][j].Kind() != in.Data[i][j].Kind() {
				t.Fatalf("row %d col %d: kind %v, want %v", i, j, out.Data[i][j].Kind(), in.Data[i][j].Kind())
			}
		}
	}
}

// TestTypedRoundTripProperty quick-checks the round trip over random rows.
func TestTypedRoundTripProperty(t *testing.T) {
	s := serialSchema(t)
	f := func(ks []int64, fs []float64, ss []string, bs []bool, nulls []uint8) bool {
		n := len(ks)
		for _, l := range []int{len(fs), len(ss), len(bs), len(nulls)} {
			if l < n {
				n = l
			}
		}
		in := &Rows{Schema: s}
		for i := 0; i < n; i++ {
			r := Row{Int(ks[i]), Float(fs[i]), Str(ss[i]), Bool(bs[i])}
			if math.IsNaN(fs[i]) || math.IsInf(fs[i], 0) {
				r[1] = Null()
			}
			if nulls[i]&1 != 0 {
				r[1] = Null()
			}
			if nulls[i]&2 != 0 {
				r[2] = Null()
			}
			if nulls[i]&4 != 0 {
				r[3] = Null()
			}
			in.Data = append(in.Data, r)
		}
		var buf bytes.Buffer
		if err := WriteTyped(&buf, in); err != nil {
			return false
		}
		out, err := ReadTyped(&buf)
		if err != nil {
			return false
		}
		if len(out.Data) != len(in.Data) {
			return false
		}
		for i := range in.Data {
			for j := range in.Data[i] {
				if out.Data[i][j].Kind() != in.Data[i][j].Kind() || !out.Data[i][j].Equal(in.Data[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTypedTruncationDetected: a stream cut mid-line is an error, not a
// silently shorter relation — the checkpoint layer depends on this to spot
// torn writes even before checksumming.
func TestTypedTruncationDetected(t *testing.T) {
	s := serialSchema(t)
	in := &Rows{Schema: s, Data: []Row{{Int(1), Float(2), Str("x"), Bool(true)}}}
	var buf bytes.Buffer
	if err := WriteTyped(&buf, in); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	torn := full[:len(full)-3]
	if _, err := ReadTyped(strings.NewReader(torn)); err == nil {
		t.Fatal("truncated stream parsed without error")
	}
}

// TestTypedValidatesRows: a row violating the declared schema (NULL in a
// NOT NULL column) fails the read rather than loading garbage.
func TestTypedValidatesRows(t *testing.T) {
	in := `[{"name":"K","type":"INTEGER","notnull":true}]` + "\n" + `[null]` + "\n"
	if _, err := ReadTyped(strings.NewReader(in)); err == nil {
		t.Fatal("NULL in NOT NULL column parsed without error")
	}
}
