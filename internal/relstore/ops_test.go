package relstore

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleRows(t *testing.T) *Rows {
	t.Helper()
	s := MustSchema(
		Column{Name: "ID", Type: KindInt, NotNull: true},
		Column{Name: "Smoking", Type: KindString},
		Column{Name: "Packs", Type: KindFloat},
	)
	return &Rows{Schema: s, Data: []Row{
		{Int(1), Str("Current"), Float(2)},
		{Int(2), Str("None"), Float(0)},
		{Int(3), Str("Previous"), Float(1)},
		{Int(4), Str("Current"), Float(5)},
		{Int(5), Null(), Null()},
	}}
}

func TestSelect(t *testing.T) {
	in := sampleRows(t)
	out, err := Select(in, Eq("Smoking", Str("Current")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("selected %d rows, want 2", out.Len())
	}
	all, err := Select(in, nil)
	if err != nil || all.Len() != in.Len() {
		t.Error("nil predicate must keep everything")
	}
	if _, err := Select(in, Eq("Nope", Int(1))); err == nil {
		t.Error("bad predicate column must error")
	}
}

func TestProject(t *testing.T) {
	in := sampleRows(t)
	out, err := Project(in, "Packs", "ID")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.NameList() != "Packs, ID" {
		t.Errorf("schema = %s", out.Schema.NameList())
	}
	if !out.Data[0].Equal(Row{Float(2), Int(1)}) {
		t.Errorf("row = %v", out.Data[0])
	}
	if _, err := Project(in, "Nope"); err == nil {
		t.Error("projecting missing column must error")
	}
}

func TestDeriveAndExtend(t *testing.T) {
	in := sampleRows(t)
	out, err := Derive(in,
		Derivation{Name: "ID", Type: KindInt, Expr: Col("ID")},
		Derivation{Name: "Doubled", Type: KindFloat, Expr: Arith(OpMul, Col("Packs"), Lit(Int(2)))},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Data[0].Equal(Row{Int(1), Float(4)}) {
		t.Errorf("derive row = %v", out.Data[0])
	}
	if !out.Data[4][1].IsNull() {
		t.Error("NULL input must derive NULL")
	}
	ext, err := Extend(in, Derivation{Name: "Heavy", Type: KindBool, Expr: Cmp2Bool(Cmp(CmpGe, Col("Packs"), Lit(Int(2))))})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Schema.Arity() != 4 {
		t.Errorf("extend arity = %d", ext.Schema.Arity())
	}
	if !ext.Data[0][3].Equal(Bool(true)) || !ext.Data[1][3].Equal(Bool(false)) {
		t.Errorf("extend values wrong: %v %v", ext.Data[0][3], ext.Data[1][3])
	}
	// Derive with incompatible coercion errors out.
	_, err = Derive(in, Derivation{Name: "Bad", Type: KindInt, Expr: Lit(Str("xyz"))})
	if err == nil {
		t.Error("uncoercible derive must error")
	}
}

func TestRenameOp(t *testing.T) {
	in := sampleRows(t)
	out, err := Rename(in, "Packs", "PacksPerDay")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema.Has("PacksPerDay") || out.Schema.Has("Packs") {
		t.Error("rename failed")
	}
	if _, err := Rename(in, "Nope", "X"); err == nil {
		t.Error("renaming missing column must error")
	}
}

func TestJoin(t *testing.T) {
	left := sampleRows(t)
	fs := MustSchema(
		Column{Name: "ProcID", Type: KindInt},
		Column{Name: "Finding", Type: KindString},
	)
	right := &Rows{Schema: fs, Data: []Row{
		{Int(1), Str("polyp")},
		{Int(1), Str("fissure")},
		{Int(3), Str("ulcer")},
		{Null(), Str("orphan")},
	}}
	out, err := Join(left, right, "ID", "ProcID", "f")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("join produced %d rows, want 3", out.Len())
	}
	if !out.Schema.Has("Finding") || !out.Schema.Has("ProcID") {
		t.Errorf("join schema = %s", out.Schema.NameList())
	}
	// NULL keys never join.
	for _, r := range out.Data {
		if r[0].IsNull() {
			t.Error("NULL key joined")
		}
	}
}

func TestJoinCollidingNamesPrefixed(t *testing.T) {
	left := sampleRows(t)
	rs := MustSchema(Column{Name: "ID", Type: KindInt}, Column{Name: "Smoking", Type: KindString})
	right := &Rows{Schema: rs, Data: []Row{{Int(1), Str("other")}}}
	out, err := Join(left, right, "ID", "ID", "r")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema.Has("r_ID") || !out.Schema.Has("r_Smoking") {
		t.Errorf("prefixed schema = %s", out.Schema.NameList())
	}
}

func TestLeftJoin(t *testing.T) {
	left := sampleRows(t)
	fs := MustSchema(Column{Name: "ProcID", Type: KindInt}, Column{Name: "Finding", Type: KindString})
	right := &Rows{Schema: fs, Data: []Row{{Int(1), Str("polyp")}}}
	out, err := LeftJoin(left, right, "ID", "ProcID", "f")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("left join rows = %d, want 5", out.Len())
	}
	nullCount := 0
	for _, r := range out.Data {
		if r[out.Schema.Index("Finding")].IsNull() {
			nullCount++
		}
	}
	if nullCount != 4 {
		t.Errorf("unmatched rows = %d, want 4", nullCount)
	}
}

func TestUnionAndDistinct(t *testing.T) {
	a := sampleRows(t)
	b := sampleRows(t)
	all, err := UnionAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 10 {
		t.Errorf("UnionAll len = %d", all.Len())
	}
	set, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 5 {
		t.Errorf("Union len = %d, want 5", set.Len())
	}
	other := &Rows{Schema: MustSchema(Column{Name: "Z", Type: KindInt}), Data: nil}
	if _, err := UnionAll(a, other); err == nil {
		t.Error("union of mismatched schemas must fail")
	}
	if _, err := UnionAll(); err == nil {
		t.Error("union of nothing must fail")
	}
}

func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(vals []int8) bool {
		s := MustSchema(Column{Name: "V", Type: KindInt})
		data := make([]Row, len(vals))
		for i, v := range vals {
			data[i] = Row{Int(int64(v))}
		}
		in := &Rows{Schema: s, Data: data}
		once := Distinct(in)
		twice := Distinct(once)
		return once.EqualUnordered(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortBy(t *testing.T) {
	in := sampleRows(t)
	out, err := SortBy(in, "Smoking", "ID")
	if err != nil {
		t.Fatal(err)
	}
	// NULL sorts first.
	if !out.Data[0][0].Equal(Int(5)) {
		t.Errorf("first row = %v, want NULL-smoking row", out.Data[0])
	}
	last := out.Data[out.Len()-1]
	if !last[1].Equal(Str("Previous")) {
		t.Errorf("last row = %v", last)
	}
	if _, err := SortBy(in, "Nope"); err == nil {
		t.Error("sorting missing column must error")
	}
}

func TestPivotUnpivotRoundTrip(t *testing.T) {
	in := sampleRows(t)
	eav, err := Pivot(in, []string{"ID"}, "Attribute", "Value")
	if err != nil {
		t.Fatal(err)
	}
	// 5 rows x 2 non-key columns.
	if eav.Len() != 10 {
		t.Fatalf("pivot rows = %d, want 10", eav.Len())
	}
	back, err := Unpivot(eav, []string{"ID"}, "Attribute", "Value", []Column{
		{Name: "Smoking", Type: KindString},
		{Name: "Packs", Type: KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The round trip loses NOT NULL flags but not data.
	if back.Len() != in.Len() {
		t.Fatalf("unpivot rows = %d, want %d", back.Len(), in.Len())
	}
	for i := range in.Data {
		if !back.Data[i].Equal(in.Data[i]) {
			t.Errorf("row %d: got %v, want %v", i, back.Data[i], in.Data[i])
		}
	}
}

func TestPivotUnpivotRoundTripProperty(t *testing.T) {
	// Property: for any table with an integer key and two attribute columns,
	// Unpivot(Pivot(T)) == T modulo nullability. This is the correctness core
	// of the Generic design pattern (Table 1).
	f := func(keys []uint8, svals []string) bool {
		s := MustSchema(
			Column{Name: "K", Type: KindInt, NotNull: true},
			Column{Name: "A", Type: KindString},
			Column{Name: "B", Type: KindInt},
		)
		seen := map[uint8]bool{}
		var data []Row
		for i, k := range keys {
			if seen[k] { // pivot keys must be unique
				continue
			}
			seen[k] = true
			sv := Value(Null())
			if i < len(svals) && svals[i] != "" && !strings.ContainsAny(svals[i], "\x00") {
				sv = Str(svals[i])
			}
			data = append(data, Row{Int(int64(k)), sv, Int(int64(i))})
		}
		in := &Rows{Schema: s, Data: data}
		eav, err := Pivot(in, []string{"K"}, "attr", "val")
		if err != nil {
			return false
		}
		back, err := Unpivot(eav, []string{"K"}, "attr", "val", []Column{
			{Name: "A", Type: KindString},
			{Name: "B", Type: KindInt},
		})
		if err != nil {
			return false
		}
		if back.Len() != in.Len() {
			return false
		}
		for i := range in.Data {
			if !back.Data[i].Equal(in.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUnpivotIgnoresUnknownAttributes(t *testing.T) {
	s := MustSchema(
		Column{Name: "K", Type: KindInt},
		Column{Name: "attr", Type: KindString},
		Column{Name: "val", Type: KindString},
	)
	in := &Rows{Schema: s, Data: []Row{
		{Int(1), Str("Smoking"), Str("Current")},
		{Int(1), Str("Garbage"), Str("zzz")},
	}}
	out, err := Unpivot(in, []string{"K"}, "attr", "val", []Column{{Name: "Smoking", Type: KindString}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Data[0].Equal(Row{Int(1), Str("Current")}) {
		t.Errorf("unpivot = %v", out.Data)
	}
}

func TestGroupBy(t *testing.T) {
	in := sampleRows(t)
	out, err := GroupBy(in, []string{"Smoking"},
		Aggregate{Kind: AggCount, As: "N"},
		Aggregate{Kind: AggSum, Col: "Packs", As: "TotalPacks"},
		Aggregate{Kind: AggMax, Col: "Packs", As: "MaxPacks"},
		Aggregate{Kind: AggAvg, Col: "Packs", As: "AvgPacks"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // Current, None, Previous, NULL
		t.Fatalf("groups = %d, want 4", out.Len())
	}
	byKey := map[string]Row{}
	for _, r := range out.Data {
		byKey[r[0].Display()] = r
	}
	cur := byKey["Current"]
	if !cur[1].Equal(Int(2)) || !cur[2].Equal(Float(7)) || !cur[3].Equal(Float(5)) || !cur[4].Equal(Float(3.5)) {
		t.Errorf("Current group = %v", cur)
	}
	nullGroup := byKey["NULL"]
	if !nullGroup[1].Equal(Int(1)) {
		t.Errorf("NULL group = %v", nullGroup)
	}
	if !nullGroup[4].IsNull() {
		t.Error("AVG over all-NULL must be NULL")
	}
}

func TestGroupByNoKeysGlobalAggregate(t *testing.T) {
	in := sampleRows(t)
	out, err := GroupBy(in, nil, Aggregate{Kind: AggCount, As: "N"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Data[0][0].Equal(Int(5)) {
		t.Errorf("global count = %v", out.Data)
	}
}

func TestRowsEqualUnordered(t *testing.T) {
	a := sampleRows(t)
	b := sampleRows(t)
	// Reverse b.
	for i, j := 0, len(b.Data)-1; i < j; i, j = i+1, j-1 {
		b.Data[i], b.Data[j] = b.Data[j], b.Data[i]
	}
	if !a.EqualUnordered(b) {
		t.Error("permuted results must be equal unordered")
	}
	b.Data[0] = Row{Int(99), Str("x"), Float(1)}
	if a.EqualUnordered(b) {
		t.Error("modified results must differ")
	}
	short := &Rows{Schema: a.Schema, Data: a.Data[:3]}
	if a.EqualUnordered(short) {
		t.Error("different cardinality must differ")
	}
}

func TestRowsColumnAndFormat(t *testing.T) {
	in := sampleRows(t)
	vals, err := in.Column("Smoking")
	if err != nil || len(vals) != 5 {
		t.Fatalf("Column: %v, %v", vals, err)
	}
	if _, err := in.Column("Nope"); err == nil {
		t.Error("missing column must error")
	}
	txt := in.Format()
	if !strings.Contains(txt, "Smoking") || !strings.Contains(txt, "Current") {
		t.Errorf("Format output missing content:\n%s", txt)
	}
	lines := strings.Split(strings.TrimRight(txt, "\n"), "\n")
	if len(lines) != 7 { // header + separator + 5 rows
		t.Errorf("Format lines = %d, want 7", len(lines))
	}
}

func TestRowsCloneIndependence(t *testing.T) {
	in := sampleRows(t)
	c := in.Clone()
	c.Data[0][0] = Int(42)
	if in.Data[0][0].AsInt() != 1 {
		t.Error("Clone must deep-copy rows")
	}
}

// Cmp2Bool adapts a predicate to a boolean scalar expression in tests.
func Cmp2Bool(p Pred) Expr { return AsExpr(p) }
