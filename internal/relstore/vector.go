package relstore

// Vector is a typed column of values in columnar (struct-of-arrays) layout:
// one payload slice of the vector's declared kind plus a null bitmap, so
// batch kernels run tight typed loops instead of switching on Value kinds
// per cell. Values whose runtime kind differs from the declared kind — an
// integer stored in a REAL column, or any value in a dynamically-typed
// column — land in a sparse exception map, preserving the exact Value (an
// un-widened Int must survive a round trip through a vector bit for bit).
// Kernels consult Pure to decide whether the typed fast path applies.
type Vector struct {
	kind   Kind
	n      int
	nulls  []uint64 // bit i set = value i is NULL
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	exc    map[int]Value // position -> exact value, for kind mismatches
}

// NewVector creates an empty vector of the declared kind with capacity for
// capHint values.
func NewVector(kind Kind, capHint int) *Vector {
	v := &Vector{kind: kind}
	switch kind {
	case KindInt:
		v.ints = make([]int64, 0, capHint)
	case KindFloat:
		v.floats = make([]float64, 0, capHint)
	case KindString:
		v.strs = make([]string, 0, capHint)
	case KindBool:
		v.bools = make([]bool, 0, capHint)
	}
	return v
}

// Len returns the number of values.
func (v *Vector) Len() int { return v.n }

// Kind returns the declared payload kind.
func (v *Vector) Kind() Kind { return v.kind }

// Pure reports whether every non-NULL value has the declared kind, i.e. the
// typed payload slice alone is authoritative and fast paths may skip the
// exception map.
func (v *Vector) Pure() bool { return len(v.exc) == 0 }

// Append adds one value to the vector.
func (v *Vector) Append(val Value) {
	i := v.n
	v.n++
	if i%64 == 0 {
		v.nulls = append(v.nulls, 0)
	}
	if val.IsNull() {
		v.nulls[i/64] |= 1 << (i % 64)
		v.appendZero()
		return
	}
	if val.Kind() != v.kind {
		if v.exc == nil {
			v.exc = make(map[int]Value)
		}
		v.exc[i] = val
		v.appendZero()
		return
	}
	switch v.kind {
	case KindInt:
		v.ints = append(v.ints, val.AsInt())
	case KindFloat:
		v.floats = append(v.floats, val.AsFloat())
	case KindString:
		v.strs = append(v.strs, val.AsString())
	case KindBool:
		v.bools = append(v.bools, val.AsBool())
	default:
		// Declared-dynamic column: every value is an exception.
		if v.exc == nil {
			v.exc = make(map[int]Value)
		}
		v.exc[i] = val
	}
}

func (v *Vector) appendZero() {
	switch v.kind {
	case KindInt:
		v.ints = append(v.ints, 0)
	case KindFloat:
		v.floats = append(v.floats, 0)
	case KindString:
		v.strs = append(v.strs, "")
	case KindBool:
		v.bools = append(v.bools, false)
	}
}

// Null reports whether value i is NULL.
func (v *Vector) Null(i int) bool {
	return v.nulls[i/64]&(1<<(i%64)) != 0
}

// Value reconstructs the exact Value at position i.
func (v *Vector) Value(i int) Value {
	if v.Null(i) {
		return Null()
	}
	if v.exc != nil {
		if val, ok := v.exc[i]; ok {
			return val
		}
	}
	switch v.kind {
	case KindInt:
		return Int(v.ints[i])
	case KindFloat:
		return Float(v.floats[i])
	case KindString:
		return Str(v.strs[i])
	case KindBool:
		return Bool(v.bools[i])
	default:
		return Null()
	}
}

// Batch is a fixed window of rows in columnar layout: one Vector per schema
// column. Operators build batches per chunk, evaluate predicate or
// derivation kernels over the vectors, and emit rows again — the
// Rows/Schema API stays row-shaped while the inner loops are columnar.
type Batch struct {
	Schema *Schema
	Vecs   []*Vector
	n      int
}

// NewBatch creates an empty batch over the schema with capacity for capHint
// rows per column.
func NewBatch(schema *Schema, capHint int) *Batch {
	b := &Batch{Schema: schema, Vecs: make([]*Vector, schema.Arity())}
	for i, c := range schema.Columns {
		b.Vecs[i] = NewVector(c.Type, capHint)
	}
	return b
}

// BatchFromRows builds a batch over rows[lo:hi]. Only the columns listed in
// cols are vectorized (nil = all); the rest stay nil, so predicate kernels
// pay only for the columns they touch.
func BatchFromRows(in *Rows, lo, hi int, cols []int) *Batch {
	b := &Batch{Schema: in.Schema, Vecs: make([]*Vector, in.Schema.Arity()), n: hi - lo}
	want := cols
	if want == nil {
		want = make([]int, in.Schema.Arity())
		for i := range want {
			want[i] = i
		}
	}
	for _, ci := range want {
		vec := NewVector(in.Schema.Columns[ci].Type, hi-lo)
		for r := lo; r < hi; r++ {
			vec.Append(in.Data[r][ci])
		}
		b.Vecs[ci] = vec
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Append adds one row to the batch. The row must match the schema arity.
func (b *Batch) Append(r Row) {
	for i, v := range r {
		b.Vecs[i].Append(v)
	}
	b.n++
}

// Row materializes row i as a fresh Row.
func (b *Batch) Row(i int) Row {
	out := make(Row, len(b.Vecs))
	for c, vec := range b.Vecs {
		out[c] = vec.Value(i)
	}
	return out
}

// Rows materializes the whole batch.
func (b *Batch) Rows() *Rows {
	data := make([]Row, b.n)
	for i := range data {
		data[i] = b.Row(i)
	}
	return &Rows{Schema: b.Schema, Data: data}
}
