// Package relstore implements the relational storage engine that underlies
// every database in the GUAVA/MultiClass reproduction: contributor databases
// written by reporting tools, the temporary databases produced by each ETL
// stage (Figure 6 of the paper), and the study warehouse itself.
//
// The engine provides typed columns, structured predicates and scalar
// expressions (so that plans can be rendered back to SQL text for
// documentation, as the paper renders classifier output to XQuery), hash
// indexes, and the relational operators the paper's design patterns need —
// including the pivot/un-pivot pair required by the Generic (EAV) layout of
// Table 1.
//
// # Columnar execution
//
// Operators execute on a columnar core. A relation is still presented to
// callers as row-oriented ([Rows], [Row]), but internally the hot operators
// split their input into fixed-size chunks ([BatchSize] rows, default 4096)
// and evaluate each chunk against typed column vectors:
//
//   - [Vector] is one column of a chunk in struct-of-arrays form — a typed
//     payload slice for the column's declared kind, a null bitmap, and a
//     sparse exception map for the rare cells whose runtime kind differs
//     from the declared kind (e.g. an Int stored in a REAL column, which
//     [Schema.Validate] permits). Vector.Value reconstructs every cell
//     exactly, so the columnar form is lossless.
//   - [Batch] is a chunk of vectors sharing a schema; [BatchFromRows]
//     vectorizes only the columns an operator touches.
//
// Predicates over plain column/literal operands run as typed loops
// (see the kernels in colexec.go); everything else — CASE guards,
// arithmetic comparands, derivations — falls back to per-row evaluation
// restricted to still-selected rows, so AND/OR short-circuit error
// semantics match row-at-a-time evaluation exactly.
//
// # Parallelism
//
// Multi-chunk operator calls fan out across a bounded worker pool of
// [Parallelism] goroutines (default min(GOMAXPROCS, 8); configure with
// [SetParallelism], 1 disables parallelism). Select, Project, Derive,
// Extend, Join, LeftJoin, Distinct, SortBy, Pivot, Unpivot, and GroupBy all
// use the pool for their scan/probe/key phases, but every operator
// assembles chunk results in chunk order, so output is byte-identical to
// sequential execution regardless of the pool size. UnionAll and Rename are
// pure copies and stay sequential.
//
// # Sharding
//
// Callers opt into coarser-grained parallelism by hash-sharding a relation
// on an entity-key column: [NewShardedTable] builds an n-way [ShardedTable]
// whose inserts route by FNV-1a hash of the key value and whose Select runs
// one pool task per shard (each shard is an independent [Table] with its
// own lock and indexes); [ShardRows] partitions a transient [Rows] the same
// way, and [ShardedJoin] joins shard pairs in parallel. Sharded results are
// deterministic — shard order, then per-shard order — but ShardedJoin's
// output is shard-grouped rather than left-relation order.
//
// # Durable format
//
// Relations serialize in a typed line format (serial.go) that round-trips
// bit for bit. [WriteTyped] emits the v1 single-stream layout;
// [WriteTypedSegmented] emits the v2 segment-file layout (segment.go) whose
// header indexes fixed-size, CRC-checksummed blocks so [OpenSegments] can
// serve a relation bigger than RAM from a [SegmentSet] that lazily loads
// and LRU-evicts segments under a byte budget. [ReadTyped] sniffs the
// version from the first byte and reads both.
package relstore
