package relstore

import (
	"fmt"
	"testing"
)

func benchTable(b *testing.B, n int, index bool) *Table {
	b.Helper()
	s := MustSchema(
		Column{Name: "ID", Type: KindInt, NotNull: true},
		Column{Name: "Status", Type: KindString},
		Column{Name: "Score", Type: KindFloat},
	)
	t := NewTable("T", s)
	for i := 0; i < n; i++ {
		status := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}[i%10]
		if err := t.Insert(Row{Int(int64(i)), Str(status), Float(float64(i % 100))}); err != nil {
			b.Fatal(err)
		}
	}
	if index {
		if err := t.CreateIndex("Status"); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

// BenchmarkSelectIndexedVsScan measures the hash-index fast path for
// selective equality predicates.
func BenchmarkSelectIndexedVsScan(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		pred := Eq("Status", Str("c"))
		b.Run(fmt.Sprintf("n=%d/indexed", n), func(b *testing.B) {
			t := benchTable(b, n, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := t.Select(pred); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/scan", n), func(b *testing.B) {
			t := benchTable(b, n, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := t.Select(pred); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoin measures the hash equi-join.
func BenchmarkJoin(b *testing.B) {
	left := benchTable(b, 5000, false).Rows()
	rs := MustSchema(Column{Name: "FID", Type: KindInt}, Column{Name: "Note", Type: KindString})
	rdata := make([]Row, 2000)
	for i := range rdata {
		rdata[i] = Row{Int(int64(i * 2)), Str("note")}
	}
	right := &Rows{Schema: rs, Data: rdata}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Join(left, right, "ID", "FID", "r"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPivotUnpivot measures the EAV conversion pair (the Generic
// pattern's hot path).
func BenchmarkPivotUnpivot(b *testing.B) {
	wide := benchTable(b, 2000, false).Rows()
	attrs := []Column{{Name: "Status", Type: KindString}, {Name: "Score", Type: KindFloat}}
	b.Run("pivot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Pivot(wide, []string{"ID"}, "A", "V"); err != nil {
				b.Fatal(err)
			}
		}
	})
	eav, err := Pivot(wide, []string{"ID"}, "A", "V")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unpivot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Unpivot(eav, []string{"ID"}, "A", "V", attrs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGroupBy measures aggregation (the study funnels' backbone).
func BenchmarkGroupBy(b *testing.B) {
	rows := benchTable(b, 10000, false).Rows()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(rows, []string{"Status"},
			Aggregate{Kind: AggCount, As: "N"},
			Aggregate{Kind: AggAvg, Col: "Score", As: "Mean"},
		); err != nil {
			b.Fatal(err)
		}
	}
}
