package relstore

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	in := sampleRows(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf, in.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("round trip rows = %d, want %d", out.Len(), in.Len())
	}
	for i := range in.Data {
		if !out.Data[i].Equal(in.Data[i]) {
			t.Errorf("row %d: %v != %v", i, out.Data[i], in.Data[i])
		}
	}
}

func TestReadCSVHeaderValidation(t *testing.T) {
	s := MustSchema(Column{Name: "A", Type: KindInt}, Column{Name: "B", Type: KindString})
	if _, err := ReadCSV(strings.NewReader("A,WRONG\n1,x\n"), s); err == nil {
		t.Error("wrong header name must fail")
	}
	if _, err := ReadCSV(strings.NewReader("A\n1\n"), s); err == nil {
		t.Error("wrong header arity must fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\nnotanint,x\n"), s); err == nil {
		t.Error("uncoercible field must fail")
	}
	out, err := ReadCSV(strings.NewReader("A,B\n7,hello\n,\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Data[0].Equal(Row{Int(7), Str("hello")}) {
		t.Errorf("row = %v", out.Data[0])
	}
	if !out.Data[1][0].IsNull() || !out.Data[1][1].IsNull() {
		t.Error("empty fields must read as NULL")
	}
}
