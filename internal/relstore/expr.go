package relstore

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a scalar expression over a row. Expressions are structured (not
// closures) so that compiled plans can be rendered back to SQL text, the way
// the paper renders classifier artifacts to XQuery for inspection.
type Expr interface {
	// Eval computes the expression over a row positioned by schema.
	Eval(r Row, s *Schema) (Value, error)
	// SQL renders the expression as SQL text.
	SQL() string
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Col returns a column-reference expression.
func Col(name string) ColRef { return ColRef{Name: name} }

// Eval implements Expr.
func (c ColRef) Eval(r Row, s *Schema) (Value, error) {
	i := s.Index(c.Name)
	if i < 0 {
		return Null(), fmt.Errorf("relstore: unknown column %q in (%s)", c.Name, s.NameList())
	}
	return r[i], nil
}

// SQL implements Expr.
func (c ColRef) SQL() string { return c.Name }

// LitExpr is a constant value.
type LitExpr struct{ V Value }

// Lit returns a literal expression.
func Lit(v Value) LitExpr { return LitExpr{V: v} }

// Eval implements Expr.
func (l LitExpr) Eval(Row, *Schema) (Value, error) { return l.V, nil }

// SQL implements Expr.
func (l LitExpr) SQL() string { return l.V.String() }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators supported by the classifier language's "A" clauses.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// ArithExpr applies an arithmetic operator to two numeric subexpressions.
// If either side is NULL the result is NULL (SQL semantics). Adding two
// strings concatenates them.
type ArithExpr struct {
	Op   ArithOp
	L, R Expr
}

// Arith builds an arithmetic expression.
func Arith(op ArithOp, l, r Expr) ArithExpr { return ArithExpr{Op: op, L: l, R: r} }

// Eval implements Expr.
func (a ArithExpr) Eval(r Row, s *Schema) (Value, error) {
	lv, err := a.L.Eval(r, s)
	if err != nil {
		return Null(), err
	}
	rv, err := a.R.Eval(r, s)
	if err != nil {
		return Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return Null(), nil
	}
	if a.Op == OpAdd && lv.Kind() == KindString && rv.Kind() == KindString {
		return Str(lv.AsString() + rv.AsString()), nil
	}
	if !lv.IsNumeric() || !rv.IsNumeric() {
		return Null(), fmt.Errorf("relstore: %s applied to non-numeric operands %s, %s", a.Op, lv, rv)
	}
	// Integer arithmetic stays integral; any float operand widens.
	if lv.Kind() == KindInt && rv.Kind() == KindInt {
		x, y := lv.AsInt(), rv.AsInt()
		switch a.Op {
		case OpAdd:
			return Int(x + y), nil
		case OpSub:
			return Int(x - y), nil
		case OpMul:
			return Int(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null(), fmt.Errorf("relstore: division by zero")
			}
			if x%y == 0 {
				return Int(x / y), nil
			}
			return Float(float64(x) / float64(y)), nil
		case OpMod:
			if y == 0 {
				return Null(), fmt.Errorf("relstore: modulo by zero")
			}
			return Int(x % y), nil
		}
	}
	x, y := lv.AsFloat(), rv.AsFloat()
	switch a.Op {
	case OpAdd:
		return Float(x + y), nil
	case OpSub:
		return Float(x - y), nil
	case OpMul:
		return Float(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null(), fmt.Errorf("relstore: division by zero")
		}
		return Float(x / y), nil
	case OpMod:
		if y == 0 {
			return Null(), fmt.Errorf("relstore: modulo by zero")
		}
		return Float(math.Mod(x, y)), nil
	}
	return Null(), fmt.Errorf("relstore: unknown arithmetic op %d", a.Op)
}

// SQL implements Expr.
func (a ArithExpr) SQL() string {
	return "(" + a.L.SQL() + " " + a.Op.String() + " " + a.R.SQL() + ")"
}

// NegExpr negates a numeric subexpression.
type NegExpr struct{ E Expr }

// Neg builds a unary-minus expression.
func Neg(e Expr) NegExpr { return NegExpr{E: e} }

// Eval implements Expr.
func (n NegExpr) Eval(r Row, s *Schema) (Value, error) {
	v, err := n.E.Eval(r, s)
	if err != nil || v.IsNull() {
		return Null(), err
	}
	switch v.Kind() {
	case KindInt:
		return Int(-v.AsInt()), nil
	case KindFloat:
		return Float(-v.AsFloat()), nil
	default:
		return Null(), fmt.Errorf("relstore: cannot negate %s", v)
	}
}

// SQL implements Expr.
func (n NegExpr) SQL() string { return "(-" + n.E.SQL() + ")" }

// CaseExpr is a searched CASE: the first branch whose predicate holds yields
// its result; otherwise Else (NULL when nil). MultiClass classifiers compile
// to exactly this shape: each rule "value ← guard" is one branch.
type CaseExpr struct {
	Branches []CaseBranch
	Else     Expr
}

// CaseBranch is one WHEN/THEN pair.
type CaseBranch struct {
	When Pred
	Then Expr
}

// Eval implements Expr.
func (c CaseExpr) Eval(r Row, s *Schema) (Value, error) {
	for _, b := range c.Branches {
		ok, err := evalPred(b.When, r, s)
		if err != nil {
			return Null(), err
		}
		if ok {
			return b.Then.Eval(r, s)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(r, s)
	}
	return Null(), nil
}

// SQL implements Expr.
func (c CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, b := range c.Branches {
		sb.WriteString(" WHEN ")
		sb.WriteString(b.When.SQL())
		sb.WriteString(" THEN ")
		sb.WriteString(b.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// FuncExpr applies a named scalar function. The engine supports the small
// set needed by classifiers and patterns: ABS, LENGTH, LOWER, UPPER, TRIM,
// ROUND, COALESCE.
type FuncExpr struct {
	Name string
	Args []Expr
}

// Call builds a scalar function application.
func Call(name string, args ...Expr) FuncExpr {
	return FuncExpr{Name: strings.ToUpper(name), Args: args}
}

// Eval implements Expr.
func (f FuncExpr) Eval(r Row, s *Schema) (Value, error) {
	vals := make([]Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(r, s)
		if err != nil {
			return Null(), err
		}
		vals[i] = v
	}
	arity := func(n int) error {
		if len(vals) != n {
			return fmt.Errorf("relstore: %s expects %d args, got %d", f.Name, n, len(vals))
		}
		return nil
	}
	switch f.Name {
	case "ABS":
		if err := arity(1); err != nil {
			return Null(), err
		}
		v := vals[0]
		if v.IsNull() {
			return Null(), nil
		}
		switch v.Kind() {
		case KindInt:
			if v.AsInt() < 0 {
				return Int(-v.AsInt()), nil
			}
			return v, nil
		case KindFloat:
			return Float(math.Abs(v.AsFloat())), nil
		}
		return Null(), fmt.Errorf("relstore: ABS of non-numeric %s", v)
	case "LENGTH":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if vals[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(vals[0].Display()))), nil
	case "LOWER":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if vals[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToLower(vals[0].Display())), nil
	case "UPPER":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if vals[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToUpper(vals[0].Display())), nil
	case "TRIM":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if vals[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.TrimSpace(vals[0].Display())), nil
	case "ROUND":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if vals[0].IsNull() {
			return Null(), nil
		}
		if !vals[0].IsNumeric() {
			return Null(), fmt.Errorf("relstore: ROUND of non-numeric %s", vals[0])
		}
		return Float(math.Round(vals[0].AsFloat())), nil
	case "COALESCE":
		for _, v := range vals {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	default:
		return Null(), fmt.Errorf("relstore: unknown function %s", f.Name)
	}
}

// SQL implements Expr.
func (f FuncExpr) SQL() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.SQL()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}
