package textsrc

import (
	"fmt"
	"strconv"
	"strings"

	"guava/internal/relstore"
)

// This file renders naive-schema rows into canonical report documents —
// the write side of the text modality. The extractor (extract.go) is its
// exact inverse on canonical documents, and stays an inverse under noise
// lines because every matcher is anchored: extract(render(row)) ≡ row is
// the determinism contract DESIGN.md §6.15 states and the property harness
// in roundtrip_test.go enforces.
//
// Canonical document shape:
//
//	REPORT <key>
//	<title>
//
//	== HEADING ==
//	Label: value
//	- finding term
//	…

// keyLinePrefix anchors the report-instance key on the first line.
const keyLinePrefix = "REPORT "

// Render produces the canonical report document for one naive-schema row.
// NULL answers render as no line at all; false enumeration findings are
// likewise absent (dictation states findings, not their negations).
func Render(spec *ExtractSpec, schema *relstore.Schema, row relstore.Row) (string, error) {
	ki := schema.Index(spec.Key)
	if ki < 0 || len(row) != schema.Arity() {
		return "", fmt.Errorf("textsrc: render %s: row does not match schema [%s]", spec.Name, schema.NameList())
	}
	var sb strings.Builder
	sb.WriteString(keyLinePrefix + row[ki].Display() + "\n")
	if spec.Title != "" {
		sb.WriteString(spec.Title + "\n")
	}
	for _, sec := range spec.Sections {
		sb.WriteString("\n== " + sec.Heading + " ==\n")
		for _, f := range sec.Fields {
			i := schema.Index(f.Name)
			if i < 0 {
				return "", fmt.Errorf("textsrc: render %s: schema has no column %s", spec.Name, f.Name)
			}
			line, err := renderField(spec, sec, f, row[i])
			if err != nil {
				return "", err
			}
			sb.WriteString(line)
		}
	}
	return sb.String(), nil
}

func renderField(spec *ExtractSpec, sec SectionSpec, f FieldSpec, v relstore.Value) (string, error) {
	if v.IsNull() {
		return "", nil
	}
	if f.Matcher == Enumeration {
		if v.Kind() == relstore.KindBool && v.AsBool() {
			return "- " + f.Label + "\n", nil
		}
		return "", nil
	}
	text, err := renderValue(spec, f, v)
	if err != nil {
		return "", fmt.Errorf("textsrc: render %s: %w", spec.RuleID(sec, f), err)
	}
	return f.Label + ": " + text + "\n", nil
}

func renderValue(spec *ExtractSpec, f FieldSpec, v relstore.Value) (string, error) {
	if len(f.Vocab) > 0 {
		for _, entry := range f.Vocab {
			if entry.Stored.Equal(v) {
				return entry.Text, nil
			}
		}
		return "", fmt.Errorf("stored value %s is outside the vocabulary", v)
	}
	if f.Unit != nil {
		return strconv.FormatFloat(v.AsFloat(), 'g', -1, 64) + " " + f.Unit.Canonical, nil
	}
	if spec.fieldKind(f) == relstore.KindString && strings.ContainsRune(v.Display(), '\n') {
		return "", fmt.Errorf("text answer spans lines")
	}
	return v.Display(), nil
}
