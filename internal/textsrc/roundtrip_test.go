package textsrc

import (
	"math/rand"
	"strings"
	"testing"

	"guava/internal/relstore"
)

// This file is the seeded property harness behind the determinism
// contract: extract(render(row)) ≡ row over randomized rows, and the
// equality survives arbitrary injected noise lines because every matcher
// is anchored. Failures print the seed, so any counterexample replays.

// noiseLines are dictation artifacts a transcription pipeline leaves in
// real reports. None of them collides with an anchor of testSpec: no
// "== … ==" section fencing (a foreign header legitimately closes the
// current section, which is matcher semantics, not noise), no known
// "Label:" prefix, no known "- finding" term.
var noiseLines = []string{
	"Dictated by the attending physician.",
	"Electronically signed.",
	"Page 1 of 1",
	"cc: referring provider",
	"Patient tolerated the procedure well.",
	"- incidental finding, see addendum",
	"Weight: 82 kg",
	"Reviewed and approved.",
	"",
}

// randomRow draws one naive-schema row that satisfies the spec's
// constraints (required vocabulary answered, floats on a coarse grid so
// rendering stays short — any exact float round-trips through 'g'
// formatting, the grid just keeps documents readable).
func randomRow(rng *rand.Rand, id int64) relstore.Row {
	statuses := []string{"Never", "Current", "Quit"}
	row := relstore.Row{
		relstore.Int(id),
		relstore.Str(statuses[rng.Intn(len(statuses))]),
		relstore.Null(),
		relstore.Null(),
		relstore.Bool(rng.Intn(4) == 0),
		relstore.Bool(rng.Intn(8) == 0),
	}
	if rng.Intn(3) > 0 {
		row[2] = relstore.Float(float64(rng.Intn(120)) * 0.05)
	}
	if rng.Intn(2) == 0 {
		row[3] = relstore.Int(int64(18 + rng.Intn(80)))
	}
	return row
}

// injectNoise splices random noise lines into a rendered document at
// random positions after the key line.
func injectNoise(rng *rand.Rand, doc string, n int) string {
	lines := strings.Split(doc, "\n")
	for i := 0; i < n; i++ {
		at := 1 + rng.Intn(len(lines))
		noise := noiseLines[rng.Intn(len(noiseLines))]
		lines = append(lines[:at], append([]string{noise}, lines[at:]...)...)
	}
	return strings.Join(lines, "\n")
}

func TestPropertyExtractInvertsRender(t *testing.T) {
	e := mustCompile(t)
	for _, seed := range []int64{1, 7, 42, 20260808} {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 250; i++ {
			row := randomRow(rng, int64(i+1))
			doc, err := e.Render(row)
			if err != nil {
				t.Fatalf("seed %d row %v: render: %v", seed, row, err)
			}
			noisy := injectNoise(rng, doc, rng.Intn(6))
			got, misses := e.Extract(noisy)
			if len(misses) != 0 {
				t.Fatalf("seed %d row %v: misses %v on document:\n%s", seed, row, misses, noisy)
			}
			if !got.Equal(row) {
				t.Fatalf("seed %d: extract(render(row)) = %v, want %v\ndocument:\n%s", seed, got, row, noisy)
			}
		}
	}
}

// TestPropertyExtractionDeterministic re-extracts the same noisy corpus
// twice and requires byte-identical rows and misses — the determinism half
// of the contract (no map-order, clock, or RNG dependence).
func TestPropertyExtractionDeterministic(t *testing.T) {
	e := mustCompile(t)
	rng := rand.New(rand.NewSource(99))
	docs := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		row := randomRow(rng, int64(i+1))
		doc, err := e.Render(row)
		if err != nil {
			t.Fatal(err)
		}
		doc = injectNoise(rng, doc, rng.Intn(4))
		if rng.Intn(4) == 0 { // corrupt a quarter of the corpus
			doc = strings.Replace(doc, "Smoking status: ", "Smoking status: unknown substance ", 1)
		}
		docs = append(docs, doc)
	}
	type result struct {
		rows   []relstore.Row
		misses []Miss
	}
	pass := func() result {
		var r result
		for _, d := range docs {
			row, ms := e.Extract(d)
			if len(ms) > 0 {
				r.misses = append(r.misses, ms...)
				continue
			}
			r.rows = append(r.rows, row)
		}
		return r
	}
	a, b := pass(), pass()
	if len(a.rows) != len(b.rows) || len(a.misses) != len(b.misses) {
		t.Fatalf("non-deterministic extraction: %d/%d rows, %d/%d misses",
			len(a.rows), len(b.rows), len(a.misses), len(b.misses))
	}
	if len(a.misses) == 0 {
		t.Fatal("corpus corruption produced no misses — test is vacuous")
	}
	for i := range a.rows {
		if !a.rows[i].Equal(b.rows[i]) {
			t.Fatalf("row %d differs between passes", i)
		}
	}
	for i := range a.misses {
		if a.misses[i] != b.misses[i] {
			t.Fatalf("miss %d differs between passes: %+v vs %+v", i, a.misses[i], b.misses[i])
		}
	}
}
