package textsrc

import (
	"fmt"
	"strconv"
	"strings"

	"guava/internal/relstore"
	"guava/internal/ui"
)

// Miss is one extraction failure with span provenance: which rule failed,
// on which report, over which byte range of the document. Misses flow into
// the ETL quarantine as "report-span" provenance instead of dropping
// silently or failing the whole corpus.
type Miss struct {
	// ReportID is the report-instance key, NULL when the key line itself
	// is unreadable.
	ReportID relstore.Value
	// Rule identifies the failed rule: "<spec>/<section>/<field>",
	// "<spec>/<section>" for section-level ambiguity, "<spec>/key" for an
	// unreadable key line.
	Rule string
	// Start and End delimit the offending byte range [Start, End) of the
	// document.
	Start, End int
	// Reason says what went wrong, in terms of the matcher contract.
	Reason string
}

// Locator renders the span provenance the quarantine stores.
func (m Miss) Locator() string {
	return fmt.Sprintf("report %s bytes %d-%d", m.ReportID.Display(), m.Start, m.End)
}

// Err renders the miss as the row-level error the quarantine records.
func (m Miss) Err() error {
	return fmt.Errorf("textsrc: %s: %s (bytes %d-%d)", m.Rule, m.Reason, m.Start, m.End)
}

// cField is one compiled field rule.
type cField struct {
	spec FieldSpec
	kind relstore.Kind
	col  int    // column index in the naive schema
	rule string // provenance rule id
	// vocab maps report phrases to stored values (KeyValue with Vocab).
	vocab map[string]relstore.Value
}

// cSection is one compiled section: its field rules indexed by anchor.
type cSection struct {
	heading string
	rule    string         // provenance rule id for section-level misses
	kv      map[string]int // "Label" → field index
	enum    map[string]int // finding term → field index
	fields  []int          // declaration order, for required checks
}

// Extractor is a compiled ExtractSpec: a deterministic, allocation-light
// scanner from report documents to naive-schema rows. Compile once, use
// from any number of goroutines.
type Extractor struct {
	spec     *ExtractSpec
	form     *ui.Form
	schema   *relstore.Schema
	sections []cSection
	byHead   map[string]int // heading → section index
	fields   []cField
}

// Compile validates the spec, refuses matcher overlaps, derives the form
// and naive schema, and indexes every anchor for single-pass extraction.
func Compile(spec *ExtractSpec) (*Extractor, error) {
	if over := spec.Overlaps(); len(over) > 0 {
		return nil, fmt.Errorf("textsrc: spec %s has overlapping matchers: %s", spec.Name, strings.Join(over, "; "))
	}
	form, err := spec.Form()
	if err != nil {
		return nil, err
	}
	schema, err := form.NaiveSchema()
	if err != nil {
		return nil, err
	}
	e := &Extractor{spec: spec, form: form, schema: schema, byHead: make(map[string]int, len(spec.Sections))}
	for _, sec := range spec.Sections {
		cs := cSection{
			heading: sec.Heading,
			rule:    spec.Name + "/" + sec.Heading,
			kv:      make(map[string]int),
			enum:    make(map[string]int),
		}
		for _, f := range sec.Fields {
			cf := cField{spec: f, kind: spec.fieldKind(f), col: schema.Index(f.Name), rule: spec.RuleID(sec, f)}
			if len(f.Vocab) > 0 {
				cf.vocab = make(map[string]relstore.Value, len(f.Vocab))
				for _, v := range f.Vocab {
					cf.vocab[v.Text] = v.Stored
				}
			}
			idx := len(e.fields)
			e.fields = append(e.fields, cf)
			cs.fields = append(cs.fields, idx)
			if f.Matcher == Enumeration {
				cs.enum[f.Label] = idx
			} else {
				cs.kv[f.Label] = idx
			}
		}
		e.byHead[sec.Heading] = len(e.sections)
		e.sections = append(e.sections, cs)
	}
	return e, nil
}

// Spec returns the source spec.
func (e *Extractor) Spec() *ExtractSpec { return e.spec }

// Form returns the derived ui.Form.
func (e *Extractor) Form() *ui.Form { return e.form }

// Schema returns the derived naive schema.
func (e *Extractor) Schema() *relstore.Schema { return e.schema }

// Render produces the canonical document for a naive-schema row; it is the
// exact inverse of Extract on miss-free documents.
func (e *Extractor) Render(row relstore.Row) (string, error) {
	return Render(e.spec, e.schema, row)
}

// Extract scans one report document into a naive-schema row. Lines that no
// anchored matcher claims are noise and skip; every rule violation becomes
// a Miss with span provenance. The row is only meaningful when no misses
// are reported — a report with any miss diverts whole, because a partially
// extracted record would silently bias every classifier downstream.
func (e *Extractor) Extract(doc string) (relstore.Row, []Miss) {
	var misses []Miss
	row := make(relstore.Row, e.schema.Arity())
	for i := range row {
		row[i] = relstore.Null()
	}
	set := make([]bool, len(e.fields))
	missed := make([]bool, len(e.fields))
	// sectionSpan remembers where each section's header sat, anchoring
	// required-field misses; dup sections divert via a section-level miss.
	sectionSpan := make([][2]int, len(e.sections))
	for i := range sectionSpan {
		sectionSpan[i] = [2]int{-1, -1}
	}

	reportID := relstore.Null()
	cur := -1 // current section index, -1 = outside any known section
	first := true
	for start := 0; start <= len(doc); {
		end := strings.IndexByte(doc[start:], '\n')
		if end < 0 {
			end = len(doc)
		} else {
			end += start
		}
		line := strings.TrimSpace(doc[start:end])
		lineStart, lineEnd := start, end
		start = end + 1
		if first {
			first = false
			id, ok := strings.CutPrefix(line, keyLinePrefix)
			n, err := strconv.ParseInt(strings.TrimSpace(id), 10, 64)
			if !ok || err != nil {
				misses = append(misses, Miss{ReportID: relstore.Null(), Rule: e.spec.Name + "/key",
					Start: lineStart, End: lineEnd, Reason: "unreadable report key line"})
				continue
			}
			reportID = relstore.Int(n)
			row[e.schema.Index(e.spec.Key)] = reportID
			continue
		}
		if h, ok := cutHeading(line); ok {
			si, known := e.byHead[h]
			if !known {
				cur = -1 // foreign section: its content is noise
				continue
			}
			if sectionSpan[si][0] >= 0 {
				misses = append(misses, Miss{ReportID: reportID, Rule: e.sections[si].rule,
					Start: lineStart, End: lineEnd, Reason: "ambiguous duplicate section"})
				cur = -1
				continue
			}
			sectionSpan[si] = [2]int{lineStart, lineEnd}
			cur = si
			continue
		}
		if cur < 0 || line == "" {
			continue
		}
		sec := &e.sections[cur]
		if term, ok := strings.CutPrefix(line, "- "); ok {
			if fi, ok := sec.enum[strings.TrimSpace(term)]; ok {
				row[e.fields[fi].col] = relstore.Bool(true)
				set[fi] = true
			}
			continue
		}
		label, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		fi, ok := sec.kv[strings.TrimSpace(label)]
		if !ok {
			continue
		}
		value := strings.TrimSpace(rest)
		if value == "" {
			continue // an unanswered field, same as an absent line
		}
		if set[fi] {
			misses = append(misses, Miss{ReportID: reportID, Rule: e.fields[fi].rule,
				Start: lineStart, End: lineEnd, Reason: "duplicate value for field"})
			missed[fi] = true
			continue
		}
		v, reason := e.fields[fi].parse(value)
		if reason != "" {
			misses = append(misses, Miss{ReportID: reportID, Rule: e.fields[fi].rule,
				Start: lineStart, End: lineEnd, Reason: reason})
			missed[fi] = true
			continue
		}
		row[e.fields[fi].col] = v
		set[fi] = true
	}

	// Required fields must have matched; enumerations default to false —
	// dictation states findings, absence means "not found".
	for si := range e.sections {
		for _, fi := range e.sections[si].fields {
			f := &e.fields[fi]
			if set[fi] {
				continue
			}
			if f.spec.Matcher == Enumeration {
				row[f.col] = relstore.Bool(false)
				continue
			}
			if f.spec.Required && !missed[fi] {
				span := sectionSpan[si]
				if span[0] < 0 {
					span = [2]int{0, len(doc)}
				}
				misses = append(misses, Miss{ReportID: reportID, Rule: f.rule,
					Start: span[0], End: span[1], Reason: "unmatched required field"})
			}
		}
	}
	return row, misses
}

// parse maps one anchored value text to its stored value, returning a
// non-empty miss reason on failure.
func (f *cField) parse(value string) (relstore.Value, string) {
	if f.vocab != nil {
		v, ok := f.vocab[value]
		if !ok {
			return relstore.Null(), fmt.Sprintf("out-of-vocabulary value %q", value)
		}
		return v, ""
	}
	if f.spec.Unit != nil {
		i := strings.IndexByte(value, ' ')
		if i < 0 {
			return relstore.Null(), fmt.Sprintf("quantity %q has no unit", value)
		}
		n, err := strconv.ParseFloat(value[:i], 64)
		if err != nil {
			return relstore.Null(), fmt.Sprintf("unparseable quantity %q", value[:i])
		}
		unit := strings.TrimSpace(value[i+1:])
		factor, ok := f.spec.Unit.Factors[unit]
		if !ok {
			return relstore.Null(), fmt.Sprintf("unknown unit %q", unit)
		}
		return relstore.Float(n * factor), ""
	}
	switch f.kind {
	case relstore.KindInt:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return relstore.Null(), fmt.Sprintf("unparseable integer %q", value)
		}
		return relstore.Int(n), ""
	case relstore.KindFloat:
		n, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return relstore.Null(), fmt.Sprintf("unparseable number %q", value)
		}
		return relstore.Float(n), ""
	case relstore.KindBool:
		switch {
		case strings.EqualFold(value, "TRUE"):
			return relstore.Bool(true), ""
		case strings.EqualFold(value, "FALSE"):
			return relstore.Bool(false), ""
		}
		return relstore.Null(), fmt.Sprintf("unparseable boolean %q", value)
	default:
		return relstore.Str(value), ""
	}
}

// cutHeading recognizes an anchored section header line "== HEADING ==".
func cutHeading(line string) (string, bool) {
	h, ok := strings.CutPrefix(line, "== ")
	if !ok {
		return "", false
	}
	h, ok = strings.CutSuffix(h, " ==")
	if !ok {
		return "", false
	}
	return h, true
}
