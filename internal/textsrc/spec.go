// Package textsrc opens the free-text data modality the paper's model
// leaves out: a contributor whose source is semi-structured report text
// rather than a form-backed database. EndoExtract (PAPERS.md) observes
// that clinical reports carry a stable field structure — section headers,
// "field: value" lines, enumerated findings — so a co-designed extractor
// can map them onto a schema. Here that co-design is an ExtractSpec: a
// declarative description of the report structure that compiles both ways,
// into a ui.Form (so gtree.Derive, pattern stacks, classifiers, delta
// refresh, and studyd serve text-derived data unchanged) and into a
// deterministic extractor (anchored matchers, controlled vocabularies,
// unit normalization — pure string scanning, no regular expressions).
//
// Extraction is total but not infallible: a report can omit a required
// field, carry an out-of-vocabulary value, or repeat a section ambiguously.
// Those misses never drop silently — Layout.ReadDiverting reports each one
// with span provenance (report id + byte range + rule id) so the ETL layer
// dead-letters it into the row-level quarantine under the run budget.
package textsrc

import (
	"fmt"
	"sort"
	"strings"

	"guava/internal/relstore"
	"guava/internal/ui"
)

// MatcherKind enumerates the anchored matchers a field can use inside its
// section.
type MatcherKind uint8

const (
	// KeyValue matches one "Label: value" line and parses the value.
	KeyValue MatcherKind = iota
	// Enumeration matches the presence of one "- term" finding line; the
	// field is boolean and an absent line means false.
	Enumeration
)

// String returns the matcher kind name.
func (k MatcherKind) String() string {
	switch k {
	case KeyValue:
		return "key-value"
	case Enumeration:
		return "enumeration"
	default:
		return fmt.Sprintf("MatcherKind(%d)", uint8(k))
	}
}

// VocabEntry maps one controlled-vocabulary phrase as dictated in report
// text to the value stored in the naive schema.
type VocabEntry struct {
	// Text is the phrase as it appears after the label in the report.
	Text string
	// Stored is the naive-schema value the phrase maps to.
	Stored relstore.Value
}

// UnitSpec normalizes a dictated "<number> <unit>" quantity into a single
// canonical unit. Factors maps each accepted unit name to its multiplier
// into the canonical unit; the canonical unit itself must map to 1.
type UnitSpec struct {
	// Canonical is the unit rendered on output and implied by the schema.
	Canonical string
	// Factors maps accepted unit names to canonical-unit multipliers.
	Factors map[string]float64
}

// FieldSpec is one field rule: where the value anchors inside its section
// and how its text maps to a typed value.
type FieldSpec struct {
	// Name is the naive-schema column (and g-tree slot) the field fills.
	Name string
	// Matcher selects the anchored rule kind.
	Matcher MatcherKind
	// Label is the anchor text: the "Label:" prefix for KeyValue fields,
	// the "- term" finding text for Enumeration fields.
	Label string
	// Question optionally carries the derived control's wording; Label is
	// used when empty.
	Question string
	// Kind is the stored type. Enumeration fields are always KindBool.
	Kind relstore.Kind
	// Required marks KeyValue fields whose absence is an extraction miss.
	Required bool
	// Vocab, when non-empty, restricts the value to a controlled
	// vocabulary (KeyValue only); unlisted text is an extraction miss.
	Vocab []VocabEntry
	// Unit, when set, normalizes a dictated quantity (KeyValue, KindFloat).
	Unit *UnitSpec
}

// SectionSpec is one report section: an anchored "== HEADING ==" header
// line and the field rules that match inside it.
type SectionSpec struct {
	// Heading is the section header text (without the "==" fencing).
	Heading string
	// Fields are the rules anchored inside this section.
	Fields []FieldSpec
}

// ExtractSpec is the co-designed description of one report family. It
// derives the contributor's ui.Form (and through it the g-tree and naive
// schema) and compiles into the deterministic extractor.
type ExtractSpec struct {
	// Name is the form name (and the g-tree form node).
	Name string
	// Title is the human-facing report title.
	Title string
	// Key names the synthetic report-instance key column.
	Key string
	// Sections describe the report body in order.
	Sections []SectionSpec
}

// Validate checks structural invariants: non-empty name/key/headings/labels,
// per-field matcher consistency (vocabulary typing, unit factors, enumeration
// booleans), and at least one field per section. Matcher overlap — the
// ambiguity class GV311 vets — is checked separately by Overlaps.
func (s *ExtractSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("textsrc: spec with empty name")
	}
	if s.Key == "" {
		return fmt.Errorf("textsrc: spec %s has no key column", s.Name)
	}
	if len(s.Sections) == 0 {
		return fmt.Errorf("textsrc: spec %s has no sections", s.Name)
	}
	names := map[string]bool{s.Key: true}
	for _, sec := range s.Sections {
		if sec.Heading == "" {
			return fmt.Errorf("textsrc: spec %s has a section with empty heading", s.Name)
		}
		if strings.ContainsAny(sec.Heading, "\n=") {
			return fmt.Errorf("textsrc: spec %s: heading %q contains newline or '='", s.Name, sec.Heading)
		}
		if len(sec.Fields) == 0 {
			return fmt.Errorf("textsrc: spec %s: section %s has no fields", s.Name, sec.Heading)
		}
		for _, f := range sec.Fields {
			if err := s.validateField(sec, f, names); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *ExtractSpec) validateField(sec SectionSpec, f FieldSpec, names map[string]bool) error {
	where := fmt.Sprintf("textsrc: spec %s: section %s: field %s", s.Name, sec.Heading, f.Name)
	if f.Name == "" {
		return fmt.Errorf("textsrc: spec %s: section %s has a field with empty name", s.Name, sec.Heading)
	}
	if names[f.Name] {
		return fmt.Errorf("%s: duplicate field name", where)
	}
	names[f.Name] = true
	if f.Label == "" {
		return fmt.Errorf("%s: empty label", where)
	}
	if strings.ContainsRune(f.Label, '\n') {
		return fmt.Errorf("%s: label contains newline", where)
	}
	switch f.Matcher {
	case Enumeration:
		if f.Kind != relstore.KindBool && f.Kind != relstore.KindNull {
			return fmt.Errorf("%s: enumeration fields are boolean, not %s", where, f.Kind)
		}
		if f.Required {
			return fmt.Errorf("%s: enumeration fields cannot be required (absence means false)", where)
		}
		if len(f.Vocab) > 0 || f.Unit != nil {
			return fmt.Errorf("%s: enumeration fields take no vocabulary or unit", where)
		}
	case KeyValue:
		if strings.ContainsRune(f.Label, ':') {
			return fmt.Errorf("%s: key-value label contains ':'", where)
		}
		if len(f.Vocab) > 0 && f.Unit != nil {
			return fmt.Errorf("%s: vocabulary and unit are mutually exclusive", where)
		}
		if err := s.validateVocab(where, f); err != nil {
			return err
		}
		if f.Unit != nil {
			if f.Kind != relstore.KindFloat {
				return fmt.Errorf("%s: unit normalization requires a REAL field, not %s", where, f.Kind)
			}
			if f.Unit.Canonical == "" {
				return fmt.Errorf("%s: unit spec has no canonical unit", where)
			}
			if got, ok := f.Unit.Factors[f.Unit.Canonical]; !ok || got != 1 {
				return fmt.Errorf("%s: canonical unit %q must map to factor 1", where, f.Unit.Canonical)
			}
			for u, factor := range f.Unit.Factors {
				if u == "" || factor <= 0 {
					return fmt.Errorf("%s: unit %q has non-positive factor %v", where, u, factor)
				}
			}
		}
		switch s.fieldKind(f) {
		case relstore.KindInt, relstore.KindFloat, relstore.KindString, relstore.KindBool:
		default:
			return fmt.Errorf("%s: unsupported kind %s", where, f.Kind)
		}
	default:
		return fmt.Errorf("%s: unknown matcher %v", where, f.Matcher)
	}
	return nil
}

func (s *ExtractSpec) validateVocab(where string, f FieldSpec) error {
	texts := make(map[string]bool, len(f.Vocab))
	stored := make(map[string]bool, len(f.Vocab))
	for _, v := range f.Vocab {
		if v.Text == "" || strings.ContainsRune(v.Text, '\n') {
			return fmt.Errorf("%s: vocabulary phrase %q is empty or multi-line", where, v.Text)
		}
		if texts[v.Text] {
			return fmt.Errorf("%s: vocabulary phrase %q listed twice", where, v.Text)
		}
		texts[v.Text] = true
		if v.Stored.IsNull() {
			return fmt.Errorf("%s: vocabulary phrase %q stores NULL", where, v.Text)
		}
		if stored[v.Stored.Key()] {
			// Rendering inverts the mapping, so stored values must be
			// distinct too.
			return fmt.Errorf("%s: stored value %s mapped from two phrases", where, v.Stored)
		}
		stored[v.Stored.Key()] = true
		if v.Stored.Kind() != s.fieldKind(f) {
			return fmt.Errorf("%s: vocabulary phrase %q stores %s, field is %s", where, v.Text, v.Stored.Kind(), s.fieldKind(f))
		}
	}
	return nil
}

// FieldKind resolves a field's stored kind for external checkers (guavavet
// compares it against the target g-tree slot's DataType for GV310).
func (s *ExtractSpec) FieldKind(f FieldSpec) relstore.Kind { return s.fieldKind(f) }

// fieldKind resolves a field's stored kind: enumeration fields are boolean,
// unspecified key-value fields default to string.
func (s *ExtractSpec) fieldKind(f FieldSpec) relstore.Kind {
	if f.Matcher == Enumeration {
		return relstore.KindBool
	}
	if f.Kind == relstore.KindNull {
		return relstore.KindString
	}
	return f.Kind
}

// Overlaps lists matcher ambiguities: duplicate section headings, duplicate
// key-value labels within a section, and duplicate enumeration terms within
// a section. Each makes two rules claim the same anchored line, so a report
// satisfying one rule is indistinguishable from one satisfying the other.
// Compile refuses specs with overlaps; guavavet reports them as GV311.
func (s *ExtractSpec) Overlaps() []string {
	var out []string
	headings := make(map[string]bool, len(s.Sections))
	for _, sec := range s.Sections {
		if headings[sec.Heading] {
			out = append(out, fmt.Sprintf("section heading %q declared twice", sec.Heading))
		}
		headings[sec.Heading] = true
		kv := make(map[string][]string)
		enum := make(map[string][]string)
		for _, f := range sec.Fields {
			switch f.Matcher {
			case Enumeration:
				enum[f.Label] = append(enum[f.Label], f.Name)
			default:
				kv[f.Label] = append(kv[f.Label], f.Name)
			}
		}
		for _, m := range []map[string][]string{kv, enum} {
			labels := make([]string, 0, len(m))
			for l := range m {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				if fields := m[l]; len(fields) > 1 {
					out = append(out, fmt.Sprintf("section %s: fields %s share anchor %q",
						sec.Heading, strings.Join(fields, ", "), l))
				}
			}
		}
	}
	return out
}

// Form derives the contributor's ui.Form: one group box per section, one
// control per field — drop-downs for vocabularies, check boxes for
// enumerations, text boxes otherwise. The derived form validates and feeds
// gtree.Derive exactly like a hand-built reporting-tool screen, which is
// what lets every downstream layer treat text as just another contributor.
func (s *ExtractSpec) Form() (*ui.Form, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	f := &ui.Form{Name: s.Name, Title: s.Title, KeyColumn: s.Key}
	for _, sec := range s.Sections {
		g := &ui.Control{Name: "Sec" + identFor(sec.Heading), Kind: ui.GroupBox, Question: sec.Heading}
		for _, fld := range sec.Fields {
			g.Children = append(g.Children, s.control(fld))
		}
		f.Controls = append(f.Controls, g)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("textsrc: spec %s derives invalid form: %w", s.Name, err)
	}
	return f, nil
}

func (s *ExtractSpec) control(f FieldSpec) *ui.Control {
	q := f.Question
	if q == "" {
		q = f.Label
	}
	c := &ui.Control{Name: f.Name, Question: q, Required: f.Required}
	switch {
	case f.Matcher == Enumeration:
		c.Kind = ui.CheckBox
	case len(f.Vocab) > 0:
		c.Kind = ui.DropDown
		for _, v := range f.Vocab {
			c.Options = append(c.Options, ui.Option{Display: v.Text, Stored: v.Stored})
		}
	default:
		c.Kind = ui.TextBox
		c.DataType = s.fieldKind(f)
	}
	return c
}

// identFor compresses arbitrary heading text into a control-name suffix:
// letters and digits survive, everything else drops.
func identFor(heading string) string {
	var sb strings.Builder
	for _, r := range heading {
		if r == ' ' || r == '-' || r == '_' {
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// Fields iterates every field rule with its section, in declaration order.
func (s *ExtractSpec) Fields(fn func(sec SectionSpec, f FieldSpec)) {
	for _, sec := range s.Sections {
		for _, f := range sec.Fields {
			fn(sec, f)
		}
	}
}

// RuleID names one field rule for provenance: "<spec>/<section>/<field>".
func (s *ExtractSpec) RuleID(sec SectionSpec, f FieldSpec) string {
	return s.Name + "/" + sec.Heading + "/" + f.Name
}
