package textsrc

import (
	"context"
	"fmt"

	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// Layout is the physical design of a text-backed contributor: the source
// of record is the report documents themselves, stored one per row in
//
//	<form>__reports(<key>, Body)
//
// and the naive relation only exists by running the compiled extractor
// over every body on Read. Write renders the canonical document for a row
// — the contributor "dictates" its records — so the standard pattern-stack
// contract (round trip, keyed reads, single-column updates, journaling)
// holds over text exactly as over tables, and everything downstream
// (classifiers, delta refresh, studyd) runs unchanged.
//
// Read fails on the first extraction miss; ReadDiverting (the
// patterns.DivertingReader protocol) is the production path, separating
// clean rows from per-report misses so the ETL quarantine can dead-letter
// them under the run budget instead of failing the corpus.
type Layout struct {
	ext *Extractor
}

// NewLayout compiles the spec into a text-backed layout.
func NewLayout(spec *ExtractSpec) (*Layout, error) {
	ext, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return &Layout{ext: ext}, nil
}

// Extractor exposes the compiled extractor (vet checks introspect it).
func (l *Layout) Extractor() *Extractor { return l.ext }

// Spec returns the source ExtractSpec.
func (l *Layout) Spec() *ExtractSpec { return l.ext.Spec() }

// Name implements patterns.Layout.
func (*Layout) Name() string { return "TextReports" }

// Describe implements patterns.Layout.
func (*Layout) Describe() string {
	return "Records are free-text report documents; a compiled ExtractSpec maps anchored sections, key-value lines, and enumerated findings back to the naive relation on read."
}

// ReportsTable names the physical document table for a form.
func ReportsTable(formName string) string { return formName + "__reports" }

func (l *Layout) reportsSchema(form patterns.FormInfo) *relstore.Schema {
	ki := form.Schema.Index(form.KeyColumn)
	return relstore.MustSchema(
		form.Schema.Columns[ki],
		relstore.Column{Name: "Body", Type: relstore.KindString, NotNull: true},
	)
}

// Install implements patterns.Layout.
func (l *Layout) Install(db *relstore.DB, form patterns.FormInfo) error {
	t, err := db.EnsureTable(ReportsTable(form.Name), l.reportsSchema(form))
	if err != nil {
		return err
	}
	return t.CreateIndex(form.KeyColumn)
}

// Write implements patterns.Layout: render the canonical report document
// for the row and store it.
func (l *Layout) Write(db *relstore.DB, form patterns.FormInfo, row relstore.Row) error {
	t, err := db.Table(ReportsTable(form.Name))
	if err != nil {
		return err
	}
	doc, err := Render(l.ext.spec, form.Schema, row)
	if err != nil {
		return err
	}
	return t.Insert(relstore.Row{row[form.Schema.Index(form.KeyColumn)], relstore.Str(doc)})
}

// extractAll runs the extractor over a set of stored documents. Misses
// divert their whole report; rows come back in storage order.
func (l *Layout) extractAll(docs *relstore.Rows) (*relstore.Rows, []patterns.SourceMiss) {
	out := &relstore.Rows{Schema: l.ext.Schema(), Data: make([]relstore.Row, 0, len(docs.Data))}
	var misses []patterns.SourceMiss
	for _, d := range docs.Data {
		row, ms := l.ext.Extract(d[1].AsString())
		if len(ms) == 0 {
			out.Data = append(out.Data, row)
			continue
		}
		for _, m := range ms {
			id := m.ReportID
			if id.IsNull() {
				id = d[0]
			}
			misses = append(misses, patterns.SourceMiss{
				Key:        id,
				Rule:       m.Rule,
				Err:        m.Err(),
				SourceKind: "report-span",
				Locator:    m.Locator(),
			})
		}
	}
	return out, misses
}

// Read implements patterns.Layout: extract every stored report, failing on
// the first miss (use ReadDiverting to quarantine instead).
func (l *Layout) Read(db *relstore.DB, form patterns.FormInfo) (*relstore.Rows, error) {
	t, err := db.Table(ReportsTable(form.Name))
	if err != nil {
		return nil, err
	}
	rows, misses := l.extractAll(t.Rows())
	if len(misses) > 0 {
		m := misses[0]
		return nil, fmt.Errorf("textsrc: %d extraction miss(es), first: %s (%w)", len(misses), m.Locator, m.Err)
	}
	return rows, nil
}

// ReadDiverting implements patterns.DivertingReader: clean rows flow,
// every miss comes back with report-span provenance, and textsrc.* counters
// record the corpus health.
func (l *Layout) ReadDiverting(ctx context.Context, db *relstore.DB, form patterns.FormInfo) (*relstore.Rows, []patterns.SourceMiss, error) {
	t, err := db.Table(ReportsTable(form.Name))
	if err != nil {
		return nil, nil, err
	}
	docs := t.Rows()
	rows, misses := l.extractAll(docs)
	m := obs.MetricsFrom(ctx)
	m.Counter("textsrc.reports.in").Add(int64(len(docs.Data)))
	m.Counter("textsrc.reports.diverted").Add(int64(len(docs.Data) - len(rows.Data)))
	m.Counter("textsrc.misses").Add(int64(len(misses)))
	return rows, misses, nil
}

// ReadKeys implements patterns.KeyedReader: one index probe per key, then
// extraction of just those documents. A keyed read is the delta-refresh
// path, which has no quarantine seam — a miss here fails the read, exactly
// like Read.
func (l *Layout) ReadKeys(db *relstore.DB, form patterns.FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	t, err := db.Table(ReportsTable(form.Name))
	if err != nil {
		return nil, err
	}
	var data []relstore.Row
	for _, k := range keys {
		rows, err := t.Lookup(form.KeyColumn, k)
		if err != nil {
			return nil, err
		}
		data = append(data, rows...)
	}
	rows, misses := l.extractAll(&relstore.Rows{Schema: t.Schema(), Data: data})
	if len(misses) > 0 {
		m := misses[0]
		return nil, fmt.Errorf("textsrc: %d extraction miss(es), first: %s (%w)", len(misses), m.Locator, m.Err)
	}
	return rows, nil
}

// Update implements patterns.Layout: extract the report, change the one
// answer, and re-dictate the canonical document.
func (l *Layout) Update(db *relstore.DB, form patterns.FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	ci := l.ext.Schema().Index(col)
	if ci < 0 {
		return 0, fmt.Errorf("textsrc: update: no column %q", col)
	}
	t, err := db.Table(ReportsTable(form.Name))
	if err != nil {
		return 0, err
	}
	stored, err := t.Lookup(form.KeyColumn, key)
	if err != nil {
		return 0, err
	}
	if len(stored) == 0 {
		return 0, nil
	}
	if len(stored) > 1 {
		return 0, fmt.Errorf("textsrc: update: %d reports share key %s", len(stored), key.Display())
	}
	row, misses := l.ext.Extract(stored[0][1].AsString())
	if len(misses) > 0 {
		return 0, fmt.Errorf("textsrc: update: report %s does not extract cleanly: %w", key.Display(), misses[0].Err())
	}
	row[ci] = v
	doc, err := l.ext.Render(row)
	if err != nil {
		return 0, err
	}
	return t.Update(relstore.Eq(form.KeyColumn, key), func(r relstore.Row) relstore.Row {
		r[1] = relstore.Str(doc)
		return r
	})
}

// PhysicalTables implements patterns.Layout.
func (*Layout) PhysicalTables(form patterns.FormInfo) []string {
	return []string{ReportsTable(form.Name)}
}

// AppendDocument stores one raw report document — canonical or not — under
// the stack, recording the key in the journal so a delta refresh picks the
// report up. This is how report text enters the system from outside the
// form path: runstudy -text-append, corpus ingestion, corrupted-report
// injection in tests.
func AppendDocument(db *relstore.DB, stack *patterns.Stack, form patterns.FormInfo, key relstore.Value, body string) error {
	if _, ok := stack.Layout.(*Layout); !ok {
		return fmt.Errorf("textsrc: append: stack layout is %s, not TextReports", stack.Layout.Name())
	}
	t, err := db.Table(ReportsTable(form.Name))
	if err != nil {
		return err
	}
	if err := t.Insert(relstore.Row{key, relstore.Str(body)}); err != nil {
		return err
	}
	if stack.Journal != nil {
		return stack.Journal.Record(db, form, key)
	}
	return nil
}
