package textsrc

import (
	"encoding/json"
	"fmt"

	"guava/internal/relstore"
)

// This file decodes the `.extract` artifact format guavavet loads: a JSON
// rendering of an ExtractSpec plus an optional reference to the g-tree it
// should be vetted against (mirroring how `.clf` artifacts name a tree).
//
//	{
//	  "name": "NoteReport", "key": "NoteID", "title": "…", "tree": "notes",
//	  "sections": [{
//	    "heading": "HISTORY",
//	    "fields": [{
//	      "name": "SmokeStatus", "label": "Smoking status", "match": "kv",
//	      "type": "TEXT", "required": true,
//	      "vocab": [{"text": "never smoker", "stored": "Never"}, …],
//	      "unit": {"canonical": "packs/day", "factors": {"packs/day": 1}}
//	    }, …]
//	  }, …]
//	}

type jsonSpec struct {
	Name     string        `json:"name"`
	Title    string        `json:"title"`
	Key      string        `json:"key"`
	Tree     string        `json:"tree"`
	Sections []jsonSection `json:"sections"`
}

type jsonSection struct {
	Heading string      `json:"heading"`
	Fields  []jsonField `json:"fields"`
}

type jsonField struct {
	Name     string      `json:"name"`
	Label    string      `json:"label"`
	Question string      `json:"question"`
	Match    string      `json:"match"` // "kv" (default) or "enum"
	Type     string      `json:"type"`  // INTEGER | REAL | TEXT | BOOLEAN
	Required bool        `json:"required"`
	Vocab    []jsonVocab `json:"vocab"`
	Unit     *jsonUnit   `json:"unit"`
}

type jsonVocab struct {
	Text   string `json:"text"`
	Stored string `json:"stored"`
}

type jsonUnit struct {
	Canonical string             `json:"canonical"`
	Factors   map[string]float64 `json:"factors"`
}

// DecodeJSON parses a `.extract` artifact into a spec and the name of the
// g-tree it wants to be vetted against ("" when unstated). The spec is
// syntactically decoded only; Validate/Overlaps judgements stay with the
// caller so guavavet can report them under its own diagnostic codes.
func DecodeJSON(data []byte) (*ExtractSpec, string, error) {
	var js jsonSpec
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, "", fmt.Errorf("textsrc: decode spec: %w", err)
	}
	spec := &ExtractSpec{Name: js.Name, Title: js.Title, Key: js.Key}
	for _, jsec := range js.Sections {
		sec := SectionSpec{Heading: jsec.Heading}
		for _, jf := range jsec.Fields {
			f, err := decodeField(js.Name, jf)
			if err != nil {
				return nil, "", err
			}
			sec.Fields = append(sec.Fields, f)
		}
		spec.Sections = append(spec.Sections, sec)
	}
	return spec, js.Tree, nil
}

func decodeField(spec string, jf jsonField) (FieldSpec, error) {
	f := FieldSpec{Name: jf.Name, Label: jf.Label, Question: jf.Question, Required: jf.Required}
	switch jf.Match {
	case "", "kv":
		f.Matcher = KeyValue
	case "enum":
		f.Matcher = Enumeration
	default:
		return f, fmt.Errorf("textsrc: decode spec %s: field %s: unknown matcher %q", spec, jf.Name, jf.Match)
	}
	kind, err := kindFromString(jf.Type, f.Matcher)
	if err != nil {
		return f, fmt.Errorf("textsrc: decode spec %s: field %s: %w", spec, jf.Name, err)
	}
	f.Kind = kind
	for _, v := range jf.Vocab {
		stored, err := relstore.Coerce(relstore.Str(v.Stored), kind)
		if err != nil {
			return f, fmt.Errorf("textsrc: decode spec %s: field %s: vocab %q: %w", spec, jf.Name, v.Text, err)
		}
		f.Vocab = append(f.Vocab, VocabEntry{Text: v.Text, Stored: stored})
	}
	if jf.Unit != nil {
		f.Unit = &UnitSpec{Canonical: jf.Unit.Canonical, Factors: jf.Unit.Factors}
	}
	return f, nil
}

func kindFromString(s string, m MatcherKind) (relstore.Kind, error) {
	switch s {
	case "":
		if m == Enumeration {
			return relstore.KindBool, nil
		}
		return relstore.KindString, nil
	case "INTEGER":
		return relstore.KindInt, nil
	case "REAL":
		return relstore.KindFloat, nil
	case "TEXT":
		return relstore.KindString, nil
	case "BOOLEAN":
		return relstore.KindBool, nil
	default:
		return relstore.KindNull, fmt.Errorf("unknown type %q", s)
	}
}
