package textsrc

import (
	"context"
	"strings"
	"testing"

	"guava/internal/patterns"
	"guava/internal/relstore"
)

// testSpec mirrors the workload's note-report family: a vocabulary field,
// a unit-normalized quantity, a plain integer, and enumerated findings.
func testSpec() *ExtractSpec {
	return &ExtractSpec{
		Name:  "NoteReport",
		Title: "Endoscopy progress note",
		Key:   "NoteID",
		Sections: []SectionSpec{
			{Heading: "HISTORY", Fields: []FieldSpec{
				{Name: "SmokeStatus", Matcher: KeyValue, Label: "Smoking status", Kind: relstore.KindString, Required: true,
					Vocab: []VocabEntry{
						{Text: "never smoker", Stored: relstore.Str("Never")},
						{Text: "current smoker", Stored: relstore.Str("Current")},
						{Text: "former smoker", Stored: relstore.Str("Quit")},
					}},
				{Name: "TobaccoPacks", Matcher: KeyValue, Label: "Tobacco use", Kind: relstore.KindFloat,
					Unit: &UnitSpec{Canonical: "packs/day", Factors: map[string]float64{"packs/day": 1, "cigarettes/day": 0.05}}},
				{Name: "AgeYears", Matcher: KeyValue, Label: "Age", Kind: relstore.KindInt},
			}},
			{Heading: "COMPLICATIONS", Fields: []FieldSpec{
				{Name: "HypoxiaTransient", Matcher: Enumeration, Label: "transient hypoxia"},
				{Name: "HypoxiaProlonged", Matcher: Enumeration, Label: "prolonged hypoxia"},
			}},
		},
	}
}

func testRows() []relstore.Row {
	return []relstore.Row{
		{relstore.Int(1), relstore.Str("Current"), relstore.Float(2.5), relstore.Int(61), relstore.Bool(true), relstore.Bool(false)},
		{relstore.Int(2), relstore.Str("Never"), relstore.Null(), relstore.Int(45), relstore.Bool(false), relstore.Bool(false)},
		{relstore.Int(3), relstore.Str("Quit"), relstore.Null(), relstore.Null(), relstore.Bool(false), relstore.Bool(true)},
	}
}

func mustCompile(t *testing.T) *Extractor {
	t.Helper()
	e, err := Compile(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSpecDerivesForm(t *testing.T) {
	e := mustCompile(t)
	want := "NoteID, SmokeStatus, TobaccoPacks, AgeYears, HypoxiaTransient, HypoxiaProlonged"
	if got := e.Schema().NameList(); got != want {
		t.Fatalf("schema = %s, want %s", got, want)
	}
	kinds := []relstore.Kind{relstore.KindInt, relstore.KindString, relstore.KindFloat,
		relstore.KindInt, relstore.KindBool, relstore.KindBool}
	for i, k := range kinds {
		if e.Schema().Columns[i].Type != k {
			t.Errorf("column %d type = %s, want %s", i, e.Schema().Columns[i].Type, k)
		}
	}
	smoke, err := e.Form().Control("SmokeStatus")
	if err != nil {
		t.Fatal(err)
	}
	if len(smoke.Options) != 3 || !smoke.Required {
		t.Errorf("SmokeStatus control: options=%d required=%v", len(smoke.Options), smoke.Required)
	}
}

func TestValidateRejects(t *testing.T) {
	breakages := map[string]func(*ExtractSpec){
		"empty name":       func(s *ExtractSpec) { s.Name = "" },
		"empty key":        func(s *ExtractSpec) { s.Key = "" },
		"no sections":      func(s *ExtractSpec) { s.Sections = nil },
		"empty heading":    func(s *ExtractSpec) { s.Sections[0].Heading = "" },
		"fenced heading":   func(s *ExtractSpec) { s.Sections[0].Heading = "A == B" },
		"empty section":    func(s *ExtractSpec) { s.Sections[0].Fields = nil },
		"empty label":      func(s *ExtractSpec) { s.Sections[0].Fields[0].Label = "" },
		"colon in label":   func(s *ExtractSpec) { s.Sections[0].Fields[0].Label = "Smoking: status" },
		"dup field name":   func(s *ExtractSpec) { s.Sections[1].Fields[0].Name = "SmokeStatus" },
		"required enum":    func(s *ExtractSpec) { s.Sections[1].Fields[0].Required = true },
		"int enum":         func(s *ExtractSpec) { s.Sections[1].Fields[0].Kind = relstore.KindInt },
		"null vocab":       func(s *ExtractSpec) { s.Sections[0].Fields[0].Vocab[0].Stored = relstore.Null() },
		"dup vocab phrase": func(s *ExtractSpec) { s.Sections[0].Fields[0].Vocab[1].Text = "never smoker" },
		"dup vocab stored": func(s *ExtractSpec) { s.Sections[0].Fields[0].Vocab[1].Stored = relstore.Str("Never") },
		"vocab kind":       func(s *ExtractSpec) { s.Sections[0].Fields[0].Vocab[0].Stored = relstore.Int(1) },
		"unit on int":      func(s *ExtractSpec) { s.Sections[0].Fields[1].Kind = relstore.KindInt },
		"no canonical":     func(s *ExtractSpec) { s.Sections[0].Fields[1].Unit.Canonical = "liters" },
		"bad factor":       func(s *ExtractSpec) { s.Sections[0].Fields[1].Unit.Factors["cigarettes/day"] = 0 },
	}
	for name, mutate := range breakages {
		s := testSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken spec", name)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("pristine spec rejected: %v", err)
	}
}

func TestCompileRejectsOverlaps(t *testing.T) {
	dupHeading := testSpec()
	dupHeading.Sections[1].Heading = "HISTORY"
	dupHeading.Sections[1].Fields = []FieldSpec{{Name: "Other", Matcher: KeyValue, Label: "Other"}}
	dupLabel := testSpec()
	dupLabel.Sections[0].Fields[2].Label = "Smoking status"
	dupTerm := testSpec()
	dupTerm.Sections[1].Fields[1].Label = "transient hypoxia"
	for name, s := range map[string]*ExtractSpec{"heading": dupHeading, "label": dupLabel, "term": dupTerm} {
		if len(s.Overlaps()) == 0 {
			t.Errorf("%s: no overlap reported", name)
		}
		if _, err := Compile(s); err == nil {
			t.Errorf("%s: Compile accepted overlapping matchers", name)
		}
	}
}

func TestRenderCanonical(t *testing.T) {
	e := mustCompile(t)
	doc, err := e.Render(testRows()[0])
	if err != nil {
		t.Fatal(err)
	}
	want := "REPORT 1\n" +
		"Endoscopy progress note\n" +
		"\n== HISTORY ==\n" +
		"Smoking status: current smoker\n" +
		"Tobacco use: 2.5 packs/day\n" +
		"Age: 61\n" +
		"\n== COMPLICATIONS ==\n" +
		"- transient hypoxia\n"
	if doc != want {
		t.Fatalf("canonical document:\n%q\nwant:\n%q", doc, want)
	}
}

func TestExtractInvertsRender(t *testing.T) {
	e := mustCompile(t)
	for _, row := range testRows() {
		doc, err := e.Render(row)
		if err != nil {
			t.Fatal(err)
		}
		got, misses := e.Extract(doc)
		if len(misses) != 0 {
			t.Fatalf("row %v: misses %v", row, misses)
		}
		if !got.Equal(row) {
			t.Fatalf("extract(render(row)) = %v, want %v", got, row)
		}
	}
}

func TestExtractSkipsNoiseAndNormalizesUnits(t *testing.T) {
	e := mustCompile(t)
	doc := strings.Join([]string{
		"REPORT 7",
		"Dictated by the attending physician.",
		"== HISTORY ==",
		"Patient in no acute distress.",
		"Smoking status: current smoker",
		"Weight: 82 kg", // unanchored label: noise
		"Tobacco use: 30 cigarettes/day",
		"== FOREIGN SECTION ==",
		"Age: 99", // inside an unknown section: noise
		"== COMPLICATIONS ==",
		"- prolonged hypoxia",
		"- incidental polyp", // unanchored finding: noise
		"Page 1 of 1",
	}, "\n")
	row, misses := e.Extract(doc)
	if len(misses) != 0 {
		t.Fatalf("misses: %v", misses)
	}
	want := relstore.Row{relstore.Int(7), relstore.Str("Current"), relstore.Float(1.5),
		relstore.Null(), relstore.Bool(false), relstore.Bool(true)}
	if !row.Equal(want) {
		t.Fatalf("row = %v, want %v", row, want)
	}
}

func TestExtractMissProvenance(t *testing.T) {
	e := mustCompile(t)

	t.Run("unmatched required field", func(t *testing.T) {
		doc := "REPORT 4\n\n== HISTORY ==\nAge: 50\n\n== COMPLICATIONS ==\n"
		_, misses := e.Extract(doc)
		if len(misses) != 1 {
			t.Fatalf("misses = %v", misses)
		}
		m := misses[0]
		if m.Rule != "NoteReport/HISTORY/SmokeStatus" || m.Reason != "unmatched required field" {
			t.Fatalf("miss = %+v", m)
		}
		if doc[m.Start:m.End] != "== HISTORY ==" {
			t.Fatalf("span %d-%d = %q, want the section header", m.Start, m.End, doc[m.Start:m.End])
		}
		if m.ReportID.AsInt() != 4 {
			t.Fatalf("report id = %v", m.ReportID)
		}
	})

	t.Run("out-of-vocabulary value", func(t *testing.T) {
		doc := "REPORT 5\n\n== HISTORY ==\nSmoking status: pipe smoker\n"
		_, misses := e.Extract(doc)
		if len(misses) != 1 {
			t.Fatalf("misses = %v", misses)
		}
		m := misses[0]
		if m.Rule != "NoteReport/HISTORY/SmokeStatus" || !strings.Contains(m.Reason, "out-of-vocabulary") {
			t.Fatalf("miss = %+v", m)
		}
		if got := doc[m.Start:m.End]; got != "Smoking status: pipe smoker" {
			t.Fatalf("span = %q", got)
		}
		if want := "report 5 bytes 24-51"; m.Locator() != want {
			t.Fatalf("locator = %q, want %q", m.Locator(), want)
		}
	})

	t.Run("ambiguous duplicate section", func(t *testing.T) {
		doc := "REPORT 6\n== HISTORY ==\nSmoking status: never smoker\n== HISTORY ==\nAge: 40\n"
		_, misses := e.Extract(doc)
		if len(misses) != 1 {
			t.Fatalf("misses = %v", misses)
		}
		m := misses[0]
		if m.Rule != "NoteReport/HISTORY" || m.Reason != "ambiguous duplicate section" {
			t.Fatalf("miss = %+v", m)
		}
		if got := doc[m.Start:m.End]; got != "== HISTORY ==" {
			t.Fatalf("span = %q", got)
		}
	})

	t.Run("duplicate field value", func(t *testing.T) {
		doc := "REPORT 8\n== HISTORY ==\nSmoking status: never smoker\nSmoking status: current smoker\n"
		_, misses := e.Extract(doc)
		if len(misses) != 1 || misses[0].Reason != "duplicate value for field" {
			t.Fatalf("misses = %v", misses)
		}
	})

	t.Run("unreadable key line", func(t *testing.T) {
		_, misses := e.Extract("PROGRESS NOTE\n== HISTORY ==\nSmoking status: never smoker\n")
		if len(misses) != 1 {
			t.Fatalf("misses = %v", misses)
		}
		if m := misses[0]; m.Rule != "NoteReport/key" || !m.ReportID.IsNull() {
			t.Fatalf("miss = %+v", m)
		}
	})

	t.Run("unknown unit", func(t *testing.T) {
		doc := "REPORT 9\n== HISTORY ==\nSmoking status: never smoker\nTobacco use: 3 pipes/week\n"
		_, misses := e.Extract(doc)
		if len(misses) != 1 || !strings.Contains(misses[0].Reason, `unknown unit "pipes/week"`) {
			t.Fatalf("misses = %v", misses)
		}
	})
}

func stackForm(t *testing.T, e *Extractor) patterns.FormInfo {
	t.Helper()
	info, err := patterns.FromUIForm(e.Form())
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestLayoutRoundTripThroughStack(t *testing.T) {
	layout, err := NewLayout(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	stack := patterns.NewStack(layout)
	stack.Journal = patterns.NewJournal()
	form := stackForm(t, layout.Extractor())
	db := relstore.NewDB("notes")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	rows := testRows()
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := stack.Read(db, form)
	if err != nil {
		t.Fatal(err)
	}
	want := &relstore.Rows{Schema: form.Schema, Data: rows}
	if !got.EqualUnordered(want) {
		t.Fatalf("round trip:\n%s\nwant:\n%s", got.Format(), want.Format())
	}

	// Keyed read probes individual reports.
	got, err = stack.ReadKeys(db, form, []relstore.Value{relstore.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Data[0][1].Equal(relstore.Str("Never")) {
		t.Fatalf("read-keys(2) = %s", got.Format())
	}

	// Update re-dictates the document.
	n, err := stack.Update(db, form, relstore.Int(1), "AgeYears", relstore.Int(62))
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	got, err = stack.ReadKeys(db, form, []relstore.Value{relstore.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Data[0][3].Equal(relstore.Int(62)) {
		t.Fatalf("after update: %s", got.Format())
	}
}

func TestReadDivertingSeparatesCorruptReports(t *testing.T) {
	layout, err := NewLayout(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	stack := patterns.NewStack(layout)
	stack.Journal = patterns.NewJournal()
	form := stackForm(t, layout.Extractor())
	db := relstore.NewDB("notes")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range testRows() {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	corrupt := "REPORT 99\n== HISTORY ==\nSmoking status: pipe smoker\nAge: 70\n"
	if err := AppendDocument(db, stack, form, relstore.Int(99), corrupt); err != nil {
		t.Fatal(err)
	}

	// The strict read refuses the corpus.
	if _, err := stack.Read(db, form); err == nil {
		t.Fatal("Read must fail on a corrupt report")
	}

	// The diverting read separates the misses.
	rows, misses, err := stack.ReadDiverting(context.Background(), db, form)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("clean rows = %d, want 3", rows.Len())
	}
	if len(misses) != 1 {
		t.Fatalf("misses = %v", misses)
	}
	m := misses[0]
	if m.SourceKind != "report-span" || !m.Key.Equal(relstore.Int(99)) {
		t.Fatalf("miss = %+v", m)
	}
	if !strings.HasPrefix(m.Locator, "report 99 bytes ") {
		t.Fatalf("locator = %q", m.Locator)
	}

	// The appended report was journaled for delta refresh.
	hw, err := stack.Journal.HighWaterMark(db, form)
	if err != nil {
		t.Fatal(err)
	}
	keys, _, err := stack.Journal.ChangedSince(db, form, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hw != 4 || len(keys) != 4 {
		t.Fatalf("journal: hw=%d keys=%v", hw, keys)
	}
}

func TestDecodeJSON(t *testing.T) {
	artifact := `{
	  "name": "NoteReport", "key": "NoteID", "tree": "notes",
	  "sections": [{
	    "heading": "HISTORY",
	    "fields": [
	      {"name": "SmokeStatus", "label": "Smoking status", "type": "TEXT", "required": true,
	       "vocab": [{"text": "never smoker", "stored": "Never"}]},
	      {"name": "TobaccoPacks", "label": "Tobacco use", "type": "REAL",
	       "unit": {"canonical": "packs/day", "factors": {"packs/day": 1, "cigarettes/day": 0.05}}},
	      {"name": "HypoxiaTransient", "label": "transient hypoxia", "match": "enum"}
	    ]
	  }]
	}`
	spec, tree, err := DecodeJSON([]byte(artifact))
	if err != nil {
		t.Fatal(err)
	}
	if tree != "notes" {
		t.Errorf("tree = %q", tree)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(spec); err != nil {
		t.Fatal(err)
	}
	f := spec.Sections[0].Fields
	if f[0].Vocab[0].Stored.Kind() != relstore.KindString || f[1].Unit.Canonical != "packs/day" || f[2].Matcher != Enumeration {
		t.Fatalf("decoded fields: %+v", f)
	}
	if _, _, err := DecodeJSON([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if _, _, err := DecodeJSON([]byte(`{"sections":[{"fields":[{"match":"fuzzy"}]}]}`)); err == nil {
		t.Fatal("unknown matcher must fail")
	}
}
