package patterns

import (
	"fmt"
	"strings"

	"guava/internal/relstore"
)

// Delimited is the pattern where a group of related text answers is packed
// into one delimited physical column — vendor tools commonly concatenate a
// multi-select ("surgery;IV fluids;oxygen") into a single field. The g-tree
// view splits the packed field back into per-control columns.
//
// NULL handling: a NULL component is encoded as the empty segment, and a
// record whose components are all NULL stores NULL in the packed column.
// Empty-string answers are escaped so they stay distinguishable from NULL.
type Delimited struct {
	// Into names the packed physical column.
	Into string
	// Columns are the string columns packed, in order.
	Columns []string
	// Sep is the separator (default ";").
	Sep string
}

func (d *Delimited) sep() string {
	if d.Sep == "" {
		return ";"
	}
	return d.Sep
}

// Name implements Transform.
func (*Delimited) Name() string { return "Delimited" }

// Describe implements Transform.
func (*Delimited) Describe() string {
	return "Several related answers are packed into one delimited physical column."
}

func (d *Delimited) check(form FormInfo) error {
	if len(d.Columns) < 2 {
		return fmt.Errorf("delimited: needs at least two columns")
	}
	if d.Into == "" {
		return fmt.Errorf("delimited: no target column name")
	}
	for _, col := range d.Columns {
		c, err := form.Schema.Col(col)
		if err != nil {
			return fmt.Errorf("delimited: %w", err)
		}
		if c.Type != relstore.KindString {
			return fmt.Errorf("delimited: column %q is %s, only TEXT columns can be packed", col, c.Type)
		}
		if col == form.KeyColumn {
			return fmt.Errorf("delimited: key column cannot be packed")
		}
	}
	return nil
}

// Adapt implements Transform: the packed columns disappear, replaced by one.
func (d *Delimited) Adapt(form FormInfo) (FormInfo, error) {
	if err := d.check(form); err != nil {
		return FormInfo{}, err
	}
	packed := make(map[string]bool, len(d.Columns))
	for _, c := range d.Columns {
		packed[c] = true
	}
	var cols []relstore.Column
	for _, c := range form.Schema.Columns {
		if packed[c.Name] {
			continue
		}
		cols = append(cols, c)
	}
	cols = append(cols, relstore.Column{Name: d.Into, Type: relstore.KindString})
	schema, err := relstore.NewSchema(cols...)
	if err != nil {
		return FormInfo{}, fmt.Errorf("delimited: %w", err)
	}
	return FormInfo{Name: form.Name, KeyColumn: form.KeyColumn, Schema: schema}, nil
}

// Install implements Transform.
func (*Delimited) Install(*relstore.DB, FormInfo, FormInfo) error { return nil }

// escape protects separator characters and marks empty strings.
func (d *Delimited) escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, d.sep(), `\`+d.sep())
	if s == "" {
		return `\e`
	}
	return s
}

func (d *Delimited) unescape(s string) (relstore.Value, error) {
	if s == "" {
		return relstore.Null(), nil
	}
	if s == `\e` {
		return relstore.Str(""), nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return relstore.Null(), fmt.Errorf("delimited: dangling escape in %q", s)
			}
			i++
			if s[i] == 'e' {
				continue
			}
		}
		sb.WriteByte(s[i])
	}
	return relstore.Str(sb.String()), nil
}

// splitPacked splits on unescaped separators.
func (d *Delimited) splitPacked(s string) []string {
	var segs []string
	var cur strings.Builder
	sep := d.sep()
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			cur.WriteByte(s[i])
			cur.WriteByte(s[i+1])
			i++
			continue
		}
		if strings.HasPrefix(s[i:], sep) {
			segs = append(segs, cur.String())
			cur.Reset()
			i += len(sep) - 1
			continue
		}
		cur.WriteByte(s[i])
	}
	segs = append(segs, cur.String())
	return segs
}

// Encode implements Transform.
func (d *Delimited) Encode(_ *relstore.DB, outer, inner FormInfo, row relstore.Row) (relstore.Row, error) {
	segs := make([]string, len(d.Columns))
	allNull := true
	for i, col := range d.Columns {
		v := row[outer.Schema.Index(col)]
		if v.IsNull() {
			segs[i] = ""
			continue
		}
		allNull = false
		segs[i] = d.escape(v.AsString())
	}
	out := make(relstore.Row, inner.Schema.Arity())
	for i, c := range inner.Schema.Columns {
		if c.Name == d.Into {
			if allNull {
				out[i] = relstore.Null()
			} else {
				out[i] = relstore.Str(strings.Join(segs, d.sep()))
			}
			continue
		}
		out[i] = row[outer.Schema.Index(c.Name)]
	}
	return out, nil
}

// Decode implements Transform.
func (d *Delimited) Decode(_ *relstore.DB, outer, inner FormInfo, rows *relstore.Rows) (*relstore.Rows, error) {
	packedIdx := rows.Schema.Index(d.Into)
	if packedIdx < 0 {
		return nil, fmt.Errorf("delimited: packed column %q missing from read", d.Into)
	}
	data := make([]relstore.Row, len(rows.Data))
	for r, row := range rows.Data {
		nr := make(relstore.Row, outer.Schema.Arity())
		for i, c := range outer.Schema.Columns {
			if j := rows.Schema.Index(c.Name); j >= 0 && c.Name != d.Into {
				nr[i] = row[j]
			}
		}
		packed := row[packedIdx]
		if !packed.IsNull() {
			segs := d.splitPacked(packed.AsString())
			if len(segs) != len(d.Columns) {
				return nil, fmt.Errorf("delimited: packed value %q has %d segments, want %d", packed.AsString(), len(segs), len(d.Columns))
			}
			for i, col := range d.Columns {
				v, err := d.unescape(segs[i])
				if err != nil {
					return nil, err
				}
				nr[outer.Schema.Index(col)] = v
			}
		}
		data[r] = nr
	}
	return &relstore.Rows{Schema: outer.Schema, Data: data}, nil
}

// AdaptUpdate implements Transform. Updating a packed component would need a
// read-modify-write of the packed field; reporting tools rewrite the whole
// record instead, so the transform rejects it explicitly.
func (d *Delimited) AdaptUpdate(_ *relstore.DB, _, _ FormInfo, col string, v relstore.Value) (string, relstore.Value, error) {
	for _, c := range d.Columns {
		if c == col {
			return "", relstore.Null(), fmt.Errorf("delimited: cannot update packed column %q in place", col)
		}
	}
	return col, v, nil
}
