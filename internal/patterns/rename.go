package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Rename maps naive-schema column names onto the (often cryptic) physical
// column names a vendor tool actually uses — "fld_0107" instead of
// "Smoking". Positions and values pass through unchanged; only names differ
// between the g-tree view and the database.
type Rename struct {
	// Physical maps naive column names to physical names. Unmapped columns
	// keep their names.
	Physical map[string]string
}

// Name implements Transform.
func (*Rename) Name() string { return "Rename" }

// Describe implements Transform.
func (*Rename) Describe() string {
	return "Physical column names differ from the control names of the user interface."
}

func (r *Rename) physical(name string) string {
	if p, ok := r.Physical[name]; ok {
		return p
	}
	return name
}

// Adapt implements Transform.
func (r *Rename) Adapt(form FormInfo) (FormInfo, error) {
	cols := make([]relstore.Column, form.Schema.Arity())
	for i, c := range form.Schema.Columns {
		cols[i] = relstore.Column{Name: r.physical(c.Name), Type: c.Type, NotNull: c.NotNull}
	}
	s, err := relstore.NewSchema(cols...)
	if err != nil {
		return FormInfo{}, fmt.Errorf("rename produces invalid schema: %w", err)
	}
	return FormInfo{Name: form.Name, KeyColumn: r.physical(form.KeyColumn), Schema: s}, nil
}

// Install implements Transform.
func (*Rename) Install(*relstore.DB, FormInfo, FormInfo) error { return nil }

// Encode implements Transform: values are positional, nothing to do.
func (*Rename) Encode(_ *relstore.DB, _, _ FormInfo, row relstore.Row) (relstore.Row, error) {
	return row, nil
}

// Decode implements Transform: restore the naive column names positionally.
func (*Rename) Decode(_ *relstore.DB, outer, inner FormInfo, rows *relstore.Rows) (*relstore.Rows, error) {
	// Reorder by inner names, then swap in the outer schema.
	ordered, err := relstore.Project(rows, inner.Schema.Names()...)
	if err != nil {
		return nil, err
	}
	return &relstore.Rows{Schema: outer.Schema, Data: ordered.Data}, nil
}

// AdaptUpdate implements Transform.
func (r *Rename) AdaptUpdate(_ *relstore.DB, _, _ FormInfo, col string, v relstore.Value) (string, relstore.Value, error) {
	return r.physical(col), v, nil
}
