package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// SparseWide is the sparse wide-table pattern from the paper's extended
// catalog: the reporting tool pre-allocates one physical table with a fixed
// bank of generic, nullable text slots (attr_01 … attr_NN) and maps each
// form control onto a slot by declaration order. Most slots stay NULL for
// most rows — the "sparse" in the name — and the mapping from slot to
// question lives only in the tool's configuration, which is why the g-tree
// has to carry it.
//
// Physical table per form:
//
//	<form>_wide(<key>, attr_01, …, attr_NN)
//
// The misuse hazard (vetted as GV313): a form with more data controls than
// the table has slots silently truncates — here Install refuses instead.
type SparseWide struct {
	// Slots is the number of pre-allocated generic columns.
	Slots int
}

// Name implements Layout.
func (SparseWide) Name() string { return "SparseWide" }

// Describe implements Layout.
func (SparseWide) Describe() string {
	return "A fixed bank of generic nullable slot columns; each control maps to one slot by declaration order, most slots NULL."
}

func wideTable(form FormInfo) string { return form.Name + "_wide" }

func slotName(i int) string { return fmt.Sprintf("attr_%02d", i+1) }

// dataColumns returns the non-key columns in declaration order.
func dataColumns(form FormInfo) []relstore.Column {
	out := make([]relstore.Column, 0, form.Schema.Arity()-1)
	for _, c := range form.Schema.Columns {
		if c.Name != form.KeyColumn {
			out = append(out, c)
		}
	}
	return out
}

func (w SparseWide) wideSchema(form FormInfo) *relstore.Schema {
	ki := form.Schema.Index(form.KeyColumn)
	cols := make([]relstore.Column, 0, w.Slots+1)
	cols = append(cols, form.Schema.Columns[ki])
	for i := 0; i < w.Slots; i++ {
		cols = append(cols, relstore.Column{Name: slotName(i), Type: relstore.KindString})
	}
	return relstore.MustSchema(cols...)
}

// Check validates the slot mapping without a database: every data control
// needs a slot. Install runs it before touching storage; guavavet calls it
// to report misuse as GV313.
func (w SparseWide) Check(form FormInfo) error { return w.check(form) }

// check validates the slot mapping: every data control needs a slot.
func (w SparseWide) check(form FormInfo) error {
	if w.Slots <= 0 {
		return fmt.Errorf("patterns: sparse-wide: slot count %d must be positive", w.Slots)
	}
	if n := len(dataColumns(form)); n > w.Slots {
		return fmt.Errorf("patterns: sparse-wide: form %s has %d data controls but only %d slots", form.Name, n, w.Slots)
	}
	return nil
}

// Install implements Layout.
func (w SparseWide) Install(db *relstore.DB, form FormInfo) error {
	if err := w.check(form); err != nil {
		return err
	}
	t, err := db.EnsureTable(wideTable(form), w.wideSchema(form))
	if err != nil {
		return err
	}
	return t.CreateIndex(form.KeyColumn)
}

// Write implements Layout.
func (w SparseWide) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	if err := w.check(form); err != nil {
		return err
	}
	t, err := db.Table(wideTable(form))
	if err != nil {
		return err
	}
	ki := form.Schema.Index(form.KeyColumn)
	out := make(relstore.Row, w.Slots+1)
	out[0] = row[ki]
	for i := range out[1:] {
		out[i+1] = relstore.Null()
	}
	slot := 0
	for i := range form.Schema.Columns {
		if i == ki {
			continue
		}
		if !row[i].IsNull() {
			out[slot+1] = relstore.Str(row[i].Display())
		}
		slot++
	}
	return t.Insert(out)
}

// decode maps physical slot rows back to the naive schema, coercing each
// slot's text back to the declared control type.
func (w SparseWide) decode(form FormInfo, phys *relstore.Rows) (*relstore.Rows, error) {
	if err := w.check(form); err != nil {
		return nil, err
	}
	data := dataColumns(form)
	ki := form.Schema.Index(form.KeyColumn)
	cols := append([]relstore.Column{form.Schema.Columns[ki]}, data...)
	out := &relstore.Rows{Schema: relstore.MustSchema(cols...), Data: make([]relstore.Row, len(phys.Data))}
	for r, row := range phys.Data {
		nr := make(relstore.Row, len(cols))
		nr[0] = row[0]
		for i, c := range data {
			v := row[i+1]
			if !v.IsNull() {
				cv, err := relstore.Coerce(v, c.Type)
				if err != nil {
					return nil, fmt.Errorf("patterns: sparse-wide: slot %s as %s: %w", slotName(i), c.Name, err)
				}
				v = cv
			}
			nr[i+1] = v
		}
		out.Data[r] = nr
	}
	return out, nil
}

// Read implements Layout.
func (w SparseWide) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	t, err := db.Table(wideTable(form))
	if err != nil {
		return nil, err
	}
	return w.decode(form, t.Rows())
}

// ReadKeys implements KeyedReader: one index probe per key.
func (w SparseWide) ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	t, err := db.Table(wideTable(form))
	if err != nil {
		return nil, err
	}
	var data []relstore.Row
	for _, k := range keys {
		rows, err := t.Lookup(form.KeyColumn, k)
		if err != nil {
			return nil, err
		}
		data = append(data, rows...)
	}
	return w.decode(form, &relstore.Rows{Schema: t.Schema(), Data: data})
}

// Update implements Layout.
func (w SparseWide) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	if err := w.check(form); err != nil {
		return 0, err
	}
	if col == form.KeyColumn {
		return 0, fmt.Errorf("patterns: sparse-wide update: cannot update key column")
	}
	slot := -1
	for i, c := range dataColumns(form) {
		if c.Name == col {
			slot = i
			break
		}
	}
	if slot < 0 {
		return 0, fmt.Errorf("patterns: sparse-wide update: no column %q", col)
	}
	t, err := db.Table(wideTable(form))
	if err != nil {
		return 0, err
	}
	nv := relstore.Null()
	if !v.IsNull() {
		nv = relstore.Str(v.Display())
	}
	return t.Update(relstore.Eq(form.KeyColumn, key), func(r relstore.Row) relstore.Row {
		r[slot+1] = nv
		return r
	})
}

// PhysicalTables implements Layout.
func (SparseWide) PhysicalTables(form FormInfo) []string { return []string{wideTable(form)} }
